open Mewc_crypto

type 'v t = { name : string; validate : 'v -> bool }

let make ~name validate = { name; validate }
let validate t v = t.validate v
let always name = { name; validate = (fun _ -> true) }

let both a b =
  { name = Printf.sprintf "(%s && %s)" a.name b.name;
    validate = (fun v -> a.validate v && b.validate v) }

let either a b =
  { name = Printf.sprintf "(%s || %s)" a.name b.name;
    validate = (fun v -> a.validate v || b.validate v) }

let signed_by pki ~purpose ~signer ~encode =
  {
    name = Printf.sprintf "signed-by-p%d" signer;
    validate =
      (fun (v, sg) ->
        Mewc_prelude.Pid.equal (Pki.Sig.signer sg) signer
        && Pki.verify pki sg
             ~msg:(Certificate.signed_message ~purpose ~payload:(encode v)));
  }

let backed_by_quorum pki ~purpose ~k ~encode =
  {
    name = Printf.sprintf "%d-quorum-backed" k;
    validate =
      (fun (v, cert) ->
        Certificate.verify_as pki cert ~k ~purpose
        && String.equal (Certificate.payload cert) (encode v));
  }
