(** The Byzantine attack zoo.

    Protocol-specific adversary strategies exercising the failure modes the
    paper's proofs defend against. Every attack is an
    {!Mewc_sim.Adversary.factory}: it receives the trusted setup and uses
    only the secrets of the processes it corrupts. Used throughout the test
    suite and the complexity experiments; exported so downstream users can
    stress their own deployments. *)

open Mewc_prelude
open Mewc_sim

(** {1 Byzantine Broadcast (Algorithms 1–2)} *)

val bb_equivocating_sender :
  cfg:Config.t ->
  sender:Pid.t ->
  v1:string ->
  v2:string ->
  (Adaptive_bb.state, Adaptive_bb.msg) Adversary.factory
(** The sender signs two different values and sends each to half the
    processes, then goes silent. Both are valid BB values, so the weak BA
    may decide either — or ⊥ (more than one valid value exists). Tests BB
    agreement under the attack the BB validity proof (Lemma 12) rules out
    for {e correct} senders. *)

val bb_selective_sender :
  cfg:Config.t ->
  sender:Pid.t ->
  value:string ->
  recipients:Pid.t list ->
  (Adaptive_bb.state, Adaptive_bb.msg) Adversary.factory
(** The sender delivers its signed value to [recipients] only and goes
    silent: the vetting phases must spread the value (or produce an idk
    certificate) so that every correct process enters the weak BA with a
    valid input (Lemma 11). *)

val bb_fake_idk_leader :
  cfg:Config.t ->
  byz:Pid.t list ->
  (Adaptive_bb.state, Adaptive_bb.msg) Adversary.factory
(** Lemma 10's guarantee under attack: with a {e correct} sender, a
    Byzantine vetting leader (the first pid in [byz]) tries to push an idk
    certificate anyway — built from its own colleagues' t idk signatures,
    one short of the t+1 quorum, and padded with under-sized certificates.
    Every forgery must bounce off `BB_valid`, leaving the sender's value as
    the only decision. *)

(** {1 Weak BA (Algorithms 3–4)} *)

val wba_exclusive_finalizer :
  cfg:Config.t ->
  leader:Pid.t ->
  lucky:Pid.t ->
  (Instances.Weak_str.state, Instances.Weak_str.msg) Adversary.factory
(** The phase-[leader] leader runs the protocol honestly but reveals the
    finalize certificate to [lucky] alone — the paper's own example of why
    the help round exists ("a Byzantine leader causes the single correct
    leader to decide and not initiate its phase", §6). *)

val wba_busy_byz_leaders :
  cfg:Config.t ->
  leaders:Pid.t list ->
  (Instances.Weak_str.state, Instances.Weak_str.msg) Adversary.factory
(** Byzantine leaders run their phases (extracting votes and decide shares
    from correct processes — the O(n) per-phase cost) but never release the
    finalize certificate. This realizes the O(n(f+1)) worst case of §6.1. *)

val wba_help_req_spammers :
  cfg:Config.t ->
  spammers:Pid.t list ->
  (Instances.Weak_str.state, Instances.Weak_str.msg) Adversary.factory
(** Silent throughout the phases, then every spammer sends a signed help
    request: decided correct processes answer each one, exhibiting the
    "number of messages sent by correct processes is linear in the number of
    help requests" behaviour of §6 (O(nf) when only Byzantine processes
    ask). *)

val wba_lonely_decider :
  cfg:Config.t ->
  lucky:Pid.t ->
  (Instances.Weak_str.state, Instances.Weak_str.msg) Adversary.factory
(** The paper's §6 scenario in full: processes p1..pt are Byzantine; p1 runs
    its phase honestly but reveals the finalize certificate to [lucky]
    alone, and no other Byzantine leader initiates. With [lucky = p_(t+1)]
    (the last rotating leader, which then stays silent because it has
    decided), exactly one correct process decides during the phases and all
    the others must be rescued by the help round. *)

val wba_late_fallback_cert :
  cfg:Config.t ->
  victim:Pid.t ->
  (Instances.Weak_str.state, Instances.Weak_str.msg) Adversary.factory
(** On top of {!wba_lonely_decider} (with [lucky = p_(t+1)]), the adversary
    harvests the correct help-request signatures — too few to let any
    correct process form the certificate — tops them up with Byzantine
    ones, and delivers the resulting fallback certificate to [victim] alone
    at the very edge of the acceptance window: the adversarial schedule
    behind the bounded-window deviation discussed in {!Weak_ba}. *)

val wba_invalid_fallback_king :
  cfg:Config.t ->
  byz:Pid.t list ->
  evil:string ->
  (Instances.Weak_str.state, Instances.Weak_str.msg) Adversary.factory
(** Drives weak BA to its ⊥ outcome, witnessing unique validity's default
    case. The Byzantine processes (headed by the king of the fallback's
    first phase — pass pid 1 first) stay silent through the phases, so with
    f ≥ (n−t−1)/2 nobody decides and every correct process enters
    [A_fallback]; the Byzantine king then drives the fallback to decide the
    invalid value [evil], which the weak BA wraps to ⊥. Requires divergent
    correct inputs (otherwise the fallback's input certificates block the
    unjustified proposal — also worth testing!). *)

val wba_small_quorum_split :
  cfg:Config.t ->
  quorum:int ->
  v1:string ->
  v2:string ->
  (Instances.Weak_str.state, Instances.Weak_str.msg) Adversary.factory
(** The ablation attack for the paper's central quorum insight (§6): a
    Byzantine phase-1 leader equivocates between the even- and odd-pid
    correct processes and completes {e both} commit and finalize
    certificates using its [t] Byzantine signatures. Against a weak BA
    ablated to [quorum = t + 1] this yields two conflicting finalize
    certificates and an agreement violation; against the sound
    ⌈(n+t+1)/2⌉ quorum the same attack cannot complete either certificate.
    Run it with {!Instances.run_weak_ba}'s [quorum_override]. *)

val wba_fuzzer :
  cfg:Config.t ->
  victims:Pid.t list ->
  seed:int64 ->
  (Instances.Weak_str.state, Instances.Weak_str.msg) Adversary.factory
(** A protocol-aware Byzantine fuzzer: every corrupted process sprays
    randomly generated weak-BA messages each slot — self-signed proposals
    and votes for random phases and values, replays of any certificate it
    has observed on the wire (re-targeted at wrong phases, levels and
    constructors), bogus help requests and fallback certificates, and junk
    addressed into the embedded [A_fallback]. Everything it sends is
    forgeable without foreign keys, so safety (agreement, unique validity,
    termination) must survive any seed — the randomized safety property in
    the test suite. *)

(** {1 Strong BA (Algorithm 5)} *)

val sba_withholding_leader :
  cfg:Config.t ->
  leader:Pid.t ->
  lucky:Pid.t ->
  (Instances.Strong_bool.state, Instances.Strong_bool.msg) Adversary.factory
(** The leader runs Algorithm 5 honestly but sends the signed-by-all decide
    certificate to [lucky] alone: [lucky] decides fast, everyone else
    enters the fallback, and the 2δ adoption window (lines 20–24) must
    reconcile them — the exact scenario of Lemma 26. *)

(** {1 A_fallback (echo phase king)} *)

val epk_lock_carryover_king :
  cfg:Config.t ->
  target:Pid.t ->
  (Instances.Fallback_str.state, Instances.Fallback_str.msg) Adversary.factory
(** The phase-1 king runs its phase honestly but reveals the commit
    certificate to [target] alone and suppresses its own acks: [target]
    locks the king's value without a decision forming. The next (correct)
    king must learn the lock from [target]'s status report and propose the
    locked value with a lock justification — the cross-phase safety
    mechanism — so the final decision is the Byzantine king's value even
    though only one correct process ever saw its certificate. *)

val epk_equivocating_king :
  cfg:Config.t ->
  king:Pid.t ->
  v1:string ->
  v2:string ->
  (Instances.Fallback_str.state, Instances.Fallback_str.msg) Adversary.factory
(** The king of phase [king] signs two proposals and splits them between
    odd and even processes. The echo round must expose the equivocation so
    that no value is certified in that phase, and a later king must still
    drive everyone to one decision. *)
