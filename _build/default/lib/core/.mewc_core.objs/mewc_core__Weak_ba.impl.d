lib/core/weak_ba.ml: Certificate Composition Config Envelope Fallback_intf Format Hashtbl Int List Mewc_crypto Mewc_prelude Mewc_sim Pid Pki Printf Process String Value
