lib/core/repeated_bb.mli: Format Mewc_crypto Mewc_prelude Mewc_sim
