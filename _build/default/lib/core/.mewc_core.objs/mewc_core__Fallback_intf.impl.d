lib/core/fallback_intf.ml: Format Mewc_crypto Mewc_prelude Mewc_sim
