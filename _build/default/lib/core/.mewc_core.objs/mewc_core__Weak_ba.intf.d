lib/core/weak_ba.mli: Fallback_intf Format Mewc_crypto Mewc_prelude Mewc_sim
