lib/core/ff_strong_ba.ml: Array Certificate Composition Config Envelope Fallback_intf Format List Mewc_crypto Mewc_prelude Mewc_sim Option Pid Pki Process String Value
