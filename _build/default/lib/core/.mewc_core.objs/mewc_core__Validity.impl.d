lib/core/validity.ml: Certificate Mewc_crypto Mewc_prelude Pki Printf String
