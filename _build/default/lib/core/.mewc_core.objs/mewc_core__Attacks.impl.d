lib/core/attacks.ml: Adaptive_bb Array Certificate Config Envelope Hashtbl Instances List Mewc_crypto Mewc_prelude Mewc_sim Option Pid Pki Printf Process Rng Strategies String
