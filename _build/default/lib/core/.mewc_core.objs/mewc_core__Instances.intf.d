lib/core/instances.mli: Adaptive_bb Binary_bb Fallback_intf Ff_strong_ba Mewc_fallback Mewc_prelude Mewc_sim Weak_ba
