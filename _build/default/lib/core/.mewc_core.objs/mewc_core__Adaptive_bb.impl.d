lib/core/adaptive_bb.ml: Certificate Composition Config Envelope Format Hashtbl List Mewc_crypto Mewc_fallback Mewc_prelude Mewc_sim Pid Pki Process String Weak_ba
