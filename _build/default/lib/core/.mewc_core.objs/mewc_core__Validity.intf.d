lib/core/validity.mli: Mewc_crypto Mewc_prelude
