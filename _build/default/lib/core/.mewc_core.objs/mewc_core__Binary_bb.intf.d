lib/core/binary_bb.mli: Fallback_intf Ff_strong_ba Format Mewc_crypto Mewc_prelude Mewc_sim
