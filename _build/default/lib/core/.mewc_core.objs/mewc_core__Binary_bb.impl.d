lib/core/binary_bb.ml: Certificate Composition Config Envelope Fallback_intf Ff_strong_ba Format List Mewc_crypto Mewc_prelude Mewc_sim Option Pid Pki Process Value
