lib/core/attacks.mli: Adaptive_bb Adversary Config Instances Mewc_prelude Mewc_sim Pid
