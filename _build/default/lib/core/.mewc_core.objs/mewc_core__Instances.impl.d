lib/core/instances.ml: Adaptive_bb Array Binary_bb Config Engine Ff_strong_ba List Meter Mewc_crypto Mewc_fallback Mewc_prelude Mewc_sim Pki Process Value Weak_ba
