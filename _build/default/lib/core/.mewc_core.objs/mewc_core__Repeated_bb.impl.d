lib/core/repeated_bb.ml: Adaptive_bb Array Config Engine Envelope Format List Meter Mewc_crypto Mewc_prelude Mewc_sim Option Pid Pki Process String
