lib/core/adaptive_bb.mli: Fallback_intf Format Mewc_crypto Mewc_prelude Mewc_sim Weak_ba
