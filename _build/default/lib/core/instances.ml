open Mewc_crypto
open Mewc_sim

module Epk_str = Mewc_fallback.Echo_phase_king.Make (Value.Str)

module Fallback_str = struct
  include Epk_str

  type value = string
end

module Weak_str = Weak_ba.Make (Value.Str) (Fallback_str)

type 'o agreement_outcome = {
  decisions : 'o option array;
  corrupted : Mewc_prelude.Pid.t list;
  f : int;
  words : int;
  messages : int;
  byz_words : int;
  signatures : int;
  slots : int;
  fallback_runs : int;
  nonsilent_phases : int;
  help_requests : int;
  latency : int;
}

(* Latest decision slot among correct processes; -1 if one never decided. *)
let latency_of ~corrupted ~decided_at states =
  Array.to_list states
  |> List.mapi (fun p st -> (p, st))
  |> List.filter (fun (p, _) -> not (List.mem p corrupted))
  |> List.fold_left
       (fun acc (_, st) ->
         match (acc, decided_at st) with
         | -1, _ | _, None -> -1
         | acc, Some s -> max acc s)
       0

module Epk_bool = Mewc_fallback.Echo_phase_king.Make (Value.Bool)

module Fallback_bool = struct
  include Epk_bool

  type value = bool
end

module Strong_bool = Ff_strong_ba.Make (Fallback_bool)

let run_fallback ~cfg ?(seed = 1L) ?shuffle_seed ?(round_len = 1)
    ?(start_slot = fun _ -> 0) ~inputs ~adversary () =
  let n = cfg.Config.n in
  if Array.length inputs <> n then
    invalid_arg "run_fallback: need one input per process";
  let pki, secrets = Pki.setup ~seed ~n () in
  let protocol pid =
    {
      Process.init =
        Epk_str.init ~cfg ~pki ~secret:secrets.(pid) ~pid ~input:inputs.(pid)
          ~start_slot:(start_slot pid) ~round_len;
      step = (fun ~slot ~inbox st -> Epk_str.step ~slot ~inbox st);
    }
  in
  let adversary = adversary ~pki ~secrets in
  let res =
    Engine.run ~cfg ?shuffle_seed ~words:Epk_str.words
      ~horizon:(Epk_str.horizon cfg ~round_len) ~protocol ~adversary ()
  in
  {
    decisions = Array.map Epk_str.decision res.Engine.states;
    corrupted = res.Engine.corrupted;
    f = res.Engine.f;
    words = Meter.correct_words res.Engine.meter;
    messages = Meter.correct_messages res.Engine.meter;
    byz_words = Meter.byzantine_words res.Engine.meter;
    signatures = Pki.signatures_created pki;
    slots = res.Engine.slots;
    fallback_runs = 0;
    nonsilent_phases = 0;
    help_requests = 0;
    latency =
      latency_of ~corrupted:res.Engine.corrupted ~decided_at:Epk_str.decided_at
        res.Engine.states;
  }

let run_weak_ba ~cfg ?(seed = 1L) ?shuffle_seed ?(record_trace = false)
    ?(validate = fun _ -> true) ?quorum_override ~inputs ~adversary () =
  let n = cfg.Config.n in
  if Array.length inputs <> n then
    invalid_arg "run_weak_ba: need one input per process";
  let pki, secrets = Pki.setup ~seed ~n () in
  let protocol pid =
    {
      Process.init =
        Weak_str.init ?quorum_override ~cfg ~pki ~secret:secrets.(pid) ~pid
          ~input:inputs.(pid) ~validate ~start_slot:0 ();
      step = (fun ~slot ~inbox st -> Weak_str.step ~slot ~inbox st);
    }
  in
  let adversary = adversary ~pki ~secrets in
  let res =
    Engine.run ~cfg ?shuffle_seed ~record_trace ~words:Weak_str.words
      ~horizon:(Weak_str.horizon cfg) ~protocol ~adversary ()
  in
  let correct_states =
    Array.to_list res.Engine.states
    |> List.filteri (fun p _ -> not (List.mem p res.Engine.corrupted))
  in
  let count f = List.length (List.filter f correct_states) in
  {
    decisions = Array.map Weak_str.decision res.Engine.states;
    corrupted = res.Engine.corrupted;
    f = res.Engine.f;
    words = Meter.correct_words res.Engine.meter;
    messages = Meter.correct_messages res.Engine.meter;
    byz_words = Meter.byzantine_words res.Engine.meter;
    signatures = Pki.signatures_created pki;
    slots = res.Engine.slots;
    fallback_runs = count Weak_str.fallback_entered;
    nonsilent_phases = count Weak_str.initiated_phase;
    help_requests = count Weak_str.sent_help_request;
    latency =
      latency_of ~corrupted:res.Engine.corrupted ~decided_at:Weak_str.decided_at
        res.Engine.states;
  }

let run_bb ~cfg ?(seed = 1L) ?shuffle_seed ?(record_trace = false) ?(sender = 0)
    ~input ~adversary () =
  let n = cfg.Config.n in
  let pki, secrets = Pki.setup ~seed ~n () in
  let protocol pid =
    {
      Process.init =
        Adaptive_bb.init ~cfg ~pki ~secret:secrets.(pid) ~pid ~sender
          ~input:(if pid = sender then Some input else None)
          ~start_slot:0;
      step = (fun ~slot ~inbox st -> Adaptive_bb.step ~slot ~inbox st);
    }
  in
  let adversary = adversary ~pki ~secrets in
  let res =
    Engine.run ~cfg ?shuffle_seed ~record_trace ~words:Adaptive_bb.words
      ~horizon:(Adaptive_bb.horizon cfg) ~protocol ~adversary ()
  in
  let correct_states =
    Array.to_list res.Engine.states
    |> List.filteri (fun p _ -> not (List.mem p res.Engine.corrupted))
  in
  let count f = List.length (List.filter f correct_states) in
  {
    decisions = Array.map Adaptive_bb.decision res.Engine.states;
    corrupted = res.Engine.corrupted;
    f = res.Engine.f;
    words = Meter.correct_words res.Engine.meter;
    messages = Meter.correct_messages res.Engine.meter;
    byz_words = Meter.byzantine_words res.Engine.meter;
    signatures = Pki.signatures_created pki;
    slots = res.Engine.slots;
    fallback_runs = count Adaptive_bb.fallback_entered;
    nonsilent_phases = count Adaptive_bb.vetting_phase_initiated;
    help_requests = 0;
    latency =
      latency_of ~corrupted:res.Engine.corrupted ~decided_at:Adaptive_bb.decided_at
        res.Engine.states;
  }

module Binary_bb_bool = Binary_bb.Make (Fallback_bool)

let run_binary_bb ~cfg ?(seed = 1L) ?shuffle_seed ?(sender = 0) ~input
    ~adversary () =
  let n = cfg.Config.n in
  let pki, secrets = Pki.setup ~seed ~n () in
  let protocol pid =
    {
      Process.init =
        Binary_bb_bool.init ~cfg ~pki ~secret:secrets.(pid) ~pid ~sender
          ~input:(if pid = sender then Some input else None)
          ~start_slot:0;
      step = (fun ~slot ~inbox st -> Binary_bb_bool.step ~slot ~inbox st);
    }
  in
  let adversary = adversary ~pki ~secrets in
  let res =
    Engine.run ~cfg ?shuffle_seed ~words:Binary_bb_bool.words
      ~horizon:(Binary_bb_bool.horizon cfg) ~protocol ~adversary ()
  in
  let correct_states =
    Array.to_list res.Engine.states
    |> List.filteri (fun p _ -> not (List.mem p res.Engine.corrupted))
  in
  let count f = List.length (List.filter f correct_states) in
  {
    decisions = Array.map Binary_bb_bool.decision res.Engine.states;
    corrupted = res.Engine.corrupted;
    f = res.Engine.f;
    words = Meter.correct_words res.Engine.meter;
    messages = Meter.correct_messages res.Engine.meter;
    byz_words = Meter.byzantine_words res.Engine.meter;
    signatures = Pki.signatures_created pki;
    slots = res.Engine.slots;
    fallback_runs =
      List.length correct_states - count Binary_bb_bool.decided_fast;
    nonsilent_phases = count Binary_bb_bool.decided_fast;
    help_requests = 0;
    latency =
      latency_of ~corrupted:res.Engine.corrupted
        ~decided_at:Binary_bb_bool.decided_at res.Engine.states;
  }

let run_strong_ba ~cfg ?(seed = 1L) ?shuffle_seed ?(record_trace = false)
    ?(leader = 0) ~inputs ~adversary () =
  let n = cfg.Config.n in
  if Array.length inputs <> n then
    invalid_arg "run_strong_ba: need one input per process";
  let pki, secrets = Pki.setup ~seed ~n () in
  let protocol pid =
    {
      Process.init =
        Strong_bool.init ~cfg ~pki ~secret:secrets.(pid) ~pid ~leader
          ~input:inputs.(pid) ~start_slot:0;
      step = (fun ~slot ~inbox st -> Strong_bool.step ~slot ~inbox st);
    }
  in
  let adversary = adversary ~pki ~secrets in
  let res =
    Engine.run ~cfg ?shuffle_seed ~record_trace ~words:Strong_bool.words
      ~horizon:(Strong_bool.horizon cfg) ~protocol ~adversary ()
  in
  let correct_states =
    Array.to_list res.Engine.states
    |> List.filteri (fun p _ -> not (List.mem p res.Engine.corrupted))
  in
  let count f = List.length (List.filter f correct_states) in
  {
    decisions = Array.map Strong_bool.decision res.Engine.states;
    corrupted = res.Engine.corrupted;
    f = res.Engine.f;
    words = Meter.correct_words res.Engine.meter;
    messages = Meter.correct_messages res.Engine.meter;
    byz_words = Meter.byzantine_words res.Engine.meter;
    signatures = Pki.signatures_created pki;
    slots = res.Engine.slots;
    fallback_runs = count Strong_bool.fallback_entered;
    nonsilent_phases = count Strong_bool.decided_fast;
    help_requests = 0;
    latency =
      latency_of ~corrupted:res.Engine.corrupted ~decided_at:Strong_bool.decided_at
        res.Engine.states;
  }
