(** Multi-shot Byzantine Broadcast: a replicated log.

    "BA is a key component in many distributed systems" (paper §1) — and the
    component is rarely used once. This module chains [length] adaptive-BB
    instances inside a single synchronous execution: instance [i] fills log
    slot [i], its designated sender is the round-robin proposer
    [i mod n], and it occupies the slot-time window
    [i * stride, (i+1) * stride).

    Every correct replica ends with the same log (each entry a committed
    value or ⊥ for slots whose Byzantine proposer was exposed), and the
    steady-state cost inherits the paper's adaptivity: O(n(f+1)) words per
    log slot. *)

type entry = Committed of string | Skipped

val equal_entry : entry -> entry -> bool
val pp_entry : Format.formatter -> entry -> unit

type msg
type state

val words : msg -> int
val pp_msg : Format.formatter -> msg -> unit

val stride : Mewc_sim.Config.t -> int
(** Slots occupied by each log slot's BB instance. *)

val init :
  cfg:Mewc_sim.Config.t ->
  pki:Mewc_crypto.Pki.t ->
  secret:Mewc_crypto.Pki.Secret.t ->
  pid:Mewc_prelude.Pid.t ->
  length:int ->
  propose:(int -> string) ->
  state
(** [propose i] is the command this process broadcasts if it is the
    proposer of slot [i] (ignored otherwise). *)

val step :
  slot:int ->
  inbox:msg Mewc_sim.Envelope.t list ->
  state ->
  state * (msg * Mewc_prelude.Pid.t) list

val log : state -> entry option array
(** The replica's view of the log; [None] for slots still undecided. *)

val horizon : Mewc_sim.Config.t -> length:int -> int

type outcome = {
  logs : entry option array array;  (** per process *)
  corrupted : Mewc_prelude.Pid.t list;
  f : int;
  words : int;
  words_per_slot : float;
}

val run :
  cfg:Mewc_sim.Config.t ->
  ?seed:int64 ->
  length:int ->
  propose:(Mewc_prelude.Pid.t -> int -> string) ->
  adversary:(state, msg) Mewc_sim.Adversary.factory ->
  unit ->
  outcome
