(** Dolev–Strong authenticated Byzantine Broadcast (1983) — the classical
    baseline the paper's §4 positions itself against.

    Tolerates any [t < n] with [t + 1] rounds, but pays for it in words:
    messages carry {e signature chains} that grow with the round number, and
    every newly-extracted value is relayed to everybody — Θ(n²) messages of
    up-to-(t+1)-word chains even in benign runs. This is precisely the cost
    profile threshold certificates eliminate, which the baseline-comparison
    experiment (C-BASE) quantifies against {!Mewc_core.Adaptive_bb}.

    Protocol: the sender signs and broadcasts its value. A process that, in
    round [r], receives a value carrying [r] distinct valid signatures
    (the sender's first) {e extracts} it, appends its own signature and
    relays — but only for the first two distinct values (two suffice to
    prove sender equivocation). After round [t + 1]: decide the unique
    extracted value, or ⊥. *)

type value = string

type msg = {
  value : value;
  chain : Mewc_crypto.Pki.Sig.t list;
      (** distinct signers, sender's signature first *)
}

type state
type decision = Decided of value | No_decision

val equal_decision : decision -> decision -> bool
val pp_decision : Format.formatter -> decision -> unit

val words : msg -> int
(** 1 + chain length: signature chains do not batch (threshold schemes
    cannot aggregate signatures over different message prefixes). *)

val sender_purpose : string

val init :
  cfg:Mewc_sim.Config.t ->
  pki:Mewc_crypto.Pki.t ->
  secret:Mewc_crypto.Pki.Secret.t ->
  pid:Mewc_prelude.Pid.t ->
  sender:Mewc_prelude.Pid.t ->
  input:value option ->
  start_slot:int ->
  state

val step :
  slot:int ->
  inbox:msg Mewc_sim.Envelope.t list ->
  state ->
  state * (msg * Mewc_prelude.Pid.t) list

val decision : state -> decision option
val horizon : Mewc_sim.Config.t -> int

type outcome = {
  decisions : decision option array;
  f : int;
  words : int;
  messages : int;
  signatures : int;
}

val run :
  cfg:Mewc_sim.Config.t ->
  ?seed:int64 ->
  ?sender:Mewc_prelude.Pid.t ->
  input:value ->
  adversary:(state, msg) Mewc_sim.Adversary.factory ->
  unit ->
  outcome
