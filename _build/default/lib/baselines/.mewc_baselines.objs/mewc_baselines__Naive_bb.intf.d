lib/baselines/naive_bb.mli: Format Mewc_crypto Mewc_prelude Mewc_sim
