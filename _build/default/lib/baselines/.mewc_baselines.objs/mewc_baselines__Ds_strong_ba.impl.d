lib/baselines/ds_strong_ba.ml: Certificate Config Envelope Format Hashtbl List Mewc_crypto Mewc_prelude Mewc_sim Option Pid Pki Printf Process Value
