lib/baselines/ds_strong_ba.mli: Format Mewc_crypto Mewc_prelude Mewc_sim
