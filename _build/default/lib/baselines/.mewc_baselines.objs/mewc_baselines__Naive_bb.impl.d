lib/baselines/naive_bb.ml: Array Certificate Config Engine Envelope Format List Meter Mewc_crypto Mewc_fallback Mewc_prelude Mewc_sim Pid Pki Process String
