lib/baselines/dolev_strong.ml: Array Certificate Config Engine Envelope Format List Meter Mewc_crypto Mewc_prelude Mewc_sim Pid Pki Process String
