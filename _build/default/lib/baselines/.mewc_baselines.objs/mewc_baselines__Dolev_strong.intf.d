lib/baselines/dolev_strong.mli: Format Mewc_crypto Mewc_prelude Mewc_sim
