(** The "simple and efficient reduction from BB to strong BA" of paper §5,
    instantiated with a quadratic strong BA — i.e. Byzantine Broadcast
    {e without} adaptivity.

    The sender broadcasts its value; everyone then runs strong BA on what
    they received (⊥ for silence). If the sender is correct all correct
    processes enter with the same input and strong unanimity forces it.
    Cost: O(n²) words in {e every} run, including failure-free ones — the
    comparator that makes the adaptive protocol's O(n(f+1)) meaningful. *)

type value = string

module Opt_value : Mewc_sim.Value.S with type t = value option

type msg
type state
type decision = Decided of value | No_decision

val equal_decision : decision -> decision -> bool
val pp_decision : Format.formatter -> decision -> unit
val words : msg -> int

val sender_purpose : string

val init :
  cfg:Mewc_sim.Config.t ->
  pki:Mewc_crypto.Pki.t ->
  secret:Mewc_crypto.Pki.Secret.t ->
  pid:Mewc_prelude.Pid.t ->
  sender:Mewc_prelude.Pid.t ->
  input:value option ->
  start_slot:int ->
  state

val step :
  slot:int ->
  inbox:msg Mewc_sim.Envelope.t list ->
  state ->
  state * (msg * Mewc_prelude.Pid.t) list

val decision : state -> decision option
val horizon : Mewc_sim.Config.t -> int

type outcome = {
  decisions : decision option array;
  f : int;
  words : int;
  messages : int;
  signatures : int;
}

val run :
  cfg:Mewc_sim.Config.t ->
  ?seed:int64 ->
  ?sender:Mewc_prelude.Pid.t ->
  input:value ->
  adversary:(state, msg) Mewc_sim.Adversary.factory ->
  unit ->
  outcome
