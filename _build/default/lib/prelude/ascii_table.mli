(** Plain-text table rendering for the benchmark reports.

    Renders aligned boxes such as:

    {v
    +----+-----+-------+
    | n  | f   | words |
    +----+-----+-------+
    | 9  | 0   | 42    |
    +----+-----+-------+
    v} *)

type t

val create : title:string -> headers:string list -> t
val add_row : t -> string list -> unit
(** Rows shorter than the header are right-padded with empty cells; longer
    rows raise [Invalid_argument]. *)

val render : t -> string
val print : t -> unit
