lib/prelude/ascii_table.ml: Buffer List String
