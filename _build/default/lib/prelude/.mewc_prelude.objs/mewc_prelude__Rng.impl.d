lib/prelude/rng.ml: Int64 List
