lib/prelude/pid.mli: Format Map Set
