lib/prelude/stats.mli:
