lib/prelude/rng.mli:
