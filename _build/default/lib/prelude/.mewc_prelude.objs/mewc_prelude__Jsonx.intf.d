lib/prelude/jsonx.mli: Format
