lib/prelude/jsonx.ml: Buffer Char Float Format List Printf String
