lib/prelude/pid.ml: Format Fun Int List Map Set
