type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }
let copy g = { state = g.state }

(* splitmix64 finalizer (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g = create (int64 g)

let int g bound =
  assert (bound > 0);
  let mask = Int64.shift_right_logical (int64 g) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let bool g = Int64.logand (int64 g) 1L = 1L

let float g bound =
  let u = Int64.to_float (Int64.shift_right_logical (int64 g) 11) in
  u /. 9007199254740992.0 *. bound

let pick g xs =
  match xs with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth xs (int g (List.length xs))

let shuffle g xs =
  let tagged = List.map (fun x -> (int64 g, x)) xs in
  let sorted = List.sort (fun (a, _) (b, _) -> Int64.compare a b) tagged in
  List.map snd sorted

let sample g k xs =
  if k > List.length xs then invalid_arg "Rng.sample: k too large";
  let shuffled = shuffle g xs in
  List.filteri (fun i _ -> i < k) shuffled
