type t = {
  title : string;
  headers : string list;
  mutable rows : string list list;  (* reversed *)
}

let create ~title ~headers = { title; headers; rows = [] }

let add_row t row =
  let width = List.length t.headers in
  let len = List.length row in
  if len > width then invalid_arg "Ascii_table.add_row: too many cells";
  let padded = row @ List.init (width - len) (fun _ -> "") in
  t.rows <- padded :: t.rows

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      t.headers
  in
  let buf = Buffer.create 256 in
  let sep () =
    Buffer.add_char buf '+';
    List.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i cell ->
        let w = List.nth widths i in
        Buffer.add_char buf ' ';
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (w - String.length cell + 1) ' ');
        Buffer.add_char buf '|')
      cells;
    Buffer.add_char buf '\n'
  in
  if t.title <> "" then begin
    Buffer.add_string buf t.title;
    Buffer.add_char buf '\n'
  end;
  sep ();
  line t.headers;
  sep ();
  List.iter line rows;
  if rows <> [] then sep ();
  Buffer.contents buf

let print t = print_string (render t)
