type t = int

let equal = Int.equal
let compare = Int.compare
let pp fmt p = Format.fprintf fmt "p%d" p
let all ~n = List.init n Fun.id
let is_valid ~n p = 0 <= p && p < n
let rotating_leader ~n ~phase = phase mod n

module Set = Set.Make (Int)
module Map = Map.Make (Int)
