let mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
    let m = mean xs in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs
      /. float_of_int (List.length xs - 1)
    in
    sqrt var

let minimum = function [] -> nan | x :: xs -> List.fold_left min x xs
let maximum = function [] -> nan | x :: xs -> List.fold_left max x xs

type fit = { slope : float; intercept : float; r2 : float }

let linear_fit pts =
  match pts with
  | [] | [ _ ] -> invalid_arg "Stats.linear_fit: need at least two points"
  | _ ->
    let n = float_of_int (List.length pts) in
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0. pts in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0. pts in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. pts in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. pts in
    let denom = (n *. sxx) -. (sx *. sx) in
    if abs_float denom < 1e-12 then
      invalid_arg "Stats.linear_fit: degenerate x values";
    let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
    let intercept = (sy -. (slope *. sx)) /. n in
    let ybar = sy /. n in
    let ss_tot =
      List.fold_left (fun a (_, y) -> a +. ((y -. ybar) *. (y -. ybar))) 0. pts
    in
    let ss_res =
      List.fold_left
        (fun a (x, y) ->
          let e = y -. ((slope *. x) +. intercept) in
          a +. (e *. e))
        0. pts
    in
    let r2 = if ss_tot < 1e-12 then 1. else 1. -. (ss_res /. ss_tot) in
    { slope; intercept; r2 }

let loglog_fit pts =
  let logged =
    List.filter_map
      (fun (x, y) -> if x > 0. && y > 0. then Some (log x, log y) else None)
      pts
  in
  linear_fit logged

let ratio_spread pts =
  let ratios = List.filter_map (fun (x, y) -> if x > 0. then Some (y /. x) else None) pts in
  (minimum ratios, maximum ratios)
