(** Process identities.

    Processes in a system of size [n] are numbered [0 .. n-1]. The paper
    writes [p_1 .. p_n]; we use zero-based indices throughout and convert
    only when printing. *)

type t = int

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val all : n:int -> t list
(** [all ~n] is [[0; 1; ...; n-1]], the static process set Π. *)

val is_valid : n:int -> t -> bool
(** [is_valid ~n p] checks that [p] denotes a process of a system of size
    [n]. *)

val rotating_leader : n:int -> phase:int -> t
(** [rotating_leader ~n ~phase] is the leader of phase [phase] (1-based), the
    paper's [p_(j mod n)]: phases [1, 2, ..., n] map to processes
    [1, 2, ..., n-1, 0] in zero-based numbering. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
