(** Small statistics toolkit used by the benchmark harness.

    The Table-1 reproduction fits measured word counts against candidate
    complexity envelopes (n, n^2, n(f+1)); the fits here are ordinary
    least-squares, optionally in log-log space to estimate scaling
    exponents. *)

val mean : float list -> float
val stddev : float list -> float
val minimum : float list -> float
val maximum : float list -> float

type fit = {
  slope : float;
  intercept : float;
  r2 : float;  (** coefficient of determination *)
}

val linear_fit : (float * float) list -> fit
(** Least-squares fit of [y = slope * x + intercept]. Requires at least two
    points with distinct x. *)

val loglog_fit : (float * float) list -> fit
(** Fit of [log y = slope * log x + intercept]; [slope] estimates the scaling
    exponent of [y] in [x]. Points with non-positive coordinates are
    dropped. *)

val ratio_spread : (float * float) list -> float * float
(** [ratio_spread pts] is [(lo, hi)] over the ratios [y /. x]: a cheap check
    that y = Theta(x) (the ratio band stays within a constant factor). *)
