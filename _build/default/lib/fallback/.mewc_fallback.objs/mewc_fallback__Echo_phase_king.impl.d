lib/fallback/echo_phase_king.ml: Certificate Composition Config Envelope Format Hashtbl Int List Mewc_crypto Mewc_prelude Mewc_sim Option Pid Pki Printf Process String Value
