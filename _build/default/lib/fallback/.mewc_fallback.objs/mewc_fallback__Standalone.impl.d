lib/fallback/standalone.ml: Array Config Echo_phase_king Engine Meter Mewc_crypto Mewc_prelude Mewc_sim Pki Process Value
