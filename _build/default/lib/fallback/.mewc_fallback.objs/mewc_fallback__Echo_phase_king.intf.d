lib/fallback/echo_phase_king.mli: Format Mewc_crypto Mewc_prelude Mewc_sim
