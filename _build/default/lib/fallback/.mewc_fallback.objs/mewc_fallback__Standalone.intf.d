lib/fallback/standalone.mli: Mewc_prelude Mewc_sim
