type 'm event = { envelope : 'm Envelope.t; byzantine_sender : bool }
type 'm t = { enabled : bool; mutable events : 'm event list (* reversed *) }

let create ~enabled = { enabled; events = [] }
let enabled t = t.enabled

let record t ~byzantine_sender envelope =
  if t.enabled then t.events <- { envelope; byzantine_sender } :: t.events

let events t = List.rev t.events
let length t = List.length t.events

let pp pp_msg fmt t =
  List.iter
    (fun { envelope; byzantine_sender } ->
      Format.fprintf fmt "%s%a@."
        (if byzantine_sender then "[byz] " else "      ")
        (Envelope.pp pp_msg) envelope)
    (events t)
