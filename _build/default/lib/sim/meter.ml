type t = {
  mutable correct_words : int;
  mutable correct_messages : int;
  mutable byz_words : int;
  mutable byz_messages : int;
}

let create () =
  { correct_words = 0; correct_messages = 0; byz_words = 0; byz_messages = 0 }

let charge m ~byzantine ~words =
  if words < 1 then invalid_arg "Meter.charge: each message is at least 1 word";
  if byzantine then begin
    m.byz_words <- m.byz_words + words;
    m.byz_messages <- m.byz_messages + 1
  end
  else begin
    m.correct_words <- m.correct_words + words;
    m.correct_messages <- m.correct_messages + 1
  end

let correct_words m = m.correct_words
let correct_messages m = m.correct_messages
let byzantine_words m = m.byz_words
let byzantine_messages m = m.byz_messages

let pp fmt m =
  Format.fprintf fmt "correct: %d words / %d msgs; byzantine: %d words / %d msgs"
    m.correct_words m.correct_messages m.byz_words m.byz_messages
