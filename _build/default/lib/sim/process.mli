(** Protocol state machines.

    A process is a deterministic state machine driven by the synchronous
    engine: at every slot it receives the messages delivered at the start of
    that slot and emits the messages it sends during it. Time is measured in
    δ-slots — the known message-delay bound of the synchronous model
    (paper §2): a message sent in slot [s] is delivered at the start of slot
    [s + 1]. A paper "round" is a single slot; the fallback's δ' = 2δ rounds
    span two slots. *)

type ('s, 'm) t = {
  init : 's;
  step :
    slot:int -> inbox:'m Envelope.t list -> 's -> 's * ('m * Mewc_prelude.Pid.t) list;
      (** [step ~slot ~inbox state] returns the new state and the messages
          to send, as [(payload, destination)] pairs. The inbox holds
          everything delivered at the start of [slot] (i.e. sent during
          [slot - 1]), in arrival order. *)
}

val broadcast : n:int -> 'm -> ('m * Mewc_prelude.Pid.t) list
(** [broadcast ~n msg] addresses [msg] to all [n] processes (including the
    sender itself; self-delivery is free of charge and arrives next slot
    like any other message). *)

val broadcast_others : n:int -> self:Mewc_prelude.Pid.t -> 'm -> ('m * Mewc_prelude.Pid.t) list
(** Same, excluding the sender. *)

val silent : 's -> ('s, 'm) t
(** A machine that never sends anything (used for crashed processes). *)
