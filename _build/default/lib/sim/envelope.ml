type 'm t = {
  src : Mewc_prelude.Pid.t;
  dst : Mewc_prelude.Pid.t;
  sent_at : int;
  msg : 'm;
}

let pp pp_msg fmt e =
  Format.fprintf fmt "[%d] %a -> %a: %a" e.sent_at Mewc_prelude.Pid.pp e.src
    Mewc_prelude.Pid.pp e.dst pp_msg e.msg
