(** Runtime instrumentation behind the Figure-1 reproduction.

    The paper's Figure 1 shows which solution uses which primitive ("each
    box uses the primitives within it"). Rather than redraw it by hand, the
    protocols register a [user uses primitive] edge whenever the dependency
    is actually exercised at run time — initialization for structural
    containment, fallback entry for the [A_fallback] black box — and the
    FIG1 experiment renders the observed relation.

    The registry is global and monotonic within a process; benchmarks
    {!reset} it between experiments. *)

val note : user:string -> uses:string -> unit
val edges : unit -> (string * string * int) list
(** [(user, uses, count)] triples, sorted. *)

val reset : unit -> unit

val pp_diagram : Format.formatter -> unit -> unit
(** Renders the containment relation as an indented tree with use counts. *)
