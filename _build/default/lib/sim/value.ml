module type S = sig
  type t

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val encode : t -> string
  val words : t -> int
  val pp : Format.formatter -> t -> unit
end

module Str = struct
  type t = string

  let equal = String.equal
  let compare = String.compare
  let encode v = v
  let words _ = 1
  let pp fmt v = Format.fprintf fmt "%S" v
end

module Bool = struct
  type t = bool

  let equal = Bool.equal
  let compare = Bool.compare
  let encode = function true -> "1" | false -> "0"
  let words _ = 1
  let pp = Format.pp_print_bool
end
