lib/sim/adversary.ml: Array Config Envelope List Mewc_crypto Mewc_prelude Printf
