lib/sim/engine.ml: Adversary Array Config Envelope List Meter Mewc_prelude Option Pid Printf Process Rng Trace
