lib/sim/engine.ml: Adversary Array Config Envelope List Meter Mewc_prelude Monitor Option Pid Printf Process Rng String Trace
