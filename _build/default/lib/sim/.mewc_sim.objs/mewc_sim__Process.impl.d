lib/sim/process.ml: Envelope List Mewc_prelude
