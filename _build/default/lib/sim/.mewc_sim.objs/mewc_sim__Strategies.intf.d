lib/sim/strategies.mli: Adversary Envelope Mewc_prelude Process
