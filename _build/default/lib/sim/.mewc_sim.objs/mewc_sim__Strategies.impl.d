lib/sim/strategies.ml: Adversary Array Hashtbl List Mewc_prelude Pid Printf Process
