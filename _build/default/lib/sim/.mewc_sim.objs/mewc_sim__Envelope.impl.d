lib/sim/envelope.ml: Format Mewc_prelude
