lib/sim/envelope.mli: Format Mewc_prelude
