lib/sim/monitor.ml: Config Envelope Format Hashtbl List Mewc_prelude Printf String Trace
