lib/sim/process.mli: Envelope Mewc_prelude
