lib/sim/value.ml: Bool Format String
