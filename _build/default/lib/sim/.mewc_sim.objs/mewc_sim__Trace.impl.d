lib/sim/trace.ml: Envelope Format List
