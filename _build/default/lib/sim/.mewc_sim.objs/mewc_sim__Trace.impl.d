lib/sim/trace.ml: Buffer Envelope Format List Mewc_prelude Option Printf Result String
