lib/sim/adversary.mli: Config Envelope Mewc_crypto Mewc_prelude
