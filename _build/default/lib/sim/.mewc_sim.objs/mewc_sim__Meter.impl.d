lib/sim/meter.ml: Format Hashtbl Int List Mewc_prelude
