lib/sim/meter.ml: Format
