lib/sim/monitor.mli: Config Format Trace
