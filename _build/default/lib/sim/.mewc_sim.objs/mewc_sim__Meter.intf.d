lib/sim/meter.mli: Format
