lib/sim/meter.mli: Format Mewc_prelude
