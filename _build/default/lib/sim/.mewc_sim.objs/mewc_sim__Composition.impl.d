lib/sim/composition.ml: Format Hashtbl List Option String
