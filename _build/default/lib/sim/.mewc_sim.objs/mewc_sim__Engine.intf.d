lib/sim/engine.mli: Adversary Config Meter Mewc_prelude Process Trace
