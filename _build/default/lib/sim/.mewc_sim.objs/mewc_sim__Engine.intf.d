lib/sim/engine.mli: Adversary Config Meter Mewc_prelude Monitor Process Trace
