lib/sim/trace.mli: Envelope Format
