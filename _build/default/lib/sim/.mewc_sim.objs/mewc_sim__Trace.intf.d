lib/sim/trace.mli: Envelope Format Mewc_prelude
