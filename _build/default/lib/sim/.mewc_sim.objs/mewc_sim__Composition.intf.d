lib/sim/composition.mli: Format
