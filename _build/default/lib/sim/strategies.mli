(** Adversary combinators.

    Beyond plain crashes ({!Adversary.crash}), most interesting Byzantine
    behaviours are small perturbations of the honest protocol: run the real
    state machine but censor, redirect, duplicate or rewrite selected
    messages. [deviant] packages that pattern; the protocol-specific attack
    zoo ({!Mewc_core.Attacks}) is built from it plus hand-rolled senders. *)

val deviant :
  name:string ->
  victims:Mewc_prelude.Pid.t list ->
  machine:(Mewc_prelude.Pid.t -> ('m_state, 'm) Process.t) ->
  mangle:
    (slot:int ->
    pid:Mewc_prelude.Pid.t ->
    inbox:'m Envelope.t list ->
    ('m * Mewc_prelude.Pid.t) list ->
    ('m * Mewc_prelude.Pid.t) list) ->
  ('s, 'm) Adversary.t
(** Corrupts [victims] at slot 0. Each corrupted process privately runs
    [machine pid] — typically the honest protocol, possibly with different
    parameters — and its outgoing messages pass through [mangle] before
    hitting the network; [mangle] also sees the process's inbox, so it can
    censor, rewrite or inject messages based on what was heard. The
    adversary's internal states are independent of the engine's ['s] states
    (which belong to correct processes). *)

val scripted :
  name:string ->
  victims:Mewc_prelude.Pid.t list ->
  script:
    (slot:int ->
    pid:Mewc_prelude.Pid.t ->
    inbox:'m Envelope.t list ->
    ('m * Mewc_prelude.Pid.t) list) ->
  ('s, 'm) Adversary.t
(** Corrupts [victims] at slot 0 and drives them with a stateless-per-slot
    script over their inboxes (close over refs for stateful attacks). *)

val compose : ('s, 'm) Adversary.t -> ('s, 'm) Adversary.t -> ('s, 'm) Adversary.t
(** Union of two adversaries: corruptions are merged (budget still enforced
    by the engine); each corrupted process is driven by whichever adversary
    listed it first (the left one wins ties). Useful to combine, e.g., an
    equivocating sender with crash failures elsewhere. *)
