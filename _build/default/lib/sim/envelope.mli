(** A message in flight.

    Links are reliable and authenticated (paper §2): the engine stamps the
    true sender on every envelope, so a Byzantine process cannot spoof the
    source of a message — it can only lie {e inside} the payload, where
    lying is caught (or not) by signature verification. *)

type 'm t = {
  src : Mewc_prelude.Pid.t;
  dst : Mewc_prelude.Pid.t;
  sent_at : int;  (** slot in which the message was sent *)
  msg : 'm;
}

val pp :
  (Format.formatter -> 'm -> unit) -> Format.formatter -> 'm t -> unit
