(** Agreement values.

    The protocols are parametric in the value domain (the paper's multi-valued
    vs binary distinction). A value costs a fixed number of words and has an
    injective wire encoding which is what actually gets signed. *)

module type S = sig
  type t

  val equal : t -> t -> bool
  val compare : t -> t -> int

  val encode : t -> string
  (** Injective: [encode a = encode b] implies [equal a b]. Signatures and
      certificates bind this encoding, never the OCaml value. *)

  val words : t -> int
  (** Cost of shipping one value; 1 for "values from a finite domain"
      (paper §2). *)

  val pp : Format.formatter -> t -> unit
end

module Str : S with type t = string
(** Multi-valued domain: interned strings, 1 word each. *)

module Bool : S with type t = bool
(** Binary domain, for the paper's §7 strong BA. *)
