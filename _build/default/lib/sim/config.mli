(** Static system parameters (paper §2).

    A system has [n] processes of which at most [t] may be corrupted over the
    whole run; the paper's protocols assume optimal resilience [n = 2t + 1].
    [f] — the number of processes {e actually} corrupted in a given run — is
    a property of the execution, not of the configuration. *)

type t = private { n : int; t : int }

val create : n:int -> t:int -> t
(** Requires [n >= 2 * t + 1] and [t >= 0]; raises [Invalid_argument]
    otherwise. *)

val optimal : n:int -> t
(** The paper's setting: [t = (n - 1) / 2], i.e. [n = 2t + 1]. Requires odd
    [n >= 3]. *)

val big_quorum : t -> int
(** ceil((n + t + 1) / 2) — the paper's key threshold (§6): two quorums of
    this size intersect in at least [t + 1] processes, hence in at least one
    correct process, for any [f]. *)

val small_quorum : t -> int
(** [t + 1] — guarantees at least one correct contributor. *)

val pp : Format.formatter -> t -> unit
