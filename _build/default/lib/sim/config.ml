type t = { n : int; t : int }

let create ~n ~t =
  if t < 0 then invalid_arg "Config.create: t must be non-negative";
  if n < (2 * t) + 1 then invalid_arg "Config.create: need n >= 2t + 1";
  { n; t }

let optimal ~n =
  if n < 3 || n mod 2 = 0 then invalid_arg "Config.optimal: need odd n >= 3";
  { n; t = (n - 1) / 2 }

let big_quorum { n; t } = (n + t + 1 + 1) / 2
let small_quorum { t; _ } = t + 1
let pp fmt { n; t } = Format.fprintf fmt "(n=%d, t=%d)" n t
