(** Communication-complexity accounting (paper §2, "Complexity").

    "The communication complexity of a protocol is the maximum number of
    words sent by all correct processes, across all runs." Accordingly the
    meter keeps words sent by correct processes separate from words sent by
    Byzantine processes; the paper's tables are about the former. Messages a
    process addresses to itself cross no link and are free.

    Each message counts at least one word (paper: "each message contains at
    least 1 word"); the per-protocol [words] function enforces that. *)

type t

val create : unit -> t

val charge : t -> byzantine:bool -> words:int -> unit
(** Account one message of the given size. *)

val correct_words : t -> int
val correct_messages : t -> int
val byzantine_words : t -> int
val byzantine_messages : t -> int

val pp : Format.formatter -> t -> unit
