(** Execution traces for debugging and for the Figure-1 instrumentation.

    When enabled, the engine records every envelope together with whether
    its sender was Byzantine at send time. Traces make failed property tests
    replayable narratives rather than bare seeds. *)

type 'm event = { envelope : 'm Envelope.t; byzantine_sender : bool }
type 'm t

val create : enabled:bool -> 'm t
val enabled : 'm t -> bool
val record : 'm t -> byzantine_sender:bool -> 'm Envelope.t -> unit

val events : 'm t -> 'm event list
(** In chronological order. *)

val length : 'm t -> int

val pp :
  (Format.formatter -> 'm -> unit) -> Format.formatter -> 'm t -> unit
