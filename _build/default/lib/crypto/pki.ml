open Mewc_prelude

type t = {
  n : int;
  mac_keys : string array;  (* trusted setup; used for verification only *)
  mutable signs : int;
  mutable verifies : int;
  mutable combines : int;
}

module Secret = struct
  type nonrec t = { owner : Pid.t; mac_key : string }

  let owner s = s.owner
end

let setup ?(seed = 0x5EEDL) ~n () =
  let rng = Rng.create seed in
  let mac_keys =
    Array.init n (fun i ->
        Printf.sprintf "mewc-key-%d-%Lx-%Lx" i (Rng.int64 rng) (Rng.int64 rng))
  in
  let pki = { n; mac_keys; signs = 0; verifies = 0; combines = 0 } in
  let secrets =
    Array.init n (fun i -> { Secret.owner = i; mac_key = mac_keys.(i) })
  in
  (pki, secrets)

let n t = t.n

module Sig = struct
  type t = { signer : Pid.t; tag : Sha256.t }

  let signer s = s.signer
  let equal a b = Pid.equal a.signer b.signer && Sha256.equal a.tag b.tag

  let compare a b =
    match Pid.compare a.signer b.signer with
    | 0 -> Sha256.compare a.tag b.tag
    | c -> c

  let pp fmt s = Format.fprintf fmt "<sig:%a>" Pid.pp s.signer
end

let sign t (secret : Secret.t) msg =
  t.signs <- t.signs + 1;
  { Sig.signer = secret.Secret.owner; tag = Sha256.hmac ~key:secret.Secret.mac_key msg }

let verify t (s : Sig.t) ~msg =
  t.verifies <- t.verifies + 1;
  Pid.is_valid ~n:t.n s.Sig.signer
  && Sha256.equal s.Sig.tag (Sha256.hmac ~key:t.mac_keys.(s.Sig.signer) msg)

module Tsig = struct
  type t = { signers : Pid.Set.t; tag : Sha256.t }

  let cardinality ts = Pid.Set.cardinal ts.signers
  let equal a b = Pid.Set.equal a.signers b.signers && Sha256.equal a.tag b.tag

  let pp fmt ts =
    Format.fprintf fmt "<tsig:%d shares>" (Pid.Set.cardinal ts.signers)
end

(* The aggregate tag binds the signer set and the message: it is the digest
   of the individual HMAC tags in signer order, which only someone holding
   (or having verified) k genuine shares can compute. *)
let aggregate_tag t signers ~msg =
  let buf = Buffer.create 256 in
  Pid.Set.iter
    (fun p ->
      Buffer.add_string buf (Sha256.to_raw (Sha256.hmac ~key:t.mac_keys.(p) msg)))
    signers;
  Sha256.digest (Buffer.contents buf)

let combine t ~k ~msg shares =
  t.combines <- t.combines + 1;
  let valid =
    List.filter (fun s -> verify t s ~msg) shares
    |> List.map Sig.signer |> Pid.Set.of_list
  in
  if Pid.Set.cardinal valid < k then None
  else begin
    (* Keep exactly the k lowest signer ids, for determinism. *)
    let signers =
      Pid.Set.elements valid |> List.filteri (fun i _ -> i < k) |> Pid.Set.of_list
    in
    Some { Tsig.signers; tag = aggregate_tag t signers ~msg }
  end

let verify_tsig t (ts : Tsig.t) ~k ~msg =
  t.verifies <- t.verifies + 1;
  Pid.Set.cardinal ts.Tsig.signers >= k
  && Pid.Set.for_all (Pid.is_valid ~n:t.n) ts.Tsig.signers
  && Sha256.equal ts.Tsig.tag (aggregate_tag t ts.Tsig.signers ~msg)

let signatures_created t = t.signs
let verifications_performed t = t.verifies
let combines_performed t = t.combines

let reset_counters t =
  t.signs <- 0;
  t.verifies <- 0;
  t.combines <- 0
