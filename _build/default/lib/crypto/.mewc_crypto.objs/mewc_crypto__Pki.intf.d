lib/crypto/pki.mli: Format Mewc_prelude
