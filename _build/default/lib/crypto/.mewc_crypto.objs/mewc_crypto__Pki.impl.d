lib/crypto/pki.ml: Array Buffer Format List Mewc_prelude Pid Printf Rng Sha256
