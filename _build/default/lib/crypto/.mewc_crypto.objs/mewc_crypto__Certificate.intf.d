lib/crypto/certificate.mli: Format Pki
