lib/crypto/certificate.ml: Format Pki Printf String
