(** SHA-256 (FIPS 180-4), pure OCaml.

    Used as the digest underlying signatures and threshold-signature shares,
    so that certificate payloads are bound to real message digests rather
    than to OCaml structural equality. Verified in the test suite against
    the official FIPS / NIST test vectors. *)

type t
(** A 32-byte digest. *)

val digest : string -> t
(** [digest msg] hashes the whole string. *)

val to_hex : t -> string
(** Lowercase hexadecimal rendering (64 characters). *)

val to_raw : t -> string
(** The 32 raw digest bytes. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val hmac : key:string -> string -> t
(** HMAC-SHA256 (RFC 2104). The simulated signature scheme uses this as its
    unforgeable tag: [hmac ~key:secret msg]. *)
