bench/main.mli:
