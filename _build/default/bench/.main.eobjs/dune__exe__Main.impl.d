bench/main.ml: Adversary Analyze Array Bechamel Benchmark Config Experiments Hashtbl Instances List Measure Mewc_baselines Mewc_core Mewc_prelude Mewc_sim Printf Staged String Sys Test Time Toolkit
