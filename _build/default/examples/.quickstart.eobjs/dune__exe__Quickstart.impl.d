examples/quickstart.ml: Adaptive_bb Adversary Array Attacks Config Instances List Mewc_core Mewc_sim Printf String
