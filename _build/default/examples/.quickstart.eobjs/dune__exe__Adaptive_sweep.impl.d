examples/adaptive_sweep.ml: Adversary Array Ascii_table Config Instances List Mewc_core Mewc_prelude Mewc_sim Printf
