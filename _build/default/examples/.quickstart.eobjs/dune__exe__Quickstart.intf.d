examples/quickstart.mli:
