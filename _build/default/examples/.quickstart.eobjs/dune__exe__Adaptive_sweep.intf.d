examples/adaptive_sweep.mli:
