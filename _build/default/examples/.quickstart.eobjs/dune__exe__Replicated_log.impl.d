examples/replicated_log.ml: Adversary Array Config List Mewc_core Mewc_prelude Mewc_sim Printf Repeated_bb
