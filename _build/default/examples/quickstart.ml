(* Quickstart: broadcast one value with the paper's adaptive Byzantine
   Broadcast and look at what it cost.

     dune exec examples/quickstart.exe

   A system of n = 9 processes tolerates t = 4 Byzantine ones. Process 0
   broadcasts "attack-at-dawn"; we run once failure-free and once with two
   crashed processes, and print decisions and the word complexity — the
   measure this paper is about. *)

open Mewc_sim
open Mewc_core

let describe name (o : _ Instances.agreement_outcome) =
  Printf.printf "%s\n" name;
  Printf.printf "  f = %d (corrupted: %s)\n" o.f
    (if o.corrupted = [] then "none"
     else String.concat ", " (List.map (Printf.sprintf "p%d") o.corrupted));
  Array.iteri
    (fun p d ->
      if not (List.mem p o.corrupted) then
        Printf.printf "  p%d decided %s\n" p
          (match d with
          | Some (Adaptive_bb.Decided v) -> Printf.sprintf "%S" v
          | Some Adaptive_bb.No_decision -> "⊥"
          | None -> "nothing (bug!)"))
    o.decisions;
  Printf.printf "  cost: %d words in %d messages (%d signatures created)\n\n"
    o.words o.messages o.signatures

let () =
  let cfg = Config.optimal ~n:9 in
  Printf.printf "Adaptive Byzantine Broadcast, n = %d, t = %d\n\n" cfg.Config.n
    cfg.Config.t;

  (* Failure-free: one round of sender dissemination, silent vetting, and a
     single weak-BA phase — O(n) words. *)
  let honest = Adversary.const (Adversary.honest ~name:"honest") in
  describe "run 1: failure-free"
    (Instances.run_bb ~cfg ~input:"attack-at-dawn" ~adversary:honest ());

  (* Two crashes: still O(n) — the word count barely moves. That is the
     paper's point: pay for actual failures, not for the worst case. *)
  let crash2 = Adversary.const (Adversary.crash ~victims:[ 3; 7 ] ()) in
  describe "run 2: two crashed processes"
    (Instances.run_bb ~cfg ~input:"attack-at-dawn" ~adversary:crash2 ());

  (* A Byzantine sender that signs two different values: agreement still
     holds (everyone decides the same thing — possibly ⊥). *)
  let equivocator =
    Attacks.bb_equivocating_sender ~cfg ~sender:0 ~v1:"attack" ~v2:"retreat"
  in
  describe "run 3: equivocating Byzantine sender"
    (Instances.run_bb ~cfg ~input:"ignored" ~adversary:equivocator ())
