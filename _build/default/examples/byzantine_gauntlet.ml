(* The gauntlet: every protocol against its attack zoo, checking the
   paper's three properties (agreement, termination, validity) survive.

     dune exec examples/byzantine_gauntlet.exe

   Each line is one adversarial execution; PASS means every correct process
   decided, all on the same value, and the validity clause for that
   scenario held. This is the same machinery the test suite uses —
   exposed as an example so downstream users can gauntlet their own
   deployments. *)

open Mewc_sim
open Mewc_core
module W = Instances.Weak_str

let check name ~decided_same ~extra =
  Printf.printf "  %-52s %s\n" name
    (if decided_same && extra then "PASS" else "FAIL")

let correct_decisions (o : _ Instances.agreement_outcome) =
  Array.to_list o.decisions
  |> List.mapi (fun p d -> (p, d))
  |> List.filter (fun (p, _) -> not (List.mem p o.corrupted))
  |> List.map snd

let all_same ds =
  List.for_all (fun d -> d <> None) ds
  && List.length (List.sort_uniq compare ds) = 1

let () =
  let n = 9 in
  let cfg = Config.optimal ~n in
  let honest ~pki ~secrets =
    Adversary.const (Adversary.honest ~name:"honest") ~pki ~secrets
  in

  Printf.printf "Byzantine Broadcast (n = %d):\n" n;
  let bb name ?(validity = fun _ -> true) adversary =
    let o = Instances.run_bb ~cfg ~input:"v" ~adversary () in
    let ds = correct_decisions o in
    check name ~decided_same:(all_same ds) ~extra:(validity ds)
  in
  bb "honest run"
    ~validity:(List.for_all (fun d -> d = Some (Adaptive_bb.Decided "v")))
    honest;
  bb "crashed sender"
    ~validity:(List.for_all (fun d -> d = Some Adaptive_bb.No_decision))
    (Adversary.const (Adversary.crash ~victims:[ 0 ] ()));
  bb "t crashes"
    ~validity:(List.for_all (fun d -> d = Some (Adaptive_bb.Decided "v")))
    (Adversary.const (Adversary.crash ~victims:[ 1; 2; 3; 4 ] ()));
  bb "equivocating sender"
    (Attacks.bb_equivocating_sender ~cfg ~sender:0 ~v1:"a" ~v2:"b");
  bb "selective sender (one recipient)"
    (Attacks.bb_selective_sender ~cfg ~sender:0 ~value:"rare" ~recipients:[ 5 ]);

  Printf.printf "\nWeak BA (n = %d):\n" n;
  let weak name ?validate ?(validity = fun _ -> true) ~inputs adversary =
    let o = Instances.run_weak_ba ~cfg ?validate ~inputs ~adversary () in
    let ds = correct_decisions o in
    check name ~decided_same:(all_same ds) ~extra:(validity ds)
  in
  weak "honest, unanimous" ~inputs:(Array.make n "u")
    ~validity:(List.for_all (fun d -> d = Some (W.Value "u")))
    honest;
  weak "lonely decider (help round)" ~inputs:(Array.make n "u")
    (Attacks.wba_lonely_decider ~cfg ~lucky:5);
  weak "busy Byzantine leaders" ~inputs:(Array.make n "u")
    (Attacks.wba_busy_byz_leaders ~cfg ~leaders:[ 1; 2 ]);
  weak "help-request spam" ~inputs:(Array.make n "u")
    (Attacks.wba_help_req_spammers ~cfg ~spammers:[ 7; 8 ]);
  weak "late fallback certificate" ~inputs:(Array.make n "u")
    (Attacks.wba_late_fallback_cert ~cfg ~victim:0);
  weak "invalid fallback king (⊥ outcome)"
    ~validate:(fun v -> v <> "EVIL")
    ~inputs:(Array.init n (fun i -> Printf.sprintf "x%d" i))
    ~validity:(List.for_all (fun d -> d = Some W.Bot))
    (Attacks.wba_invalid_fallback_king ~cfg ~byz:[ 1; 6; 7; 8 ] ~evil:"EVIL");

  Printf.printf "\nStrong BA (n = %d):\n" n;
  let strong name ?(validity = fun _ -> true) ~inputs adversary =
    let o = Instances.run_strong_ba ~cfg ~inputs ~adversary () in
    let ds = correct_decisions o in
    check name ~decided_same:(all_same ds) ~extra:(validity ds)
  in
  strong "honest, unanimous true" ~inputs:(Array.make n true)
    ~validity:(List.for_all (fun d -> d = Some true))
    honest;
  strong "leader crash" ~inputs:(Array.init n (fun i -> i mod 2 = 0))
    (Adversary.const (Adversary.crash ~victims:[ 0 ] ()));
  strong "withholding leader (Lemma 26)" ~inputs:(Array.make n true)
    ~validity:(List.for_all (fun d -> d = Some true))
    (Attacks.sba_withholding_leader ~cfg ~leader:0 ~lucky:3);

  Printf.printf "\nA_fallback / echo phase king (n = %d):\n" n;
  let epk name ?(validity = fun _ -> true) ~inputs adversary =
    let o = Instances.run_fallback ~cfg ~inputs ~adversary () in
    let ds = correct_decisions o in
    check name ~decided_same:(all_same ds) ~extra:(validity ds)
  in
  epk "unanimity vs equivocating king" ~inputs:(Array.make n "good")
    ~validity:(List.for_all (fun d -> d = Some "good"))
    (Attacks.epk_equivocating_king ~cfg ~king:1 ~v1:"e1" ~v2:"e2");
  epk "divergent inputs, staggered crashes"
    ~inputs:(Array.init n (fun i -> Printf.sprintf "x%d" (i mod 3)))
    (Adversary.const (Adversary.staggered_crash ~victims:[ 1; 2; 3 ] ~every:5))
