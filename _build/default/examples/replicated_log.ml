(* "BA is a key component in many distributed systems" (paper §1): a
   replicated log built on the adaptive Byzantine Broadcast, using the
   library's multi-shot composition (Repeated_bb) — all log slots run
   inside one synchronous execution.

     dune exec examples/replicated_log.exe

   Log slot i is one BB instance whose designated sender is the round-robin
   proposer p_(i mod n). A Byzantine proposer controls what its own slot
   commits — a value it signed, or ⊥ (recorded as a skipped slot) — but it
   can never make replicas' logs diverge. The steady-state cost inherits the
   paper's adaptivity: O(n(f+1)) words per log slot. *)

open Mewc_sim
open Mewc_core

let commands =
  [| "set x = 1"; "set y = 2"; "incr x"; "del y"; "set z = 41"; "incr z" |]

let () =
  let n = 9 in
  let cfg = Config.optimal ~n in
  let length = Array.length commands in
  let stride = Repeated_bb.stride cfg in
  (* The proposer of slot 3 (process p3) crashes right before its slot. *)
  let adversary =
    Adversary.const (Adversary.crash ~at:(3 * stride) ~victims:[ 3 ] ())
  in
  let o =
    Repeated_bb.run ~cfg ~length
      ~propose:(fun _pid i -> commands.(i))
      ~adversary ()
  in
  let reference =
    (* Any never-corrupted replica's view. *)
    let p = List.find (fun p -> not (List.mem p o.Repeated_bb.corrupted)) (Mewc_prelude.Pid.all ~n) in
    o.Repeated_bb.logs.(p)
  in
  Printf.printf "replicated log (n = %d, %d slots, %d words, %.1f words/slot):\n\n"
    n length o.Repeated_bb.words o.Repeated_bb.words_per_slot;
  Array.iteri
    (fun i entry ->
      Printf.printf "  slot %d [proposer p%d]: %s\n" i (i mod n)
        (match entry with
        | Some (Repeated_bb.Committed v) -> Printf.sprintf "committed %S" v
        | Some Repeated_bb.Skipped -> "skipped (Byzantine proposer exposed -> ⊥)"
        | None -> "UNDECIDED (bug)"))
    reference;
  let consistent =
    Array.to_list o.Repeated_bb.logs
    |> List.mapi (fun p l -> (p, l))
    |> List.filter (fun (p, _) -> not (List.mem p o.Repeated_bb.corrupted))
    |> List.for_all (fun (_, l) -> l = reference)
  in
  Printf.printf "\nall correct replicas agree on the log: %b\n" consistent;
  if not consistent then exit 1
