(* The headline experiment, interactively: how the word complexity of the
   three protocols responds to the number of actual failures f.

     dune exec examples/adaptive_sweep.exe

   "Make every word count": the adaptive protocols pay O(n(f+1)) — watch the
   cost stay flat while f is small and jump only when f crosses the fallback
   threshold (n-t-1)/2, where the paper's Lemma 6 stops protecting us and
   the quadratic fallback is (affordably) engaged. *)

open Mewc_prelude
open Mewc_sim
open Mewc_core

let crash_first f ~pki ~secrets =
  Adversary.const
    (Adversary.crash ~victims:(List.init f (fun i -> i + 1)) ())
    ~pki ~secrets

let () =
  let n = 21 in
  let cfg = Config.optimal ~n in
  let t = cfg.Config.t in
  let threshold = (n - t - 1) / 2 in
  Printf.printf
    "words vs f at n = %d (t = %d); fallback threshold at f >= %d\n\n" n t
    threshold;
  let table =
    Ascii_table.create ~title:""
      ~headers:[ "f"; "BB words"; "weak BA words"; "strong BA words"; "fallback?" ]
  in
  for f = 0 to t do
    let bb = Instances.run_bb ~cfg ~input:"v" ~adversary:(crash_first f) () in
    let weak =
      Instances.run_weak_ba ~cfg ~inputs:(Array.make n "v")
        ~adversary:(crash_first f) ()
    in
    let strong =
      Instances.run_strong_ba ~cfg ~inputs:(Array.make n true)
        ~adversary:(crash_first f) ()
    in
    Ascii_table.add_row table
      [
        string_of_int f;
        string_of_int bb.Instances.words;
        string_of_int weak.Instances.words;
        string_of_int strong.Instances.words;
        (if weak.Instances.fallback_runs > 0 then "weak BA fell back"
         else if f > 0 then "strong BA fell back"
         else "no");
      ]
  done;
  Ascii_table.print table;
  Printf.printf
    "\nReading guide: BB and weak BA words stay ~flat until f >= %d; strong\n\
     BA (Algorithm 5) is linear only at f = 0 — any failure breaks its\n\
     n-of-n certificate and costs the quadratic fallback, which is exactly\n\
     the open question the paper closes with \"adaptive strong BA?\".\n"
    threshold
