(* mewc — run one protocol execution from the command line.

   Examples:
     mewc run -p bb -n 9 --adversary crash -f 2
     mewc run -p weak-ba -n 21 --adversary busy-leaders -f 4 --seed 7
     mewc run -p strong-ba -n 9 --adversary withholding-leader
     mewc run -p fallback -n 9 --adversary equivocating-king
     mewc run -p dolev-strong -n 9
   Prints per-process decisions and the run's communication metering. *)

open Mewc_sim
open Mewc_core

let pr fmt = Printf.printf fmt

type protocol = Bb | Weak_ba | Strong_ba | Fallback | Dolev_strong | Naive_bb

let protocol_conv =
  Cmdliner.Arg.enum
    [
      ("bb", Bb);
      ("weak-ba", Weak_ba);
      ("strong-ba", Strong_ba);
      ("fallback", Fallback);
      ("dolev-strong", Dolev_strong);
      ("naive-bb", Naive_bb);
    ]

let adversaries =
  [
    "honest";
    "crash";
    "staggered";
    "busy-leaders";
    "lonely-decider";
    "help-spam";
    "equivocating-sender";
    "equivocating-king";
    "withholding-leader";
  ]

let victims f = List.init f (fun i -> i + 1)

let print_outcome ~show pr_decisions (o : _ Instances.agreement_outcome) =
  pr_decisions ();
  pr "\nrun summary:\n";
  pr "  f (actual corruptions)     %d%s\n" o.Instances.f
    (if o.Instances.corrupted = [] then ""
     else
       Printf.sprintf "  (%s)"
         (String.concat ", " (List.map (Printf.sprintf "p%d") o.Instances.corrupted)));
  pr "  words (correct senders)    %d\n" o.Instances.words;
  pr "  messages                   %d\n" o.Instances.messages;
  pr "  words (byzantine senders)  %d\n" o.Instances.byz_words;
  pr "  signatures created         %d\n" o.Instances.signatures;
  pr "  slots simulated            %d\n" o.Instances.slots;
  if show then begin
    pr "  non-silent phases          %d\n" o.Instances.nonsilent_phases;
    pr "  help requests              %d\n" o.Instances.help_requests;
    pr "  fallback runs              %d\n" o.Instances.fallback_runs
  end

let decision_line p d = pr "  p%-3d decided %s\n" p d

let run_cmd protocol n adversary f seed input trace =
  let cfg = Config.optimal ~n in
  let t = cfg.Config.t in
  let f = min f t in
  let seed = Int64.of_int seed in
  let honest ~pki ~secrets =
    Adversary.const (Adversary.honest ~name:"honest") ~pki ~secrets
  in
  let crash ~pki ~secrets =
    Adversary.const (Adversary.crash ~victims:(victims f) ()) ~pki ~secrets
  in
  let staggered ~pki ~secrets =
    Adversary.const
      (Adversary.staggered_crash ~victims:(victims f) ~every:3)
      ~pki ~secrets
  in
  let generic name =
    match name with
    | "honest" -> Ok honest
    | "crash" -> Ok crash
    | "staggered" -> Ok staggered
    | other -> Error other
  in
  let unsupported p a =
    pr "adversary %S is not applicable to protocol %s\n" a p;
    exit 2
  in
  ignore trace;
  pr "mewc: n=%d t=%d protocol=%s adversary=%s f=%d seed=%Ld\n\n" n t
    (match protocol with
    | Bb -> "bb"
    | Weak_ba -> "weak-ba"
    | Strong_ba -> "strong-ba"
    | Fallback -> "fallback"
    | Dolev_strong -> "dolev-strong"
    | Naive_bb -> "naive-bb")
    adversary f seed;
  match protocol with
  | Bb ->
    let adv =
      match generic adversary with
      | Ok a -> a
      | Error "equivocating-sender" ->
        Attacks.bb_equivocating_sender ~cfg ~sender:0 ~v1:input ~v2:(input ^ "'")
      | Error a -> unsupported "bb" a
    in
    let o = Instances.run_bb ~cfg ~seed ~input ~adversary:adv () in
    print_outcome ~show:true
      (fun () ->
        Array.iteri
          (fun p d ->
            if not (List.mem p o.Instances.corrupted) then
              decision_line p
                (match d with
                | Some (Adaptive_bb.Decided v) -> Printf.sprintf "%S" v
                | Some Adaptive_bb.No_decision -> "⊥"
                | None -> "nothing (bug)"))
          o.Instances.decisions)
      o
  | Weak_ba ->
    let adv =
      match generic adversary with
      | Ok a -> a
      | Error "busy-leaders" -> Attacks.wba_busy_byz_leaders ~cfg ~leaders:(victims f)
      | Error "lonely-decider" -> Attacks.wba_lonely_decider ~cfg ~lucky:(t + 1)
      | Error "help-spam" ->
        Attacks.wba_help_req_spammers ~cfg
          ~spammers:(List.init f (fun i -> n - 1 - i))
      | Error a -> unsupported "weak-ba" a
    in
    let o =
      Instances.run_weak_ba ~cfg ~seed ~inputs:(Array.make n input) ~adversary:adv ()
    in
    print_outcome ~show:true
      (fun () ->
        Array.iteri
          (fun p d ->
            if not (List.mem p o.Instances.corrupted) then
              decision_line p
                (match d with
                | Some (Instances.Weak_str.Value v) -> Printf.sprintf "%S" v
                | Some Instances.Weak_str.Bot -> "⊥"
                | None -> "nothing (bug)"))
          o.Instances.decisions)
      o
  | Strong_ba ->
    let adv =
      match generic adversary with
      | Ok a -> a
      | Error "withholding-leader" ->
        Attacks.sba_withholding_leader ~cfg ~leader:0 ~lucky:(min 3 (n - 1))
      | Error a -> unsupported "strong-ba" a
    in
    let o =
      Instances.run_strong_ba ~cfg ~seed
        ~inputs:(Array.init n (fun i -> i mod 2 = 0))
        ~adversary:adv ()
    in
    print_outcome ~show:true
      (fun () ->
        Array.iteri
          (fun p d ->
            if not (List.mem p o.Instances.corrupted) then
              decision_line p
                (match d with
                | Some b -> string_of_bool b
                | None -> "nothing (bug)"))
          o.Instances.decisions)
      o
  | Fallback ->
    let adv =
      match generic adversary with
      | Ok a -> a
      | Error "equivocating-king" ->
        Attacks.epk_equivocating_king ~cfg ~king:1 ~v1:(input ^ "1") ~v2:(input ^ "2")
      | Error a -> unsupported "fallback" a
    in
    let o =
      Instances.run_fallback ~cfg ~seed
        ~inputs:(Array.init n (fun i -> Printf.sprintf "%s%d" input (i mod 3)))
        ~adversary:adv ()
    in
    print_outcome ~show:false
      (fun () ->
        Array.iteri
          (fun p d ->
            if not (List.mem p o.Instances.corrupted) then
              decision_line p
                (match d with Some v -> Printf.sprintf "%S" v | None -> "nothing (bug)"))
          o.Instances.decisions)
      o
  | Dolev_strong ->
    let adv =
      match generic adversary with Ok a -> a | Error a -> unsupported "dolev-strong" a
    in
    let o = Mewc_baselines.Dolev_strong.run ~cfg ~seed ~input ~adversary:adv () in
    Array.iteri
      (fun p d ->
        match d with
        | Some (Mewc_baselines.Dolev_strong.Decided v) ->
          decision_line p (Printf.sprintf "%S" v)
        | Some Mewc_baselines.Dolev_strong.No_decision -> decision_line p "⊥"
        | None -> ())
      o.Mewc_baselines.Dolev_strong.decisions;
    pr "\n  words %d, messages %d, signatures %d\n" o.Mewc_baselines.Dolev_strong.words
      o.Mewc_baselines.Dolev_strong.messages o.Mewc_baselines.Dolev_strong.signatures
  | Naive_bb ->
    let adv =
      match generic adversary with Ok a -> a | Error a -> unsupported "naive-bb" a
    in
    let o = Mewc_baselines.Naive_bb.run ~cfg ~seed ~input ~adversary:adv () in
    Array.iteri
      (fun p d ->
        match d with
        | Some (Mewc_baselines.Naive_bb.Decided v) ->
          decision_line p (Printf.sprintf "%S" v)
        | Some Mewc_baselines.Naive_bb.No_decision -> decision_line p "⊥"
        | None -> ())
      o.Mewc_baselines.Naive_bb.decisions;
    pr "\n  words %d, messages %d, signatures %d\n" o.Mewc_baselines.Naive_bb.words
      o.Mewc_baselines.Naive_bb.messages o.Mewc_baselines.Naive_bb.signatures

open Cmdliner

let run_term =
  let protocol =
    Arg.(
      required
      & opt (some protocol_conv) None
      & info [ "p"; "protocol" ] ~docv:"PROTOCOL"
          ~doc:"One of bb, weak-ba, strong-ba, fallback, dolev-strong, naive-bb.")
  in
  let n =
    Arg.(value & opt int 9 & info [ "n" ] ~docv:"N" ~doc:"System size (odd, n = 2t+1).")
  in
  let adversary =
    Arg.(
      value & opt string "honest"
      & info [ "a"; "adversary" ] ~docv:"ADVERSARY"
          ~doc:
            (Printf.sprintf "One of: %s." (String.concat ", " adversaries)))
  in
  let f =
    Arg.(
      value & opt int 0
      & info [ "f" ] ~docv:"F" ~doc:"Number of victims for crash-style adversaries.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.") in
  let input =
    Arg.(
      value & opt string "value"
      & info [ "i"; "input" ] ~docv:"VALUE" ~doc:"Input / broadcast value.")
  in
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Reserved: record the execution trace.")
  in
  Term.(const run_cmd $ protocol $ n $ adversary $ f $ seed $ input $ trace)

let cmd =
  let info =
    Cmd.info "mewc" ~version:"1.0.0"
      ~doc:
        "Adaptive Byzantine Agreement with fewer words (Cohen, Keidar, \
         Spiegelman; PODC 2022) - protocol runner"
  in
  Cmd.group info [ Cmd.v (Cmd.info "run" ~doc:"Run one protocol execution.") run_term ]

let () = exit (Cmd.eval cmd)
