test/test_repeated.ml: Adversary Alcotest Array Format List Mewc_core Mewc_sim Printf Repeated_bb Test_util
