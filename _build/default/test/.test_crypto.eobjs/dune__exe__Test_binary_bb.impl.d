test/test_binary_bb.ml: Adversary Alcotest Array Bool Config Format Instances Int List Mewc_core Mewc_prelude Mewc_sim Printf QCheck2 Test_util
