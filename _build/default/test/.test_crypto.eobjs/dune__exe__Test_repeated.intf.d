test/test_repeated.mli:
