test/test_weak_ba.mli:
