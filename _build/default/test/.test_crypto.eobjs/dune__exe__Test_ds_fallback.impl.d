test/test_ds_fallback.ml: Adversary Alcotest Array Engine Format Instances List Meter Mewc_baselines Mewc_core Mewc_crypto Mewc_sim Pki Printf Process Test_util Value Weak_ba
