test/test_validity.ml: Alcotest Array Certificate Instances List Mewc_core Mewc_crypto Mewc_sim Pki Printf Validity
