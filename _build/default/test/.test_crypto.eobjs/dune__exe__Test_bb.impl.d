test/test_bb.ml: Adaptive_bb Adversary Alcotest Array Attacks Config Format Instances Int List Mewc_core Mewc_crypto Mewc_sim Printf QCheck2 Test_util
