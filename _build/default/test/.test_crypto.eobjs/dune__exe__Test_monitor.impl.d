test/test_monitor.ml: Alcotest Array Envelope Format Fun Instances Int64 List Mewc_core Mewc_prelude Mewc_sim Monitor Printf QCheck2 String Test_util Trace
