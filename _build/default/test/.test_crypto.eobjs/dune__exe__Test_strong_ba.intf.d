test/test_strong_ba.mli:
