test/test_fallback.ml: Adversary Alcotest Array Attacks Config Engine Envelope Instances Int Int64 List Mewc_core Mewc_crypto Mewc_prelude Mewc_sim Printf Process QCheck2 String Test_util Trace
