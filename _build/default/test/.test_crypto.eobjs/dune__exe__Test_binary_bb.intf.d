test/test_binary_bb.mli:
