test/test_util.ml: Adversary Alcotest Array Attacks Format Int List Mewc_core Mewc_sim Printf QCheck2 QCheck_alcotest String
