test/test_util.ml: Alcotest Array Format List Mewc_sim QCheck2 QCheck_alcotest
