test/test_crypto.ml: Alcotest Array Certificate Int List Mewc_crypto Pki QCheck2 Sha256 String Test_util
