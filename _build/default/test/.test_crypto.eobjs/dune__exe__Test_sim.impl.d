test/test_sim.ml: Adversary Alcotest Array Composition Config Engine Envelope Int List Meter Mewc_prelude Mewc_sim Printf Process Trace
