test/test_properties.ml: Adaptive_bb Adversary Alcotest Array Attacks Config Format Instances Int Int64 List Mewc_core Mewc_sim Printf QCheck2 String Test_util
