test/test_properties.ml: Adaptive_bb Adversary Alcotest Array Attacks Config Format Instances Int64 List Mewc_core Mewc_prelude Mewc_sim Printf QCheck2 String Test_util
