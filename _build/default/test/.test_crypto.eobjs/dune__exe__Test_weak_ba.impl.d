test/test_weak_ba.ml: Adversary Alcotest Array Attacks Config Format Instances Int Int64 List Mewc_core Mewc_prelude Mewc_sim Printf QCheck2 String Test_util
