test/test_validity.mli:
