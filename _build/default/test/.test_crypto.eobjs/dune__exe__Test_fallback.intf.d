test/test_fallback.mli:
