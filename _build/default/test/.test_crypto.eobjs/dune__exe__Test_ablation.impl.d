test/test_ablation.ml: Adaptive_bb Adversary Alcotest Array Attacks Bool Config Format Fun Instances List Mewc_core Mewc_sim Printf String Test_util
