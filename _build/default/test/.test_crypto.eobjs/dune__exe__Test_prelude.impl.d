test/test_prelude.ml: Alcotest Ascii_table Int List Mewc_prelude Pid Rng Stats String
