test/test_ds_fallback.mli:
