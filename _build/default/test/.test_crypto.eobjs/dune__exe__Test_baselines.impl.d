test/test_baselines.ml: Adversary Alcotest Array Dolev_strong List Mewc_baselines Mewc_core Mewc_crypto Mewc_prelude Mewc_sim Naive_bb Printf Strategies Test_util
