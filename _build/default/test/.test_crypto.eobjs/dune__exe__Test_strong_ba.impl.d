test/test_strong_ba.ml: Adversary Alcotest Array Attacks Bool Config Format Instances Int List Mewc_core Mewc_prelude Mewc_sim Printf QCheck2 Test_util
