(* Shared assertions for the protocol test suites. *)


let cfg n = Mewc_sim.Config.optimal ~n

(* All correct processes decided, and on the same value. *)
let check_agreement ~pp ~equal ~corrupted (decisions : 'o option array) =
  let correct =
    Array.to_list decisions
    |> List.mapi (fun p d -> (p, d))
    |> List.filter (fun (p, _) -> not (List.mem p corrupted))
  in
  let decided =
    List.map
      (fun (p, d) ->
        match d with
        | Some v -> (p, v)
        | None ->
          Alcotest.failf "termination violated: correct p%d did not decide" p)
      correct
  in
  match decided with
  | [] -> Alcotest.fail "no correct processes in the run"
  | (_, first) :: rest ->
    List.iter
      (fun (p, v) ->
        if not (equal v first) then
          Alcotest.failf "agreement violated: p%d decided %s, expected %s" p
            (Format.asprintf "%a" pp v)
            (Format.asprintf "%a" pp first))
      rest;
    first

let check_all_decide ~pp ~equal ~expected ~corrupted decisions =
  let got = check_agreement ~pp ~equal ~corrupted decisions in
  if not (equal got expected) then
    Alcotest.failf "decided %s, expected %s"
      (Format.asprintf "%a" pp got)
      (Format.asprintf "%a" pp expected)

let pp_str fmt s = Format.fprintf fmt "%S" s

let first_k_excluding ~excluding k =
  (* The k smallest pids not in [excluding] and not 0. *)
  let rec go acc p =
    if List.length acc = k then List.rev acc
    else if p = 0 || List.mem p excluding then go acc (p + 1)
    else go (p :: acc) (p + 1)
  in
  go [] 1

let qcheck_case ?(count = 50) ~name gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen law)

let pids_upto k = List.init k (fun i -> i + 1)
