(* Weak BA (Algorithms 3-4): agreement, termination, unique validity,
   adaptivity, and the help/fallback machinery under the attack zoo. *)

open Mewc_sim
open Mewc_core
module W = Instances.Weak_str

let cfg = Test_util.cfg

let run ?validate ?(adversary = Adversary.const (Adversary.honest ~name:"h")) ~n
    inputs =
  Instances.run_weak_ba ~cfg:(cfg n) ?validate ~inputs:(Array.of_list inputs)
    ~adversary ()

let agree ?expect (o : _ Instances.agreement_outcome) =
  let got =
    Test_util.check_agreement ~pp:W.pp_outcome ~equal:W.equal_outcome
      ~corrupted:o.corrupted o.decisions
  in
  (match expect with
  | Some e ->
    if not (W.equal_outcome got e) then
      Alcotest.failf "decided %s, expected %s"
        (Format.asprintf "%a" W.pp_outcome got)
        (Format.asprintf "%a" W.pp_outcome e)
  | None -> ());
  got

let unanimous n v = List.init n (fun _ -> v)

let weak_unanimity_failure_free () =
  ignore (agree ~expect:(W.Value "v") (run ~n:9 (unanimous 9 "v")))

let divergent_failure_free () =
  (* Phase 1's correct leader drives its own input through. *)
  let o = run ~n:9 (List.init 9 (fun i -> Printf.sprintf "x%d" i)) in
  ignore (agree ~expect:(W.Value "x1") o)

let crash_below_threshold () =
  (* f < (n-t-1)/2: Lemma 6 says the fallback never runs. n=21, t=10,
     threshold = 5. *)
  let n = 21 in
  for f = 0 to 4 do
    let victims = Test_util.pids_upto f in
    let o =
      run ~n
        ~adversary:(Adversary.const (Adversary.crash ~victims ()))
        (unanimous n "v")
    in
    ignore (agree ~expect:(W.Value "v") o);
    Alcotest.(check int) (Printf.sprintf "no fallback at f=%d" f) 0 o.fallback_runs
  done

let crash_at_t_uses_fallback () =
  let n = 9 in
  let t = 4 in
  let o =
    run ~n
      ~adversary:(Adversary.const (Adversary.crash ~victims:(Test_util.pids_upto t) ()))
      (unanimous n "v")
  in
  ignore (agree ~expect:(W.Value "v") o);
  Alcotest.(check bool) "fallback ran" true (o.fallback_runs > 0);
  Alcotest.(check bool) "everyone undecided asked for help" true
    (o.help_requests > 0)

let nonsilent_phases_bounded () =
  (* §6.1: the number of non-silent phases led by correct processes is at
     most f+1 (in fact 1 when the first correct leader succeeds). *)
  let n = 21 in
  for f = 0 to 4 do
    let o =
      run ~n
        ~adversary:
          (Adversary.const (Adversary.crash ~victims:(Test_util.pids_upto f) ()))
        (unanimous n "v")
    in
    Alcotest.(check bool)
      (Printf.sprintf "f=%d: %d <= f+1" f o.nonsilent_phases)
      true
      (o.nonsilent_phases <= f + 1)
  done

let adaptive_words_bound () =
  (* O(n(f+1)) with an empirical constant, below the fallback threshold. *)
  let budget n f = 40 * n * (f + 1) in
  List.iter
    (fun n ->
      let c = cfg n in
      let threshold = (n - c.Config.t - 1) / 2 in
      List.iter
        (fun f ->
          if f < threshold then begin
            let o =
              run ~n
                ~adversary:
                  (Adversary.const (Adversary.crash ~victims:(Test_util.pids_upto f) ()))
                (unanimous n "v")
            in
            Alcotest.(check bool)
              (Printf.sprintf "n=%d f=%d words=%d <= %d" n f o.words (budget n f))
              true
              (o.words <= budget n f)
          end)
        [ 0; 1; 2; 4; 8 ])
    [ 13; 21; 41 ]

let busy_byz_leaders () =
  (* Byzantine leaders burn phases without finalizing; correct processes
     still decide once a correct leader runs, and words stay O(n(f+1)). *)
  let n = 21 in
  let f = 4 in
  let leaders = Test_util.pids_upto f in
  let o =
    run ~n
      ~adversary:(Attacks.wba_busy_byz_leaders ~cfg:(cfg n) ~leaders)
      (unanimous n "v")
  in
  (* The Byzantine leaders' proposal may legitimately win under the
     accept-all predicate; agreement is what matters. *)
  ignore (agree o);
  Alcotest.(check int) "no fallback" 0 o.fallback_runs;
  Alcotest.(check bool)
    (Printf.sprintf "words %d within O(n(f+1)) budget" o.words)
    true
    (o.words <= 40 * n * (f + 1))

let exclusive_finalizer_rescued_by_next_leader () =
  (* Byzantine phase-1 leader finalizes only for p0; with every other leader
     correct, the very next phase rescues everyone — no help round
     needed. *)
  let n = 9 in
  let o =
    run ~n
      ~adversary:(Attacks.wba_exclusive_finalizer ~cfg:(cfg n) ~leader:1 ~lucky:0)
      (unanimous n "v")
  in
  let got = agree o in
  Alcotest.(check bool) "decided something" true
    (match got with W.Value _ -> true | W.Bot -> false);
  Alcotest.(check int) "no help needed" 0 o.help_requests;
  Alcotest.(check int) "no fallback" 0 o.fallback_runs

let lonely_decider_help_path () =
  (* The paper's §6 scenario: one correct process decides in the phases,
     every other correct process is rescued by the help round — without the
     fallback ever running (Lemma 21's first branch). *)
  let n = 9 in
  let t = 4 in
  let o =
    run ~n
      ~adversary:(Attacks.wba_lonely_decider ~cfg:(cfg n) ~lucky:(t + 1))
      (unanimous n "v")
  in
  let got = agree o in
  Alcotest.(check bool) "decided something" true
    (match got with W.Value _ -> true | W.Bot -> false);
  Alcotest.(check int) "t helpers asked" t o.help_requests;
  Alcotest.(check int) "no fallback" 0 o.fallback_runs

let help_req_spam_answered () =
  (* Byzantine spammers follow the protocol but inject help requests after
     everyone has decided: each correct decided process answers each spam
     request — O(n) words per request, nothing else changes. *)
  let n = 9 in
  let spammers = [ 5; 6; 7; 8 ] in
  let spam k =
    let o =
      run ~n
        ~adversary:
          (Attacks.wba_help_req_spammers ~cfg:(cfg n)
             ~spammers:(List.filteri (fun i _ -> i < k) spammers))
        (unanimous n "v")
    in
    ignore (agree ~expect:(W.Value "v") o);
    Alcotest.(check int) "no fallback" 0 o.fallback_runs;
    o.words
  in
  let w1 = spam 1 and w4 = spam 4 in
  (* 3 extra spammers -> exactly 3 x (n - f) answers of 3 words each, minus
     nothing else: the spam cost is linear in the number of requests. The
     runs have the same correct set (f = 4 in both? no - f = k), so compare
     against analytic bounds instead: each spammer costs (n - k) answers. *)
  Alcotest.(check bool)
    (Printf.sprintf "more spam, more answers (%d < %d)" w1 w4)
    true (w1 < w4)

let late_fallback_cert_window () =
  (* The adversary delivers a privately-assembled fallback certificate to
     one process at the very edge of the acceptance window. Everyone has
     already decided by then (via the help round); agreement must survive
     the lone fallback run. *)
  let n = 9 in
  let o =
    run ~n
      ~adversary:(Attacks.wba_late_fallback_cert ~cfg:(cfg n) ~victim:0)
      (unanimous n "v")
  in
  ignore (agree o);
  Alcotest.(check int) "exactly one lone fallback run" 1 o.fallback_runs;
  Alcotest.(check bool) "help round was used" true (o.help_requests > 0)

let unique_validity_bot () =
  (* The ⊥ case of unique validity: divergent (but valid) correct inputs,
     silent Byzantine processes forcing the fallback, and a Byzantine
     fallback king driving an invalid value through — the weak BA must
     output ⊥, which is legal exactly because >1 valid value exists. *)
  let n = 9 in
  let byz = [ 1; 6; 7; 8 ] in
  let validate v = String.length v = 2 && v.[0] = 'x' in
  let inputs = List.init n (fun i -> Printf.sprintf "x%d" (i mod 4)) in
  let o =
    run ~n ~validate
      ~adversary:(Attacks.wba_invalid_fallback_king ~cfg:(cfg n) ~byz ~evil:"EVIL")
      inputs
  in
  let got = agree o in
  Alcotest.(check bool) "decided ⊥" true (W.equal_outcome got W.Bot)

let unique_validity_never_invalid () =
  (* Whatever happens, a correct decision is ⊥ or validates. *)
  let n = 9 in
  let validate v = v <> "EVIL" in
  let byz = [ 1; 6; 7; 8 ] in
  let o =
    run ~n ~validate
      ~adversary:(Attacks.wba_invalid_fallback_king ~cfg:(cfg n) ~byz ~evil:"EVIL")
      (List.init n (fun i -> Printf.sprintf "x%d" i))
  in
  Array.iteri
    (fun p d ->
      if not (List.mem p o.corrupted) then
        match d with
        | Some (W.Value v) ->
          Alcotest.(check bool) (Printf.sprintf "p%d value valid" p) true (validate v)
        | Some W.Bot | None -> ())
    o.decisions

let unanimity_blocks_invalid_king () =
  (* Same attack, but correct inputs are unanimous: input certificates for
     the common value block the unjustified proposal, so the outcome is the
     common value — not ⊥. *)
  let n = 9 in
  let validate v = v <> "EVIL" in
  let byz = [ 1; 6; 7; 8 ] in
  let o =
    run ~n ~validate
      ~adversary:(Attacks.wba_invalid_fallback_king ~cfg:(cfg n) ~byz ~evil:"EVIL")
      (unanimous n "xx")
  in
  ignore (agree ~expect:(W.Value "xx") o)

let restrictive_predicate_respected () =
  (* With a predicate rejecting some inputs... all correct inputs must be
     valid (precondition), and the decision honours the predicate. *)
  let n = 9 in
  let validate v = v = "a" || v = "b" in
  let o =
    run ~n ~validate
      ~adversary:(Adversary.const (Adversary.crash ~victims:[ 1; 2; 3; 4 ] ()))
      (List.init n (fun i -> if i mod 2 = 0 then "a" else "b"))
  in
  let got = agree o in
  Alcotest.(check bool) "valid or bot" true
    (match got with W.Value v -> validate v | W.Bot -> true)

let decided_in_phase_reported () =
  let n = 9 in
  let pki_probe = run ~n (unanimous n "v") in
  ignore (agree ~expect:(W.Value "v") pki_probe);
  Alcotest.(check bool) "phase 1 decision" true (pki_probe.nonsilent_phases = 1)

let commit_answer_path () =
  (* The Algorithm 4 lines 35-39 path: a busy Byzantine phase-1 leader gets
     its value committed (but never finalized); in phase 2 the correct
     processes answer the new leader with their commit certificate instead
     of voting, the leader re-broadcasts it at the recorded level, and the
     committed value is what gets finalized. *)
  let n = 9 in
  let o =
    run ~n
      ~adversary:(Attacks.wba_busy_byz_leaders ~cfg:(cfg n) ~leaders:[ 1 ])
      (unanimous n "honest-input")
  in
  let got = agree o in
  Alcotest.(check bool) "the committed (Byzantine-proposed) value wins" true
    (W.equal_outcome got (W.Value "byz"));
  Alcotest.(check int) "no fallback" 0 o.fallback_runs;
  Alcotest.(check int) "decided in 2 phases worth of slots" 10 o.latency

let commit_level_monotone () =
  (* Once committed at level l, a correct process ignores lower-level
     commit broadcasts: run two Byzantine busy leaders; the level climbs
     1 -> 2 and the final decision still follows the highest chain. *)
  let n = 9 in
  let o =
    run ~n
      ~adversary:(Attacks.wba_busy_byz_leaders ~cfg:(cfg n) ~leaders:[ 1; 2 ])
      (unanimous n "honest-input")
  in
  ignore (agree o);
  Alcotest.(check int) "three phases of latency" 15 o.latency

let qcheck_agreement_random =
  Test_util.qcheck_case ~count:25
    ~name:"weak BA agreement+termination under random crashes"
    QCheck2.Gen.(
      triple (int_range 0 10_000) (oneofl [ 5; 7; 9; 11 ])
        (list_size (int_range 0 5) (int_range 0 10)))
    (fun (seed, n, victims) ->
      let c = cfg n in
      let victims =
        List.sort_uniq Int.compare (List.filter (fun v -> v < n) victims)
        |> List.filteri (fun i _ -> i < c.Config.t)
      in
      let rng = Mewc_prelude.Rng.create (Int64.of_int (seed + 17)) in
      let inputs =
        List.init n (fun _ -> Printf.sprintf "v%d" (Mewc_prelude.Rng.int rng 3))
      in
      let o =
        run ~n ~adversary:(Adversary.const (Adversary.crash ~victims ())) inputs
      in
      let correct =
        Array.to_list o.Instances.decisions
        |> List.mapi (fun p d -> (p, d))
        |> List.filter (fun (p, _) -> not (List.mem p o.Instances.corrupted))
        |> List.map snd
      in
      List.for_all (fun d -> d <> None) correct
      && List.length (List.sort_uniq compare correct) = 1)

let () =
  Alcotest.run "weak BA"
    [
      ( "validity",
        [
          Alcotest.test_case "weak unanimity (f=0)" `Quick weak_unanimity_failure_free;
          Alcotest.test_case "divergent inputs" `Quick divergent_failure_free;
          Alcotest.test_case "unique validity: ⊥ case" `Quick unique_validity_bot;
          Alcotest.test_case "never decides invalid" `Quick unique_validity_never_invalid;
          Alcotest.test_case "unanimity blocks invalid king" `Quick
            unanimity_blocks_invalid_king;
          Alcotest.test_case "restrictive predicate" `Quick restrictive_predicate_respected;
        ] );
      ( "fault tolerance",
        [
          Alcotest.test_case "f below threshold: no fallback" `Quick crash_below_threshold;
          Alcotest.test_case "f = t: fallback path" `Quick crash_at_t_uses_fallback;
          Alcotest.test_case "exclusive finalizer: next leader rescues" `Quick
            exclusive_finalizer_rescued_by_next_leader;
          Alcotest.test_case "lonely decider: help path" `Quick
            lonely_decider_help_path;
          Alcotest.test_case "help-req spam answered" `Quick help_req_spam_answered;
          Alcotest.test_case "late fallback cert window" `Quick late_fallback_cert_window;
          qcheck_agreement_random;
        ] );
      ( "adaptivity",
        [
          Alcotest.test_case "non-silent phases <= f+1" `Quick nonsilent_phases_bounded;
          Alcotest.test_case "words O(n(f+1))" `Slow adaptive_words_bound;
          Alcotest.test_case "busy byzantine leaders" `Quick busy_byz_leaders;
          Alcotest.test_case "commit-answer path (Alg 4 l.35-39)" `Quick
            commit_answer_path;
          Alcotest.test_case "commit level monotone" `Quick commit_level_monotone;
          Alcotest.test_case "decided in phase 1 when clean" `Quick
            decided_in_phase_reported;
        ] );
    ]
