(* Multi-shot BB: the replicated log. *)

open Mewc_sim
open Mewc_core

let cfg = Test_util.cfg

let propose pid i = Printf.sprintf "cmd-%d-by-p%d" i pid

let correct_logs (o : Repeated_bb.outcome) =
  Array.to_list o.logs
  |> List.mapi (fun p l -> (p, l))
  |> List.filter (fun (p, _) -> not (List.mem p o.corrupted))

let check_logs_agree o =
  match correct_logs o with
  | [] -> Alcotest.fail "no correct replicas"
  | (_, reference) :: rest ->
    List.iter
      (fun (p, l) ->
        if l <> reference then Alcotest.failf "replica p%d's log diverges" p)
      rest;
    reference

let honest_log () =
  let n = 9 in
  let o =
    Repeated_bb.run ~cfg:(cfg n) ~length:5 ~propose
      ~adversary:(Adversary.const (Adversary.honest ~name:"h"))
      ()
  in
  let log = check_logs_agree o in
  Array.iteri
    (fun i entry ->
      let expected = Repeated_bb.Committed (propose (i mod n) i) in
      match entry with
      | Some e when Repeated_bb.equal_entry e expected -> ()
      | Some e ->
        Alcotest.failf "slot %d: got %s" i (Format.asprintf "%a" Repeated_bb.pp_entry e)
      | None -> Alcotest.failf "slot %d undecided" i)
    log

let byzantine_proposer_skipped () =
  (* The proposer of slot 2 crashes just before its slot: that slot commits
     ⊥ (skipped); all other slots commit their proposers' commands. *)
  let n = 9 in
  let stride = Repeated_bb.stride (cfg n) in
  let o =
    Repeated_bb.run ~cfg:(cfg n) ~length:5 ~propose
      ~adversary:
        (Adversary.const (Adversary.crash ~at:(2 * stride) ~victims:[ 2 ] ()))
      ()
  in
  let log = check_logs_agree o in
  (match log.(2) with
  | Some Repeated_bb.Skipped -> ()
  | Some e ->
    Alcotest.failf "slot 2: expected skip, got %s"
      (Format.asprintf "%a" Repeated_bb.pp_entry e)
  | None -> Alcotest.fail "slot 2 undecided");
  List.iter
    (fun i ->
      match log.(i) with
      | Some (Repeated_bb.Committed v) ->
        Alcotest.(check string) (Printf.sprintf "slot %d" i) (propose (i mod n) i) v
      | _ -> Alcotest.failf "slot %d not committed" i)
    [ 0; 1; 3; 4 ]

let early_crash_tolerated () =
  let n = 9 in
  let o =
    Repeated_bb.run ~cfg:(cfg n) ~length:4 ~propose
      ~adversary:(Adversary.const (Adversary.crash ~victims:[ 5; 6 ] ()))
      ()
  in
  let log = check_logs_agree o in
  Array.iteri
    (fun i e ->
      if e = None then Alcotest.failf "slot %d undecided" i)
    log

let words_amortize_linearly () =
  (* The per-slot cost must not grow with the log length: each BB instance
     is independent and adaptive. *)
  let n = 9 in
  let per_slot length =
    let o =
      Repeated_bb.run ~cfg:(cfg n) ~length ~propose
        ~adversary:(Adversary.const (Adversary.honest ~name:"h"))
        ()
    in
    o.Repeated_bb.words_per_slot
  in
  let a = per_slot 2 and b = per_slot 8 in
  Alcotest.(check bool)
    (Printf.sprintf "per-slot cost flat (%.1f vs %.1f)" a b)
    true
    (abs_float (a -. b) /. a < 0.05)

let () =
  Alcotest.run "repeated BB (replicated log)"
    [
      ( "log",
        [
          Alcotest.test_case "honest log" `Quick honest_log;
          Alcotest.test_case "byzantine proposer skipped" `Quick
            byzantine_proposer_skipped;
          Alcotest.test_case "crashes tolerated" `Quick early_crash_tolerated;
          Alcotest.test_case "per-slot cost flat" `Slow words_amortize_linearly;
        ] );
    ]
