(* Baselines: Dolev-Strong BB and the naive BB->strong-BA reduction. *)

open Mewc_sim
open Mewc_baselines

let cfg = Test_util.cfg

let ds_run ?(adversary = Adversary.const (Adversary.honest ~name:"h")) ~n input =
  Dolev_strong.run ~cfg:(cfg n) ~input ~adversary ()

let naive_run ?(adversary = Adversary.const (Adversary.honest ~name:"h")) ~n input =
  Naive_bb.run ~cfg:(cfg n) ~input ~adversary ()

let ds_agree ~corrupted ?expect decisions =
  let got =
    Test_util.check_agreement ~pp:Dolev_strong.pp_decision
      ~equal:Dolev_strong.equal_decision ~corrupted decisions
  in
  match expect with
  | Some e ->
    if not (Dolev_strong.equal_decision got e) then Alcotest.fail "wrong decision"
  | None -> ()

let ds_correct_sender () =
  let o = ds_run ~n:9 "v" in
  ds_agree ~corrupted:[] ~expect:(Dolev_strong.Decided "v") o.Dolev_strong.decisions

let ds_crashed_sender () =
  let o =
    ds_run ~n:9 ~adversary:(Adversary.const (Adversary.crash ~victims:[ 0 ] ())) "v"
  in
  ds_agree ~corrupted:[ 0 ] ~expect:Dolev_strong.No_decision o.Dolev_strong.decisions

let ds_crashes_tolerated () =
  let o =
    ds_run ~n:9
      ~adversary:(Adversary.const (Adversary.crash ~victims:[ 1; 2; 3; 4 ] ()))
      "v"
  in
  ds_agree ~corrupted:[ 1; 2; 3; 4 ] ~expect:(Dolev_strong.Decided "v")
    o.Dolev_strong.decisions

let ds_quadratic_even_failure_free () =
  (* The point of the comparison: Dolev-Strong is Θ(n²) words even with
     f = 0, adaptive BB is Θ(n). *)
  let words n = (ds_run ~n "v").Dolev_strong.words in
  let pts = List.map (fun n -> (float_of_int n, float_of_int (words n))) [ 9; 17; 33 ] in
  let fit = Mewc_prelude.Stats.loglog_fit pts in
  Alcotest.(check bool)
    (Printf.sprintf "exponent %.2f ~ 2" fit.Mewc_prelude.Stats.slope)
    true
    (fit.Mewc_prelude.Stats.slope > 1.7 && fit.Mewc_prelude.Stats.slope < 2.3)

let ds_equivocating_sender () =
  (* A sender signing two values: everyone must extract both and decide ⊥. *)
  let n = 7 in
  let c = cfg n in
  let adversary ~pki ~secrets =
    Strategies.scripted ~name:"ds-equivocator" ~victims:[ 0 ]
      ~script:(fun ~slot ~pid:_ ~inbox:_ ->
        if slot = 0 then begin
          let chain v =
            [
              Mewc_crypto.Pki.sign pki secrets.(0)
                (Mewc_crypto.Certificate.signed_message
                   ~purpose:Dolev_strong.sender_purpose ~payload:v);
            ]
          in
          List.concat_map
            (fun p ->
              if p = 0 then []
              else if p mod 2 = 0 then [ ({ Dolev_strong.value = "a"; chain = chain "a" }, p) ]
              else [ ({ Dolev_strong.value = "b"; chain = chain "b" }, p) ])
            (Mewc_prelude.Pid.all ~n)
        end
        else [])
  in
  let o = Dolev_strong.run ~cfg:c ~input:"ignored" ~adversary () in
  ds_agree ~corrupted:[ 0 ] ~expect:Dolev_strong.No_decision o.Dolev_strong.decisions

let naive_agree ~corrupted ?expect decisions =
  let got =
    Test_util.check_agreement ~pp:Naive_bb.pp_decision ~equal:Naive_bb.equal_decision
      ~corrupted decisions
  in
  match expect with
  | Some e ->
    if not (Naive_bb.equal_decision got e) then Alcotest.fail "wrong decision"
  | None -> ()

let naive_correct_sender () =
  let o = naive_run ~n:9 "v" in
  naive_agree ~corrupted:[] ~expect:(Naive_bb.Decided "v") o.Naive_bb.decisions

let naive_crashed_sender () =
  let o =
    naive_run ~n:9 ~adversary:(Adversary.const (Adversary.crash ~victims:[ 0 ] ())) "v"
  in
  naive_agree ~corrupted:[ 0 ] ~expect:Naive_bb.No_decision o.Naive_bb.decisions

let naive_crashes_tolerated () =
  let o =
    naive_run ~n:9
      ~adversary:(Adversary.const (Adversary.crash ~victims:[ 2; 3; 6 ] ()))
      "v"
  in
  naive_agree ~corrupted:[ 2; 3; 6 ] ~expect:(Naive_bb.Decided "v") o.Naive_bb.decisions

let naive_quadratic_failure_free () =
  let words n = (naive_run ~n "v").Naive_bb.words in
  let pts = List.map (fun n -> (float_of_int n, float_of_int (words n))) [ 9; 17; 33 ] in
  let fit = Mewc_prelude.Stats.loglog_fit pts in
  Alcotest.(check bool)
    (Printf.sprintf "exponent %.2f ~ 2" fit.Mewc_prelude.Stats.slope)
    true
    (fit.Mewc_prelude.Stats.slope > 1.6 && fit.Mewc_prelude.Stats.slope < 2.4)

let adaptive_beats_baselines_failure_free () =
  (* The headline: with f = 0, adaptive BB costs a fraction of either
     baseline once n grows. *)
  let n = 33 in
  let adaptive =
    (Mewc_core.Instances.run_bb ~cfg:(cfg n) ~input:"v"
       ~adversary:(Adversary.const (Adversary.honest ~name:"h")) ())
      .Mewc_core.Instances.words
  in
  let ds = (ds_run ~n "v").Dolev_strong.words in
  let naive = (naive_run ~n "v").Naive_bb.words in
  Alcotest.(check bool)
    (Printf.sprintf "adaptive %d < ds %d and naive %d" adaptive ds naive)
    true
    (adaptive * 2 < ds && adaptive * 2 < naive)

let () =
  Alcotest.run "baselines"
    [
      ( "dolev-strong",
        [
          Alcotest.test_case "correct sender" `Quick ds_correct_sender;
          Alcotest.test_case "crashed sender -> ⊥" `Quick ds_crashed_sender;
          Alcotest.test_case "t crashes tolerated" `Quick ds_crashes_tolerated;
          Alcotest.test_case "equivocating sender -> ⊥" `Quick ds_equivocating_sender;
          Alcotest.test_case "quadratic when failure-free" `Slow
            ds_quadratic_even_failure_free;
        ] );
      ( "naive reduction",
        [
          Alcotest.test_case "correct sender" `Quick naive_correct_sender;
          Alcotest.test_case "crashed sender -> ⊥" `Quick naive_crashed_sender;
          Alcotest.test_case "crashes tolerated" `Quick naive_crashes_tolerated;
          Alcotest.test_case "quadratic when failure-free" `Slow
            naive_quadratic_failure_free;
        ] );
      ( "comparison",
        [
          Alcotest.test_case "adaptive wins failure-free" `Slow
            adaptive_beats_baselines_failure_free;
        ] );
    ]
