(* The unique-validity predicate framework (paper §3, Definition 3). *)

open Mewc_crypto
open Mewc_core

let setup () = Pki.setup ~seed:21L ~n:9 ()

let always_and_combinators () =
  let odd = Validity.make ~name:"odd" (fun v -> v mod 2 = 1) in
  let small = Validity.make ~name:"small" (fun v -> v < 10) in
  Alcotest.(check bool) "always" true (Validity.validate (Validity.always "any") 42);
  let both = Validity.both odd small in
  Alcotest.(check bool) "both yes" true (Validity.validate both 3);
  Alcotest.(check bool) "both no (even)" false (Validity.validate both 4);
  Alcotest.(check bool) "both no (big)" false (Validity.validate both 11);
  let either = Validity.either odd small in
  Alcotest.(check bool) "either yes (odd big)" true (Validity.validate either 11);
  Alcotest.(check bool) "either yes (even small)" true (Validity.validate either 4);
  Alcotest.(check bool) "either no" false (Validity.validate either 12)

let signed_by_predicate () =
  (* The paper's "a value signed by the sender" example. *)
  let pki, secrets = setup () in
  let encode v = v in
  let p = Validity.signed_by pki ~purpose:"val" ~signer:3 ~encode in
  let sg v = Certificate.share pki secrets.(3) ~purpose:"val" ~payload:v in
  Alcotest.(check bool) "genuine" true (Validity.validate p ("x", sg "x"));
  Alcotest.(check bool) "tampered value" false (Validity.validate p ("y", sg "x"));
  let other = Certificate.share pki secrets.(4) ~purpose:"val" ~payload:"x" in
  Alcotest.(check bool) "wrong signer" false (Validity.validate p ("x", other))

let backed_by_quorum_predicate () =
  (* The paper's §1 example: "a value is valid if it has at least t+1 unique
     signatures, assuring that some correct process knows this value". *)
  let pki, secrets = setup () in
  let encode v = v in
  let k = 5 (* t+1 for n=9 *) in
  let p = Validity.backed_by_quorum pki ~purpose:"init" ~k ~encode in
  let shares v idxs =
    List.map (fun i -> Certificate.share pki secrets.(i) ~purpose:"init" ~payload:v) idxs
  in
  (match Certificate.make pki ~k ~purpose:"init" ~payload:"v" (shares "v" [ 0; 1; 2; 3; 4 ]) with
  | Some qc ->
    Alcotest.(check bool) "quorum-backed" true (Validity.validate p ("v", qc));
    Alcotest.(check bool) "cert for other value" false (Validity.validate p ("w", qc))
  | None -> Alcotest.fail "could not form certificate");
  (* A 4-share certificate (below t+1) must not validate. *)
  match Certificate.make pki ~k:4 ~purpose:"init" ~payload:"v" (shares "v" [ 0; 1; 2; 3 ]) with
  | Some small ->
    Alcotest.(check bool) "sub-quorum rejected" false (Validity.validate p ("v", small))
  | None -> Alcotest.fail "could not form small certificate"

let weak_ba_with_quorum_predicate () =
  (* End-to-end: run weak BA whose predicate is "one of the two whitelisted
     commands" and check the decision honours it under crashes. *)
  let cfg = Mewc_sim.Config.optimal ~n:9 in
  let whitelist = Validity.make ~name:"whitelist" (fun v -> v = "commit" || v = "abort") in
  let o =
    Instances.run_weak_ba ~cfg ~validate:(Validity.validate whitelist)
      ~inputs:(Array.init 9 (fun i -> if i mod 2 = 0 then "commit" else "abort"))
      ~adversary:
        (Mewc_sim.Adversary.const (Mewc_sim.Adversary.crash ~victims:[ 2; 3 ] ()))
      ()
  in
  Array.iteri
    (fun p d ->
      if not (List.mem p o.Instances.corrupted) then
        match d with
        | Some (Instances.Weak_str.Value v) ->
          Alcotest.(check bool) (Printf.sprintf "p%d whitelisted" p) true
            (Validity.validate whitelist v)
        | Some Instances.Weak_str.Bot -> ()
        | None -> Alcotest.failf "p%d undecided" p)
    o.Instances.decisions

let names_describe () =
  let a = Validity.make ~name:"a" (fun _ -> true) in
  let b = Validity.make ~name:"b" (fun _ -> true) in
  Alcotest.(check string) "both" "(a && b)" (Validity.both a b).Validity.name;
  Alcotest.(check string) "either" "(a || b)" (Validity.either a b).Validity.name

let () =
  Alcotest.run "validity"
    [
      ( "predicates",
        [
          Alcotest.test_case "always & combinators" `Quick always_and_combinators;
          Alcotest.test_case "signed-by (paper §3)" `Quick signed_by_predicate;
          Alcotest.test_case "t+1-quorum-backed (paper §1)" `Quick
            backed_by_quorum_predicate;
          Alcotest.test_case "weak BA end-to-end" `Quick weak_ba_with_quorum_predicate;
          Alcotest.test_case "combinator names" `Quick names_describe;
        ] );
    ]
