open Mewc_prelude

let rotating_leader () =
  (* Paper: leader of phase j is p_(j mod n); phases 1..n cover every
     process exactly once. *)
  let n = 7 in
  let leaders = List.init n (fun i -> Pid.rotating_leader ~n ~phase:(i + 1)) in
  Alcotest.(check (list int)) "bijection" [ 1; 2; 3; 4; 5; 6; 0 ] leaders

let pid_all () =
  Alcotest.(check (list int)) "all" [ 0; 1; 2 ] (Pid.all ~n:3);
  Alcotest.(check bool) "valid" true (Pid.is_valid ~n:3 2);
  Alcotest.(check bool) "invalid" false (Pid.is_valid ~n:3 3);
  Alcotest.(check bool) "negative" false (Pid.is_valid ~n:3 (-1))

let rng_deterministic () =
  let a = Rng.create 99L and b = Rng.create 99L in
  let xs g = List.init 20 (fun _ -> Rng.int g 1000) in
  Alcotest.(check (list int)) "same stream" (xs a) (xs b)

let rng_bounds () =
  let g = Rng.create 5L in
  for _ = 1 to 1000 do
    let x = Rng.int g 17 in
    if x < 0 || x >= 17 then Alcotest.failf "out of bounds: %d" x
  done

let rng_sample_distinct () =
  let g = Rng.create 11L in
  let s = Rng.sample g 5 [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  Alcotest.(check int) "size" 5 (List.length s);
  Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq Int.compare s))

let rng_split_independent () =
  let g = Rng.create 3L in
  let h = Rng.split g in
  let xs = List.init 10 (fun _ -> Rng.int g 1000) in
  let ys = List.init 10 (fun _ -> Rng.int h 1000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let stats_linear_fit () =
  let pts = List.init 10 (fun i -> (float_of_int i, (3. *. float_of_int i) +. 2.)) in
  let fit = Stats.linear_fit pts in
  Alcotest.(check (float 1e-9)) "slope" 3. fit.Stats.slope;
  Alcotest.(check (float 1e-9)) "intercept" 2. fit.Stats.intercept;
  Alcotest.(check (float 1e-9)) "r2" 1. fit.Stats.r2

let stats_loglog_exponent () =
  let pts = List.init 8 (fun i -> let x = float_of_int (i + 2) in (x, 5. *. (x ** 2.))) in
  let fit = Stats.loglog_fit pts in
  Alcotest.(check (float 1e-6)) "exponent" 2. fit.Stats.slope

let stats_basic () =
  Alcotest.(check (float 1e-9)) "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "stddev" 1. (Stats.stddev [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "min" 1. (Stats.minimum [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "max" 3. (Stats.maximum [ 3.; 1.; 2. ])

let stats_ratio_spread () =
  let lo, hi = Stats.ratio_spread [ (1., 2.); (2., 5.); (4., 8.) ] in
  Alcotest.(check (float 1e-9)) "lo" 2. lo;
  Alcotest.(check (float 1e-9)) "hi" 2.5 hi

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let table_render () =
  let t = Ascii_table.create ~title:"T" ~headers:[ "a"; "bb" ] in
  Ascii_table.add_row t [ "1"; "2" ];
  Ascii_table.add_row t [ "333" ];
  let s = Ascii_table.render t in
  Alcotest.(check bool) "has title" true (contains s "T\n");
  Alcotest.(check bool) "row padded" true (contains s "| 333 |");
  Alcotest.(check bool) "headers" true (contains s "| a   | bb |")

let table_too_many_cells () =
  let t = Ascii_table.create ~title:"" ~headers:[ "a" ] in
  Alcotest.check_raises "too many"
    (Invalid_argument "Ascii_table.add_row: too many cells") (fun () ->
      Ascii_table.add_row t [ "1"; "2" ])

let () =
  Alcotest.run "prelude"
    [
      ( "pid",
        [
          Alcotest.test_case "rotating leader" `Quick rotating_leader;
          Alcotest.test_case "all/is_valid" `Quick pid_all;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick rng_deterministic;
          Alcotest.test_case "bounds" `Quick rng_bounds;
          Alcotest.test_case "sample distinct" `Quick rng_sample_distinct;
          Alcotest.test_case "split independent" `Quick rng_split_independent;
        ] );
      ( "stats",
        [
          Alcotest.test_case "linear fit" `Quick stats_linear_fit;
          Alcotest.test_case "loglog exponent" `Quick stats_loglog_exponent;
          Alcotest.test_case "basics" `Quick stats_basic;
          Alcotest.test_case "ratio spread" `Quick stats_ratio_spread;
        ] );
      ( "ascii table",
        [
          Alcotest.test_case "render" `Quick table_render;
          Alcotest.test_case "too many cells" `Quick table_too_many_cells;
        ] );
    ]
