(* Binary BB: the §5 reduction instantiated with Algorithm 5. *)

open Mewc_sim
open Mewc_core

let cfg = Test_util.cfg

let run ?(sender = 0) ?(adversary = Adversary.const (Adversary.honest ~name:"h"))
    ~n input =
  Instances.run_binary_bb ~cfg:(cfg n) ~sender ~input ~adversary ()

let agree ?expect (o : bool Instances.agreement_outcome) =
  let got =
    Test_util.check_agreement ~pp:Format.pp_print_bool ~equal:Bool.equal
      ~corrupted:o.corrupted o.decisions
  in
  (match expect with
  | Some e -> Alcotest.(check bool) "decision" e got
  | None -> ());
  got

let correct_sender () =
  ignore (agree ~expect:true (run ~n:9 true));
  ignore (agree ~expect:false (run ~n:9 false))

let nonzero_sender () =
  let o = run ~n:9 ~sender:4 true in
  ignore (agree ~expect:true o)

let failure_free_linear () =
  let words n = (run ~n true).Instances.words in
  let pts = List.map (fun n -> (float_of_int n, float_of_int (words n))) [ 9; 17; 33; 65 ] in
  let fit = Mewc_prelude.Stats.loglog_fit pts in
  Alcotest.(check bool)
    (Printf.sprintf "exponent %.2f ~ 1" fit.Mewc_prelude.Stats.slope)
    true
    (fit.Mewc_prelude.Stats.slope < 1.2)

let all_fast_when_clean () =
  let o = run ~n:9 true in
  Alcotest.(check int) "all decided fast" 9 o.nonsilent_phases;
  Alcotest.(check int) "no fallback" 0 o.fallback_runs

let crashed_sender_agreement () =
  (* Silent sender: everyone enters the BA with the default bit; agreement
     (and strong unanimity over the defaults) still holds. *)
  let o =
    run ~n:9 ~adversary:(Adversary.const (Adversary.crash ~victims:[ 0 ] ())) true
  in
  ignore (agree ~expect:false o)

let crashes_tolerated () =
  List.iter
    (fun victims ->
      let o =
        run ~n:9
          ~adversary:(Adversary.const (Adversary.crash ~victims ()))
          true
      in
      ignore (agree ~expect:true o))
    [ [ 3 ]; [ 1; 2 ]; [ 1; 2; 3; 4 ] ]

let validity_via_unanimity () =
  (* The §5 reduction argument: correct sender => all correct BA inputs are
     the sender's bit => strong unanimity forces it, even with crashes among
     receivers. *)
  List.iter
    (fun input ->
      let o =
        run ~n:9
          ~adversary:(Adversary.const (Adversary.crash ~victims:[ 2; 7 ] ()))
          input
      in
      ignore (agree ~expect:input o))
    [ true; false ]

let qcheck_binary_bb =
  Test_util.qcheck_case ~count:25 ~name:"binary BB agreement+validity"
    QCheck2.Gen.(
      triple bool (oneofl [ 5; 7; 9 ]) (list_size (int_range 0 4) (int_range 0 8)))
    (fun (input, n, victims) ->
      let c = cfg n in
      let victims =
        List.sort_uniq Int.compare (List.filter (fun v -> v < n) victims)
        |> List.filteri (fun i _ -> i < c.Config.t)
      in
      let o =
        run ~n ~adversary:(Adversary.const (Adversary.crash ~victims ())) input
      in
      let correct =
        Array.to_list o.Instances.decisions
        |> List.mapi (fun p d -> (p, d))
        |> List.filter (fun (p, _) -> not (List.mem p o.Instances.corrupted))
        |> List.map snd
      in
      let sender_correct = not (List.mem 0 victims) in
      List.for_all (fun d -> d <> None) correct
      && List.length (List.sort_uniq compare correct) = 1
      && ((not sender_correct) || List.for_all (fun d -> d = Some input) correct))

let () =
  Alcotest.run "binary BB (§5 reduction over Alg 5)"
    [
      ( "validity",
        [
          Alcotest.test_case "correct sender" `Quick correct_sender;
          Alcotest.test_case "non-zero sender" `Quick nonzero_sender;
          Alcotest.test_case "unanimity argument" `Quick validity_via_unanimity;
        ] );
      ( "fault tolerance",
        [
          Alcotest.test_case "crashed sender" `Quick crashed_sender_agreement;
          Alcotest.test_case "receiver crashes" `Quick crashes_tolerated;
          qcheck_binary_bb;
        ] );
      ( "complexity",
        [
          Alcotest.test_case "all fast when clean" `Quick all_fast_when_clean;
          Alcotest.test_case "failure-free linear" `Slow failure_free_linear;
        ] );
    ]
