(* Strong BA, failure-free linear (Algorithm 5). *)

open Mewc_sim
open Mewc_core

let cfg = Test_util.cfg

let run ?(leader = 0) ?(adversary = Adversary.const (Adversary.honest ~name:"h"))
    ~n inputs =
  Instances.run_strong_ba ~cfg:(cfg n) ~leader ~inputs:(Array.of_list inputs)
    ~adversary ()

let agree ?expect (o : bool Instances.agreement_outcome) =
  let got =
    Test_util.check_agreement ~pp:Format.pp_print_bool ~equal:Bool.equal
      ~corrupted:o.corrupted o.decisions
  in
  (match expect with
  | Some e -> Alcotest.(check bool) "decision" e got
  | None -> ());
  got

let strong_unanimity_ff () =
  ignore (agree ~expect:true (run ~n:9 (List.init 9 (fun _ -> true))));
  ignore (agree ~expect:false (run ~n:9 (List.init 9 (fun _ -> false))))

let mixed_inputs_ff () =
  (* Binary + n = 2t+1: some value always has t+1 proposals. *)
  let o = run ~n:9 (List.init 9 (fun i -> i mod 2 = 0)) in
  ignore (agree ~expect:true o) (* 5 of 9 propose true *)

let failure_free_no_fallback () =
  (* Lemma 8. *)
  let o = run ~n:9 (List.init 9 (fun _ -> true)) in
  Alcotest.(check int) "no fallback" 0 o.fallback_runs;
  Alcotest.(check int) "all fast" 9 o.nonsilent_phases

let failure_free_linear_words () =
  (* O(n) words: the words/n ratio stays within a narrow constant band. *)
  let ratio n =
    let o = run ~n (List.init n (fun _ -> true)) in
    float_of_int o.Instances.words /. float_of_int n
  in
  let ratios = List.map ratio [ 9; 17; 33; 65 ] in
  let lo = Mewc_prelude.Stats.minimum ratios in
  let hi = Mewc_prelude.Stats.maximum ratios in
  Alcotest.(check bool)
    (Printf.sprintf "ratio band [%.1f, %.1f] narrow" lo hi)
    true
    (hi /. lo < 1.3)

let strong_unanimity_with_faults () =
  (* Any crash breaks the n-of-n decide certificate, forcing the fallback;
     strong unanimity must survive. *)
  List.iter
    (fun victims ->
      let o =
        run ~n:9
          ~adversary:(Adversary.const (Adversary.crash ~victims ()))
          (List.init 9 (fun _ -> true))
      in
      ignore (agree ~expect:true o);
      Alcotest.(check bool) "fallback ran" true (o.fallback_runs > 0))
    [ [ 8 ]; [ 0 ]; [ 1; 2 ]; [ 1; 2; 3; 4 ] ]

let leader_crash_agreement () =
  let o =
    run ~n:9
      ~adversary:(Adversary.const (Adversary.crash ~victims:[ 0 ] ()))
      (List.init 9 (fun i -> i mod 2 = 0))
  in
  ignore (agree o)

let mid_run_crash () =
  (* Crash after the propose round: the decide certificate cannot form. *)
  let o =
    run ~n:9
      ~adversary:(Adversary.const (Adversary.crash ~at:3 ~victims:[ 4 ] ()))
      (List.init 9 (fun _ -> false))
  in
  ignore (agree ~expect:false o)

let withholding_leader_reconciled () =
  (* The leader reveals the signed-by-all certificate to p3 alone: p3
     decides fast, everyone else falls back; the 2δ adoption window must
     reconcile them on the same value (Lemma 26). *)
  let n = 9 in
  let o =
    run ~n
      ~adversary:(Attacks.sba_withholding_leader ~cfg:(cfg n) ~leader:0 ~lucky:3)
      (List.init n (fun _ -> true))
  in
  ignore (agree ~expect:true o);
  Alcotest.(check bool) "one fast decider" true (o.nonsilent_phases = 1);
  Alcotest.(check bool) "others fell back" true (o.fallback_runs >= 1)

let non_unanimous_with_faults () =
  let o =
    run ~n:9
      ~adversary:(Adversary.const (Adversary.crash ~victims:[ 2; 5 ] ()))
      (List.init 9 (fun i -> i < 5))
  in
  ignore (agree o)

let qcheck_sba_agreement =
  Test_util.qcheck_case ~count:25 ~name:"strong BA agreement under random runs"
    QCheck2.Gen.(
      triple (int_range 0 10_000) (oneofl [ 5; 7; 9 ])
        (pair (list_size (int_range 0 4) (int_range 0 8)) (list_size (int_range 5 11) bool)))
    (fun (_seed, n, (victims, bits)) ->
      let c = cfg n in
      let victims =
        List.sort_uniq Int.compare (List.filter (fun v -> v < n) victims)
        |> List.filteri (fun i _ -> i < c.Config.t)
      in
      let inputs = List.init n (fun i -> List.nth_opt bits (i mod List.length bits) = Some true) in
      let o =
        run ~n ~adversary:(Adversary.const (Adversary.crash ~victims ())) inputs
      in
      let correct =
        Array.to_list o.Instances.decisions
        |> List.mapi (fun p d -> (p, d))
        |> List.filter (fun (p, _) -> not (List.mem p o.Instances.corrupted))
        |> List.map snd
      in
      let unanimous v =
        List.for_all2
          (fun inp p -> (not p) || inp = v)
          inputs
          (List.init n (fun p -> not (List.mem p victims)))
      in
      List.for_all (fun d -> d <> None) correct
      && List.length (List.sort_uniq compare correct) = 1
      && (not (unanimous true) || correct = List.map (fun _ -> Some true) correct)
      && (not (unanimous false) || correct = List.map (fun _ -> Some false) correct))

let () =
  Alcotest.run "strong BA (failure-free linear)"
    [
      ( "failure free",
        [
          Alcotest.test_case "strong unanimity" `Quick strong_unanimity_ff;
          Alcotest.test_case "mixed inputs" `Quick mixed_inputs_ff;
          Alcotest.test_case "no fallback (Lemma 8)" `Quick failure_free_no_fallback;
          Alcotest.test_case "linear words" `Slow failure_free_linear_words;
        ] );
      ( "with faults",
        [
          Alcotest.test_case "unanimity + crashes" `Quick strong_unanimity_with_faults;
          Alcotest.test_case "leader crash" `Quick leader_crash_agreement;
          Alcotest.test_case "mid-run crash" `Quick mid_run_crash;
          Alcotest.test_case "withholding leader (Lemma 26)" `Quick
            withholding_leader_reconciled;
          Alcotest.test_case "non-unanimous + crashes" `Quick non_unanimous_with_faults;
          qcheck_sba_agreement;
        ] );
    ]
