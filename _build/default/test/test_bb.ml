(* Adaptive Byzantine Broadcast (Algorithms 1-2). *)

open Mewc_sim
open Mewc_core

let cfg = Test_util.cfg

let run ?(sender = 0) ?(adversary = Adversary.const (Adversary.honest ~name:"h"))
    ~n input =
  Instances.run_bb ~cfg:(cfg n) ~sender ~input ~adversary ()

let agree ?expect (o : _ Instances.agreement_outcome) =
  let got =
    Test_util.check_agreement ~pp:Adaptive_bb.pp_decision
      ~equal:Adaptive_bb.equal_decision ~corrupted:o.corrupted o.decisions
  in
  (match expect with
  | Some e ->
    if not (Adaptive_bb.equal_decision got e) then
      Alcotest.failf "decided %s, expected %s"
        (Format.asprintf "%a" Adaptive_bb.pp_decision got)
        (Format.asprintf "%a" Adaptive_bb.pp_decision e)
  | None -> ());
  got

let correct_sender_validity () =
  (* BB validity: a correct sender's value is the only possible decision. *)
  ignore (agree ~expect:(Adaptive_bb.Decided "hello") (run ~n:9 "hello"))

let correct_sender_with_crashes () =
  List.iter
    (fun victims ->
      let o =
        run ~n:9
          ~adversary:(Adversary.const (Adversary.crash ~victims ()))
          "payload"
      in
      ignore (agree ~expect:(Adaptive_bb.Decided "payload") o))
    [ [ 1 ]; [ 1; 2 ]; [ 1; 2; 3 ]; [ 1; 2; 3; 4 ]; [ 8 ]; [ 2; 5 ] ]

let correct_sender_nonzero () =
  let o = run ~n:9 ~sender:3 "from-p3" in
  ignore (agree ~expect:(Adaptive_bb.Decided "from-p3") o)

let silent_sender_decides_bot () =
  (* A crashed sender never signs anything: the only valid values are idk
     certificates, so everyone decides ⊥ — in agreement. *)
  let o =
    run ~n:9 ~adversary:(Adversary.const (Adversary.crash ~victims:[ 0 ] ())) "x"
  in
  ignore (agree ~expect:Adaptive_bb.No_decision o)

let equivocating_sender_agreement () =
  (* Sender signs two values; agreement must hold regardless of which (or ⊥)
     gets decided. *)
  let n = 9 in
  let o =
    run ~n
      ~adversary:(Attacks.bb_equivocating_sender ~cfg:(cfg n) ~sender:0 ~v1:"a" ~v2:"b")
      "ignored"
  in
  let got = agree o in
  Alcotest.(check bool) "one of a/b/⊥" true
    (match got with
    | Adaptive_bb.Decided v -> v = "a" || v = "b"
    | Adaptive_bb.No_decision -> true)

let selective_sender_vetting_spreads () =
  (* The sender hands its signed value to a single process; the vetting
     phases must spread a valid input to everyone (Lemma 11) and agreement
     must hold. *)
  let n = 9 in
  let o =
    run ~n
      ~adversary:
        (Attacks.bb_selective_sender ~cfg:(cfg n) ~sender:0 ~value:"rare"
           ~recipients:[ 3 ])
      "ignored"
  in
  let got = agree o in
  Alcotest.(check bool) "rare or ⊥" true
    (match got with
    | Adaptive_bb.Decided v -> v = "rare"
    | Adaptive_bb.No_decision -> true)

let vetting_silent_when_sender_correct () =
  (* With a correct sender every process adopts in round 1, so all vetting
     phases are silent. *)
  let o = run ~n:9 "v" in
  Alcotest.(check int) "no vetting phases" 0 o.nonsilent_phases

let vetting_one_phase_when_sender_silent () =
  (* With a silent sender, the first vetting phase produces an idk
     certificate that everybody adopts; later correct leaders are silent. *)
  let o =
    run ~n:9 ~adversary:(Adversary.const (Adversary.crash ~victims:[ 0 ] ())) "x"
  in
  Alcotest.(check int) "exactly one vetting phase" 1 o.nonsilent_phases

let adaptive_words_bound () =
  let budget n f = 45 * n * (f + 1) in
  List.iter
    (fun n ->
      let c = cfg n in
      let threshold = (n - c.Config.t - 1) / 2 in
      List.iter
        (fun f ->
          if f < threshold then begin
            let o =
              run ~n
                ~adversary:
                  (Adversary.const (Adversary.crash ~victims:(Test_util.pids_upto f) ()))
                "v"
            in
            Alcotest.(check bool)
              (Printf.sprintf "n=%d f=%d words=%d <= %d" n f o.words (budget n f))
              true
              (o.words <= budget n f)
          end)
        [ 0; 1; 3; 6 ])
    [ 13; 21; 41 ]

let bb_valid_predicate () =
  let n = 9 in
  let c = cfg n in
  let pki, secrets = Mewc_crypto.Pki.setup ~seed:3L ~n () in
  let sg =
    Mewc_crypto.Certificate.share pki secrets.(0)
      ~purpose:Adaptive_bb.sender_purpose ~payload:"v"
  in
  let good = Adaptive_bb.Sender_signed { value = "v"; sg } in
  Alcotest.(check bool) "sender-signed valid" true
    (Adaptive_bb.bb_valid ~pki ~cfg:c ~sender:0 good);
  Alcotest.(check bool) "wrong sender invalid" false
    (Adaptive_bb.bb_valid ~pki ~cfg:c ~sender:1 good);
  let wrong_value = Adaptive_bb.Sender_signed { value = "w"; sg } in
  Alcotest.(check bool) "tampered value invalid" false
    (Adaptive_bb.bb_valid ~pki ~cfg:c ~sender:0 wrong_value);
  let idk_shares =
    List.map
      (fun i ->
        Mewc_crypto.Certificate.share pki secrets.(i)
          ~purpose:Adaptive_bb.idk_purpose ~payload:"3")
      [ 0; 1; 2; 3; 4 ]
  in
  match
    Mewc_crypto.Certificate.make pki ~k:(Config.small_quorum c)
      ~purpose:Adaptive_bb.idk_purpose ~payload:"3" idk_shares
  with
  | Some qc ->
    Alcotest.(check bool) "idk cert valid" true
      (Adaptive_bb.bb_valid ~pki ~cfg:c ~sender:0 (Adaptive_bb.Idk_cert qc))
  | None -> Alcotest.fail "could not build idk certificate"

let bb_value_equality () =
  let pki, secrets = Mewc_crypto.Pki.setup ~seed:3L ~n:9 () in
  let sg v = Mewc_crypto.Certificate.share pki secrets.(0) ~purpose:Adaptive_bb.sender_purpose ~payload:v in
  let a = Adaptive_bb.Sender_signed { value = "v"; sg = sg "v" } in
  let b = Adaptive_bb.Sender_signed { value = "v"; sg = sg "v" } in
  Alcotest.(check bool) "same value same identity" true (Adaptive_bb.Bb_value.equal a b);
  let c = Adaptive_bb.Sender_signed { value = "w"; sg = sg "w" } in
  Alcotest.(check bool) "different values differ" false (Adaptive_bb.Bb_value.equal a c)

let fake_idk_certificate_rejected () =
  (* Lemma 10 under attack: the sender is correct, so no t+1 idk quorum can
     exist; a Byzantine vetting leader pushing an under-sized idk
     certificate must be ignored and the sender's value decided. *)
  let n = 9 in
  let byz = [ 1; 2; 3; 4 ] in
  let o =
    run ~n ~adversary:(Attacks.bb_fake_idk_leader ~cfg:(cfg n) ~byz) "genuine"
  in
  ignore (agree ~expect:(Adaptive_bb.Decided "genuine") o)

let qcheck_bb_agreement =
  Test_util.qcheck_case ~count:25 ~name:"BB agreement under random crashes"
    QCheck2.Gen.(
      triple (int_range 0 10_000) (oneofl [ 5; 7; 9 ])
        (list_size (int_range 0 4) (int_range 0 8)))
    (fun (seed, n, victims) ->
      let c = cfg n in
      let victims =
        List.sort_uniq Int.compare (List.filter (fun v -> v < n) victims)
        |> List.filteri (fun i _ -> i < c.Config.t)
      in
      ignore seed;
      let o =
        run ~n ~adversary:(Adversary.const (Adversary.crash ~victims ())) "payload"
      in
      let correct =
        Array.to_list o.Instances.decisions
        |> List.mapi (fun p d -> (p, d))
        |> List.filter (fun (p, _) -> not (List.mem p o.Instances.corrupted))
        |> List.map snd
      in
      let sender_correct = not (List.mem 0 victims) in
      List.for_all (fun d -> d <> None) correct
      && List.length (List.sort_uniq compare correct) = 1
      && (not sender_correct
         || List.for_all (fun d -> d = Some (Adaptive_bb.Decided "payload")) correct))

let () =
  Alcotest.run "adaptive BB"
    [
      ( "validity",
        [
          Alcotest.test_case "correct sender" `Quick correct_sender_validity;
          Alcotest.test_case "correct sender + crashes" `Quick correct_sender_with_crashes;
          Alcotest.test_case "non-zero sender" `Quick correct_sender_nonzero;
          Alcotest.test_case "BB_valid predicate" `Quick bb_valid_predicate;
          Alcotest.test_case "value identity" `Quick bb_value_equality;
        ] );
      ( "byzantine sender",
        [
          Alcotest.test_case "silent sender -> ⊥" `Quick silent_sender_decides_bot;
          Alcotest.test_case "equivocating sender" `Quick equivocating_sender_agreement;
          Alcotest.test_case "selective sender" `Quick selective_sender_vetting_spreads;
          Alcotest.test_case "fake idk certificate rejected (Lemma 10)" `Quick
            fake_idk_certificate_rejected;
          qcheck_bb_agreement;
        ] );
      ( "adaptivity",
        [
          Alcotest.test_case "vetting silent (correct sender)" `Quick
            vetting_silent_when_sender_correct;
          Alcotest.test_case "one vetting phase (silent sender)" `Quick
            vetting_one_phase_when_sender_silent;
          Alcotest.test_case "words O(n(f+1))" `Slow adaptive_words_bound;
        ] );
    ]
