(** Deterministic pseudo-random numbers (splitmix64).

    Every run of the simulator is a pure function of its seed, so any failing
    execution can be replayed bit-for-bit. We deliberately avoid
    [Stdlib.Random] to keep the generator stable across OCaml versions. *)

type t

val create : int64 -> t
(** [create seed] makes an independent generator. *)

val copy : t -> t
(** [copy g] is a generator that will produce the same stream as [g] without
    sharing state. *)

val split : t -> t
(** [split g] derives a new independent generator and advances [g]. *)

val mix : int64 -> int64
(** The stateless splitmix64 finalizer. [mix] is a high-quality 64-bit
    hash: deriving a generator as [create (mix key)] for a structured
    [key] (e.g. a packed (slot, src, dst) triple) yields streams that are
    independent of any other generator's position — the basis for
    order-independent per-link randomness. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [0, bound)]. Requires [bound > 0]. *)

val bool : t -> bool
val float : t -> float -> float

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. *)

val shuffle : t -> 'a list -> 'a list

val sample : t -> int -> 'a list -> 'a list
(** [sample g k xs] is [k] distinct elements of [xs] in random order.
    Requires [k <= List.length xs]. *)
