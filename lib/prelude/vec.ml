type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length v = v.len

let is_empty v = v.len = 0

let push v x =
  if v.len = Array.length v.data then begin
    let cap = if v.len = 0 then 8 else 2 * v.len in
    let data = Array.make cap x in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let clear v = v.len <- 0

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get: index out of bounds";
  v.data.(i)

let to_rev_list v =
  (* Element 0 is the oldest push; consing front-to-back leaves the newest
     push at the head — the same newest-first discipline as building the
     sequence with [::]. *)
  let rec go i acc = if i >= v.len then acc else go (i + 1) (v.data.(i) :: acc) in
  go 0 []

let sorted_ints v =
  let a = Array.init v.len (fun i -> v.data.(i)) in
  Array.sort compare a;
  a

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done
