let default_jobs () = Domain.recommended_domain_count ()

let run ?jobs tasks =
  let n = Array.length tasks in
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let jobs = max 1 (min jobs n) in
  if n = 0 then [||]
  else if jobs = 1 then Array.map (fun task -> task ()) tasks
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    (* Static striding: worker [w] owns tasks w, w+jobs, w+2*jobs, ... No
       queue, no stealing — the task-to-worker map is a pure function of
       (n, jobs), so reruns schedule identically. *)
    let worker w () =
      let i = ref w in
      while !i < n do
        (match tasks.(!i) () with
        | v -> results.(!i) <- Some v
        | exception e -> errors.(!i) <- Some e);
        i := !i + jobs
      done
    in
    let spawned = Array.init (jobs - 1) (fun w -> Domain.spawn (worker (w + 1))) in
    worker 0 ();
    Array.iter Domain.join spawned;
    (* Joins publish the workers' writes; any failure re-raises at the
       lowest task index so the surfaced error does not depend on timing. *)
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map (function Some v -> v | None -> assert false) results
  end

let map ?jobs f xs = run ?jobs (Array.map (fun x () -> f x) xs)

let map_list ?jobs f xs =
  Array.to_list (map ?jobs f (Array.of_list xs))
