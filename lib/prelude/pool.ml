let default_jobs () = Domain.recommended_domain_count ()

(* A persistent, barrier-synchronized worker set. Spawning a domain costs
   hundreds of microseconds — fine once per sweep, fatal once per simulation
   slot — so the set spawns its helper domains once and feeds them rounds of
   work through a generation-counted barrier: publish a lane body, bump the
   generation, wake everyone, run lane 0 in the calling domain, then wait
   for the helpers' done-count. All hand-offs go through [mutex], whose
   acquire/release pairs give the happens-before edges that publish task
   results back to the caller. *)

type workers = {
  lanes : int;  (* helper domains + the caller's lane 0 *)
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable generation : int;
  mutable job : (int -> unit) option;  (* never raises: lanes trap exns *)
  mutable live : int;  (* lanes participating in the current round *)
  mutable pending : int;  (* helpers still running the current round *)
  mutable stop : bool;
  mutable domains : unit Domain.t array;
}

(* Set on every helper domain — and on the calling domain while it drives
   lane 0 — so nested [run] calls from inside a task fall back to
   sequential execution instead of deadlocking on a busy set. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Runs [body w] with the in-task flag raised; lane bodies never raise
   (they trap exceptions per task), but restore defensively anyway. *)
let as_task body w =
  let saved = Domain.DLS.get in_worker in
  Domain.DLS.set in_worker true;
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set in_worker saved)
    (fun () -> body w)

let worker_loop ws lane =
  Domain.DLS.set in_worker true;
  let gen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock ws.mutex;
    while (not ws.stop) && ws.generation = !gen do
      Condition.wait ws.work_ready ws.mutex
    done;
    if ws.stop then begin
      running := false;
      Mutex.unlock ws.mutex
    end
    else begin
      gen := ws.generation;
      let job = ws.job and live = ws.live in
      Mutex.unlock ws.mutex;
      if lane < live then (match job with Some body -> body lane | None -> ());
      Mutex.lock ws.mutex;
      ws.pending <- ws.pending - 1;
      if ws.pending = 0 then Condition.broadcast ws.work_done;
      Mutex.unlock ws.mutex
    end
  done

let spawn_set lanes =
  let ws =
    {
      lanes;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      generation = 0;
      job = None;
      live = 0;
      pending = 0;
      stop = false;
      domains = [||];
    }
  in
  ws.domains <-
    Array.init (lanes - 1) (fun w -> Domain.spawn (fun () -> worker_loop ws (w + 1)));
  ws

let shutdown ws =
  if Array.length ws.domains > 0 then begin
    Mutex.lock ws.mutex;
    ws.stop <- true;
    Condition.broadcast ws.work_ready;
    Mutex.unlock ws.mutex;
    Array.iter Domain.join ws.domains;
    ws.domains <- [||]
  end

let size ws = ws.lanes

(* One barrier round, striding tasks over [lanes <= ws.lanes] lanes. Lane
   bodies trap exceptions into [errors]; the lowest-indexed one re-raises
   after the barrier so the surfaced error is independent of timing. *)
let exec_strided ws ~lanes tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let lanes = max 1 (min lanes (min ws.lanes n)) in
    let results = Array.make n None in
    let errors = Array.make n None in
    let lane_body w =
      (* Static striding: lane [w] owns tasks w, w+lanes, w+2*lanes, ... No
         queue, no stealing — the task-to-lane map is a pure function of
         (n, lanes), so reruns schedule identically. *)
      let i = ref w in
      while !i < n do
        (match tasks.(!i) () with
        | v -> results.(!i) <- Some v
        | exception e -> errors.(!i) <- Some e);
        i := !i + lanes
      done
    in
    if lanes = 1 then as_task lane_body 0
    else begin
      Mutex.lock ws.mutex;
      ws.job <- Some lane_body;
      ws.live <- lanes;
      ws.pending <- ws.lanes - 1;
      ws.generation <- ws.generation + 1;
      Condition.broadcast ws.work_ready;
      Mutex.unlock ws.mutex;
      as_task lane_body 0;
      Mutex.lock ws.mutex;
      while ws.pending > 0 do
        Condition.wait ws.work_done ws.mutex
      done;
      ws.job <- None;
      Mutex.unlock ws.mutex
    end;
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map (function Some v -> v | None -> assert false) results
  end

let exec ws tasks = exec_strided ws ~lanes:ws.lanes tasks

let with_workers ?jobs f =
  let lanes = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let ws = if lanes = 1 then spawn_set 1 else spawn_set lanes in
  Fun.protect ~finally:(fun () -> shutdown ws) (fun () -> f ws)

(* [run] feeds a process-wide shared set so repeated sweeps reuse the same
   domains instead of re-spawning per call. The set grows (never shrinks)
   when a call asks for more lanes than it has; access is serialized by
   [shared_mutex] — concurrent top-level [run] calls take turns, and calls
   from inside a worker fall back to sequential via [in_worker]. *)
let shared_mutex = Mutex.create ()
let shared : workers option ref = ref None

let obtain lanes =
  match !shared with
  | Some ws when ws.lanes >= lanes -> ws
  | prev ->
    (match prev with Some ws -> shutdown ws | None -> ());
    let ws = spawn_set lanes in
    shared := Some ws;
    ws

let run ?jobs tasks =
  let n = Array.length tasks in
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let jobs = max 1 (min jobs n) in
  if n = 0 then [||]
  else if jobs = 1 || Domain.DLS.get in_worker then
    Array.map (fun task -> task ()) tasks
  else begin
    Mutex.lock shared_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock shared_mutex)
      (fun () -> exec_strided (obtain jobs) ~lanes:jobs tasks)
  end

let map ?jobs f xs = run ?jobs (Array.map (fun x () -> f x) xs)

let map_list ?jobs f xs =
  Array.to_list (map ?jobs f (Array.of_list xs))
