(** A minimal growable vector: the engine's flat, pre-sized message pools.

    Unlike cons lists, a [Vec] is reused slot after slot — [clear] resets
    the length without releasing the backing store, so the steady-state hot
    loop allocates nothing per slot. Elements pushed after a [clear]
    overwrite the old ones in place. *)

type 'a t

val create : unit -> 'a t
(** An empty vector. The backing array is allocated lazily on first [push]
    and doubles as it fills. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append at the end (amortized O(1)). *)

val clear : 'a t -> unit
(** Reset the length to zero, keeping the backing store. Old elements stay
    reachable until overwritten — callers reuse the vector promptly, so the
    retention window is one slot. *)

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] when out of bounds. *)

val to_rev_list : 'a t -> 'a list
(** The elements as a newest-first list: [to_rev_list v] is exactly the cons
    list built by pushing each element with [::] in push order. *)

val sorted_ints : int t -> int array
(** Snapshot the (int) elements into a fresh ascending-sorted array. *)

val iter : ('a -> unit) -> 'a t -> unit
(** In push order (oldest first). *)
