(** A minimal JSON tree, printer and parser.

    The observability layer (structured traces, meter snapshots, the
    [BENCH_observability.json] export) needs machine-readable output, and the
    round-trip tests need to parse it back; the sealed container has no JSON
    package, so this is a small self-contained implementation. Object field
    order is preserved, which keeps serialization deterministic — two equal
    documents print to byte-identical strings. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering with standard escaping. *)

val pp : Format.formatter -> t -> unit
(** Same rendering as {!to_string}. *)

val parse : string -> (t, string) result
(** Inverse of {!to_string}; also accepts arbitrary inter-token whitespace.
    Numbers without [.], [e] or [E] parse as [Int]. *)

val equal : t -> t -> bool

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing fields and non-objects. *)

val get_int : t -> int option
val get_bool : t -> bool option
val get_str : t -> string option
val get_list : t -> t list option

(** Versioned document tags.

    Every JSON document this repo emits carries a [("schema", "mewc-*/N")]
    field so a reader can reject documents it does not understand. This
    helper is the single place those literals live: emitters build the
    document with {!Schema.tag} and parsers gate on {!Schema.check}, so a
    schema string can never drift between its writer and its reader. *)
module Schema : sig
  val key : string
  (** The reserved field name, ["schema"]. *)

  val tag : string -> (string * t) list -> t
  (** [tag name fields] is [Obj] with [(key, Str name)] prepended. *)

  val check : string -> t -> (unit, string) result
  (** [check name j] accepts exactly the documents [tag name _] produces:
      an object whose [key] field is [Str name]. The error distinguishes a
      wrong tag from a missing one. *)
end
