(** Persistent domain worker sets with deterministic, work-stealing-free
    chunking.

    OCaml 5 gives us shared-memory parallelism through [Domain]. This pool
    fans arrays of independent tasks across domains using *static
    striding*: task [i] always runs on lane [i mod lanes]. There is no work
    stealing and no shared queue, so the assignment of tasks to lanes — and
    therefore any per-task effect ordering a lane observes — is a pure
    function of [(number of tasks, lanes)].

    Results come back indexed exactly like the input, so callers see output
    that is independent of scheduling: running with 1 lane and 8 lanes
    produces the same array as long as the tasks themselves are
    deterministic and independent. The simulation runners qualify: each
    sweep point builds its own PKI, meter, trace and RNG from a fixed seed.

    Because spawning a domain costs hundreds of microseconds, workers are
    persistent: a {!workers} set spawns its helper domains once and feeds
    them successive {!exec} rounds through a generation-counted barrier.
    {!run} transparently reuses a process-wide shared set, so hot loops
    (e.g. one barrier per simulation slot) never pay a spawn.

    Tasks must not share mutable state unless that state is domain-safe
    (e.g. {!Mewc_sim.Composition}'s registry, which is mutex-protected
    exactly so protocol runs can execute in parallel). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what the runtime considers a
    sensible degree of parallelism on this machine (1 on a single core). *)

(** {2 Persistent worker sets} *)

type workers
(** A barrier-synchronized set of parked helper domains plus the caller's
    own lane 0. Valid only inside the {!with_workers} scope that created
    it; a set is fed rounds of work by one domain at a time. *)

val with_workers : ?jobs:int -> (workers -> 'a) -> 'a
(** [with_workers ~jobs f] spawns a set of [jobs] lanes ([jobs - 1] helper
    domains; [jobs] defaults to {!default_jobs}, and [jobs = 1] spawns
    nothing), applies [f], and shuts the helpers down — also on exception.
    Spawning is the only per-set cost; every {!exec} round afterwards is a
    mutex/condvar barrier hand-off. *)

val size : workers -> int
(** Number of lanes, the caller's lane included. *)

val exec : workers -> (unit -> 'a) array -> 'a array
(** [exec ws tasks] runs one barrier round: every task executes exactly
    once, task [i] on lane [i mod min (size ws) (Array.length tasks)], and
    the results return in task order once all lanes reach the barrier. The
    calling domain drives lane 0, so a 1-lane set runs everything
    sequentially in the caller.

    If tasks raise, the exception of the *lowest-indexed* failing task is
    re-raised after the barrier — deterministic regardless of which lane
    hit its exception first. *)

(** {2 One-shot convenience} *)

val run : ?jobs:int -> (unit -> 'a) array -> 'a array
(** [run ~jobs tasks] executes every task and returns their results in task
    order. [jobs] defaults to {!default_jobs} and is clamped to
    [1 .. Array.length tasks]; with [jobs = 1] everything runs sequentially
    in the calling domain, with no domain involved at all.

    Parallel calls are fed to a lazily-spawned process-wide worker set that
    persists across calls (growing if a later call asks for more lanes), so
    repeated sweeps do not re-spawn domains. Concurrent top-level calls
    serialize on that set; a [run] from *inside* a pool task falls back to
    sequential execution rather than deadlock. The striding contract is
    unchanged: task [i] runs on lane [i mod jobs], and if tasks raise, the
    exception of the lowest-indexed failing task is re-raised after every
    lane has finished. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f xs] is [run ~jobs] over [fun () -> f xs.(i)]. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** List version of {!map}; preserves order. *)
