(** Fixed-size domain pool with deterministic, work-stealing-free chunking.

    OCaml 5 gives us shared-memory parallelism through [Domain]. This pool
    fans an array of independent tasks across a fixed number of domains
    using *static striding*: task [i] always runs on worker [i mod jobs].
    There is no work stealing and no shared queue, so the assignment of
    tasks to workers — and therefore any per-task effect ordering a worker
    observes — is a pure function of [(number of tasks, jobs)].

    Results come back indexed exactly like the input, so callers see output
    that is independent of scheduling: running with [jobs = 1] and
    [jobs = 8] produces the same array as long as the tasks themselves are
    deterministic and independent. The simulation runners qualify: each
    sweep point builds its own PKI, meter, trace and RNG from a fixed seed.

    Tasks must not share mutable state unless that state is domain-safe
    (e.g. {!Mewc_sim.Composition}'s registry, which is mutex-protected
    exactly so protocol runs can execute in parallel). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what the runtime considers a
    sensible degree of parallelism on this machine (1 on a single core). *)

val run : ?jobs:int -> (unit -> 'a) array -> 'a array
(** [run ~jobs tasks] executes every task and returns their results in task
    order. [jobs] defaults to {!default_jobs} and is clamped to
    [1 .. Array.length tasks]; with [jobs = 1] everything runs sequentially
    in the calling domain, with no domain spawned at all.

    If tasks raise, the exception of the *lowest-indexed* failing task is
    re-raised after every worker has finished — deterministic regardless of
    which worker hit its exception first. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f xs] is [run ~jobs] over [fun () -> f xs.(i)]. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** List version of {!map}; preserves order. *)
