type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---- printing ---------------------------------------------------------- *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec print_into buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    (* Keep a [.] or exponent so the value parses back as a float. *)
    let s = Printf.sprintf "%.17g" f in
    Buffer.add_string buf
      (if String.exists (fun c -> c = '.' || c = 'e' || c = 'n') s then s
       else s ^ ".0")
  | Str s ->
    Buffer.add_char buf '"';
    escape_into buf s;
    Buffer.add_char buf '"'
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        print_into buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape_into buf k;
        Buffer.add_string buf "\":";
        print_into buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  print_into buf j;
  Buffer.contents buf

let pp fmt j = Format.pp_print_string fmt (to_string j)

(* ---- parsing ----------------------------------------------------------- *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\n' || s.[!pos] = '\t' || s.[!pos] = '\r')
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'u' ->
               if !pos + 4 >= n then fail "truncated \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               let code =
                 try int_of_string ("0x" ^ hex)
                 with _ -> fail "invalid \\u escape"
               in
               pos := !pos + 4;
               (* Encode the code point as UTF-8; we only ever emit < 0x80. *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
             | c -> fail (Printf.sprintf "invalid escape %C" c));
          advance ();
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "invalid number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail "invalid number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        Arr (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          (k, parse_value ())
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ---- utilities --------------------------------------------------------- *)

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | Arr x, Arr y -> List.equal equal x y
  | Obj x, Obj y ->
    List.equal (fun (k, v) (k', v') -> String.equal k k' && equal v v') x y
  | _ -> false

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let get_int = function Int i -> Some i | _ -> None
let get_bool = function Bool b -> Some b | _ -> None
let get_str = function Str s -> Some s | _ -> None
let get_list = function Arr xs -> Some xs | _ -> None

(* ---- schema tags ------------------------------------------------------- *)

module Schema = struct
  let key = "schema"
  let tag name fields = Obj ((key, Str name) :: fields)

  let check name j =
    match member key j with
    | Some (Str s) when String.equal s name -> Ok ()
    | Some (Str s) -> Error (Printf.sprintf "unsupported schema %S" s)
    | Some _ | None -> Error "missing schema tag"
end
