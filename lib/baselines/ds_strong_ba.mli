(** Strong BA from n parallel Dolev–Strong broadcasts — an alternative
    [A_fallback] implementation.

    The paper treats its fallback as a black box ("we can use a fallback
    algorithm with O(nt) communication complexity", §6); this module makes
    that claim executable by providing a {e second}, completely different
    protocol satisfying {!Mewc_core.Fallback_intf.FALLBACK}: every process
    Dolev–Strong-broadcasts its input (t+2 rounds, signature chains); by BB
    agreement all correct processes end with identical outcome vectors, and
    with [n = 2t + 1] the most frequent delivered value is the decision —
    strong unanimity because a unanimous value is delivered by all
    [n − f ≥ t + 1] correct instances while Byzantine instances number at
    most [t < t + 1].

    Cost: Θ(n³)-class words (n instances of quadratic-message chains that
    threshold signatures cannot batch) — far above {!Echo_phase_king}, which
    is the point of the ABL-FALLBACK comparison: the weak BA works with
    either black box, and the word meter shows why the paper wants a
    quadratic one.

    Like {!Echo_phase_king}, messages are round-tagged and buffered, so the
    protocol tolerates one slot of start skew when run with
    [round_len >= 2]. *)

module Make (V : Mewc_sim.Value.S) : sig
  type msg
  type state

  val words : msg -> int
  val pp_msg : Format.formatter -> msg -> unit

  val init :
    cfg:Mewc_sim.Config.t ->
    pki:Mewc_crypto.Pki.t ->
    secret:Mewc_crypto.Pki.Secret.t ->
    pid:Mewc_prelude.Pid.t ->
    input:V.t ->
    start_slot:int ->
    round_len:int ->
    state

  val step :
    slot:int ->
    inbox:msg Mewc_sim.Envelope.t list ->
    state ->
    state * (msg * Mewc_prelude.Pid.t) list

  val decision : state -> V.t option
  val decided_at : state -> int option
  val horizon : Mewc_sim.Config.t -> round_len:int -> int

  val wake : slot:int -> state -> bool
  (** The {!Mewc_core.Fallback_intf.FALLBACK} wake timer: [true] exactly on
      round boundaries while rounds remain. *)
end
