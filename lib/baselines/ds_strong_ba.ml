open Mewc_prelude
open Mewc_crypto
open Mewc_sim

module Make (V : Value.S) = struct
  let purpose = "dsba"

  (* Chains sign the instance (the broadcasting sender) together with the
     value, so a chain from one instance cannot be replayed into another. *)
  let payload ~instance v = Printf.sprintf "%d|%s" instance (V.encode v)

  type msg = {
    round : int;
    instance : Pid.t;  (** whose broadcast this chain belongs to *)
    value : V.t;
    chain : Pki.Sig.t list;  (** distinct signers, the instance's first *)
  }

  let words m = 1 + List.length m.chain

  let pp_msg fmt m =
    Format.fprintf fmt "ds[r%d, inst p%d, %a, %d sigs]" m.round m.instance V.pp
      m.value (List.length m.chain)

  type state = {
    cfg : Config.t;
    pki : Pki.t;
    secret : Pki.Secret.t;
    pid : Pid.t;
    start_slot : int;
    round_len : int;
    input : V.t;
    buf : (int, msg list) Hashtbl.t;  (* reversed *)
    extracted : (Pid.t, V.t list) Hashtbl.t;  (* per instance, at most 2 *)
    mutable consumed : int;
    mutable to_relay : msg list;  (* chains to forward at the next round *)
    mutable decision : V.t option;
    mutable decided_at : int option;
  }

  (* Bucket r holds chains that must carry >= r+1 distinct signers (the
     sender's initial chain sits in bucket 0 with one signature). Buckets
     0..t are extraction rounds; the decision falls at round t+1. *)
  let rounds cfg = cfg.Config.t + 2
  let horizon cfg ~round_len = (rounds cfg * round_len) + 2

  let init ~cfg ~pki ~secret ~pid ~input ~start_slot ~round_len =
    if round_len < 1 then invalid_arg "Ds_strong_ba.init: round_len >= 1";
    {
      cfg;
      pki;
      secret;
      pid;
      start_slot;
      round_len;
      input;
      buf = Hashtbl.create 32;
      extracted = Hashtbl.create 16;
      consumed = 0;
      to_relay = [];
      decision = None;
      decided_at = None;
    }

  let decision st = st.decision
  let decided_at st = st.decided_at

  let chain_valid st ~bucket m =
    let signed =
      Certificate.signed_message ~purpose
        ~payload:(payload ~instance:m.instance m.value)
    in
    match m.chain with
    | first :: _ ->
      Pid.equal (Pki.Sig.signer first) m.instance
      && List.length
           (List.sort_uniq Pid.compare (List.map Pki.Sig.signer m.chain))
         >= bucket + 1
      && List.for_all (fun sg -> Pki.verify st.pki sg ~msg:signed) m.chain
    | [] -> false

  let ingest st ~bucket msgs =
    List.iter
      (fun m ->
        if bucket <= st.cfg.Config.t && chain_valid st ~bucket m then begin
          let seen = Option.value ~default:[] (Hashtbl.find_opt st.extracted m.instance) in
          if
            List.length seen < 2
            && not (List.exists (V.equal m.value) seen)
          then begin
            Hashtbl.replace st.extracted m.instance (m.value :: seen);
            if bucket < st.cfg.Config.t then begin
              let own =
                Pki.sign st.pki st.secret
                  (Certificate.signed_message ~purpose
                     ~payload:(payload ~instance:m.instance m.value))
              in
              st.to_relay <-
                { m with round = bucket + 1; chain = m.chain @ [ own ] }
                :: st.to_relay
            end
          end
        end)
      msgs

  let decide st ~slot =
    (* The outcome of instance s is its unique extracted value (⊥ if zero or
       two); the decision is the most frequent non-⊥ outcome, ties broken by
       value order. With n = 2t+1, a unanimous correct input always wins. *)
    let counts : (string, V.t * int) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun instance ->
        match Hashtbl.find_opt st.extracted instance with
        | Some [ v ] ->
          let key = V.encode v in
          let _, c = Option.value ~default:(v, 0) (Hashtbl.find_opt counts key) in
          Hashtbl.replace counts key (v, c + 1)
        | Some _ | None -> ())
      (Pid.all ~n:st.cfg.Config.n);
    let best =
      Hashtbl.fold
        (fun _ (v, c) acc ->
          match acc with
          | Some (bv, bc) ->
            if c > bc || (c = bc && V.compare v bv < 0) then Some (v, c) else acc
          | None -> Some (v, c))
        counts None
    in
    st.decision <-
      Some (match best with Some (v, _) -> v | None -> st.input);
    st.decided_at <- Some slot

  (* Off-boundary (and post-protocol) steps only buffer the inbox, so with
     nothing delivered they are no-ops — the FALLBACK wake contract. *)
  let wake ~slot st =
    slot >= st.start_slot
    && (slot - st.start_slot) mod st.round_len = 0
    && (slot - st.start_slot) / st.round_len < rounds st.cfg

  let step ~slot ~inbox st =
    List.iter
      (fun env ->
        let m = env.Envelope.msg in
        if m.round >= st.consumed && m.round <= rounds st.cfg then begin
          let prev = Option.value ~default:[] (Hashtbl.find_opt st.buf m.round) in
          Hashtbl.replace st.buf m.round (m :: prev)
        end)
      inbox;
    if slot < st.start_slot || (slot - st.start_slot) mod st.round_len <> 0 then
      (st, [])
    else begin
      let r = (slot - st.start_slot) / st.round_len in
      if r >= rounds st.cfg then (st, [])
      else begin
        while st.consumed < r do
          let k = st.consumed in
          let msgs = Option.value ~default:[] (Hashtbl.find_opt st.buf k) |> List.rev in
          Hashtbl.remove st.buf k;
          ingest st ~bucket:k msgs;
          st.consumed <- st.consumed + 1
        done;
        let n = st.cfg.Config.n in
        let sends =
          if r = 0 then begin
            let sg =
              Pki.sign st.pki st.secret
                (Certificate.signed_message ~purpose
                   ~payload:(payload ~instance:st.pid st.input))
            in
            Hashtbl.replace st.extracted st.pid [ st.input ];
            Process.broadcast_others ~n ~self:st.pid
              { round = 0; instance = st.pid; value = st.input; chain = [ sg ] }
          end
          else if r <= st.cfg.Config.t + 1 then begin
            let out =
              List.concat_map
                (fun m -> Process.broadcast_others ~n ~self:st.pid m)
                (List.rev st.to_relay)
            in
            st.to_relay <- [];
            out
          end
          else []
        in
        if r = st.cfg.Config.t + 1 && st.decision = None then decide st ~slot;
        (st, sends)
      end
    end
end
