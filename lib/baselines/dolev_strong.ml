open Mewc_prelude
open Mewc_crypto
open Mewc_sim

type value = string
type msg = { value : value; chain : Pki.Sig.t list }
type decision = Decided of value | No_decision

let sender_purpose = "ds-val"

let equal_decision a b =
  match (a, b) with
  | Decided x, Decided y -> String.equal x y
  | No_decision, No_decision -> true
  | Decided _, No_decision | No_decision, Decided _ -> false

let pp_decision fmt = function
  | Decided v -> Format.fprintf fmt "decide(%s)" v
  | No_decision -> Format.pp_print_string fmt "decide(⊥)"

let words m = 1 + List.length m.chain

type state = {
  cfg : Config.t;
  pki : Pki.t;
  secret : Pki.Secret.t;
  pid : Pid.t;
  sender : Pid.t;
  input : value option;
  start_slot : int;
  mutable extracted : value list;  (* at most 2, newest first *)
  mutable to_relay : msg list;  (* extracted this slot, relay now *)
  mutable decision : decision option;
}

let horizon cfg = cfg.Config.t + 3

let init ~cfg ~pki ~secret ~pid ~sender ~input ~start_slot =
  {
    cfg;
    pki;
    secret;
    pid;
    sender;
    input;
    start_slot;
    extracted = [];
    to_relay = [];
    decision = None;
  }

let decision st = st.decision

(* A chain is valid in round [r] when it carries at least [r] distinct
   signers, the first being the designated sender, all signing the value. *)
let chain_valid st ~r { value; chain } =
  let payload = Certificate.signed_message ~purpose:sender_purpose ~payload:value in
  match chain with
  | first :: _ ->
    Pid.equal (Pki.Sig.signer first) st.sender
    && List.length (List.sort_uniq Pid.compare (List.map Pki.Sig.signer chain)) >= r
    && List.for_all (fun sg -> Pki.verify st.pki sg ~msg:payload) chain
  | [] -> false

let ingest st ~r env =
  let m = env.Envelope.msg in
  if
    r >= 1
    && r <= st.cfg.Config.t + 1
    && List.length st.extracted < 2
    && (not (List.exists (String.equal m.value) st.extracted))
    && chain_valid st ~r m
  then begin
    st.extracted <- m.value :: st.extracted;
    let own =
      Pki.sign st.pki st.secret
        (Certificate.signed_message ~purpose:sender_purpose ~payload:m.value)
    in
    st.to_relay <- { m with chain = m.chain @ [ own ] } :: st.to_relay
  end

let step ~slot ~inbox st =
  let r = slot - st.start_slot in
  if r < 0 then (st, [])
  else begin
    List.iter (ingest st ~r) inbox;
    let n = st.cfg.Config.n in
    let sends =
      if r = 0 then begin
        match (Pid.equal st.pid st.sender, st.input) with
        | true, Some v ->
          let sg =
            Pki.sign st.pki st.secret
              (Certificate.signed_message ~purpose:sender_purpose ~payload:v)
          in
          st.extracted <- [ v ];
          Process.broadcast_others ~n ~self:st.pid { value = v; chain = [ sg ] }
        | true, None -> invalid_arg "Dolev_strong: sender needs an input"
        | false, _ -> []
      end
      else if r <= st.cfg.Config.t + 1 then begin
        let out =
          List.concat_map
            (fun m -> Process.broadcast_others ~n ~self:st.pid m)
            (List.rev st.to_relay)
        in
        st.to_relay <- [];
        out
      end
      else []
    in
    if r = st.cfg.Config.t + 2 && st.decision = None then
      st.decision <-
        Some (match st.extracted with [ v ] -> Decided v | _ -> No_decision);
    (st, sends)
  end

type outcome = {
  decisions : decision option array;
  f : int;
  words : int;
  messages : int;
  signatures : int;
}

let run ~cfg ?(seed = 1L) ?(sender = 0) ~input ~adversary () =
  let n = cfg.Config.n in
  let pki, secrets = Pki.setup ~seed ~n () in
  let protocol pid =
    {
      Process.init =
        init ~cfg ~pki ~secret:secrets.(pid) ~pid ~sender
          ~input:(if pid = sender then Some input else None)
          ~start_slot:0;
      step = (fun ~slot ~inbox st -> step ~slot ~inbox st);
      wake = None;
    }
  in
  let adversary = adversary ~pki ~secrets in
  let res =
    Engine.run ~cfg ~words ~horizon:(horizon cfg) ~protocol ~adversary ()
  in
  {
    decisions = Array.map decision res.Engine.states;
    f = res.Engine.f;
    words = Meter.correct_words res.Engine.meter;
    messages = Meter.correct_messages res.Engine.meter;
    signatures = Pki.signatures_created pki;
  }
