open Mewc_prelude
open Mewc_crypto
open Mewc_sim

type value = string

module Opt_value = struct
  type t = value option

  let encode = function None -> "n" | Some v -> "s|" ^ v
  let equal a b = String.equal (encode a) (encode b)
  let compare a b = String.compare (encode a) (encode b)
  let words _ = 1

  let pp fmt = function
    | None -> Format.pp_print_string fmt "⊥"
    | Some v -> Format.fprintf fmt "%S" v
end

module Ba = Mewc_fallback.Echo_phase_king.Make (Opt_value)

let sender_purpose = "naive-val"

type msg = Send of { value : value; sg : Pki.Sig.t } | Ba of Ba.msg
type decision = Decided of value | No_decision

let equal_decision a b =
  match (a, b) with
  | Decided x, Decided y -> String.equal x y
  | No_decision, No_decision -> true
  | Decided _, No_decision | No_decision, Decided _ -> false

let pp_decision fmt = function
  | Decided v -> Format.fprintf fmt "decide(%s)" v
  | No_decision -> Format.pp_print_string fmt "decide(⊥)"

let words = function Send _ -> 2 | Ba m -> Ba.words m

type state = {
  cfg : Config.t;
  pki : Pki.t;
  secret : Pki.Secret.t;
  pid : Pid.t;
  sender : Pid.t;
  input : value option;
  start_slot : int;
  mutable received : value option;
  mutable ba : Ba.state option;
  mutable pending : Ba.msg Envelope.t list;
}

let ba_start = 2
let horizon cfg = ba_start + Ba.horizon cfg ~round_len:1

let init ~cfg ~pki ~secret ~pid ~sender ~input ~start_slot =
  {
    cfg;
    pki;
    secret;
    pid;
    sender;
    input;
    start_slot;
    received = None;
    ba = None;
    pending = [];
  }

let decision st =
  match st.ba with
  | None -> None
  | Some ba -> (
    match Ba.decision ba with
    | None -> None
    | Some (Some v) -> Some (Decided v)
    | Some None -> Some No_decision)

let step ~slot ~inbox st =
  let rel = slot - st.start_slot in
  if rel < 0 then (st, [])
  else begin
    List.iter
      (fun env ->
        match env.Envelope.msg with
        | Send { value; sg } ->
          if
            rel = 1
            && Pid.equal env.Envelope.src st.sender
            && Pki.verify st.pki sg
                 ~msg:
                   (Certificate.signed_message ~purpose:sender_purpose
                      ~payload:value)
            && st.received = None
          then st.received <- Some value
        | Ba inner ->
          st.pending <- { env with Envelope.msg = inner } :: st.pending)
      inbox;
    let sends =
      if rel = 0 then begin
        match (Pid.equal st.pid st.sender, st.input) with
        | true, Some v ->
          st.received <- Some v;
          let sg =
            Pki.sign st.pki st.secret
              (Certificate.signed_message ~purpose:sender_purpose ~payload:v)
          in
          Process.broadcast ~n:st.cfg.Config.n (Send { value = v; sg })
        | true, None -> invalid_arg "Naive_bb: sender needs an input"
        | false, _ -> []
      end
      else if rel >= ba_start then begin
        if rel = ba_start && st.ba = None then
          st.ba <-
            Some
              (Ba.init ~cfg:st.cfg ~pki:st.pki ~secret:st.secret ~pid:st.pid
                 ~input:st.received ~start_slot:(st.start_slot + ba_start)
                 ~round_len:1);
        match st.ba with
        | None -> []
        | Some ba ->
          let inbox = List.rev st.pending in
          st.pending <- [];
          let ba', sends = Ba.step ~slot ~inbox ba in
          st.ba <- Some ba';
          List.map (fun (m, dst) -> (Ba m, dst)) sends
      end
      else []
    in
    (st, sends)
  end

type outcome = {
  decisions : decision option array;
  f : int;
  words : int;
  messages : int;
  signatures : int;
}

let run ~cfg ?(seed = 1L) ?(sender = 0) ~input ~adversary () =
  let n = cfg.Config.n in
  let pki, secrets = Pki.setup ~seed ~n () in
  let protocol pid =
    {
      Process.init =
        init ~cfg ~pki ~secret:secrets.(pid) ~pid ~sender
          ~input:(if pid = sender then Some input else None)
          ~start_slot:0;
      step = (fun ~slot ~inbox st -> step ~slot ~inbox st);
      wake = None;
    }
  in
  let adversary = adversary ~pki ~secrets in
  let res =
    Engine.run ~cfg ~words ~horizon:(horizon cfg) ~protocol ~adversary ()
  in
  {
    decisions = Array.map decision res.Engine.states;
    f = res.Engine.f;
    words = Meter.correct_words res.Engine.meter;
    messages = Meter.correct_messages res.Engine.meter;
    signatures = Pki.signatures_created pki;
  }
