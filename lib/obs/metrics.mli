(** Deterministic live-telemetry registry: counters, gauges and log2-bucket
    histograms, recorded into private per-domain cells and merged with
    commutative, associative operations (sum / max / pointwise sum) — so a
    run that performs the same operations snapshots byte-identically at
    every shard count and under either engine scheduler. *)

(** Nearest-rank percentile of an ascending-sorted sample array:
    rank(p) = ceil(p·len/100), 1-based, clamped; 0 on the empty array.
    The single quantile definition shared by the throughput service, the
    profiler summary and the degradation summaries. *)
val nearest_rank : float -> int array -> int

(** [percentile_of_list p xs] sorts a copy of [xs] and applies
    {!nearest_rank}. *)
val percentile_of_list : float -> int list -> int

(** Number of histogram buckets. Bucket 0 holds the value 0; bucket
    [i >= 1] holds the half-open range [2^(i-1), 2^i). *)
val buckets : int

val bucket_of : int -> int
val bucket_floor : int -> int

(** Nearest-rank quantile over raw bucket counts, reporting the chosen
    bucket's lower bound (exact for powers of two, never more than 2x
    under). *)
val histogram_quantile : counts:int array -> float -> int

type t

val create : unit -> t

type counter
type gauge
type histogram

(** Handle constructors register the name (idempotently), so the metric
    appears in snapshots — as zero — even if never incremented. *)
val counter : t -> string -> counter

val gauge : t -> string -> gauge
val histogram : t -> string -> histogram
val add : counter -> int -> unit
val incr : counter -> unit

(** Gauges are high-water marks: [set_max] keeps the maximum ever set in
    this domain, and cells merge by max — the only gauge semantics that is
    merge-order-free. *)
val set_max : gauge -> int -> unit

val observe : histogram -> int -> unit

type snapshot = {
  counter_values : (string * int) list;  (** sorted by name *)
  gauge_values : (string * int) list;  (** sorted by name *)
  histogram_values : (string * int array) list;  (** sorted by name *)
}

val empty_snapshot : snapshot

(** Commutative and associative; the same operation used internally to fold
    per-domain cells. *)
val merge : snapshot -> snapshot -> snapshot

val snapshot : t -> snapshot
val snapshot_to_json : snapshot -> Mewc_prelude.Jsonx.t
val snapshot_to_line : snapshot -> string
