open Mewc_prelude

(* The one quantile definition in the tree: nearest-rank on an
   ascending-sorted sample array. rank(p) = ceil(p·len/100), 1-based,
   clamped — so p50 of [|1;2;3;4|] is 2 (the 2nd sample), never an
   interpolated 2.5. Throughput latencies (Service), the profiler's
   span summary and the degradation level summaries all funnel through
   here; reports and ledgers therefore never disagree on what a
   percentile means. *)
let nearest_rank p sorted =
  let len = Array.length sorted in
  if len = 0 then 0
  else begin
    let rank = int_of_float (ceil (p *. float_of_int len /. 100.0)) - 1 in
    sorted.(max 0 (min (len - 1) rank))
  end

let percentile_of_list p xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  nearest_rank p a

(* ---- log2-bucket histograms --------------------------------------------

   Fixed-shape histograms so per-domain cells merge by pointwise sum:
   bucket 0 holds the value 0, bucket i >= 1 holds [2^(i-1), 2^i). The
   quantile readout is nearest-rank over the bucket counts and reports
   the bucket's lower bound — an under-approximation that is exact for
   powers of two and never off by more than 2x, which is all a live
   heartbeat needs (exact report-grade quantiles use [nearest_rank] on
   the raw samples instead). *)

let buckets = 63

let bucket_of v =
  if v <= 0 then 0
  else begin
    let rec log2 acc v = if v = 0 then acc else log2 (acc + 1) (v lsr 1) in
    min (buckets - 1) (log2 0 v)
  end

let bucket_floor i = if i = 0 then 0 else 1 lsl (i - 1)

let histogram_quantile ~counts p =
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 0
  else begin
    let rank =
      max 1 (int_of_float (ceil (p *. float_of_int total /. 100.0)))
    in
    let rec scan i seen =
      if i >= buckets then bucket_floor (buckets - 1)
      else begin
        let seen = seen + counts.(i) in
        if seen >= rank then bucket_floor i else scan (i + 1) seen
      end
    in
    scan 0 0
  end

(* ---- the registry -------------------------------------------------------

   Determinism is the whole design: a metric op mutates a plain (unshared)
   per-domain cell, and a snapshot folds every cell with commutative,
   associative merges — sum for counters and histogram buckets, max for
   gauges — so neither the number of domains nor the fold order can show
   in the result. A run that performs the same operations (which the
   sharded engine does by construction) therefore snapshots byte-identically
   at every shard count and under either scheduler. *)

type cell = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, int ref) Hashtbl.t;
  histograms : (string, int array) Hashtbl.t;
}

let new_cell () =
  {
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 8;
    histograms = Hashtbl.create 8;
  }

type kind = Counter | Gauge | Histogram

type t = {
  id : int;
  mutex : Mutex.t;
  mutable cells : cell list;
  mutable names : (string * kind) list; (* registration order, reversed *)
}

let ids = Atomic.make 0

(* One DLS slot for the whole library (the Pki.Memo pattern): a per-domain
   map from registry id to that domain's private cell. Swept wholesale once
   a domain has seen many distinct registries — the registry keeps its own
   reference to every cell it ever handed out, so a sweep never loses
   counts, it only makes the next op allocate a fresh cell. *)
let domain_cells : (int, cell) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let max_live_cells = 64

let create () =
  {
    id = Atomic.fetch_and_add ids 1;
    mutex = Mutex.create ();
    cells = [];
    names = [];
  }

let cell_of t =
  let per_domain = Domain.DLS.get domain_cells in
  match Hashtbl.find_opt per_domain t.id with
  | Some c -> c
  | None ->
    if Hashtbl.length per_domain >= max_live_cells then
      Hashtbl.reset per_domain;
    let c = new_cell () in
    Hashtbl.add per_domain t.id c;
    Mutex.lock t.mutex;
    t.cells <- c :: t.cells;
    Mutex.unlock t.mutex;
    c

let register t name kind =
  Mutex.lock t.mutex;
  if not (List.mem_assoc name t.names) then t.names <- (name, kind) :: t.names;
  Mutex.unlock t.mutex

type counter = { c_reg : t; c_name : string }
type gauge = { g_reg : t; g_name : string }
type histogram = { h_reg : t; h_name : string }

let counter t name =
  register t name Counter;
  { c_reg = t; c_name = name }

let gauge t name =
  register t name Gauge;
  { g_reg = t; g_name = name }

let histogram t name =
  register t name Histogram;
  { h_reg = t; h_name = name }

let slot tbl name init =
  match Hashtbl.find_opt tbl name with
  | Some v -> v
  | None ->
    let v = init () in
    Hashtbl.add tbl name v;
    v

let add c k =
  let cell = cell_of c.c_reg in
  let r = slot cell.counters c.c_name (fun () -> ref 0) in
  r := !r + k

let incr c = add c 1

(* Gauges merge by max across cells: the only gauge semantics that is
   order-free, which is what keeps snapshots deterministic under
   sharding. A high-water mark is exactly that. *)
let set_max g v =
  let cell = cell_of g.g_reg in
  let r = slot cell.gauges g.g_name (fun () -> ref 0) in
  if v > !r then r := v

let observe h v =
  let cell = cell_of h.h_reg in
  let counts =
    slot cell.histograms h.h_name (fun () -> Array.make buckets 0)
  in
  let i = bucket_of v in
  counts.(i) <- counts.(i) + 1

(* ---- snapshots ---------------------------------------------------------- *)

type snapshot = {
  counter_values : (string * int) list; (* each section sorted by name *)
  gauge_values : (string * int) list;
  histogram_values : (string * int array) list;
}

let empty_snapshot =
  { counter_values = []; gauge_values = []; histogram_values = [] }

let merge_assoc combine a b =
  let names =
    List.sort_uniq String.compare (List.map fst a @ List.map fst b)
  in
  List.map
    (fun n ->
      match (List.assoc_opt n a, List.assoc_opt n b) with
      | Some x, Some y -> (n, combine x y)
      | Some x, None | None, Some x -> (n, x)
      | None, None -> assert false)
    names

let merge a b =
  {
    counter_values = merge_assoc ( + ) a.counter_values b.counter_values;
    gauge_values = merge_assoc max a.gauge_values b.gauge_values;
    histogram_values =
      (* cells always carry [buckets]-length arrays, but merge is public
         and total: shorter arrays are padded with zeros *)
      merge_assoc
        (fun x y ->
          let len = max (Array.length x) (Array.length y) in
          Array.init len (fun i ->
              (if i < Array.length x then x.(i) else 0)
              + if i < Array.length y then y.(i) else 0))
        a.histogram_values b.histogram_values;
  }

let snapshot_of_cell c =
  let sorted tbl f =
    Hashtbl.fold (fun name v acc -> (name, f v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    counter_values = sorted c.counters ( ! );
    gauge_values = sorted c.gauges ( ! );
    histogram_values = sorted c.histograms Array.copy;
  }

let snapshot t =
  Mutex.lock t.mutex;
  let cells = t.cells in
  let names = t.names in
  Mutex.unlock t.mutex;
  let merged =
    List.fold_left
      (fun acc c -> merge acc (snapshot_of_cell c))
      empty_snapshot cells
  in
  (* Registered-but-untouched metrics appear as zeros, so a snapshot's
     shape depends on what was registered, never on which ops happened to
     run first. *)
  List.fold_left
    (fun acc (name, kind) ->
      match kind with
      | Counter when not (List.mem_assoc name acc.counter_values) ->
        {
          acc with
          counter_values =
            merge_assoc ( + ) acc.counter_values [ (name, 0) ];
        }
      | Gauge when not (List.mem_assoc name acc.gauge_values) ->
        { acc with gauge_values = merge_assoc max acc.gauge_values [ (name, 0) ] }
      | Histogram when not (List.mem_assoc name acc.histogram_values) ->
        {
          acc with
          histogram_values =
            merge_assoc
              (fun x _ -> x)
              acc.histogram_values
              [ (name, Array.make buckets 0) ];
        }
      | _ -> acc)
    merged names

let snapshot_to_json s =
  let histo (name, counts) =
    let count = Array.fold_left ( + ) 0 counts in
    let nonzero =
      Array.to_list (Array.mapi (fun i c -> (i, c)) counts)
      |> List.filter (fun (_, c) -> c > 0)
      |> List.map (fun (i, c) ->
             Jsonx.Obj
               [
                 ("bucket_floor", Jsonx.Int (bucket_floor i));
                 ("count", Jsonx.Int c);
               ])
    in
    ( name,
      Jsonx.Obj
        [
          ("count", Jsonx.Int count);
          ("p50", Jsonx.Int (histogram_quantile ~counts 50.0));
          ("p90", Jsonx.Int (histogram_quantile ~counts 90.0));
          ("p99", Jsonx.Int (histogram_quantile ~counts 99.0));
          ("buckets", Jsonx.Arr nonzero);
        ] )
  in
  Jsonx.Obj
    [
      ( "counters",
        Jsonx.Obj (List.map (fun (n, v) -> (n, Jsonx.Int v)) s.counter_values)
      );
      ( "gauges",
        Jsonx.Obj (List.map (fun (n, v) -> (n, Jsonx.Int v)) s.gauge_values) );
      ("histograms", Jsonx.Obj (List.map histo s.histogram_values));
    ]

(* A compact one-line rendering for the heartbeat: counters only, in name
   order. *)
let snapshot_to_line s =
  String.concat " "
    (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) s.counter_values)
