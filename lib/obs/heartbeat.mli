(** Opt-in stderr heartbeat for long sweeps: one line every [every] ticks,
    with elapsed wall-clock and (optionally) a compact counter snapshot
    from a {!Metrics.t}. Pure observer — never touches what the sweep
    emits. *)

type t

val create :
  ?every:int ->
  ?total:int ->
  ?out:(string -> unit) ->
  ?clock:(unit -> float) ->
  ?registry:Metrics.t ->
  label:string ->
  unit ->
  t

(** Count one unit of work; emits a line when the count is a multiple of
    [every]. *)
val tick : t -> unit

(** Emit a final line unless the last {!tick} just did. *)
val finish : t -> unit
