(* Opt-in progress heartbeat for long sweeps. Strictly an observer: it
   writes to [out] (stderr by default) and touches nothing the sweep
   emits, so enabling it cannot perturb any JSON artifact — test_cli pins
   that. The clock is injectable so tests can assert exact lines. *)

type t = {
  label : string;
  every : int;
  total : int option;
  out : string -> unit;
  clock : unit -> float;
  start : float;
  registry : Metrics.t option;
  mutable count : int;
}

let default_out line =
  output_string stderr line;
  output_char stderr '\n';
  flush stderr

let create ?(every = 1) ?total ?out ?clock ?registry ~label () =
  let clock = match clock with Some c -> c | None -> Unix.gettimeofday in
  {
    label;
    every = max 1 every;
    total;
    out = (match out with Some o -> o | None -> default_out);
    clock;
    start = clock ();
    registry;
    count = 0;
  }

let line t =
  let progress =
    match t.total with
    | Some total when total > 0 ->
      Printf.sprintf "%d/%d (%d%%)" t.count total (100 * t.count / total)
    | _ -> string_of_int t.count
  in
  let metrics =
    match t.registry with
    | None -> ""
    | Some r -> (
      match Metrics.snapshot_to_line (Metrics.snapshot r) with
      | "" -> ""
      | s -> " " ^ s)
  in
  Printf.sprintf "[mewc] %s %s %.1fs%s" t.label progress
    (t.clock () -. t.start)
    metrics

let tick t =
  t.count <- t.count + 1;
  if t.count mod t.every = 0 then t.out (line t)

let finish t =
  if t.count mod t.every <> 0 then t.out (line t)
