(** Figure rendering: CSV and dependency-free SVG from parsed artifacts.

    Everything here is byte-deterministic — coordinates go through fixed
    [%.2f] formatting and all ordering is derived from the data — so a
    figure regenerated from the same artifacts is the same bytes, which is
    the property [mewc report --check] gates on. *)

val frontier_csv : Mewc_core.Sweep.row list -> string
(** One CSV row per ledger row with the literature's reference curves
    (paper [n(f+1)], Civit et al. [n + t·f], King–Saia [n·√n·log₂n])
    computed alongside the measurement. This is the single home of the
    frontier arithmetic; [mewc perf frontier-csv] is an alias over it. *)

val frontier_svg : Mewc_core.Sweep.row list -> string
(** Log-log words-vs-n: the failure-free line of each protocol plus the
    weak-BA f = t line, against the three reference shapes normalized to
    pass through the smallest-n weak-BA f = t measurement. *)

val ratio_pairs :
  legacy:Mewc_core.Sweep.row list ->
  event:Mewc_core.Sweep.row list ->
  (Mewc_core.Sweep.row * Mewc_core.Sweep.row) list
(** The two baselines matched point by point, legacy order; points missing
    from either side are dropped. *)

val ratio_csv :
  legacy:Mewc_core.Sweep.row list -> event:Mewc_core.Sweep.row list -> string

val ratio_svg :
  legacy:Mewc_core.Sweep.row list -> event:Mewc_core.Sweep.row list -> string
(** Per-point event-driven-vs-legacy wall-clock speedup, computed from the
    {!Mewc_core.Sweep.row.wall_s} fields of two [grid="ratio"] ledger
    baselines matched point by point (unmatched points are dropped). *)

val throughput_csv : Loader.throughput_entry -> string

val throughput_svg : Loader.throughput_entry -> string
(** Grouped bars over the (n, workload) grid, one bar per pipeline depth:
    decided batches per 1000 slots on top, p99 commit latency below. *)

val degrade_svg : Loader.degrade -> string
(** The chaos matrix as a heatmap — one row per (protocol, fault), one
    column per intensity level, colored by verdict; each cell carries a
    [<title>] tooltip with f / undecided / words. *)
