(* Figure rendering: CSV + dependency-free SVG, all byte-deterministic.

   Every coordinate is printed through a fixed [%.2f] so regenerating a
   figure from the same artifacts yields the same bytes — that is what
   lets [mewc report --check] treat the committed [docs/report/] files as
   a drift gate rather than a best-effort snapshot. *)

module Sweep = Mewc_core.Sweep
module Ledger = Mewc_core.Ledger

(* ---- frontier CSV: measured words vs the literature's curves ------------- *)

(* One CSV row per ledger-entry row, with the related-work reference curves
   computed alongside the measurement so the words-vs-n frontier plots
   straight out of the file:
   - paper_bound_n_f1: the source paper's adaptive O(n(f+1)) upper shape;
   - civit_adaptive_n_tf: Civit et al.'s adaptive word complexity O(n + t*f)
     (Strong Byzantine Agreement with Adaptive Word Complexity);
   - king_saia_nsqrtn_log2n: King-Saia's O~(sqrt n) bits per processor,
     totalled as n*sqrt(n)*log2(n) words.
   Shapes, not constants: each column is the bound's leading term with
   constant 1, for slope comparison on log-log axes. *)
let frontier_csv rows =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "protocol,n,t,f_spec,f,words,messages,signatures,paper_bound_n_f1,\
     civit_adaptive_n_tf,king_saia_nsqrtn_log2n\n";
  List.iter
    (fun (r : Sweep.row) ->
      let n = float_of_int r.Sweep.point.Sweep.n in
      let king_saia = n *. sqrt n *. (log n /. log 2.0) in
      Buffer.add_string b
        (Printf.sprintf "%s,%d,%d,%s,%d,%d,%d,%d,%d,%d,%.1f\n"
           r.Sweep.point.Sweep.protocol r.Sweep.point.Sweep.n r.Sweep.t
           r.Sweep.point.Sweep.f_spec r.Sweep.f r.Sweep.words r.Sweep.messages
           r.Sweep.signatures
           (r.Sweep.point.Sweep.n * (r.Sweep.f + 1))
           (r.Sweep.point.Sweep.n + (r.Sweep.t * r.Sweep.f))
           king_saia))
    rows;
  Buffer.contents b

(* ---- a tiny SVG chart kit ------------------------------------------------ *)

let palette =
  [| "#1f77b4"; "#d62728"; "#2ca02c"; "#9467bd"; "#ff7f0e"; "#8c564b" |]

let color i = palette.(i mod Array.length palette)
let f2 = Printf.sprintf "%.2f"

type series = {
  s_name : string;
  s_color : string;
  s_dash : bool;  (** dashed = reference shape, solid = measurement *)
  s_pts : (float * float) list;
}

(* Shared layout for every line chart. *)
let width = 720.0
let height = 440.0
let ml = 80.0 (* left *)
let mr = 180.0 (* right: legend column *)
let mt = 46.0
let mb = 56.0

let xml_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let svg_open b =
  Buffer.add_string b
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" \
        height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\" font-family=\"sans-serif\" \
        font-size=\"12\">\n"
       width height width height);
  Buffer.add_string b
    (Printf.sprintf
       "<rect width=\"%.0f\" height=\"%.0f\" fill=\"white\"/>\n" width height)

let text b ?(anchor = "middle") ?(size = 12) ?(fill = "#333") ?(rotate = None) x
    y s =
  let transform =
    match rotate with
    | None -> ""
    | Some deg -> Printf.sprintf " transform=\"rotate(%d %s %s)\"" deg (f2 x) (f2 y)
  in
  Buffer.add_string b
    (Printf.sprintf
       "<text x=\"%s\" y=\"%s\" text-anchor=\"%s\" font-size=\"%d\" \
        fill=\"%s\"%s>%s</text>\n"
       (f2 x) (f2 y) anchor size fill transform (xml_escape s))

(* Nice tick label: integers as integers, otherwise 3 significant digits. *)
let tick_label v =
  if Float.is_integer v && Float.abs v < 1e7 then
    Printf.sprintf "%d" (int_of_float v)
  else Printf.sprintf "%.3g" v

(* Log-x / log-y or linear-y line chart with a legend column on the right.
   Determinism note: tick positions are derived from the data bounds with
   pure float arithmetic — same data, same bytes. *)
let line_chart ~title ~xlabel ~ylabel ~logy series =
  let b = Buffer.create 8192 in
  svg_open b;
  let all = List.concat_map (fun s -> s.s_pts) series in
  let xs = List.map fst all and ys = List.map snd all in
  let fmin = List.fold_left Float.min infinity
  and fmax = List.fold_left Float.max neg_infinity in
  let xmin = fmin xs and xmax = fmax xs in
  let ymin0 = fmin ys and ymax0 = fmax ys in
  let ymin = if logy then Float.max ymin0 1.0 else Float.min ymin0 0.0 in
  let ymax = Float.max ymax0 (ymin +. 1.0) in
  let lx v = log10 v in
  let ly v = if logy then log10 (Float.max v 1e-9) else v in
  let x0 = ml and x1 = width -. mr in
  let y0 = height -. mb and y1 = mt in
  let sx v = x0 +. ((lx v -. lx xmin) /. (lx xmax -. lx xmin) *. (x1 -. x0)) in
  let sy v =
    y0 +. ((ly v -. ly ymin) /. (ly ymax -. ly ymin) *. (y1 -. y0))
  in
  (* frame *)
  Buffer.add_string b
    (Printf.sprintf
       "<rect x=\"%s\" y=\"%s\" width=\"%s\" height=\"%s\" fill=\"none\" \
        stroke=\"#999\"/>\n"
       (f2 x0) (f2 y1) (f2 (x1 -. x0)) (f2 (y0 -. y1)));
  text b ~size:14 ((x0 +. x1) /. 2.0) (mt -. 18.0) title;
  text b ((x0 +. x1) /. 2.0) (height -. 14.0) xlabel;
  text b ~rotate:(Some (-90)) 22.0 ((y0 +. y1) /. 2.0) ylabel;
  (* x ticks: the decades spanned, plus the exact endpoints *)
  let x_ticks =
    let d0 = int_of_float (Float.ceil (lx xmin))
    and d1 = int_of_float (Float.floor (lx xmax)) in
    let decades = List.init (max 0 (d1 - d0 + 1)) (fun i -> 10.0 ** float_of_int (d0 + i)) in
    List.sort_uniq compare (xmin :: xmax :: decades)
  in
  List.iter
    (fun v ->
      let x = sx v in
      Buffer.add_string b
        (Printf.sprintf
           "<line x1=\"%s\" y1=\"%s\" x2=\"%s\" y2=\"%s\" stroke=\"#ddd\"/>\n"
           (f2 x) (f2 y1) (f2 x) (f2 y0));
      text b x (y0 +. 18.0) (tick_label v))
    x_ticks;
  (* y ticks *)
  let y_ticks =
    if logy then begin
      let d0 = int_of_float (Float.ceil (ly ymin))
      and d1 = int_of_float (Float.floor (ly ymax)) in
      List.init (max 0 (d1 - d0 + 1)) (fun i -> 10.0 ** float_of_int (d0 + i))
    end
    else
      let span = ymax -. ymin in
      List.init 5 (fun i -> ymin +. (span *. float_of_int i /. 4.0))
  in
  List.iter
    (fun v ->
      let y = sy v in
      Buffer.add_string b
        (Printf.sprintf
           "<line x1=\"%s\" y1=\"%s\" x2=\"%s\" y2=\"%s\" stroke=\"#ddd\"/>\n"
           (f2 x0) (f2 y) (f2 x1) (f2 y));
      text b ~anchor:"end" (x0 -. 6.0) (y +. 4.0) (tick_label v))
    y_ticks;
  (* series *)
  List.iter
    (fun s ->
      let pts = List.sort (fun (a, _) (c, _) -> compare a c) s.s_pts in
      let path =
        String.concat " "
          (List.mapi
             (fun i (x, y) ->
               Printf.sprintf "%s%s,%s" (if i = 0 then "M" else "L") (f2 (sx x))
                 (f2 (sy y)))
             pts)
      in
      let dash = if s.s_dash then " stroke-dasharray=\"6,3\"" else "" in
      Buffer.add_string b
        (Printf.sprintf
           "<path d=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"1.5\"%s/>\n"
           path s.s_color dash);
      if not s.s_dash then
        List.iter
          (fun (x, y) ->
            Buffer.add_string b
              (Printf.sprintf
                 "<circle cx=\"%s\" cy=\"%s\" r=\"3\" fill=\"%s\"/>\n"
                 (f2 (sx x)) (f2 (sy y)) s.s_color))
          pts)
    series;
  (* legend *)
  List.iteri
    (fun i s ->
      let y = mt +. 10.0 +. (float_of_int i *. 18.0) in
      let dash = if s.s_dash then " stroke-dasharray=\"6,3\"" else "" in
      Buffer.add_string b
        (Printf.sprintf
           "<line x1=\"%s\" y1=\"%s\" x2=\"%s\" y2=\"%s\" stroke=\"%s\" \
            stroke-width=\"1.5\"%s/>\n"
           (f2 (x1 +. 12.0)) (f2 y)
           (f2 (x1 +. 34.0))
           (f2 y) s.s_color dash);
      text b ~anchor:"start" ~size:11 (x1 +. 40.0) (y +. 4.0) s.s_name)
    series;
  Buffer.add_string b "</svg>\n";
  Buffer.contents b

(* ---- the words-vs-n frontier --------------------------------------------- *)

let rows_of rows ~protocol ~f_spec =
  List.filter
    (fun (r : Sweep.row) ->
      String.equal r.Sweep.point.Sweep.protocol protocol
      && String.equal r.Sweep.point.Sweep.f_spec f_spec)
    rows
  |> List.sort (fun (a : Sweep.row) b ->
         compare a.Sweep.point.Sweep.n b.Sweep.point.Sweep.n)

let frontier_svg rows =
  let measured =
    List.filter_map
      (fun (i, protocol, f_spec, name) ->
        match rows_of rows ~protocol ~f_spec with
        | [] -> None
        | rs ->
          Some
            {
              s_name = name;
              s_color = color i;
              s_dash = false;
              s_pts =
                List.map
                  (fun (r : Sweep.row) ->
                    ( float_of_int r.Sweep.point.Sweep.n,
                      float_of_int r.Sweep.words ))
                  rs;
            })
      [
        (0, "bb", "0", "bb f=0");
        (1, "weak-ba", "0", "weak-ba f=0");
        (2, "strong-ba", "0", "strong-ba f=0");
        (3, "fallback", "0", "fallback f=0");
        (4, "weak-ba", "t", "weak-ba f=t");
      ]
  in
  (* Reference shapes, anchored at the smallest-n weak-ba f=t measurement
     (the paper's adaptive worst case): each curve is scaled so it passes
     through that point, leaving only the growth rate to compare. *)
  let references =
    match rows_of rows ~protocol:"weak-ba" ~f_spec:"t" with
    | [] -> []
    | anchor_row :: _ as rs ->
      let n0 = float_of_int anchor_row.Sweep.point.Sweep.n in
      let w0 = float_of_int anchor_row.Sweep.words in
      let ns = List.map (fun (r : Sweep.row) -> float_of_int r.Sweep.point.Sweep.n) rs in
      let t_of n = Float.of_int ((int_of_float n - 1) / 2) in
      let shapes =
        [
          ("n(f+1), f=t (this paper)", fun n -> n *. (t_of n +. 1.0));
          ("n + t·f, f=t (Civit et al.)", fun n -> n +. (t_of n *. t_of n));
          ("n·√n·log²n (King–Saia)", fun n ->
            let l = log n /. log 2.0 in
            n *. sqrt n *. l *. l);
        ]
      in
      List.map
        (fun (name, shape) ->
          let scale = w0 /. shape n0 in
          {
            s_name = name;
            s_color = "#888888";
            s_dash = true;
            s_pts = List.map (fun n -> (n, scale *. shape n)) ns;
          })
        shapes
  in
  line_chart ~title:"Total words vs n (log-log)" ~xlabel:"n (processes)"
    ~ylabel:"words" ~logy:true (measured @ references)

(* ---- the scheduler wall-clock ratio -------------------------------------- *)

(* Match the two baselines point by point. Rows whose counterpart is
   missing are dropped (the ratio grid caps fallback identically under
   both schedulers precisely so this set is empty in practice). *)
let ratio_pairs ~(legacy : Sweep.row list) ~(event : Sweep.row list) =
  List.filter_map
    (fun (l : Sweep.row) ->
      List.find_opt
        (fun (e : Sweep.row) -> l.Sweep.point = e.Sweep.point)
        event
      |> Option.map (fun e -> (l, e)))
    legacy

let ratio_csv ~legacy ~event =
  let b = Buffer.create 1024 in
  Buffer.add_string b "protocol,n,f_spec,legacy_wall_s,event_wall_s,speedup\n";
  List.iter
    (fun ((l : Sweep.row), (e : Sweep.row)) ->
      let speedup =
        if e.Sweep.wall_s > 0.0 then l.Sweep.wall_s /. e.Sweep.wall_s else 0.0
      in
      Buffer.add_string b
        (Printf.sprintf "%s,%d,%s,%.6f,%.6f,%.3f\n" l.Sweep.point.Sweep.protocol
           l.Sweep.point.Sweep.n l.Sweep.point.Sweep.f_spec l.Sweep.wall_s
           e.Sweep.wall_s speedup))
    (ratio_pairs ~legacy ~event);
  Buffer.contents b

let ratio_svg ~legacy ~event =
  let pairs = ratio_pairs ~legacy ~event in
  let protocols =
    List.sort_uniq compare
      (List.map (fun ((l : Sweep.row), _) -> l.Sweep.point.Sweep.protocol) pairs)
  in
  let series =
    List.mapi
      (fun i protocol ->
        {
          s_name = protocol;
          s_color = color i;
          s_dash = false;
          s_pts =
            List.filter_map
              (fun ((l : Sweep.row), (e : Sweep.row)) ->
                if
                  String.equal l.Sweep.point.Sweep.protocol protocol
                  && e.Sweep.wall_s > 0.0
                then
                  Some
                    ( float_of_int l.Sweep.point.Sweep.n,
                      l.Sweep.wall_s /. e.Sweep.wall_s )
                else None)
              pairs;
        })
      protocols
  in
  let baseline =
    {
      s_name = "parity (1.0)";
      s_color = "#888888";
      s_dash = true;
      s_pts =
        (match pairs with
        | [] -> []
        | _ ->
          let ns =
            List.map
              (fun ((l : Sweep.row), _) -> float_of_int l.Sweep.point.Sweep.n)
              pairs
          in
          let mn = List.fold_left Float.min infinity ns
          and mx = List.fold_left Float.max neg_infinity ns in
          [ (mn, 1.0); (mx, 1.0) ]);
    }
  in
  line_chart ~title:"Event-driven speedup over legacy (wall clock)"
    ~xlabel:"n (processes)" ~ylabel:"legacy / event-driven" ~logy:false
    (series @ [ baseline ])

(* ---- throughput: the service grid ---------------------------------------- *)

let throughput_csv (e : Loader.throughput_entry) =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "n,workload,depth,decisions_per_1k_slots,words_per_decision,batch_fill,\
     p50_latency,p99_latency\n";
  List.iter
    (fun (c : Loader.thr_cell) ->
      let r = c.Loader.report in
      Buffer.add_string b
        (Printf.sprintf "%d,%s,%s,%.2f,%.2f,%.3f,%d,%d\n" c.Loader.cell_n
           c.Loader.workload c.Loader.depth r.Loader.decisions_per_1k_slots
           r.Loader.words_per_decision r.Loader.batch_fill r.Loader.p50_latency
           r.Loader.p99_latency))
    e.Loader.cells;
  Buffer.contents b

(* Grouped bars: one group per (n, workload) cell column, one bar per
   pipeline depth; top panel decisions/1k-slots, bottom panel p50+p99
   commit latency. *)
let throughput_svg (e : Loader.throughput_entry) =
  let cells = e.Loader.cells in
  let groups =
    List.sort_uniq compare
      (List.map (fun (c : Loader.thr_cell) -> (c.Loader.cell_n, c.Loader.workload)) cells)
  in
  let depths =
    List.sort_uniq compare (List.map (fun (c : Loader.thr_cell) -> c.Loader.depth) cells)
  in
  let cell n workload depth =
    List.find_opt
      (fun (c : Loader.thr_cell) ->
        c.Loader.cell_n = n
        && String.equal c.Loader.workload workload
        && String.equal c.Loader.depth depth)
      cells
  in
  let b = Buffer.create 8192 in
  svg_open b;
  let panel ~y_top ~y_bot ~title ~value =
    let vmax =
      List.fold_left
        (fun acc (c : Loader.thr_cell) -> Float.max acc (value c))
        1.0 cells
    in
    let x0 = ml and x1 = width -. mr in
    let sy v = y_bot -. (v /. vmax *. (y_bot -. y_top)) in
    Buffer.add_string b
      (Printf.sprintf
         "<rect x=\"%s\" y=\"%s\" width=\"%s\" height=\"%s\" fill=\"none\" \
          stroke=\"#999\"/>\n"
         (f2 x0) (f2 y_top) (f2 (x1 -. x0)) (f2 (y_bot -. y_top)));
    text b ~size:13 ((x0 +. x1) /. 2.0) (y_top -. 6.0) title;
    List.iter
      (fun frac ->
        let v = vmax *. frac in
        let y = sy v in
        Buffer.add_string b
          (Printf.sprintf
             "<line x1=\"%s\" y1=\"%s\" x2=\"%s\" y2=\"%s\" stroke=\"#ddd\"/>\n"
             (f2 x0) (f2 y) (f2 x1) (f2 y));
        text b ~anchor:"end" (x0 -. 6.0) (y +. 4.0) (Printf.sprintf "%.3g" v))
      [ 0.25; 0.5; 0.75; 1.0 ];
    let ngroups = List.length groups in
    let gw = (x1 -. x0) /. float_of_int (max 1 ngroups) in
    let bw = gw *. 0.8 /. float_of_int (max 1 (List.length depths)) in
    List.iteri
      (fun gi (n, workload) ->
        let gx = x0 +. (float_of_int gi *. gw) in
        List.iteri
          (fun di depth ->
            match cell n workload depth with
            | None -> ()
            | Some c ->
              let v = value c in
              let y = sy v in
              Buffer.add_string b
                (Printf.sprintf
                   "<rect x=\"%s\" y=\"%s\" width=\"%s\" height=\"%s\" \
                    fill=\"%s\"/>\n"
                   (f2 (gx +. (gw *. 0.1) +. (float_of_int di *. bw)))
                   (f2 y) (f2 (bw *. 0.9)) (f2 (y_bot -. y)) (color di)))
          depths;
        text b ~size:10
          (gx +. (gw /. 2.0))
          (y_bot +. 14.0)
          (Printf.sprintf "n=%d %s" n workload))
      groups
  in
  panel ~y_top:50.0 ~y_bot:200.0 ~title:"Decided batches per 1000 slots"
    ~value:(fun c -> c.Loader.report.Loader.decisions_per_1k_slots);
  panel ~y_top:250.0 ~y_bot:400.0 ~title:"p99 commit latency (slots)"
    ~value:(fun c -> float_of_int c.Loader.report.Loader.p99_latency);
  (* legend: depths *)
  List.iteri
    (fun i depth ->
      let y = 60.0 +. (float_of_int i *. 18.0) in
      Buffer.add_string b
        (Printf.sprintf
           "<rect x=\"%s\" y=\"%s\" width=\"14\" height=\"10\" fill=\"%s\"/>\n"
           (f2 (width -. mr +. 12.0))
           (f2 (y -. 9.0))
           (color i));
      text b ~anchor:"start" ~size:11 (width -. mr +. 32.0) y ("depth " ^ depth))
    depths;
  Buffer.add_string b "</svg>\n";
  Buffer.contents b

(* ---- chaos degradation heatmap ------------------------------------------- *)

let verdict_color = function
  | "safe-live" -> "#2ca02c"
  | "safe-stalled" -> "#ffbf00"
  | "unsafe" -> "#d62728"
  | _ -> "#888888"

let degrade_svg (d : Loader.degrade) =
  let rows =
    List.sort_uniq compare
      (List.map
         (fun (c : Loader.degrade_cell) -> (c.Loader.dg_protocol, c.Loader.fault))
         d.Loader.dg_cells)
  in
  let levels = List.init d.Loader.levels (fun i -> i) in
  let cell_of (protocol, fault) level =
    List.find_opt
      (fun (c : Loader.degrade_cell) ->
        String.equal c.Loader.dg_protocol protocol
        && String.equal c.Loader.fault fault
        && c.Loader.level = level)
      d.Loader.dg_cells
  in
  let row_h = 18.0 and cell_w = 54.0 in
  let x0 = 230.0 and y0 = 64.0 in
  let w = x0 +. (float_of_int d.Loader.levels *. cell_w) +. 170.0 in
  let h = y0 +. (float_of_int (List.length rows) *. row_h) +. 30.0 in
  let b = Buffer.create 8192 in
  Buffer.add_string b
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" \
        height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\" font-family=\"sans-serif\" \
        font-size=\"12\">\n"
       w h w h);
  Buffer.add_string b
    (Printf.sprintf "<rect width=\"%.0f\" height=\"%.0f\" fill=\"white\"/>\n" w h);
  text b ~size:14 (w /. 2.0) 24.0
    (Printf.sprintf "Chaos degradation matrix (n=%d, t=%d)" d.Loader.dg_n
       d.Loader.dg_t);
  List.iter
    (fun level ->
      text b
        (x0 +. ((float_of_int level +. 0.5) *. cell_w))
        (y0 -. 8.0)
        (Printf.sprintf "L%d" level))
    levels;
  List.iteri
    (fun ri (protocol, fault) ->
      let y = y0 +. (float_of_int ri *. row_h) in
      text b ~anchor:"end" ~size:11 (x0 -. 8.0) (y +. 13.0)
        (Printf.sprintf "%s / %s" protocol fault);
      List.iter
        (fun level ->
          match cell_of (protocol, fault) level with
          | None ->
            Buffer.add_string b
              (Printf.sprintf
                 "<rect x=\"%s\" y=\"%s\" width=\"%s\" height=\"%s\" \
                  fill=\"#f2f2f2\" stroke=\"white\"/>\n"
                 (f2 (x0 +. (float_of_int level *. cell_w)))
                 (f2 y) (f2 cell_w) (f2 row_h))
          | Some c ->
            Buffer.add_string b
              (Printf.sprintf
                 "<rect x=\"%s\" y=\"%s\" width=\"%s\" height=\"%s\" \
                  fill=\"%s\" stroke=\"white\"><title>%s</title></rect>\n"
                 (f2 (x0 +. (float_of_int level *. cell_w)))
                 (f2 y) (f2 cell_w) (f2 row_h)
                 (verdict_color c.Loader.verdict)
                 (xml_escape
                    (Printf.sprintf "%s/%s L%d: %s (f=%d, undecided=%d, words=%d)"
                       protocol fault level c.Loader.verdict c.Loader.dg_f
                       c.Loader.dg_undecided c.Loader.dg_words))))
        levels)
    rows;
  (* verdict legend *)
  List.iteri
    (fun i verdict ->
      let y = y0 +. (float_of_int i *. 20.0) in
      let x = x0 +. (float_of_int d.Loader.levels *. cell_w) +. 16.0 in
      Buffer.add_string b
        (Printf.sprintf
           "<rect x=\"%s\" y=\"%s\" width=\"14\" height=\"12\" fill=\"%s\"/>\n"
           (f2 x) (f2 y) (verdict_color verdict));
      text b ~anchor:"start" ~size:11 (x +. 20.0) (y +. 10.0) verdict)
    [ "safe-live"; "safe-stalled"; "unsafe" ];
  Buffer.add_string b "</svg>\n";
  Buffer.contents b
