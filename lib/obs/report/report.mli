(** Report assembly: the fixed set of generated files and the
    write/check split behind [mewc report].

    {!generate} is a pure function of the parsed artifacts — no clocks, no
    environment, no randomness — which is what makes check mode sound:
    regenerate in memory, byte-compare against the committed directory. *)

val generate : Loader.artifacts -> (string * string) list
(** [(filename, contents)] pairs: [frontier.csv]/[.svg] from the widest
    committed ledger grid (frontier, else standard, else smoke),
    [ratio.csv]/[.svg] when both schedulers have a [grid="ratio"] baseline,
    [throughput.csv]/[.svg] from the latest throughput entry,
    [degrade.svg], and [REPORT.md] tying them together with provenance
    (revs and dates from the artifacts themselves). Files whose inputs are
    absent are omitted — {!Consistency.run} is what flags the absence. *)

val write : dir:string -> (string * string) list -> unit
(** Write the files into [dir], creating it if needed. *)

val check : dir:string -> (string * string) list -> string list
(** Drift messages: one per generated file that is missing from [dir] or
    whose committed bytes differ from regeneration. [[]] means the
    committed report is exactly what the artifacts produce. Extra files in
    [dir] are ignored. *)
