(** Cross-artifact consistency: the invariants that make the committed
    benchmark artifacts trustworthy as a set, re-checked from the parsed
    files alone on every [mewc report --check].

    Per artifact:
    - perf — both identity bits (parallel and sharded runs byte-identical
      to sequential) are true, rows well-shaped and unique;
    - ledger — provenance present, rows well-shaped per entry, the latest
      smoke-grid entry {e replays identically} at the current build (on
      {!Mewc_core.Sweep.row_core_line}: every protocol-observable field;
      the crypto-cache split is a build artifact and excluded), and a
      [grid="ratio"] baseline exists for both schedulers;
    - throughput — stored derived metrics (decisions/1k-slots, words per
      decision) match recomputation from the raw counts, and every SLO
      fault profile retains exactly 1.0 at its level-0 control;
    - degrade — verdicts come from the known enum, levels stay on the
      grid, level-0 controls of on-grid protocols are safe-live, and the
      planted [weak-ba-ablated] cell (if present) is unsafe;
    - observability — each run's headline words/messages equal the
      meter's correct-class totals and the per-slot series sums to the
      correct + byzantine grand totals. *)

type finding = { check : string; detail : string }

val run : Loader.artifacts -> finding list
(** All violated invariants, in artifact order; [[]] means consistent.
    Runs the smoke-grid replay, so it costs a fraction of a second of
    simulation, not just parsing. *)

val render : finding list -> string
(** One ["[check] detail\n"] line per finding. *)
