(* Cross-artifact invariants: what must hold across the five committed
   artifacts for the repository's headline claims to be trustworthy. Each
   violated invariant is one finding; [mewc report --check] turns a
   non-empty list into exit 3 — the repo-wide "finding" code. *)

module Sweep = Mewc_core.Sweep
module Ledger = Mewc_core.Ledger

type finding = { check : string; detail : string }

let findingf check fmt = Printf.ksprintf (fun detail -> { check; detail }) fmt

(* ---- per-artifact invariants -------------------------------------------- *)

let rows_findings ~ctx rows =
  (* Structural sanity shared by perf rows and every ledger entry's rows:
     t = (n-1)/2 (every grid runs Config.optimal), positive word counts,
     and one row per (protocol, n, f_spec). *)
  let shape =
    List.concat_map
      (fun (r : Sweep.row) ->
        let p = r.Sweep.point in
        (if r.Sweep.t <> (p.Sweep.n - 1) / 2 then
           [
             findingf "row-shape" "%s: %s n=%d has t=%d, expected (n-1)/2=%d" ctx
               p.Sweep.protocol p.Sweep.n r.Sweep.t
               ((p.Sweep.n - 1) / 2);
           ]
         else [])
        @
        if r.Sweep.words <= 0 then
          [
            findingf "row-shape" "%s: %s n=%d f=%s has words=%d" ctx
              p.Sweep.protocol p.Sweep.n p.Sweep.f_spec r.Sweep.words;
          ]
        else [])
      rows
  in
  let dups =
    let seen = Hashtbl.create 64 in
    List.filter_map
      (fun (r : Sweep.row) ->
        let p = r.Sweep.point in
        let key = (p.Sweep.protocol, p.Sweep.n, p.Sweep.f_spec) in
        if Hashtbl.mem seen key then
          Some
            (findingf "row-unique" "%s: duplicate point %s n=%d f=%s" ctx
               p.Sweep.protocol p.Sweep.n p.Sweep.f_spec)
        else begin
          Hashtbl.add seen key ();
          None
        end)
      rows
  in
  shape @ dups

let perf_findings (p : Loader.perf) =
  let identity =
    (if p.Loader.parallel_identical then []
     else
       [
         findingf "perf-identity"
           "parallel rows were not byte-identical to sequential";
       ])
    @
    if p.Loader.shards_identical then []
    else
      [ findingf "perf-identity" "sharded rows were not identical to sequential" ]
  in
  identity @ rows_findings ~ctx:"perf" p.Loader.rows

let ledger_findings entries =
  List.concat
    (List.mapi
       (fun i (e : Ledger.entry) ->
         let ctx = Printf.sprintf "ledger entry %d (%s)" i e.Ledger.rev in
         (if String.length e.Ledger.rev = 0 then
            [ findingf "ledger-provenance" "%s: empty rev" ctx ]
          else [])
         @ (if String.length e.Ledger.date < 8 then
              [
                findingf "ledger-provenance" "%s: date %S is not a date" ctx
                  e.Ledger.date;
              ]
            else [])
         @ rows_findings ~ctx e.Ledger.rows)
       entries)

(* The determinism gate: the latest smoke-grid ledger entry must reproduce
   when its points are re-run at the current build. Comparison is on
   {!Sweep.row_core_line} — every protocol-observable field, but not the
   crypto-cache hit/miss split, which is an artifact of the build's caching
   strategy and legitimately moves across revisions. The smoke grid is
   seconds-scale, so the ledger's core promise — rows are replayable facts,
   not snapshots of a drifting binary — is re-proved on every [--check]. *)
let ledger_determinism entries =
  match
    List.rev entries
    |> List.find_opt (fun (e : Ledger.entry) -> String.equal e.Ledger.grid "smoke")
  with
  | None -> [ findingf "ledger-determinism" "no smoke-grid ledger entry to replay" ]
  | Some e ->
    let points = List.map (fun (r : Sweep.row) -> r.Sweep.point) e.Ledger.rows in
    let fresh = Sweep.run_all ~jobs:1 points in
    let want = List.map Sweep.row_core_line e.Ledger.rows in
    let got = List.map Sweep.row_core_line fresh in
    List.concat
      (List.map2
         (fun w g ->
           if String.equal w g then []
           else
             [
               findingf "ledger-determinism"
                 "smoke row drifted:\n  ledger: %s\n  rerun:  %s" w g;
             ])
         want got)

let ratio_findings entries =
  (* The ratio figure needs one baseline per scheduler; flag their absence
     so a missing curve is a finding, not a silently thinner report. *)
  let latest scheduler =
    List.rev entries
    |> List.find_opt (fun (e : Ledger.entry) ->
           String.equal e.Ledger.grid "ratio"
           && String.equal e.Ledger.scheduler scheduler)
  in
  List.filter_map
    (fun sched ->
      match latest sched with
      | Some _ -> None
      | None ->
        Some
          (findingf "ratio-baseline" "no grid=\"ratio\" ledger entry for %s"
             sched))
    [ "legacy"; "event-driven" ]

let throughput_findings entries =
  let close a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs b) in
  List.concat_map
    (fun (e : Loader.throughput_entry) ->
      let ctx = Printf.sprintf "throughput entry %s" e.Loader.thr_rev in
      List.concat_map
        (fun (c : Loader.thr_cell) ->
          let r = c.Loader.report in
          let cctx =
            Printf.sprintf "%s: n=%d %s/%s" ctx c.Loader.cell_n c.Loader.workload
              c.Loader.depth
          in
          let derived name stored expect =
            if close stored expect then []
            else
              [
                findingf "throughput-derived" "%s: %s=%.6f, recomputed %.6f" cctx
                  name stored expect;
              ]
          in
          derived "decisions_per_1k_slots" r.Loader.decisions_per_1k_slots
            (if r.Loader.slots = 0 then 0.0
             else
               1000.0
               *. float_of_int r.Loader.decided_batches
               /. float_of_int r.Loader.slots)
          @ derived "words_per_decision" r.Loader.words_per_decision
              (if r.Loader.decided_batches = 0 then 0.0
               else
                 float_of_int r.Loader.words
                 /. float_of_int r.Loader.decided_batches))
        e.Loader.cells
      @ List.filter_map
          (fun (p : Loader.slo_point) ->
            if p.Loader.level = 0 && p.Loader.retention <> 1.0 then
              Some
                (findingf "slo-control" "%s: %s level 0 retention %.3f, expected 1.0"
                   ctx p.Loader.fault_profile p.Loader.retention)
            else None)
          e.Loader.slo)
    entries

let degrade_findings (d : Loader.degrade) =
  let known = [ "safe-live"; "safe-stalled"; "unsafe" ] in
  let on_grid (c : Loader.degrade_cell) =
    List.mem c.Loader.dg_protocol d.Loader.dg_protocols
  in
  List.concat_map
    (fun (c : Loader.degrade_cell) ->
      let ctx =
        Printf.sprintf "degrade %s/%s/L%d" c.Loader.dg_protocol c.Loader.fault
          c.Loader.level
      in
      (if not (List.mem c.Loader.verdict known) then
         [ findingf "degrade-verdict" "%s: unknown verdict %S" ctx c.Loader.verdict ]
       else [])
      @ (if c.Loader.level < 0 || c.Loader.level >= d.Loader.levels then
           [ findingf "degrade-grid" "%s: level outside 0..%d" ctx (d.Loader.levels - 1) ]
         else [])
      @
      (* Level 0 of every on-grid profile is the reliable model: anything
         but safe-live there means the harness (or a protocol) broke with
         no faults injected at all. The planted off-grid cell is exempt —
         being unsafe is its whole job. *)
      if c.Loader.level = 0 && on_grid c && not (String.equal c.Loader.verdict "safe-live")
      then [ findingf "degrade-control" "%s: level-0 control is %s" ctx c.Loader.verdict ]
      else [])
    d.Loader.dg_cells
  @
  match
    List.find_opt
      (fun (c : Loader.degrade_cell) ->
        String.equal c.Loader.dg_protocol "weak-ba-ablated")
      d.Loader.dg_cells
  with
  | Some c when not (String.equal c.Loader.verdict "unsafe") ->
    [
      findingf "degrade-planted"
        "planted weak-ba-ablated cell is %s, expected unsafe" c.Loader.verdict;
    ]
  | _ -> []

let observability_findings runs =
  List.concat_map
    (fun (r : Loader.obs_run) ->
      let ctx =
        Printf.sprintf "observability %s n=%d f=%s" r.Loader.ob_protocol
          r.Loader.ob_n r.Loader.ob_f_spec
      in
      let sum f = List.fold_left (fun acc s -> acc + f s) 0 r.Loader.per_slot in
      let check name got want =
        if got = want then []
        else [ findingf "meter-sums" "%s: %s %d <> %d" ctx name got want ]
      in
      (* The run's headline words/messages are the meter's correct-class
         totals, and the per-slot series must partition the grand total. *)
      check "words vs correct_words" r.Loader.ob_words r.Loader.correct_words
      @ check "messages vs correct_messages" r.Loader.ob_messages
          r.Loader.correct_messages
      @ check "per-slot words sum"
          (sum (fun s -> s.Loader.slot_words))
          (r.Loader.correct_words + r.Loader.byz_words)
      @ check "per-slot messages sum"
          (sum (fun s -> s.Loader.slot_messages))
          (r.Loader.correct_messages + r.Loader.byz_messages)
      @ check "per-slot byz words sum"
          (sum (fun s -> s.Loader.slot_byz_words))
          r.Loader.byz_words)
    runs

let run (a : Loader.artifacts) =
  perf_findings a.Loader.perf
  @ ledger_findings a.Loader.ledger
  @ ledger_determinism a.Loader.ledger
  @ ratio_findings a.Loader.ledger
  @ throughput_findings a.Loader.throughput
  @ degrade_findings a.Loader.degrade
  @ observability_findings a.Loader.observability

let render findings =
  String.concat ""
    (List.map (fun f -> Printf.sprintf "[%s] %s\n" f.check f.detail) findings)
