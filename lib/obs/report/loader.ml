(* Typed, schema-gated views of the five committed benchmark artifacts.
   Everything [mewc report] draws is re-parsed through here — the figures
   can only show what the artifacts actually say, and a malformed or
   wrong-schema file is a load error, never a silently empty curve. *)

open Mewc_prelude
module Sweep = Mewc_core.Sweep
module Ledger = Mewc_core.Ledger

let ( let* ) = Result.bind

let read_json path =
  if not (Sys.file_exists path) then Error (path ^ ": no such file")
  else begin
    let contents = In_channel.with_open_bin path In_channel.input_all in
    Result.map_error (fun e -> path ^ ": " ^ e) (Jsonx.parse contents)
  end

(* Field accessors over one object, all failing with the object's role in
   the message so a bad artifact names its own broken member. *)
let field ~ctx j name get =
  match Option.bind (Jsonx.member name j) get with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: bad or missing %S" ctx name)

let get_float = function
  | Jsonx.Float f -> Some f
  | Jsonx.Int i -> Some (float_of_int i)
  | _ -> None

let map_all ~ctx f = function
  | None -> Error (ctx ^ ": not an array")
  | Some items ->
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* v = f item in
        Ok (v :: acc))
      (Ok []) items
    |> Result.map List.rev

(* ---- mewc-perf/2 -------------------------------------------------------- *)

type perf = {
  cores : int;
  jobs : int;
  parallelism : string;
  sequential_wall_s : float;
  parallel_wall_s : float;
  speedup : float;
  parallel_identical : bool;
  shards_identical : bool;
  scheduler : string;
  rows : Sweep.row list;
}

let load_perf path =
  let* j = read_json path in
  let* () =
    Result.map_error (fun e -> path ^ ": " ^ e) (Jsonx.Schema.check "mewc-perf/2" j)
  in
  let ctx = path in
  let* cores = field ~ctx j "cores" Jsonx.get_int in
  let* jobs = field ~ctx j "jobs" Jsonx.get_int in
  let* parallelism = field ~ctx j "parallelism" Jsonx.get_str in
  let* sequential_wall_s = field ~ctx j "sequential_wall_s" get_float in
  let* parallel_wall_s = field ~ctx j "parallel_wall_s" get_float in
  let* speedup = field ~ctx j "speedup" get_float in
  let* parallel_identical =
    field ~ctx j "parallel_identical_to_sequential" Jsonx.get_bool
  in
  let* shards_identical =
    field ~ctx j "shards_identical_to_sequential" Jsonx.get_bool
  in
  let* scheduler = field ~ctx j "scheduler" Jsonx.get_str in
  let* rows =
    map_all ~ctx:(path ^ ": rows")
      (fun r -> Result.map_error (fun e -> path ^ ": " ^ e) (Sweep.row_of_json r))
      (Option.bind (Jsonx.member "rows" j) Jsonx.get_list)
  in
  Ok
    {
      cores;
      jobs;
      parallelism;
      sequential_wall_s;
      parallel_wall_s;
      speedup;
      parallel_identical;
      shards_identical;
      scheduler;
      rows;
    }

(* ---- mewc-ledger/1 ------------------------------------------------------ *)

(* [Ledger.load] treats a missing file as an empty ledger; a report's
   artifact set is closed, so here it is an error. *)
let load_ledger path =
  if not (Sys.file_exists path) then Error (path ^ ": no such file")
  else Ledger.load path

(* ---- mewc-throughput/1 -------------------------------------------------- *)

type thr_report = {
  slots : int;
  words : int;
  requests : int;
  committed : int;
  decided_batches : int;
  batch_fill : float;
  words_per_decision : float;
  decisions_per_1k_slots : float;
  p50_latency : int;
  p99_latency : int;
}

type thr_cell = { cell_n : int; workload : string; depth : string; report : thr_report }

type slo_point = {
  fault_profile : string;
  level : int;
  slo_decisions_per_1k : float;
  slo_committed : int;
  slo_undecided : int;
  slo_p99 : int;
  retention : float;
}

type throughput_entry = {
  thr_rev : string;
  thr_date : string;
  cells : thr_cell list;
  slo : slo_point list;
}

let thr_report_of ~ctx j =
  let* slots = field ~ctx j "slots" Jsonx.get_int in
  let* words = field ~ctx j "words" Jsonx.get_int in
  let* requests = field ~ctx j "requests" Jsonx.get_int in
  let* committed = field ~ctx j "committed" Jsonx.get_int in
  let* decided_batches = field ~ctx j "decided_batches" Jsonx.get_int in
  let* batch_fill = field ~ctx j "batch_fill" get_float in
  let* words_per_decision = field ~ctx j "words_per_decision" get_float in
  let* decisions_per_1k_slots = field ~ctx j "decisions_per_1k_slots" get_float in
  let* p50_latency = field ~ctx j "p50_latency" Jsonx.get_int in
  let* p99_latency = field ~ctx j "p99_latency" Jsonx.get_int in
  Ok
    {
      slots;
      words;
      requests;
      committed;
      decided_batches;
      batch_fill;
      words_per_decision;
      decisions_per_1k_slots;
      p50_latency;
      p99_latency;
    }

let load_throughput path =
  let* j = read_json path in
  let* () =
    Result.map_error
      (fun e -> path ^ ": " ^ e)
      (Jsonx.Schema.check "mewc-throughput/1" j)
  in
  map_all ~ctx:(path ^ ": entries")
    (fun e ->
      let ctx = path in
      let* thr_rev = field ~ctx e "rev" Jsonx.get_str in
      let* thr_date = field ~ctx e "date" Jsonx.get_str in
      let* cells =
        map_all ~ctx:(path ^ ": cells")
          (fun c ->
            let* cell_n = field ~ctx c "n" Jsonx.get_int in
            let* workload = field ~ctx c "workload" Jsonx.get_str in
            let* depth = field ~ctx c "depth" Jsonx.get_str in
            let* report =
              match Jsonx.member "report" c with
              | Some r -> thr_report_of ~ctx:(ctx ^ ": report") r
              | None -> Error (ctx ^ ": bad or missing \"report\"")
            in
            Ok { cell_n; workload; depth; report })
          (Option.bind (Jsonx.member "cells" e) Jsonx.get_list)
      in
      let* slo =
        map_all ~ctx:(path ^ ": slo")
          (fun p ->
            let* fault_profile = field ~ctx p "fault_profile" Jsonx.get_str in
            let* level = field ~ctx p "level" Jsonx.get_int in
            let* slo_decisions_per_1k =
              field ~ctx p "decisions_per_1k_slots" get_float
            in
            let* slo_committed = field ~ctx p "committed" Jsonx.get_int in
            let* slo_undecided = field ~ctx p "undecided" Jsonx.get_int in
            let* slo_p99 = field ~ctx p "p99_latency" Jsonx.get_int in
            let* retention = field ~ctx p "retention" get_float in
            Ok
              {
                fault_profile;
                level;
                slo_decisions_per_1k;
                slo_committed;
                slo_undecided;
                slo_p99;
                retention;
              })
          (Option.bind (Jsonx.member "slo" e) Jsonx.get_list)
      in
      Ok { thr_rev; thr_date; cells; slo })
    (Option.bind (Jsonx.member "entries" j) Jsonx.get_list)

(* ---- mewc-degrade/1 ----------------------------------------------------- *)

type degrade_cell = {
  dg_protocol : string;
  fault : string;
  level : int;
  verdict : string;
  dg_f : int;
  dg_faulty : int;
  dg_undecided : int;
  dg_words : int;
  dg_slots : int;
}

type degrade = {
  dg_n : int;
  dg_t : int;
  dg_protocols : string list;
  faults : string list;
  levels : int;
  dg_cells : degrade_cell list;
}

let load_degrade path =
  let* j = read_json path in
  let* () =
    Result.map_error
      (fun e -> path ^ ": " ^ e)
      (Jsonx.Schema.check "mewc-degrade/1" j)
  in
  let ctx = path in
  let* dg_n = field ~ctx j "n" Jsonx.get_int in
  let* dg_t = field ~ctx j "t" Jsonx.get_int in
  let strings name =
    map_all ~ctx:(path ^ ": " ^ name)
      (fun s ->
        match Jsonx.get_str s with
        | Some s -> Ok s
        | None -> Error (path ^ ": non-string in " ^ name))
      (Option.bind (Jsonx.member name j) Jsonx.get_list)
  in
  let* dg_protocols = strings "protocols" in
  let* faults = strings "faults" in
  let* levels = field ~ctx j "levels" Jsonx.get_int in
  let* dg_cells =
    map_all ~ctx:(path ^ ": cells")
      (fun c ->
        let* dg_protocol = field ~ctx c "protocol" Jsonx.get_str in
        let* fault = field ~ctx c "fault" Jsonx.get_str in
        let* level = field ~ctx c "level" Jsonx.get_int in
        let* verdict = field ~ctx c "verdict" Jsonx.get_str in
        let* dg_f = field ~ctx c "f" Jsonx.get_int in
        let* dg_faulty = field ~ctx c "faulty" Jsonx.get_int in
        let* dg_undecided = field ~ctx c "undecided" Jsonx.get_int in
        let* dg_words = field ~ctx c "words" Jsonx.get_int in
        let* dg_slots = field ~ctx c "slots" Jsonx.get_int in
        Ok
          {
            dg_protocol;
            fault;
            level;
            verdict;
            dg_f;
            dg_faulty;
            dg_undecided;
            dg_words;
            dg_slots;
          })
      (Option.bind (Jsonx.member "cells" j) Jsonx.get_list)
  in
  Ok { dg_n; dg_t; dg_protocols; faults; levels; dg_cells }

(* ---- mewc-observability/1 ----------------------------------------------- *)

type slot_sample = {
  slot : int;
  slot_words : int;
  slot_messages : int;
  slot_byz_words : int;
  slot_byz_messages : int;
}

type obs_run = {
  ob_protocol : string;
  ob_n : int;
  ob_t : int;
  ob_f_spec : string;
  ob_f : int;
  ob_words : int;
  ob_messages : int;
  ob_latency : int;
  ob_slots : int;
  correct_words : int;
  correct_messages : int;
  byz_words : int;
  byz_messages : int;
  per_slot : slot_sample list;
}

let load_observability path =
  let* j = read_json path in
  let* () =
    Result.map_error
      (fun e -> path ^ ": " ^ e)
      (Jsonx.Schema.check "mewc-observability/1" j)
  in
  map_all ~ctx:(path ^ ": runs")
    (fun r ->
      let ctx = path in
      let* ob_protocol = field ~ctx r "protocol" Jsonx.get_str in
      let* ob_n = field ~ctx r "n" Jsonx.get_int in
      let* ob_t = field ~ctx r "t" Jsonx.get_int in
      let* ob_f_spec = field ~ctx r "f_spec" Jsonx.get_str in
      let* ob_f = field ~ctx r "f" Jsonx.get_int in
      let* ob_words = field ~ctx r "words" Jsonx.get_int in
      let* ob_messages = field ~ctx r "messages" Jsonx.get_int in
      let* ob_latency = field ~ctx r "latency" Jsonx.get_int in
      let* ob_slots = field ~ctx r "slots" Jsonx.get_int in
      let* meter =
        match Jsonx.member "meter" r with
        | Some m -> Ok m
        | None -> Error (ctx ^ ": bad or missing \"meter\"")
      in
      let* () =
        Result.map_error
          (fun e -> path ^ ": " ^ e)
          (Jsonx.Schema.check "mewc-meter/1" meter)
      in
      let* correct_words = field ~ctx meter "correct_words" Jsonx.get_int in
      let* correct_messages = field ~ctx meter "correct_messages" Jsonx.get_int in
      let* byz_words = field ~ctx meter "byz_words" Jsonx.get_int in
      let* byz_messages = field ~ctx meter "byz_messages" Jsonx.get_int in
      let* per_slot =
        map_all ~ctx:(path ^ ": per_slot")
          (fun s ->
            let* slot = field ~ctx s "slot" Jsonx.get_int in
            let* slot_words = field ~ctx s "words" Jsonx.get_int in
            let* slot_messages = field ~ctx s "messages" Jsonx.get_int in
            let* slot_byz_words = field ~ctx s "byz_words" Jsonx.get_int in
            let* slot_byz_messages = field ~ctx s "byz_messages" Jsonx.get_int in
            Ok { slot; slot_words; slot_messages; slot_byz_words; slot_byz_messages })
          (Option.bind (Jsonx.member "per_slot" meter) Jsonx.get_list)
      in
      Ok
        {
          ob_protocol;
          ob_n;
          ob_t;
          ob_f_spec;
          ob_f;
          ob_words;
          ob_messages;
          ob_latency;
          ob_slots;
          correct_words;
          correct_messages;
          byz_words;
          byz_messages;
          per_slot;
        })
    (Option.bind (Jsonx.member "runs" j) Jsonx.get_list)

(* ---- the closed artifact set -------------------------------------------- *)

type artifacts = {
  perf : perf;
  ledger : Ledger.entry list;
  throughput : throughput_entry list;
  degrade : degrade;
  observability : obs_run list;
}

let perf_file = "BENCH_perf.json"
let ledger_file = "BENCH_ledger.json"
let throughput_file = "BENCH_throughput.json"
let degrade_file = "BENCH_degrade.json"
let observability_file = "BENCH_observability.json"

let load_all ~dir =
  let p f = Filename.concat dir f in
  let* perf = load_perf (p perf_file) in
  let* ledger = load_ledger (p ledger_file) in
  let* throughput = load_throughput (p throughput_file) in
  let* degrade = load_degrade (p degrade_file) in
  let* observability = load_observability (p observability_file) in
  Ok { perf; ledger; throughput; degrade; observability }
