(** Typed, schema-gated loaders for the five committed benchmark artifacts.

    [mewc report] never reads in-memory structures from the code that wrote
    the artifacts: everything is re-parsed from disk through these loaders,
    so the report can only show what the files actually say, and a
    malformed, missing, or wrong-schema artifact is a load [Error] rather
    than a silently empty figure. *)

type perf = {
  cores : int;
  jobs : int;
  parallelism : string;
  sequential_wall_s : float;
  parallel_wall_s : float;
  speedup : float;
  parallel_identical : bool;
  shards_identical : bool;
  scheduler : string;
  rows : Mewc_core.Sweep.row list;
}

val load_perf : string -> (perf, string) result
(** A [mewc-perf/2] document (rows via {!Mewc_core.Sweep.row_of_json}). *)

val load_ledger : string -> (Mewc_core.Ledger.entry list, string) result
(** A [mewc-ledger/1] file. Unlike {!Mewc_core.Ledger.load}, a missing file
    is an error here — the report's artifact set is closed. *)

type thr_report = {
  slots : int;
  words : int;
  requests : int;
  committed : int;
  decided_batches : int;
  batch_fill : float;
  words_per_decision : float;
  decisions_per_1k_slots : float;
  p50_latency : int;
  p99_latency : int;
}

type thr_cell = {
  cell_n : int;
  workload : string;
  depth : string;
  report : thr_report;
}

type slo_point = {
  fault_profile : string;
  level : int;
  slo_decisions_per_1k : float;
  slo_committed : int;
  slo_undecided : int;
  slo_p99 : int;
  retention : float;
}

type throughput_entry = {
  thr_rev : string;
  thr_date : string;
  cells : thr_cell list;
  slo : slo_point list;
}

val load_throughput : string -> (throughput_entry list, string) result
(** A [mewc-throughput/1] file. *)

type degrade_cell = {
  dg_protocol : string;
  fault : string;
  level : int;
  verdict : string;  (** "safe-live" | "safe-stalled" | "unsafe" *)
  dg_f : int;
  dg_faulty : int;
  dg_undecided : int;
  dg_words : int;
  dg_slots : int;
}

type degrade = {
  dg_n : int;
  dg_t : int;
  dg_protocols : string list;
  faults : string list;
  levels : int;
  dg_cells : degrade_cell list;
}

val load_degrade : string -> (degrade, string) result
(** A [mewc-degrade/1] matrix. *)

type slot_sample = {
  slot : int;
  slot_words : int;
  slot_messages : int;
  slot_byz_words : int;
  slot_byz_messages : int;
}

type obs_run = {
  ob_protocol : string;
  ob_n : int;
  ob_t : int;
  ob_f_spec : string;
  ob_f : int;
  ob_words : int;
  ob_messages : int;
  ob_latency : int;
  ob_slots : int;
  correct_words : int;
  correct_messages : int;
  byz_words : int;
  byz_messages : int;
  per_slot : slot_sample list;
}

val load_observability : string -> (obs_run list, string) result
(** A [mewc-observability/1] file (each run's meter gated on
    [mewc-meter/1]). *)

type artifacts = {
  perf : perf;
  ledger : Mewc_core.Ledger.entry list;
  throughput : throughput_entry list;
  degrade : degrade;
  observability : obs_run list;
}

val perf_file : string
val ledger_file : string
val throughput_file : string
val degrade_file : string
val observability_file : string
(** The conventional artifact filenames ([BENCH_*.json]). *)

val load_all : dir:string -> (artifacts, string) result
(** All five artifacts from [dir], failing on the first broken one. *)
