module Jsonx = Mewc_prelude.Jsonx
module Ascii_table = Mewc_prelude.Ascii_table

type category = Crypto | Engine | Machine | Adversary | Serialize

let categories = [ Crypto; Engine; Machine; Adversary; Serialize ]

let category_name = function
  | Crypto -> "crypto"
  | Engine -> "engine"
  | Machine -> "machine"
  | Adversary -> "adversary"
  | Serialize -> "serialize"

let category_of_name = function
  | "crypto" -> Some Crypto
  | "engine" -> Some Engine
  | "machine" -> Some Machine
  | "adversary" -> Some Adversary
  | "serialize" -> Some Serialize
  | _ -> None

type agg = {
  mutable count : int;
  mutable total_s : float;
  mutable self_s : float;
  mutable alloc_words : float;
}

type frame = {
  key : string * category;
  start : float;
  alloc0 : float;
  mutable child_s : float;
}

type t = {
  clock : unit -> float;
  created : float;
  table : (string * category, agg) Hashtbl.t;
  mutable order : (string * category) list;  (* first-seen, reversed *)
  mutable stack : frame list;
}

(* Words allocated so far, net of double counting: promoted words appear in
   both the minor and major totals. *)
let alloc_words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

let create ?clock () =
  let clock =
    match clock with Some c -> c | None -> Unix.gettimeofday
  in
  {
    clock;
    created = clock ();
    table = Hashtbl.create 32;
    order = [];
    stack = [];
  }

let elapsed t = t.clock () -. t.created

let agg_of t key =
  match Hashtbl.find_opt t.table key with
  | Some a -> a
  | None ->
    let a = { count = 0; total_s = 0.0; self_s = 0.0; alloc_words = 0.0 } in
    Hashtbl.add t.table key a;
    t.order <- key :: t.order;
    a

let span t ~category name f =
  let frame =
    { key = (name, category); start = t.clock (); alloc0 = alloc_words ();
      child_s = 0.0 }
  in
  t.stack <- frame :: t.stack;
  Fun.protect
    ~finally:(fun () ->
      let dt = t.clock () -. frame.start in
      let da = alloc_words () -. frame.alloc0 in
      (match t.stack with
      | top :: rest when top == frame -> t.stack <- rest
      | _ ->
        (* An escaped exception already unwound deeper frames; drop down to
           and including ours so accounting stays balanced. *)
        let rec pop = function
          | top :: rest -> if top == frame then rest else pop rest
          | [] -> []
        in
        t.stack <- pop t.stack);
      (match t.stack with
      | parent :: _ -> parent.child_s <- parent.child_s +. dt
      | [] -> ());
      let a = agg_of t frame.key in
      a.count <- a.count + 1;
      a.total_s <- a.total_s +. dt;
      a.self_s <- a.self_s +. (dt -. frame.child_s);
      a.alloc_words <- a.alloc_words +. da)
    f

type row = {
  name : string;
  category : category;
  count : int;
  total_s : float;
  self_s : float;
  alloc_words : float;
}

let rows t =
  List.rev t.order
  |> List.map (fun ((name, category) as key) ->
         let a = Hashtbl.find t.table key in
         {
           name;
           category;
           count = a.count;
           total_s = a.total_s;
           self_s = a.self_s;
           alloc_words = a.alloc_words;
         })

let rollup t =
  let sums = List.map (fun c -> (c, ref 0.0)) categories in
  List.iter
    (fun r ->
      let s = List.assoc r.category sums in
      s := !s +. r.self_s)
    (rows t);
  List.map (fun (c, s) -> (c, !s)) sums

let schema = "mewc-profile/1"

let to_json t =
  Jsonx.Schema.tag schema
    [
      ("elapsed_s", Jsonx.Float (elapsed t));
      ( "rollup",
        Jsonx.Obj
          (List.map
             (fun (c, s) -> (category_name c, Jsonx.Float s))
             (rollup t)) );
      ( "spans",
        Jsonx.Arr
          (List.map
             (fun r ->
               Jsonx.Obj
                 [
                   ("name", Jsonx.Str r.name);
                   ("category", Jsonx.Str (category_name r.category));
                   ("count", Jsonx.Int r.count);
                   ("total_s", Jsonx.Float r.total_s);
                   ("self_s", Jsonx.Float r.self_s);
                   ("alloc_words", Jsonx.Float r.alloc_words);
                 ])
             (rows t)) );
    ]

(* The flame summary: spans sorted by self time, each with a proportional
   bar — a flat flame graph, wide enough for a terminal. *)
let flame t =
  let rs = List.sort (fun a b -> compare b.self_s a.self_s) (rows t) in
  let total = List.fold_left (fun acc r -> acc +. r.self_s) 0.0 rs in
  (* Self-time spread across spans, nearest-rank over microseconds — the
     same quantile definition as everywhere else ({!Mewc_obs.Metrics}). *)
  let quantiles =
    let us = List.map (fun r -> int_of_float (r.self_s *. 1e6)) rs in
    let q p = Mewc_obs.Metrics.percentile_of_list p us in
    Printf.sprintf "span self time: p50 %dus, p90 %dus, p99 %dus" (q 50.0)
      (q 90.0) (q 99.0)
  in
  let table =
    Ascii_table.create
      ~title:
        (Printf.sprintf "profile: %.3fs elapsed, %.3fs in spans" (elapsed t)
           total)
      ~headers:[ "span"; "category"; "count"; "total s"; "self s"; "alloc Mw"; "flame" ]
  in
  List.iter
    (fun r ->
      let share = if total > 0.0 then r.self_s /. total else 0.0 in
      let bar = String.make (int_of_float (share *. 24.0)) '#' in
      Ascii_table.add_row table
        [
          r.name;
          category_name r.category;
          string_of_int r.count;
          Printf.sprintf "%.4f" r.total_s;
          Printf.sprintf "%.4f" r.self_s;
          Printf.sprintf "%.2f" (r.alloc_words /. 1e6);
          bar;
        ])
    rs;
  Ascii_table.render table ^ quantiles ^ "\n"
