(** Structured execution traces.

    When enabled, the engine records a typed event log of the whole run:
    slot boundaries, adaptive corruptions (with slot stamps and the running
    corruption count), every message send (with its word cost and whether
    the meter charged it), and per-process decisions. The same event stream
    drives the online {!Monitor} invariant checkers, so a trace is exactly
    what a monitor saw. Traces make failed property tests replayable
    narratives rather than bare seeds, and serialize to JSON/CSV for
    offline analysis ([mewc trace], [BENCH_observability.json]). *)

type 'm send = {
  id : int;  (** stable envelope id, assigned in send order by the engine *)
  envelope : 'm Envelope.t;
  byzantine_sender : bool;  (** sender was corrupted at send time *)
  words : int;  (** word cost per the protocol's wire format *)
  charged : bool;
      (** whether the meter accounted it (self-addressed sends are free) *)
  parents : int list;
      (** ids of the messages the sender read in the slot it sent from —
          the direct happens-before predecessors via message edges *)
}

type 'm event =
  | Slot_start of int  (** a δ-slot begins *)
  | Corruption of { slot : int; pid : Mewc_prelude.Pid.t; f : int }
      (** the adversary corrupted [pid]; [f] is the corruption count
          including this one *)
  | Send of 'm send
  | Decision of {
      slot : int;
      pid : Mewc_prelude.Pid.t;
      value : string;
      parents : int list;
          (** ids of the messages [pid] read in the deciding slot *)
    }
      (** [pid]'s decision became [value] (printed form) in [slot] *)
  | Link_fault of {
      slot : int;
      id : int;  (** the faulted send's envelope id *)
      src : Mewc_prelude.Pid.t;
      dst : Mewc_prelude.Pid.t;
      fault : Faults.link_fault;
    }
      (** the injected network fault that hit send [id] on [src -> dst] *)
  | Process_fault of {
      slot : int;
      pid : Mewc_prelude.Pid.t;
      event : Faults.process_event;
    }
      (** an injected process fault's state transition at [slot] *)
  | Frame_fault of {
      slot : int;
      src : Mewc_prelude.Pid.t;
      dst : Mewc_prelude.Pid.t;
      seq : int;  (** the frame's index within its sender's slot *)
      fault : Faults.byte_fault;
    }
      (** the async wire runtime's byte-fault stage corrupted the encoded
          frame [seq] of [src -> dst] sent at [slot] (below the codec) *)
  | Decode_reject of {
      slot : int;
      dst : Mewc_prelude.Pid.t;
      reason : string;  (** the codec's typed error, rendered *)
    }
      (** [dst] dropped a malformed frame at [slot] instead of crashing —
          the decode-reject policy firing *)

type 'm t

val create : enabled:bool -> 'm t
val enabled : 'm t -> bool

val record : 'm t -> 'm event -> unit
(** No-op when the trace is disabled. *)

val events : 'm t -> 'm event list
(** In chronological order. Memoized: repeated calls between records cost
    O(1). *)

val length : 'm t -> int
(** O(1). *)

val sends : 'm t -> 'm send list
(** Just the message sends, in chronological order. *)

val equal : ('m -> 'm -> bool) -> 'm t -> 'm t -> bool
(** Event-by-event equality (ignores the [enabled] flag). *)

val pp_event :
  (Format.formatter -> 'm -> unit) -> Format.formatter -> 'm event -> unit
(** One event, no trailing newline — the building block of {!pp}, exposed
    for consumers that render event subsets (e.g. causal cones). *)

val pp :
  (Format.formatter -> 'm -> unit) -> Format.formatter -> 'm t -> unit

(** {2 Serialization}

    The JSON schema is ["mewc-trace/4"]: an object with a [schema] tag and
    an [events] array; message payloads are embedded via [encode], send and
    decision events carry [id]/[parents] provenance, injected faults appear
    as [link-fault] / [process-fault] events, and the async wire runtime's
    byte-level events as [frame-fault] / [decode-reject]. CSV has one event
    per line with columns
    [type,slot,src,dst,pid,id,words,byzantine,charged,parents,detail]
    (parents are [;]-separated ids). *)

val to_json : encode:('m -> string) -> 'm t -> Mewc_prelude.Jsonx.t

val of_json :
  decode:(string -> 'm) -> Mewc_prelude.Jsonx.t -> ('m t, string) result
(** Inverse of {!to_json} (the result is an enabled trace). Also accepts
    the previous ["mewc-trace/3"] schema — a strict subset (no wire
    events), so old recorded artifacts keep loading. *)

val to_csv : encode:('m -> string) -> 'm t -> string
