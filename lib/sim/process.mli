(** Protocol state machines.

    A process is a deterministic state machine driven by the synchronous
    engine: at every slot it receives the messages delivered at the start of
    that slot and emits the messages it sends during it. Time is measured in
    δ-slots — the known message-delay bound of the synchronous model
    (paper §2): a message sent in slot [s] is delivered at the start of slot
    [s + 1]. A paper "round" is a single slot; the fallback's δ' = 2δ rounds
    span two slots. *)

type ('s, 'm) t = {
  init : 's;
  step :
    slot:int -> inbox:'m Envelope.t list -> 's -> 's * ('m * Mewc_prelude.Pid.t) list;
      (** [step ~slot ~inbox state] returns the new state and the messages
          to send, as [(payload, destination)] pairs. The inbox holds
          everything delivered at the start of [slot] (i.e. sent during
          [slot - 1]), in arrival order. *)
  wake : (slot:int -> 's -> bool) option;
      (** The machine's timer: does it need to step at [slot] even with an
          empty inbox? The event-driven scheduler skips a process exactly
          when it has no deliveries and [wake] answers [false]; the contract
          is that such a step would be a no-op — [step ~slot ~inbox:[] s]
          sends nothing and leaves the state observationally unchanged (a
          skipped step must never alter any future send, decision, or state
          projection; internally inert bookkeeping such as materializing an
          empty scratch table is tolerated). Answering
          [true] too often is always safe (the process merely steps, as the
          legacy scheduler makes it do every slot); answering [false] when
          the step would have acted breaks scheduler equivalence. [None]
          means "always step" — the conservative default that makes any
          machine event-scheduler-correct. The legacy scheduler ignores this
          field entirely. *)
}

val broadcast : n:int -> 'm -> ('m * Mewc_prelude.Pid.t) list
(** [broadcast ~n msg] addresses [msg] to all [n] processes (including the
    sender itself; self-delivery is free of charge and arrives next slot
    like any other message). *)

val broadcast_others : n:int -> self:Mewc_prelude.Pid.t -> 'm -> ('m * Mewc_prelude.Pid.t) list
(** Same, excluding the sender. *)

val silent : 's -> ('s, 'm) t
(** A machine that never sends anything (used for crashed processes). Its
    [wake] is constantly [false]: the event-driven scheduler never steps
    it. *)
