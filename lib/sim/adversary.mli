(** The adaptive Byzantine adversary (paper §2).

    The adversary may corrupt up to [t] processes {e during} the run
    (adaptive corruption), sees the entire system state (a strict
    over-approximation of "rushing": it observes every message, every
    process's internal state, and the messages correct processes send in the
    current slot before choosing its own), and drives each corrupted process
    arbitrarily — except that it cannot forge signatures of processes it has
    not corrupted, which the crypto layer enforces by construction.

    Corruption is irrevocable and takes effect at the start of a slot,
    before correct processes step. A process corrupted in slot [s] no longer
    runs its protocol step in slot [s]; messages it sent earlier are already
    in flight and will be delivered (the adversary cannot unsend). *)

type ('s, 'm) view = {
  slot : int;
  cfg : Config.t;
  states : 's array Lazy.t;
      (** protocol states; for corrupted processes, the state frozen at
          corruption time *)
  corrupted : bool array Lazy.t;
  inboxes : 'm Envelope.t list array Lazy.t;
      (** what each process received this slot *)
  correct_outgoing : 'm Envelope.t list;
      (** messages correct processes send in this slot — empty during the
          corruption decision, populated for Byzantine steps (rushing) *)
}
(** The engine hands out defensive copies of its arrays so an adversary can
    never mutate the run from under it — but the copies are {e lazy}: an
    adversary that never looks (honest, crash, staggered-crash — the bulk
    of every sweep) costs the engine nothing per slot. Force inside the
    [corrupt]/[byz_step] callback that received the view; the thunks
    snapshot at first force, so a view stashed and forced in a later slot
    would observe later state. *)

val states : ('s, 'm) view -> 's array
val corrupted : ('s, 'm) view -> bool array
val inboxes : ('s, 'm) view -> 'm Envelope.t list array
(** Forcing accessors for the lazy snapshot fields. *)

type ('s, 'm) t = {
  name : string;
  corrupt : ('s, 'm) view -> Mewc_prelude.Pid.t list;
      (** Called once per slot before correct processes step: processes to
          corrupt now. The engine enforces the cumulative budget [t]. *)
  byz_step : pid:Mewc_prelude.Pid.t -> ('s, 'm) view -> ('m * Mewc_prelude.Pid.t) list;
      (** Called once per slot for each corrupted process, after correct
          processes have stepped. Returns the messages that process sends. *)
}

type ('s, 'm) factory =
  pki:Mewc_crypto.Pki.t -> secrets:Mewc_crypto.Pki.Secret.t array -> ('s, 'm) t
(** Adversaries that need to {e sign} (equivocate, forge certificates from
    corrupted shares, …) are built after the trusted setup, closing over the
    secrets of the processes they will corrupt — and only those ever get
    used, mirroring the model: corruption hands the adversary that process's
    signing key and nothing else. Runners take factories. *)

val const : ('s, 'm) t -> ('s, 'm) factory
(** Lift an adversary that never signs (crash-style). *)

val honest : name:string -> ('s, 'm) t
(** Corrupts nobody: failure-free runs (f = 0). *)

val crash : ?at:int -> victims:Mewc_prelude.Pid.t list -> unit -> ('s, 'm) t
(** Corrupts [victims] at slot [at] (default 0) and keeps them silent
    forever: pure crash failures, the "benign" end of Byzantine. *)

val staggered_crash :
  victims:Mewc_prelude.Pid.t list -> every:int -> ('s, 'm) t
(** Crashes one further victim every [every] slots (first at slot 0) —
    an adaptive-corruption schedule. *)
