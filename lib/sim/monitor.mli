(** Online invariant monitors over the engine's event stream.

    A monitor is a stateful observer of the same typed events a {!Trace}
    stores: the engine feeds every event to every installed monitor as it
    happens, and calls [on_finish] once the horizon is reached. A violated
    invariant raises {!Violation} immediately (fail-fast), carrying the
    monitor's name, the slot, and a human-readable reason — together with
    the run's seeds (which the caller knows) that makes every violation a
    replayable counterexample.

    Monitors derive everything they check from the event stream itself:
    the realized [f] from [Corruption] events, the paper's word measure
    from charged non-Byzantine [Send]s, decisions from [Decision] events.
    A monitor therefore works identically online (installed in
    {!Engine.run}) and offline ({!replay} over a recorded trace).

    Every monitor carries a {!severity}: [Safety] invariants must hold in
    any execution (disagreement is never excusable), while [Liveness]
    invariants (termination, latency envelopes) are only promised under
    the paper's reliable synchronous model and are expected to fail —
    gracefully — under injected faults. {!split} and {!classify} turn that
    distinction into the degradation harness's three-way verdict. *)

type violation = { monitor : string; slot : int; reason : string }

exception Violation of violation

val pp_violation : Format.formatter -> violation -> unit

type severity = Safety | Liveness

type 'm t = {
  name : string;
  severity : severity;
  on_event : 'm Trace.event -> unit;
  on_finish : slots:int -> unit;
}

val make :
  name:string ->
  ?severity:severity ->
  ?on_event:(violate:(slot:int -> string -> unit) -> 'm Trace.event -> unit) ->
  ?on_finish:(violate:(slot:int -> string -> unit) -> slots:int -> unit) ->
  unit ->
  'm t
(** Build a custom monitor; [violate] raises {!Violation} tagged with the
    monitor's name. [severity] defaults to [Safety]. *)

val split : 'm t list -> 'm t list * 'm t list
(** [(safety, liveness)] partition, order-preserving. *)

val all : 'm t list -> 'm t
(** Compose monitors into one that forwards every event to each in order. *)

val replay : 'm t list -> slots:int -> 'm Trace.t -> unit
(** Drive monitors from a recorded trace: every event in order, then
    [on_finish]. Raises {!Violation} exactly as an online run would. *)

(** {2 Degradation classification} *)

type classification =
  | Safe_live  (** every safety and liveness invariant held *)
  | Safe_stalled of violation
      (** safety held but a liveness invariant broke — the protocol
          degraded detectably (stalled) rather than misbehaving *)
  | Unsafe of violation
      (** a safety invariant broke — silent disagreement territory *)

val pp_classification : Format.formatter -> classification -> unit

val classify :
  run:(unit -> 'a) -> liveness:('a -> unit) -> 'a option * classification
(** [classify ~run ~liveness] executes [run] (a protocol run with the
    {e safety} monitors installed online) and then [liveness] on its
    result (the liveness monitors, typically replayed offline over the
    recorded trace). A {!Violation} from [run] is {!Unsafe} (no outcome);
    one from [liveness] is {!Safe_stalled}; otherwise {!Safe_live}. Any
    other exception propagates. *)

(** {2 The standard invariants} *)

val corruption_budget : cfg:Config.t -> 'm t
(** The adversary's corruption schedule is sane: at most [cfg.t] corruptions
    overall, [f] counts up by exactly 1 per corruption, no process is
    corrupted twice, pids are valid, and corruption stamps are within the
    current slot. Safety. *)

val agreement : unit -> 'm t
(** Agreement-once-decided: all [Decision] values across the run are equal,
    and no process ever re-decides a different value. Safety. (Termination
    is {!termination}, a separate liveness monitor.) *)

val termination : cfg:Config.t -> 'm t
(** At the end of the run every process that was neither corrupted nor
    touched by an injected {!Trace.Process_fault} has decided. Liveness. *)

val word_bound : name:string -> bound:(f:int -> int) -> 'm t
(** The paper's adaptive per-execution bounds: the cumulative word count of
    correct senders (charged, non-Byzantine sends) never exceeds
    [bound ~f] for the {e realized} number of corruptions [f] so far —
    checked after every send, and again at the end of the run against the
    final [f]. Corruption precedes the spending it induces (the adversary
    corrupts at slot start, before processes step), so the online check is
    sound for adaptive bounds of the O(n(f+1)) family. Safety (of the
    complexity claim). *)

val cone_words_bound :
  cfg:Config.t ->
  name:string ->
  ?check_every:int ->
  bound:(f:int -> int) ->
  unit ->
  'm t
(** The causal analogue of {!word_bound}: on a [Decision], reconstruct the
    decision's happens-before cone from the [Send] stream (message edges
    from the engine-assigned envelope ids plus process order) and check that
    the charged non-Byzantine words {e inside the cone} stay within
    [bound ~f] at the realized [f] — the per-decision measured counterpart
    of the paper's adaptive bounds. Each check costs O(sends + n) via a
    backward frontier pass; [check_every] (default 1, i.e. every decision)
    samples every k-th decision to keep large-n sweeps cheap. Raises
    [Invalid_argument] if [check_every < 1]. *)

val early_termination : name:string -> bound:(f:int -> int) -> 'm t
(** Early termination: at the end of the run, the last [Decision] slot is at
    most [bound ~f] for the realized [f]. Protocols instantiate [bound]
    with their constant-round (small f) latency envelope. Liveness. *)

val metering : unit -> 'm t
(** Meter/engine consistency on every [Send]: word cost is at least 1,
    self-addressed sends are never charged, cross-process sends always are,
    and the [byzantine] flag matches the corruption events seen so far. *)
