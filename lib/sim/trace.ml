module Jsonx = Mewc_prelude.Jsonx

type 'm send = {
  id : int;
  envelope : 'm Envelope.t;
  byzantine_sender : bool;
  words : int;
  charged : bool;
  parents : int list;
}

type 'm event =
  | Slot_start of int
  | Corruption of { slot : int; pid : Mewc_prelude.Pid.t; f : int }
  | Send of 'm send
  | Decision of {
      slot : int;
      pid : Mewc_prelude.Pid.t;
      value : string;
      parents : int list;
    }
  | Link_fault of {
      slot : int;
      id : int;
      src : Mewc_prelude.Pid.t;
      dst : Mewc_prelude.Pid.t;
      fault : Faults.link_fault;
    }
  | Process_fault of {
      slot : int;
      pid : Mewc_prelude.Pid.t;
      event : Faults.process_event;
    }
  | Frame_fault of {
      slot : int;
      src : Mewc_prelude.Pid.t;
      dst : Mewc_prelude.Pid.t;
      seq : int;
      fault : Faults.byte_fault;
    }
  | Decode_reject of {
      slot : int;
      dst : Mewc_prelude.Pid.t;
      reason : string;
    }

type 'm t = {
  enabled : bool;
  mutable rev_events : 'm event list;
  mutable count : int;
  mutable forward : 'm event list option;  (* memoized [events] *)
}

let create ~enabled = { enabled; rev_events = []; count = 0; forward = None }
let enabled t = t.enabled

let record t ev =
  if t.enabled then begin
    t.rev_events <- ev :: t.rev_events;
    t.count <- t.count + 1;
    t.forward <- None
  end

let events t =
  match t.forward with
  | Some evs -> evs
  | None ->
    let evs = List.rev t.rev_events in
    t.forward <- Some evs;
    evs

let length t = t.count

let sends t =
  List.filter_map (function Send s -> Some s | _ -> None) (events t)

let equal_event eq_msg a b =
  match (a, b) with
  | Slot_start s, Slot_start s' -> s = s'
  | Corruption a, Corruption b -> a.slot = b.slot && a.pid = b.pid && a.f = b.f
  | Send a, Send b ->
    a.id = b.id
    && a.byzantine_sender = b.byzantine_sender
    && a.words = b.words && a.charged = b.charged
    && List.equal Int.equal a.parents b.parents
    && a.envelope.Envelope.src = b.envelope.Envelope.src
    && a.envelope.Envelope.dst = b.envelope.Envelope.dst
    && a.envelope.Envelope.sent_at = b.envelope.Envelope.sent_at
    && eq_msg a.envelope.Envelope.msg b.envelope.Envelope.msg
  | Decision a, Decision b ->
    a.slot = b.slot && a.pid = b.pid && String.equal a.value b.value
    && List.equal Int.equal a.parents b.parents
  | Link_fault a, Link_fault b ->
    a.slot = b.slot && a.id = b.id && a.src = b.src && a.dst = b.dst
    && a.fault = b.fault
  | Process_fault a, Process_fault b ->
    a.slot = b.slot && a.pid = b.pid && a.event = b.event
  | Frame_fault a, Frame_fault b ->
    a.slot = b.slot && a.src = b.src && a.dst = b.dst && a.seq = b.seq
    && a.fault = b.fault
  | Decode_reject a, Decode_reject b ->
    a.slot = b.slot && a.dst = b.dst && String.equal a.reason b.reason
  | _ -> false

let equal eq_msg a b = List.equal (equal_event eq_msg) (events a) (events b)

let pp_parents fmt = function
  | [] -> ()
  | ps ->
    Format.fprintf fmt " <-{%s}"
      (String.concat "," (List.map string_of_int ps))

let pp_event pp_msg fmt = function
  | Slot_start s -> Format.fprintf fmt "-- slot %d --" s
  | Corruption { slot; pid; f } ->
    Format.fprintf fmt "[%d] corrupt p%d (f=%d)" slot pid f
  | Send { id; envelope; byzantine_sender; words; charged; parents } ->
    Format.fprintf fmt "%s#%d %a (%d word%s%s)%a"
      (if byzantine_sender then "[byz] " else "      ")
      id (Envelope.pp pp_msg) envelope words
      (if words = 1 then "" else "s")
      (if charged then "" else ", free")
      pp_parents parents
  | Decision { slot; pid; value; parents } ->
    Format.fprintf fmt "[%d] p%d decides %s%a" slot pid value pp_parents parents
  | Link_fault { slot; id; src; dst; fault } ->
    Format.fprintf fmt "[%d] fault #%d p%d->p%d %s" slot id src dst
      (Faults.link_fault_to_string fault)
  | Process_fault { slot; pid; event } ->
    Format.fprintf fmt "[%d] fault p%d %s" slot pid
      (Faults.process_event_to_string event)
  | Frame_fault { slot; src; dst; seq; fault } ->
    Format.fprintf fmt "[%d] frame-fault p%d->p%d #%d %s" slot src dst seq
      (Faults.byte_fault_to_string fault)
  | Decode_reject { slot; dst; reason } ->
    Format.fprintf fmt "[%d] p%d rejects frame: %s" slot dst reason

let pp pp_msg fmt t =
  List.iter (fun ev -> Format.fprintf fmt "%a@." (pp_event pp_msg) ev) (events t)

(* ---- serialization ----------------------------------------------------- *)

let schema = "mewc-trace/4"

let legacy_schema = "mewc-trace/3"
(* pre-wire traces: same event vocabulary minus frame-fault/decode-reject *)

let parents_to_json ps = Jsonx.Arr (List.map (fun p -> Jsonx.Int p) ps)

let event_to_json ~encode = function
  | Slot_start s -> Jsonx.Obj [ ("type", Jsonx.Str "slot"); ("slot", Jsonx.Int s) ]
  | Corruption { slot; pid; f } ->
    Jsonx.Obj
      [
        ("type", Jsonx.Str "corrupt");
        ("slot", Jsonx.Int slot);
        ("pid", Jsonx.Int pid);
        ("f", Jsonx.Int f);
      ]
  | Send
      {
        id;
        envelope = { Envelope.src; dst; sent_at; msg };
        byzantine_sender;
        words;
        charged;
        parents;
      } ->
    Jsonx.Obj
      [
        ("type", Jsonx.Str "send");
        ("id", Jsonx.Int id);
        ("slot", Jsonx.Int sent_at);
        ("src", Jsonx.Int src);
        ("dst", Jsonx.Int dst);
        ("words", Jsonx.Int words);
        ("byzantine", Jsonx.Bool byzantine_sender);
        ("charged", Jsonx.Bool charged);
        ("parents", parents_to_json parents);
        ("msg", Jsonx.Str (encode msg));
      ]
  | Decision { slot; pid; value; parents } ->
    Jsonx.Obj
      [
        ("type", Jsonx.Str "decide");
        ("slot", Jsonx.Int slot);
        ("pid", Jsonx.Int pid);
        ("parents", parents_to_json parents);
        ("value", Jsonx.Str value);
      ]
  | Link_fault { slot; id; src; dst; fault } ->
    Jsonx.Obj
      [
        ("type", Jsonx.Str "link-fault");
        ("slot", Jsonx.Int slot);
        ("id", Jsonx.Int id);
        ("src", Jsonx.Int src);
        ("dst", Jsonx.Int dst);
        ("fault", Jsonx.Str (Faults.link_fault_to_string fault));
      ]
  | Process_fault { slot; pid; event } ->
    Jsonx.Obj
      [
        ("type", Jsonx.Str "process-fault");
        ("slot", Jsonx.Int slot);
        ("pid", Jsonx.Int pid);
        ("event", Jsonx.Str (Faults.process_event_to_string event));
      ]
  | Frame_fault { slot; src; dst; seq; fault } ->
    Jsonx.Obj
      [
        ("type", Jsonx.Str "frame-fault");
        ("slot", Jsonx.Int slot);
        ("src", Jsonx.Int src);
        ("dst", Jsonx.Int dst);
        ("seq", Jsonx.Int seq);
        ("fault", Jsonx.Str (Faults.byte_fault_to_string fault));
      ]
  | Decode_reject { slot; dst; reason } ->
    Jsonx.Obj
      [
        ("type", Jsonx.Str "decode-reject");
        ("slot", Jsonx.Int slot);
        ("dst", Jsonx.Int dst);
        ("reason", Jsonx.Str reason);
      ]

let to_json ~encode t =
  Jsonx.Schema.tag schema
    [ ("events", Jsonx.Arr (List.map (event_to_json ~encode) (events t))) ]

let event_of_json ~decode j =
  let field name get =
    match Option.bind (Jsonx.member name j) get with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)
  in
  let ( let* ) = Result.bind in
  let parents_field () =
    match Option.bind (Jsonx.member "parents" j) Jsonx.get_list with
    | None -> Error "missing or ill-typed field \"parents\""
    | Some items ->
      List.fold_left
        (fun acc item ->
          let* ps = acc in
          match Jsonx.get_int item with
          | Some p -> Ok (p :: ps)
          | None -> Error "non-integer parent id")
        (Ok []) items
      |> Result.map List.rev
  in
  let* kind = field "type" Jsonx.get_str in
  match kind with
  | "slot" ->
    let* s = field "slot" Jsonx.get_int in
    Ok (Slot_start s)
  | "corrupt" ->
    let* slot = field "slot" Jsonx.get_int in
    let* pid = field "pid" Jsonx.get_int in
    let* f = field "f" Jsonx.get_int in
    Ok (Corruption { slot; pid; f })
  | "send" ->
    let* id = field "id" Jsonx.get_int in
    let* sent_at = field "slot" Jsonx.get_int in
    let* src = field "src" Jsonx.get_int in
    let* dst = field "dst" Jsonx.get_int in
    let* words = field "words" Jsonx.get_int in
    let* byzantine_sender = field "byzantine" Jsonx.get_bool in
    let* charged = field "charged" Jsonx.get_bool in
    let* parents = parents_field () in
    let* msg = field "msg" Jsonx.get_str in
    Ok
      (Send
         {
           id;
           envelope = { Envelope.src; dst; sent_at; msg = decode msg };
           byzantine_sender;
           words;
           charged;
           parents;
         })
  | "decide" ->
    let* slot = field "slot" Jsonx.get_int in
    let* pid = field "pid" Jsonx.get_int in
    let* parents = parents_field () in
    let* value = field "value" Jsonx.get_str in
    Ok (Decision { slot; pid; value; parents })
  | "link-fault" ->
    let* slot = field "slot" Jsonx.get_int in
    let* id = field "id" Jsonx.get_int in
    let* src = field "src" Jsonx.get_int in
    let* dst = field "dst" Jsonx.get_int in
    let* fault_s = field "fault" Jsonx.get_str in
    let* fault = Faults.link_fault_of_string fault_s in
    Ok (Link_fault { slot; id; src; dst; fault })
  | "process-fault" ->
    let* slot = field "slot" Jsonx.get_int in
    let* pid = field "pid" Jsonx.get_int in
    let* event_s = field "event" Jsonx.get_str in
    let* event = Faults.process_event_of_string event_s in
    Ok (Process_fault { slot; pid; event })
  | "frame-fault" ->
    let* slot = field "slot" Jsonx.get_int in
    let* src = field "src" Jsonx.get_int in
    let* dst = field "dst" Jsonx.get_int in
    let* seq = field "seq" Jsonx.get_int in
    let* fault_s = field "fault" Jsonx.get_str in
    let* fault = Faults.byte_fault_of_string fault_s in
    Ok (Frame_fault { slot; src; dst; seq; fault })
  | "decode-reject" ->
    let* slot = field "slot" Jsonx.get_int in
    let* dst = field "dst" Jsonx.get_int in
    let* reason = field "reason" Jsonx.get_str in
    Ok (Decode_reject { slot; dst; reason })
  | other -> Error (Printf.sprintf "unknown event type %S" other)

let of_json ~decode j =
  let ( let* ) = Result.bind in
  let* () =
    match Jsonx.Schema.check schema j with
    | Ok () -> Ok ()
    | Error _ as e ->
      (* accept the pre-wire schema: /4 is a strict superset of /3 *)
      (match Jsonx.Schema.check legacy_schema j with Ok () -> Ok () | Error _ -> e)
  in
  let* events =
    match Option.bind (Jsonx.member "events" j) Jsonx.get_list with
    | Some evs -> Ok evs
    | None -> Error "missing events array"
  in
  let t = create ~enabled:true in
  let* () =
    List.fold_left
      (fun acc ev ->
        let* () = acc in
        let* ev = event_of_json ~decode ev in
        record t ev;
        Ok ())
      (Ok ()) events
  in
  Ok t

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let parents_to_csv ps = String.concat ";" (List.map string_of_int ps)

let to_csv ~encode t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "type,slot,src,dst,pid,id,words,byzantine,charged,parents,detail\n";
  let line kind ~slot ?src ?dst ?pid ?id ?words ?byzantine ?charged
      ?(parents = "") ?(detail = "") () =
    let opt_int = function Some i -> string_of_int i | None -> "" in
    let opt_bool = function Some b -> string_of_bool b | None -> "" in
    Buffer.add_string buf
      (String.concat ","
         [
           kind;
           string_of_int slot;
           opt_int src;
           opt_int dst;
           opt_int pid;
           opt_int id;
           opt_int words;
           opt_bool byzantine;
           opt_bool charged;
           parents;
           csv_escape detail;
         ]);
    Buffer.add_char buf '\n'
  in
  List.iter
    (function
      | Slot_start s -> line "slot" ~slot:s ()
      | Corruption { slot; pid; f } ->
        line "corrupt" ~slot ~pid ~detail:(Printf.sprintf "f=%d" f) ()
      | Send
          {
            id;
            envelope = { Envelope.src; dst; sent_at; msg };
            byzantine_sender;
            words;
            charged;
            parents;
          } ->
        line "send" ~slot:sent_at ~src ~dst ~id ~words
          ~byzantine:byzantine_sender ~charged
          ~parents:(parents_to_csv parents) ~detail:(encode msg) ()
      | Decision { slot; pid; value; parents } ->
        line "decide" ~slot ~pid ~parents:(parents_to_csv parents)
          ~detail:value ()
      | Link_fault { slot; id; src; dst; fault } ->
        line "link-fault" ~slot ~src ~dst ~id
          ~detail:(Faults.link_fault_to_string fault) ()
      | Process_fault { slot; pid; event } ->
        line "process-fault" ~slot ~pid
          ~detail:(Faults.process_event_to_string event) ()
      | Frame_fault { slot; src; dst; seq; fault } ->
        line "frame-fault" ~slot ~src ~dst ~id:seq
          ~detail:(Faults.byte_fault_to_string fault) ()
      | Decode_reject { slot; dst; reason } ->
        line "decode-reject" ~slot ~dst ~detail:reason ())
    (events t);
  Buffer.contents buf
