(** Communication-complexity accounting (paper §2, "Complexity").

    "The communication complexity of a protocol is the maximum number of
    words sent by all correct processes, across all runs." Accordingly the
    meter keeps words sent by correct processes separate from words sent by
    Byzantine processes; the paper's tables are about the former. Messages a
    process addresses to itself cross no link and are free — that rule lives
    here (not in the engine) so it is unit-testable in isolation.

    Each message counts at least one word (paper: "each message contains at
    least 1 word"); the per-protocol [words] function enforces that.

    Beyond the run totals, the meter keeps {e per-slot} and {e per-process}
    word/message series, so the paper's per-execution bounds (Table 1) can
    be inspected slot by slot, and exports them as immutable
    {!snapshot}s. *)

type t

val create : unit -> t

val begin_slot : t -> slot:int -> unit
(** Start attributing subsequent charges to [slot]. The engine calls this at
    every slot boundary; slots never charged still appear (as zero rows) in
    the snapshot series up to the highest slot begun. *)

val charge :
  t -> byzantine:bool -> src:Mewc_prelude.Pid.t -> dst:Mewc_prelude.Pid.t ->
  words:int -> bool
(** Account one message of the given size; returns whether it was charged.
    Self-addressed messages ([src = dst]) cross no link: they are free and
    return [false]. Raises [Invalid_argument] if [words < 1] (even for a
    self-send — a 0-word message is a wire-format bug regardless). *)

val correct_words : t -> int
val correct_messages : t -> int
val byzantine_words : t -> int
val byzantine_messages : t -> int

val reset : t -> unit
(** Zero every counter and series (the meter can be reused). *)

(** {2 Snapshots}

    A snapshot is a deep, immutable copy: mutating the meter after taking
    one never leaks into it. *)

type row = {
  ix : int;  (** slot number or pid, depending on the series *)
  words : int;  (** by correct-at-send-time senders *)
  messages : int;
  byz_words : int;
  byz_messages : int;
}

type snapshot = {
  correct_words : int;
  correct_messages : int;
  byz_words : int;
  byz_messages : int;
  per_slot : row list;  (** dense, ascending [ix] = slot, zero rows kept *)
  per_process : row list;  (** ascending [ix] = pid; only pids that sent *)
}

val snapshot : t -> snapshot

val snapshot_to_json : snapshot -> Mewc_prelude.Jsonx.t
(** Schema ["mewc-meter/1"]: totals plus both series. *)

val pp : Format.formatter -> t -> unit
