type ('s, 'm) view = {
  slot : int;
  cfg : Config.t;
  states : 's array Lazy.t;
  corrupted : bool array Lazy.t;
  inboxes : 'm Envelope.t list array Lazy.t;
  correct_outgoing : 'm Envelope.t list;
}

let states v = Lazy.force v.states
let corrupted v = Lazy.force v.corrupted
let inboxes v = Lazy.force v.inboxes

type ('s, 'm) t = {
  name : string;
  corrupt : ('s, 'm) view -> Mewc_prelude.Pid.t list;
  byz_step : pid:Mewc_prelude.Pid.t -> ('s, 'm) view -> ('m * Mewc_prelude.Pid.t) list;
}

type ('s, 'm) factory =
  pki:Mewc_crypto.Pki.t -> secrets:Mewc_crypto.Pki.Secret.t array -> ('s, 'm) t

let const a ~pki:_ ~secrets:_ = a

let honest ~name =
  { name; corrupt = (fun _ -> []); byz_step = (fun ~pid:_ _ -> []) }

let crash ?(at = 0) ~victims () =
  {
    name = Printf.sprintf "crash@%d(%d victims)" at (List.length victims);
    corrupt = (fun view -> if view.slot = at then victims else []);
    byz_step = (fun ~pid:_ _ -> []);
  }

let staggered_crash ~victims ~every =
  if every <= 0 then invalid_arg "Adversary.staggered_crash: every must be > 0";
  let arr = Array.of_list victims in
  {
    name = Printf.sprintf "staggered-crash(%d victims, every %d)" (Array.length arr) every;
    corrupt =
      (fun view ->
        if view.slot mod every = 0 then begin
          let idx = view.slot / every in
          if idx < Array.length arr then [ arr.(idx) ] else []
        end
        else []);
    byz_step = (fun ~pid:_ _ -> []);
  }
