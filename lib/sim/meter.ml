module Jsonx = Mewc_prelude.Jsonx

type cell = {
  mutable words : int;
  mutable messages : int;
  mutable byz_words : int;
  mutable byz_messages : int;
}

let fresh_cell () = { words = 0; messages = 0; byz_words = 0; byz_messages = 0 }

type t = {
  totals : cell;
  mutable current_slot : int;
  mutable max_slot : int;  (* highest slot begun; -1 before any *)
  per_slot : (int, cell) Hashtbl.t;
  per_process : (int, cell) Hashtbl.t;
}

let create () =
  {
    totals = fresh_cell ();
    current_slot = 0;
    max_slot = -1;
    per_slot = Hashtbl.create 64;
    per_process = Hashtbl.create 16;
  }

let begin_slot m ~slot =
  m.current_slot <- slot;
  if slot > m.max_slot then m.max_slot <- slot

let cell_of tbl key =
  match Hashtbl.find_opt tbl key with
  | Some c -> c
  | None ->
    let c = fresh_cell () in
    Hashtbl.add tbl key c;
    c

let charge m ~byzantine ~src ~dst ~words =
  if words < 1 then invalid_arg "Meter.charge: each message is at least 1 word";
  if src = dst then false (* self-addressed: crosses no link, free *)
  else begin
    let slot_cell = cell_of m.per_slot m.current_slot in
    let proc_cell = cell_of m.per_process src in
    if m.current_slot > m.max_slot then m.max_slot <- m.current_slot;
    List.iter
      (fun c ->
        if byzantine then begin
          c.byz_words <- c.byz_words + words;
          c.byz_messages <- c.byz_messages + 1
        end
        else begin
          c.words <- c.words + words;
          c.messages <- c.messages + 1
        end)
      [ m.totals; slot_cell; proc_cell ];
    true
  end

let correct_words m = m.totals.words
let correct_messages m = m.totals.messages
let byzantine_words m = m.totals.byz_words
let byzantine_messages m = m.totals.byz_messages

let reset m =
  m.totals.words <- 0;
  m.totals.messages <- 0;
  m.totals.byz_words <- 0;
  m.totals.byz_messages <- 0;
  m.current_slot <- 0;
  m.max_slot <- -1;
  Hashtbl.reset m.per_slot;
  Hashtbl.reset m.per_process

type row = {
  ix : int;
  words : int;
  messages : int;
  byz_words : int;
  byz_messages : int;
}

type snapshot = {
  correct_words : int;
  correct_messages : int;
  byz_words : int;
  byz_messages : int;
  per_slot : row list;
  per_process : row list;
}

let row_of ix (c : cell) =
  {
    ix;
    words = c.words;
    messages = c.messages;
    byz_words = c.byz_words;
    byz_messages = c.byz_messages;
  }

let zero_row ix = { ix; words = 0; messages = 0; byz_words = 0; byz_messages = 0 }

let snapshot m =
  let per_slot =
    List.init (m.max_slot + 1) (fun slot ->
        match Hashtbl.find_opt m.per_slot slot with
        | Some c -> row_of slot c
        | None -> zero_row slot)
  in
  let per_process =
    Hashtbl.fold (fun pid c acc -> row_of pid c :: acc) m.per_process []
    |> List.sort (fun a b -> Int.compare a.ix b.ix)
  in
  {
    correct_words = m.totals.words;
    correct_messages = m.totals.messages;
    byz_words = m.totals.byz_words;
    byz_messages = m.totals.byz_messages;
    per_slot;
    per_process;
  }

let row_to_json key r =
  Jsonx.Obj
    [
      (key, Jsonx.Int r.ix);
      ("words", Jsonx.Int r.words);
      ("messages", Jsonx.Int r.messages);
      ("byz_words", Jsonx.Int r.byz_words);
      ("byz_messages", Jsonx.Int r.byz_messages);
    ]

let snapshot_to_json s =
  Jsonx.Schema.tag "mewc-meter/1"
    [
      ("correct_words", Jsonx.Int s.correct_words);
      ("correct_messages", Jsonx.Int s.correct_messages);
      ("byz_words", Jsonx.Int s.byz_words);
      ("byz_messages", Jsonx.Int s.byz_messages);
      ("per_slot", Jsonx.Arr (List.map (row_to_json "slot") s.per_slot));
      ("per_process", Jsonx.Arr (List.map (row_to_json "pid") s.per_process));
    ]

let pp fmt m =
  Format.fprintf fmt "correct: %d words / %d msgs; byzantine: %d words / %d msgs"
    m.totals.words m.totals.messages m.totals.byz_words m.totals.byz_messages
