type violation = { monitor : string; slot : int; reason : string }

exception Violation of violation

let pp_violation fmt { monitor; slot; reason } =
  Format.fprintf fmt "monitor %S violated at slot %d: %s" monitor slot reason

type severity = Safety | Liveness

type 'm t = {
  name : string;
  severity : severity;
  on_event : 'm Trace.event -> unit;
  on_finish : slots:int -> unit;
}

let make ~name ?(severity = Safety) ?on_event ?on_finish () =
  let violate ~slot reason = raise (Violation { monitor = name; slot; reason }) in
  {
    name;
    severity;
    on_event =
      (match on_event with None -> fun _ -> () | Some f -> f ~violate);
    on_finish =
      (match on_finish with
      | None -> fun ~slots:_ -> ()
      | Some f -> f ~violate);
  }

let split ms = List.partition (fun m -> m.severity = Safety) ms

let all monitors =
  {
    name = String.concat "+" (List.map (fun m -> m.name) monitors);
    severity =
      (if List.exists (fun m -> m.severity = Safety) monitors then Safety
       else Liveness);
    on_event = (fun ev -> List.iter (fun m -> m.on_event ev) monitors);
    on_finish = (fun ~slots -> List.iter (fun m -> m.on_finish ~slots) monitors);
  }

let replay monitors ~slots trace =
  let m = all monitors in
  List.iter m.on_event (Trace.events trace);
  m.on_finish ~slots

(* ---- classification ----------------------------------------------------- *)

type classification = Safe_live | Safe_stalled of violation | Unsafe of violation

let pp_classification fmt = function
  | Safe_live -> Format.fprintf fmt "safe-live"
  | Safe_stalled v -> Format.fprintf fmt "safe-stalled (%a)" pp_violation v
  | Unsafe v -> Format.fprintf fmt "UNSAFE (%a)" pp_violation v

let classify ~run ~liveness =
  match run () with
  | exception Violation v -> (None, Unsafe v)
  | x -> (
    match liveness x with
    | () -> (Some x, Safe_live)
    | exception Violation v -> (Some x, Safe_stalled v))

(* ---- the standard invariants ------------------------------------------- *)

let corruption_budget ~cfg =
  let seen = Hashtbl.create 8 in
  let count = ref 0 in
  let current_slot = ref 0 in
  make ~name:"corruption-budget"
    ~on_event:(fun ~violate -> function
      | Trace.Slot_start s -> current_slot := s
      | Trace.Corruption { slot; pid; f } ->
        if slot <> !current_slot then
          violate ~slot
            (Printf.sprintf "corruption stamped slot %d inside slot %d" slot
               !current_slot);
        if not (Mewc_prelude.Pid.is_valid ~n:cfg.Config.n pid) then
          violate ~slot (Printf.sprintf "corrupted unknown process %d" pid);
        if Hashtbl.mem seen pid then
          violate ~slot (Printf.sprintf "p%d corrupted twice" pid);
        Hashtbl.add seen pid ();
        incr count;
        if f <> !count then
          violate ~slot
            (Printf.sprintf "corruption count stamped %d, observed %d" f !count);
        if !count > cfg.Config.t then
          violate ~slot
            (Printf.sprintf "budget exceeded: %d corruptions > t=%d" !count
               cfg.Config.t)
      | _ -> ())
    ()

let agreement () =
  let decided : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let first : (int * string) option ref = ref None in
  make ~name:"agreement"
    ~on_event:(fun ~violate -> function
      | Trace.Decision { slot; pid; value; _ } -> (
        (match Hashtbl.find_opt decided pid with
        | Some prior when not (String.equal prior value) ->
          violate ~slot
            (Printf.sprintf "p%d re-decided %s after deciding %s" pid value prior)
        | _ -> ());
        Hashtbl.replace decided pid value;
        match !first with
        | None -> first := Some (pid, value)
        | Some (p0, v0) ->
          if not (String.equal v0 value) then
            violate ~slot
              (Printf.sprintf "p%d decided %s but p%d decided %s" pid value p0 v0))
      | _ -> ())
    ()

let termination ~cfg =
  (* Only processes the model still promises anything about must decide:
     corrupted pids are the adversary's, and any pid touched by an injected
     process fault (crash, omission, down phase) has no termination
     guarantee under the stressed model. *)
  let decided = Hashtbl.create 8 in
  let exempt = Hashtbl.create 8 in
  make ~name:"termination" ~severity:Liveness
    ~on_event:(fun ~violate:_ -> function
      | Trace.Corruption { pid; _ } -> Hashtbl.replace exempt pid ()
      | Trace.Process_fault { pid; _ } -> Hashtbl.replace exempt pid ()
      | Trace.Decision { pid; _ } -> Hashtbl.replace decided pid ()
      | _ -> ())
    ~on_finish:(fun ~violate ~slots ->
      List.iter
        (fun p ->
          if not (Hashtbl.mem exempt p || Hashtbl.mem decided p) then
            violate ~slot:slots
              (Printf.sprintf "termination: correct p%d never decided" p))
        (Mewc_prelude.Pid.all ~n:cfg.Config.n))
    ()

let word_bound ~name ~bound =
  let f = ref 0 in
  let words = ref 0 in
  let check ~violate ~slot =
    let b = bound ~f:!f in
    if !words > b then
      violate ~slot
        (Printf.sprintf "correct senders spent %d words > bound %d at f=%d"
           !words b !f)
  in
  make ~name
    ~on_event:(fun ~violate -> function
      | Trace.Corruption { f = f'; _ } -> f := f'
      | Trace.Send { envelope; byzantine_sender; words = w; charged; _ } ->
        if charged && not byzantine_sender then begin
          words := !words + w;
          check ~violate ~slot:envelope.Envelope.sent_at
        end
      | _ -> ())
    ~on_finish:(fun ~violate ~slots -> check ~violate ~slot:slots)
    ()

let early_termination ~name ~bound =
  let f = ref 0 in
  let last_decision = ref None in
  make ~name ~severity:Liveness
    ~on_event:(fun ~violate:_ -> function
      | Trace.Corruption { f = f'; _ } -> f := f'
      | Trace.Decision { slot; _ } -> (
        match !last_decision with
        | Some s when s >= slot -> ()
        | _ -> last_decision := Some slot)
      | _ -> ())
    ~on_finish:(fun ~violate ~slots:_ ->
      match !last_decision with
      | None -> ()
      | Some s ->
        let b = bound ~f:!f in
        if s > b then
          violate ~slot:s
            (Printf.sprintf "last decision at slot %d > bound %d at f=%d" s b !f))
    ()

let cone_words_bound ~cfg ~name ?(check_every = 1) ~bound () =
  if check_every < 1 then invalid_arg "cone_words_bound: check_every < 1";
  let n = cfg.Config.n in
  let f = ref 0 in
  (* Newest-first, so walking the list visits sends in descending id order —
     sent slots never increase along the walk, which is exactly what the
     backward frontier pass needs. *)
  let sends = ref [] in
  let decisions_seen = ref 0 in
  make ~name
    ~on_event:(fun ~violate -> function
      | Trace.Corruption { f = f'; _ } -> f := f'
      | Trace.Send
          {
            envelope = { Envelope.src; dst; sent_at; _ };
            byzantine_sender;
            words;
            charged;
            _;
          } ->
        (* Every message propagates causality, but only charged sends by
           correct processes count words — the paper's measure. *)
        let counted = if charged && not byzantine_sender then words else 0 in
        sends := (src, dst, sent_at, counted) :: !sends
      | Trace.Decision { slot; pid; _ } ->
        incr decisions_seen;
        if (!decisions_seen - 1) mod check_every = 0 then begin
          (* Frontier pass: [frontier.(q)] is the latest slot of [q]'s steps
             inside the decision's causal past. A message sent at slot [k]
             and delivered at [k + 1] is in the cone iff its receiver's
             frontier covers the delivery slot; once in, it pulls the
             sender's frontier back to [k]. One pass in descending sent-slot
             order settles every frontier: a slot-[k] send can only admit
             messages sent strictly earlier, which the walk has not reached
             yet. O(sends + n) per checked decision. *)
          let frontier = Array.make n min_int in
          frontier.(pid) <- slot;
          let cone_words = ref 0 in
          List.iter
            (fun (src, dst, sent_at, counted) ->
              if sent_at + 1 <= frontier.(dst) then begin
                cone_words := !cone_words + counted;
                if sent_at > frontier.(src) then frontier.(src) <- sent_at
              end)
            !sends;
          let b = bound ~f:!f in
          if !cone_words > b then
            violate ~slot
              (Printf.sprintf
                 "p%d's decision has a causal cone of %d words > bound %d at \
                  f=%d"
                 pid !cone_words b !f)
        end
      | _ -> ())
    ()

let metering () =
  let corrupted = Hashtbl.create 8 in
  make ~name:"metering"
    ~on_event:(fun ~violate -> function
      | Trace.Corruption { pid; _ } -> Hashtbl.replace corrupted pid ()
      | Trace.Send { envelope = { Envelope.src; dst; sent_at; _ }; byzantine_sender; words; charged; _ }
        ->
        if words < 1 then
          violate ~slot:sent_at
            (Printf.sprintf "p%d -> p%d carries %d words (< 1)" src dst words);
        if src = dst && charged then
          violate ~slot:sent_at
            (Printf.sprintf "self-send of p%d was charged" src);
        if src <> dst && not charged then
          violate ~slot:sent_at
            (Printf.sprintf "p%d -> p%d crossed a link uncharged" src dst);
        let byz = Hashtbl.mem corrupted src in
        if byz <> byzantine_sender then
          violate ~slot:sent_at
            (Printf.sprintf
               "p%d is %scorrupted but its send is flagged %sbyzantine" src
               (if byz then "" else "not ")
               (if byzantine_sender then "" else "not "))
      | _ -> ())
    ()
