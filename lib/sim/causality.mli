(** Happens-before reconstruction over a recorded trace.

    The engine stamps every envelope with a dense id (assigned in post
    order) and every send/decision with [parents] — the ids the emitting
    process read in the slot it acted from. Those message edges, closed
    under process order (a process carries everything it read in earlier
    slots forward), are Lamport's happens-before relation; this module
    rebuilds it offline and answers the questions the flat trace cannot:
    which messages causally fed a decision, how many of the paper's words
    that cone spent, and which read chain was the latency-critical one.

    The DAG is acyclic by construction — a parent's id is always strictly
    below its child's — and {!of_trace} validates that, along with delivery
    coherence (a parent was delivered to the child's sender exactly in the
    child's slot), so ill-formed JSON cannot produce a bogus analysis. *)

type 'm t
(** A validated causal view of one trace. *)

and 'm decision = {
  slot : int;
  pid : Mewc_prelude.Pid.t;
  value : string;
  parents : int list;
}

val of_trace : 'm Trace.t -> ('m t, string) result
(** Validates: send ids are dense and in trace order; every parent id
    refers to an earlier send; every message edge is delivery-coherent
    (parent.dst = child's sender, parent.sent_at + 1 = child's slot). *)

val n_processes : 'm t -> int
val sends : 'm t -> 'm Trace.send array
(** Indexed by envelope id. *)

val decisions : 'm t -> 'm decision list

val cone : 'm t -> Mewc_prelude.Pid.t -> 'm Trace.event list
(** The full happens-before cone of [pid]'s first decision: every send
    whose delivery causally precedes it (message edges plus process order),
    in id order, followed by the decision event itself. Empty if [pid]
    never decided. Computed by a backward per-process frontier pass in
    O(sends + n). *)

val cone_ids : 'm t -> Mewc_prelude.Pid.t -> int list option
(** Just the envelope ids of {!cone}, ascending. [None] if [pid] never
    decided. *)

val cone_words : 'm t -> Mewc_prelude.Pid.t -> int option
(** Charged non-Byzantine words inside {!cone} — the measured per-decision
    analogue of the paper's adaptive word bounds. *)

val critical_path : 'm t -> Mewc_prelude.Pid.t -> 'm Trace.send list
(** The longest chain of direct reads (message edges only) ending in
    [pid]'s decision, chronological. The length of this chain is the
    data-dependency latency floor of the decision. *)

type summary = {
  pid : Mewc_prelude.Pid.t;
  slot : int;
  value : string;
  cone_messages : int;
  cone_words : int;
  critical_path_length : int;
}

val summaries : 'm t -> summary list
(** One {!summary} per decision, in trace order. *)

val to_dot : ?cone_of:Mewc_prelude.Pid.t -> 'm t -> string
(** Graphviz rendering of the message DAG: boxes are messages (Byzantine
    senders filled red), ellipses are decisions, edges are recorded reads.
    With [cone_of], restricts to that process's decision cone and paints
    the critical path red. *)
