(** Seeded, deterministic link/process fault injection.

    The paper's model (§2) assumes a perfectly synchronous, reliable
    network: a message sent in slot τ is delivered in slot τ+1, exactly
    once, and correct processes never stop. This module makes each of
    those assumptions individually breakable — per-link drops, fixed
    k-slot delays (a δ violation), duplication, slot-ranged partitions,
    and crash / send-omission / crash-recovery process faults — so the
    degradation harness can measure how protocols fail when the model is
    stressed.

    A {!plan} is pure data: validated up front, serializable
    ([mewc-faults/1] JSON), and threaded through [Engine.options]. Every
    probabilistic choice is drawn from a per-message generator keyed by
    [plan.seed] and the message's identity (slot, src, dst, seq) —
    independent of the engine's shuffle stream {e and} of evaluation
    order, so the same seed and plan always produce byte-identical traces
    no matter how the engine shards its processes across domains. Every injected
    fault is stamped into the trace ([mewc-trace/3] adds [Link_fault] and
    [Process_fault] events), keeping replay and post-mortems exact. *)

type process_fault =
  | Crash of { at : int }  (** halts before stepping in slot [at], forever *)
  | Send_omission of { from_ : int; drop_mod : int; drop_rem : int }
      (** from slot [from_] on, sends to destinations with
          [dst mod drop_mod = drop_rem] are silently lost — a faulty NIC
          that still receives *)
  | Crash_recovery of { down_at : int; up_at : int }
      (** down for slots [down_at, up_at): neither steps nor receives;
          resumes with its pre-crash state (messages in flight are lost) *)

type partition = {
  from_slot : int;
  until_slot : int;  (** exclusive; the partition heals at [until_slot] *)
  island : Mewc_prelude.Pid.t list;
      (** links crossing the [island] / complement cut fail both ways *)
}

type plan = {
  seed : int64;  (** seeds every probabilistic draw below *)
  drop : float;  (** per-link-delivery drop probability in [0, 1] *)
  delay : int;  (** extra slots a delayed message waits (k of the δ bump) *)
  delay_prob : float;  (** probability a given send is delayed by [delay] *)
  dup : float;  (** probability a given delivery is duplicated *)
  partitions : partition list;
  processes : (Mewc_prelude.Pid.t * process_fault) list;
}

val none : plan
(** The reliable network: no faults of any kind. *)

val is_none : plan -> bool
(** [true] iff the plan can never inject anything (seed ignored). *)

val validate : n:int -> plan -> (unit, string) result
(** Structural sanity: probabilities in [0, 1]; [delay >= 1] whenever
    [delay_prob > 0]; partition islands are nonempty proper subsets of
    valid pids with [from_slot <= until_slot]; process-fault pids valid
    and distinct; [drop_mod >= 1], [0 <= drop_rem < drop_mod],
    [down_at < up_at], and slot stamps non-negative. *)

val equal : plan -> plan -> bool
val pp : Format.formatter -> plan -> unit

val to_json : plan -> Mewc_prelude.Jsonx.t
(** Schema [mewc-faults/1]. *)

val of_json : Mewc_prelude.Jsonx.t -> (plan, string) result

(** {2 Fault events}

    What the engine stamps into the trace when an injection fires. *)

type link_fault =
  | Omitted  (** lost to the sender's send-omission fault *)
  | Partitioned  (** lost to an active partition cut *)
  | Dropped  (** lost to the per-link drop coin *)
  | Delayed of int  (** delivery postponed by this many extra slots *)
  | Duplicated  (** delivered twice in the same slot *)

type process_event =
  | Crashed  (** permanent halt *)
  | Went_down  (** crash-recovery: down phase begins *)
  | Recovered  (** crash-recovery: back up *)
  | Omitting  (** send-omission behavior activates *)

val link_fault_to_string : link_fault -> string
val link_fault_of_string : string -> (link_fault, string) result
val process_event_to_string : process_event -> string
val process_event_of_string : string -> (process_event, string) result

(** {2 Byte-level faults}

    A second, independent fault stage that lives {e below} the wire codec:
    where a {!plan} removes or reschedules whole deliveries at the engine's
    deliver boundary, a {!byte_plan} corrupts the encoded bytes of a frame
    after serialization, so the decoder's hardening (checksums, bounded
    totality, stream resync) is what actually gets exercised. Interpreted
    only by the async wire runtime ([Mewc_wire.Runtime]); the lock-step
    engine never sees encoded bytes. Fates are pure functions of
    [(plan.seed, slot, src, dst, seq, len)], exactly like link {!fate}. *)

type byte_fault =
  | Flip of int  (** XOR bit [i] of the encoded frame (i < 8·length) *)
  | Truncate of int  (** keep only the first [k] bytes (0 <= k < length) *)
  | Reorder
      (** hold the frame back past the link's next write — a same-slot
          (within-δ) reordering, never a loss *)

type byte_plan = {
  byte_seed : int64;  (** seeds every draw below *)
  flip : float;  (** per-frame bit-flip probability in [0, 1] *)
  trunc : float;  (** per-frame truncation probability in [0, 1] *)
  reorder : float;  (** per-frame reorder probability in [0, 1] *)
}

val byte_none : byte_plan
val byte_is_none : byte_plan -> bool

val validate_byte : byte_plan -> (unit, string) result
(** Probabilities in [0, 1]. *)

val equal_byte_plan : byte_plan -> byte_plan -> bool
val pp_byte_plan : Format.formatter -> byte_plan -> unit

val byte_plan_to_json : byte_plan -> Mewc_prelude.Jsonx.t
(** Schema [mewc-byte-faults/1]. *)

val byte_plan_of_json : Mewc_prelude.Jsonx.t -> (byte_plan, string) result
val byte_fault_to_string : byte_fault -> string
val byte_fault_of_string : string -> (byte_fault, string) result

val byte_fate :
  byte_plan ->
  slot:int ->
  src:Mewc_prelude.Pid.t ->
  dst:Mewc_prelude.Pid.t ->
  seq:int ->
  len:int ->
  byte_fault option
(** The fate of the [len]-byte frame carrying message [seq] of
    [src -> dst] at [slot] — a pure function of the plan and the frame's
    identity, independent of evaluation order (the same contract as
    {!fate}). Frames of length 0 and self-addressed frames are the
    caller's business; this never returns [Truncate] for [len < 2] or
    [Flip] for [len = 0]. Coins are drawn flip, then truncate, then
    reorder. *)

val apply_byte_fault : byte_fault -> string -> string
(** The corrupted bytes ([Reorder] leaves bytes intact — the transport
    reorders the write instead). Out-of-range [Flip]/[Truncate] indices are
    clamped, so any recorded fault replays totally. *)

(** {2 Runtime}

    The engine-side interpreter of a plan. Link fates are pure functions
    of [(plan.seed, slot, src, dst, seq)] — no draw ever depends on stream
    position — so outcomes are invariant under any re-ordering of the
    engine's send evaluation, including parallel shard interleavings. Only
    {!transitions} carries mutable state (the up/down and omission flags),
    and it is driven once per slot from the engine's main domain. *)

type runtime

val start : n:int -> plan -> runtime
(** Raises [Invalid_argument] if [validate ~n] rejects the plan. *)

val transitions : runtime -> slot:int -> (Mewc_prelude.Pid.t * process_event) list
(** Process-fault transitions firing at [slot], in plan order; updates the
    runtime's up/down and omission state. Call once per slot, before
    delivery. *)

val is_down : runtime -> Mewc_prelude.Pid.t -> bool
(** Crashed or in a crash-recovery down phase, as of the last
    [transitions] call. Down processes neither step nor receive. *)

val fate :
  ?seq:int ->
  runtime ->
  slot:int ->
  src:Mewc_prelude.Pid.t ->
  dst:Mewc_prelude.Pid.t ->
  link_fault option
(** The fate of a message sent at [slot] on link [src -> dst]. [None]
    means normal next-slot delivery. Self-addressed sends are never
    faulted (local delivery does not cross the network).

    [seq] (default 0) distinguishes multiple same-slot sends on the same
    link: the engine passes the message's index within its sender's send
    list, so each message draws independent coins while the result stays a
    pure function of the message's identity. *)
