module Pid = Mewc_prelude.Pid

type 'm t = {
  n : int;
  sends : 'm Trace.send array;  (* indexed by envelope id *)
  decisions : 'm decision array;  (* in trace order *)
}

and 'm decision = {
  slot : int;
  pid : Pid.t;
  value : string;
  parents : int list;
}

let n_processes t = t.n
let sends t = t.sends
let decisions t = Array.to_list t.decisions

(* ---- construction and validation ---------------------------------------- *)

let of_trace trace =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rev_sends = ref [] in
  let send_count = ref 0 in
  let rev_decisions = ref [] in
  let* () =
    List.fold_left
      (fun acc ev ->
        let* () = acc in
        match ev with
        | Trace.Send s ->
          (* Engine ids are assigned in post order: dense, starting at 0,
             strictly increasing along the trace. Everything downstream
             indexes arrays by id, so enforce that here. *)
          if s.Trace.id <> !send_count then
            err "send #%d out of order: expected id %d" s.Trace.id !send_count
          else begin
            rev_sends := s :: !rev_sends;
            incr send_count;
            Ok ()
          end
        | Trace.Decision { slot; pid; value; parents } ->
          rev_decisions := { slot; pid; value; parents } :: !rev_decisions;
          Ok ()
        | _ -> Ok ())
      (Ok ()) (Trace.events trace)
  in
  let sends = Array.of_list (List.rev !rev_sends) in
  let decisions = Array.of_list (List.rev !rev_decisions) in
  let n =
    let m = ref 0 in
    Array.iter
      (fun s ->
        m := max !m (max s.Trace.envelope.Envelope.src s.Trace.envelope.Envelope.dst))
      sends;
    Array.iter (fun d -> m := max !m d.pid) decisions;
    !m + 1
  in
  (* A message edge parent -> child is causally coherent iff the parent was
     delivered to the child's sender in the slot the child was sent from:
     parent.dst = child.src and parent.sent_at + 1 = child.sent_at. Parent
     ids below child ids make the DAG acyclic by construction; both are
     checked, not assumed, because traces also arrive from JSON. *)
  let check_parent ~what ~child_id ~src ~slot p =
    if p < 0 || p >= Array.length sends then
      err "%s references unknown parent #%d" what p
    else if child_id >= 0 && p >= child_id then
      err "%s has parent #%d >= its own id (cycle)" what p
    else
      let parent = sends.(p) in
      if parent.Trace.envelope.Envelope.dst <> src then
        err "%s read parent #%d addressed to p%d, not p%d" what p
          parent.Trace.envelope.Envelope.dst src
      else if parent.Trace.envelope.Envelope.sent_at + 1 <> slot then
        err "%s at slot %d read parent #%d sent at slot %d (not the previous \
             slot)"
          what slot p parent.Trace.envelope.Envelope.sent_at
      else Ok ()
  in
  let* () =
    Array.fold_left
      (fun acc s ->
        let* () = acc in
        let { Trace.id; envelope = { Envelope.src; sent_at; _ }; parents; _ } =
          s
        in
        List.fold_left
          (fun acc p ->
            let* () = acc in
            check_parent
              ~what:(Printf.sprintf "send #%d" id)
              ~child_id:id ~src ~slot:sent_at p)
          (Ok ()) parents)
      (Ok ()) sends
  in
  let* () =
    Array.fold_left
      (fun acc { slot; pid; parents; _ } ->
        let* () = acc in
        List.fold_left
          (fun acc p ->
            let* () = acc in
            check_parent
              ~what:(Printf.sprintf "p%d's decision" pid)
              ~child_id:(-1) ~src:pid ~slot p)
          (Ok ()) parents)
      (Ok ()) decisions
  in
  Ok { n; sends; decisions }

let decision_of t pid =
  Array.to_seq t.decisions |> Seq.find (fun d -> Pid.equal d.pid pid)

(* ---- cones --------------------------------------------------------------- *)

(* The full happens-before cone of a step (pid, slot): message edges are the
   recorded parents; process order additionally carries everything a process
   read in earlier slots forward. Both collapse into a per-process frontier
   L(q) = the latest slot of q's steps inside the cone — monotone, because
   process order chains (q, d) -> (q, d + 1). A message sent at slot k and
   delivered at k + 1 is in the cone iff k + 1 <= L(dst); once in, it pulls
   L(src) up to at least k. Walking sends by descending id visits them in
   non-increasing sent-slot order, and a slot-k send only ever admits
   messages sent strictly before k, so a single pass settles every frontier:
   O(sends + n). *)
let cone_ids_of_step t ~pid ~slot =
  let frontier = Array.make t.n min_int in
  frontier.(pid) <- slot;
  let ids = ref [] in
  for id = Array.length t.sends - 1 downto 0 do
    let { Trace.envelope = { Envelope.src; dst; sent_at; _ }; _ } =
      t.sends.(id)
    in
    if sent_at + 1 <= frontier.(dst) then begin
      ids := id :: !ids;
      if sent_at > frontier.(src) then frontier.(src) <- sent_at
    end
  done;
  !ids

let cone_ids t pid =
  match decision_of t pid with
  | None -> None
  | Some d -> Some (cone_ids_of_step t ~pid ~slot:d.slot)

let counted s =
  if s.Trace.charged && not s.Trace.byzantine_sender then s.Trace.words else 0

let cone_words_of_ids t ids =
  List.fold_left (fun acc id -> acc + counted t.sends.(id)) 0 ids

let cone t pid =
  match decision_of t pid with
  | None -> []
  | Some d ->
    let ids = cone_ids_of_step t ~pid ~slot:d.slot in
    List.map (fun id -> Trace.Send t.sends.(id)) ids
    @ [
        Trace.Decision
          { slot = d.slot; pid = d.pid; value = d.value; parents = d.parents };
      ]

let cone_words t pid =
  Option.map (cone_words_of_ids t) (cone_ids t pid)

(* ---- critical path ------------------------------------------------------- *)

(* Longest chain of direct reads (message edges only) ending in the
   decision: the rushing chain that actually forced the decision's latency.
   Parent ids are strictly below child ids, so ascending id order is a
   topological order and one DP pass suffices. *)
let critical_path t pid =
  match decision_of t pid with
  | None -> []
  | Some d ->
    let m = Array.length t.sends in
    let depth = Array.make m 1 in
    let best = Array.make m (-1) in
    for id = 0 to m - 1 do
      List.iter
        (fun p ->
          if depth.(p) + 1 > depth.(id) then begin
            depth.(id) <- depth.(p) + 1;
            best.(id) <- p
          end)
        t.sends.(id).Trace.parents
    done;
    let tip =
      List.fold_left
        (fun acc p ->
          match acc with
          | Some q when depth.(q) >= depth.(p) -> acc
          | _ -> Some p)
        None d.parents
    in
    let rec walk acc = function
      | -1 -> acc
      | id -> walk (t.sends.(id) :: acc) best.(id)
    in
    (match tip with None -> [] | Some tip -> walk [] tip)

(* ---- per-decision summaries ---------------------------------------------- *)

type summary = {
  pid : Pid.t;
  slot : int;
  value : string;
  cone_messages : int;
  cone_words : int;
  critical_path_length : int;
}

let summaries t =
  Array.to_list t.decisions
  |> List.map (fun (d : _ decision) ->
         let ids = cone_ids_of_step t ~pid:d.pid ~slot:d.slot in
         {
           pid = d.pid;
           slot = d.slot;
           value = d.value;
           cone_messages = List.length ids;
           cone_words = cone_words_of_ids t ids;
           critical_path_length = List.length (critical_path t d.pid);
         })

(* ---- DOT export ----------------------------------------------------------- *)

let dot_escape s =
  String.concat ""
    (List.map
       (function
         | '"' -> "\\\"" | '\\' -> "\\\\" | '\n' -> "\\n" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let to_dot ?cone_of t =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "digraph causality {";
  line "  rankdir=LR;";
  line "  node [shape=box, fontname=\"monospace\", fontsize=10];";
  let keep, decisions, path_ids =
    match cone_of with
    | None ->
      ( Array.make (Array.length t.sends) true,
        Array.to_list t.decisions,
        [] )
    | Some pid ->
      let keep = Array.make (Array.length t.sends) false in
      (match cone_ids t pid with
      | Some ids -> List.iter (fun id -> keep.(id) <- true) ids
      | None -> ());
      let ds =
        match decision_of t pid with None -> [] | Some d -> [ d ]
      in
      (keep, ds, List.map (fun s -> s.Trace.id) (critical_path t pid))
  in
  let on_path = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace on_path id ()) path_ids;
  Array.iter
    (fun s ->
      let {
        Trace.id;
        envelope = { Envelope.src; dst; sent_at; _ };
        byzantine_sender;
        words;
        _;
      } =
        s
      in
      if keep.(id) then begin
        line "  m%d [label=\"#%d p%d->p%d @%d (%dw)\"%s%s];" id id src dst
          sent_at words
          (if byzantine_sender then ", style=filled, fillcolor=lightcoral"
           else "")
          (if Hashtbl.mem on_path id then ", color=red, penwidth=2" else "");
        List.iter
          (fun p ->
            if keep.(p) then
              line "  m%d -> m%d%s;" p id
                (if Hashtbl.mem on_path id && Hashtbl.mem on_path p then
                   " [color=red, penwidth=2]"
                 else ""))
          s.Trace.parents
      end)
    t.sends;
  List.iteri
    (fun i (d : _ decision) ->
      line
        "  d%d [label=\"p%d decides %s @%d\", shape=ellipse, style=filled, \
         fillcolor=lightblue];"
        i d.pid (dot_escape d.value) d.slot;
      List.iter
        (fun p ->
          if p >= 0 && p < Array.length keep && keep.(p) then
            line "  m%d -> d%d%s;" p i
              (if Hashtbl.mem on_path p && cone_of <> None then
                 " [color=red, penwidth=2]"
               else ""))
        d.parents)
    decisions;
  line "}";
  Buffer.contents buf
