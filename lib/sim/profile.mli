(** Wall-clock and allocation profiling spans.

    A profile is a stack of nested spans over an injectable monotone clock
    (default [Unix.gettimeofday]). Each span carries a name and one of five
    fixed categories; closing a span charges its inclusive time to the
    parent's child-time so that {e self} time — inclusive minus children —
    partitions the run: summed over all spans it never exceeds the elapsed
    time. Allocation is measured as [Gc.quick_stat] word deltas (minor +
    major − promoted) and is inclusive of children.

    Spans are aggregated per (name, category) key, so a hot path crossed a
    million times costs two clock reads and a hashtable hit per crossing,
    not a million records. Emits ["mewc-profile/1"] JSON and an ASCII flame
    summary. Not domain-safe: profile only sequential passes. *)

type category = Crypto | Engine | Machine | Adversary | Serialize

val categories : category list
(** All five, in canonical order. *)

val category_name : category -> string
val category_of_name : string -> category option

type t

val create : ?clock:(unit -> float) -> unit -> t
(** [clock] is injectable for tests; it must be monotone. *)

val span : t -> category:category -> string -> (unit -> 'a) -> 'a
(** [span t ~category name f] runs [f], charging its duration and
    allocations to the [(name, category)] aggregate. Exception-safe: the
    span closes (and parents stay balanced) even if [f] raises. *)

val elapsed : t -> float
(** Seconds since {!create}. *)

type row = {
  name : string;
  category : category;
  count : int;
  total_s : float;  (** inclusive *)
  self_s : float;  (** exclusive of child spans *)
  alloc_words : float;  (** inclusive *)
}

val rows : t -> row list
(** One row per (name, category) key, in first-seen order. *)

val rollup : t -> (category * float) list
(** Self-seconds per category, all five categories in canonical order
    (zero when unused) — the shape the perf ledger stores. *)

val schema : string
(** ["mewc-profile/1"]. *)

val to_json : t -> Mewc_prelude.Jsonx.t

val flame : t -> string
(** ASCII flame summary via {!Mewc_prelude.Ascii_table}: spans sorted by
    self time with proportional [#] bars. *)
