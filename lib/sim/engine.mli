(** The synchronous execution engine.

    Runs [n] lock-step state machines against an adaptive rushing adversary
    for a fixed number of δ-slots. Within each slot:

    + messages sent in the previous slot are delivered;
    + the adversary may corrupt further processes (budget [t] overall);
    + correct processes step on their inboxes and queue their sends;
    + the adversary, seeing everything — including this slot's correct
      sends — produces the corrupted processes' sends (rushing);
    + the meter charges each send to its sender's class, and all sends are
      queued for delivery at the next slot.

    Synchronous protocols are clock-driven, so a run executes exactly
    [horizon] slots; silent processes cost nothing, hence running past a
    protocol's decision point never inflates word counts.

    {2 Observability}

    The engine emits a typed event stream — {!Trace.event} — covering slot
    boundaries, corruptions, sends (with word costs and charge outcomes),
    and decision transitions. The stream feeds two consumers: the run's
    {!Trace.t} (when [record_trace]) and any installed {!Monitor.t}s, which
    check invariants online and raise {!Monitor.Violation} fail-fast. When
    neither is present, events are not materialized at all; the meter's
    per-slot series stays on regardless. *)

type ('s, 'm) outcome = {
  states : 's array;
      (** final protocol states (for corrupted processes: state frozen at
          corruption time) *)
  corrupted : Mewc_prelude.Pid.t list;  (** in order of corruption *)
  f : int;  (** actual number of corruptions — the paper's [f] *)
  faulty : Mewc_prelude.Pid.t list;
      (** processes hit by an injected {!Faults.process_fault}, in order of
          first transition; empty on a reliable run *)
  meter : Meter.t;
  trace : 'm Trace.t;
  slots : int;
}

type scheduler = [ `Legacy | `Event_driven ]
(** Which hot loop executes the run.

    - [`Legacy] — the original dense loop: every process steps every slot,
      every inbox is rebuilt every slot. O(n) work per slot even when the
      protocol is quiescent. Kept verbatim as the oracle.
    - [`Event_driven] — per-process pending-delivery pools; a slot only
      visits processes that received something or whose {!Process.wake}
      timer is armed.

    The two are {e observationally equivalent}: same seed, same options,
    same fault plan ⇒ byte-identical [mewc-trace/4] traces, decisions,
    meter series, word counts, monitor verdicts, and final states. The
    differential suite ([test_engine_diff]) enforces this across protocols,
    fuzz scenarios, and chaos fault plans. *)

val scheduler_to_string : scheduler -> string
(** ["legacy"] / ["event-driven"]. *)

val scheduler_of_string : string -> (scheduler, string) result

type ('s, 'm) options = {
  record_trace : bool;  (** materialize the run's {!Trace.t} *)
  shuffle_seed : int64 option;
      (** permutes every inbox deterministically before delivery: within a
          slot the network may present messages in any order, and correct
          protocols must not care. Tests run the whole suite's scenarios
          under random inbox orders to enforce that. *)
  monitors : 'm Monitor.t list;  (** online invariant checkers *)
  decided : ('s -> string option) option;
      (** renders a state's decision, if any; when given (and someone is
          observing), the engine emits a {!Trace.Decision} event in the slot
          a correct process's decision first becomes — or, protocol bug,
          changes to — that printed value. *)
  profile : Profile.t option;
      (** when given, the engine charges each slot's phases to spans:
          [engine.deliver], [adversary.corrupt], [machine.step],
          [adversary.byz_step], [engine.post]. *)
  faults : Faults.plan;
      (** injected network/process faults ({!Faults.none} = the paper's
          reliable model). Every injection is stamped into the trace as a
          {!Trace.Link_fault} / {!Trace.Process_fault} event; sends are
          charged whether or not their delivery is then tampered with.
          Raises [Invalid_argument] from {!run} if the plan fails
          {!Faults.validate}. *)
  scheduler : scheduler;
      (** which hot loop runs the slots; [`Legacy] by default. *)
  shards : int;
      (** number of domains a run shards its processes across (default 1 =
          fully sequential, no domains involved). Within a slot, process
          [p]'s step — where all the signature crypto lives — runs on shard
          [p mod shards]; each shard precomputes its processes' new states,
          word counts, and fault fates, and the main domain merges them in
          ascending pid order before the sequential post phase assigns
          envelope ids, meter charges, and trace events. Sharding composes
          with both schedulers and is {e observationally invisible}: any
          shard count produces byte-identical traces, decisions, meter
          series, and final states (the cache hit/miss {e split} in
          {!Mewc_crypto.Pki.cache_stats} is the one legitimate exception —
          per-domain caches move hits between domains). Raises
          [Invalid_argument] from {!run} if [shards < 1] or if
          [shards > 1] is combined with [profile] (the profiler is not
          domain-safe). *)
  metrics : Mewc_obs.Metrics.t option;
      (** live-telemetry registry. When given, the engine records — on the
          main domain, in the sequential post/merge phases, so values are
          identical under either scheduler and any shard count —
          [engine.slots], [engine.messages], [engine.words],
          [engine.corruptions], [engine.decisions] (only while a [decided]
          projection is installed and someone is observing),
          [engine.link_faults] counters, plus an [engine.slot_words]
          histogram of per-slot word totals. *)
}
(** Observability knobs, gathered in one record so that adding a knob does
    not grow every caller's argument list. Start from {!default_options} and
    override the fields you need. *)

val default_options : ('s, 'm) options
(** No trace, in-order delivery, no monitors, no decision projection, no
    faults, legacy scheduler, one shard, no metrics. *)

val run :
  cfg:Config.t ->
  ?options:('s, 'm) options ->
  words:('m -> int) ->
  horizon:int ->
  protocol:(Mewc_prelude.Pid.t -> ('s, 'm) Process.t) ->
  adversary:('s, 'm) Adversary.t ->
  unit ->
  ('s, 'm) outcome
(** Raises [Invalid_argument] if the adversary exceeds the corruption budget
    [cfg.t], corrupts an unknown process, or addresses a message to an
    unknown process. Raises {!Monitor.Violation} as soon as an installed
    monitor's invariant breaks. *)
