open Mewc_prelude

type process_fault =
  | Crash of { at : int }
  | Send_omission of { from_ : int; drop_mod : int; drop_rem : int }
  | Crash_recovery of { down_at : int; up_at : int }

type partition = {
  from_slot : int;
  until_slot : int;
  island : Pid.t list;
}

type plan = {
  seed : int64;
  drop : float;
  delay : int;
  delay_prob : float;
  dup : float;
  partitions : partition list;
  processes : (Pid.t * process_fault) list;
}

let none =
  {
    seed = 0L;
    drop = 0.0;
    delay = 0;
    delay_prob = 0.0;
    dup = 0.0;
    partitions = [];
    processes = [];
  }

let is_none p =
  p.drop = 0.0 && p.delay_prob = 0.0 && p.dup = 0.0 && p.partitions = []
  && p.processes = []

let validate ~n plan =
  let ( let* ) = Result.bind in
  let prob name v =
    if v >= 0.0 && v <= 1.0 then Ok ()
    else Error (Printf.sprintf "%s probability %g outside [0, 1]" name v)
  in
  let* () = prob "drop" plan.drop in
  let* () = prob "delay" plan.delay_prob in
  let* () = prob "dup" plan.dup in
  let* () =
    if plan.delay_prob > 0.0 && plan.delay < 1 then
      Error (Printf.sprintf "delay %d < 1 with delay_prob > 0" plan.delay)
    else if plan.delay < 0 then Error (Printf.sprintf "delay %d < 0" plan.delay)
    else Ok ()
  in
  let* () =
    List.fold_left
      (fun acc { from_slot; until_slot; island } ->
        let* () = acc in
        if from_slot < 0 || from_slot > until_slot then
          Error
            (Printf.sprintf "partition slots [%d, %d) ill-formed" from_slot
               until_slot)
        else if island = [] then Error "partition island is empty"
        else if List.exists (fun p -> not (Pid.is_valid ~n p)) island then
          Error "partition island names an unknown process"
        else if
          List.length (List.sort_uniq compare island) <> List.length island
        then Error "partition island repeats a process"
        else if List.length island >= n then
          Error "partition island must be a proper subset"
        else Ok ())
      (Ok ()) plan.partitions
  in
  let pids = List.map fst plan.processes in
  let* () =
    if List.length (List.sort_uniq compare pids) <> List.length pids then
      Error "a process has two fault assignments"
    else Ok ()
  in
  List.fold_left
    (fun acc (pid, fault) ->
      let* () = acc in
      if not (Pid.is_valid ~n pid) then
        Error (Printf.sprintf "process fault on unknown process %d" pid)
      else
        match fault with
        | Crash { at } ->
          if at < 0 then Error (Printf.sprintf "p%d crashes at slot %d < 0" pid at)
          else Ok ()
        | Send_omission { from_; drop_mod; drop_rem } ->
          if from_ < 0 then
            Error (Printf.sprintf "p%d omits from slot %d < 0" pid from_)
          else if drop_mod < 1 then
            Error (Printf.sprintf "p%d omission modulus %d < 1" pid drop_mod)
          else if drop_rem < 0 || drop_rem >= drop_mod then
            Error
              (Printf.sprintf "p%d omission residue %d outside [0, %d)" pid
                 drop_rem drop_mod)
          else Ok ()
        | Crash_recovery { down_at; up_at } ->
          if down_at < 0 || down_at >= up_at then
            Error
              (Printf.sprintf "p%d down window [%d, %d) ill-formed" pid down_at
                 up_at)
          else Ok ())
    (Ok ()) plan.processes

let equal_process_fault a b =
  match (a, b) with
  | Crash a, Crash b -> a.at = b.at
  | Send_omission a, Send_omission b ->
    a.from_ = b.from_ && a.drop_mod = b.drop_mod && a.drop_rem = b.drop_rem
  | Crash_recovery a, Crash_recovery b ->
    a.down_at = b.down_at && a.up_at = b.up_at
  | (Crash _ | Send_omission _ | Crash_recovery _), _ -> false

let equal_partition a b =
  a.from_slot = b.from_slot && a.until_slot = b.until_slot
  && List.equal Pid.equal a.island b.island

let equal a b =
  Int64.equal a.seed b.seed && a.drop = b.drop && a.delay = b.delay
  && a.delay_prob = b.delay_prob && a.dup = b.dup
  && List.equal equal_partition a.partitions b.partitions
  && List.equal
       (fun (p, f) (p', f') -> Pid.equal p p' && equal_process_fault f f')
       a.processes b.processes

let pp_process_fault fmt = function
  | Crash { at } -> Format.fprintf fmt "crash@%d" at
  | Send_omission { from_; drop_mod; drop_rem } ->
    Format.fprintf fmt "omit@%d(dst%%%d=%d)" from_ drop_mod drop_rem
  | Crash_recovery { down_at; up_at } ->
    Format.fprintf fmt "down@[%d,%d)" down_at up_at

let pp fmt p =
  if is_none p then Format.fprintf fmt "no-faults"
  else begin
    Format.fprintf fmt "faults{seed=%Ld" p.seed;
    if p.drop > 0.0 then Format.fprintf fmt "; drop=%g" p.drop;
    if p.delay_prob > 0.0 then
      Format.fprintf fmt "; delay=+%d@%g" p.delay p.delay_prob;
    if p.dup > 0.0 then Format.fprintf fmt "; dup=%g" p.dup;
    List.iter
      (fun { from_slot; until_slot; island } ->
        Format.fprintf fmt "; part[%d,%d){%s}" from_slot until_slot
          (String.concat "," (List.map string_of_int island)))
      p.partitions;
    List.iter
      (fun (pid, f) -> Format.fprintf fmt "; p%d:%a" pid pp_process_fault f)
      p.processes;
    Format.fprintf fmt "}"
  end

(* ---- serialization ----------------------------------------------------- *)

let schema = "mewc-faults/1"

(* Jsonx prints whole floats with a trailing ".0" but plans built in code
   often use literals like [0.25]; accept both Int and Float on parse. *)
let get_float = function
  | Jsonx.Float f -> Some f
  | Jsonx.Int i -> Some (float_of_int i)
  | _ -> None

let process_fault_to_json = function
  | Crash { at } ->
    Jsonx.Obj [ ("kind", Jsonx.Str "crash"); ("at", Jsonx.Int at) ]
  | Send_omission { from_; drop_mod; drop_rem } ->
    Jsonx.Obj
      [
        ("kind", Jsonx.Str "send-omission");
        ("from", Jsonx.Int from_);
        ("mod", Jsonx.Int drop_mod);
        ("rem", Jsonx.Int drop_rem);
      ]
  | Crash_recovery { down_at; up_at } ->
    Jsonx.Obj
      [
        ("kind", Jsonx.Str "crash-recovery");
        ("down", Jsonx.Int down_at);
        ("up", Jsonx.Int up_at);
      ]

let to_json p =
  Jsonx.Schema.tag schema
    [
      ("seed", Jsonx.Str (Int64.to_string p.seed));
      ("drop", Jsonx.Float p.drop);
      ("delay", Jsonx.Int p.delay);
      ("delay_prob", Jsonx.Float p.delay_prob);
      ("dup", Jsonx.Float p.dup);
      ( "partitions",
        Jsonx.Arr
          (List.map
             (fun { from_slot; until_slot; island } ->
               Jsonx.Obj
                 [
                   ("from", Jsonx.Int from_slot);
                   ("until", Jsonx.Int until_slot);
                   ("island", Jsonx.Arr (List.map (fun p -> Jsonx.Int p) island));
                 ])
             p.partitions) );
      ( "processes",
        Jsonx.Arr
          (List.map
             (fun (pid, f) ->
               Jsonx.Obj
                 [ ("pid", Jsonx.Int pid); ("fault", process_fault_to_json f) ])
             p.processes) );
    ]

let field j name get =
  match Option.bind (Jsonx.member name j) get with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let process_fault_of_json j =
  let ( let* ) = Result.bind in
  let* kind = field j "kind" Jsonx.get_str in
  match kind with
  | "crash" ->
    let* at = field j "at" Jsonx.get_int in
    Ok (Crash { at })
  | "send-omission" ->
    let* from_ = field j "from" Jsonx.get_int in
    let* drop_mod = field j "mod" Jsonx.get_int in
    let* drop_rem = field j "rem" Jsonx.get_int in
    Ok (Send_omission { from_; drop_mod; drop_rem })
  | "crash-recovery" ->
    let* down_at = field j "down" Jsonx.get_int in
    let* up_at = field j "up" Jsonx.get_int in
    Ok (Crash_recovery { down_at; up_at })
  | other -> Error (Printf.sprintf "unknown process fault kind %S" other)

let of_json j =
  let ( let* ) = Result.bind in
  let* () = Jsonx.Schema.check schema j in
  let* seed_s = field j "seed" Jsonx.get_str in
  let* seed =
    match Int64.of_string_opt seed_s with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "bad seed %S" seed_s)
  in
  let* drop = field j "drop" get_float in
  let* delay = field j "delay" Jsonx.get_int in
  let* delay_prob = field j "delay_prob" get_float in
  let* dup = field j "dup" get_float in
  let* partitions =
    let* items = field j "partitions" Jsonx.get_list in
    List.fold_left
      (fun acc item ->
        let* ps = acc in
        let* from_slot = field item "from" Jsonx.get_int in
        let* until_slot = field item "until" Jsonx.get_int in
        let* island_js = field item "island" Jsonx.get_list in
        let* island =
          List.fold_left
            (fun acc pj ->
              let* l = acc in
              match Jsonx.get_int pj with
              | Some p -> Ok (p :: l)
              | None -> Error "non-integer pid in island")
            (Ok []) island_js
          |> Result.map List.rev
        in
        Ok ({ from_slot; until_slot; island } :: ps))
      (Ok []) items
    |> Result.map List.rev
  in
  let* processes =
    let* items = field j "processes" Jsonx.get_list in
    List.fold_left
      (fun acc item ->
        let* ps = acc in
        let* pid = field item "pid" Jsonx.get_int in
        let* fj =
          match Jsonx.member "fault" item with
          | Some f -> Ok f
          | None -> Error "missing field \"fault\""
        in
        let* fault = process_fault_of_json fj in
        Ok ((pid, fault) :: ps))
      (Ok []) items
    |> Result.map List.rev
  in
  Ok { seed; drop; delay; delay_prob; dup; partitions; processes }

(* ---- fault events ------------------------------------------------------ *)

type link_fault =
  | Omitted
  | Partitioned
  | Dropped
  | Delayed of int
  | Duplicated

type process_event = Crashed | Went_down | Recovered | Omitting

let link_fault_to_string = function
  | Omitted -> "omitted"
  | Partitioned -> "partitioned"
  | Dropped -> "dropped"
  | Delayed k -> Printf.sprintf "delayed+%d" k
  | Duplicated -> "duplicated"

let link_fault_of_string s =
  match s with
  | "omitted" -> Ok Omitted
  | "partitioned" -> Ok Partitioned
  | "dropped" -> Ok Dropped
  | "duplicated" -> Ok Duplicated
  | _ -> (
    match
      if String.length s > 8 && String.sub s 0 8 = "delayed+" then
        int_of_string_opt (String.sub s 8 (String.length s - 8))
      else None
    with
    | Some k -> Ok (Delayed k)
    | None -> Error (Printf.sprintf "unknown link fault %S" s))

let process_event_to_string = function
  | Crashed -> "crashed"
  | Went_down -> "went-down"
  | Recovered -> "recovered"
  | Omitting -> "omitting"

let process_event_of_string = function
  | "crashed" -> Ok Crashed
  | "went-down" -> Ok Went_down
  | "recovered" -> Ok Recovered
  | "omitting" -> Ok Omitting
  | s -> Error (Printf.sprintf "unknown process event %S" s)

(* An odd 64-bit multiplier folds (slot, src, dst, seq) into one injective-
   enough word; [Rng.mix] then whitens it. Any residual structure only
   biases *which* messages are hit, never determinism. *)
let link_key ~slot ~src ~dst ~seq =
  let open Int64 in
  let c = 0x100000001B3L in
  let acc = of_int slot in
  let acc = add (mul acc c) (of_int src) in
  let acc = add (mul acc c) (of_int dst) in
  add (mul acc c) (of_int seq)

(* ---- byte-level faults ------------------------------------------------- *)

type byte_fault = Flip of int | Truncate of int | Reorder

type byte_plan = {
  byte_seed : int64;
  flip : float;
  trunc : float;
  reorder : float;
}

let byte_none = { byte_seed = 0L; flip = 0.0; trunc = 0.0; reorder = 0.0 }
let byte_is_none p = p.flip = 0.0 && p.trunc = 0.0 && p.reorder = 0.0

let validate_byte p =
  let ( let* ) = Result.bind in
  let prob name v =
    if v >= 0.0 && v <= 1.0 then Ok ()
    else Error (Printf.sprintf "%s probability %g outside [0, 1]" name v)
  in
  let* () = prob "flip" p.flip in
  let* () = prob "trunc" p.trunc in
  prob "reorder" p.reorder

let equal_byte_plan a b =
  Int64.equal a.byte_seed b.byte_seed
  && a.flip = b.flip && a.trunc = b.trunc && a.reorder = b.reorder

let pp_byte_plan fmt p =
  if byte_is_none p then Format.fprintf fmt "no-byte-faults"
  else
    Format.fprintf fmt "byte-faults{seed=%Ld; flip=%g; trunc=%g; reorder=%g}"
      p.byte_seed p.flip p.trunc p.reorder

let byte_schema = "mewc-byte-faults/1"

let byte_plan_to_json p =
  Jsonx.Schema.tag byte_schema
    [
      ("seed", Jsonx.Str (Int64.to_string p.byte_seed));
      ("flip", Jsonx.Float p.flip);
      ("trunc", Jsonx.Float p.trunc);
      ("reorder", Jsonx.Float p.reorder);
    ]

let byte_plan_of_json j =
  let ( let* ) = Result.bind in
  let* () = Jsonx.Schema.check byte_schema j in
  let* seed_s = field j "seed" Jsonx.get_str in
  let* byte_seed =
    match Int64.of_string_opt seed_s with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "bad seed %S" seed_s)
  in
  let* flip = field j "flip" get_float in
  let* trunc = field j "trunc" get_float in
  let* reorder = field j "reorder" get_float in
  Ok { byte_seed; flip; trunc; reorder }

let byte_fault_to_string = function
  | Flip i -> Printf.sprintf "flip@%d" i
  | Truncate k -> Printf.sprintf "truncate@%d" k
  | Reorder -> "reorder"

let byte_fault_of_string s =
  let tail prefix =
    let pl = String.length prefix in
    if String.length s > pl && String.sub s 0 pl = prefix then
      int_of_string_opt (String.sub s pl (String.length s - pl))
    else None
  in
  match s with
  | "reorder" -> Ok Reorder
  | _ -> (
    match (tail "flip@", tail "truncate@") with
    | Some i, _ -> Ok (Flip i)
    | _, Some k -> Ok (Truncate k)
    | None, None -> Error (Printf.sprintf "unknown byte fault %S" s))

let byte_fate plan ~slot ~src ~dst ~seq ~len =
  if byte_is_none plan || len = 0 then None
  else
    (* Same per-message-generator discipline as [fate]: the draw is keyed
       by the frame's identity, never by stream position, with [len] folded
       in so the fault's index draws can't collide across frame sizes. *)
    let g =
      Rng.create
        (Rng.mix
           (Int64.logxor plan.byte_seed
              (Rng.mix (link_key ~slot ~src ~dst ~seq:((seq * 8191) + len)))))
    in
    let coin p = p > 0.0 && Rng.float g 1.0 < p in
    if coin plan.flip then Some (Flip (Rng.int g (len * 8)))
    else if len >= 2 && coin plan.trunc then Some (Truncate (Rng.int g (len - 1)))
    else if coin plan.reorder then Some Reorder
    else None

let apply_byte_fault fault bytes =
  let len = String.length bytes in
  match fault with
  | Reorder -> bytes
  | Truncate k -> String.sub bytes 0 (max 0 (min k len))
  | Flip _ when len = 0 -> bytes
  | Flip i ->
    let i = max 0 (min i ((len * 8) - 1)) in
    let b = Bytes.of_string bytes in
    let byte = i / 8 and bit = i mod 8 in
    Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
    Bytes.to_string b

(* ---- runtime ----------------------------------------------------------- *)

type runtime = {
  plan : plan;
  down : bool array;
  omit : (int * int) option array;  (* (drop_mod, drop_rem) once active *)
}

let start ~n plan =
  (match validate ~n plan with
  | Ok () -> ()
  | Error e -> invalid_arg (Printf.sprintf "Faults.start: %s" e));
  { plan; down = Array.make n false; omit = Array.make n None }

let transitions rt ~slot =
  List.filter_map
    (fun (pid, fault) ->
      match fault with
      | Crash { at } when at = slot ->
        rt.down.(pid) <- true;
        Some (pid, Crashed)
      | Send_omission { from_; drop_mod; drop_rem } when from_ = slot ->
        rt.omit.(pid) <- Some (drop_mod, drop_rem);
        Some (pid, Omitting)
      | Crash_recovery { down_at; _ } when down_at = slot ->
        rt.down.(pid) <- true;
        Some (pid, Went_down)
      | Crash_recovery { up_at; _ } when up_at = slot ->
        rt.down.(pid) <- false;
        Some (pid, Recovered)
      | Crash _ | Send_omission _ | Crash_recovery _ -> None)
    rt.plan.processes

let is_down rt pid = rt.down.(pid)

let in_island island pid = List.exists (Pid.equal pid) island

let fate ?(seq = 0) rt ~slot ~src ~dst =
  if src = dst then None
  else
    let omitted =
      match rt.omit.(src) with
      | Some (m, r) -> dst mod m = r
      | None -> false
    in
    if omitted then Some Omitted
    else if
      List.exists
        (fun { from_slot; until_slot; island } ->
          slot >= from_slot && slot < until_slot
          && in_island island src <> in_island island dst)
        rt.plan.partitions
    then Some Partitioned
    else if
      rt.plan.drop = 0.0 && rt.plan.delay_prob = 0.0 && rt.plan.dup = 0.0
    then None
    else
      (* Each message gets its own generator, keyed by the plan seed and
         the message's identity (slot, src, dst, seq) — never by stream
         position. A fate is therefore a pure function of the plan and the
         message, independent of the order the engine evaluates sends in;
         this is what lets the sharded engine precompute fates inside
         worker domains. Coins are drawn from the per-message generator in
         a fixed order. *)
      let g =
        Rng.create
          (Rng.mix (Int64.logxor rt.plan.seed (Rng.mix (link_key ~slot ~src ~dst ~seq))))
      in
      let coin p = p > 0.0 && Rng.float g 1.0 < p in
      if coin rt.plan.drop then Some Dropped
      else if coin rt.plan.delay_prob then Some (Delayed rt.plan.delay)
      else if coin rt.plan.dup then Some Duplicated
      else None
