type ('s, 'm) t = {
  init : 's;
  step :
    slot:int -> inbox:'m Envelope.t list -> 's -> 's * ('m * Mewc_prelude.Pid.t) list;
  wake : (slot:int -> 's -> bool) option;
}

let broadcast ~n msg = List.map (fun p -> (msg, p)) (Mewc_prelude.Pid.all ~n)

let broadcast_others ~n ~self msg =
  List.filter_map
    (fun p -> if p = self then None else Some (msg, p))
    (Mewc_prelude.Pid.all ~n)

let silent init =
  {
    init;
    step = (fun ~slot:_ ~inbox:_ s -> (s, []));
    wake = Some (fun ~slot:_ _ -> false);
  }
