(* The registry is global (protocol modules note their uses from deep
   inside init/step) and sweep runs may execute on several domains at
   once, so every access takes the mutex. Contention is negligible: a run
   notes a handful of edges, not one per message. *)
let lock = Mutex.create ()
let table : (string * string, int) Hashtbl.t = Hashtbl.create 32

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let note ~user ~uses =
  locked (fun () ->
      let key = (user, uses) in
      let prev = Option.value ~default:0 (Hashtbl.find_opt table key) in
      Hashtbl.replace table key (prev + 1))

let edges () =
  locked (fun () ->
      Hashtbl.fold (fun (user, uses) count acc -> (user, uses, count) :: acc) table [])
  |> List.sort compare

let reset () = locked (fun () -> Hashtbl.reset table)

let pp_diagram fmt () =
  let es = edges () in
  let users = List.sort_uniq compare (List.map (fun (u, _, _) -> u) es) in
  let used = List.sort_uniq compare (List.map (fun (_, v, _) -> v) es) in
  let roots = List.filter (fun u -> not (List.mem u used)) users in
  let children u =
    List.filter_map (fun (a, b, c) -> if a = u then Some (b, c) else None) es
  in
  let rec render indent u count =
    let prefix = String.make indent ' ' in
    (match count with
    | None -> Format.fprintf fmt "%s%s@." prefix u
    | Some c -> Format.fprintf fmt "%s%s  (used %d times)@." prefix u c);
    List.iter (fun (child, c) -> render (indent + 4) child (Some c)) (children u)
  in
  List.iter (fun r -> render 0 r None) roots
