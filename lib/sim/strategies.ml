open Mewc_prelude

let deviant ~name ~victims ~machine ~mangle =
  let states = Hashtbl.create 8 in
  let byz_step ~pid (view : _ Adversary.view) =
    if not (List.mem pid victims) then []
    else begin
      let m = machine pid in
      let st =
        match Hashtbl.find_opt states pid with
        | Some st -> st
        | None -> m.Process.init
      in
      let inbox = (Adversary.inboxes view).(pid) in
      let st', sends = m.Process.step ~slot:view.Adversary.slot ~inbox st in
      Hashtbl.replace states pid st';
      mangle ~slot:view.Adversary.slot ~pid ~inbox sends
    end
  in
  {
    Adversary.name;
    corrupt = (fun view -> if view.Adversary.slot = 0 then victims else []);
    byz_step;
  }

let scripted ~name ~victims ~script =
  {
    Adversary.name;
    corrupt = (fun view -> if view.Adversary.slot = 0 then victims else []);
    byz_step =
      (fun ~pid view ->
        if List.mem pid victims then
          script ~slot:view.Adversary.slot ~pid
            ~inbox:(Adversary.inboxes view).(pid)
        else []);
  }

let compose a b =
  let owned_by_a = ref Pid.Set.empty in
  {
    Adversary.name = Printf.sprintf "%s + %s" a.Adversary.name b.Adversary.name;
    corrupt =
      (fun view ->
        let ca = a.Adversary.corrupt view in
        let cb = b.Adversary.corrupt view in
        owned_by_a := List.fold_left (fun s p -> Pid.Set.add p s) !owned_by_a ca;
        ca @ List.filter (fun p -> not (List.mem p ca)) cb);
    byz_step =
      (fun ~pid view ->
        if Pid.Set.mem pid !owned_by_a then a.Adversary.byz_step ~pid view
        else
          match b.Adversary.byz_step ~pid view with
          | [] -> a.Adversary.byz_step ~pid view
          | sends -> sends);
  }
