open Mewc_prelude

type ('s, 'm) outcome = {
  states : 's array;
  corrupted : Pid.t list;
  f : int;
  faulty : Pid.t list;
  meter : Meter.t;
  trace : 'm Trace.t;
  slots : int;
}

type scheduler = [ `Legacy | `Event_driven ]

let scheduler_to_string = function
  | `Legacy -> "legacy"
  | `Event_driven -> "event-driven"

let scheduler_of_string = function
  | "legacy" -> Ok `Legacy
  | "event-driven" -> Ok `Event_driven
  | s ->
    Error
      (Printf.sprintf "unknown scheduler %S (expected legacy or event-driven)" s)

type ('s, 'm) options = {
  record_trace : bool;
  shuffle_seed : int64 option;
  monitors : 'm Monitor.t list;
  decided : ('s -> string option) option;
  profile : Profile.t option;
  faults : Faults.plan;
  scheduler : scheduler;
  shards : int;
  metrics : Mewc_obs.Metrics.t option;
}

let default_options =
  {
    record_trace = false;
    shuffle_seed = None;
    monitors = [];
    decided = None;
    profile = None;
    faults = Faults.none;
    scheduler = `Legacy;
    shards = 1;
    metrics = None;
  }

(* Live-telemetry handles, resolved once per run. Every recorded quantity is
   scheduler- and shard-invariant by construction: all increments happen on
   the main domain, in the sequential post/merge phases, and count the same
   events both schedulers produce byte-identically. *)
type engine_meters = {
  slots_c : Mewc_obs.Metrics.counter;
  messages_c : Mewc_obs.Metrics.counter;
  words_c : Mewc_obs.Metrics.counter;
  corruptions_c : Mewc_obs.Metrics.counter;
  decisions_c : Mewc_obs.Metrics.counter;
  link_faults_c : Mewc_obs.Metrics.counter;
  slot_words_h : Mewc_obs.Metrics.histogram;
}

let engine_meters_of registry =
  Option.map
    (fun reg ->
      let open Mewc_obs.Metrics in
      {
        slots_c = counter reg "engine.slots";
        messages_c = counter reg "engine.messages";
        words_c = counter reg "engine.words";
        corruptions_c = counter reg "engine.corruptions";
        decisions_c = counter reg "engine.decisions";
        link_faults_c = counter reg "engine.link_faults";
        slot_words_h = histogram reg "engine.slot_words";
      })
    registry

let mincr meters get =
  match meters with None -> () | Some m -> Mewc_obs.Metrics.incr (get m)

(* ---- sharded step phase -------------------------------------------------

   Within a slot, [Process.step ~slot ~inbox state] reads nothing but its
   own state and inbox — every cross-process effect flows through [post].
   That makes the step phase (where all the crypto lives) embarrassingly
   parallel: shard the pid space across domains with static striding
   (pid [p] on shard [p mod shards]), have each shard compute its
   processes' results — the new state, plus each outgoing message already
   paired with its word count and fault fate, both pure functions of the
   message — into distinct slots of a results array, then merge on the
   main domain in ascending pid order. Everything order-sensitive
   (envelope ids, meter charges, trace events, provenance parents, shuffle
   draws, delayed buckets) happens in the merge and the sequential [post]
   phase, so a sharded run is byte-identical to the sequential one by
   construction. The barrier is {!Pool.exec} on a persistent worker set:
   one mutex/condvar round-trip per slot, no domain spawns. *)

type ('s, 'm) step_out =
  | Skipped
  | Stepped of 's * ('m * Pid.t * int * Faults.link_fault option) list
  | Failed of exn

let compute_steps ws ~n ~active ~step_one results =
  let lanes = Pool.size ws in
  ignore
    (Pool.exec ws
       (Array.init lanes (fun w () ->
            let p = ref w in
            while !p < n do
              if active !p then results.(!p) <- step_one !p;
              p := !p + lanes
            done)))

let run_legacy ~workers ~cfg ~options ~words ~horizon ~protocol ~adversary () =
  let {
    record_trace;
    shuffle_seed;
    monitors;
    decided;
    profile;
    faults;
    scheduler = _;
    shards = _;
    metrics;
  } =
    options
  in
  let meters = engine_meters_of metrics in
  let slot_words = ref 0 in
  (* Sections are per slot, not per message, so an unprofiled run pays one
     closure and one match per section per slot — noise. *)
  let timed category name f =
    match profile with
    | None -> f ()
    | Some p -> Profile.span p ~category name f
  in
  let n = cfg.Config.n in
  let shuffle_rng = Option.map Rng.create shuffle_seed in
  (* [None] when the plan is empty, so the reliable path is byte-identical
     to a faultless build: no extra draws, allocations, or branches that
     could perturb traces. *)
  let faults_rt =
    if Faults.is_none faults then None else Some (Faults.start ~n faults)
  in
  let faulty_seen = Array.make n false in
  let faulty_order = ref [] in
  let machines = Array.init n protocol in
  let states = Array.map (fun m -> m.Process.init) machines in
  let corrupted = Array.make n false in
  let corruption_order = ref [] in
  let corruption_count = ref 0 in
  let meter = Meter.create () in
  let trace = Trace.create ~enabled:record_trace in
  (* Events are only materialized when someone is looking: a recording trace
     or at least one monitor. The meter's per-slot series is always on. *)
  let observing = record_trace || monitors <> [] in
  let emit ev =
    Trace.record trace ev;
    List.iter (fun m -> m.Monitor.on_event ev) monitors
  in
  let prev_decided = Array.make n None in
  let next_id = ref 0 in
  let pending = Array.make n [] in
  (* [pending.(p)] accumulates (reversed) the (id, envelope) pairs to
     deliver to [p] at the start of the next slot. Envelope ids are assigned
     in post order, so ids increase monotonically along the trace and a
     message's id is always smaller than any message it causally feeds. *)
  let inbox_ids = Array.make n [] in
  (* [inbox_ids.(p)] — ids of the messages delivered to [p] this slot, in
     inbox order; the provenance [parents] of anything [p] emits now. *)
  let delayed = Hashtbl.create 8 in
  (* [delayed] buckets messages a [Faults.Delayed] verdict postponed, keyed
     by delivery slot. Kept apart from [pending] so the reliable path never
     touches it. Buckets past the horizon are simply never flushed: the
     message is lost to the end of time, which is what a late message in a
     terminated synchronous protocol is. *)
  let flush_delayed slot =
    match Hashtbl.find_opt delayed slot with
    | None -> ()
    | Some entries ->
      Hashtbl.remove delayed slot;
      (* Entries were consed (newest first); re-reverse and cons onto
         [pending] so after the final [List.rev] they land after the slot's
         punctual messages, in original send order. *)
      List.iter
        (fun (dst, entry) -> pending.(dst) <- entry :: pending.(dst))
        (List.rev entries)
  in
  let is_down p =
    match faults_rt with None -> false | Some rt -> Faults.is_down rt p
  in
  let deliver () =
    let order messages =
      (* Shuffling the (id, envelope) pairs draws exactly what shuffling the
         bare envelopes drew, so traces stay byte-identical across the id
         refactor for any fixed shuffle seed. *)
      match shuffle_rng with
      | None -> List.rev messages
      | Some rng -> Rng.shuffle rng messages
    in
    let pairs = Array.map order pending in
    Array.fill pending 0 n [];
    (* A down process receives nothing: whatever was addressed to it this
       slot is lost, exactly like a crashed machine's NIC. *)
    let pairs =
      if faults_rt = None then pairs
      else Array.mapi (fun p inbox -> if is_down p then [] else inbox) pairs
    in
    Array.iteri (fun p l -> inbox_ids.(p) <- List.map fst l) pairs;
    Array.map (List.map snd) pairs
  in
  let fate_for ~slot ~src ~dst ~seq =
    match faults_rt with
    | None -> None
    | Some rt -> Faults.fate ~seq rt ~slot ~src ~dst
  in
  (* [post_pre] consumes a send whose word count and fault fate were already
     computed — pure functions of the message, so shard workers precompute
     them off the main domain. Everything order-sensitive (the envelope id,
     the meter charge, trace emission, delayed buckets) happens here, on the
     main domain, in legacy post order. *)
  let post_pre ~slot ~src (msg, dst, word_count, fault) =
    if not (Pid.is_valid ~n dst) then
      invalid_arg
        (Printf.sprintf "Engine.run: p%d sent a message to unknown process %d"
           src dst);
    let envelope = { Envelope.src; dst; sent_at = slot; msg } in
    let byzantine = corrupted.(src) in
    let charged = Meter.charge meter ~byzantine ~src ~dst ~words:word_count in
    (match meters with
    | None -> ()
    | Some m ->
      Mewc_obs.Metrics.incr m.messages_c;
      Mewc_obs.Metrics.add m.words_c word_count;
      slot_words := !slot_words + word_count);
    let id = !next_id in
    incr next_id;
    if observing then
      emit
        (Trace.Send
           {
             id;
             envelope;
             byzantine_sender = byzantine;
             words = word_count;
             charged;
             parents = inbox_ids.(src);
           });
    match fault with
    | None -> pending.(dst) <- (id, envelope) :: pending.(dst)
    | Some fault ->
      (* The send happened — it was charged and traced above; only its
         delivery is tampered with here. *)
      mincr meters (fun m -> m.link_faults_c);
      if observing then emit (Trace.Link_fault { slot; id; src; dst; fault });
      (match fault with
      | Faults.Omitted | Faults.Partitioned | Faults.Dropped -> ()
      | Faults.Delayed k ->
        let at = slot + 1 + k in
        let prev = Option.value ~default:[] (Hashtbl.find_opt delayed at) in
        Hashtbl.replace delayed at ((dst, (id, envelope)) :: prev)
      | Faults.Duplicated ->
        pending.(dst) <- (id, envelope) :: (id, envelope) :: pending.(dst))
  in
  let post ~slot ~src ~seq (msg, dst) =
    post_pre ~slot ~src (msg, dst, words msg, fate_for ~slot ~src ~dst ~seq)
  in
  let step_results = Array.make n Skipped in
  for slot = 0 to horizon - 1 do
    Meter.begin_slot meter ~slot;
    mincr meters (fun m -> m.slots_c);
    if observing then emit (Trace.Slot_start slot);
    (match faults_rt with
    | None -> ()
    | Some rt ->
      List.iter
        (fun (pid, event) ->
          if not faulty_seen.(pid) then begin
            faulty_seen.(pid) <- true;
            faulty_order := pid :: !faulty_order
          end;
          if observing then emit (Trace.Process_fault { slot; pid; event }))
        (Faults.transitions rt ~slot);
      flush_delayed slot);
    let inboxes = timed Profile.Engine "engine.deliver" deliver in
    (* The defensive copies are lazy: honest/crash adversaries never force
       them, so the common sweep point pays nothing for the snapshot. *)
    let view outgoing =
      {
        Adversary.slot;
        cfg;
        states = lazy (Array.copy states);
        corrupted = lazy (Array.copy corrupted);
        inboxes = lazy (Array.copy inboxes);
        correct_outgoing = outgoing;
      }
    in
    (* 1. Adaptive corruption, before correct processes act this slot. *)
    let new_corruptions =
      timed Profile.Adversary "adversary.corrupt" (fun () ->
          adversary.Adversary.corrupt (view []))
    in
    List.iter
      (fun p ->
        if not (Pid.is_valid ~n p) then
          invalid_arg (Printf.sprintf "Engine.run: cannot corrupt unknown process %d" p);
        if not corrupted.(p) then begin
          if !corruption_count >= cfg.Config.t then
            invalid_arg
              (Printf.sprintf
                 "Engine.run: adversary %s exceeded the corruption budget t=%d"
                 adversary.Adversary.name cfg.Config.t);
          corrupted.(p) <- true;
          corruption_order := p :: !corruption_order;
          incr corruption_count;
          mincr meters (fun m -> m.corruptions_c);
          if observing then
            emit (Trace.Corruption { slot; pid = p; f = !corruption_count })
        end)
      new_corruptions;
    (* 2. Correct processes step. A down process neither steps nor sends; a
       corrupted one is the adversary's problem regardless of injected
       faults. *)
    let correct_sends = ref [] in
    timed Profile.Machine "machine.step" (fun () ->
        let active p = (not corrupted.(p)) && not (is_down p) in
        let step_one p =
          match machines.(p).Process.step ~slot ~inbox:inboxes.(p) states.(p) with
          | state', sends ->
            let pres =
              List.mapi
                (fun seq (msg, dst) ->
                  (msg, dst, words msg, fate_for ~slot ~src:p ~dst ~seq))
                sends
            in
            Stepped (state', pres)
          | exception e -> Failed e
        in
        match workers with
        | None ->
          for p = 0 to n - 1 do
            if active p then begin
              match step_one p with
              | Stepped (state', pres) ->
                states.(p) <- state';
                correct_sends := (p, pres) :: !correct_sends
              | Failed e -> raise e
              | Skipped -> ()
            end
          done
        | Some ws ->
          compute_steps ws ~n ~active ~step_one step_results;
          (* Merge in ascending pid order — the legacy step order — raising
             the lowest failing pid's exception, exactly as the sequential
             scan would surface it. *)
          for p = 0 to n - 1 do
            match step_results.(p) with
            | Skipped -> ()
            | Stepped (state', pres) ->
              step_results.(p) <- Skipped;
              states.(p) <- state';
              correct_sends := (p, pres) :: !correct_sends
            | Failed e -> raise e
          done);
    (* 2b. Decision transitions, for the observability stream. *)
    (match decided with
    | Some decided when observing ->
      for p = 0 to n - 1 do
        if not corrupted.(p) then begin
          match (prev_decided.(p), decided states.(p)) with
          | None, (Some value as d) ->
            prev_decided.(p) <- d;
            mincr meters (fun m -> m.decisions_c);
            emit
              (Trace.Decision { slot; pid = p; value; parents = inbox_ids.(p) })
          | Some v0, (Some value as d) when not (String.equal v0 value) ->
            (* A re-decision is a protocol bug; surface it to the monitors
               rather than silencing it here. *)
            prev_decided.(p) <- d;
            mincr meters (fun m -> m.decisions_c);
            emit
              (Trace.Decision { slot; pid = p; value; parents = inbox_ids.(p) })
          | _ -> ()
        end
      done
    | _ -> ());
    let correct_outgoing =
      List.concat_map
        (fun (src, pres) ->
          List.map
            (fun (msg, dst, _, _) -> { Envelope.src; dst; sent_at = slot; msg })
            pres)
        (List.rev !correct_sends)
    in
    (* 3. Byzantine processes step, seeing this slot's correct sends. *)
    let byz_view = view correct_outgoing in
    let byz_sends = ref [] in
    timed Profile.Adversary "adversary.byz_step" (fun () ->
        for p = 0 to n - 1 do
          if corrupted.(p) then
            byz_sends :=
              (p, adversary.Adversary.byz_step ~pid:p byz_view) :: !byz_sends
        done);
    (* 4. Post everything. *)
    timed Profile.Engine "engine.post" (fun () ->
        List.iter
          (fun (src, pres) -> List.iter (post_pre ~slot ~src) pres)
          (List.rev !correct_sends);
        (* Byzantine sends go through the unsplit [post]: their fates are
           derived from their own per-sender [seq] indices, disjoint from
           nothing — (slot, src) already isolates them, since a corrupted
           process never reaches the correct step phase. *)
        List.iter
          (fun (src, sends) ->
            List.iteri (fun seq m -> post ~slot ~src ~seq m) sends)
          (List.rev !byz_sends));
    (match meters with
    | None -> ()
    | Some m ->
      Mewc_obs.Metrics.observe m.slot_words_h !slot_words;
      slot_words := 0)
  done;
  List.iter (fun m -> m.Monitor.on_finish ~slots:horizon) monitors;
  {
    states;
    corrupted = List.rev !corruption_order;
    f = !corruption_count;
    faulty = List.rev !faulty_order;
    meter;
    trace;
    slots = horizon;
  }

(* The event-driven scheduler. Observationally equivalent to [run_legacy] —
   same seed, same options, same fault plan ⇒ byte-identical traces, meter
   series, decisions, and final states — but a slot's cost scales with the
   processes that actually have something to do (a delivery, or an armed
   [Process.wake] timer) instead of with [n]. The three load-bearing
   identities:

   - {e Delivery order and shuffle draws.} Only processes with pooled
     messages are visited, in ascending pid order. The legacy dense pass
     visits everyone in ascending pid order too, but shuffling an empty
     inbox draws nothing from the RNG, so skipping empty pools replays the
     exact shuffle stream. Pools are flat [Vec]s appended in post order;
     reading them newest-first reproduces the legacy cons lists.

   - {e Step order and event order.} Active processes step in ascending pid
     order (one dense scan with a cheap activity test), so send ids, meter
     charges, and trace events interleave exactly as under legacy. Skipped
     steps are no-ops by the [Process.wake] contract, so their absence is
     invisible to states and traces.

   - {e Provenance.} [inbox_ids] is maintained as a persistent array that
     is [[]] for every process without deliveries this slot — exactly what
     the legacy dense rebuild yields — so [parents] of sends (including
     byzantine sends and timer-driven sends) match byte for byte. *)
let run_event ~workers ~cfg ~options ~words ~horizon ~protocol ~adversary () =
  let {
    record_trace;
    shuffle_seed;
    monitors;
    decided;
    profile;
    faults;
    scheduler = _;
    shards = _;
    metrics;
  } =
    options
  in
  let meters = engine_meters_of metrics in
  let slot_words = ref 0 in
  let timed category name f =
    match profile with
    | None -> f ()
    | Some p -> Profile.span p ~category name f
  in
  let n = cfg.Config.n in
  let shuffle_rng = Option.map Rng.create shuffle_seed in
  let faults_rt =
    if Faults.is_none faults then None else Some (Faults.start ~n faults)
  in
  let faulty_seen = Array.make n false in
  let faulty_order = ref [] in
  let machines = Array.init n protocol in
  let states = Array.map (fun m -> m.Process.init) machines in
  let corrupted = Array.make n false in
  let corruption_order = ref [] in
  let corruption_count = ref 0 in
  let meter = Meter.create () in
  let trace = Trace.create ~enabled:record_trace in
  let observing = record_trace || monitors <> [] in
  let emit ev =
    Trace.record trace ev;
    List.iter (fun m -> m.Monitor.on_event ev) monitors
  in
  let prev_decided = Array.make n None in
  let next_id = ref 0 in
  (* Flat per-process pools, appended in post order (oldest first) and
     reused slot after slot; [Vec.to_rev_list] recovers the legacy
     newest-first cons list. *)
  let pools = Array.init n (fun _ -> Vec.create ()) in
  (* The processes whose pool is nonempty — the only ones the next delivery
     pass must visit. Collected unsorted with a flag for O(1) dedup, sorted
     ascending at delivery time. *)
  let dirty_flag = Array.make n false in
  let dirty = Vec.create () in
  let mark_dirty p =
    if not dirty_flag.(p) then begin
      dirty_flag.(p) <- true;
      Vec.push dirty p
    end
  in
  (* Persistent inbox arrays: entries are [[]] except for this slot's
     delivered processes, and are reset at slot end. [post] reads
     [inbox_ids.(src)] for every sender — including timer-woken and
     byzantine ones, whose provenance must be empty exactly as under the
     legacy dense rebuild. *)
  let inboxes = Array.make n [] in
  let inbox_ids = Array.make n [] in
  let delayed = Hashtbl.create 8 in
  let flush_delayed slot =
    match Hashtbl.find_opt delayed slot with
    | None -> ()
    | Some entries ->
      Hashtbl.remove delayed slot;
      (* Oldest-first appends at the pool's end: reading newest-first then
         yields flushed messages (newest first) ahead of the slot's punctual
         ones — the legacy cons order. *)
      List.iter
        (fun (dst, entry) ->
          Vec.push pools.(dst) entry;
          mark_dirty dst)
        (List.rev entries)
  in
  let is_down p =
    match faults_rt with None -> false | Some rt -> Faults.is_down rt p
  in
  let order messages =
    match shuffle_rng with
    | None -> List.rev messages
    | Some rng -> Rng.shuffle rng messages
  in
  let fate_for ~slot ~src ~dst ~seq =
    match faults_rt with
    | None -> None
    | Some rt -> Faults.fate ~seq rt ~slot ~src ~dst
  in
  (* See [run_legacy]'s [post_pre]: the word count and fate arrive
     precomputed (pure, shard-safe); the order-sensitive effects happen
     here in post order. *)
  let post_pre ~slot ~src (msg, dst, word_count, fault) =
    if not (Pid.is_valid ~n dst) then
      invalid_arg
        (Printf.sprintf "Engine.run: p%d sent a message to unknown process %d"
           src dst);
    let envelope = { Envelope.src; dst; sent_at = slot; msg } in
    let byzantine = corrupted.(src) in
    let charged = Meter.charge meter ~byzantine ~src ~dst ~words:word_count in
    (match meters with
    | None -> ()
    | Some m ->
      Mewc_obs.Metrics.incr m.messages_c;
      Mewc_obs.Metrics.add m.words_c word_count;
      slot_words := !slot_words + word_count);
    let id = !next_id in
    incr next_id;
    if observing then
      emit
        (Trace.Send
           {
             id;
             envelope;
             byzantine_sender = byzantine;
             words = word_count;
             charged;
             parents = inbox_ids.(src);
           });
    match fault with
    | None ->
      Vec.push pools.(dst) (id, envelope);
      mark_dirty dst
    | Some fault ->
      mincr meters (fun m -> m.link_faults_c);
      if observing then emit (Trace.Link_fault { slot; id; src; dst; fault });
      (match fault with
      | Faults.Omitted | Faults.Partitioned | Faults.Dropped -> ()
      | Faults.Delayed k ->
        let at = slot + 1 + k in
        let prev = Option.value ~default:[] (Hashtbl.find_opt delayed at) in
        Hashtbl.replace delayed at ((dst, (id, envelope)) :: prev)
      | Faults.Duplicated ->
        Vec.push pools.(dst) (id, envelope);
        Vec.push pools.(dst) (id, envelope);
        mark_dirty dst)
  in
  let post ~slot ~src ~seq (msg, dst) =
    post_pre ~slot ~src (msg, dst, words msg, fate_for ~slot ~src ~dst ~seq)
  in
  let step_results = Array.make n Skipped in
  let stepped = Vec.create () in
  for slot = 0 to horizon - 1 do
    Meter.begin_slot meter ~slot;
    mincr meters (fun m -> m.slots_c);
    if observing then emit (Trace.Slot_start slot);
    (match faults_rt with
    | None -> ()
    | Some rt ->
      List.iter
        (fun (pid, event) ->
          if not faulty_seen.(pid) then begin
            faulty_seen.(pid) <- true;
            faulty_order := pid :: !faulty_order
          end;
          if observing then emit (Trace.Process_fault { slot; pid; event }))
        (Faults.transitions rt ~slot);
      flush_delayed slot);
    let delivered =
      timed Profile.Engine "engine.deliver" (fun () ->
          let ds = Vec.sorted_ints dirty in
          Vec.clear dirty;
          Array.iter (fun p -> dirty_flag.(p) <- false) ds;
          Array.iter
            (fun p ->
              (* Shuffle draws happen for every nonempty pool — even a down
                 process's, whose inbox legacy blanks only after ordering
                 it. *)
              let pairs = order (Vec.to_rev_list pools.(p)) in
              Vec.clear pools.(p);
              if not (is_down p) then begin
                inbox_ids.(p) <- List.map fst pairs;
                inboxes.(p) <- List.map snd pairs
              end)
            ds;
          ds)
    in
    let view outgoing =
      {
        Adversary.slot;
        cfg;
        states = lazy (Array.copy states);
        corrupted = lazy (Array.copy corrupted);
        inboxes = lazy (Array.copy inboxes);
        correct_outgoing = outgoing;
      }
    in
    (* 1. Adaptive corruption, before correct processes act this slot. *)
    let new_corruptions =
      timed Profile.Adversary "adversary.corrupt" (fun () ->
          adversary.Adversary.corrupt (view []))
    in
    List.iter
      (fun p ->
        if not (Pid.is_valid ~n p) then
          invalid_arg (Printf.sprintf "Engine.run: cannot corrupt unknown process %d" p);
        if not corrupted.(p) then begin
          if !corruption_count >= cfg.Config.t then
            invalid_arg
              (Printf.sprintf
                 "Engine.run: adversary %s exceeded the corruption budget t=%d"
                 adversary.Adversary.name cfg.Config.t);
          corrupted.(p) <- true;
          corruption_order := p :: !corruption_order;
          incr corruption_count;
          mincr meters (fun m -> m.corruptions_c);
          if observing then
            emit (Trace.Corruption { slot; pid = p; f = !corruption_count })
        end)
      new_corruptions;
    (* 2. Active correct processes step: a delivery or an armed wake timer.
       The dense scan keeps the legacy ascending-pid step order; the skipped
       processes' steps are no-ops by the [Process.wake] contract. *)
    let correct_sends = ref [] in
    Vec.clear stepped;
    timed Profile.Machine "machine.step" (fun () ->
        let active p =
          (not corrupted.(p))
          && (not (is_down p))
          && (inboxes.(p) <> []
             ||
             match machines.(p).Process.wake with
             | None -> true
             | Some wake -> wake ~slot states.(p))
        in
        let step_one p =
          match machines.(p).Process.step ~slot ~inbox:inboxes.(p) states.(p) with
          | state', sends ->
            let pres =
              List.mapi
                (fun seq (msg, dst) ->
                  (msg, dst, words msg, fate_for ~slot ~src:p ~dst ~seq))
                sends
            in
            Stepped (state', pres)
          | exception e -> Failed e
        in
        match workers with
        | None ->
          for p = 0 to n - 1 do
            if active p then begin
              match step_one p with
              | Stepped (state', pres) ->
                states.(p) <- state';
                correct_sends := (p, pres) :: !correct_sends;
                Vec.push stepped p
              | Failed e -> raise e
              | Skipped -> ()
            end
          done
        | Some ws ->
          (* The activity predicate runs inside the workers: [wake] only
             reads the process's own state, so it shards like [step]. *)
          compute_steps ws ~n ~active ~step_one step_results;
          for p = 0 to n - 1 do
            match step_results.(p) with
            | Skipped -> ()
            | Stepped (state', pres) ->
              step_results.(p) <- Skipped;
              states.(p) <- state';
              correct_sends := (p, pres) :: !correct_sends;
              Vec.push stepped p
            | Failed e -> raise e
          done);
    (* 2b. Decision transitions. Slot 0 scans everyone (an init state may
       already be decided); afterwards only stepped processes can have
       transitioned, so the scan follows the stepped set — in the same
       ascending pid order as the legacy dense scan. *)
    (match decided with
    | Some decided when observing ->
      let scan p =
        if not corrupted.(p) then begin
          match (prev_decided.(p), decided states.(p)) with
          | None, (Some value as d) ->
            prev_decided.(p) <- d;
            mincr meters (fun m -> m.decisions_c);
            emit
              (Trace.Decision { slot; pid = p; value; parents = inbox_ids.(p) })
          | Some v0, (Some value as d) when not (String.equal v0 value) ->
            prev_decided.(p) <- d;
            mincr meters (fun m -> m.decisions_c);
            emit
              (Trace.Decision { slot; pid = p; value; parents = inbox_ids.(p) })
          | _ -> ()
        end
      in
      if slot = 0 then
        for p = 0 to n - 1 do
          scan p
        done
      else Vec.iter scan stepped
    | _ -> ());
    let correct_outgoing =
      List.concat_map
        (fun (src, pres) ->
          List.map
            (fun (msg, dst, _, _) -> { Envelope.src; dst; sent_at = slot; msg })
            pres)
        (List.rev !correct_sends)
    in
    (* 3. Byzantine processes step, seeing this slot's correct sends. *)
    let byz_view = view correct_outgoing in
    let byz_sends = ref [] in
    timed Profile.Adversary "adversary.byz_step" (fun () ->
        for p = 0 to n - 1 do
          if corrupted.(p) then
            byz_sends :=
              (p, adversary.Adversary.byz_step ~pid:p byz_view) :: !byz_sends
        done);
    (* 4. Post everything. *)
    timed Profile.Engine "engine.post" (fun () ->
        List.iter
          (fun (src, pres) -> List.iter (post_pre ~slot ~src) pres)
          (List.rev !correct_sends);
        (* Byzantine sends go through the unsplit [post]: their fates are
           derived from their own per-sender [seq] indices, disjoint from
           nothing — (slot, src) already isolates them, since a corrupted
           process never reaches the correct step phase. *)
        List.iter
          (fun (src, sends) ->
            List.iteri (fun seq m -> post ~slot ~src ~seq m) sends)
          (List.rev !byz_sends));
    (* Restore the all-empty inbox invariant for the next slot. *)
    Array.iter
      (fun p ->
        inboxes.(p) <- [];
        inbox_ids.(p) <- [])
      delivered;
    (match meters with
    | None -> ()
    | Some m ->
      Mewc_obs.Metrics.observe m.slot_words_h !slot_words;
      slot_words := 0)
  done;
  List.iter (fun m -> m.Monitor.on_finish ~slots:horizon) monitors;
  {
    states;
    corrupted = List.rev !corruption_order;
    f = !corruption_count;
    faulty = List.rev !faulty_order;
    meter;
    trace;
    slots = horizon;
  }

let run ~cfg ?(options = default_options) ~words ~horizon ~protocol ~adversary
    () =
  if options.shards < 1 then
    invalid_arg
      (Printf.sprintf "Engine.run: shards must be >= 1 (got %d)" options.shards);
  if options.shards > 1 && options.profile <> None then
    invalid_arg "Engine.run: profiling requires shards = 1";
  let go workers =
    match options.scheduler with
    | `Legacy ->
      run_legacy ~workers ~cfg ~options ~words ~horizon ~protocol ~adversary ()
    | `Event_driven ->
      run_event ~workers ~cfg ~options ~words ~horizon ~protocol ~adversary ()
  in
  if options.shards = 1 then go None
  else
    (* One worker set per run: the spawn cost is paid once and amortized
       over every slot's barrier round. *)
    Pool.with_workers ~jobs:options.shards (fun ws -> go (Some ws))
