open Mewc_prelude

type ('s, 'm) outcome = {
  states : 's array;
  corrupted : Pid.t list;
  f : int;
  meter : Meter.t;
  trace : 'm Trace.t;
  slots : int;
}

type ('s, 'm) options = {
  record_trace : bool;
  shuffle_seed : int64 option;
  monitors : 'm Monitor.t list;
  decided : ('s -> string option) option;
}

let default_options =
  { record_trace = false; shuffle_seed = None; monitors = []; decided = None }

let run ~cfg ?(options = default_options) ~words ~horizon ~protocol ~adversary
    () =
  let { record_trace; shuffle_seed; monitors; decided } = options in
  let n = cfg.Config.n in
  let shuffle_rng = Option.map Rng.create shuffle_seed in
  let machines = Array.init n protocol in
  let states = Array.map (fun m -> m.Process.init) machines in
  let corrupted = Array.make n false in
  let corruption_order = ref [] in
  let corruption_count = ref 0 in
  let meter = Meter.create () in
  let trace = Trace.create ~enabled:record_trace in
  (* Events are only materialized when someone is looking: a recording trace
     or at least one monitor. The meter's per-slot series is always on. *)
  let observing = record_trace || monitors <> [] in
  let emit ev =
    Trace.record trace ev;
    List.iter (fun m -> m.Monitor.on_event ev) monitors
  in
  let prev_decided = Array.make n None in
  let pending = Array.make n [] in
  (* [pending.(p)] accumulates (reversed) the messages to deliver to [p] at
     the start of the next slot. *)
  let deliver () =
    let order messages =
      match shuffle_rng with
      | None -> List.rev messages
      | Some rng -> Rng.shuffle rng messages
    in
    let inboxes = Array.map order pending in
    Array.fill pending 0 n [];
    inboxes
  in
  let post ~slot ~src (msg, dst) =
    if not (Pid.is_valid ~n dst) then
      invalid_arg
        (Printf.sprintf "Engine.run: p%d sent a message to unknown process %d"
           src dst);
    let envelope = { Envelope.src; dst; sent_at = slot; msg } in
    let byzantine = corrupted.(src) in
    let word_count = words msg in
    let charged = Meter.charge meter ~byzantine ~src ~dst ~words:word_count in
    if observing then
      emit
        (Trace.Send
           { envelope; byzantine_sender = byzantine; words = word_count; charged });
    pending.(dst) <- envelope :: pending.(dst)
  in
  for slot = 0 to horizon - 1 do
    Meter.begin_slot meter ~slot;
    if observing then emit (Trace.Slot_start slot);
    let inboxes = deliver () in
    (* The defensive copies are lazy: honest/crash adversaries never force
       them, so the common sweep point pays nothing for the snapshot. *)
    let view outgoing =
      {
        Adversary.slot;
        cfg;
        states = lazy (Array.copy states);
        corrupted = lazy (Array.copy corrupted);
        inboxes = lazy (Array.copy inboxes);
        correct_outgoing = outgoing;
      }
    in
    (* 1. Adaptive corruption, before correct processes act this slot. *)
    let new_corruptions = adversary.Adversary.corrupt (view []) in
    List.iter
      (fun p ->
        if not (Pid.is_valid ~n p) then
          invalid_arg (Printf.sprintf "Engine.run: cannot corrupt unknown process %d" p);
        if not corrupted.(p) then begin
          if !corruption_count >= cfg.Config.t then
            invalid_arg
              (Printf.sprintf
                 "Engine.run: adversary %s exceeded the corruption budget t=%d"
                 adversary.Adversary.name cfg.Config.t);
          corrupted.(p) <- true;
          corruption_order := p :: !corruption_order;
          incr corruption_count;
          if observing then
            emit (Trace.Corruption { slot; pid = p; f = !corruption_count })
        end)
      new_corruptions;
    (* 2. Correct processes step. *)
    let correct_sends = ref [] in
    for p = 0 to n - 1 do
      if not corrupted.(p) then begin
        let state', sends =
          machines.(p).Process.step ~slot ~inbox:inboxes.(p) states.(p)
        in
        states.(p) <- state';
        correct_sends := (p, sends) :: !correct_sends
      end
    done;
    (* 2b. Decision transitions, for the observability stream. *)
    (match decided with
    | Some decided when observing ->
      for p = 0 to n - 1 do
        if not corrupted.(p) then begin
          match (prev_decided.(p), decided states.(p)) with
          | None, (Some value as d) ->
            prev_decided.(p) <- d;
            emit (Trace.Decision { slot; pid = p; value })
          | Some v0, (Some value as d) when not (String.equal v0 value) ->
            (* A re-decision is a protocol bug; surface it to the monitors
               rather than silencing it here. *)
            prev_decided.(p) <- d;
            emit (Trace.Decision { slot; pid = p; value })
          | _ -> ()
        end
      done
    | _ -> ());
    let correct_outgoing =
      List.concat_map
        (fun (src, sends) ->
          List.map
            (fun (msg, dst) -> { Envelope.src; dst; sent_at = slot; msg })
            sends)
        (List.rev !correct_sends)
    in
    (* 3. Byzantine processes step, seeing this slot's correct sends. *)
    let byz_view = view correct_outgoing in
    let byz_sends = ref [] in
    for p = 0 to n - 1 do
      if corrupted.(p) then
        byz_sends := (p, adversary.Adversary.byz_step ~pid:p byz_view) :: !byz_sends
    done;
    (* 4. Post everything. *)
    List.iter
      (fun (src, sends) -> List.iter (post ~slot ~src) sends)
      (List.rev !correct_sends);
    List.iter
      (fun (src, sends) -> List.iter (post ~slot ~src) sends)
      (List.rev !byz_sends)
  done;
  List.iter (fun m -> m.Monitor.on_finish ~slots:horizon) monitors;
  {
    states;
    corrupted = List.rev !corruption_order;
    f = !corruption_count;
    meter;
    trace;
    slots = horizon;
  }
