open Mewc_crypto
open Mewc_sim

module Make (V : Value.S) = struct
  module P = Echo_phase_king.Make (V)

  type outcome = {
    decisions : V.t option array;
    corrupted : Mewc_prelude.Pid.t list;
    f : int;
    words : int;
    messages : int;
    signatures : int;
    slots : int;
  }

  let decision_of_state = P.decision

  let run ~cfg ?(seed = 1L) ?(round_len = 1) ?(record_trace = false)
      ?(scheduler = `Legacy) ~inputs ~adversary () =
    let n = cfg.Config.n in
    if Array.length inputs <> n then
      invalid_arg "Standalone.run: need one input per process";
    let pki, secrets = Pki.setup ~seed ~n () in
    let protocol pid =
      {
        Process.init =
          P.init ~cfg ~pki ~secret:secrets.(pid) ~pid ~input:inputs.(pid)
            ~start_slot:0 ~round_len;
        step = (fun ~slot ~inbox st -> P.step ~slot ~inbox st);
        wake = Some (fun ~slot st -> P.wake ~slot st);
      }
    in
    let adversary = adversary ~pki ~secrets in
    let horizon = P.horizon cfg ~round_len in
    let res =
      Engine.run ~cfg
        ~options:{ Engine.default_options with record_trace; scheduler }
        ~words:P.words ~horizon ~protocol ~adversary ()
    in
    {
      decisions = Array.map P.decision res.Engine.states;
      corrupted = res.Engine.corrupted;
      f = res.Engine.f;
      words = Meter.correct_words res.Engine.meter;
      messages = Meter.correct_messages res.Engine.meter;
      signatures = Pki.signatures_created pki;
      slots = res.Engine.slots;
    }
end
