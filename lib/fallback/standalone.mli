(** Run {!Echo_phase_king} as a standalone strong BA instance.

    Used directly by the Table-1 "Strong BA, multi-valued" experiments and
    by tests; the weak BA embeds the protocol through its own message type
    instead. *)

module Make (V : Mewc_sim.Value.S) : sig
  module P : sig
    type msg
    type state
  end

  type outcome = {
    decisions : V.t option array;
        (** per process; [None] for processes corrupted before deciding *)
    corrupted : Mewc_prelude.Pid.t list;
    f : int;
    words : int;  (** words sent by correct processes *)
    messages : int;
    signatures : int;  (** signatures created during the run *)
    slots : int;
  }

  val run :
    cfg:Mewc_sim.Config.t ->
    ?seed:int64 ->
    ?round_len:int ->
    ?record_trace:bool ->
    ?scheduler:Mewc_sim.Engine.scheduler ->
    inputs:V.t array ->
    adversary:(P.state, P.msg) Mewc_sim.Adversary.factory ->
    unit ->
    outcome

  val decision_of_state : P.state -> V.t option
end
