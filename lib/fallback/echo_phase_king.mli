(** [A_fallback]: synchronous strong Byzantine Agreement with optimal
    resilience [n = 2t + 1] — the black box the paper instantiates with
    Momose–Ren's DISC'21 protocol (see DESIGN.md for the substitution note).

    The protocol provides exactly the three properties the paper relies on
    (§6, Lemmas 18–22): {b agreement}, {b termination} within a statically
    known number of rounds, and {b strong unanimity} (if all correct
    processes propose the same value, that value is decided).

    {2 Construction}

    Round 0 is an all-to-all exchange of signed inputs; a value carrying
    [t + 1] distinct input signatures in some process's view is {e popular}
    there and can be certified with an [(t+1, n)]-threshold input
    certificate. When all correct processes propose [v], every correct view
    has popular value exactly [v] and no other value can ever be certified —
    this pins unanimity.

    Then [t + 1] phases with rotating kings. Each phase has six rounds:

    + {b status}: everyone reports its lock and input certificate to the king;
    + {b propose}: the king signs and broadcasts a justified proposal
      (highest reported lock, else an input certificate, else its own value
      unjustified);
    + {b echo}: everyone forwards the king proposals it received (at most
      two distinct ones — enough to expose equivocation to all);
    + {b vote}: a process votes iff it saw {e exactly one} proposal value
      from this king and the justification dominates its own lock — so two
      correct processes can never vote for different values in one phase;
    + {b commit}: the king batches [t + 1] votes into a commit certificate
      with level = phase number and broadcasts it; receivers re-lock;
    + {b ack}: lockers broadcast signed acks carrying the commit
      certificate; [t + 1] acks batch into a decide certificate.

    A process that decides broadcasts the decide certificate once and goes
    quiescent, so phases after the first completed correct-king phase are
    silent: word complexity is O(n²·(k+1)) where [k] is the number of kings
    tried before a correct king completes.

    {2 Skewed starts}

    When entered from the weak BA's fallback path, processes may start up to
    δ apart; the paper handles this by running rounds of δ' = 2δ (Lemma 18).
    Accordingly every message is tagged with its round number, receivers
    buffer by round and act on round [r] messages when their local clock
    enters round [r + 1]; with [round_len >= skew + 1] every correct round-r
    message is ingested on time and late (Byzantine-timed) messages are
    ignored. *)

module Make (V : Mewc_sim.Value.S) : sig
  type justification =
    | Unjustified
    | Input_cert of Mewc_crypto.Certificate.t
    | Lock_just of { level : int; qc : Mewc_crypto.Certificate.t }

  type proposal = {
    p_phase : int;
    p_value : V.t;
    p_just : justification;
    p_king_sig : Mewc_crypto.Pki.Sig.t;
    p_just_valid : bool;
  }

  (** Public wire format, so Byzantine test strategies can forge messages;
      unforgeability lives in the signatures, not the constructors. Every
      message carries the protocol round it belongs to ([round]), which
      receivers use for buffering under skewed starts. *)
  type body =
    | Input of { value : V.t; share : Mewc_crypto.Pki.Sig.t }
    | Status of {
        phase : int;
        lock : (int * V.t * Mewc_crypto.Certificate.t) option;
        input_qc : (V.t * Mewc_crypto.Certificate.t) option;
      }
    | Propose of proposal
    | Echo of proposal
    | Vote of { phase : int; value : V.t; share : Mewc_crypto.Pki.Sig.t }
    | Commit of { phase : int; value : V.t; qc : Mewc_crypto.Certificate.t }
    | Ack of {
        phase : int;
        value : V.t;
        share : Mewc_crypto.Pki.Sig.t;
        qc : Mewc_crypto.Certificate.t;
      }
    | Decided of { phase : int; value : V.t; qc : Mewc_crypto.Certificate.t }

  type msg = { round : int; body : body }
  type state

  val input_purpose : string
  val propose_purpose : string
  val commit_purpose : string
  val ack_purpose : string

  val phased_payload : int -> V.t -> string

  val base : int -> int
  (** [base j] is the first round of phase [j] (its status round). *)

  val words : msg -> int

  val init :
    cfg:Mewc_sim.Config.t ->
    pki:Mewc_crypto.Pki.t ->
    secret:Mewc_crypto.Pki.Secret.t ->
    pid:Mewc_prelude.Pid.t ->
    input:V.t ->
    start_slot:int ->
    round_len:int ->
    state
  (** [round_len] is δ' in slots: 1 standalone, 2 when started with skew. *)

  val step :
    slot:int ->
    inbox:msg Mewc_sim.Envelope.t list ->
    state ->
    state * (msg * Mewc_prelude.Pid.t) list

  val decision : state -> V.t option

  val wake : slot:int -> state -> bool
  (** The {!Mewc_sim.Process.t} wake timer: [true] exactly on this process's
      round boundaries while rounds remain. Off-boundary (and post-protocol)
      steps with an empty inbox are no-ops, so the event-driven scheduler
      may skip them. *)

  val decided_at : state -> int option
  (** Slot at which this process decided (latency metric). *)

  val rounds : Mewc_sim.Config.t -> int
  (** Number of protocol rounds until every correct process has decided. *)

  val horizon : Mewc_sim.Config.t -> round_len:int -> int
  (** Slots (from [start_slot] of the earliest process) after which every
      correct process has decided, accounting for 1 slot of start skew. *)

  val pp_msg : Format.formatter -> msg -> unit

  (** {2 Introspection for tests and experiments} *)

  val locked_value : state -> V.t option
  val popular_value : state -> V.t option
end
