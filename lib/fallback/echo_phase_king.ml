open Mewc_prelude
open Mewc_crypto
open Mewc_sim

module Make (V : Value.S) = struct
  (* Certificate purposes. Distinct tags keep shares formed here from being
     replayed into any other protocol layer, and the phase baked into each
     payload keeps them from being replayed across phases. *)
  let input_purpose = "fb-input"
  let propose_purpose = "fb-propose"
  let commit_purpose = "fb-commit"
  let ack_purpose = "fb-ack"
  let phased_payload phase v = Printf.sprintf "%d|%s" phase (V.encode v)

  type justification =
    | Unjustified
    | Input_cert of Certificate.t
    | Lock_just of { level : int; qc : Certificate.t }

  type proposal = {
    p_phase : int;
    p_value : V.t;
    p_just : justification;
    p_king_sig : Pki.Sig.t;
    p_just_valid : bool;
        (* certificates inside the justification verified; voter-specific
           lock-level dominance is checked at vote time *)
  }

  type body =
    | Input of { value : V.t; share : Pki.Sig.t }
    | Status of {
        phase : int;
        lock : (int * V.t * Certificate.t) option;
        input_qc : (V.t * Certificate.t) option;
      }
    | Propose of proposal
    | Echo of proposal
    | Vote of { phase : int; value : V.t; share : Pki.Sig.t }
    | Commit of { phase : int; value : V.t; qc : Certificate.t }
    | Ack of { phase : int; value : V.t; share : Pki.Sig.t; qc : Certificate.t }
    | Decided of { phase : int; value : V.t; qc : Certificate.t }

  type msg = { round : int; body : body }

  let just_words = function
    | Unjustified -> 0
    | Input_cert _ -> 1
    | Lock_just _ -> 2

  let words { body; _ } =
    match body with
    | Input _ -> 2
    | Status { lock; input_qc; _ } ->
      1
      + (match lock with Some _ -> 3 | None -> 0)
      + (match input_qc with Some _ -> 2 | None -> 0)
    | Propose p | Echo p -> 2 + just_words p.p_just
    | Vote _ -> 2
    | Commit _ -> 2
    | Ack _ -> 3
    | Decided _ -> 2

  let pp_body fmt = function
    | Input { value; _ } -> Format.fprintf fmt "input(%a)" V.pp value
    | Status { phase; lock; input_qc } ->
      Format.fprintf fmt "status(j=%d, lock=%s, qc=%s)" phase
        (match lock with Some (l, _, _) -> string_of_int l | None -> "-")
        (match input_qc with Some _ -> "y" | None -> "-")
    | Propose p -> Format.fprintf fmt "propose(j=%d, %a)" p.p_phase V.pp p.p_value
    | Echo p -> Format.fprintf fmt "echo(j=%d, %a)" p.p_phase V.pp p.p_value
    | Vote { phase; value; _ } -> Format.fprintf fmt "vote(j=%d, %a)" phase V.pp value
    | Commit { phase; value; _ } -> Format.fprintf fmt "commit(j=%d, %a)" phase V.pp value
    | Ack { phase; value; _ } -> Format.fprintf fmt "ack(j=%d, %a)" phase V.pp value
    | Decided { phase; value; _ } ->
      Format.fprintf fmt "decided(j=%d, %a)" phase V.pp value

  let pp_msg fmt { round; body } = Format.fprintf fmt "r%d:%a" round pp_body body

  (* Per-phase working memory, bounded against Byzantine spam. *)
  type scratch = {
    mutable king_locks : (int * V.t * Certificate.t) list;
    mutable king_input_qcs : (V.t * Certificate.t) list;
    mutable proposals : proposal list;
    mutable votes : (V.t * Certificate.Tally.t) list;
    mutable commit_cert : (V.t * Certificate.t) option;
    mutable acks : (V.t * Certificate.Tally.t) list;
  }

  let fresh_scratch () =
    {
      king_locks = [];
      king_input_qcs = [];
      proposals = [];
      votes = [];
      commit_cert = None;
      acks = [];
    }

  type state = {
    cfg : Config.t;
    pki : Pki.t;
    secret : Pki.Secret.t;
    pid : Pid.t;
    start_slot : int;
    round_len : int;
    input : V.t;
    buf : (int, (Pid.t * body) list) Hashtbl.t;
    scratch : (int, scratch) Hashtbl.t;
    mutable consumed : int;  (* rounds strictly below have been ingested *)
    mutable popular : V.t option;
    mutable my_input_qc : (V.t * Certificate.t) option;
    mutable lock : (int * V.t * Certificate.t) option;
    mutable decision : V.t option;
    mutable decide_qc : (int * V.t * Certificate.t) option;
    mutable announced : bool;
    mutable decided_at : int option;  (* slot at which [decision] was set *)
  }

  let phases cfg = cfg.Config.t + 1
  let king phase = fun cfg -> Pid.rotating_leader ~n:cfg.Config.n ~phase

  (* Round layout: round 0 = input exchange; phase j (1-based) spans rounds
     base(j) .. base(j)+5 = status, propose, echo, vote, commit, ack. *)
  let base j = 1 + ((j - 1) * 6)
  let rounds cfg = 1 + (6 * phases cfg) + 2
  let horizon cfg ~round_len = (rounds cfg * round_len) + 2

  let scratch_of st j =
    match Hashtbl.find_opt st.scratch j with
    | Some s -> s
    | None ->
      let s = fresh_scratch () in
      Hashtbl.add st.scratch j s;
      s

  let init ~cfg ~pki ~secret ~pid ~input ~start_slot ~round_len =
    if round_len < 1 then invalid_arg "Echo_phase_king.init: round_len >= 1";
    Composition.note ~user:"A-fallback (echo-phase-king)"
      ~uses:"threshold signatures";
    {
      cfg;
      pki;
      secret;
      pid;
      start_slot;
      round_len;
      input;
      buf = Hashtbl.create 64;
      scratch = Hashtbl.create 16;
      consumed = 0;
      popular = None;
      my_input_qc = None;
      lock = None;
      decision = None;
      decide_qc = None;
      announced = false;
      decided_at = None;
    }

  let decision st = st.decision
  let decided_at st = st.decided_at
  let locked_value st = Option.map (fun (_, v, _) -> v) st.lock
  let popular_value st = st.popular

  let quorum st = Config.small_quorum st.cfg (* t + 1 *)

  let decide st ~phase ~value ~qc =
    if st.decision = None then begin
      st.decision <- Some value;
      st.decide_qc <- Some (phase, value, qc)
    end

  (* --- ingestion of one buffered round ------------------------------- *)

  let ingest_inputs st entries =
    (* Tally signed round-0 inputs; discard equivocating signers; a value
       with t+1 distinct signers is popular and yields an input QC. *)
    let per_signer : (Pid.t, (V.t * Pki.Sig.t) list) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (_src, body) ->
        match body with
        | Input { value; share } ->
          let payload = V.encode value in
          if
            Pki.verify st.pki share
              ~msg:(Certificate.signed_message ~purpose:input_purpose ~payload)
          then begin
            let signer = Pki.Sig.signer share in
            let prev = Option.value ~default:[] (Hashtbl.find_opt per_signer signer) in
            if not (List.exists (fun (v, _) -> V.equal v value) prev) then
              Hashtbl.replace per_signer signer ((value, share) :: prev)
          end
        | _ -> ())
      entries;
    let per_value : (string, V.t * Pki.Sig.t list) Hashtbl.t = Hashtbl.create 16 in
    Hashtbl.iter
      (fun _signer entries ->
        match entries with
        | [ (v, share) ] ->
          (* signers with two or more distinct signed inputs are provably
             Byzantine: ignore them *)
          let key = V.encode v in
          let _, shares =
            Option.value ~default:(v, []) (Hashtbl.find_opt per_value key)
          in
          Hashtbl.replace per_value key (v, share :: shares)
        | _ -> ())
      per_signer;
    Hashtbl.iter
      (fun _key (v, shares) ->
        if List.length shares >= quorum st && st.my_input_qc = None then
          match
            Certificate.make st.pki ~k:(quorum st) ~purpose:input_purpose
              ~payload:(V.encode v) shares
          with
          | Some qc ->
            st.popular <- Some v;
            st.my_input_qc <- Some (v, qc)
          | None -> ())
      per_value

  let verify_commit_qc st ~level ~value qc =
    Certificate.verify_as st.pki qc ~k:(quorum st) ~purpose:commit_purpose
    && String.equal (Certificate.payload qc) (phased_payload level value)

  let verify_input_qc st ~value qc =
    Certificate.verify_as st.pki qc ~k:(quorum st) ~purpose:input_purpose
    && String.equal (Certificate.payload qc) (V.encode value)

  let relock st ~level ~value ~qc =
    let current = match st.lock with Some (l, _, _) -> l | None -> 0 in
    if level >= current then st.lock <- Some (level, value, qc)

  let validate_just st (p : proposal) =
    match p.p_just with
    | Unjustified -> true
    | Input_cert qc -> verify_input_qc st ~value:p.p_value qc
    | Lock_just { level; qc } ->
      level >= 1 && level <= phases st.cfg
      && verify_commit_qc st ~level ~value:p.p_value qc

  let add_proposal st j (p : proposal) =
    let sc = scratch_of st j in
    let distinct_values =
      List.sort_uniq V.compare (List.map (fun q -> q.p_value) sc.proposals)
    in
    let known v = List.exists (V.equal v) distinct_values in
    let copies_of v =
      List.length (List.filter (fun q -> V.equal q.p_value v) sc.proposals)
    in
    (* Bound Byzantine spam: at most 3 distinct values (2 already prove
       equivocation) and 3 copies per value (different justifications). *)
    if
      (known p.p_value && copies_of p.p_value < 3)
      || ((not (known p.p_value)) && List.length distinct_values < 3)
    then sc.proposals <- p :: sc.proposals

  let ingest_proposal st j (p : proposal) =
    if p.p_phase = j then begin
      let payload = phased_payload j p.p_value in
      let msg = Certificate.signed_message ~purpose:propose_purpose ~payload in
      if
        Pid.equal (Pki.Sig.signer p.p_king_sig) (king j st.cfg)
        && Pki.verify st.pki p.p_king_sig ~msg
      then
        add_proposal st j { p with p_just_valid = validate_just st p }
    end

  (* Incremental per-value tally with the original move-to-front order: a
     share that advances a count moves its value to the head; duplicates and
     invalid shares leave the list untouched (and never create an entry). *)
  let tally st j ~purpose table value share =
    let key_eq (v, _) = V.equal v value in
    match List.find_opt key_eq !table with
    | Some ((_, tl) as entry) ->
      let verdict = Certificate.Tally.add tl share in
      (match verdict with
      | Pki.Tally.Added ->
        table := entry :: List.filter (fun e -> not (key_eq e)) !table
      | Pki.Tally.Duplicate | Pki.Tally.Invalid -> ());
      verdict
    | None ->
      let tl =
        Certificate.Tally.create st.pki ~k:(quorum st) ~purpose
          ~payload:(phased_payload j value)
      in
      let verdict = Certificate.Tally.add tl share in
      (match verdict with
      | Pki.Tally.Added -> table := (value, tl) :: !table
      | Pki.Tally.Duplicate | Pki.Tally.Invalid -> ());
      verdict

  let ingest_round st r entries =
    let am_i_king j = Pid.equal st.pid (king j st.cfg) in
    List.iter
      (fun (_src, body) ->
        match body with
        | Input _ -> if r = 0 then () (* handled in bulk below *)
        | Status { phase = j; lock; input_qc } ->
          if r = base j && am_i_king j then begin
            let sc = scratch_of st j in
            (match lock with
            | Some (level, v, qc)
              when level >= 1 && level <= phases st.cfg
                   && verify_commit_qc st ~level ~value:v qc
                   && List.length sc.king_locks < st.cfg.Config.n + 1 ->
              sc.king_locks <- (level, v, qc) :: sc.king_locks
            | _ -> ());
            match input_qc with
            | Some (v, qc)
              when verify_input_qc st ~value:v qc
                   && List.length sc.king_input_qcs < st.cfg.Config.n + 1 ->
              sc.king_input_qcs <- (v, qc) :: sc.king_input_qcs
            | _ -> ()
          end
        | Propose p -> if r = base p.p_phase + 1 then ingest_proposal st p.p_phase p
        | Echo p -> if r = base p.p_phase + 2 then ingest_proposal st p.p_phase p
        | Vote { phase = j; value; share } ->
          if r = base j + 3 && am_i_king j then begin
            let sc = scratch_of st j in
            let tbl = ref sc.votes in
            ignore
              (tally st j ~purpose:commit_purpose tbl value share
                : Pki.Tally.verdict);
            sc.votes <- !tbl
          end
        | Commit { phase = j; value; qc } ->
          if r = base j + 4 && j <= phases st.cfg && verify_commit_qc st ~level:j ~value qc
          then begin
            relock st ~level:j ~value ~qc;
            let sc = scratch_of st j in
            if sc.commit_cert = None then sc.commit_cert <- Some (value, qc)
          end
        | Ack { phase = j; value; share; qc } ->
          if r = base j + 5 && j <= phases st.cfg && verify_commit_qc st ~level:j ~value qc
          then begin
            (* The attached commit certificate travels with every ack, so a
               single correct acker is enough to re-lock all correct
               processes (the linchpin of cross-phase safety). *)
            relock st ~level:j ~value ~qc;
            let sc = scratch_of st j in
            let tbl = ref sc.acks in
            let verdict = tally st j ~purpose:ack_purpose tbl value share in
            sc.acks <- !tbl;
            match verdict with
            | Pki.Tally.Invalid -> ()
            | Pki.Tally.Added | Pki.Tally.Duplicate -> (
              match
                List.find_opt
                  (fun (_, tl) -> Certificate.Tally.complete tl)
                  sc.acks
              with
              | Some (v, tl) -> (
                match Certificate.Tally.certificate tl with
                | Some dqc -> decide st ~phase:j ~value:v ~qc:dqc
                | None -> ())
              | None -> ())
          end
        | Decided { phase = j; value; qc } ->
          if
            j >= 1 && j <= phases st.cfg
            && Certificate.verify_as st.pki qc ~k:(quorum st) ~purpose:ack_purpose
            && String.equal (Certificate.payload qc) (phased_payload j value)
          then decide st ~phase:j ~value ~qc)
      entries;
    if r = 0 then ingest_inputs st entries

  (* --- emission at the entry of one round ---------------------------- *)

  let emit st r =
    let n = st.cfg.Config.n in
    let bc body = Process.broadcast ~n { round = r; body } in
    let to_king j body = [ ({ round = r; body }, king j st.cfg) ] in
    match st.decision with
    | Some value ->
      if st.announced then []
      else begin
        st.announced <- true;
        match st.decide_qc with
        | Some (phase, v, qc) -> bc (Decided { phase; value = v; qc })
        | None ->
          (* unreachable: decisions always carry their certificate *)
          ignore value;
          []
      end
    | None ->
      if r = 0 then
        let share =
          Certificate.share st.pki st.secret ~purpose:input_purpose
            ~payload:(V.encode st.input)
        in
        bc (Input { value = st.input; share })
      else begin
        let j = ((r - 1) / 6) + 1 in
        let off = (r - 1) mod 6 in
        if j > phases st.cfg then []
        else
          match off with
          | 0 -> to_king j (Status { phase = j; lock = st.lock; input_qc = st.my_input_qc })
          | 1 ->
            if Pid.equal st.pid (king j st.cfg) then begin
              let sc = scratch_of st j in
              let locks =
                match st.lock with Some l -> l :: sc.king_locks | None -> sc.king_locks
              in
              let value, just =
                match
                  List.sort (fun (a, _, _) (b, _, _) -> Int.compare b a) locks
                with
                | (level, v, qc) :: _ -> (v, Lock_just { level; qc })
                | [] -> (
                  let qcs =
                    match st.my_input_qc with
                    | Some q -> q :: sc.king_input_qcs
                    | None -> sc.king_input_qcs
                  in
                  match List.sort (fun (a, _) (b, _) -> V.compare a b) qcs with
                  | (v, qc) :: _ -> (v, Input_cert qc)
                  | [] -> (st.input, Unjustified))
              in
              let sg =
                Certificate.share st.pki st.secret ~purpose:propose_purpose
                  ~payload:(phased_payload j value)
              in
              bc
                (Propose
                   {
                     p_phase = j;
                     p_value = value;
                     p_just = just;
                     p_king_sig = sg;
                     p_just_valid = true;
                   })
            end
            else []
          | 2 ->
            (* Forward up to two distinct proposal values: one proves the
               king spoke, two prove it equivocated. *)
            let sc = scratch_of st j in
            let rec distinct acc = function
              | [] -> List.rev acc
              | p :: rest ->
                if List.exists (fun q -> V.equal q.p_value p.p_value) acc then
                  distinct acc rest
                else distinct (p :: acc) rest
            in
            let chosen =
              distinct [] sc.proposals |> List.filteri (fun i _ -> i < 2)
            in
            List.concat_map (fun p -> bc (Echo p)) chosen
          | 3 -> (
            let sc = scratch_of st j in
            let values =
              List.sort_uniq V.compare (List.map (fun p -> p.p_value) sc.proposals)
            in
            match values with
            | [ w ] ->
              let my_level = match st.lock with Some (l, _, _) -> l | None -> 0 in
              let acceptable (p : proposal) =
                p.p_just_valid
                &&
                match p.p_just with
                | Lock_just { level; _ } -> level >= my_level
                | Input_cert _ -> my_level = 0
                | Unjustified -> my_level = 0 && st.popular = None
              in
              let lock_value_match =
                match st.lock with Some (_, lv, _) -> V.equal lv w | None -> false
              in
              if lock_value_match || List.exists acceptable sc.proposals then
                let share =
                  Certificate.share st.pki st.secret ~purpose:commit_purpose
                    ~payload:(phased_payload j w)
                in
                to_king j (Vote { phase = j; value = w; share })
              else []
            | _ -> [])
          | 4 ->
            if Pid.equal st.pid (king j st.cfg) then begin
              let sc = scratch_of st j in
              let ready =
                List.filter (fun (_, tl) -> Certificate.Tally.complete tl) sc.votes
                |> List.sort (fun (a, _) (b, _) -> V.compare a b)
              in
              match ready with
              | (v, tl) :: _ -> (
                match Certificate.Tally.certificate tl with
                | Some qc -> bc (Commit { phase = j; value = v; qc })
                | None -> [])
              | [] -> []
            end
            else []
          | 5 -> (
            let sc = scratch_of st j in
            match sc.commit_cert with
            | Some (v, qc) ->
              let share =
                Certificate.share st.pki st.secret ~purpose:ack_purpose
                  ~payload:(phased_payload j v)
              in
              bc (Ack { phase = j; value = v; share; qc })
            | None -> [])
          | _ -> assert false
      end

  let step ~slot ~inbox st =
    List.iter
      (fun env ->
        let { round; body } = env.Envelope.msg in
        if round >= st.consumed && round <= rounds st.cfg then begin
          let prev = Option.value ~default:[] (Hashtbl.find_opt st.buf round) in
          Hashtbl.replace st.buf round ((env.Envelope.src, body) :: prev)
        end)
      inbox;
    if slot < st.start_slot || (slot - st.start_slot) mod st.round_len <> 0 then
      (st, [])
    else begin
      let r = (slot - st.start_slot) / st.round_len in
      if r >= rounds st.cfg then (st, [])
      else begin
        (* Ingest every strictly earlier round, in order, then act. *)
        while st.consumed < r do
          let k = st.consumed in
          let entries =
            Option.value ~default:[] (Hashtbl.find_opt st.buf k) |> List.rev
          in
          Hashtbl.remove st.buf k;
          ingest_round st k entries;
          st.consumed <- st.consumed + 1
        done;
        if st.decision <> None && st.decided_at = None then
          st.decided_at <- Some slot;
        (st, emit st r)
      end
    end

  (* Everything between round boundaries is pure inbox buffering, so an
     empty-inbox step there is a no-op; past the last round, even boundary
     steps are no-ops. *)
  let wake ~slot st =
    slot >= st.start_slot
    && (slot - st.start_slot) mod st.round_len = 0
    && (slot - st.start_slot) / st.round_len < rounds st.cfg
end
