open Mewc_prelude
open Mewc_sim
open Mewc_core

let rec take k = function
  | [] -> []
  | x :: tl -> if k <= 0 then [] else x :: take (k - 1) tl

(* Scenario process faults ride the engine's injection layer — one
   mechanism shared with the degradation harness, not a parallel
   adversary-side emulation. The plan draws no coins (crash/omission are
   deterministic), so the seed is only a label. *)
let plan_of_scenario (sc : Scenario.t) =
  if sc.Scenario.faults = [] then Faults.none
  else
    {
      Faults.none with
      Faults.seed = sc.Scenario.seed;
      processes =
        List.map
          (fun (fl : Scenario.fault) ->
            ( fl.Scenario.victim,
              match fl.Scenario.kind with
              | Scenario.Crash_fault -> Faults.Crash { at = fl.Scenario.fault_at }
              | Scenario.Omission_fault { drop_mod; drop_rem } ->
                Faults.Send_omission
                  { from_ = fl.Scenario.fault_at; drop_mod; drop_rem } ))
          sc.Scenario.faults;
    }

let adversary (type p s m d) ((module P) : (p, s, m, d) Protocol.t) ~cfg
    ~(params : p) (sc : Scenario.t) : (s, m) Adversary.factory =
 fun ~pki ~secrets ->
  let n = cfg.Config.n in
  (* Echo/replay behaviors are capped so a fuzzed adversary cannot blow up
     run time quadratically; the cap is generous against n=9 campaigns. *)
  let cap = 4 * n in
  let by_pid = Hashtbl.create 8 in
  List.iter
    (fun c -> Hashtbl.replace by_pid c.Scenario.pid c)
    sc.Scenario.corruptions;
  (* The coalition's keys as of [slot]: only processes already corrupted may
     contribute signatures (adaptive corruption hands over the key, nothing
     retroactive). *)
  let active slot =
    List.filter_map
      (fun c ->
        if c.Scenario.at <= slot then
          Some (c.Scenario.pid, secrets.(c.Scenario.pid))
        else None)
      sc.Scenario.corruptions
  in
  (* Honest-machine copies ("ghosts") for the deviant behaviors, seeded from
     the state frozen at corruption time, so a process corrupted mid-run
     continues from where the correct execution left it. A ghost is not a
     correct process — its own earlier sends were mangled, so the protocol's
     correctness lemmas (and hence its internal invariants) need not hold
     for it. If stepping one raises, the ghost goes permanently silent:
     doing nothing is always within the Byzantine behavior space. *)
  let step_ghost (r, m) ~pid view =
    match !r with
    | None -> []
    | Some st -> (
      match
        m.Process.step ~slot:view.Adversary.slot
          ~inbox:(Adversary.inboxes view).(pid)
          st
      with
      | st', sends ->
        r := Some st';
        sends
      | exception _ ->
        r := None;
        [])
  in
  let machines : (Pid.t, s option ref * (s, m) Process.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let honest_sends ~pid view =
    let ghost =
      match Hashtbl.find_opt machines pid with
      | Some g -> g
      | None ->
        let m = P.machine ~cfg ~pki ~secret:secrets.(pid) ~params ~pid in
        let g = (ref (Some (Adversary.states view).(pid)), m) in
        Hashtbl.add machines pid g;
        g
    in
    step_ghost ghost ~pid view
  in
  (* Second machines over mutated params, for equivocation. *)
  let alt_machines : (Pid.t, s option ref * (s, m) Process.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let alt_sends ~pid ~salt view =
    let ghost =
      match Hashtbl.find_opt alt_machines pid with
      | Some g -> g
      | None ->
        let m =
          P.machine ~cfg ~pki ~secret:secrets.(pid)
            ~params:(P.mutate_params params ~salt) ~pid
        in
        let g = (ref (Some m.Process.init), m) in
        Hashtbl.add alt_machines pid g;
        g
    in
    step_ghost ghost ~pid view
  in
  let buffers : (Pid.t, (int * m Envelope.t list) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let forger =
    lazy
      (Option.map
         (fun mk ->
           mk ~cfg ~params ~pki
             ~rng:(Rng.create (Int64.logxor sc.Scenario.seed 0x5EED5EEDL)))
         P.spray)
  in
  let echo ~shift view =
    take cap
      (List.map
         (fun e -> (e.Envelope.msg, (e.Envelope.dst + shift) mod n))
         view.Adversary.correct_outgoing)
  in
  let byz_step ~pid view =
    match Hashtbl.find_opt by_pid pid with
    | None -> []
    | Some c -> (
      match c.Scenario.behavior with
      | Scenario.Silent -> []
      | Scenario.Selective_silence { drop_mod; drop_rem } ->
        List.filter
          (fun (_, dst) -> dst mod drop_mod <> drop_rem)
          (honest_sends ~pid view)
      | Scenario.Withhold_quorum { keep } ->
        List.filter
          (fun (_, dst) -> dst < keep || Pid.equal dst pid)
          (honest_sends ~pid view)
      | Scenario.Equivocate { salt } ->
        let h = honest_sends ~pid view in
        let a = alt_sends ~pid ~salt view in
        List.filter (fun (_, dst) -> dst mod 2 = 0) h
        @ List.filter (fun (_, dst) -> dst mod 2 = 1) a
      | Scenario.Rushing_echo { shift } -> echo ~shift view
      | Scenario.Replay_stale { delay } ->
        let buf =
          match Hashtbl.find_opt buffers pid with
          | Some b -> b
          | None ->
            let b = ref [] in
            Hashtbl.add buffers pid b;
            b
        in
        let slot = view.Adversary.slot in
        buf := (slot, (Adversary.inboxes view).(pid)) :: take 8 !buf;
        (match List.assoc_opt (slot - delay) !buf with
        | Some envs ->
          take cap (List.map (fun e -> (e.Envelope.msg, e.Envelope.src)) envs)
        | None -> [])
      | Scenario.Spray { intensity } ->
        let base =
          match Lazy.force forger with
          | Some f ->
            f ~pid ~slot:view.Adversary.slot
              ~inbox:(Adversary.inboxes view).(pid)
              ~active:(active view.Adversary.slot)
          | None -> echo ~shift:1 view
        in
        if intensity >= 3 then base @ echo ~shift:1 view else base)
  in
  {
    Adversary.name = Printf.sprintf "fuzz(%Ld)" sc.Scenario.seed;
    corrupt =
      (fun view ->
        List.filter_map
          (fun c ->
            if c.Scenario.at = view.Adversary.slot then Some c.Scenario.pid
            else None)
          sc.Scenario.corruptions);
    byz_step;
  }
