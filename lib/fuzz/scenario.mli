(** Corruption-schedule/behavior scripts: what the fuzzer searches over.

    A scenario is a first-order value — seeds plus a list of
    [(slot, pid, behavior)] corruptions — so it can be generated from a seed,
    printed, serialized into a corpus, and {e shrunk} structurally. The
    QCheck-style split matters: shrinking operates on the value, not on the
    random stream that produced it, so a minimal counterexample is a legible
    script ("corrupt p1 at slot 0 and spray") rather than a magic seed.

    Behaviors are deliberately protocol-agnostic; {!Compile} interprets them
    against any {!Mewc_core.Protocol.S} instance. *)

open Mewc_prelude
open Mewc_sim

type behavior =
  | Silent  (** drop every send (crash) *)
  | Selective_silence of { drop_mod : int; drop_rem : int }
      (** run the protocol honestly but drop sends to destinations
          [dst mod drop_mod = drop_rem] — a partition-flavored deviation *)
  | Withhold_quorum of { keep : int }
      (** run honestly but deliver only to the [keep] lowest-numbered
          processes (and itself): starve everyone else of quorum shares *)
  | Equivocate of { salt : int }
      (** run two copies of the machine — the real params and
          [mutate_params ~salt] — and route the first to even destinations,
          the second to odd ones *)
  | Rushing_echo of { shift : int }
      (** re-send the current slot's observed correct sends, rotated by
          [shift] destinations — the rushing primitive *)
  | Replay_stale of { delay : int }
      (** re-send messages received [delay] slots ago back at their
          original senders *)
  | Spray of { intensity : int }
      (** the protocol's {!Mewc_core.Protocol.S.spray} forger (harvested
          shares topped up with corrupted ones, equivocating proposals);
          degrades to a rushing echo for instances without one. At
          [intensity >= 3] a rushing echo is layered on top. *)

type corruption = { at : int; pid : Pid.t; behavior : behavior }

(** Benign (non-Byzantine) process faults, compiled by {!Compile} down to
    the engine's {!Mewc_sim.Faults} layer — one injection mechanism for
    both the fuzzer and the degradation harness. *)
type fault_kind =
  | Crash_fault  (** permanent halt at [fault_at] *)
  | Omission_fault of { drop_mod : int; drop_rem : int }
      (** from [fault_at] on, sends to [dst mod drop_mod = drop_rem] are
          lost *)

type fault = { fault_at : int; victim : Pid.t; kind : fault_kind }

type t = {
  seed : int64;  (** the run's trusted-setup seed *)
  shuffle : int64 option;  (** the run's inbox-shuffle seed *)
  corruptions : corruption list;
      (** distinct pids, canonically sorted by [(at, pid)]; the generator
          emits at most [cfg.t] of them *)
  faults : fault list;
      (** injected process faults, canonically sorted by
          [(fault_at, victim)]; victims are distinct from each other and
          from corrupted pids, and |corruptions| + |faults| <= [cfg.t] —
          crash/omission behavior is a subset of Byzantine behavior, so the
          clean-campaign gate stays sound under the combined budget *)
}

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_behavior : Format.formatter -> behavior -> unit
val pp_fault_kind : Format.formatter -> fault_kind -> unit

val generate : cfg:Config.t -> rng:Rng.t -> t
(** Draw a scenario: fresh run seeds, 1..[cfg.t] victims (half the time
    seeded with a phase-leader pid — the high-value target), corruption
    slots biased early, behaviors weighted toward the interesting ones.
    Half the scenarios additionally draw process faults from the remaining
    [cfg.t - |corruptions|] budget. *)

val size : t -> int
(** Strictly positive complexity measure; every {!candidates} element is
    strictly smaller, so greedy shrinking terminates. *)

val candidates : t -> t list
(** One-step shrinks, in preference order: drop a corruption or fault,
    simplify a behavior (ultimately to [Silent]) or a fault (omission to
    crash), move a corruption or fault to slot 0, drop the shuffle seed. *)

val to_json : t -> Jsonx.t
val of_json : Jsonx.t -> (t, string) result
(** The [scenario] sub-document of a [mewc-fuzz/1] corpus entry; seeds are
    carried as decimal strings (JSON ints are 63-bit here). *)
