(** Compile a {!Scenario.t} into a runnable adversary.

    The interpretation is generic over any {!Mewc_core.Protocol.S} instance:
    deviant behaviors (selective silence, quorum withholding, equivocation)
    drive honest copies of the instance's own machine — seeded from the
    state frozen at corruption time — and mangle the sends; rushing echo and
    stale replay work on observed envelopes; share spray defers to the
    instance's forger when it has one.

    Attack legality is structural: signatures only ever come from the
    instance's machine run under a corrupted secret, or from the forger,
    which receives exclusively the secrets of processes corrupted at or
    before the current slot. *)

open Mewc_sim
open Mewc_core

val adversary :
  ('p, 's, 'm, 'd) Protocol.t ->
  cfg:Config.t ->
  params:'p ->
  Scenario.t ->
  ('s, 'm) Adversary.factory
(** The resulting factory corrupts [pid] at slot [at] for every scenario
    corruption and plays the listed behavior from then on. A scenario whose
    victim count exceeds [cfg.t] compiles fine but the engine rejects it at
    run time ([Invalid_argument]), exactly like any over-budget adversary. *)
