(** Compile a {!Scenario.t} into a runnable adversary.

    The interpretation is generic over any {!Mewc_core.Protocol.S} instance:
    deviant behaviors (selective silence, quorum withholding, equivocation)
    drive honest copies of the instance's own machine — seeded from the
    state frozen at corruption time — and mangle the sends; rushing echo and
    stale replay work on observed envelopes; share spray defers to the
    instance's forger when it has one.

    Attack legality is structural: signatures only ever come from the
    instance's machine run under a corrupted secret, or from the forger,
    which receives exclusively the secrets of processes corrupted at or
    before the current slot. *)

open Mewc_sim
open Mewc_core

val plan_of_scenario : Scenario.t -> Faults.plan
(** The scenario's process faults as an engine {!Faults.plan}
    ({!Faults.none} when there are none) — the same injection layer the
    degradation harness uses, so a fuzzed crash and a chaos-grid crash are
    literally one mechanism. *)

val adversary :
  ('p, 's, 'm, 'd) Protocol.t ->
  cfg:Config.t ->
  params:'p ->
  Scenario.t ->
  ('s, 'm) Adversary.factory
(** The resulting factory corrupts [pid] at slot [at] for every scenario
    corruption and plays the listed behavior from then on. A scenario whose
    victim count exceeds [cfg.t] compiles fine but the engine rejects it at
    run time ([Invalid_argument]), exactly like any over-budget adversary. *)
