open Mewc_prelude
open Mewc_sim

type behavior =
  | Silent
  | Selective_silence of { drop_mod : int; drop_rem : int }
  | Withhold_quorum of { keep : int }
  | Equivocate of { salt : int }
  | Rushing_echo of { shift : int }
  | Replay_stale of { delay : int }
  | Spray of { intensity : int }

type corruption = { at : int; pid : Pid.t; behavior : behavior }

type fault_kind =
  | Crash_fault
  | Omission_fault of { drop_mod : int; drop_rem : int }

type fault = { fault_at : int; victim : Pid.t; kind : fault_kind }

type t = {
  seed : int64;
  shuffle : int64 option;
  corruptions : corruption list;
  faults : fault list;
}

(* ---- equality, printing ------------------------------------------------ *)

let equal_behavior (a : behavior) (b : behavior) = a = b

let equal_corruption a b =
  a.at = b.at && Pid.equal a.pid b.pid && equal_behavior a.behavior b.behavior

let equal_fault (a : fault) (b : fault) = a = b

let equal a b =
  Int64.equal a.seed b.seed
  && Option.equal Int64.equal a.shuffle b.shuffle
  && List.equal equal_corruption a.corruptions b.corruptions
  && List.equal equal_fault a.faults b.faults

let pp_behavior fmt = function
  | Silent -> Format.pp_print_string fmt "silent"
  | Selective_silence { drop_mod; drop_rem } ->
    Format.fprintf fmt "selective-silence(dst mod %d = %d)" drop_mod drop_rem
  | Withhold_quorum { keep } -> Format.fprintf fmt "withhold-quorum(keep=%d)" keep
  | Equivocate { salt } -> Format.fprintf fmt "equivocate(salt=%d)" salt
  | Rushing_echo { shift } -> Format.fprintf fmt "rushing-echo(shift=%d)" shift
  | Replay_stale { delay } -> Format.fprintf fmt "replay-stale(delay=%d)" delay
  | Spray { intensity } -> Format.fprintf fmt "spray(intensity=%d)" intensity

let pp_fault_kind fmt = function
  | Crash_fault -> Format.pp_print_string fmt "crash"
  | Omission_fault { drop_mod; drop_rem } ->
    Format.fprintf fmt "omit(dst mod %d = %d)" drop_mod drop_rem

let pp fmt t =
  Format.fprintf fmt "seed=%Ld shuffle=%s [%a]" t.seed
    (match t.shuffle with None -> "none" | Some s -> Int64.to_string s)
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
       (fun fmt c ->
         Format.fprintf fmt "p%d@%d:%a" c.pid c.at pp_behavior c.behavior))
    t.corruptions;
  if t.faults <> [] then
    Format.fprintf fmt " faults[%a]"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
         (fun fmt fl ->
           Format.fprintf fmt "p%d@%d:%a" fl.victim fl.fault_at pp_fault_kind
             fl.kind))
      t.faults

(* ---- generation -------------------------------------------------------- *)

let canonical corruptions =
  List.sort
    (fun a b -> Stdlib.compare (a.at, a.pid) (b.at, b.pid))
    corruptions

let canonical_faults faults =
  List.sort
    (fun a b -> Stdlib.compare (a.fault_at, a.victim) (b.fault_at, b.victim))
    faults

let gen_behavior rng =
  match Rng.int rng 10 with
  | 0 | 1 -> Silent
  | 2 ->
    Selective_silence { drop_mod = 2 + Rng.int rng 2; drop_rem = Rng.int rng 2 }
  | 3 -> Withhold_quorum { keep = Rng.int rng 4 }
  | 4 -> Equivocate { salt = 1 + Rng.int rng 3 }
  | 5 -> Rushing_echo { shift = 1 + Rng.int rng 3 }
  | 6 -> Replay_stale { delay = 1 + Rng.int rng 3 }
  | _ -> Spray { intensity = 1 + Rng.int rng 3 }

let generate ~cfg ~rng =
  let n = cfg.Config.n and t = cfg.Config.t in
  let seed = Rng.int64 rng in
  let shuffle = if Rng.bool rng then Some (Rng.int64 rng) else None in
  let corruptions =
    if t = 0 then []
    else begin
      let k = 1 + Rng.int rng t in
      let all = Pid.all ~n in
      (* Half the time, seed the victim set with a phase leader: leaders are
         the high-value corruption targets in every leader-based phase
         structure, and an unbiased sample rarely hits them early. *)
      let leaders = List.filter (fun p -> p >= 1 && p <= t + 1) all in
      let pids =
        if Rng.bool rng && leaders <> [] then
          let first = Rng.pick rng leaders in
          first
          :: Rng.sample rng (k - 1)
               (List.filter (fun q -> not (Pid.equal first q)) all)
        else Rng.sample rng k all
      in
      canonical
        (List.map
           (fun pid ->
             let at = if Rng.bool rng then 0 else Rng.int rng 8 in
             { at; pid; behavior = gen_behavior rng })
           pids)
    end
  in
  (* Benign process faults compile to the engine's fault layer. Crash and
     omission faulty behaviors are a subset of Byzantine ones, so soundness
     of the clean-campaign gate needs |corruptions| + |faults| <= t, with
     disjoint victims. Half the scenarios stay fault-free. *)
  let faults =
    let budget = t - List.length corruptions in
    if budget <= 0 || Rng.bool rng then []
    else begin
      let corrupted = List.map (fun c -> c.pid) corruptions in
      let free =
        List.filter (fun p -> not (List.mem p corrupted)) (Pid.all ~n)
      in
      let k = min (1 + Rng.int rng budget) (List.length free) in
      canonical_faults
        (List.map
           (fun victim ->
             let fault_at = if Rng.bool rng then 0 else Rng.int rng 8 in
             let kind =
               if Rng.int rng 3 = 0 then
                 Omission_fault
                   { drop_mod = 2 + Rng.int rng 2; drop_rem = Rng.int rng 2 }
               else Crash_fault
             in
             { fault_at; victim; kind })
           (Rng.sample rng k free))
    end
  in
  { seed; shuffle; corruptions; faults }

(* ---- shrinking --------------------------------------------------------- *)

let behavior_weight = function
  | Silent -> 0
  | Selective_silence { drop_mod; drop_rem } -> 1 + drop_mod + drop_rem
  | Withhold_quorum { keep } -> 1 + keep
  | Equivocate { salt } -> 2 + salt
  | Rushing_echo { shift } -> 2 + shift
  | Replay_stale { delay } -> 2 + delay
  | Spray { intensity } -> 3 + intensity

let fault_weight = function
  | Crash_fault -> 0
  | Omission_fault { drop_mod; drop_rem } -> 1 + drop_mod + drop_rem

let size t =
  (match t.shuffle with None -> 0 | Some _ -> 1)
  + List.fold_left
      (fun acc c -> acc + 16 + c.at + behavior_weight c.behavior)
      0 t.corruptions
  + List.fold_left
      (fun acc fl -> acc + 16 + fl.fault_at + fault_weight fl.kind)
      0 t.faults

let simpler_behaviors = function
  | Silent -> []
  | Selective_silence _ -> [ Silent ]
  | Withhold_quorum { keep } ->
    Silent :: (if keep > 0 then [ Withhold_quorum { keep = keep - 1 } ] else [])
  | Equivocate { salt } ->
    Silent :: (if salt > 1 then [ Equivocate { salt = salt - 1 } ] else [])
  | Rushing_echo { shift } ->
    Silent :: (if shift > 1 then [ Rushing_echo { shift = shift - 1 } ] else [])
  | Replay_stale { delay } ->
    Silent :: (if delay > 1 then [ Replay_stale { delay = delay - 1 } ] else [])
  | Spray { intensity } ->
    Silent :: (if intensity > 1 then [ Spray { intensity = intensity - 1 } ] else [])

let candidates t =
  let n = List.length t.corruptions in
  let drop =
    List.init n (fun i ->
        {
          t with
          corruptions = List.filteri (fun j _ -> j <> i) t.corruptions;
        })
  in
  let simplify =
    List.concat
      (List.mapi
         (fun i c ->
           List.map
             (fun b ->
               {
                 t with
                 corruptions =
                   List.mapi
                     (fun j c' -> if j = i then { c' with behavior = b } else c')
                     t.corruptions;
               })
             (simpler_behaviors c.behavior))
         t.corruptions)
  in
  let earlier =
    List.concat
      (List.mapi
         (fun i c ->
           if c.at = 0 then []
           else
             [
               {
                 t with
                 corruptions =
                   canonical
                     (List.mapi
                        (fun j c' -> if j = i then { c' with at = 0 } else c')
                        t.corruptions);
               };
             ])
         t.corruptions)
  in
  let unshuffle =
    match t.shuffle with None -> [] | Some _ -> [ { t with shuffle = None } ]
  in
  let nf = List.length t.faults in
  let drop_fault =
    List.init nf (fun i ->
        { t with faults = List.filteri (fun j _ -> j <> i) t.faults })
  in
  let simplify_fault =
    List.concat
      (List.mapi
         (fun i fl ->
           match fl.kind with
           | Crash_fault -> []
           | Omission_fault _ ->
             [
               {
                 t with
                 faults =
                   List.mapi
                     (fun j f' ->
                       if j = i then { f' with kind = Crash_fault } else f')
                     t.faults;
               };
             ])
         t.faults)
  in
  let earlier_fault =
    List.concat
      (List.mapi
         (fun i fl ->
           if fl.fault_at = 0 then []
           else
             [
               {
                 t with
                 faults =
                   canonical_faults
                     (List.mapi
                        (fun j f' ->
                          if j = i then { f' with fault_at = 0 } else f')
                        t.faults);
               };
             ])
         t.faults)
  in
  drop @ drop_fault @ simplify @ simplify_fault @ earlier @ earlier_fault
  @ unshuffle

(* ---- JSON (fields of a mewc-fuzz/1 document) --------------------------- *)

let behavior_to_json b =
  let open Jsonx in
  match b with
  | Silent -> Obj [ ("kind", Str "silent") ]
  | Selective_silence { drop_mod; drop_rem } ->
    Obj
      [
        ("kind", Str "selective-silence");
        ("drop_mod", Int drop_mod);
        ("drop_rem", Int drop_rem);
      ]
  | Withhold_quorum { keep } ->
    Obj [ ("kind", Str "withhold-quorum"); ("keep", Int keep) ]
  | Equivocate { salt } -> Obj [ ("kind", Str "equivocate"); ("salt", Int salt) ]
  | Rushing_echo { shift } ->
    Obj [ ("kind", Str "rushing-echo"); ("shift", Int shift) ]
  | Replay_stale { delay } ->
    Obj [ ("kind", Str "replay-stale"); ("delay", Int delay) ]
  | Spray { intensity } ->
    Obj [ ("kind", Str "spray"); ("intensity", Int intensity) ]

let to_json t =
  let open Jsonx in
  Obj
    [
      ("seed", Str (Int64.to_string t.seed));
      ( "shuffle",
        match t.shuffle with None -> Null | Some s -> Str (Int64.to_string s) );
      ( "corruptions",
        Arr
          (List.map
             (fun c ->
               Obj
                 [
                   ("at", Int c.at);
                   ("pid", Int c.pid);
                   ("behavior", behavior_to_json c.behavior);
                 ])
             t.corruptions) );
      ( "faults",
        Arr
          (List.map
             (fun fl ->
               Obj
                 [
                   ("at", Int fl.fault_at);
                   ("pid", Int fl.victim);
                   ( "kind",
                     match fl.kind with
                     | Crash_fault -> Obj [ ("kind", Str "crash") ]
                     | Omission_fault { drop_mod; drop_rem } ->
                       Obj
                         [
                           ("kind", Str "omission");
                           ("drop_mod", Int drop_mod);
                           ("drop_rem", Int drop_rem);
                         ] );
                 ])
             t.faults) );
    ]

let ( let* ) = Result.bind

let field name get j =
  match Option.bind (Jsonx.member name j) get with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let int64_of_str s =
  match Int64.of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "not an int64: %S" s)

let behavior_of_json j =
  let* kind = field "kind" Jsonx.get_str j in
  match kind with
  | "silent" -> Ok Silent
  | "selective-silence" ->
    let* drop_mod = field "drop_mod" Jsonx.get_int j in
    let* drop_rem = field "drop_rem" Jsonx.get_int j in
    Ok (Selective_silence { drop_mod; drop_rem })
  | "withhold-quorum" ->
    let* keep = field "keep" Jsonx.get_int j in
    Ok (Withhold_quorum { keep })
  | "equivocate" ->
    let* salt = field "salt" Jsonx.get_int j in
    Ok (Equivocate { salt })
  | "rushing-echo" ->
    let* shift = field "shift" Jsonx.get_int j in
    Ok (Rushing_echo { shift })
  | "replay-stale" ->
    let* delay = field "delay" Jsonx.get_int j in
    Ok (Replay_stale { delay })
  | "spray" ->
    let* intensity = field "intensity" Jsonx.get_int j in
    Ok (Spray { intensity })
  | k -> Error (Printf.sprintf "unknown behavior kind %S" k)

let of_json j =
  let* seed = Result.bind (field "seed" Jsonx.get_str j) int64_of_str in
  let* shuffle =
    match Jsonx.member "shuffle" j with
    | Some Jsonx.Null | None -> Ok None
    | Some (Jsonx.Str s) -> Result.map Option.some (int64_of_str s)
    | Some _ -> Error "ill-typed field \"shuffle\""
  in
  let* corruptions =
    match Option.bind (Jsonx.member "corruptions" j) Jsonx.get_list with
    | None -> Error "missing corruptions array"
    | Some items ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* at = field "at" Jsonx.get_int item in
          let* pid = field "pid" Jsonx.get_int item in
          let* behavior =
            match Jsonx.member "behavior" item with
            | Some b -> behavior_of_json b
            | None -> Error "missing behavior"
          in
          Ok ({ at; pid; behavior } :: acc))
        (Ok []) items
      |> Result.map List.rev
  in
  (* Absent in pre-fault corpus entries: default to none. *)
  let* faults =
    match Jsonx.member "faults" j with
    | None -> Ok []
    | Some fj -> (
      match Jsonx.get_list fj with
      | None -> Error "ill-typed field \"faults\""
      | Some items ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* fault_at = field "at" Jsonx.get_int item in
            let* victim = field "pid" Jsonx.get_int item in
            let* kind =
              match Jsonx.member "kind" item with
              | None -> Error "missing fault kind"
              | Some kj -> (
                let* k = field "kind" Jsonx.get_str kj in
                match k with
                | "crash" -> Ok Crash_fault
                | "omission" ->
                  let* drop_mod = field "drop_mod" Jsonx.get_int kj in
                  let* drop_rem = field "drop_rem" Jsonx.get_int kj in
                  Ok (Omission_fault { drop_mod; drop_rem })
                | k -> Error (Printf.sprintf "unknown fault kind %S" k))
            in
            Ok ({ fault_at; victim; kind } :: acc))
          (Ok []) items
        |> Result.map List.rev)
  in
  Ok { seed; shuffle; corruptions; faults }
