(** Seeded fuzz campaigns over the protocol zoo, with counterexample
    shrinking and a replayable corpus.

    A campaign draws scenarios from a seed ({!Scenario.generate}), compiles
    each into an adversary ({!Compile.adversary}), and runs it under the
    safety monitor suite on the {!Mewc_prelude.Pool}. Scenario [i] of a
    campaign is a pure function of the campaign seed, batches are scanned in
    order and the lowest-index violation wins, so a campaign's outcome is
    independent of [jobs]. A found violation is shrunk greedily to a locally
    minimal scenario and persisted as a [mewc-fuzz/1] corpus entry that
    {!replay} must reproduce byte-identically. *)

open Mewc_prelude
open Mewc_sim
open Mewc_core

(** {2 Targets} *)

type target =
  | Target : {
      name : string;
      protocol : ('p, 's, 'm, 'd) Protocol.t;
      params : Config.t -> 'p;
      ablated : bool;
          (** selects a deliberately unsafe configuration; agreement is
              still monitored (finding its violation is the point) but
              termination is not *)
    }
      -> target

val zoo : target list
(** All fuzzable configurations: the five protocol instances under default
    params, plus ["weak-ba-ablated"] — weak BA with [quorum_override] set to
    the small quorum, the planted unsoundness the smoke campaign must
    rediscover. *)

val target_name : target -> string
val target_ablated : target -> bool
val find_target : string -> target option

val safety_monitors : cfg:Config.t -> ablated:bool -> 'm Monitor.t list
(** Budget sanity, agreement (termination required iff not [ablated]) and
    metering consistency. Word/latency envelopes are excluded: they are
    calibrated against the scripted zoo, not arbitrary adversaries. *)

(** {2 Campaigns and shrinking} *)

val violation_of :
  ?options:'m Instances.options ->
  target ->
  cfg:Config.t ->
  Scenario.t ->
  Monitor.violation option
(** Run one scenario to the horizon under the safety suite. The scenario
    owns the run's identity — its seed, shuffle seed, fault plan and the
    safety monitor suite override whatever [options] says about them —
    while the engine knobs ([scheduler], [shards], [profile],
    [record_trace]) are honored; the verdict is invariant under scheduler
    and shard count. *)

type finding = {
  index : int;  (** scenario index within the campaign, for reproduction *)
  scenario : Scenario.t;
  violation : Monitor.violation;
}

val campaign :
  ?jobs:int ->
  target ->
  cfg:Config.t ->
  seed:int64 ->
  count:int ->
  unit ->
  finding option
(** Scan [count] scenarios drawn from [seed] in parallel batches; return the
    lowest-index violation, or [None] if the campaign comes up clean. *)

val shrink :
  target -> cfg:Config.t -> Scenario.t -> Monitor.violation -> Scenario.t * Monitor.violation
(** Greedy descent over {!Scenario.candidates}, accepting a candidate iff it
    still violates the {e same monitor}; returns the locally minimal scenario
    and its (re-run) violation. Deterministic, and idempotent at the result. *)

(** {2 The corpus} *)

type entry = {
  target : string;
  n : int;
  t : int;
  scenario : Scenario.t;
  violation : Monitor.violation;  (** as observed, replay-tag included *)
}

val schema : string
(** ["mewc-fuzz/1"]. *)

val entry_to_json : entry -> Jsonx.t
val entry_of_json : Jsonx.t -> (entry, string) result

val save : string -> entry -> unit
val load : string -> (entry, string) result

val replay : entry -> (Monitor.violation, string) result
(** Re-run the entry's scenario against its target; [Ok] iff the reproduced
    violation equals the recorded one field-for-field (monitor, slot and
    reason — seeds included via the replay tag). *)

val minimize : entry -> (entry, string) result
(** {!shrink} applied to a corpus entry. *)

(** {2 Smoke} *)

val planted_target : string
val smoke_seed : int64
val smoke_count : int

val smoke : ?jobs:int -> ?log:(string -> unit) -> unit -> (entry, string) result
(** The CI self-validation gate: sound targets fuzzed clean, then the
    planted ["weak-ba-ablated"] campaign must find an agreement violation,
    shrink it to a deterministic fixpoint, and replay the minimized entry
    byte-identically. Returns that entry. *)
