open Mewc_prelude
open Mewc_sim
open Mewc_core

(* ---- the zoo of fuzz targets ------------------------------------------- *)

type target =
  | Target : {
      name : string;
      protocol : ('p, 's, 'm, 'd) Protocol.t;
      params : Config.t -> 'p;
      ablated : bool;
    }
      -> target

let target_name (Target { name; _ }) = name
let target_ablated (Target { ablated; _ }) = ablated

let zoo =
  [
    Target
      {
        name = "fallback";
        protocol = (module Instances.Fallback_protocol);
        params = Instances.Fallback_protocol.default_params;
        ablated = false;
      };
    Target
      {
        name = "weak-ba";
        protocol = (module Instances.Weak_ba_protocol);
        params = Instances.Weak_ba_protocol.default_params;
        ablated = false;
      };
    Target
      {
        name = "weak-ba-ablated";
        protocol = (module Instances.Weak_ba_protocol);
        params =
          (fun cfg ->
            {
              (Instances.Weak_ba_protocol.default_params cfg) with
              Instances.Weak_ba_protocol.quorum_override =
                Some (Config.small_quorum cfg);
            });
        ablated = true;
      };
    Target
      {
        name = "bb";
        protocol = (module Instances.Bb_protocol);
        params = Instances.Bb_protocol.default_params;
        ablated = false;
      };
    Target
      {
        name = "binary-bb";
        protocol = (module Instances.Binary_bb_protocol);
        params = Instances.Binary_bb_protocol.default_params;
        ablated = false;
      };
    Target
      {
        name = "strong-ba";
        protocol = (module Instances.Strong_ba_protocol);
        params = Instances.Strong_ba_protocol.default_params;
        ablated = false;
      };
  ]

let find_target name =
  List.find_opt (fun t -> String.equal (target_name t) name) zoo

(* Fuzz runs install budget sanity, agreement, meter/engine consistency,
   and — except against ablated targets, whose whole point is that
   liveness/safety break — termination. The word/latency envelope monitors
   are deliberately excluded: they are calibrated against the scripted
   adversary zoo, and a random adversary tripping them would be a
   calibration artifact, not a protocol bug. *)
let safety_monitors ~cfg ~ablated =
  [ Monitor.corruption_budget ~cfg; Monitor.agreement (); Monitor.metering () ]
  @ (if ablated then [] else [ Monitor.termination ~cfg ])

let violation_of ?(options = Instances.default_options)
    (Target { protocol; params; ablated; _ }) ~cfg (sc : Scenario.t) =
  let params = params cfg in
  let adversary = Compile.adversary protocol ~cfg ~params sc in
  match
    Instances.run protocol ~cfg
      ~options:
        {
          (Instances.retarget options) with
          Instances.seed = sc.Scenario.seed;
          shuffle_seed = sc.Scenario.shuffle;
          monitors = Some (safety_monitors ~cfg ~ablated);
          faults = Compile.plan_of_scenario sc;
        }
      ~params ~adversary ()
  with
  | _ -> None
  | exception Monitor.Violation v -> Some v

(* ---- campaigns ---------------------------------------------------------- *)

type finding = {
  index : int;
  scenario : Scenario.t;
  violation : Monitor.violation;
}

let batch_size = 32

let campaign ?jobs target ~cfg ~seed ~count () =
  let rng = Rng.create seed in
  let dummy =
    { Scenario.seed = 0L; shuffle = None; corruptions = []; faults = [] }
  in
  let rec loop start =
    if start >= count then None
    else begin
      let b = min batch_size (count - start) in
      let scenarios = Array.make b dummy in
      (* filled sequentially: scenario [i] is a pure function of [seed] *)
      for i = 0 to b - 1 do
        scenarios.(i) <- Scenario.generate ~cfg ~rng
      done;
      let results = Pool.map ?jobs (violation_of target ~cfg) scenarios in
      let rec first i =
        if i >= b then None
        else
          match results.(i) with
          | Some violation ->
            Some { index = start + i; scenario = scenarios.(i); violation }
          | None -> first (i + 1)
      in
      match first 0 with Some f -> Some f | None -> loop (start + b)
    end
  in
  if count <= 0 then None else loop 0

let shrink target ~cfg sc (v : Monitor.violation) =
  let same c =
    match violation_of target ~cfg c with
    | Some v' when String.equal v'.Monitor.monitor v.Monitor.monitor -> Some v'
    | _ -> None
  in
  (* Greedy first-fit descent: every candidate is strictly smaller
     ({!Scenario.size}), so this terminates; candidate order is fixed, so
     the minimum is deterministic. *)
  let rec go sc v =
    let rec first = function
      | [] -> (sc, v)
      | c :: rest -> (
        match same c with Some v' -> go c v' | None -> first rest)
    in
    first (Scenario.candidates sc)
  in
  go sc v

(* ---- the corpus --------------------------------------------------------- *)

type entry = {
  target : string;
  n : int;
  t : int;
  scenario : Scenario.t;
  violation : Monitor.violation;
}

let schema = "mewc-fuzz/1"

let entry_to_json e =
  let open Jsonx in
  Schema.tag schema
    [
      ("target", Str e.target);
      ("n", Int e.n);
      ("t", Int e.t);
      ("scenario", Scenario.to_json e.scenario);
      ( "violation",
        Obj
          [
            ("monitor", Str e.violation.Monitor.monitor);
            ("slot", Int e.violation.Monitor.slot);
            ("reason", Str e.violation.Monitor.reason);
          ] );
    ]

let ( let* ) = Result.bind

let field name get j =
  match Option.bind (Jsonx.member name j) get with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let entry_of_json j =
  let* () = Jsonx.Schema.check schema j in
  let* target = field "target" Jsonx.get_str j in
  let* n = field "n" Jsonx.get_int j in
  let* t = field "t" Jsonx.get_int j in
  let* scenario =
    match Jsonx.member "scenario" j with
    | Some s -> Scenario.of_json s
    | None -> Error "missing scenario"
  in
  let* violation =
    match Jsonx.member "violation" j with
    | None -> Error "missing violation"
    | Some v ->
      let* monitor = field "monitor" Jsonx.get_str v in
      let* slot = field "slot" Jsonx.get_int v in
      let* reason = field "reason" Jsonx.get_str v in
      Ok { Monitor.monitor; slot; reason }
  in
  Ok { target; n; t; scenario; violation }

let save path entry =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Jsonx.to_string (entry_to_json entry));
      Out_channel.output_char oc '\n')

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> Result.bind (Jsonx.parse contents) entry_of_json
  | exception Sys_error e -> Error e

let equal_violation (a : Monitor.violation) (b : Monitor.violation) =
  String.equal a.Monitor.monitor b.Monitor.monitor
  && a.Monitor.slot = b.Monitor.slot
  && String.equal a.Monitor.reason b.Monitor.reason

let replay entry =
  match find_target entry.target with
  | None -> Error (Printf.sprintf "unknown target %S" entry.target)
  | Some target -> (
    let cfg = Config.create ~n:entry.n ~t:entry.t in
    match violation_of target ~cfg entry.scenario with
    | None -> Error "scenario no longer violates any monitor"
    | Some v ->
      if equal_violation v entry.violation then Ok v
      else
        Error
          (Format.asprintf
             "violation drifted:@ recorded %a@ reproduced %a"
             Monitor.pp_violation entry.violation Monitor.pp_violation v))

let minimize entry =
  match find_target entry.target with
  | None -> Error (Printf.sprintf "unknown target %S" entry.target)
  | Some target -> (
    let cfg = Config.create ~n:entry.n ~t:entry.t in
    match violation_of target ~cfg entry.scenario with
    | None -> Error "scenario does not violate any monitor"
    | Some v ->
      let scenario, violation = shrink target ~cfg entry.scenario v in
      Ok { entry with scenario; violation })

(* ---- the smoke campaign ------------------------------------------------- *)

let planted_target = "weak-ba-ablated"
let smoke_seed = 7L
let smoke_count = 512
let smoke_clean_seed = 11L
let smoke_clean_count = 24

let smoke ?jobs ?(log = fun _ -> ()) () =
  let cfg = Config.create ~n:9 ~t:4 in
  (* Sound targets first: the safety suite must come up empty against the
     whole behavior mix, or the fuzzer itself would be crying wolf. *)
  let dirty =
    List.filter_map
      (fun target ->
        if target_ablated target then None
        else begin
          log
            (Printf.sprintf "clean campaign: %s x%d" (target_name target)
               smoke_clean_count);
          Option.map
            (fun f -> (target_name target, f))
            (campaign ?jobs target ~cfg ~seed:smoke_clean_seed
               ~count:smoke_clean_count ())
        end)
      zoo
  in
  match dirty with
  | (name, f) :: _ ->
    Error
      (Format.asprintf "sound target %s violated by scenario #%d %a: %a" name
         f.index Scenario.pp f.scenario Monitor.pp_violation f.violation)
  | [] -> (
    match find_target planted_target with
    | None -> Error (Printf.sprintf "target %S missing" planted_target)
    | Some target -> (
      log
        (Printf.sprintf "planted campaign: %s x%d" planted_target smoke_count);
      match campaign ?jobs target ~cfg ~seed:smoke_seed ~count:smoke_count () with
      | None ->
        Error "planted quorum ablation not found — generator regression?"
      | Some f -> (
        log
          (Format.asprintf "found #%d %a" f.index Monitor.pp_violation
             f.violation);
        let sc, v = shrink target ~cfg f.scenario f.violation in
        let sc', v' = shrink target ~cfg sc v in
        if not (Scenario.equal sc sc' && equal_violation v v') then
          Error "shrinking is not a deterministic fixpoint"
        else
          let entry =
            { target = planted_target; n = 9; t = 4; scenario = sc;
              violation = v }
          in
          match replay entry with
          | Error e -> Error ("minimized entry does not replay: " ^ e)
          | Ok _ ->
            log (Format.asprintf "minimized to %a" Scenario.pp sc);
            Ok entry)))
