(** Injectable monotonic time.

    The lock-step engine's "clock" is the slot counter, so its monitors and
    the Degrade harness are deterministic by construction. The async
    runtime's δ is a {e real} duration, which would make its stall
    detection untestable — so every wire component that compares against a
    deadline takes one of these instead of calling the OS directly. [real]
    is the production clock; [fake] is a hand-advanced one the tests use to
    make timer expiry a pure function of the script. *)

type t = {
  now : unit -> float;  (** seconds, monotonic within a run *)
  sleep : float -> unit;  (** back off for this many seconds *)
}

val real : t
(** [Unix.gettimeofday] / [Unix.sleepf]. *)

val fake : ?start:float -> unit -> t * (float -> unit)
(** [fake ()] is a clock that only moves when told: [now] reads a cell,
    [sleep d] advances it by [d], and the returned function advances it
    externally. Single-domain use only (tests). *)
