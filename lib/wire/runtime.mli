(** The [Async_domains] runtime: every process is its own OCaml 5 domain,
    messages are serialized bytes on a real transport, and δ is a real
    monotonic-clock deadline.

    {b Slot protocol.} The paper's synchrony assumption — sent at τ,
    delivered by τ+1 — is realized with a barrier-plus-timer: after
    stepping slot τ a process writes its protocol frames, then a [Done τ]
    marker, to every peer. A process enters slot τ+1 once it holds
    [Done τ] from {e all} peers, or once δ (real time) expires — whichever
    comes first. Links are FIFO, so a peer's marker certifies that all of
    its slot-τ frames are already in; on a fault-free run every barrier
    completes and the delivery sets equal the lock-step oracle's {e
    exactly}, making the differential gate deterministic — the timer is
    pure safety net, and it is how the runtime degrades (to late frames,
    then to a stall verdict) instead of wedging when bytes are corrupted
    or a peer dies.

    {b Model.} Honest executions only ([f = 0], the chaos harness's
    setting): the rushing adaptive adversary of the lock-step engine needs
    a global simulation view that a decentralized runtime by definition
    does not have. The adversarial surface here is the {e network} — the
    byte-fault stage ({!Mewc_sim.Faults.byte_plan}) corrupts encoded
    frames below the codec, and the frame digest turns any corruption into
    a rejected frame (an omission) rather than a forgery, preserving the
    authenticated-links assumption the safety argument needs.

    Every run is seeded identically to [Instances.run]: same
    [Pki.setup ~seed], same machines, same horizon. *)

type kind = Sync_oracle | Async_domains

val kind_of_string : string -> (kind, string) result
val kind_to_string : kind -> string

(** The deadman watchdog behind the runtime's stall verdicts, with the
    clock injected so liveness classification is testable on a fake timer
    (the lock-step harness keeps its slot-counter clock). *)
module Stall : sig
  type t

  val create : clock:Clock.t -> budget:float -> t
  (** Expired once [budget] seconds pass without a {!beat}. *)

  val beat : t -> unit
  (** Progress happened; re-arm. *)

  val expired : t -> bool
  val since_beat : t -> float
end

type stats = {
  frames_sent : int;  (** protocol frames actually written (markers excluded) *)
  bytes_sent : int;  (** their encoded bytes, frame overhead included *)
  encoded_words : int;  (** Σ {!Codec.words_of_bytes} over sent payloads *)
  retries : int;  (** transient-full-link send retries that later succeeded *)
  send_timeouts : int;  (** sends abandoned at the deadline (frame lost) *)
  frame_faults : int;  (** byte-fault stage activations *)
  decode_rejects : int;  (** malformed spans dropped by receivers *)
  late_frames : int;  (** frames delivered after their model slot *)
  deadline_expiries : int;  (** slot barriers that ended on the δ timer *)
}

type 'd outcome = {
  decisions : 'd option array;
  decided_slots : int option array;  (** the protocol's own [decided_at] *)
  decided_strs : string option array;
  words : int array;
      (** per-process words charged under the meter's rule: every
          non-self-addressed send at its protocol word cost *)
  messages : int array;
  slots : int;  (** horizon executed *)
  stats : stats;
  wire_events : string Mewc_sim.Trace.event list;
      (** the run's [Frame_fault] / [Decode_reject] events, merged across
          domains and sorted by (slot, src/dst, seq) *)
  stalled : Mewc_prelude.Pid.t list;
      (** processes stopped early by the deadman watchdog *)
  failures : (Mewc_prelude.Pid.t * string) list;
      (** domains that died on an exception — always empty unless there is
          a bug; byte faults must never put anything here *)
}

val default_delta : float
(** 5 s: generous, because on fault-free runs the barrier — not the timer
    — advances slots; chaos runs pass an aggressive δ instead. *)

val run :
  ('p, 's, 'm, 'd) Mewc_core.Protocol.t ->
  codec:'m Codec.t ->
  cfg:Mewc_sim.Config.t ->
  ?seed:int64 ->
  ?delta:float ->
  ?deadman:float ->
  ?clock:Clock.t ->
  ?byte_faults:Mewc_sim.Faults.byte_plan ->
  params:'p ->
  unit ->
  'd outcome
(** Run [P] to its static horizon on the async transport. [deadman]
    defaults to [max 30 (horizon × δ × 2)] seconds of per-process
    no-progress tolerance; [clock] (default {!Clock.real}) feeds every
    deadline comparison, including the {!Stall} watchdogs. Raises
    [Invalid_argument] on invalid params or byte plan. *)
