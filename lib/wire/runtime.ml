open Mewc_prelude
open Mewc_sim

type kind = Sync_oracle | Async_domains

let kind_of_string = function
  | "sync" | "sync-oracle" -> Ok Sync_oracle
  | "async" | "async-domains" -> Ok Async_domains
  | s -> Error (Printf.sprintf "unknown runtime %S (expected sync or async)" s)

let kind_to_string = function
  | Sync_oracle -> "sync"
  | Async_domains -> "async"

module Stall = struct
  type t = { clock : Clock.t; budget : float; mutable last : float }

  let create ~clock ~budget = { clock; budget; last = clock.Clock.now () }
  let beat s = s.last <- s.clock.Clock.now ()
  let since_beat s = s.clock.Clock.now () -. s.last
  let expired s = since_beat s > s.budget
end

type stats = {
  frames_sent : int;
  bytes_sent : int;
  encoded_words : int;
  retries : int;
  send_timeouts : int;
  frame_faults : int;
  decode_rejects : int;
  late_frames : int;
  deadline_expiries : int;
}

let zero_stats =
  {
    frames_sent = 0;
    bytes_sent = 0;
    encoded_words = 0;
    retries = 0;
    send_timeouts = 0;
    frame_faults = 0;
    decode_rejects = 0;
    late_frames = 0;
    deadline_expiries = 0;
  }

let add_stats a b =
  {
    frames_sent = a.frames_sent + b.frames_sent;
    bytes_sent = a.bytes_sent + b.bytes_sent;
    encoded_words = a.encoded_words + b.encoded_words;
    retries = a.retries + b.retries;
    send_timeouts = a.send_timeouts + b.send_timeouts;
    frame_faults = a.frame_faults + b.frame_faults;
    decode_rejects = a.decode_rejects + b.decode_rejects;
    late_frames = a.late_frames + b.late_frames;
    deadline_expiries = a.deadline_expiries + b.deadline_expiries;
  }

type 'd outcome = {
  decisions : 'd option array;
  decided_slots : int option array;
  decided_strs : string option array;
  words : int array;
  messages : int array;
  slots : int;
  stats : stats;
  wire_events : string Trace.event list;
  stalled : Pid.t list;
  failures : (Pid.t * string) list;
}

let default_delta = 5.0

(* One process's run, executed inside its own domain. *)
type 'd proc_result = {
  r_decision : 'd option;
  r_decided_at : int option;
  r_str : string option;
  r_words : int;
  r_msgs : int;
  r_stats : stats;
  r_events : string Trace.event list;
  r_stalled : bool;
  r_fail : string option;
}

(* Mutable per-domain tallies; folded into the immutable [stats] at exit. *)
type tally = {
  mutable t_frames : int;
  mutable t_bytes : int;
  mutable t_enc_words : int;
  mutable t_retries : int;
  mutable t_timeouts : int;
  mutable t_faults : int;
  mutable t_rejects : int;
  mutable t_late : int;
  mutable t_expiries : int;
}

let run (type p s m d) (protocol : (p, s, m, d) Mewc_core.Protocol.t)
    ~(codec : m Codec.t) ~cfg ?(seed = 1L) ?(delta = default_delta) ?deadman
    ?(clock = Clock.real) ?(byte_faults = Faults.byte_none) ~(params : p) () :
    d outcome =
  let module P = (val protocol) in
  P.validate_params ~cfg ~params;
  (match Faults.validate_byte byte_faults with
  | Ok () -> ()
  | Error e -> invalid_arg (Printf.sprintf "Runtime.run: %s" e));
  let n = (cfg : Config.t).n in
  let horizon = P.horizon ~cfg ~params in
  let deadman =
    match deadman with
    | Some d -> d
    | None -> Float.max 30.0 (float_of_int horizon *. delta *. 2.0)
  in
  let pki, secrets = Mewc_crypto.Pki.setup ~seed ~n () in
  let hub = Transport.create ~n in
  let marker_seq = 1_000_000 in
  let body pid () : d proc_result =
    let ep = Transport.endpoint hub ~pid in
    let machine = P.machine ~cfg ~pki ~secret:secrets.(pid) ~params ~pid in
    let state = ref machine.Process.init in
    let tl =
      {
        t_frames = 0;
        t_bytes = 0;
        t_enc_words = 0;
        t_retries = 0;
        t_timeouts = 0;
        t_faults = 0;
        t_rejects = 0;
        t_late = 0;
        t_expiries = 0;
      }
    in
    let events = ref [] in
    let words = ref 0 and msgs = ref 0 in
    (* frames buffered for future slots, keyed by the sender-stamped slot *)
    let buffer : (int, Codec.frame list ref) Hashtbl.t = Hashtbl.create 32 in
    (* done_seen.(slot) = which peers' [Done slot] markers arrived *)
    let done_seen : (int, bool array) Hashtbl.t = Hashtbl.create 32 in
    let mark_done slot src =
      if src >= 0 && src < n && src <> pid then begin
        let arr =
          match Hashtbl.find_opt done_seen slot with
          | Some a -> a
          | None ->
            let a = Array.make n false in
            Hashtbl.replace done_seen slot a;
            a
        in
        arr.(src) <- true
      end
    in
    let barrier_complete slot =
      match Hashtbl.find_opt done_seen slot with
      | None -> n = 1
      | Some a ->
        let ok = ref true in
        for q = 0 to n - 1 do
          if q <> pid && not a.(q) then ok := false
        done;
        !ok
    in
    let buffer_frame (f : Codec.frame) =
      match Hashtbl.find_opt buffer f.slot with
      | Some l -> l := f :: !l
      | None -> Hashtbl.replace buffer f.slot (ref [ f ])
    in
    (* Wait for every peer's [Done prev_slot] or the δ deadline. FIFO links
       mean a seen marker certifies the peer's prev_slot frames arrived. *)
    let gather ~cur_slot prev_slot =
      let deadline = clock.Clock.now () +. delta in
      let rec loop () =
        if not (barrier_complete prev_slot) then
          match Transport.recv ep ~clock ~deadline with
          | `Frame f ->
            if f.kind = Codec.Done then mark_done f.slot f.src
            else buffer_frame f;
            loop ()
          | `Rejected e ->
            tl.t_rejects <- tl.t_rejects + 1;
            events :=
              Trace.Decode_reject
                { slot = cur_slot; dst = pid; reason = Codec.error_to_string e }
              :: !events;
            loop ()
          | `Timeout -> tl.t_expiries <- tl.t_expiries + 1
      in
      loop ();
      Hashtbl.remove done_seen prev_slot
    in
    (* Everything buffered for slots <= upto becomes this slot's inbox,
       merged with loopback sends and sorted by (src, slot, seq) — the
       lock-step engine's delivery order. *)
    let deliver ~cur_slot ~upto self_msgs =
      let collected = ref [] in
      Hashtbl.iter
        (fun slot frames -> if slot <= upto then collected := (slot, frames) :: !collected)
        buffer;
      let decoded = ref [] in
      List.iter
        (fun (slot, frames) ->
          Hashtbl.remove buffer slot;
          if slot < upto then tl.t_late <- tl.t_late + List.length !frames;
          List.iter
            (fun (f : Codec.frame) ->
              match Codec.decode codec f.payload with
              | Ok msg -> decoded := (f.src, f.slot, f.seq, msg) :: !decoded
              | Error e ->
                tl.t_rejects <- tl.t_rejects + 1;
                events :=
                  Trace.Decode_reject
                    {
                      slot = cur_slot;
                      dst = pid;
                      reason = Codec.error_to_string e;
                    }
                  :: !events)
            !frames)
        !collected;
      let self = List.map (fun (seq, msg) -> (pid, upto, seq, msg)) self_msgs in
      List.concat [ self; !decoded ]
      |> List.sort (fun (s1, sl1, q1, _) (s2, sl2, q2, _) ->
             compare (s1, sl1, q1) (s2, sl2, q2))
      |> List.map (fun (src, sent_at, _, msg) ->
             { Envelope.src; dst = pid; sent_at; msg })
    in
    (* Reorder faults hold a frame back until the link's next write. *)
    let held = Array.make n [] in
    let raw_send ~deadline dst bytes =
      match Transport.send ep ~clock ~deadline ~dst bytes with
      | `Sent r -> tl.t_retries <- tl.t_retries + r
      | `Timeout -> tl.t_timeouts <- tl.t_timeouts + 1
    in
    let link_send ~deadline dst bytes =
      raw_send ~deadline dst bytes;
      let flush = List.rev held.(dst) in
      held.(dst) <- [];
      List.iter (raw_send ~deadline dst) flush
    in
    let send_frame ~deadline ~slot ~seq dst (frame : Codec.frame) =
      let bytes = Codec.encode_frame frame in
      (* Barrier markers ride the same faultable byte path but are runtime
         overhead, not protocol traffic — the stats meter protocol frames
         only, so they reconcile against the lock-step meter. *)
      if frame.kind = Codec.Msg then begin
        tl.t_frames <- tl.t_frames + 1;
        tl.t_bytes <- tl.t_bytes + String.length bytes;
        tl.t_enc_words <-
          tl.t_enc_words + Codec.words_of_bytes (String.length frame.payload)
      end;
      match
        Faults.byte_fate byte_faults ~slot ~src:pid ~dst ~seq
          ~len:(String.length bytes)
      with
      | None -> link_send ~deadline dst bytes
      | Some fault ->
        tl.t_faults <- tl.t_faults + 1;
        events :=
          Trace.Frame_fault { slot; src = pid; dst; seq; fault } :: !events;
        (match fault with
        | Faults.Reorder -> held.(dst) <- bytes :: held.(dst)
        | _ -> link_send ~deadline dst (Faults.apply_byte_fault fault bytes))
    in
    let stall = Stall.create ~clock ~budget:deadman in
    let stalled = ref false in
    let self_pending = ref [] in
    let slot = ref 0 in
    while !slot < horizon && not !stalled do
      let tau = !slot in
      if Stall.expired stall then stalled := true
      else begin
        if tau > 0 then gather ~cur_slot:tau (tau - 1);
        let inbox =
          if tau = 0 then []
          else deliver ~cur_slot:tau ~upto:(tau - 1) (List.rev !self_pending)
        in
        self_pending := [];
        let state', sends = machine.Process.step ~slot:tau ~inbox !state in
        state := state';
        let deadline = clock.Clock.now () +. delta in
        List.iteri
          (fun seq ((msg : m), dst) ->
            if dst = pid then begin
              (* Loopback still crosses the codec — the bytes discipline is
                 uniform — but is never charged or byte-faulted, matching
                 the engine's free self-delivery. *)
              match Codec.decode codec (Codec.encode codec msg) with
              | Ok msg' -> self_pending := (seq, msg') :: !self_pending
              | Error e ->
                failwith
                  (Printf.sprintf "codec round-trip failure on %s: %s" P.name
                     (Codec.error_to_string e))
            end
            else begin
              words := !words + P.words msg;
              msgs := !msgs + 1;
              let payload = Codec.encode codec msg in
              send_frame ~deadline ~slot:tau ~seq dst
                { Codec.kind = Codec.Msg; src = pid; dst; slot = tau; seq; payload }
            end)
          sends;
        for dst = 0 to n - 1 do
          if dst <> pid then
            send_frame ~deadline ~slot:tau ~seq:marker_seq dst
              {
                Codec.kind = Codec.Done;
                src = pid;
                dst;
                slot = tau;
                seq = marker_seq;
                payload = "";
              }
        done;
        Stall.beat stall;
        incr slot
      end
    done;
    {
      r_decision = P.decision !state;
      r_decided_at = P.decided_at !state;
      r_str = P.decided_str !state;
      r_words = !words;
      r_msgs = !msgs;
      r_stats =
        {
          frames_sent = tl.t_frames;
          bytes_sent = tl.t_bytes;
          encoded_words = tl.t_enc_words;
          retries = tl.t_retries;
          send_timeouts = tl.t_timeouts;
          frame_faults = tl.t_faults;
          decode_rejects = tl.t_rejects;
          late_frames = tl.t_late;
          deadline_expiries = tl.t_expiries;
        };
      r_events = List.rev !events;
      r_stalled = !stalled;
      r_fail = None;
    }
  in
  let guarded pid () =
    try body pid () with
    | e ->
      {
        r_decision = None;
        r_decided_at = None;
        r_str = None;
        r_words = 0;
        r_msgs = 0;
        r_stats = zero_stats;
        r_events = [];
        r_stalled = true;
        r_fail = Some (Printexc.to_string e);
      }
  in
  let results =
    if n = 1 then [| guarded 0 () |]
    else begin
      let domains = Array.init n (fun pid -> Domain.spawn (guarded pid)) in
      Array.map Domain.join domains
    end
  in
  Transport.close hub;
  let event_key : string Trace.event -> int * int * int * int = function
    | Trace.Frame_fault { slot; src; dst; seq; _ } -> (slot, 0, (src * 4096) + dst, seq)
    | Trace.Decode_reject { slot; dst; _ } -> (slot, 1, dst, 0)
    | _ -> (max_int, 2, 0, 0)
  in
  {
    decisions = Array.map (fun r -> r.r_decision) results;
    decided_slots = Array.map (fun r -> r.r_decided_at) results;
    decided_strs = Array.map (fun r -> r.r_str) results;
    words = Array.map (fun r -> r.r_words) results;
    messages = Array.map (fun r -> r.r_msgs) results;
    slots = horizon;
    stats = Array.fold_left (fun acc r -> add_stats acc r.r_stats) zero_stats results;
    wire_events =
      Array.to_list results
      |> List.concat_map (fun r -> r.r_events)
      |> List.sort (fun a b -> compare (event_key a) (event_key b));
    stalled =
      Array.to_list results
      |> List.mapi (fun pid r -> (pid, r.r_stalled))
      |> List.filter_map (fun (pid, s) -> if s then Some pid else None);
    failures =
      Array.to_list results
      |> List.mapi (fun pid r -> (pid, r.r_fail))
      |> List.filter_map (fun (pid, f) -> Option.map (fun m -> (pid, m)) f);
  }
