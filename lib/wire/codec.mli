(** The [mewc-wire/1] binary format: compact, versioned, length-prefixed —
    and decoded {e totally}.

    The lock-step engine ships OCaml values between processes by reference;
    the async runtime ships bytes, so everything a protocol message can
    carry — domain values, signatures, threshold certificates, envelopes —
    needs a stable binary encoding. Two properties are load-bearing:

    - {b Totality.} [decode] never raises, whatever the input: every
      malformed prefix maps to a typed {!error} ([Truncated], [Overlong],
      [Bad_tag], [Bad_length], [Bad_digest], [Trailing]). This is what lets
      the transport's decode-reject policy drop garbage instead of dying.
    - {b Canonicity.} Every value has exactly one encoding: varints are
      minimal (non-minimal is [Overlong]), booleans and option/variant tags
      are strict, signer sets are delta-coded in ascending order, lengths
      are exact and trailing bytes are rejected. Hence the testable law
      pair: [decode (encode v) = Ok v], and any input that decodes at all
      re-encodes byte-identically.

    Frames (the transport's unit) additionally carry a truncated-SHA-256
    digest over header and payload, so random byte corruption becomes a
    rejected frame — an omission — rather than a forged message from a
    correct process; a real deployment would use a per-link MAC here.
    {!scan} resynchronizes a byte stream on the magic after a rejected
    frame, which is what makes truncation survivable mid-stream. *)

type error =
  | Truncated  (** input ended inside a field *)
  | Overlong  (** non-minimal varint — a second spelling of a value *)
  | Bad_tag of { what : string; tag : int }
      (** unknown constructor/option/bool tag, or bad magic/version *)
  | Bad_length of { what : string; len : int }
      (** a count or length outside the field's declared bound *)
  | Bad_digest  (** frame checksum mismatch *)
  | Trailing of { left : int }  (** well-formed value, then [left] junk bytes *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

(** {1 Codecs} *)

type reader
(** A bounded cursor over an immutable byte string. *)

type 'a t = {
  write : Buffer.t -> 'a -> unit;
  read : reader -> ('a, error) result;
}
(** A codec pairs a total writer with a total reader. Writers may raise
    [Invalid_argument] on values outside the format's bounds (negative
    ints, oversized strings) — that is a sender-side bug, not a wire
    condition; readers never raise. *)

val encode : 'a t -> 'a -> string
val decode : 'a t -> string -> ('a, error) result
(** [decode c s] additionally rejects trailing bytes, so [decode c] is a
    partial inverse of [encode c] on exactly the canonical encodings. *)

val encoded_size : 'a t -> 'a -> int

(** {1 Primitive readers/writers}

    For hand-written variant codecs (see [Zoo]). Every [R] op advances the
    cursor only on success. *)

module W : sig
  val u8 : Buffer.t -> int -> unit
  val vint : Buffer.t -> int -> unit
  (** Minimal LEB128; raises [Invalid_argument] on negatives. *)

  val bool : Buffer.t -> bool -> unit
  val raw : Buffer.t -> string -> unit
  val str : Buffer.t -> string -> unit
  (** Length-prefixed bytes. *)
end

module R : sig
  val u8 : reader -> (int, error) result
  val vint : reader -> (int, error) result
  val bool : reader -> (bool, error) result
  val raw : len:int -> reader -> (string, error) result
  val str : max:int -> reader -> (string, error) result
end

(** {1 Combinators} *)

val vint_c : int t
val bool_c : bool t
val str_c : max:int -> string t
val option_c : 'a t -> 'a option t
val list_c : max:int -> 'a t -> 'a list t
val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

(** {1 Domain codecs} *)

val value_str : string t
(** {!Mewc_sim.Value.Str} (≤ 1024 bytes). *)

val value_bool : bool t

val sig_c : Mewc_crypto.Pki.Sig.t t
(** Signer id + 32-byte tag, via {!Mewc_crypto.Pki.Wire}. A decoded
    signature is a claim; verification still decides it. *)

val tsig_c : Mewc_crypto.Pki.Tsig.t t
(** Signer set (delta-coded ascending — canonical by construction) +
    32-byte aggregate tag. *)

val cert_c : Mewc_crypto.Certificate.t t
(** Purpose, payload, threshold signature. *)

val envelope_c : 'm t -> 'm Mewc_sim.Envelope.t t

(** {1 Frames}

    The transport's unit: what one [write] puts on a link. *)

type kind =
  | Msg  (** payload is one encoded protocol message *)
  | Done  (** slot-barrier marker; empty payload *)

type frame = {
  kind : kind;
  src : int;
  dst : int;
  slot : int;  (** sender's slot at send time *)
  seq : int;  (** index within the sender's slot, distinguishes same-link frames *)
  payload : string;
}

val version : int
(** 1 — the [mewc-wire/1] format. *)

val max_frame : int
(** 4096: a frame must fit in one atomic pipe write ([PIPE_BUF]), which is
    also the fuzz budget's input bound. *)

val digest_len : int
(** 8 — the truncated SHA-256 frame checksum. *)

val encode_frame : frame -> string
(** Raises [Invalid_argument] if the encoding would exceed {!max_frame}. *)

val decode_frame : string -> (frame, error) result

val scan :
  string ->
  start:int ->
  [ `Frame of frame * int  (** parsed; next unconsumed index *)
  | `Need_more of int  (** keep bytes from this index, await more input *)
  | `Skip of int * error  (** malformed here; reject and rescan from index *)
  ]
(** One step of stream reassembly: find the next magic at or after
    [start], then try to parse a frame there. [`Need_more] is returned
    when the buffer holds a valid proper prefix (more bytes may complete
    it — the transport re-enters on the next read); [`Skip] stamps one
    decode rejection and resumes scanning {e past} the bad magic, which
    is how the stream regains framing after a truncated frame. *)

(** {1 Word reconciliation} *)

val word_bytes : int
(** 32: the byte budget backing one of the paper's "words" (a word holds a
    constant number of signatures/values; one signature tag is 32 bytes). *)

val words_of_bytes : int -> int
(** [ceil (bytes / word_bytes)] — an encoded size in words, comparable
    against [Meter]'s per-message charges. *)
