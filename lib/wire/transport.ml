type hub = {
  n : int;
  reads : Unix.file_descr array;  (* reads.(p): p's inbox, read end *)
  writes : Unix.file_descr array;  (* writes.(p): p's inbox, write end *)
}

type endpoint = {
  hub : hub;
  pid : int;
  mutable acc : string;  (* unparsed inbox bytes *)
  mutable start : int;  (* scan position within [acc] *)
  read_buf : Bytes.t;
}

let create ~n =
  let pipes = Array.init n (fun _ -> Unix.pipe ~cloexec:true ()) in
  Array.iter
    (fun (rd, wr) ->
      Unix.set_nonblock rd;
      Unix.set_nonblock wr)
    pipes;
  { n; reads = Array.map fst pipes; writes = Array.map snd pipes }

let endpoint hub ~pid =
  if pid < 0 || pid >= hub.n then invalid_arg "Transport.endpoint";
  { hub; pid; acc = ""; start = 0; read_buf = Bytes.create 65536 }

let close hub =
  let quietly fd = try Unix.close fd with Unix.Unix_error _ -> () in
  Array.iter quietly hub.reads;
  Array.iter quietly hub.writes

(* Retry backoff between EAGAIN probes: long enough not to spin the other
   domains off the core, short enough to be invisible next to δ. *)
let backoff = 0.0002

let send ep ~clock ~deadline ~dst bytes =
  if String.length bytes > Codec.max_frame then
    invalid_arg "Transport.send: frame exceeds max_frame";
  let fd = ep.hub.writes.(dst) in
  let len = String.length bytes in
  let rec go retries =
    match Unix.write_substring fd bytes 0 len with
    | written ->
      (* O_NONBLOCK pipe writes of <= PIPE_BUF bytes are atomic: the kernel
         takes all of it or none (EAGAIN). *)
      assert (written = len);
      `Sent retries
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
      if clock.Clock.now () >= deadline then `Timeout
      else begin
        clock.Clock.sleep backoff;
        go (retries + 1)
      end
  in
  go 0

let compact ep =
  if ep.start > 0 then begin
    ep.acc <- String.sub ep.acc ep.start (String.length ep.acc - ep.start);
    ep.start <- 0
  end

let pending ep = String.length ep.acc - ep.start

let recv ep ~clock ~deadline =
  let fd = ep.hub.reads.(ep.pid) in
  let rec go () =
    match Codec.scan ep.acc ~start:ep.start with
    | `Frame (f, next) ->
      ep.start <- next;
      `Frame f
    | `Skip (next, e) ->
      ep.start <- next;
      `Rejected e
    | `Need_more keep ->
      ep.start <- keep;
      compact ep;
      let timeout = deadline -. clock.Clock.now () in
      if timeout <= 0.0 then `Timeout
      else begin
        match Unix.select [ fd ] [] [] timeout with
        | [], _, _ -> `Timeout
        | _ :: _, _, _ -> (
          match Unix.read fd ep.read_buf 0 (Bytes.length ep.read_buf) with
          | 0 -> `Timeout (* every write end closed: treat as quiescent *)
          | k ->
            ep.acc <- ep.acc ^ Bytes.sub_string ep.read_buf 0 k;
            go ()
          | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
            go ())
        | exception Unix.Unix_error (EINTR, _, _) -> go ()
      end
  in
  go ()
