open Mewc_crypto

type error =
  | Truncated
  | Overlong
  | Bad_tag of { what : string; tag : int }
  | Bad_length of { what : string; len : int }
  | Bad_digest
  | Trailing of { left : int }

let error_to_string = function
  | Truncated -> "truncated"
  | Overlong -> "overlong varint"
  | Bad_tag { what; tag } -> Printf.sprintf "bad %s tag %d" what tag
  | Bad_length { what; len } -> Printf.sprintf "bad %s length %d" what len
  | Bad_digest -> "frame digest mismatch"
  | Trailing { left } -> Printf.sprintf "%d trailing bytes" left

let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

type reader = { buf : string; mutable pos : int; limit : int }

type 'a t = {
  write : Buffer.t -> 'a -> unit;
  read : reader -> ('a, error) result;
}

let ( let* ) = Result.bind

module W = struct
  let u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

  let vint b v =
    if v < 0 then invalid_arg "Codec.W.vint: negative";
    let rec go v =
      if v < 0x80 then u8 b v
      else begin
        u8 b (0x80 lor (v land 0x7f));
        go (v lsr 7)
      end
    in
    go v

  let bool b v = u8 b (if v then 1 else 0)
  let raw b s = Buffer.add_string b s

  let str b s =
    vint b (String.length s);
    raw b s
end

module R = struct
  let u8 r =
    if r.pos >= r.limit then Error Truncated
    else begin
      let c = Char.code r.buf.[r.pos] in
      r.pos <- r.pos + 1;
      Ok c
    end

  (* Minimal LEB128, at most 8 bytes (56 bits — every quantity we ship is
     far below that). A final zero continuation byte would be a second
     spelling of a shorter encoding: Overlong. *)
  let vint r =
    let rec go acc shift =
      if shift > 49 then Error (Bad_length { what = "varint"; len = shift / 7 })
      else
        let* b = u8 r in
        let acc = acc lor ((b land 0x7f) lsl shift) in
        if b land 0x80 <> 0 then go acc (shift + 7)
        else if b = 0 && shift > 0 then Error Overlong
        else Ok acc
    in
    go 0 0

  let bool r =
    let* b = u8 r in
    match b with
    | 0 -> Ok false
    | 1 -> Ok true
    | tag -> Error (Bad_tag { what = "bool"; tag })

  let raw ~len r =
    if len < 0 then Error (Bad_length { what = "raw"; len })
    else if r.limit - r.pos < len then Error Truncated
    else begin
      let s = String.sub r.buf r.pos len in
      r.pos <- r.pos + len;
      Ok s
    end

  let str ~max r =
    let* len = vint r in
    if len > max then Error (Bad_length { what = "string"; len })
    else raw ~len r
end

let encode c v =
  let b = Buffer.create 64 in
  c.write b v;
  Buffer.contents b

let decode c s =
  let r = { buf = s; pos = 0; limit = String.length s } in
  let* v = c.read r in
  if r.pos < r.limit then Error (Trailing { left = r.limit - r.pos }) else Ok v

let encoded_size c v = String.length (encode c v)

(* ---- combinators ------------------------------------------------------- *)

let vint_c = { write = W.vint; read = R.vint }
let bool_c = { write = W.bool; read = R.bool }
let str_c ~max = { write = W.str; read = R.str ~max }

let option_c c =
  {
    write =
      (fun b -> function
        | None -> W.u8 b 0
        | Some v ->
          W.u8 b 1;
          c.write b v);
    read =
      (fun r ->
        let* tag = R.u8 r in
        match tag with
        | 0 -> Ok None
        | 1 ->
          let* v = c.read r in
          Ok (Some v)
        | tag -> Error (Bad_tag { what = "option"; tag }));
  }

let list_c ~max c =
  {
    write =
      (fun b vs ->
        W.vint b (List.length vs);
        List.iter (c.write b) vs);
    read =
      (fun r ->
        let* len = R.vint r in
        if len > max then Error (Bad_length { what = "list"; len })
        else
          let rec go acc k =
            if k = 0 then Ok (List.rev acc)
            else
              let* v = c.read r in
              go (v :: acc) (k - 1)
          in
          go [] len);
  }

let pair ca cb =
  {
    write =
      (fun b (x, y) ->
        ca.write b x;
        cb.write b y);
    read =
      (fun r ->
        let* x = ca.read r in
        let* y = cb.read r in
        Ok (x, y));
  }

let triple ca cb cc =
  {
    write =
      (fun b (x, y, z) ->
        ca.write b x;
        cb.write b y;
        cc.write b z);
    read =
      (fun r ->
        let* x = ca.read r in
        let* y = cb.read r in
        let* z = cc.read r in
        Ok (x, y, z));
  }

(* ---- domain codecs ----------------------------------------------------- *)

let value_str = str_c ~max:1024
let value_bool = bool_c

let tag_c =
  {
    write = (fun b t -> W.raw b (Sha256.to_raw t));
    read =
      (fun r ->
        let* s = R.raw ~len:32 r in
        match Sha256.of_raw s with
        | Some t -> Ok t
        | None -> Error (Bad_length { what = "digest"; len = String.length s }));
  }

let sig_c =
  {
    write =
      (fun b s ->
        let signer, tag = Pki.Wire.sig_view s in
        W.vint b signer;
        tag_c.write b tag);
    read =
      (fun r ->
        let* signer = R.vint r in
        let* tag = tag_c.read r in
        Ok (Pki.Wire.sig_of_view ~signer ~tag));
  }

(* Signer sets are delta-coded over the ascending order: first pid, then
   successive gaps minus one. Every byte string that decodes at all decodes
   to a strictly increasing list — the set's single canonical spelling. *)
let tsig_c =
  let max_signers = 4096 in
  {
    write =
      (fun b ts ->
        let signers, tag = Pki.Wire.tsig_view ts in
        W.vint b (List.length signers);
        ignore
          (List.fold_left
             (fun prev p ->
               (match prev with
               | None -> W.vint b p
               | Some q -> W.vint b (p - q - 1));
               Some p)
             None signers);
        tag_c.write b tag);
    read =
      (fun r ->
        let* count = R.vint r in
        if count > max_signers then
          Error (Bad_length { what = "tsig-signers"; len = count })
        else
          let rec go acc prev k =
            if k = 0 then Ok (List.rev acc)
            else
              let* d = R.vint r in
              let p = match prev with None -> d | Some q -> q + 1 + d in
              go (p :: acc) (Some p) (k - 1)
          in
          let* signers = go [] None count in
          let* tag = tag_c.read r in
          Ok (Pki.Wire.tsig_of_view ~signers ~tag));
  }

let cert_c =
  {
    write =
      (fun b c ->
        let purpose, payload, tsig = Certificate.Wire.view c in
        W.str b purpose;
        W.str b payload;
        tsig_c.write b tsig);
    read =
      (fun r ->
        let* purpose = R.str ~max:64 r in
        let* payload = R.str ~max:2048 r in
        let* tsig = tsig_c.read r in
        Ok (Certificate.Wire.of_view ~purpose ~payload ~tsig));
  }

let envelope_c mc =
  {
    write =
      (fun b (e : _ Mewc_sim.Envelope.t) ->
        W.vint b e.src;
        W.vint b e.dst;
        W.vint b e.sent_at;
        mc.write b e.msg);
    read =
      (fun r ->
        let* src = R.vint r in
        let* dst = R.vint r in
        let* sent_at = R.vint r in
        let* msg = mc.read r in
        Ok { Mewc_sim.Envelope.src; dst; sent_at; msg });
  }

(* ---- frames ------------------------------------------------------------ *)

type kind = Msg | Done

type frame = {
  kind : kind;
  src : int;
  dst : int;
  slot : int;
  seq : int;
  payload : string;
}

let version = 1
let magic = "MW"
let max_frame = 4096
let digest_len = 8
let digest_salt = "mewc-wire/1|"

let frame_digest body =
  String.sub (Sha256.to_raw (Sha256.digest (digest_salt ^ body))) 0 digest_len

let encode_frame f =
  let b = Buffer.create 64 in
  W.raw b magic;
  W.u8 b version;
  W.u8 b (match f.kind with Msg -> 0 | Done -> 1);
  W.vint b f.src;
  W.vint b f.dst;
  W.vint b f.slot;
  W.vint b f.seq;
  W.str b f.payload;
  let body = Buffer.contents b in
  if String.length body + digest_len > max_frame then
    invalid_arg
      (Printf.sprintf "Codec.encode_frame: %d bytes exceeds max frame %d"
         (String.length body + digest_len)
         max_frame);
  body ^ frame_digest body

(* The frame reader proper, positioned just past the magic. *)
let read_frame_at r =
  let start = r.pos - String.length magic in
  let* v = R.u8 r in
  if v <> version then Error (Bad_tag { what = "version"; tag = v })
  else
    let* k = R.u8 r in
    let* kind =
      match k with
      | 0 -> Ok Msg
      | 1 -> Ok Done
      | tag -> Error (Bad_tag { what = "frame-kind"; tag })
    in
    let* src = R.vint r in
    let* dst = R.vint r in
    let* slot = R.vint r in
    let* seq = R.vint r in
    let* payload = R.str ~max:(max_frame - digest_len) r in
    let body_end = r.pos in
    let* digest = R.raw ~len:digest_len r in
    if body_end - start > max_frame then
      Error (Bad_length { what = "frame"; len = body_end - start })
    else if
      not (String.equal digest (frame_digest (String.sub r.buf start (body_end - start))))
    then Error Bad_digest
    else Ok { kind; src; dst; slot; seq; payload }

let decode_frame s =
  let r = { buf = s; pos = 0; limit = String.length s } in
  let* m = R.raw ~len:(String.length magic) r in
  if not (String.equal m magic) then
    Error (Bad_tag { what = "magic"; tag = (if String.length s = 0 then -1 else Char.code s.[0]) })
  else
    let* f = read_frame_at r in
    if r.pos < r.limit then Error (Trailing { left = r.limit - r.pos }) else Ok f

let rec find_magic buf i =
  let len = String.length buf in
  if i >= len then len
  else
    match String.index_from_opt buf i 'M' with
    | None -> len
    | Some j ->
      if j + 1 >= len then j (* an 'M' at the very end might start a magic *)
      else if buf.[j + 1] = 'W' then j
      else find_magic buf (j + 1)

let scan buf ~start =
  let len = String.length buf in
  let j = find_magic buf start in
  if j >= len then `Need_more len (* only garbage: drop it all *)
  else if len - j < String.length magic then `Need_more j
  else
    let r = { buf; pos = j + String.length magic; limit = len } in
    match read_frame_at r with
    | Ok f -> `Frame (f, r.pos)
    | Error Truncated -> `Need_more j
    | Error e -> `Skip (j + String.length magic, e)

(* ---- word reconciliation ----------------------------------------------- *)

let word_bytes = 32
let words_of_bytes n = (n + word_bytes - 1) / word_bytes
