type t = { now : unit -> float; sleep : float -> unit }

let real = { now = Unix.gettimeofday; sleep = Unix.sleepf }

let fake ?(start = 0.0) () =
  let cell = ref start in
  let advance d = cell := !cell +. d in
  ({ now = (fun () -> !cell); sleep = advance }, advance)
