(** Wire codecs for the protocol zoo, and the differential/chaos harness
    over them.

    One hand-written codec per protocol message type, built from
    {!Codec}'s combinators. The phase-king codec is a functor over the
    value domain because the same message shape is used at three
    instantiations (strings, booleans, and the BB layer's wrapped
    [bb_value]); the weak-BA and strong-BA codecs are functors over the
    embedded fallback for the same reason. Type identities are pinned by
    applying the functors to the {e same} module paths the instances were
    built from, so each exported codec is a [Codec.t] for the instance's
    own [msg] type — no casts, no re-encoding through strings.

    The harness side packages each sound protocol with its codec as an
    {!entry}, runs it under both runtimes, and compares {!fingerprint}s:
    the differential gate of [test_wire_diff] and [mewc wire]. *)

open Mewc_core

(** {1 Message codecs} *)

val epk_str_msg : Instances.Epk_str.msg Codec.t
val epk_bool_msg : Instances.Epk_bool.msg Codec.t
val weak_str_msg : Instances.Weak_str.msg Codec.t
val bb_value_c : Adaptive_bb.bb_value Codec.t
val adaptive_bb_msg : Adaptive_bb.msg Codec.t
val binary_bb_msg : Instances.Binary_bb_bool.msg Codec.t
val strong_bool_msg : Instances.Strong_bool.msg Codec.t

(** {1 Generators}

    Deterministic random {e well-formed} messages (signatures and
    certificates are shape-valid but cryptographically meaningless — the
    codec neither knows nor cares), for the round-trip law in tests and
    [mewc wire --fuzz-codec]. *)

module Gen : sig
  val value_str : Mewc_prelude.Rng.t -> string
  (** ≤ 32 bytes — one metered word, like the protocols' real values. *)

  val sig_ : Mewc_prelude.Rng.t -> Mewc_crypto.Pki.Sig.t
  val tsig : Mewc_prelude.Rng.t -> Mewc_crypto.Pki.Tsig.t
  val cert : Mewc_prelude.Rng.t -> Mewc_crypto.Certificate.t
  val frame : Mewc_prelude.Rng.t -> Codec.frame
  val epk_str : Mewc_prelude.Rng.t -> Instances.Epk_str.msg
  val epk_bool : Mewc_prelude.Rng.t -> Instances.Epk_bool.msg
  val weak_str : Mewc_prelude.Rng.t -> Instances.Weak_str.msg
  val adaptive : Mewc_prelude.Rng.t -> Adaptive_bb.msg
  val binary : Mewc_prelude.Rng.t -> Instances.Binary_bb_bool.msg
  val strong : Mewc_prelude.Rng.t -> Instances.Strong_bool.msg
end

val fuzz_codec : count:int -> seed:int64 -> (int, string) result
(** The codec fuzz battery, [count] cases per leg: (a) random valid
    messages of every protocol round-trip ([decode ∘ encode] succeeds and
    re-encodes byte-identically); (b) random byte strings (≤ 4 KiB) never
    make any decoder raise, and anything that decodes re-encodes
    canonically; (c) single-byte/bit mutations of valid frames never make
    the frame decoder raise; (d) random frames round-trip through
    {!Codec.scan} mid-stream. [Ok cases] on success, [Error what] on the
    first law violation (an exception escaping a decoder included). *)

(** {1 The differential harness} *)

type fingerprint = {
  decided_strs : string option array;
  decided_slots : int option array;
  words : int array;
}
(** What both runtimes must agree on, per process: the printed decision,
    the slot it was reached, and the metered words sent. *)

val fingerprint_diff :
  oracle:fingerprint -> async:fingerprint -> string list
(** Human-readable mismatches; empty iff the gate passes. *)

type report = {
  fingerprint : fingerprint;
  verdict : Mewc_sim.Monitor.classification;
      (** [Unsafe] iff two processes decided differently — byte faults must
          never produce it; [Safe_stalled] when someone did not decide *)
  stats : Runtime.stats;
  stalled : Mewc_prelude.Pid.t list;
  failures : (Mewc_prelude.Pid.t * string) list;
  wire_events : string Mewc_sim.Trace.event list;
}

type entry
(** One sound protocol packaged with its codec. *)

val entries : entry list
(** The five sound protocols: fallback, weak-ba, bb, binary-bb, strong-ba. *)

val entry_name : entry -> string
val find : string -> entry option

val oracle :
  entry -> cfg:Mewc_sim.Config.t -> seed:int64 -> salt:int -> fingerprint
(** One honest lock-step run ([Instances.run], legacy scheduler), with
    params [mutate_params (default_params cfg) ~salt]. *)

val async :
  entry ->
  cfg:Mewc_sim.Config.t ->
  seed:int64 ->
  salt:int ->
  ?delta:float ->
  ?deadman:float ->
  ?byte_faults:Mewc_sim.Faults.byte_plan ->
  unit ->
  report
(** The same run under {!Runtime.run} (same seed, same params), optionally
    through the byte-fault stage. *)

val diff :
  entry ->
  cfg:Mewc_sim.Config.t ->
  seed:int64 ->
  salt:int ->
  ?delta:float ->
  unit ->
  (report, string list) result
(** Run both fault-free and compare: [Error mismatches] is a gate failure. *)
