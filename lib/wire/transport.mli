(** The byte transport under the async runtime: one bounded, unidirectional
    inbox per process, real deadlines, and frame reassembly.

    Implementation: OS pipes. Each process owns the read end of its inbox;
    every peer holds the write end. Writes are non-blocking and at most
    {!Codec.max_frame} = [PIPE_BUF] bytes, so the kernel guarantees each
    frame lands contiguously (no interleaving across concurrent writers) —
    but the pipe is {e bounded}, so a send can transiently fail with
    [EAGAIN] when the receiver lags; {!send} retries with a backoff until
    the caller's deadline ("per-link retry-with-deadline"). Receives drain
    whatever bytes are available, then {!Codec.scan} reassembles frames
    from the stream, rejecting (never raising on) malformed spans.

    This is one of the two implementations of the conceptual transport
    interface ([send]/[recv] against a monotonic clock); the other is the
    lock-step engine itself — [Runtime.Sync_oracle] — where "send" is a
    list cons and δ is the slot counter. The differential gate in
    [test_wire_diff] holds the two against each other. *)

type hub
(** The [n] pipes of one run. Created by the coordinating domain before
    spawning; closed by it after joining. *)

type endpoint
(** One process's view: its own inbox plus every peer's write end. Not
    domain-safe — exactly one domain drives each endpoint. *)

val create : n:int -> hub
val endpoint : hub -> pid:int -> endpoint

val close : hub -> unit
(** Close every fd. Call once, after all endpoint-driving domains joined. *)

val send :
  endpoint ->
  clock:Clock.t ->
  deadline:float ->
  dst:int ->
  string ->
  [ `Sent of int | `Timeout ]
(** Write one encoded frame to [dst]'s inbox. [`Sent retries] reports how
    many transient-failure retries it took; [`Timeout] means the link
    stayed full past [deadline] (the frame is not sent — an omission the
    receiver's own deadline machinery absorbs). Raises [Invalid_argument]
    on frames over {!Codec.max_frame}. *)

val recv :
  endpoint ->
  clock:Clock.t ->
  deadline:float ->
  [ `Frame of Codec.frame | `Rejected of Codec.error | `Timeout ]
(** The next event from this process's inbox: a reassembled frame, a
    rejected malformed span (the decode-reject policy — the caller stamps
    it and keeps going), or the deadline passing with no complete frame.
    Buffered bytes are served without touching the clock or the fd. *)

val pending : endpoint -> int
(** Bytes currently buffered but not yet parsed (diagnostics). *)
