open Mewc_prelude
open Mewc_crypto
open Mewc_sim
open Mewc_core

let ( let* ) = Result.bind

(* ---- echo-phase-king, generic over the value domain -------------------- *)

module Epk_codec
    (V : Value.S)
    (P : module type of Mewc_fallback.Echo_phase_king.Make (V)) (C : sig
      val value : V.t Codec.t
    end) =
struct
  open Codec

  let just : P.justification t =
    {
      write =
        (fun b -> function
          | P.Unjustified -> W.u8 b 0
          | P.Input_cert c ->
            W.u8 b 1;
            cert_c.write b c
          | P.Lock_just { level; qc } ->
            W.u8 b 2;
            W.vint b level;
            cert_c.write b qc);
      read =
        (fun r ->
          let* tag = R.u8 r in
          match tag with
          | 0 -> Ok P.Unjustified
          | 1 ->
            let* c = cert_c.read r in
            Ok (P.Input_cert c)
          | 2 ->
            let* level = R.vint r in
            let* qc = cert_c.read r in
            Ok (P.Lock_just { level; qc })
          | tag -> Error (Bad_tag { what = "epk-just"; tag }));
    }

  let proposal : P.proposal t =
    {
      write =
        (fun b (p : P.proposal) ->
          W.vint b p.p_phase;
          C.value.write b p.p_value;
          just.write b p.p_just;
          sig_c.write b p.p_king_sig;
          W.bool b p.p_just_valid);
      read =
        (fun r ->
          let* p_phase = R.vint r in
          let* p_value = C.value.read r in
          let* p_just = just.read r in
          let* p_king_sig = sig_c.read r in
          let* p_just_valid = R.bool r in
          Ok { P.p_phase; p_value; p_just; p_king_sig; p_just_valid });
    }

  let lock_c = option_c (triple vint_c C.value cert_c)
  let input_qc_c = option_c (pair C.value cert_c)

  let body : P.body t =
    {
      write =
        (fun b -> function
          | P.Input { value; share } ->
            W.u8 b 0;
            C.value.write b value;
            sig_c.write b share
          | P.Status { phase; lock; input_qc } ->
            W.u8 b 1;
            W.vint b phase;
            lock_c.write b lock;
            input_qc_c.write b input_qc
          | P.Propose p ->
            W.u8 b 2;
            proposal.write b p
          | P.Echo p ->
            W.u8 b 3;
            proposal.write b p
          | P.Vote { phase; value; share } ->
            W.u8 b 4;
            W.vint b phase;
            C.value.write b value;
            sig_c.write b share
          | P.Commit { phase; value; qc } ->
            W.u8 b 5;
            W.vint b phase;
            C.value.write b value;
            cert_c.write b qc
          | P.Ack { phase; value; share; qc } ->
            W.u8 b 6;
            W.vint b phase;
            C.value.write b value;
            sig_c.write b share;
            cert_c.write b qc
          | P.Decided { phase; value; qc } ->
            W.u8 b 7;
            W.vint b phase;
            C.value.write b value;
            cert_c.write b qc);
      read =
        (fun r ->
          let* tag = R.u8 r in
          match tag with
          | 0 ->
            let* value = C.value.read r in
            let* share = sig_c.read r in
            Ok (P.Input { value; share })
          | 1 ->
            let* phase = R.vint r in
            let* lock = lock_c.read r in
            let* input_qc = input_qc_c.read r in
            Ok (P.Status { phase; lock; input_qc })
          | 2 ->
            let* p = proposal.read r in
            Ok (P.Propose p)
          | 3 ->
            let* p = proposal.read r in
            Ok (P.Echo p)
          | 4 ->
            let* phase = R.vint r in
            let* value = C.value.read r in
            let* share = sig_c.read r in
            Ok (P.Vote { phase; value; share })
          | 5 ->
            let* phase = R.vint r in
            let* value = C.value.read r in
            let* qc = cert_c.read r in
            Ok (P.Commit { phase; value; qc })
          | 6 ->
            let* phase = R.vint r in
            let* value = C.value.read r in
            let* share = sig_c.read r in
            let* qc = cert_c.read r in
            Ok (P.Ack { phase; value; share; qc })
          | 7 ->
            let* phase = R.vint r in
            let* value = C.value.read r in
            let* qc = cert_c.read r in
            Ok (P.Decided { phase; value; qc })
          | tag -> Error (Bad_tag { what = "epk-body"; tag }));
    }

  let msg : P.msg t =
    {
      write =
        (fun b (m : P.msg) ->
          W.vint b m.round;
          body.write b m.body);
      read =
        (fun r ->
          let* round = R.vint r in
          let* body = body.read r in
          Ok { P.round; body });
    }
end

(* ---- weak BA, generic over value domain and fallback ------------------- *)

module Weak_codec
    (V : Value.S)
    (F : Fallback_intf.FALLBACK with type value = V.t)
    (P : module type of Weak_ba.Make (V) (F)) (C : sig
      val value : V.t Codec.t
      val fb : F.msg Codec.t
    end) =
struct
  open Codec

  let decision_c = option_c (triple vint_c C.value cert_c)

  let msg : P.msg t =
    {
      write =
        (fun b -> function
          | P.Propose { phase; value; sg } ->
            W.u8 b 0;
            W.vint b phase;
            C.value.write b value;
            sig_c.write b sg
          | P.Vote { phase; value; share } ->
            W.u8 b 1;
            W.vint b phase;
            C.value.write b value;
            sig_c.write b share
          | P.Commit_answer { phase; value; level; qc } ->
            W.u8 b 2;
            W.vint b phase;
            C.value.write b value;
            W.vint b level;
            cert_c.write b qc
          | P.Commit_bcast { phase; value; level; qc } ->
            W.u8 b 3;
            W.vint b phase;
            C.value.write b value;
            W.vint b level;
            cert_c.write b qc
          | P.Decide_share { phase; value; share } ->
            W.u8 b 4;
            W.vint b phase;
            C.value.write b value;
            sig_c.write b share
          | P.Finalized { phase; value; qc } ->
            W.u8 b 5;
            W.vint b phase;
            C.value.write b value;
            cert_c.write b qc
          | P.Help_req { sg } ->
            W.u8 b 6;
            sig_c.write b sg
          | P.Help { phase; value; qc } ->
            W.u8 b 7;
            W.vint b phase;
            C.value.write b value;
            cert_c.write b qc
          | P.Fallback_cert { qc; decision } ->
            W.u8 b 8;
            cert_c.write b qc;
            decision_c.write b decision
          | P.Fb m ->
            W.u8 b 9;
            C.fb.write b m);
      read =
        (fun r ->
          let* tag = R.u8 r in
          match tag with
          | 0 ->
            let* phase = R.vint r in
            let* value = C.value.read r in
            let* sg = sig_c.read r in
            Ok (P.Propose { phase; value; sg })
          | 1 ->
            let* phase = R.vint r in
            let* value = C.value.read r in
            let* share = sig_c.read r in
            Ok (P.Vote { phase; value; share })
          | 2 ->
            let* phase = R.vint r in
            let* value = C.value.read r in
            let* level = R.vint r in
            let* qc = cert_c.read r in
            Ok (P.Commit_answer { phase; value; level; qc })
          | 3 ->
            let* phase = R.vint r in
            let* value = C.value.read r in
            let* level = R.vint r in
            let* qc = cert_c.read r in
            Ok (P.Commit_bcast { phase; value; level; qc })
          | 4 ->
            let* phase = R.vint r in
            let* value = C.value.read r in
            let* share = sig_c.read r in
            Ok (P.Decide_share { phase; value; share })
          | 5 ->
            let* phase = R.vint r in
            let* value = C.value.read r in
            let* qc = cert_c.read r in
            Ok (P.Finalized { phase; value; qc })
          | 6 ->
            let* sg = sig_c.read r in
            Ok (P.Help_req { sg })
          | 7 ->
            let* phase = R.vint r in
            let* value = C.value.read r in
            let* qc = cert_c.read r in
            Ok (P.Help { phase; value; qc })
          | 8 ->
            let* qc = cert_c.read r in
            let* decision = decision_c.read r in
            Ok (P.Fallback_cert { qc; decision })
          | 9 ->
            let* m = C.fb.read r in
            Ok (P.Fb m)
          | tag -> Error (Bad_tag { what = "weak-ba"; tag }));
    }
end

(* ---- failure-free strong BA, generic over the fallback ----------------- *)

module Strong_codec
    (F : Fallback_intf.FALLBACK with type value = bool)
    (P : module type of Ff_strong_ba.Make (F)) (C : sig
      val fb : F.msg Codec.t
    end) =
struct
  open Codec

  let decision_c = option_c (pair bool_c cert_c)

  let msg : P.msg t =
    {
      write =
        (fun b -> function
          | P.Input { value; share } ->
            W.u8 b 0;
            W.bool b value;
            sig_c.write b share
          | P.Propose { value; qc } ->
            W.u8 b 1;
            W.bool b value;
            cert_c.write b qc
          | P.Decide_share { value; share } ->
            W.u8 b 2;
            W.bool b value;
            sig_c.write b share
          | P.Decide { value; qc } ->
            W.u8 b 3;
            W.bool b value;
            cert_c.write b qc
          | P.Fallback { decision } ->
            W.u8 b 4;
            decision_c.write b decision
          | P.Fb m ->
            W.u8 b 5;
            C.fb.write b m);
      read =
        (fun r ->
          let* tag = R.u8 r in
          match tag with
          | 0 ->
            let* value = R.bool r in
            let* share = sig_c.read r in
            Ok (P.Input { value; share })
          | 1 ->
            let* value = R.bool r in
            let* qc = cert_c.read r in
            Ok (P.Propose { value; qc })
          | 2 ->
            let* value = R.bool r in
            let* share = sig_c.read r in
            Ok (P.Decide_share { value; share })
          | 3 ->
            let* value = R.bool r in
            let* qc = cert_c.read r in
            Ok (P.Decide { value; qc })
          | 4 ->
            let* decision = decision_c.read r in
            Ok (P.Fallback { decision })
          | 5 ->
            let* m = C.fb.read r in
            Ok (P.Fb m)
          | tag -> Error (Bad_tag { what = "strong-ba"; tag }));
    }
end

(* ---- concrete instantiations ------------------------------------------- *)

module Epk_str_c =
  Epk_codec (Value.Str) (Instances.Epk_str)
    (struct
      let value = Codec.value_str
    end)

module Epk_bool_c =
  Epk_codec (Value.Bool) (Instances.Epk_bool)
    (struct
      let value = Codec.value_bool
    end)

let epk_str_msg = Epk_str_c.msg
let epk_bool_msg = Epk_bool_c.msg

module Weak_str_c =
  Weak_codec (Value.Str) (Instances.Fallback_str) (Instances.Weak_str)
    (struct
      let value = Codec.value_str
      let fb = epk_str_msg
    end)

let weak_str_msg = Weak_str_c.msg

let bb_value_c : Adaptive_bb.bb_value Codec.t =
  let open Codec in
  {
    write =
      (fun b -> function
        | Adaptive_bb.Sender_signed { value; sg } ->
          W.u8 b 0;
          value_str.write b value;
          sig_c.write b sg
        | Adaptive_bb.Idk_cert c ->
          W.u8 b 1;
          cert_c.write b c);
    read =
      (fun r ->
        let* tag = R.u8 r in
        match tag with
        | 0 ->
          let* value = value_str.read r in
          let* sg = sig_c.read r in
          Ok (Adaptive_bb.Sender_signed { value; sg })
        | 1 ->
          let* c = cert_c.read r in
          Ok (Adaptive_bb.Idk_cert c)
        | tag -> Error (Bad_tag { what = "bb-value"; tag }));
  }

(* The BB layer's embedded phase king and weak BA run over wrapped values;
   instantiating the same functors at the same module paths pins the type
   identities to [Adaptive_bb]'s own. *)
module Epk_bbv = Mewc_fallback.Echo_phase_king.Make (Adaptive_bb.Bb_value)

module Epk_bbv_c =
  Epk_codec (Adaptive_bb.Bb_value) (Epk_bbv)
    (struct
      let value = bb_value_c
    end)

module Weak_bbv_c =
  Weak_codec (Adaptive_bb.Bb_value) (Adaptive_bb.Fallback_bb) (Adaptive_bb.W)
    (struct
      let value = bb_value_c
      let fb = Epk_bbv_c.msg
    end)

let adaptive_bb_msg : Adaptive_bb.msg Codec.t =
  let open Codec in
  {
    write =
      (fun b -> function
        | Adaptive_bb.Send { value; sg } ->
          W.u8 b 0;
          value_str.write b value;
          sig_c.write b sg
        | Adaptive_bb.Vet_help_req { phase; sg } ->
          W.u8 b 1;
          W.vint b phase;
          sig_c.write b sg
        | Adaptive_bb.Vet_value { phase; value } ->
          W.u8 b 2;
          W.vint b phase;
          bb_value_c.write b value
        | Adaptive_bb.Vet_idk { phase; share } ->
          W.u8 b 3;
          W.vint b phase;
          sig_c.write b share
        | Adaptive_bb.Vet_bcast { phase; value } ->
          W.u8 b 4;
          W.vint b phase;
          bb_value_c.write b value
        | Adaptive_bb.Wba m ->
          W.u8 b 5;
          Weak_bbv_c.msg.write b m);
    read =
      (fun r ->
        let* tag = R.u8 r in
        match tag with
        | 0 ->
          let* value = value_str.read r in
          let* sg = sig_c.read r in
          Ok (Adaptive_bb.Send { value; sg })
        | 1 ->
          let* phase = R.vint r in
          let* sg = sig_c.read r in
          Ok (Adaptive_bb.Vet_help_req { phase; sg })
        | 2 ->
          let* phase = R.vint r in
          let* value = bb_value_c.read r in
          Ok (Adaptive_bb.Vet_value { phase; value })
        | 3 ->
          let* phase = R.vint r in
          let* share = sig_c.read r in
          Ok (Adaptive_bb.Vet_idk { phase; share })
        | 4 ->
          let* phase = R.vint r in
          let* value = bb_value_c.read r in
          Ok (Adaptive_bb.Vet_bcast { phase; value })
        | 5 ->
          let* m = Weak_bbv_c.msg.read r in
          Ok (Adaptive_bb.Wba m)
        | tag -> Error (Bad_tag { what = "adaptive-bb"; tag }));
  }

module Strong_bool_c =
  Strong_codec (Instances.Fallback_bool) (Instances.Strong_bool)
    (struct
      let fb = epk_bool_msg
    end)

let strong_bool_msg = Strong_bool_c.msg

(* [Binary_bb_bool.Ba.msg] is a distinct nominal type from
   [Strong_bool.msg] (instances.mli seals each behind its own
   [module type of]), so the §7 codec functor is applied a second time. *)
module Strong_bb_c =
  Strong_codec (Instances.Fallback_bool) (Instances.Binary_bb_bool.Ba)
    (struct
      let fb = epk_bool_msg
    end)

let binary_bb_msg : Instances.Binary_bb_bool.msg Codec.t =
  let open Codec in
  {
    write =
      (fun b -> function
        | Instances.Binary_bb_bool.Send { value; sg } ->
          W.u8 b 0;
          W.bool b value;
          sig_c.write b sg
        | Instances.Binary_bb_bool.Ba m ->
          W.u8 b 1;
          Strong_bb_c.msg.write b m);
    read =
      (fun r ->
        let* tag = R.u8 r in
        match tag with
        | 0 ->
          let* value = R.bool r in
          let* sg = sig_c.read r in
          Ok (Instances.Binary_bb_bool.Send { value; sg })
        | 1 ->
          let* m = Strong_bb_c.msg.read r in
          Ok (Instances.Binary_bb_bool.Ba m)
        | tag -> Error (Bad_tag { what = "binary-bb"; tag }));
  }

(* ---- generators --------------------------------------------------------- *)

module Gen = struct
  let bytes g len = String.init len (fun _ -> Char.chr (Rng.int g 256))
  let value_str g = bytes g (Rng.int g 33)
  let tag g = Sha256.digest (bytes g 16)

  let sig_ g =
    Pki.Wire.sig_of_view ~signer:(Rng.int g 64) ~tag:(tag g)

  let tsig g =
    let k = Rng.int g 6 in
    let signers = Rng.sample g k (List.init 16 Fun.id) in
    Pki.Wire.tsig_of_view ~signers ~tag:(tag g)

  let cert g =
    Certificate.Wire.of_view
      ~purpose:(Rng.pick g [ "input"; "commit"; "ack"; "idk"; "decide" ])
      ~payload:(bytes g (Rng.int g 48))
      ~tsig:(tsig g)

  let frame g =
    let kind = if Rng.int g 8 = 0 then Codec.Done else Codec.Msg in
    {
      Codec.kind;
      src = Rng.int g 16;
      dst = Rng.int g 16;
      slot = Rng.int g 1000;
      seq = Rng.int g 10_000;
      payload = (if kind = Codec.Done then "" else bytes g (Rng.int g 200));
    }

  (* The phase-king bodies are shared shape-wise across instantiations, but
     the types are distinct; three small concrete generators are simpler
     than a generator functor. *)
  let epk_str g : Instances.Epk_str.msg =
    let open Instances.Epk_str in
    let just () =
      match Rng.int g 3 with
      | 0 -> Unjustified
      | 1 -> Input_cert (cert g)
      | _ -> Lock_just { level = Rng.int g 8; qc = cert g }
    in
    let proposal () =
      {
        p_phase = Rng.int g 8;
        p_value = value_str g;
        p_just = just ();
        p_king_sig = sig_ g;
        p_just_valid = Rng.bool g;
      }
    in
    let body =
      match Rng.int g 8 with
      | 0 -> Input { value = value_str g; share = sig_ g }
      | 1 ->
        Status
          {
            phase = Rng.int g 8;
            lock =
              (if Rng.bool g then None
               else Some (Rng.int g 8, value_str g, cert g));
            input_qc =
              (if Rng.bool g then None else Some (value_str g, cert g));
          }
      | 2 -> Propose (proposal ())
      | 3 -> Echo (proposal ())
      | 4 -> Vote { phase = Rng.int g 8; value = value_str g; share = sig_ g }
      | 5 -> Commit { phase = Rng.int g 8; value = value_str g; qc = cert g }
      | 6 ->
        Ack
          {
            phase = Rng.int g 8;
            value = value_str g;
            share = sig_ g;
            qc = cert g;
          }
      | _ -> Decided { phase = Rng.int g 8; value = value_str g; qc = cert g }
    in
    { round = Rng.int g 32; body }

  let epk_bool g : Instances.Epk_bool.msg =
    let open Instances.Epk_bool in
    let just () =
      match Rng.int g 3 with
      | 0 -> Unjustified
      | 1 -> Input_cert (cert g)
      | _ -> Lock_just { level = Rng.int g 8; qc = cert g }
    in
    let proposal () =
      {
        p_phase = Rng.int g 8;
        p_value = Rng.bool g;
        p_just = just ();
        p_king_sig = sig_ g;
        p_just_valid = Rng.bool g;
      }
    in
    let body =
      match Rng.int g 8 with
      | 0 -> Input { value = Rng.bool g; share = sig_ g }
      | 1 ->
        Status
          {
            phase = Rng.int g 8;
            lock =
              (if Rng.bool g then None
               else Some (Rng.int g 8, Rng.bool g, cert g));
            input_qc = (if Rng.bool g then None else Some (Rng.bool g, cert g));
          }
      | 2 -> Propose (proposal ())
      | 3 -> Echo (proposal ())
      | 4 -> Vote { phase = Rng.int g 8; value = Rng.bool g; share = sig_ g }
      | 5 -> Commit { phase = Rng.int g 8; value = Rng.bool g; qc = cert g }
      | 6 ->
        Ack
          {
            phase = Rng.int g 8;
            value = Rng.bool g;
            share = sig_ g;
            qc = cert g;
          }
      | _ -> Decided { phase = Rng.int g 8; value = Rng.bool g; qc = cert g }
    in
    { round = Rng.int g 32; body }

  let weak_str g : Instances.Weak_str.msg =
    let open Instances.Weak_str in
    match Rng.int g 10 with
    | 0 -> Propose { phase = Rng.int g 8; value = value_str g; sg = sig_ g }
    | 1 -> Vote { phase = Rng.int g 8; value = value_str g; share = sig_ g }
    | 2 ->
      Commit_answer
        {
          phase = Rng.int g 8;
          value = value_str g;
          level = Rng.int g 4;
          qc = cert g;
        }
    | 3 ->
      Commit_bcast
        {
          phase = Rng.int g 8;
          value = value_str g;
          level = Rng.int g 4;
          qc = cert g;
        }
    | 4 -> Decide_share { phase = Rng.int g 8; value = value_str g; share = sig_ g }
    | 5 -> Finalized { phase = Rng.int g 8; value = value_str g; qc = cert g }
    | 6 -> Help_req { sg = sig_ g }
    | 7 -> Help { phase = Rng.int g 8; value = value_str g; qc = cert g }
    | 8 ->
      Fallback_cert
        {
          qc = cert g;
          decision =
            (if Rng.bool g then None
             else Some (Rng.int g 8, value_str g, cert g));
        }
    | _ -> Fb (epk_str g)

  let bb_value g : Adaptive_bb.bb_value =
    if Rng.bool g then
      Adaptive_bb.Sender_signed { value = value_str g; sg = sig_ g }
    else Adaptive_bb.Idk_cert (cert g)

  let epk_bbv g : Epk_bbv.msg =
    let open Epk_bbv in
    let body =
      match Rng.int g 4 with
      | 0 -> Input { value = bb_value g; share = sig_ g }
      | 1 -> Vote { phase = Rng.int g 8; value = bb_value g; share = sig_ g }
      | 2 -> Commit { phase = Rng.int g 8; value = bb_value g; qc = cert g }
      | _ -> Decided { phase = Rng.int g 8; value = bb_value g; qc = cert g }
    in
    { round = Rng.int g 32; body }

  let weak_bbv g : Adaptive_bb.W.msg =
    let open Adaptive_bb.W in
    match Rng.int g 5 with
    | 0 -> Propose { phase = Rng.int g 8; value = bb_value g; sg = sig_ g }
    | 1 -> Vote { phase = Rng.int g 8; value = bb_value g; share = sig_ g }
    | 2 -> Finalized { phase = Rng.int g 8; value = bb_value g; qc = cert g }
    | 3 -> Help_req { sg = sig_ g }
    | _ -> Fb (epk_bbv g)

  let adaptive g : Adaptive_bb.msg =
    match Rng.int g 6 with
    | 0 -> Adaptive_bb.Send { value = value_str g; sg = sig_ g }
    | 1 -> Adaptive_bb.Vet_help_req { phase = Rng.int g 8; sg = sig_ g }
    | 2 -> Adaptive_bb.Vet_value { phase = Rng.int g 8; value = bb_value g }
    | 3 -> Adaptive_bb.Vet_idk { phase = Rng.int g 8; share = sig_ g }
    | 4 -> Adaptive_bb.Vet_bcast { phase = Rng.int g 8; value = bb_value g }
    | _ -> Adaptive_bb.Wba (weak_bbv g)

  let strong_body g ~fb =
    match Rng.int g 6 with
    | 0 -> `Input (Rng.bool g, sig_ g)
    | 1 -> `Propose (Rng.bool g, cert g)
    | 2 -> `Decide_share (Rng.bool g, sig_ g)
    | 3 -> `Decide (Rng.bool g, cert g)
    | 4 ->
      `Fallback (if Rng.bool g then None else Some (Rng.bool g, cert g))
    | _ -> `Fb (fb ())

  let strong g : Instances.Strong_bool.msg =
    match strong_body g ~fb:(fun () -> epk_bool g) with
    | `Input (value, share) -> Instances.Strong_bool.Input { value; share }
    | `Propose (value, qc) -> Instances.Strong_bool.Propose { value; qc }
    | `Decide_share (value, share) ->
      Instances.Strong_bool.Decide_share { value; share }
    | `Decide (value, qc) -> Instances.Strong_bool.Decide { value; qc }
    | `Fallback decision -> Instances.Strong_bool.Fallback { decision }
    | `Fb m -> Instances.Strong_bool.Fb m

  let strong_bb g : Instances.Binary_bb_bool.Ba.msg =
    match strong_body g ~fb:(fun () -> epk_bool g) with
    | `Input (value, share) -> Instances.Binary_bb_bool.Ba.Input { value; share }
    | `Propose (value, qc) -> Instances.Binary_bb_bool.Ba.Propose { value; qc }
    | `Decide_share (value, share) ->
      Instances.Binary_bb_bool.Ba.Decide_share { value; share }
    | `Decide (value, qc) -> Instances.Binary_bb_bool.Ba.Decide { value; qc }
    | `Fallback decision -> Instances.Binary_bb_bool.Ba.Fallback { decision }
    | `Fb m -> Instances.Binary_bb_bool.Ba.Fb m

  let binary g : Instances.Binary_bb_bool.msg =
    if Rng.int g 4 = 0 then
      Instances.Binary_bb_bool.Send { value = Rng.bool g; sg = sig_ g }
    else Instances.Binary_bb_bool.Ba (strong_bb g)
end

(* ---- codec fuzz battery ------------------------------------------------- *)

type probe = Probe : string * 'a Codec.t -> probe

let probes =
  [
    Probe ("sig", Codec.sig_c);
    Probe ("tsig", Codec.tsig_c);
    Probe ("cert", Codec.cert_c);
    Probe ("epk-str", epk_str_msg);
    Probe ("epk-bool", epk_bool_msg);
    Probe ("weak-ba", weak_str_msg);
    Probe ("adaptive-bb", adaptive_bb_msg);
    Probe ("binary-bb", binary_bb_msg);
    Probe ("strong-ba", strong_bool_msg);
  ]

type round_trip = Trip : string * 'a Codec.t * (Rng.t -> 'a) -> round_trip

let trips =
  [
    Trip ("sig", Codec.sig_c, Gen.sig_);
    Trip ("tsig", Codec.tsig_c, Gen.tsig);
    Trip ("cert", Codec.cert_c, Gen.cert);
    Trip ("epk-str", epk_str_msg, Gen.epk_str);
    Trip ("epk-bool", epk_bool_msg, Gen.epk_bool);
    Trip ("weak-ba", weak_str_msg, Gen.weak_str);
    Trip ("adaptive-bb", adaptive_bb_msg, Gen.adaptive);
    Trip ("binary-bb", binary_bb_msg, Gen.binary);
    Trip ("strong-ba", strong_bool_msg, Gen.strong);
  ]

let fuzz_codec ~count ~seed =
  let g = Rng.create seed in
  let cases = ref 0 in
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_round_trip () =
    List.fold_left
      (fun acc (Trip (name, c, gen)) ->
        let* () = acc in
        incr cases;
        let v = gen g in
        let e = Codec.encode c v in
        match Codec.decode c e with
        | Error err ->
          fail "round-trip: %s rejects its own encoding (%s)" name
            (Codec.error_to_string err)
        | Ok v' ->
          if String.equal (Codec.encode c v') e then Ok ()
          else fail "round-trip: %s re-encodes differently" name)
      (Ok ()) trips
  in
  let check_adversarial () =
    let s = Gen.bytes g (Rng.int g 4097) in
    List.fold_left
      (fun acc (Probe (name, c)) ->
        let* () = acc in
        incr cases;
        match Codec.decode c s with
        | exception e ->
          fail "adversarial: %s raised %s" name (Printexc.to_string e)
        | Error _ -> Ok ()
        | Ok v ->
          if String.equal (Codec.encode c v) s then Ok ()
          else fail "adversarial: %s decoded a non-canonical input" name)
      (Ok ()) probes
    |> fun acc ->
    let* () = acc in
    incr cases;
    match Codec.decode_frame s with
    | exception e -> fail "adversarial: frame raised %s" (Printexc.to_string e)
    | Ok _ | Error _ -> Ok ()
  in
  let check_mutation () =
    incr cases;
    let f = Gen.frame g in
    let e = Bytes.of_string (Codec.encode_frame f) in
    let i = Rng.int g (Bytes.length e) in
    Bytes.set e i (Char.chr (Char.code (Bytes.get e i) lxor (1 lsl Rng.int g 8)));
    match Codec.decode_frame (Bytes.to_string e) with
    | exception ex ->
      fail "mutation: frame decoder raised %s" (Printexc.to_string ex)
    | Ok _ | Error _ -> Ok ()
  in
  let check_scan () =
    incr cases;
    (* a corrupted frame mid-stream must not derail reassembly: the scanner
       either recovers the following frame or parks on a pending prefix *)
    let f1 = Gen.frame g and f2 = Gen.frame g and f3 = Gen.frame g in
    let b2 = Bytes.of_string (Codec.encode_frame f2) in
    let i = Rng.int g (Bytes.length b2) in
    Bytes.set b2 i
      (Char.chr (Char.code (Bytes.get b2 i) lxor (1 lsl Rng.int g 8)));
    let stream =
      Codec.encode_frame f1 ^ Bytes.to_string b2 ^ Codec.encode_frame f3
    in
    let rec drive start acc steps =
      if steps > String.length stream + 16 then `Diverged
      else
        match Codec.scan stream ~start with
        | exception e -> `Raised (Printexc.to_string e)
        | `Frame (f, next) -> drive next (f :: acc) (steps + 1)
        | `Skip (next, _) -> drive next acc (steps + 1)
        | `Need_more _ -> `Parked (List.rev acc)
    in
    match drive 0 [] 0 with
    | `Raised e -> fail "scan: raised %s" e
    | `Diverged -> fail "scan: failed to make progress"
    | `Parked frames ->
      if List.exists (fun f -> f = f1) frames then Ok ()
      else fail "scan: lost the frame before the corruption"
  in
  let rec go i =
    if i >= count then Ok !cases
    else
      let* () = check_round_trip () in
      let* () = check_adversarial () in
      let* () = check_mutation () in
      let* () = check_scan () in
      go (i + 1)
  in
  go 0

(* ---- the differential harness ------------------------------------------ *)

type fingerprint = {
  decided_strs : string option array;
  decided_slots : int option array;
  words : int array;
}

let fingerprint_diff ~oracle ~async =
  let out = ref [] in
  let add fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  let opt = function None -> "-" | Some s -> s in
  let iopt = function None -> "-" | Some i -> string_of_int i in
  let n = Array.length oracle.decided_strs in
  if Array.length async.decided_strs <> n then
    add "process count: oracle %d, async %d" n (Array.length async.decided_strs)
  else
    for p = 0 to n - 1 do
      if oracle.decided_strs.(p) <> async.decided_strs.(p) then
        add "p%d decision: oracle %s, async %s" p
          (opt oracle.decided_strs.(p))
          (opt async.decided_strs.(p));
      if oracle.decided_slots.(p) <> async.decided_slots.(p) then
        add "p%d decided slot: oracle %s, async %s" p
          (iopt oracle.decided_slots.(p))
          (iopt async.decided_slots.(p));
      if oracle.words.(p) <> async.words.(p) then
        add "p%d words: oracle %d, async %d" p oracle.words.(p) async.words.(p)
    done;
  List.rev !out

type report = {
  fingerprint : fingerprint;
  verdict : Monitor.classification;
  stats : Runtime.stats;
  stalled : Pid.t list;
  failures : (Pid.t * string) list;
  wire_events : string Trace.event list;
}

type entry =
  | E : {
      proto : ('p, 's, 'm, 'd) Protocol.t;
      codec : 'm Codec.t;
    }
      -> entry

let entries =
  [
    E { proto = (module Instances.Fallback_protocol); codec = epk_str_msg };
    E { proto = (module Instances.Weak_ba_protocol); codec = weak_str_msg };
    E { proto = (module Instances.Bb_protocol); codec = adaptive_bb_msg };
    E { proto = (module Instances.Binary_bb_protocol); codec = binary_bb_msg };
    E { proto = (module Instances.Strong_ba_protocol); codec = strong_bool_msg };
  ]

let entry_name (E e) =
  let module P = (val e.proto) in
  P.name

let find name = List.find_opt (fun e -> String.equal (entry_name e) name) entries

let params_of (type p s m d) (proto : (p, s, m, d) Protocol.t) ~cfg ~salt : p =
  let module P = (val proto) in
  P.mutate_params (P.default_params cfg) ~salt

let oracle (E e) ~cfg ~seed ~salt =
  let module P = (val e.proto) in
  let params = params_of e.proto ~cfg ~salt in
  let o =
    Instances.run e.proto ~cfg
      ~options:{ Instances.default_options with seed }
      ~params
      ~adversary:(Adversary.const (Adversary.honest ~name:"honest"))
      ()
  in
  let n = (cfg : Config.t).n in
  let words = Array.make n 0 in
  List.iter
    (fun (r : Meter.row) -> if r.ix >= 0 && r.ix < n then words.(r.ix) <- r.words)
    o.Instances.meter.Meter.per_process;
  {
    decided_strs = o.Instances.decided_strs;
    decided_slots = o.Instances.decided_slots;
    words;
  }

let classify (o : _ Runtime.outcome) : Monitor.classification =
  let n = Array.length o.Runtime.decided_strs in
  let unsafe = ref None in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      match (o.Runtime.decided_strs.(i), o.Runtime.decided_strs.(j)) with
      | Some a, Some b when (not (String.equal a b)) && !unsafe = None ->
        unsafe := Some (i, a, j, b)
      | _ -> ()
    done
  done;
  match !unsafe with
  | Some (i, a, j, b) ->
    Monitor.Unsafe
      {
        monitor = "wire-agreement";
        slot = o.Runtime.slots;
        reason = Printf.sprintf "p%d decided %S, p%d decided %S" i a j b;
      }
  | None ->
    let undecided =
      Array.to_list o.Runtime.decided_strs
      |> List.mapi (fun p d -> (p, d))
      |> List.filter_map (fun (p, d) -> if d = None then Some p else None)
    in
    if undecided = [] && o.Runtime.failures = [] then Monitor.Safe_live
    else
      Monitor.Safe_stalled
        {
          monitor = "wire-termination";
          slot = o.Runtime.slots;
          reason =
            (match o.Runtime.failures with
            | (p, e) :: _ -> Printf.sprintf "p%d died: %s" p e
            | [] ->
              Printf.sprintf "undecided: %s"
                (String.concat ","
                   (List.map (fun p -> Printf.sprintf "p%d" p) undecided)));
        }

let async (E e) ~cfg ~seed ~salt ?delta ?deadman ?byte_faults () =
  let params = params_of e.proto ~cfg ~salt in
  let o =
    Runtime.run e.proto ~codec:e.codec ~cfg ~seed ?delta ?deadman ?byte_faults
      ~params ()
  in
  {
    fingerprint =
      {
        decided_strs = o.Runtime.decided_strs;
        decided_slots = o.Runtime.decided_slots;
        words = o.Runtime.words;
      };
    verdict = classify o;
    stats = o.Runtime.stats;
    stalled = o.Runtime.stalled;
    failures = o.Runtime.failures;
    wire_events = o.Runtime.wire_events;
  }

let diff e ~cfg ~seed ~salt ?delta () =
  let o = oracle e ~cfg ~seed ~salt in
  let r = async e ~cfg ~seed ~salt ?delta () in
  match fingerprint_diff ~oracle:o ~async:r.fingerprint with
  | [] -> Ok r
  | mismatches -> Error mismatches
