(** Adaptive Byzantine Broadcast — the paper's Algorithms 1 and 2 (§5).

    A designated sender broadcasts a value; every correct process decides
    the sender's value if the sender is correct, and some common value
    otherwise. Communication is O(n(f+1)) words with resilience
    [n = 2t + 1] — the first BB with this adaptive complexity.

    {2 Structure}

    - {b Round 1}: the sender disseminates ⟨v⟩sender; receivers adopt it as
      their weak-BA input.
    - {b Vetting} (Algorithm 2): n phases with rotating leaders. A leader
      that already holds an input keeps its phase silent. Otherwise it
      broadcasts a help request; processes answer with their sender-signed
      value, or with a signed "idk". A leader that collects a sender-signed
      value broadcasts it; one that collects t+1 idk signatures batches them
      into an idk quorum certificate — itself a valid value — and
      broadcasts that. After the first non-silent correct-leader phase all
      later correct leaders are silent, so non-silent phases number at most
      f + 1.
    - {b Weak BA} (§6) over the resulting values with the predicate
      [BB_valid(v)] = "v is signed by the sender, or by t+1 processes".
      The vetting guarantees every correct process enters with a valid
      input, and — when the sender is correct — that no idk certificate can
      exist (Lemma 10), making ⟨v⟩sender the only valid value, which unique
      validity then forces as the outcome.

    The BB decision is [v] when the weak BA decides a sender-signed [v],
    and ⊥ when it decides an idk certificate or its own ⊥. *)

type value = string

(** The weak BA runs over these wrapped values. [BB_valid] accepts both
    arms; only [Sender_signed] yields a real BB decision. *)
type bb_value =
  | Sender_signed of { value : value; sg : Mewc_crypto.Pki.Sig.t }
  | Idk_cert of Mewc_crypto.Certificate.t

module Bb_value : Mewc_sim.Value.S with type t = bb_value

module Fallback_bb :
  Fallback_intf.FALLBACK
    with type value = bb_value
     and type msg = Mewc_fallback.Echo_phase_king.Make(Bb_value).msg
     and type state = Mewc_fallback.Echo_phase_king.Make(Bb_value).state
(* The msg/state equalities are exposed (rather than left abstract) so the
   wire layer can build a codec for the embedded fallback's messages. *)
module W : module type of Weak_ba.Make (Bb_value) (Fallback_bb)
(** The embedded weak-BA instance over {!bb_value}. *)

(** Public wire format (see {!Weak_ba.Make} on why). *)
type msg =
  | Send of { value : value; sg : Mewc_crypto.Pki.Sig.t }
  | Vet_help_req of { phase : int; sg : Mewc_crypto.Pki.Sig.t }
  | Vet_value of { phase : int; value : bb_value }
  | Vet_idk of { phase : int; share : Mewc_crypto.Pki.Sig.t }
  | Vet_bcast of { phase : int; value : bb_value }
  | Wba of W.msg

type state

val sender_purpose : string
val idk_purpose : string
val helpreq_purpose : string

(** {2 Slot layout (relative to [start_slot])} *)

val vet_base : int -> int
(** First slot of vetting phase [j] (the leader's help-request round). *)

val wba_start : Mewc_sim.Config.t -> int
(** Slot at which the embedded weak BA begins. *)

type decision =
  | Decided of value  (** a sender-signed value *)
  | No_decision  (** ⊥ — possible only with a Byzantine sender *)

val equal_decision : decision -> decision -> bool
val pp_decision : Format.formatter -> decision -> unit

val words : msg -> int
val pp_msg : Format.formatter -> msg -> unit

val bb_valid : pki:Mewc_crypto.Pki.t -> cfg:Mewc_sim.Config.t -> sender:Mewc_prelude.Pid.t -> bb_value -> bool
(** The paper's [BB_valid] predicate, exposed for tests. *)

val init :
  cfg:Mewc_sim.Config.t ->
  pki:Mewc_crypto.Pki.t ->
  secret:Mewc_crypto.Pki.Secret.t ->
  pid:Mewc_prelude.Pid.t ->
  sender:Mewc_prelude.Pid.t ->
  input:value option ->
  start_slot:int ->
  state
(** [input] is the sender's broadcast value; it is ignored for [pid <>
    sender] (pass [None]). *)

val step :
  slot:int ->
  inbox:msg Mewc_sim.Envelope.t list ->
  state ->
  state * (msg * Mewc_prelude.Pid.t) list

val wake : slot:int -> state -> bool
(** The {!Mewc_sim.Process.t} wake timer (sender dissemination, leader help
    requests, weak-BA init, then the weak BA's own timer). *)

val decision : state -> decision option

val decided_at : state -> int option
(** Slot at which the decision was reached (latency metric). *)

val horizon : Mewc_sim.Config.t -> int

(** {2 Introspection} *)

val vetting_phase_initiated : state -> bool
val adopted_value : state -> bb_value option
val fallback_entered : state -> bool
