open Mewc_prelude

type arrival =
  | Steady of float
  | Bursty of { rate : float; burst_every : int; burst_size : int }

type sizes =
  | Fixed of int
  | Skewed of { base : int; heavy : int; heavy_weight : float }

type profile = { arrival : arrival; sizes : sizes }

let validate { arrival; sizes } =
  (match arrival with
  | Steady rate ->
    if rate <= 0.0 then invalid_arg "Workload: Steady rate must be > 0"
  | Bursty { rate; burst_every; burst_size } ->
    if rate < 0.0 then invalid_arg "Workload: Bursty rate must be >= 0";
    if burst_every < 1 then invalid_arg "Workload: burst_every must be >= 1";
    if burst_size < 0 then invalid_arg "Workload: burst_size must be >= 0");
  match sizes with
  | Fixed w -> if w < 1 then invalid_arg "Workload: Fixed size must be >= 1"
  | Skewed { base; heavy; heavy_weight } ->
    if base < 1 || heavy < 1 then
      invalid_arg "Workload: Skewed sizes must be >= 1";
    if heavy_weight < 0.0 || heavy_weight > 1.0 then
      invalid_arg "Workload: heavy_weight must be in [0, 1]"

type request = { id : int; arrival : int; size : int }

(* Knuth's Poisson sampler: exact, and only ever consumes uniforms from
   the workload's own stream, so traffic is independent of protocol
   randomness. Rates here are O(1) per slot, so the exp(-rate) product
   loop terminates in a handful of draws. *)
let poisson rng rate =
  let l = exp (-.rate) in
  let k = ref 0 and p = ref 1.0 in
  let continue = ref true in
  while !continue do
    p := !p *. Rng.float rng 1.0;
    if !p > l then incr k else continue := false
  done;
  !k

let draw_size rng = function
  | Fixed w -> w
  | Skewed { base; heavy; heavy_weight } ->
    if Rng.float rng 1.0 < heavy_weight then heavy else base

let generate ~seed ~profile ~slots =
  validate profile;
  if slots < 0 then invalid_arg "Workload.generate: slots must be >= 0";
  let rng = Rng.create seed in
  let next_id = ref 0 in
  let out = ref [] in
  let push ~arrival ~size =
    out := { id = !next_id; arrival; size } :: !out;
    incr next_id
  in
  for slot = 0 to slots - 1 do
    let arrivals =
      match profile.arrival with
      | Steady rate -> poisson rng rate
      | Bursty { rate; burst_every; burst_size } ->
        let base = poisson rng rate in
        if slot mod burst_every = 0 then base + burst_size else base
    in
    for _ = 1 to arrivals do
      push ~arrival:slot ~size:(draw_size rng profile.sizes)
    done
  done;
  List.rev !out

let total_words reqs = List.fold_left (fun acc r -> acc + r.size) 0 reqs

let presets =
  [
    ("steady", { arrival = Steady 1.0; sizes = Fixed 4 });
    ( "bursty",
      {
        arrival = Bursty { rate = 0.4; burst_every = 8; burst_size = 6 };
        sizes = Fixed 4;
      } );
    ( "heavy-tail",
      {
        arrival = Steady 1.0;
        sizes = Skewed { base = 2; heavy = 32; heavy_weight = 0.1 };
      } );
  ]

let preset_names = List.map fst presets
let find_preset name = List.assoc_opt name presets

let pp_profile fmt { arrival; sizes } =
  (match arrival with
  | Steady r -> Format.fprintf fmt "steady(%.2f/slot)" r
  | Bursty { rate; burst_every; burst_size } ->
    Format.fprintf fmt "bursty(%.2f/slot + %d every %d)" rate burst_size
      burst_every);
  match sizes with
  | Fixed w -> Format.fprintf fmt " x %dw" w
  | Skewed { base; heavy; heavy_weight } ->
    Format.fprintf fmt " x (%dw | %dw @ %.2f)" base heavy heavy_weight
