open Mewc_prelude
open Mewc_crypto
open Mewc_sim

type entry = Committed of string | Skipped

let equal_entry a b =
  match (a, b) with
  | Committed x, Committed y -> String.equal x y
  | Skipped, Skipped -> true
  | Committed _, Skipped | Skipped, Committed _ -> false

let pp_entry fmt = function
  | Committed v -> Format.fprintf fmt "commit(%s)" v
  | Skipped -> Format.pp_print_string fmt "skip"

type msg = { index : int; inner : Adaptive_bb.msg }

let words { inner; _ } = Adaptive_bb.words inner
let pp_msg fmt { index; inner } =
  Format.fprintf fmt "[slot %d] %a" index Adaptive_bb.pp_msg inner

type state = {
  cfg : Config.t;
  pki : Pki.t;
  secret : Pki.Secret.t;
  pid : Pid.t;
  length : int;
  offset : int;
  propose : int -> string;
  instances : Adaptive_bb.state option array;
  pending : Adaptive_bb.msg Envelope.t list array;  (* reversed, per index *)
}

let stride cfg = Adaptive_bb.horizon cfg

let check_offset cfg = function
  | None -> stride cfg
  | Some off ->
    if off < 1 || off > stride cfg then
      invalid_arg
        (Printf.sprintf "Repeated_bb: offset must be in [1, %d], got %d"
           (stride cfg) off);
    off

let horizon ?offset cfg ~length =
  let offset = check_offset cfg offset in
  ((length - 1) * offset) + stride cfg

let proposer cfg i = i mod cfg.Config.n

let init ~cfg ~pki ~secret ~pid ~length ?offset ~propose () =
  if length < 1 then invalid_arg "Repeated_bb.init: length >= 1";
  let offset = check_offset cfg offset in
  {
    cfg;
    pki;
    secret;
    pid;
    length;
    offset;
    propose;
    instances = Array.make length None;
    pending = Array.make length [];
  }

let log st =
  Array.map
    (fun inst ->
      Option.bind inst (fun i ->
          match Adaptive_bb.decision i with
          | Some (Adaptive_bb.Decided v) -> Some (Committed v)
          | Some Adaptive_bb.No_decision -> Some Skipped
          | None -> None))
    st.instances

let decided_slots st =
  Array.map (fun inst -> Option.bind inst Adaptive_bb.decided_at) st.instances

let step ~slot ~inbox st =
  List.iter
    (fun env ->
      let { index; inner } = env.Envelope.msg in
      if index >= 0 && index < st.length then
        st.pending.(index) <-
          {
            Envelope.src = env.Envelope.src;
            dst = env.Envelope.dst;
            sent_at = env.Envelope.sent_at;
            msg = inner;
          }
          :: st.pending.(index))
    inbox;
  let stride = stride st.cfg in
  let offset = st.offset in
  let out = ref [] in
  (* Instance [i] starts at [i * offset] and its inner BB is silent after
     [stride] slots, so only the window of instances whose [stride]-slot
     life (plus one stride of slack for messages in flight at the
     boundary) covers [slot] can make progress. Stepping just that window
     keeps a k-slot log linear in k at any pipeline depth. *)
  let hi = min (st.length - 1) (slot / offset) in
  let lo =
    (* smallest i with i*offset + 2*stride > slot; integer division
       truncates toward zero, so guard the negative numerator. *)
    if slot < 2 * stride then 0 else ((slot - (2 * stride)) / offset) + 1
  in
  for i = max 0 lo to hi do
    let start = i * offset in
    if st.instances.(i) = None then begin
      let sender = proposer st.cfg i in
      st.instances.(i) <-
        Some
          (Adaptive_bb.init ~cfg:st.cfg ~pki:st.pki ~secret:st.secret
             ~pid:st.pid ~sender
             ~input:(if Pid.equal st.pid sender then Some (st.propose i) else None)
             ~start_slot:start)
    end;
    match st.instances.(i) with
    | None -> ()
    | Some inst ->
      let inbox = List.rev st.pending.(i) in
      st.pending.(i) <- [];
      let inst', sends = Adaptive_bb.step ~slot ~inbox inst in
      st.instances.(i) <- Some inst';
      out :=
        List.map (fun (m, dst) -> ({ index = i; inner = m }, dst)) sends @ !out
  done;
  (st, !out)

type outcome = {
  logs : entry option array array;
  decided_slots : int option array array;
  corrupted : Pid.t list;
  faulty : Pid.t list;
  f : int;
  words : int;
  slots : int;
  words_per_slot : float;
}

let run ~cfg ?(seed = 1L) ?offset ?options ~length ~propose ~adversary () =
  let n = cfg.Config.n in
  let pki, secrets = Pki.setup ~seed ~n () in
  let protocol pid =
    {
      Process.init =
        init ~cfg ~pki ~secret:secrets.(pid) ~pid ~length ?offset
          ~propose:(propose pid) ();
      step = (fun ~slot ~inbox st -> step ~slot ~inbox st);
      wake = None;
    }
  in
  let adversary = adversary ~pki ~secrets in
  let res =
    Engine.run ~cfg ?options ~words
      ~horizon:(horizon ?offset cfg ~length)
      ~protocol ~adversary ()
  in
  let words_total = Meter.correct_words res.Engine.meter in
  {
    logs = Array.map log res.Engine.states;
    decided_slots = Array.map decided_slots res.Engine.states;
    corrupted = res.Engine.corrupted;
    faulty = res.Engine.faulty;
    f = res.Engine.f;
    words = words_total;
    slots = res.Engine.slots;
    words_per_slot = float_of_int words_total /. float_of_int length;
  }
