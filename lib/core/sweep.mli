(** Parameter sweeps over (protocol, n, f), runnable on one core or many.

    One sweep {e point} is an independent deterministic simulation: it
    builds its own PKI, RNG, meter and trace from a seed that is a pure
    function of the point, so points can run in any order — or in parallel
    on OCaml 5 domains via {!Mewc_prelude.Pool} — and produce identical
    {!row}s. [bench/main.exe], [mewc bench] and the CI smoke gate all run
    through this module, and the byte-identical-under-parallelism property
    is enforced by tests and by {!run_perf} itself on every invocation.

    Timing lives {e outside} the row identity: a row's deterministic facts
    (words, latency, signatures, crypto-cache counters …) are what the
    "parallel output ≡ sequential output" byte-level comparisons see. The
    one advisory exception is {!row.wall_s} — the point's own wall clock,
    stored so scheduler-ratio figures can be derived from ledger rows — and
    it is excluded from {!row_to_line} and {!row_core_line}. *)

type point = {
  protocol : string;  (** "bb" | "weak-ba" | "strong-ba" | "fallback" *)
  n : int;
  f_spec : string;  (** "0" | "1" | "t/2" | "t" — resolved against t at run time *)
}

type row = {
  point : point;
  t : int;
  f : int;  (** realized corruptions *)
  words : int;
  messages : int;
  signatures : int;
  latency : int;
  slots : int;
  fallback_runs : int;
  crypto : Mewc_crypto.Pki.cache_stats;
  wall_s : float;
      (** this point's own wall clock — advisory, never part of an identity
          line; parses back as [0.0] from pre-wall_s ledger files *)
}

val pp_point : Format.formatter -> point -> unit

val standard_grid : point list
(** The perf-baseline grid: n ∈ \{21, 101, 201, 401\}. All four f-specs at
    n = 21; at larger n the f = t/2 and f = t points are kept only for
    weak BA (they exercise the quadratic fallback, the crypto-cache hot
    spot) and the other protocols run failure-free — keeping a full
    sequential pass in the tens of seconds, not minutes. The standalone
    A_fallback (Θ(n²) words over Θ(t) rounds, ~n³ work) is capped at
    n = 201 for the same reason. *)

val smoke_grid : point list
(** A seconds-scale grid (n ∈ \{9, 13\}, all protocols and f-specs) for CI:
    big enough to cross the fallback threshold, small enough to gate every
    build. *)

val fallback_cap : Mewc_sim.Engine.scheduler -> int
(** The largest n at which the standalone A_fallback is kept on a grid:
    201 under the legacy lock-step engine, 401 under the event-driven
    scheduler. Dropped points are returned by {!frontier_grid} (and
    reported as [capped_points] in the mewc-perf/2 JSON) rather than
    silently truncated. *)

val frontier_ns : int list
(** n ∈ \{21, 101, 201, 401, 1001, 2001\} — the words-vs-n frontier. *)

val frontier_grid : Mewc_sim.Engine.scheduler -> point list * point list
(** [(points, capped)] over {!frontier_ns}: the runnable frontier under the
    given scheduler plus the standalone-fallback points its cap dropped.
    Weak BA keeps all four f-specs at every n — at n = 2001 its f = t point
    is the paper's adaptive showcase — while the other protocols run
    failure-free beyond n = 21, as on {!standard_grid}. *)

val run_point : ?options:'m Instances.options -> point -> row
(** Run one point (crash-first adversary). The point owns its seed —
    [options.seed] is overridden by the point's derived seed, and the
    [monitors] override is dropped ({!Instances.retarget}): each protocol
    branch installs its own standard suite. The honored knobs are the
    engine's: [profile] charges the run's phases, crypto hot paths and
    serialization to the given profiler (rows are unaffected — timing never
    leaks into the deterministic facts); [scheduler] (default [`Legacy])
    changes wall-clock only, rows are byte-identical across schedulers (the
    engine-diff suite's invariant); [shards] (default 1) shards the run
    itself across domains ({!Mewc_sim.Engine.options.shards}), with every
    row field except the crypto-cache split invariant under it. *)

val run_all :
  ?jobs:int ->
  ?options:'m Instances.options ->
  ?progress:(unit -> unit) ->
  point list ->
  row list
(** All points, order-preserving, each through {!run_point} with the same
    [options]. [jobs] > 1 fans the points across that many domains with
    {!Mewc_prelude.Pool}'s deterministic chunking; default 1 (sequential,
    no domains spawned). [progress] is called once per completed point —
    sequential passes only; a parallel pass never interleaves heartbeat
    writes across domains. Raises [Invalid_argument] if [options.profile]
    is combined with [jobs] > 1: a {!Mewc_sim.Profile.t} is not
    domain-safe. *)

val ratio_ns : int list
(** n ∈ \{21, 101, 201, 401, 1001\} — the scheduler-ratio baseline axis. *)

val ratio_grid : point list
(** The failure-free column (f_spec = "0") of every protocol over
    {!ratio_ns}, with the standalone fallback capped at n = 201 under both
    schedulers — so a legacy and an event-driven baseline cover the same
    point set and per-point wall-clock ratios are always well-defined. *)

val run_baseline :
  ?progress:(unit -> unit) ->
  scheduler:Mewc_sim.Engine.scheduler ->
  unit ->
  row list * float
(** One sequential timed pass over {!ratio_grid} under the given scheduler:
    [(rows, total_wall_s)], each row carrying its own {!row.wall_s}. The
    ratio figure in [mewc report] divides event-driven by legacy row
    timings from two such ledger entries. *)

val row_to_json : row -> Mewc_prelude.Jsonx.t
val row_to_line : row -> string
(** Canonical one-line rendering; the parallel-equals-sequential checks
    compare these byte for byte. *)

val row_core_line : row -> string
(** {!row_to_line} minus the crypto-cache counters. Shard-identity gates
    compare this line: sharded runs keep one memo table per domain, so the
    cache hit/miss {e split} legitimately varies with the shard count
    while every protocol-observable field must not. *)

val row_of_json : Mewc_prelude.Jsonx.t -> (row, string) result
(** Inverse of {!row_to_json} (the derived hit-rate fields are ignored).
    The perf-regression ledger stores rows as JSON and diffs them after
    parsing back through this. *)

type report = {
  rows : row list;  (** from the sequential pass *)
  sequential_s : float;
  parallel_s : float;
  jobs : int;
  cores : int;  (** [Pool.default_jobs ()] on this machine *)
  speedup : float;  (** sequential_s /. parallel_s *)
  identical : bool;  (** parallel rows ≡ sequential rows, byte for byte *)
  scheduler : Mewc_sim.Engine.scheduler;  (** which engine ran the grid *)
  capped : point list;
      (** points the fallback cap dropped from the requested grid; [[]]
          unless the caller passed them through *)
  shard_wall_s : (int * float) list;
      (** wall clock of one sequential-across-points pass per shard count
          (the intra-run sharding curve); shard count 1 is the baseline *)
  shards_identical : bool;
      (** every shard pass's {!row_core_line}s ≡ the sequential pass's *)
  parallelism : string;
      (** ["degraded (1 core)"] when the host offers a single core —
          speedup quotients are then noise, not measurements — otherwise
          ["ok (N cores)"] *)
}

val run_perf :
  ?jobs:int ->
  ?profile:Mewc_sim.Profile.t ->
  ?scheduler:Mewc_sim.Engine.scheduler ->
  ?capped:point list ->
  ?shard_counts:int list ->
  ?progress:(unit -> unit) ->
  point list ->
  report
(** Runs the grid sequentially, then with [jobs] domains across points
    (default {!Mewc_prelude.Pool.default_jobs}), then once per entry of
    [shard_counts] (default [[1; 2; 4; 8]]) with the {e run itself}
    sharded across that many domains ([jobs = 1] for those passes, so the
    two parallelism axes never confound). Every pass is timed; the
    across-points pass must match the sequential rows byte for byte
    ({!row_to_line}), the shard passes on {!row_core_line}. [profile]
    instruments the {e sequential} pass only (profilers are not
    domain-safe); [progress] likewise ticks once per point of the
    sequential pass only — heartbeats never interleave across domains.
    [capped] (default empty) is carried verbatim into the report for the
    JSON's [capped_points] member. *)

val report_to_json : report -> Mewc_prelude.Jsonx.t
(** Schema ["mewc-perf/2"]: machine facts (cores, jobs), the
    [parallelism] note, both wall-clock times, the speedup, per-shard-count
    wall clocks and their identity verdict, the scheduler, the points the
    fallback cap excluded ([capped_points]), per-protocol crypto-cache hit
    rates, and every row. *)
