open Mewc_prelude
open Mewc_crypto
open Mewc_sim

module Make (F : Fallback_intf.FALLBACK with type value = bool) = struct
  let propose_purpose = "sba-propose"
  let decide_purpose = "sba-decide"
  let enc = Value.Bool.encode

  type msg =
    | Input of { value : bool; share : Pki.Sig.t }
    | Propose of { value : bool; qc : Certificate.t }
    | Decide_share of { value : bool; share : Pki.Sig.t }
    | Decide of { value : bool; qc : Certificate.t }
    | Fallback of { decision : (bool * Certificate.t) option }
    | Fb of F.msg

  let words = function
    | Input _ | Propose _ | Decide_share _ | Decide _ -> 2
    | Fallback { decision } -> 1 + (match decision with Some _ -> 2 | None -> 0)
    | Fb m -> F.words m

  let pp_msg fmt = function
    | Input { value; _ } -> Format.fprintf fmt "input(%b)" value
    | Propose { value; _ } -> Format.fprintf fmt "propose(%b)" value
    | Decide_share { value; _ } -> Format.fprintf fmt "decide-share(%b)" value
    | Decide { value; _ } -> Format.fprintf fmt "decide(%b)" value
    | Fallback _ -> Format.pp_print_string fmt "fallback"
    | Fb m -> Format.fprintf fmt "fb:%a" F.pp_msg m

  type state = {
    cfg : Config.t;
    pki : Pki.t;
    secret : Pki.Secret.t;
    pid : Pid.t;
    leader : Pid.t;
    input : bool;
    start_slot : int;
    input_shares : Certificate.Tally.t array;  (* leader; [|for false; for true|] *)
    decide_shares : Certificate.Tally.t array;  (* leader *)
    mutable proposal : (bool * Certificate.t) option;
    mutable decide_recv : (bool * Certificate.t) option;
    mutable decision : bool option;
    mutable proof : Certificate.t option;
    mutable decided_fast : bool;
    mutable bu_decision : bool;
    mutable bu_proof : (bool * Certificate.t) option;
    mutable fb_sched : int option;
    mutable fb_rebroadcast : bool;
    mutable fb_state : F.state option;
    mutable pending_fb : F.msg Envelope.t list;
    mutable decided_at : int option;
  }

  let idx b = if b then 1 else 0

  (* Relative schedule: rounds 1–5 of Algorithm 5 are slots 0–4; the
     fallback notice window spans slots 5–7 and A_fallback starts within
     [6, 9]. See Weak_ba's .mli for why a bounded window is sound. *)
  let fb_window_end = 7
  let horizon cfg = 9 + F.horizon cfg ~round_len:2 + 1

  let init ~cfg ~pki ~secret ~pid ~leader ~input ~start_slot =
    Composition.note ~user:"strong BA (failure-free linear)"
      ~uses:"threshold signatures";
    {
      cfg;
      pki;
      secret;
      pid;
      leader;
      input;
      start_slot;
      input_shares =
        Array.init 2 (fun i ->
            Certificate.Tally.create pki ~k:(Config.small_quorum cfg)
              ~purpose:propose_purpose ~payload:(enc (i = 1)));
      decide_shares =
        Array.init 2 (fun i ->
            Certificate.Tally.create pki ~k:cfg.Config.n ~purpose:decide_purpose
              ~payload:(enc (i = 1)));
      proposal = None;
      decide_recv = None;
      decision = None;
      proof = None;
      decided_fast = false;
      bu_decision = input;
      bu_proof = None;
      fb_sched = None;
      fb_rebroadcast = false;
      fb_state = None;
      pending_fb = [];
      decided_at = None;
    }

  let decision st = st.decision
  let decided_at st = st.decided_at
  let decided_fast st = st.decided_fast
  let fallback_entered st = st.fb_state <> None

  let verify_qc st ~purpose ~k ~value qc =
    Certificate.verify_as st.pki qc ~k ~purpose
    && String.equal (Certificate.payload qc) (enc value)

  let ingest st ~rel env =
    let cfg = st.cfg in
    let am_leader = Pid.equal st.pid st.leader in
    match env.Envelope.msg with
    | Input { value; share } ->
      if rel = 1 && am_leader then
        ignore
          (Certificate.Tally.add st.input_shares.(idx value) share
            : Pki.Tally.verdict)
    | Propose { value; qc } ->
      if
        rel = 2
        && Pid.equal env.Envelope.src st.leader
        && verify_qc st ~purpose:propose_purpose ~k:(Config.small_quorum cfg)
             ~value qc
        && st.proposal = None
      then st.proposal <- Some (value, qc)
    | Decide_share { value; share } ->
      if rel = 3 && am_leader then
        ignore
          (Certificate.Tally.add st.decide_shares.(idx value) share
            : Pki.Tally.verdict)
    | Decide { value; qc } ->
      if
        rel = 4
        && Pid.equal env.Envelope.src st.leader
        && verify_qc st ~purpose:decide_purpose ~k:cfg.Config.n ~value qc
        && st.decide_recv = None
      then st.decide_recv <- Some (value, qc)
    | Fallback { decision } ->
      if rel >= 5 && rel <= fb_window_end then begin
        (match decision with
        | Some (v, qc)
          when st.decision = None
               && verify_qc st ~purpose:decide_purpose ~k:cfg.Config.n ~value:v qc ->
          (* Line 22–24: adopt a certified decision during the window. *)
          st.bu_decision <- v;
          st.bu_proof <- Some (v, qc)
        | _ -> ());
        if st.fb_sched = None then begin
          st.fb_sched <- Some (st.start_slot + rel + 2);
          st.fb_rebroadcast <- true
        end
      end
    | Fb inner -> st.pending_fb <- { env with Envelope.msg = inner } :: st.pending_fb

  let step_fallback st ~slot =
    match st.fb_state with
    | None -> []
    | Some fb ->
      let inbox = List.rev st.pending_fb in
      st.pending_fb <- [];
      let fb', sends = F.step ~slot ~inbox fb in
      st.fb_state <- Some fb';
      (match F.decision fb' with
      | Some fv when st.decision = None -> st.decision <- Some fv
      | _ -> ());
      List.map (fun (m, dst) -> (Fb m, dst)) sends

  let emit st ~slot ~rel =
    let cfg = st.cfg in
    let n = cfg.Config.n in
    match rel with
    | 0 ->
      let share =
        Certificate.share st.pki st.secret ~purpose:propose_purpose
          ~payload:(enc st.input)
      in
      [ (Input { value = st.input; share }, st.leader) ]
    | 1 ->
      if Pid.equal st.pid st.leader then begin
        let pick value =
          Certificate.Tally.certificate st.input_shares.(idx value)
          |> Option.map (fun qc -> (value, qc))
        in
        match (pick false, pick true) with
        | Some (v, qc), _ | None, Some (v, qc) ->
          Process.broadcast ~n (Propose { value = v; qc })
        | None, None -> []
      end
      else []
    | 2 -> (
      match st.proposal with
      | Some (v, _) ->
        let share =
          Certificate.share st.pki st.secret ~purpose:decide_purpose
            ~payload:(enc v)
        in
        [ (Decide_share { value = v; share }, st.leader) ]
      | None -> [])
    | 3 ->
      if Pid.equal st.pid st.leader then begin
        let pick value =
          Certificate.Tally.certificate st.decide_shares.(idx value)
          |> Option.map (fun qc -> (value, qc))
        in
        match (pick false, pick true) with
        | Some (v, qc), _ | None, Some (v, qc) ->
          Process.broadcast ~n (Decide { value = v; qc })
        | None, None -> []
      end
      else []
    | 4 -> (
      (* Round 5, lines 13–18. *)
      match st.decide_recv with
      | Some (v, qc) ->
        st.decision <- Some v;
        st.proof <- Some qc;
        st.decided_fast <- true;
        st.bu_decision <- v;
        st.bu_proof <- Some (v, qc);
        []
      | None ->
        st.fb_sched <- Some (st.start_slot + rel + 2);
        Process.broadcast ~n (Fallback { decision = None }))
    | _ ->
      let out = ref [] in
      if st.fb_rebroadcast then begin
        st.fb_rebroadcast <- false;
        out :=
          Process.broadcast ~n (Fallback { decision = st.bu_proof }) @ !out
      end;
      (match st.fb_sched with
      | Some start when slot = start && st.fb_state = None ->
        Composition.note ~user:"strong BA (failure-free linear)"
          ~uses:"A-fallback (echo-phase-king)";
        st.fb_state <-
          Some
            (F.init ~cfg ~pki:st.pki ~secret:st.secret ~pid:st.pid
               ~input:st.bu_decision ~start_slot:start ~round_len:2)
      | _ -> ());
      out := step_fallback st ~slot @ !out;
      !out

  (* Inbox-free actions: everyone's Input send at slot 0 and the adopt-or-
     schedule-fallback branch at slot 4; afterwards the scheduled fallback
     start and the live fallback's round boundaries. Slots 1–3 emit only
     from state populated by same-slot ingestion, and [fb_rebroadcast] is
     set and consumed within one step, so deliveries cover them. *)
  let wake ~slot st =
    let rel = slot - st.start_slot in
    rel = 0 || rel = 4
    || st.fb_sched = Some slot
    || (match st.fb_state with Some fb -> F.wake ~slot fb | None -> false)

  let step ~slot ~inbox st =
    let rel = slot - st.start_slot in
    if rel < 0 then (st, [])
    else begin
      List.iter (fun env -> ingest st ~rel env) inbox;
      let sends = emit st ~slot ~rel in
      if st.decision <> None && st.decided_at = None then
        st.decided_at <- Some slot;
      (st, sends)
    end
end
