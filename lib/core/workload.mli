(** Open-loop client traffic for the throughput service.

    A workload is a deterministic stream of client requests — arrival slot
    and payload size in words — generated from a seed on a dedicated
    {!Mewc_prelude.Rng} stream, independent of every protocol RNG: the
    same seed always produces the same traffic no matter what the service
    does with it (open loop — clients do not wait for commits before
    sending more).

    Arrival processes are per-slot Poisson (Knuth sampling), optionally
    with a deterministic burst superimposed every [burst_every] slots;
    sizes are fixed or two-point skewed (mostly [base], occasionally
    [heavy]). *)

type arrival =
  | Steady of float  (** mean requests per slot (Poisson) *)
  | Bursty of { rate : float; burst_every : int; burst_size : int }
      (** Poisson at [rate], plus [burst_size] extra requests landing
          together every [burst_every] slots (first burst at slot 0) *)

type sizes =
  | Fixed of int  (** every request is this many words *)
  | Skewed of { base : int; heavy : int; heavy_weight : float }
      (** [heavy] words with probability [heavy_weight], else [base] *)

type profile = { arrival : arrival; sizes : sizes }

val validate : profile -> unit
(** Raises [Invalid_argument] on nonsensical profiles (negative rates,
    non-positive sizes or periods, weights outside [0, 1]). *)

type request = {
  id : int;  (** dense, in arrival order *)
  arrival : int;  (** slot the request reaches the service *)
  size : int;  (** payload words *)
}

val generate : seed:int64 -> profile:profile -> slots:int -> request list
(** The first [slots] slots of traffic, in arrival order (ties broken by
    generation order). Pure function of [(seed, profile, slots)]. *)

val total_words : request list -> int

val presets : (string * profile) list
(** The named profiles the throughput grid and CLI use:
    ["steady"] (1 req/slot, fixed 4 words), ["bursty"] (0.4 req/slot plus
    a 6-request burst every 8 slots) and ["heavy-tail"] (1 req/slot,
    skewed 2/32-word sizes). *)

val preset_names : string list
val find_preset : string -> profile option
val pp_profile : Format.formatter -> profile -> unit
