(** The client-visible face of the replicated log: submit → batch →
    commit.

    {!Repeated_bb} stays the raw protocol machine (init/step/log); this
    module is the entry point clients are meant to use. The lifecycle is
    submit / claim / finalize:

    + {!submit} queues a request (arrival slot + size in words) and
      returns a ticket;
    + {!finalize} packs the queue into batches — each batch is one
      proposed value, i.e. one {!Repeated_bb} log slot — runs the whole
      log in a single synchronous execution, and returns a {!report};
    + {!claim} looks a ticket up in the report: {!disposition.Committed}
      with the landing slot and latency, {!disposition.Skipped} when the
      batch's round-robin proposer was exposed as Byzantine,
      {!disposition.Undecided} when fault injection stalled the instance,
      or {!disposition.Unassigned} when the instance cap cut the tail of
      the queue.

    {b Batching is schedule-independent.} Batches are packed greedily in
    arrival order under three caps — [max_requests] and [max_words] per
    batch, and [max_age] slots between a batch's first and last arrival —
    as a pure function of the submitted stream. The pipeline offset never
    influences {e which} batch a request lands in, only {e when} that
    batch's instance runs; combined with {!Repeated_bb}'s oracle
    invariant, the committed log under a deep pipeline is byte-identical
    to the sequential schedule, while commits land earlier in wall-slots.

    The generator is open-loop, so a deep pipeline can decide a batch
    {e before} its last request's arrival slot (the schedule is known
    ahead of time); latency clamps at 0 in that case. *)

open Mewc_sim

type policy = { max_requests : int; max_words : int; max_age : int }
(** Batch caps. A batch closes as soon as adding the next request would
    exceed [max_requests] requests or [max_words] payload words, or when
    the next request arrived more than [max_age] slots after the batch's
    first. *)

val default_policy : policy
(** [{ max_requests = 8; max_words = 64; max_age = 4 }]. *)

val validate_policy : policy -> unit
(** Raises [Invalid_argument] unless all three caps are >= 1. *)

type t

val create : cfg:Config.t -> ?policy:policy -> ?offset:int -> unit -> t
(** A fresh service. [offset] is {!Repeated_bb}'s pipeline offset
    (default: unpipelined); validated here, eagerly. *)

val submit : t -> arrival:int -> size:int -> int
(** Queue one request; returns its ticket (dense, starting at 0).
    Arrivals must be non-decreasing across calls and sizes >= 1 —
    [Invalid_argument] otherwise. Raises [Failure] after {!finalize}. *)

val submit_workload : t -> Workload.request list -> unit
(** {!submit} every generated request, in order. *)

type disposition =
  | Committed of { index : int; decided_slot : int; latency : int }
      (** landed in log slot [index], fully replicated at wall-slot
          [decided_slot] (the last correct replica's decision),
          [latency = max 0 (decided_slot - arrival)] *)
  | Skipped of { index : int }  (** batch lost to a Byzantine proposer *)
  | Undecided of { index : int }  (** instance stalled (fault injection) *)
  | Unassigned  (** beyond the instance cap; never proposed *)

val pp_disposition : Format.formatter -> disposition -> unit

type report = {
  length : int;  (** log length = number of batches proposed *)
  offset : int;
  slots : int;  (** engine horizon executed *)
  f : int;
  words : int;  (** protocol words, the paper's metric *)
  requests : int;
  committed : int;  (** requests, not batches *)
  skipped : int;
  undecided : int;
  unassigned : int;
  decided_batches : int;
  batch_fill : float;
      (** mean batch occupancy / [max_requests], over proposed batches *)
  words_per_decision : float;  (** protocol words per decided batch *)
  decisions_per_1k_slots : float;  (** decided batches per 1000 slots *)
  p50_latency : int;  (** over committed requests; 0 when none *)
  p99_latency : int;
  dispositions : disposition array;  (** indexed by ticket *)
  log : Repeated_bb.entry option array;  (** the agreed log, replica 0 *)
}

val finalize :
  t ->
  seed:int64 ->
  ?max_instances:int ->
  ?options:(Repeated_bb.state, Repeated_bb.msg) Engine.options ->
  adversary:(Repeated_bb.state, Repeated_bb.msg) Adversary.factory ->
  unit ->
  report
(** Pack, run, measure. [seed] feeds the trusted setup ({!Repeated_bb.run});
    [max_instances] caps the log length (default: unbounded — every batch
    is proposed); excess requests come back {!disposition.Unassigned}.
    [options] passes the engine's knobs through (fault plans for the SLO
    sweep, scheduler/shards for the determinism gates). The service is
    single-shot: a second call raises [Failure]. *)

val claim : report -> int -> disposition
(** [claim report ticket]. Raises [Invalid_argument] on unknown tickets. *)

val report_to_json : report -> Mewc_prelude.Jsonx.t
(** Per-run facts only (no schema tag; {!Throughput} wraps reports into
    the versioned [mewc-throughput/1] document). *)
