open Mewc_crypto
open Mewc_sim

module Epk_str = Mewc_fallback.Echo_phase_king.Make (Value.Str)

module Fallback_str = struct
  include Epk_str

  type value = string
end

module Weak_str = Weak_ba.Make (Value.Str) (Fallback_str)

type 'o agreement_outcome = {
  decisions : 'o option array;
  corrupted : Mewc_prelude.Pid.t list;
  f : int;
  words : int;
  messages : int;
  byz_words : int;
  signatures : int;
  slots : int;
  fallback_runs : int;
  nonsilent_phases : int;
  help_requests : int;
  latency : int;
  meter : Meter.snapshot;
  crypto : Mewc_crypto.Pki.cache_stats;
  trace_json : Mewc_prelude.Jsonx.t option;
}

(* Latest decision slot among correct processes; -1 if one never decided. *)
let latency_of ~corrupted ~decided_at states =
  Array.to_list states
  |> List.mapi (fun p st -> (p, st))
  |> List.filter (fun (p, _) -> not (List.mem p corrupted))
  |> List.fold_left
       (fun acc (_, st) ->
         match (acc, decided_at st) with
         | -1, _ | _, None -> -1
         | acc, Some s -> max acc s)
       0

(* A monitor violation escaping a runner gains the run's seeds, so it is a
   replayable counterexample and not just a bare assertion failure. *)
let replayable ~seed ~shuffle_seed run =
  try run ()
  with Monitor.Violation v ->
    let shuffle =
      match shuffle_seed with
      | None -> "none"
      | Some s -> Int64.to_string s
    in
    raise
      (Monitor.Violation
         {
           v with
           Monitor.reason =
             Printf.sprintf "%s [replay: seed=%Ld shuffle_seed=%s]"
               v.Monitor.reason seed shuffle;
         })

(* Below this many corruptions the adaptive protocols stay on their
   O(n(f+1)) path; at or above it the fallback (and its O(n^2) class) is
   reachable (Lemma 6). *)
let fallback_threshold cfg = (cfg.Config.n - cfg.Config.t - 1) / 2

(* Empirical word/latency envelopes, calibrated against the simulator over
   n in 5..33 and the whole adversary zoo, with ~2x headroom. They are
   deliberately in the paper's complexity *class* — 32·n(f+1) is still
   O(n(f+1)) — so a regression that breaks the class trips the monitor while
   constant-factor noise does not. *)
let weak_word_bound cfg ~f =
  let n = cfg.Config.n in
  if f < fallback_threshold cfg then 32 * n * (f + 1) else 8 * n * n * (f + 1)

let std_monitors ~cfg ~word_name ~word_bound ~early_name ~early_bound =
  [
    Monitor.corruption_budget ~cfg;
    Monitor.agreement ~cfg ();
    Monitor.word_bound ~name:word_name ~bound:word_bound;
    Monitor.early_termination ~name:early_name ~bound:early_bound;
    Monitor.metering ();
  ]

module Epk_bool = Mewc_fallback.Echo_phase_king.Make (Value.Bool)

module Fallback_bool = struct
  include Epk_bool

  type value = bool
end

module Strong_bool = Ff_strong_ba.Make (Fallback_bool)

let run_fallback ~cfg ?(seed = 1L) ?shuffle_seed ?(record_trace = false)
    ?(round_len = 1) ?(start_slot = fun _ -> 0) ~inputs ~adversary () =
  let n = cfg.Config.n in
  if Array.length inputs <> n then
    invalid_arg "run_fallback: need one input per process";
  let pki, secrets = Pki.setup ~seed ~n () in
  let protocol pid =
    {
      Process.init =
        Epk_str.init ~cfg ~pki ~secret:secrets.(pid) ~pid ~input:inputs.(pid)
          ~start_slot:(start_slot pid) ~round_len;
      step = (fun ~slot ~inbox st -> Epk_str.step ~slot ~inbox st);
    }
  in
  let adversary = adversary ~pki ~secrets in
  let horizon = Epk_str.horizon cfg ~round_len in
  let monitors =
    std_monitors ~cfg ~word_name:"epk-words"
      ~word_bound:(fun ~f -> 16 * n * n * (f + 1))
      ~early_name:"epk-latency"
      ~early_bound:(fun ~f -> min horizon (round_len * (10 + (7 * f)) + round_len))
  in
  let res =
    replayable ~seed ~shuffle_seed (fun () ->
        Engine.run ~cfg ?shuffle_seed ~record_trace ~monitors
          ~decided:Epk_str.decision ~words:Epk_str.words ~horizon ~protocol
          ~adversary ())
  in
  {
    decisions = Array.map Epk_str.decision res.Engine.states;
    corrupted = res.Engine.corrupted;
    f = res.Engine.f;
    words = Meter.correct_words res.Engine.meter;
    messages = Meter.correct_messages res.Engine.meter;
    byz_words = Meter.byzantine_words res.Engine.meter;
    signatures = Pki.signatures_created pki;
    slots = res.Engine.slots;
    fallback_runs = 0;
    nonsilent_phases = 0;
    help_requests = 0;
    latency =
      latency_of ~corrupted:res.Engine.corrupted ~decided_at:Epk_str.decided_at
        res.Engine.states;
    meter = Meter.snapshot res.Engine.meter;
    crypto = Pki.cache_stats pki;
    trace_json =
      (if record_trace then
         Some
           (Trace.to_json
              ~encode:(Format.asprintf "%a" Epk_str.pp_msg)
              res.Engine.trace)
       else None);
  }

let run_weak_ba ~cfg ?(seed = 1L) ?shuffle_seed ?(record_trace = false)
    ?(validate = fun _ -> true) ?quorum_override ~inputs ~adversary () =
  let n = cfg.Config.n in
  if Array.length inputs <> n then
    invalid_arg "run_weak_ba: need one input per process";
  let pki, secrets = Pki.setup ~seed ~n () in
  let protocol pid =
    {
      Process.init =
        Weak_str.init ?quorum_override ~cfg ~pki ~secret:secrets.(pid) ~pid
          ~input:inputs.(pid) ~validate ~start_slot:0 ();
      step = (fun ~slot ~inbox st -> Weak_str.step ~slot ~inbox st);
    }
  in
  let adversary = adversary ~pki ~secrets in
  let horizon = Weak_str.horizon cfg in
  let monitors =
    match quorum_override with
    | Some _ ->
      (* The ablation knob breaks quorum intersection by design; agreement,
         termination and word bounds are exactly what it sacrifices. *)
      [ Monitor.corruption_budget ~cfg; Monitor.metering () ]
    | None ->
      std_monitors ~cfg ~word_name:"weak-ba-words"
        ~word_bound:(weak_word_bound cfg)
        ~early_name:"weak-ba-latency"
        ~early_bound:(fun ~f ->
          if f < fallback_threshold cfg then (6 * (f + 1)) + 10 else horizon)
  in
  let res =
    replayable ~seed ~shuffle_seed (fun () ->
        Engine.run ~cfg ?shuffle_seed ~record_trace ~monitors
          ~decided:(fun st ->
            Option.map
              (Format.asprintf "%a" Weak_str.pp_outcome)
              (Weak_str.decision st))
          ~words:Weak_str.words ~horizon ~protocol ~adversary ())
  in
  let correct_states =
    Array.to_list res.Engine.states
    |> List.filteri (fun p _ -> not (List.mem p res.Engine.corrupted))
  in
  let count f = List.length (List.filter f correct_states) in
  {
    decisions = Array.map Weak_str.decision res.Engine.states;
    corrupted = res.Engine.corrupted;
    f = res.Engine.f;
    words = Meter.correct_words res.Engine.meter;
    messages = Meter.correct_messages res.Engine.meter;
    byz_words = Meter.byzantine_words res.Engine.meter;
    signatures = Pki.signatures_created pki;
    slots = res.Engine.slots;
    fallback_runs = count Weak_str.fallback_entered;
    nonsilent_phases = count Weak_str.initiated_phase;
    help_requests = count Weak_str.sent_help_request;
    latency =
      latency_of ~corrupted:res.Engine.corrupted ~decided_at:Weak_str.decided_at
        res.Engine.states;
    meter = Meter.snapshot res.Engine.meter;
    crypto = Pki.cache_stats pki;
    trace_json =
      (if record_trace then
         Some
           (Trace.to_json
              ~encode:(Format.asprintf "%a" Weak_str.pp_msg)
              res.Engine.trace)
       else None);
  }

let run_bb ~cfg ?(seed = 1L) ?shuffle_seed ?(record_trace = false) ?(sender = 0)
    ~input ~adversary () =
  let n = cfg.Config.n in
  let pki, secrets = Pki.setup ~seed ~n () in
  let protocol pid =
    {
      Process.init =
        Adaptive_bb.init ~cfg ~pki ~secret:secrets.(pid) ~pid ~sender
          ~input:(if pid = sender then Some input else None)
          ~start_slot:0;
      step = (fun ~slot ~inbox st -> Adaptive_bb.step ~slot ~inbox st);
    }
  in
  let adversary = adversary ~pki ~secrets in
  let horizon = Adaptive_bb.horizon cfg in
  let monitors =
    std_monitors ~cfg ~word_name:"bb-words" ~word_bound:(weak_word_bound cfg)
      ~early_name:"bb-latency"
      ~early_bound:(fun ~f ->
        if f < fallback_threshold cfg then (3 * n) + (6 * (f + 2)) + 12
        else horizon)
  in
  let res =
    replayable ~seed ~shuffle_seed (fun () ->
        Engine.run ~cfg ?shuffle_seed ~record_trace ~monitors
          ~decided:(fun st ->
            Option.map
              (Format.asprintf "%a" Adaptive_bb.pp_decision)
              (Adaptive_bb.decision st))
          ~words:Adaptive_bb.words ~horizon ~protocol ~adversary ())
  in
  let correct_states =
    Array.to_list res.Engine.states
    |> List.filteri (fun p _ -> not (List.mem p res.Engine.corrupted))
  in
  let count f = List.length (List.filter f correct_states) in
  {
    decisions = Array.map Adaptive_bb.decision res.Engine.states;
    corrupted = res.Engine.corrupted;
    f = res.Engine.f;
    words = Meter.correct_words res.Engine.meter;
    messages = Meter.correct_messages res.Engine.meter;
    byz_words = Meter.byzantine_words res.Engine.meter;
    signatures = Pki.signatures_created pki;
    slots = res.Engine.slots;
    fallback_runs = count Adaptive_bb.fallback_entered;
    nonsilent_phases = count Adaptive_bb.vetting_phase_initiated;
    help_requests = 0;
    latency =
      latency_of ~corrupted:res.Engine.corrupted ~decided_at:Adaptive_bb.decided_at
        res.Engine.states;
    meter = Meter.snapshot res.Engine.meter;
    crypto = Pki.cache_stats pki;
    trace_json =
      (if record_trace then
         Some
           (Trace.to_json
              ~encode:(Format.asprintf "%a" Adaptive_bb.pp_msg)
              res.Engine.trace)
       else None);
  }

module Binary_bb_bool = Binary_bb.Make (Fallback_bool)

let run_binary_bb ~cfg ?(seed = 1L) ?shuffle_seed ?(record_trace = false)
    ?(sender = 0) ~input ~adversary () =
  let n = cfg.Config.n in
  let pki, secrets = Pki.setup ~seed ~n () in
  let protocol pid =
    {
      Process.init =
        Binary_bb_bool.init ~cfg ~pki ~secret:secrets.(pid) ~pid ~sender
          ~input:(if pid = sender then Some input else None)
          ~start_slot:0;
      step = (fun ~slot ~inbox st -> Binary_bb_bool.step ~slot ~inbox st);
    }
  in
  let adversary = adversary ~pki ~secrets in
  let horizon = Binary_bb_bool.horizon cfg in
  let monitors =
    std_monitors ~cfg ~word_name:"binary-bb-words"
      ~word_bound:(fun ~f ->
        if f = 0 then 16 * n else 16 * n * n * (f + 1))
      ~early_name:"binary-bb-latency"
      ~early_bound:(fun ~f -> if f = 0 then 8 else horizon)
  in
  let res =
    replayable ~seed ~shuffle_seed (fun () ->
        Engine.run ~cfg ?shuffle_seed ~record_trace ~monitors
          ~decided:(fun st ->
            Option.map string_of_bool (Binary_bb_bool.decision st))
          ~words:Binary_bb_bool.words ~horizon ~protocol ~adversary ())
  in
  let correct_states =
    Array.to_list res.Engine.states
    |> List.filteri (fun p _ -> not (List.mem p res.Engine.corrupted))
  in
  let count f = List.length (List.filter f correct_states) in
  {
    decisions = Array.map Binary_bb_bool.decision res.Engine.states;
    corrupted = res.Engine.corrupted;
    f = res.Engine.f;
    words = Meter.correct_words res.Engine.meter;
    messages = Meter.correct_messages res.Engine.meter;
    byz_words = Meter.byzantine_words res.Engine.meter;
    signatures = Pki.signatures_created pki;
    slots = res.Engine.slots;
    fallback_runs =
      List.length correct_states - count Binary_bb_bool.decided_fast;
    nonsilent_phases = count Binary_bb_bool.decided_fast;
    help_requests = 0;
    latency =
      latency_of ~corrupted:res.Engine.corrupted
        ~decided_at:Binary_bb_bool.decided_at res.Engine.states;
    meter = Meter.snapshot res.Engine.meter;
    crypto = Pki.cache_stats pki;
    trace_json =
      (if record_trace then
         Some
           (Trace.to_json
              ~encode:(Format.asprintf "%a" Binary_bb_bool.pp_msg)
              res.Engine.trace)
       else None);
  }

let run_strong_ba ~cfg ?(seed = 1L) ?shuffle_seed ?(record_trace = false)
    ?(leader = 0) ~inputs ~adversary () =
  let n = cfg.Config.n in
  if Array.length inputs <> n then
    invalid_arg "run_strong_ba: need one input per process";
  let pki, secrets = Pki.setup ~seed ~n () in
  let protocol pid =
    {
      Process.init =
        Strong_bool.init ~cfg ~pki ~secret:secrets.(pid) ~pid ~leader
          ~input:inputs.(pid) ~start_slot:0;
      step = (fun ~slot ~inbox st -> Strong_bool.step ~slot ~inbox st);
    }
  in
  let adversary = adversary ~pki ~secrets in
  let horizon = Strong_bool.horizon cfg in
  let monitors =
    std_monitors ~cfg ~word_name:"strong-ba-words"
      ~word_bound:(fun ~f ->
        if f = 0 then 16 * n else 16 * n * n * (f + 1))
      ~early_name:"strong-ba-latency"
      ~early_bound:(fun ~f -> if f = 0 then 6 else horizon)
  in
  let res =
    replayable ~seed ~shuffle_seed (fun () ->
        Engine.run ~cfg ?shuffle_seed ~record_trace ~monitors
          ~decided:(fun st ->
            Option.map string_of_bool (Strong_bool.decision st))
          ~words:Strong_bool.words ~horizon ~protocol ~adversary ())
  in
  let correct_states =
    Array.to_list res.Engine.states
    |> List.filteri (fun p _ -> not (List.mem p res.Engine.corrupted))
  in
  let count f = List.length (List.filter f correct_states) in
  {
    decisions = Array.map Strong_bool.decision res.Engine.states;
    corrupted = res.Engine.corrupted;
    f = res.Engine.f;
    words = Meter.correct_words res.Engine.meter;
    messages = Meter.correct_messages res.Engine.meter;
    byz_words = Meter.byzantine_words res.Engine.meter;
    signatures = Pki.signatures_created pki;
    slots = res.Engine.slots;
    fallback_runs = count Strong_bool.fallback_entered;
    nonsilent_phases = count Strong_bool.decided_fast;
    help_requests = 0;
    latency =
      latency_of ~corrupted:res.Engine.corrupted ~decided_at:Strong_bool.decided_at
        res.Engine.states;
    meter = Meter.snapshot res.Engine.meter;
    crypto = Pki.cache_stats pki;
    trace_json =
      (if record_trace then
         Some
           (Trace.to_json
              ~encode:(Format.asprintf "%a" Strong_bool.pp_msg)
              res.Engine.trace)
       else None);
  }
