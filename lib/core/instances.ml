open Mewc_prelude
open Mewc_crypto
open Mewc_sim

module Epk_str = Mewc_fallback.Echo_phase_king.Make (Value.Str)

module Fallback_str = struct
  include Epk_str

  type value = string
end

module Weak_str = Weak_ba.Make (Value.Str) (Fallback_str)

type status = Decided | Undecided of Pid.t list

let pp_status fmt = function
  | Decided -> Format.fprintf fmt "decided"
  | Undecided ps ->
    Format.fprintf fmt "undecided{%s}"
      (String.concat "," (List.map string_of_int ps))

type 'o agreement_outcome = {
  decisions : 'o option array;
  decided_slots : int option array;
  decided_strs : string option array;
  corrupted : Mewc_prelude.Pid.t list;
  f : int;
  faulty : Mewc_prelude.Pid.t list;
  status : status;
  words : int;
  messages : int;
  byz_words : int;
  signatures : int;
  slots : int;
  fallback_runs : int;
  nonsilent_phases : int;
  help_requests : int;
  latency : int;
  meter : Meter.snapshot;
  crypto : Mewc_crypto.Pki.cache_stats;
  trace_json : Mewc_prelude.Jsonx.t option;
}

(* Latest decision slot among correct non-faulted processes; -1 if one never
   decided. Injected process faults void a pid's latency obligation the same
   way corruption does. *)
let latency_of ~corrupted ~faulty ~decided_at states =
  Array.to_list states
  |> List.mapi (fun p st -> (p, st))
  |> List.filter (fun (p, _) ->
         (not (List.mem p corrupted)) && not (List.mem p faulty))
  |> List.fold_left
       (fun acc (_, st) ->
         match (acc, decided_at st) with
         | -1, _ | _, None -> -1
         | acc, Some s -> max acc s)
       0

(* A monitor violation escaping a runner gains the run's seeds, so it is a
   replayable counterexample and not just a bare assertion failure. *)
let replayable ~seed ~shuffle_seed run =
  try run ()
  with Monitor.Violation v ->
    let shuffle =
      match shuffle_seed with
      | None -> "none"
      | Some s -> Int64.to_string s
    in
    raise
      (Monitor.Violation
         {
           v with
           Monitor.reason =
             Printf.sprintf "%s [replay: seed=%Ld shuffle_seed=%s]"
               v.Monitor.reason seed shuffle;
         })

(* Below this many corruptions the adaptive protocols stay on their
   O(n(f+1)) path; at or above it the fallback (and its O(n^2) class) is
   reachable (Lemma 6). *)
let fallback_threshold cfg = (cfg.Config.n - cfg.Config.t - 1) / 2

(* Empirical word/latency envelopes, calibrated against the simulator over
   n in 5..33 and the whole adversary zoo, with ~2x headroom. They are
   deliberately in the paper's complexity *class* — 32·n(f+1) is still
   O(n(f+1)) — so a regression that breaks the class trips the monitor while
   constant-factor noise does not. *)
let weak_word_bound cfg ~f =
  let n = cfg.Config.n in
  if f < fallback_threshold cfg then 32 * n * (f + 1) else 8 * n * n * (f + 1)

let std_monitors ~cfg ~word_name ~word_bound ~early_name ~early_bound =
  [
    Monitor.corruption_budget ~cfg;
    Monitor.agreement ();
    Monitor.termination ~cfg;
    Monitor.word_bound ~name:word_name ~bound:word_bound;
    (* The causal cone of a decision spends at most what all correct
       processes spent, so the global envelope is a sound per-decision
       bound. Sampling thins the O(sends) frontier passes at sweep sizes;
       every decision is still checked at test sizes (n ≤ 64). *)
    Monitor.cone_words_bound ~cfg
      ~name:(word_name ^ "-cone")
      ~check_every:(1 + (cfg.Config.n / 64))
      ~bound:word_bound ();
    Monitor.early_termination ~name:early_name ~bound:early_bound;
    Monitor.metering ();
  ]

module Epk_bool = Mewc_fallback.Echo_phase_king.Make (Value.Bool)

module Fallback_bool = struct
  include Epk_bool

  type value = bool
end

module Strong_bool = Ff_strong_ba.Make (Fallback_bool)
module Binary_bb_bool = Binary_bb.Make (Fallback_bool)

(* ---- the five Protocol.S instances ------------------------------------- *)

module Fallback_protocol = struct
  type value = string

  type params = {
    inputs : string array;
    round_len : int;
    start_slot : Pid.t -> int;
  }

  type state = Epk_str.state
  type msg = Epk_str.msg
  type decision = string

  let name = "fallback"
  let words = Epk_str.words
  let encode_msg = Format.asprintf "%a" Epk_str.pp_msg

  let default_params cfg =
    {
      inputs = Array.make cfg.Config.n "v";
      round_len = 1;
      start_slot = (fun _ -> 0);
    }

  let mutate_params p ~salt =
    { p with inputs = Array.map (fun v -> Printf.sprintf "%s~%d" v salt) p.inputs }

  let validate_params ~cfg ~params =
    if Array.length params.inputs <> cfg.Config.n then
      invalid_arg "run_fallback: need one input per process"

  let horizon ~cfg ~params = Epk_str.horizon cfg ~round_len:params.round_len

  let machine ~cfg ~pki ~secret ~params ~pid =
    {
      Process.init =
        Epk_str.init ~cfg ~pki ~secret ~pid ~input:params.inputs.(pid)
          ~start_slot:(params.start_slot pid) ~round_len:params.round_len;
      step = (fun ~slot ~inbox st -> Epk_str.step ~slot ~inbox st);
      wake = Some (fun ~slot st -> Epk_str.wake ~slot st);
    }

  let decision = Epk_str.decision
  let decided_str = Epk_str.decision
  let decided_at = Epk_str.decided_at

  let monitors ~cfg ~params =
    let n = cfg.Config.n in
    let horizon = horizon ~cfg ~params in
    std_monitors ~cfg ~word_name:"epk-words"
      ~word_bound:(fun ~f -> 16 * n * n * (f + 1))
      ~early_name:"epk-latency"
      ~early_bound:(fun ~f ->
        min horizon ((params.round_len * (10 + (7 * f))) + params.round_len))

  let counters _ =
    { Protocol.fallback_runs = 0; nonsilent_phases = 0; help_requests = 0 }

  let spray = None
end

module Weak_ba_protocol = struct
  type value = string

  type params = {
    inputs : string array;
    validate : string -> bool;
    quorum_override : int option;
  }

  type state = Weak_str.state
  type msg = Weak_str.msg
  type decision = Weak_str.outcome

  let name = "weak-ba"
  let words = Weak_str.words
  let encode_msg = Format.asprintf "%a" Weak_str.pp_msg

  let default_params cfg =
    {
      inputs = Array.make cfg.Config.n "v";
      validate = (fun _ -> true);
      quorum_override = None;
    }

  let mutate_params p ~salt =
    { p with inputs = Array.map (fun v -> Printf.sprintf "%s~%d" v salt) p.inputs }

  let validate_params ~cfg ~params =
    if Array.length params.inputs <> cfg.Config.n then
      invalid_arg "run_weak_ba: need one input per process"

  let horizon ~cfg ~params:_ = Weak_str.horizon cfg

  let machine ~cfg ~pki ~secret ~params ~pid =
    {
      Process.init =
        Weak_str.init ?quorum_override:params.quorum_override ~cfg ~pki ~secret
          ~pid ~input:params.inputs.(pid) ~validate:params.validate
          ~start_slot:0 ();
      step = (fun ~slot ~inbox st -> Weak_str.step ~slot ~inbox st);
      wake = Some (fun ~slot st -> Weak_str.wake ~slot st);
    }

  let decision = Weak_str.decision

  let decided_str st =
    Option.map (Format.asprintf "%a" Weak_str.pp_outcome) (Weak_str.decision st)

  let decided_at = Weak_str.decided_at

  let monitors ~cfg ~params =
    match params.quorum_override with
    | Some _ ->
      (* The ablation knob breaks quorum intersection by design; agreement,
         termination and word bounds are exactly what it sacrifices. *)
      [ Monitor.corruption_budget ~cfg; Monitor.metering () ]
    | None ->
      let horizon = Weak_str.horizon cfg in
      std_monitors ~cfg ~word_name:"weak-ba-words"
        ~word_bound:(weak_word_bound cfg)
        ~early_name:"weak-ba-latency"
        ~early_bound:(fun ~f ->
          if f < fallback_threshold cfg then (6 * (f + 1)) + 10 else horizon)

  let counters correct_states =
    let count f = List.length (List.filter f correct_states) in
    {
      Protocol.fallback_runs = count Weak_str.fallback_entered;
      nonsilent_phases = count Weak_str.initiated_phase;
      help_requests = count Weak_str.sent_help_request;
    }

  (* The share-spray forger. It is protocol-shaped on purpose: it harvests
     every commit/finalize share correct processes route through corrupted
     leaders, equivocates proposals in the phases its pids lead (value A to
     even destinations, value B to odd ones), and completes each side's
     commit and finalize certificates by topping the harvested shares up
     with shares of already-corrupted processes — exactly what the model
     permits and nothing more. Against the sound quorum the two sides can
     never both reach the threshold (intersection, Lemma 15); against the
     [quorum_override] ablation they can, which is how the fuzzer rediscovers
     the planted agreement violation. *)
  let spray =
    Some
      (fun ~cfg ~params ~pki ~rng:_ ->
        let n = cfg.Config.n in
        let quorum =
          match params.quorum_override with
          | Some q -> q
          | None -> Config.big_quorum cfg
        in
        let bank = Forge.create pki in
        let observe = Forge.observe bank in
        let certify ~purpose ~payload ~active =
          Forge.certify bank ~k:quorum ~purpose ~payload ~secrets:active
        in
        let evens = List.filter (fun d -> d mod 2 = 0) (List.init n Fun.id) in
        let odds = List.filter (fun d -> d mod 2 = 1) (List.init n Fun.id) in
        let sides = [ ("fz0", evens); ("fz1", odds) ] in
        fun ~pid ~slot ~inbox ~active ->
          List.iter
            (fun env ->
              match env.Envelope.msg with
              | Weak_str.Vote { phase; value; share } ->
                observe ~purpose:Weak_str.commit_purpose
                  ~payload:(Weak_str.phased_payload phase value)
                  share
              | Weak_str.Decide_share { phase; value; share } ->
                observe ~purpose:Weak_str.finalize_purpose
                  ~payload:(Weak_str.phased_payload phase value)
                  share
              | Weak_str.Help_req { sg } ->
                observe ~purpose:Weak_str.helpreq_purpose ~payload:"" sg
              | _ -> ())
            inbox;
          let mine =
            List.filter
              (fun j -> Pid.equal (Pid.rotating_leader ~n ~phase:j) pid)
              (List.init (cfg.Config.t + 1) (fun i -> i + 1))
          in
          List.concat_map
            (fun j ->
              let b = Weak_str.base j in
              if slot = b then
                match List.assoc_opt pid active with
                | None -> []
                | Some secret ->
                  List.concat_map
                    (fun (v, side) ->
                      let sg =
                        Certificate.share pki secret
                          ~purpose:Weak_str.propose_purpose
                          ~payload:(Weak_str.phased_payload j v)
                      in
                      List.map
                        (fun d ->
                          (Weak_str.Propose { phase = j; value = v; sg }, d))
                        side)
                    sides
              else if slot = b + 2 then
                List.concat_map
                  (fun (v, side) ->
                    match
                      certify ~purpose:Weak_str.commit_purpose
                        ~payload:(Weak_str.phased_payload j v) ~active
                    with
                    | Some qc ->
                      List.map
                        (fun d ->
                          ( Weak_str.Commit_bcast
                              { phase = j; value = v; level = j; qc },
                            d ))
                        side
                    | None -> [])
                  sides
              else if slot = b + 4 then
                List.concat_map
                  (fun (v, side) ->
                    match
                      certify ~purpose:Weak_str.finalize_purpose
                        ~payload:(Weak_str.phased_payload j v) ~active
                    with
                    | Some qc ->
                      List.map
                        (fun d ->
                          (Weak_str.Finalized { phase = j; value = v; qc }, d))
                        side
                    | None -> [])
                  sides
              else [])
            mine)
end

module Bb_protocol = struct
  type value = string

  type params = { sender : Pid.t; input : string }
  type state = Adaptive_bb.state
  type msg = Adaptive_bb.msg
  type decision = Adaptive_bb.decision

  let name = "bb"
  let words = Adaptive_bb.words
  let encode_msg = Format.asprintf "%a" Adaptive_bb.pp_msg
  let default_params _cfg = { sender = 0; input = "v" }

  let mutate_params p ~salt =
    { p with input = Printf.sprintf "%s~%d" p.input salt }

  let validate_params ~cfg:_ ~params:_ = ()
  let horizon ~cfg ~params:_ = Adaptive_bb.horizon cfg

  let machine ~cfg ~pki ~secret ~params ~pid =
    {
      Process.init =
        Adaptive_bb.init ~cfg ~pki ~secret ~pid ~sender:params.sender
          ~input:(if pid = params.sender then Some params.input else None)
          ~start_slot:0;
      step = (fun ~slot ~inbox st -> Adaptive_bb.step ~slot ~inbox st);
      wake = Some (fun ~slot st -> Adaptive_bb.wake ~slot st);
    }

  let decision = Adaptive_bb.decision

  let decided_str st =
    Option.map
      (Format.asprintf "%a" Adaptive_bb.pp_decision)
      (Adaptive_bb.decision st)

  let decided_at = Adaptive_bb.decided_at

  let monitors ~cfg ~params =
    let n = cfg.Config.n in
    let horizon = horizon ~cfg ~params in
    std_monitors ~cfg ~word_name:"bb-words" ~word_bound:(weak_word_bound cfg)
      ~early_name:"bb-latency"
      ~early_bound:(fun ~f ->
        if f < fallback_threshold cfg then (3 * n) + (6 * (f + 2)) + 12
        else horizon)

  let counters correct_states =
    let count f = List.length (List.filter f correct_states) in
    {
      Protocol.fallback_runs = count Adaptive_bb.fallback_entered;
      nonsilent_phases = count Adaptive_bb.vetting_phase_initiated;
      help_requests = 0;
    }

  let spray = None
end

module Binary_bb_protocol = struct
  type value = bool

  type params = { sender : Pid.t; input : bool }
  type state = Binary_bb_bool.state
  type msg = Binary_bb_bool.msg
  type decision = bool

  let name = "binary-bb"
  let words = Binary_bb_bool.words
  let encode_msg = Format.asprintf "%a" Binary_bb_bool.pp_msg
  let default_params _cfg = { sender = 0; input = true }
  let mutate_params p ~salt = { p with input = salt mod 2 = 0 }
  let validate_params ~cfg:_ ~params:_ = ()
  let horizon ~cfg ~params:_ = Binary_bb_bool.horizon cfg

  let machine ~cfg ~pki ~secret ~params ~pid =
    {
      Process.init =
        Binary_bb_bool.init ~cfg ~pki ~secret ~pid ~sender:params.sender
          ~input:(if pid = params.sender then Some params.input else None)
          ~start_slot:0;
      step = (fun ~slot ~inbox st -> Binary_bb_bool.step ~slot ~inbox st);
      wake = Some (fun ~slot st -> Binary_bb_bool.wake ~slot st);
    }

  let decision = Binary_bb_bool.decision

  let decided_str st =
    Option.map string_of_bool (Binary_bb_bool.decision st)

  let decided_at = Binary_bb_bool.decided_at

  let monitors ~cfg ~params =
    let n = cfg.Config.n in
    let horizon = horizon ~cfg ~params in
    std_monitors ~cfg ~word_name:"binary-bb-words"
      ~word_bound:(fun ~f -> if f = 0 then 16 * n else 16 * n * n * (f + 1))
      ~early_name:"binary-bb-latency"
      ~early_bound:(fun ~f -> if f = 0 then 8 else horizon)

  let counters correct_states =
    let count f = List.length (List.filter f correct_states) in
    {
      Protocol.fallback_runs =
        List.length correct_states - count Binary_bb_bool.decided_fast;
      nonsilent_phases = count Binary_bb_bool.decided_fast;
      help_requests = 0;
    }

  let spray = None
end

module Strong_ba_protocol = struct
  type value = bool

  type params = { leader : Pid.t; inputs : bool array }
  type state = Strong_bool.state
  type msg = Strong_bool.msg
  type decision = bool

  let name = "strong-ba"
  let words = Strong_bool.words
  let encode_msg = Format.asprintf "%a" Strong_bool.pp_msg
  let default_params cfg = { leader = 0; inputs = Array.make cfg.Config.n true }

  let mutate_params p ~salt =
    { p with inputs = Array.map (fun b -> if salt mod 2 = 0 then not b else b) p.inputs }

  let validate_params ~cfg ~params =
    if Array.length params.inputs <> cfg.Config.n then
      invalid_arg "run_strong_ba: need one input per process"

  let horizon ~cfg ~params:_ = Strong_bool.horizon cfg

  let machine ~cfg ~pki ~secret ~params ~pid =
    {
      Process.init =
        Strong_bool.init ~cfg ~pki ~secret ~pid ~leader:params.leader
          ~input:params.inputs.(pid) ~start_slot:0;
      step = (fun ~slot ~inbox st -> Strong_bool.step ~slot ~inbox st);
      wake = Some (fun ~slot st -> Strong_bool.wake ~slot st);
    }

  let decision = Strong_bool.decision
  let decided_str st = Option.map string_of_bool (Strong_bool.decision st)
  let decided_at = Strong_bool.decided_at

  let monitors ~cfg ~params =
    let n = cfg.Config.n in
    let horizon = horizon ~cfg ~params in
    std_monitors ~cfg ~word_name:"strong-ba-words"
      ~word_bound:(fun ~f -> if f = 0 then 16 * n else 16 * n * n * (f + 1))
      ~early_name:"strong-ba-latency"
      ~early_bound:(fun ~f -> if f = 0 then 6 else horizon)

  let counters correct_states =
    let count f = List.length (List.filter f correct_states) in
    {
      Protocol.fallback_runs = count Strong_bool.fallback_entered;
      nonsilent_phases = count Strong_bool.decided_fast;
      help_requests = 0;
    }

  let spray = None
end

(* ---- run options ------------------------------------------------------- *)

type 'm options = {
  seed : int64;
  shuffle_seed : int64 option;
  record_trace : bool;
  monitors : 'm Monitor.t list option;
  profile : Profile.t option;
  faults : Faults.plan;
  scheduler : Engine.scheduler;
  shards : int;
  metrics : Mewc_obs.Metrics.t option;
}

let default_options =
  {
    seed = 1L;
    shuffle_seed = None;
    record_trace = false;
    monitors = None;
    profile = None;
    faults = Faults.none;
    scheduler = `Legacy;
    shards = 1;
    metrics = None;
  }

(* Spelled out field by field (not [{ o with monitors = None }]) so the
   result gets a fresh message-type parameter: ['m] only occurs in
   [monitors], which is the field being forgotten. *)
let retarget o =
  {
    seed = o.seed;
    shuffle_seed = o.shuffle_seed;
    record_trace = o.record_trace;
    monitors = None;
    profile = o.profile;
    faults = o.faults;
    scheduler = o.scheduler;
    shards = o.shards;
    metrics = o.metrics;
  }

(* ---- the generic runner ------------------------------------------------ *)

let run (type p s m d) ((module P) : (p, s, m, d) Protocol.t) ~cfg
    ?(options = default_options) ~params ~adversary () =
  let {
    seed;
    shuffle_seed;
    record_trace;
    monitors;
    profile;
    faults;
    scheduler;
    shards;
    metrics;
  } =
    options
  in
  P.validate_params ~cfg ~params;
  let n = cfg.Config.n in
  let pki, secrets = Pki.setup ~seed ~n () in
  (match profile with
  | None -> ()
  | Some p ->
    Pki.set_timer pki
      (Some
         { Pki.time = (fun name f -> Profile.span p ~category:Profile.Crypto name f) }));
  Pki.set_metrics pki metrics;
  let protocol pid = P.machine ~cfg ~pki ~secret:secrets.(pid) ~params ~pid in
  let adversary = adversary ~pki ~secrets in
  let horizon = P.horizon ~cfg ~params in
  let monitors =
    match monitors with
    | Some ms -> ms
    | None ->
      if Faults.is_none faults then P.monitors ~cfg ~params
      else
        (* Under injected faults only the model-independent safety core is
           promised: liveness envelopes (termination, latency) are read off
           [status] instead, and the word/cone bounds — Safety-severity, but
           calibrated against the realized f on a reliable network — would
           trip spuriously when loss legitimately changes spending at f=0. *)
        [ Monitor.corruption_budget ~cfg; Monitor.agreement (); Monitor.metering () ]
  in
  let res =
    replayable ~seed ~shuffle_seed (fun () ->
        Engine.run ~cfg
          ~options:
            {
              Engine.record_trace;
              shuffle_seed;
              monitors;
              decided = Some P.decided_str;
              profile;
              faults;
              scheduler;
              shards;
              metrics;
            }
          ~words:P.words ~horizon ~protocol ~adversary ())
  in
  let correct_states =
    Array.to_list res.Engine.states
    |> List.filteri (fun p _ -> not (List.mem p res.Engine.corrupted))
  in
  let undecided =
    Pid.all ~n
    |> List.filter (fun p ->
           (not (List.mem p res.Engine.corrupted))
           && (not (List.mem p res.Engine.faulty))
           && Option.is_none (P.decision res.Engine.states.(p)))
  in
  let { Protocol.fallback_runs; nonsilent_phases; help_requests } =
    P.counters correct_states
  in
  {
    decisions = Array.map P.decision res.Engine.states;
    decided_slots = Array.map P.decided_at res.Engine.states;
    decided_strs = Array.map P.decided_str res.Engine.states;
    corrupted = res.Engine.corrupted;
    f = res.Engine.f;
    faulty = res.Engine.faulty;
    status = (if undecided = [] then Decided else Undecided undecided);
    words = Meter.correct_words res.Engine.meter;
    messages = Meter.correct_messages res.Engine.meter;
    byz_words = Meter.byzantine_words res.Engine.meter;
    signatures = Pki.signatures_created pki;
    slots = res.Engine.slots;
    fallback_runs;
    nonsilent_phases;
    help_requests;
    latency =
      latency_of ~corrupted:res.Engine.corrupted ~faulty:res.Engine.faulty
        ~decided_at:P.decided_at res.Engine.states;
    meter = Meter.snapshot res.Engine.meter;
    crypto = Pki.cache_stats pki;
    trace_json =
      (if record_trace then
         let encode () = Trace.to_json ~encode:P.encode_msg res.Engine.trace in
         Some
           (match profile with
           | None -> encode ()
           | Some p ->
             Profile.span p ~category:Profile.Serialize "trace.to_json" encode)
       else None);
  }

(* ---- legacy entry points (thin wrappers over [run]) -------------------- *)

let run_fallback ~cfg ?options ?(round_len = 1) ?(start_slot = fun _ -> 0)
    ~inputs ~adversary () =
  run
    (module Fallback_protocol)
    ~cfg ?options
    ~params:{ Fallback_protocol.inputs; round_len; start_slot }
    ~adversary ()

let run_weak_ba ~cfg ?options ?(validate = fun _ -> true) ?quorum_override
    ~inputs ~adversary () =
  run
    (module Weak_ba_protocol)
    ~cfg ?options
    ~params:{ Weak_ba_protocol.inputs; validate; quorum_override }
    ~adversary ()

let run_bb ~cfg ?options ?(sender = 0) ~input ~adversary () =
  run
    (module Bb_protocol)
    ~cfg ?options
    ~params:{ Bb_protocol.sender; input }
    ~adversary ()

let run_binary_bb ~cfg ?options ?(sender = 0) ~input ~adversary () =
  run
    (module Binary_bb_protocol)
    ~cfg ?options
    ~params:{ Binary_bb_protocol.sender; input }
    ~adversary ()

let run_strong_ba ~cfg ?options ?(leader = 0) ~inputs ~adversary () =
  run
    (module Strong_ba_protocol)
    ~cfg ?options
    ~params:{ Strong_ba_protocol.leader; inputs }
    ~adversary ()
