(** Multi-shot Byzantine Broadcast: a replicated log.

    "BA is a key component in many distributed systems" (paper §1) — and the
    component is rarely used once. This module chains [length] adaptive-BB
    instances inside a single synchronous execution: instance [i] fills log
    slot [i] and its designated sender is the round-robin proposer
    [i mod n].

    {b Scheduling policy, not protocol.} Each inner BB instance is a
    self-contained [stride]-slot protocol; {e when} instance [i] starts is
    a local scheduling decision. Instance [i] starts at slot-time
    [i * offset] for a pipeline offset [1 <= offset <= stride]:

    - [offset = stride] (the default) is the sequential schedule — instance
      [i+1] starts only after [i]'s window has fully elapsed;
    - [offset < stride] pipelines: instance [i+1]'s early phases overlap
      instance [i]'s tail. Messages are routed per instance index, and an
      adaptive-BB instance reacts only to its own inbox and its own
      [start_slot]-relative clock, so the pipeline depth changes {e only}
      wall-slot scheduling — every replica's final log (and each entry's
      decision slot relative to its instance start) is byte-identical to
      the unpipelined oracle on the same seed. The invariant is enforced
      by the repeated-BB test suite.

    Every correct replica ends with the same log (each entry a committed
    value or ⊥ for slots whose Byzantine proposer was exposed), and the
    steady-state cost inherits the paper's adaptivity: O(n(f+1)) words per
    log slot — while a deep pipeline lands up to [stride / offset] log
    slots per protocol window. *)

type entry = Committed of string | Skipped

val equal_entry : entry -> entry -> bool
val pp_entry : Format.formatter -> entry -> unit

type msg
type state

val words : msg -> int
val pp_msg : Format.formatter -> msg -> unit

val stride : Mewc_sim.Config.t -> int
(** Slots each inner BB instance needs to terminate
    ({!Adaptive_bb.horizon}); the upper bound on useful pipeline offsets. *)

val init :
  cfg:Mewc_sim.Config.t ->
  pki:Mewc_crypto.Pki.t ->
  secret:Mewc_crypto.Pki.Secret.t ->
  pid:Mewc_prelude.Pid.t ->
  length:int ->
  ?offset:int ->
  propose:(int -> string) ->
  unit ->
  state
(** [propose i] is the command this process broadcasts if it is the
    proposer of slot [i] (ignored otherwise). [offset] is the pipeline
    offset (default [stride cfg], i.e. unpipelined); raises
    [Invalid_argument] unless [1 <= offset <= stride cfg]. *)

val step :
  slot:int ->
  inbox:msg Mewc_sim.Envelope.t list ->
  state ->
  state * (msg * Mewc_prelude.Pid.t) list

val log : state -> entry option array
(** The replica's view of the log; [None] for slots still undecided. *)

val decided_slots : state -> int option array
(** Per log slot, the engine slot at which this replica's instance
    decided ({!Adaptive_bb.decided_at}); [None] while undecided. Under
    pipelining these land earlier in wall-slots, which is exactly the
    throughput win the service layer measures. *)

val horizon : ?offset:int -> Mewc_sim.Config.t -> length:int -> int
(** Slots a [length]-entry log needs under the given pipeline offset:
    [(length - 1) * offset + stride cfg] — the last instance starts at
    [(length - 1) * offset] and needs a full stride. With the default
    [offset = stride] this is the sequential [length * stride cfg]. *)

type outcome = {
  logs : entry option array array;  (** per process *)
  decided_slots : int option array array;
      (** per process, per log slot: decision wall-slot *)
  corrupted : Mewc_prelude.Pid.t list;
  faulty : Mewc_prelude.Pid.t list;
      (** processes hit by an injected {!Mewc_sim.Faults.process_fault};
          empty on a reliable run *)
  f : int;
  words : int;
  slots : int;  (** horizon actually executed *)
  words_per_slot : float;  (** words per {e log} slot, the paper's metric *)
}

val run :
  cfg:Mewc_sim.Config.t ->
  ?seed:int64 ->
  ?offset:int ->
  ?options:(state, msg) Mewc_sim.Engine.options ->
  length:int ->
  propose:(Mewc_prelude.Pid.t -> int -> string) ->
  adversary:(state, msg) Mewc_sim.Adversary.factory ->
  unit ->
  outcome
(** One trusted setup ({!Mewc_crypto.Pki.setup} from [seed]), then the
    whole log inside a single engine execution of
    [horizon ?offset cfg ~length] slots. [options] exposes the engine's
    knobs (fault plans, scheduler, shards, trace) — the repeated run is
    observationally invariant under scheduler and shard choice like any
    other protocol here. *)
