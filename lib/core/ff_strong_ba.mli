(** Binary strong Byzantine Agreement, linear in the failure-free case — the
    paper's Algorithm 5 (§7).

    The first optimally-resilient ([n = 2t + 1]) strong BA with O(n)
    communication when f = 0 (and O(n²) otherwise — the open question of a
    fully adaptive strong BA is exactly what the paper leaves open).

    {2 Structure}

    A fixed leader collects all signed binary inputs; because values are
    binary and [n = 2t + 1], some value has [t + 1] signatures in a
    failure-free run, so the leader can batch a propose certificate
    (Lemma 8). It then collects {e all n} signatures on that value into a
    decide certificate; a process receiving the signed-by-all certificate
    decides immediately. Any process that has not decided by round 5
    broadcasts a fallback notice; everyone who hears one echoes it once and
    enters [A_fallback] after a 2δ safety window with δ' = 2δ rounds,
    adopting any certified decision learned during the window — so
    fallback-decided and fast-decided processes agree (Lemma 26). *)

module Make (F : Fallback_intf.FALLBACK with type value = bool) : sig
  (** Public wire format (see {!Weak_ba.Make} on why). *)
  type msg =
    | Input of { value : bool; share : Mewc_crypto.Pki.Sig.t }
    | Propose of { value : bool; qc : Mewc_crypto.Certificate.t }
    | Decide_share of { value : bool; share : Mewc_crypto.Pki.Sig.t }
    | Decide of { value : bool; qc : Mewc_crypto.Certificate.t }
    | Fallback of { decision : (bool * Mewc_crypto.Certificate.t) option }
    | Fb of F.msg

  type state

  val propose_purpose : string
  val decide_purpose : string

  val words : msg -> int
  val pp_msg : Format.formatter -> msg -> unit

  val init :
    cfg:Mewc_sim.Config.t ->
    pki:Mewc_crypto.Pki.t ->
    secret:Mewc_crypto.Pki.Secret.t ->
    pid:Mewc_prelude.Pid.t ->
    leader:Mewc_prelude.Pid.t ->
    input:bool ->
    start_slot:int ->
    state

  val step :
    slot:int ->
    inbox:msg Mewc_sim.Envelope.t list ->
    state ->
    state * (msg * Mewc_prelude.Pid.t) list

  val wake : slot:int -> state -> bool
  (** The {!Mewc_sim.Process.t} wake timer (input round, the adopt-or-
      fallback branch, the scheduled or live fallback). *)

  val decision : state -> bool option

  val decided_at : state -> int option
  (** Slot at which the decision was reached (latency metric). *)

  val horizon : Mewc_sim.Config.t -> int

  (** {2 Introspection} *)

  val decided_fast : state -> bool
  (** Decided from the signed-by-all certificate, without the fallback. *)

  val fallback_entered : state -> bool
end
