(** Adaptive weak Byzantine Agreement — the paper's Algorithms 3 and 4 (§6).

    Weak BA satisfies agreement, termination and {e unique validity}
    ({!Validity}) with resilience [n = 2t + 1] and adaptive communication
    complexity O(n(f+1)) words — quadratic only in runs with f = Θ(n)
    failures, where the quadratic fallback is invoked.

    {2 Structure (paper §6)}

    [t + 1] leader-based phases (Algorithm 4), each five rounds:
    propose → vote/forward-commit → commit-certificate → decide →
    finalize-certificate. A leader that has already decided keeps its phase
    {e silent}, which is what makes the protocol adaptive: after the first
    completed correct-leader phase every later correct leader is silent, so
    at most f + 1 phases are non-silent.

    The key quorum is ⌈(n+t+1)/2⌉ ({!Mewc_sim.Config.big_quorum}): two such
    quorums always intersect in a correct process, preserving safety for any
    f, while failing to assemble only when f ≥ (n−t−1)/2 — i.e. when f is
    already Θ(t) and a quadratic fallback is affordable.

    After the phases: undecided processes broadcast help requests; decided
    processes answer them directly. If [t + 1] help requests accumulate —
    proof that f ≥ (n−t−1)/2 — a fallback certificate is formed and
    broadcast, and everyone enters [A_fallback] after a 2δ safety window
    with δ' = 2δ rounds (Lemmas 17–18), using as input any decided value
    learned during the window (Lemma 19).

    {2 Deviations from the pseudocode, and why}

    - Fallback certificates are accepted during a fixed post-help window
      rather than forever: the paper's processes never halt, whereas a run
      here has a static horizon. A certificate surfacing after the window
      can only exist in runs where every correct process has already
      decided (if any correct process was still undecided after the help
      round, either it was helped within the window, or no correct process
      had decided and then all correct processes formed the certificate
      themselves inside the window) — so ignoring it affects nothing.
      Tests exercise exactly this adversarial schedule. *)

module Make (V : Mewc_sim.Value.S) (F : Fallback_intf.FALLBACK with type value = V.t) : sig
  (** The wire format is deliberately public: Byzantine test strategies (and
      downstream users writing their own) forge arbitrary messages with it —
      everything unforgeable lives inside the signatures and certificates,
      not in the constructors. *)
  type msg =
    | Propose of { phase : int; value : V.t; sg : Mewc_crypto.Pki.Sig.t }
    | Vote of { phase : int; value : V.t; share : Mewc_crypto.Pki.Sig.t }
    | Commit_answer of {
        phase : int;
        value : V.t;
        level : int;
        qc : Mewc_crypto.Certificate.t;
      }
    | Commit_bcast of {
        phase : int;
        value : V.t;
        level : int;
        qc : Mewc_crypto.Certificate.t;
      }
    | Decide_share of { phase : int; value : V.t; share : Mewc_crypto.Pki.Sig.t }
    | Finalized of { phase : int; value : V.t; qc : Mewc_crypto.Certificate.t }
    | Help_req of { sg : Mewc_crypto.Pki.Sig.t }
    | Help of { phase : int; value : V.t; qc : Mewc_crypto.Certificate.t }
    | Fallback_cert of {
        qc : Mewc_crypto.Certificate.t;
        decision : (int * V.t * Mewc_crypto.Certificate.t) option;
      }
    | Fb of F.msg

  type state

  (** {2 Certificate purposes (for forging shares in tests)} *)

  val propose_purpose : string
  val commit_purpose : string
  val finalize_purpose : string
  val helpreq_purpose : string

  val phased_payload : int -> V.t -> string
  (** The payload string that phase-[j] shares sign for a value. *)

  (** {2 Slot layout (relative to [start_slot])} *)

  val base : int -> int
  (** First slot of phase [j] (the leader's propose round). *)

  val help_base : Mewc_sim.Config.t -> int
  (** Slot of the help-request round, right after the last phase. *)

  val fb_window_end : Mewc_sim.Config.t -> int
  (** Last slot at which fallback certificates are honoured. *)

  type outcome =
    | Value of V.t
    | Bot  (** the ⊥ default of unique validity *)

  val words : msg -> int
  val pp_msg : Format.formatter -> msg -> unit
  val pp_outcome : Format.formatter -> outcome -> unit
  val equal_outcome : outcome -> outcome -> bool

  val init :
    ?quorum_override:int ->
    cfg:Mewc_sim.Config.t ->
    pki:Mewc_crypto.Pki.t ->
    secret:Mewc_crypto.Pki.Secret.t ->
    pid:Mewc_prelude.Pid.t ->
    input:V.t ->
    validate:(V.t -> bool) ->
    start_slot:int ->
    unit ->
    state
  (** Precondition (paper §5/§6): every correct process's [input] satisfies
      [validate].

      [quorum_override] replaces the ⌈(n+t+1)/2⌉ commit/finalize quorum —
      {b it exists only for the quorum ablation} (experiment ABL-QUORUM),
      which shows that running with the naive [t + 1] quorum lets a
      Byzantine leader forge two conflicting finalize certificates and
      break agreement, exactly the failure mode §6 designs around. Never
      set it in real use. *)

  val step :
    slot:int ->
    inbox:msg Mewc_sim.Envelope.t list ->
    state ->
    state * (msg * Mewc_prelude.Pid.t) list

  val wake : slot:int -> state -> bool
  (** The {!Mewc_sim.Process.t} wake timer: [true] exactly on the slots
      where an empty-inbox step could still act (phase-leader proposals,
      the help window, the scheduled or live fallback). *)

  val decision : state -> outcome option
  (** [None] until the process decides; decided values never change. *)

  val decided_at : state -> int option
  (** Slot at which the decision was reached (latency metric). *)

  val horizon : Mewc_sim.Config.t -> int
  (** Slots from [start_slot] after which every correct process has
      decided. *)

  (** {2 Introspection (experiments and tests)} *)

  val initiated_phase : state -> bool
  (** Did this process run a non-silent phase as leader? *)

  val sent_help_request : state -> bool
  val fallback_entered : state -> bool
  val commit_level : state -> int
  val decided_in_phase : state -> int option
  (** Phase whose finalize certificate this process decided on, if the
      decision came from the phases part. *)
end
