open Mewc_prelude
open Mewc_sim

type policy = { max_requests : int; max_words : int; max_age : int }

let default_policy = { max_requests = 8; max_words = 64; max_age = 4 }

let validate_policy { max_requests; max_words; max_age } =
  if max_requests < 1 || max_words < 1 || max_age < 1 then
    invalid_arg "Service: batch caps must all be >= 1"

type t = {
  cfg : Config.t;
  policy : policy;
  offset : int;
  mutable queue : Workload.request list;  (* reversed *)
  mutable next_ticket : int;
  mutable last_arrival : int;
  mutable finalized : bool;
}

let create ~cfg ?(policy = default_policy) ?offset () =
  validate_policy policy;
  let stride = Repeated_bb.stride cfg in
  let offset =
    match offset with
    | None -> stride
    | Some o ->
      if o < 1 || o > stride then
        invalid_arg
          (Printf.sprintf "Service: offset must be in [1, %d], got %d" stride o);
      o
  in
  {
    cfg;
    policy;
    offset;
    queue = [];
    next_ticket = 0;
    last_arrival = 0;
    finalized = false;
  }

let submit t ~arrival ~size =
  if t.finalized then failwith "Service.submit: already finalized";
  if size < 1 then invalid_arg "Service.submit: size must be >= 1";
  if arrival < t.last_arrival then
    invalid_arg "Service.submit: arrivals must be non-decreasing";
  let ticket = t.next_ticket in
  t.queue <- { Workload.id = ticket; arrival; size } :: t.queue;
  t.next_ticket <- ticket + 1;
  t.last_arrival <- arrival;
  ticket

let submit_workload t reqs =
  List.iter
    (fun r -> ignore (submit t ~arrival:r.Workload.arrival ~size:r.Workload.size))
    reqs

type disposition =
  | Committed of { index : int; decided_slot : int; latency : int }
  | Skipped of { index : int }
  | Undecided of { index : int }
  | Unassigned

let pp_disposition fmt = function
  | Committed { index; decided_slot; latency } ->
    Format.fprintf fmt "committed(slot %d @ %d, lat %d)" index decided_slot
      latency
  | Skipped { index } -> Format.fprintf fmt "skipped(slot %d)" index
  | Undecided { index } -> Format.fprintf fmt "undecided(slot %d)" index
  | Unassigned -> Format.pp_print_string fmt "unassigned"

(* Greedy packing in arrival order: close the open batch when the next
   request would bust a cap. Pure in the submitted stream — the pipeline
   schedule never reaches here. *)
let pack ~(policy : policy) reqs =
  let rec go cur cur_n cur_w first acc = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | r :: rest ->
      if cur = [] then go [ r ] 1 r.Workload.size r.Workload.arrival acc rest
      else if
        cur_n >= policy.max_requests
        || cur_w + r.Workload.size > policy.max_words
        || r.Workload.arrival - first > policy.max_age
      then go [ r ] 1 r.Workload.size r.Workload.arrival (List.rev cur :: acc) rest
      else go (r :: cur) (cur_n + 1) (cur_w + r.Workload.size) first acc rest
  in
  go [] 0 0 0 [] reqs

let encode_batch index batch =
  Printf.sprintf "b%d:%s" index
    (String.concat "," (List.map (fun r -> string_of_int r.Workload.id) batch))

type report = {
  length : int;
  offset : int;
  slots : int;
  f : int;
  words : int;
  requests : int;
  committed : int;
  skipped : int;
  undecided : int;
  unassigned : int;
  decided_batches : int;
  batch_fill : float;
  words_per_decision : float;
  decisions_per_1k_slots : float;
  p50_latency : int;
  p99_latency : int;
  dispositions : disposition array;
  log : Repeated_bb.entry option array;
}

(* The repo-wide nearest-rank definition; byte-identical to the formula
   this module used to carry, so recorded BENCH_throughput numbers and the
   throughput smoke gate are unaffected by the unification. *)
let percentile = Mewc_obs.Metrics.nearest_rank

let finalize t ~seed ?max_instances ?options ~adversary () =
  if t.finalized then failwith "Service.finalize: already finalized";
  t.finalized <- true;
  let reqs = List.rev t.queue in
  let all_batches = pack ~policy:t.policy reqs in
  let proposed, overflow =
    match max_instances with
    | None -> (all_batches, [])
    | Some cap ->
      if cap < 1 then invalid_arg "Service.finalize: max_instances must be >= 1";
      let rec split i acc = function
        | rest when i = cap -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | b :: rest -> split (i + 1) (b :: acc) rest
      in
      split 0 [] all_batches
  in
  (* An empty service still runs one (empty) log slot, so the report's
     engine facts are never vacuous. *)
  let proposed = if proposed = [] then [ [] ] else proposed in
  let batches = Array.of_list proposed in
  let length = Array.length batches in
  let values = Array.mapi encode_batch batches in
  let o =
    Repeated_bb.run ~cfg:t.cfg ~seed ~offset:t.offset ?options ~length
      ~propose:(fun _pid i -> values.(i))
      ~adversary ()
  in
  let n = t.cfg.Config.n in
  (* replication counts the replicas that *can* decide: corrupted ones are
     the adversary's, fault-injected ones (e.g. an SLO sweep's crashes)
     are dead — a commit is "landed" when the last of the rest decides,
     the same "correct non-faulted" convention the degradation harness
     classifies by. *)
  let correct =
    List.filter
      (fun p ->
        (not (List.mem p o.Repeated_bb.corrupted))
        && not (List.mem p o.Repeated_bb.faulty))
      (List.init n Fun.id)
  in
  let agreed index =
    match correct with
    | [] -> None
    | p :: _ -> o.Repeated_bb.logs.(p).(index)
  in
  (* the landing slot: when the *last* correct replica decided — the point
     the commit is fully replicated. *)
  let landed index =
    List.fold_left
      (fun acc p ->
        match (acc, o.Repeated_bb.decided_slots.(p).(index)) with
        | Some a, Some b -> Some (max a b)
        | _, None | None, _ -> None)
      (match correct with [] -> None | _ -> Some 0)
      correct
  in
  let dispositions = Array.make (List.length reqs) Unassigned in
  let committed = ref 0 and skipped = ref 0 and undecided = ref 0 in
  let decided_batches = ref 0 in
  let latencies = ref [] in
  Array.iteri
    (fun index batch ->
      let dispose =
        match (agreed index, landed index) with
        | Some (Repeated_bb.Committed _), Some slot ->
          incr decided_batches;
          fun (r : Workload.request) ->
            incr committed;
            let latency = max 0 (slot - r.Workload.arrival) in
            latencies := latency :: !latencies;
            Committed { index; decided_slot = slot; latency }
        | Some Repeated_bb.Skipped, _ ->
          incr decided_batches;
          fun _ ->
            incr skipped;
            Skipped { index }
        | Some (Repeated_bb.Committed _), None | None, _ ->
          fun _ ->
            incr undecided;
            Undecided { index }
      in
      List.iter (fun r -> dispositions.(r.Workload.id) <- dispose r) batch)
    batches;
  ignore overflow (* already Unassigned by default *);
  let requests = List.length reqs in
  let unassigned = requests - !committed - !skipped - !undecided in
  let sorted_latencies =
    let a = Array.of_list !latencies in
    Array.sort compare a;
    a
  in
  let fl = float_of_int in
  let batch_fill =
    fl (Array.fold_left (fun acc b -> acc + List.length b) 0 batches)
    /. fl (length * t.policy.max_requests)
  in
  {
    length;
    offset = t.offset;
    slots = o.Repeated_bb.slots;
    f = o.Repeated_bb.f;
    words = o.Repeated_bb.words;
    requests;
    committed = !committed;
    skipped = !skipped;
    undecided = !undecided;
    unassigned;
    decided_batches = !decided_batches;
    batch_fill;
    words_per_decision =
      (if !decided_batches = 0 then 0.0
       else fl o.Repeated_bb.words /. fl !decided_batches);
    decisions_per_1k_slots =
      (if o.Repeated_bb.slots = 0 then 0.0
       else 1000.0 *. fl !decided_batches /. fl o.Repeated_bb.slots);
    p50_latency = percentile 50.0 sorted_latencies;
    p99_latency = percentile 99.0 sorted_latencies;
    dispositions;
    log = (match correct with [] -> [||] | p :: _ -> o.Repeated_bb.logs.(p));
  }
  |> fun report ->
  (* Service-level telemetry rides the same registry the engine already
     wrote into during the run; recorded after the fact, so counts are the
     report's own deterministic numbers. *)
  (match Option.bind options (fun o -> o.Engine.metrics) with
  | None -> ()
  | Some reg ->
    let open Mewc_obs.Metrics in
    add (counter reg "service.requests") report.requests;
    add (counter reg "service.committed") report.committed;
    let latency_h = histogram reg "service.latency" in
    Array.iter (observe latency_h) sorted_latencies);
  report

let claim report ticket =
  if ticket < 0 || ticket >= Array.length report.dispositions then
    invalid_arg (Printf.sprintf "Service.claim: unknown ticket %d" ticket);
  report.dispositions.(ticket)

let report_to_json r =
  Jsonx.Obj
    [
      ("length", Jsonx.Int r.length);
      ("offset", Jsonx.Int r.offset);
      ("slots", Jsonx.Int r.slots);
      ("f", Jsonx.Int r.f);
      ("words", Jsonx.Int r.words);
      ("requests", Jsonx.Int r.requests);
      ("committed", Jsonx.Int r.committed);
      ("skipped", Jsonx.Int r.skipped);
      ("undecided", Jsonx.Int r.undecided);
      ("unassigned", Jsonx.Int r.unassigned);
      ("decided_batches", Jsonx.Int r.decided_batches);
      ("batch_fill", Jsonx.Float r.batch_fill);
      ("words_per_decision", Jsonx.Float r.words_per_decision);
      ("decisions_per_1k_slots", Jsonx.Float r.decisions_per_1k_slots);
      ("p50_latency", Jsonx.Int r.p50_latency);
      ("p99_latency", Jsonx.Int r.p99_latency);
    ]
