(** Binary Byzantine Broadcast via the paper's §5 reduction, instantiated
    with the §7 strong BA.

    "There is a simple reduction from BB to BA with the strong unanimity
    validity property: the designated sender starts by sending its value to
    all processes, and then they all execute the BA solution and decide on
    its output" (§5). For {e binary} values the strong-unanimity BA can be
    Algorithm 5, giving a binary BB with O(n) words in failure-free runs —
    a corollary the paper leaves implicit, reproduced here both as a usable
    protocol and as the Figure-1 edge "BB → strong BA".

    If the sender is correct, all correct processes enter the BA with the
    sender's bit and strong unanimity forces it. If the sender is silent or
    equivocates, receivers enter with their local default (the bit they
    received, or [false]); agreement still holds by the BA. *)

module Make (F : Fallback_intf.FALLBACK with type value = bool) : sig
  module Ba : module type of Ff_strong_ba.Make (F)

  type msg =
    | Send of { value : bool; sg : Mewc_crypto.Pki.Sig.t }
    | Ba of Ba.msg

  type state

  val words : msg -> int
  val pp_msg : Format.formatter -> msg -> unit

  val init :
    cfg:Mewc_sim.Config.t ->
    pki:Mewc_crypto.Pki.t ->
    secret:Mewc_crypto.Pki.Secret.t ->
    pid:Mewc_prelude.Pid.t ->
    sender:Mewc_prelude.Pid.t ->
    input:bool option ->
    start_slot:int ->
    state

  val step :
    slot:int ->
    inbox:msg Mewc_sim.Envelope.t list ->
    state ->
    state * (msg * Mewc_prelude.Pid.t) list

  val wake : slot:int -> state -> bool
  (** The {!Mewc_sim.Process.t} wake timer (sender dissemination, embedded
      BA init, then the embedded BA's own timer). *)

  val decision : state -> bool option
  val decided_at : state -> int option
  val decided_fast : state -> bool
  val horizon : Mewc_sim.Config.t -> int
end
