open Mewc_prelude
open Mewc_crypto
open Mewc_sim

module Make (F : Fallback_intf.FALLBACK with type value = bool) = struct
  module Ba = Ff_strong_ba.Make (F)

  let sender_purpose = "bbb-val"

  type msg = Send of { value : bool; sg : Pki.Sig.t } | Ba of Ba.msg

  let words = function Send _ -> 2 | Ba m -> Ba.words m

  let pp_msg fmt = function
    | Send { value; _ } -> Format.fprintf fmt "send(%b)" value
    | Ba m -> Format.fprintf fmt "ba:%a" Ba.pp_msg m

  type state = {
    cfg : Config.t;
    pki : Pki.t;
    secret : Pki.Secret.t;
    pid : Pid.t;
    sender : Pid.t;
    input : bool option;
    start_slot : int;
    mutable received : bool option;
    mutable ba : Ba.state option;
    mutable pending : Ba.msg Envelope.t list;
  }

  let ba_start = 2
  let horizon cfg = ba_start + Ba.horizon cfg

  let init ~cfg ~pki ~secret ~pid ~sender ~input ~start_slot =
    Composition.note ~user:"binary Byzantine Broadcast (§5 reduction)"
      ~uses:"strong BA (failure-free linear)";
    {
      cfg;
      pki;
      secret;
      pid;
      sender;
      input;
      start_slot;
      received = None;
      ba = None;
      pending = [];
    }

  let decision st = Option.bind st.ba Ba.decision
  let decided_at st = Option.bind st.ba Ba.decided_at
  let decided_fast st = match st.ba with Some ba -> Ba.decided_fast ba | None -> false

  (* Inbox-free actions: the sender's dissemination at slot 0, the
     unconditional embedded-BA init at [ba_start], then whatever the
     embedded BA's own timer wants. A process whose [ba] never initialized
     (it was down at [ba_start]) stays inert forever — under both
     schedulers. *)
  let wake ~slot st =
    let rel = slot - st.start_slot in
    (rel = 0 && Pid.equal st.pid st.sender)
    || rel = ba_start
    || rel > ba_start
       && (match st.ba with Some ba -> Ba.wake ~slot ba | None -> false)

  let step ~slot ~inbox st =
    let rel = slot - st.start_slot in
    if rel < 0 then (st, [])
    else begin
      List.iter
        (fun env ->
          match env.Envelope.msg with
          | Send { value; sg } ->
            if
              rel = 1
              && Pid.equal env.Envelope.src st.sender
              && Pki.verify st.pki sg
                   ~msg:
                     (Certificate.signed_message ~purpose:sender_purpose
                        ~payload:(Value.Bool.encode value))
              && st.received = None
            then st.received <- Some value
          | Ba inner -> st.pending <- { env with Envelope.msg = inner } :: st.pending)
        inbox;
      let sends =
        if rel = 0 then begin
          match (Pid.equal st.pid st.sender, st.input) with
          | true, Some v ->
            st.received <- Some v;
            let sg =
              Pki.sign st.pki st.secret
                (Certificate.signed_message ~purpose:sender_purpose
                   ~payload:(Value.Bool.encode v))
            in
            Process.broadcast ~n:st.cfg.Config.n (Send { value = v; sg })
          | true, None -> invalid_arg "Binary_bb: sender needs an input"
          | false, _ -> []
        end
        else if rel >= ba_start then begin
          if rel = ba_start && st.ba = None then
            st.ba <-
              Some
                (Ba.init ~cfg:st.cfg ~pki:st.pki ~secret:st.secret ~pid:st.pid
                   ~leader:st.sender
                   ~input:(Option.value ~default:false st.received)
                   ~start_slot:(st.start_slot + ba_start));
          match st.ba with
          | None -> []
          | Some ba ->
            let inbox = List.rev st.pending in
            st.pending <- [];
            let ba', sends = Ba.step ~slot ~inbox ba in
            st.ba <- Some ba';
            List.map (fun (m, dst) -> (Ba m, dst)) sends
        end
        else []
      in
      (st, sends)
    end
end
