open Mewc_prelude

let schema = "mewc-ledger/1"

type entry = {
  rev : string;
  date : string;
  grid : string;
  scheduler : string;
  jobs : int;
  cores : int;
  sequential_s : float;
  parallel_s : float;
  speedup : float;
  shards : (int * float) list;
  parallelism : string;
  rollup : (string * float) list;
  rows : Sweep.row list;
}

let of_report ~rev ~date ~grid ?profile (r : Sweep.report) =
  {
    rev;
    date;
    grid;
    scheduler = Mewc_sim.Engine.scheduler_to_string r.Sweep.scheduler;
    jobs = r.Sweep.jobs;
    cores = r.Sweep.cores;
    sequential_s = r.Sweep.sequential_s;
    parallel_s = r.Sweep.parallel_s;
    speedup = r.Sweep.speedup;
    shards = r.Sweep.shard_wall_s;
    parallelism = r.Sweep.parallelism;
    rollup =
      (match profile with
      | None -> []
      | Some p ->
        List.map
          (fun (c, s) -> (Mewc_sim.Profile.category_name c, s))
          (Mewc_sim.Profile.rollup p));
    rows = r.Sweep.rows;
  }

(* A scheduler-ratio baseline entry: one sequential pass, no across-points
   parallelism and no shard curve, so the parallel fields collapse to the
   sequential ones. [mewc report] pairs the latest "ratio" entry per
   scheduler and divides per-point wall clocks. *)
let of_baseline ~rev ~date ~scheduler ~wall_s rows =
  {
    rev;
    date;
    grid = "ratio";
    scheduler = Mewc_sim.Engine.scheduler_to_string scheduler;
    jobs = 1;
    cores = Pool.default_jobs ();
    sequential_s = wall_s;
    parallel_s = wall_s;
    speedup = 1.0;
    shards = [];
    parallelism = "sequential baseline";
    rollup = [];
    rows;
  }

let entry_to_json e =
  Jsonx.Obj
    [
      ("rev", Jsonx.Str e.rev);
      ("date", Jsonx.Str e.date);
      ("grid", Jsonx.Str e.grid);
      ("scheduler", Jsonx.Str e.scheduler);
      ("jobs", Jsonx.Int e.jobs);
      ("cores", Jsonx.Int e.cores);
      ("sequential_wall_s", Jsonx.Float e.sequential_s);
      ("parallel_wall_s", Jsonx.Float e.parallel_s);
      ("speedup", Jsonx.Float e.speedup);
      ( "shards",
        Jsonx.Arr
          (List.map
             (fun (shards, wall) ->
               Jsonx.Obj
                 [ ("shards", Jsonx.Int shards); ("wall_s", Jsonx.Float wall) ])
             e.shards) );
      ("parallelism", Jsonx.Str e.parallelism);
      ( "rollup",
        Jsonx.Obj (List.map (fun (c, s) -> (c, Jsonx.Float s)) e.rollup) );
      ("rows", Jsonx.Arr (List.map Sweep.row_to_json e.rows));
    ]

let ( let* ) = Result.bind

let get_float = function
  | Jsonx.Float f -> Some f
  | Jsonx.Int i -> Some (float_of_int i)
  | _ -> None

let entry_of_json j =
  let field name get =
    match Option.bind (Jsonx.member name j) get with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "Ledger.entry_of_json: bad or missing %S" name)
  in
  let* rev = field "rev" Jsonx.get_str in
  let* date = field "date" Jsonx.get_str in
  let* grid = field "grid" Jsonx.get_str in
  let* jobs = field "jobs" Jsonx.get_int in
  let* cores = field "cores" Jsonx.get_int in
  let* sequential_s = field "sequential_wall_s" get_float in
  let* parallel_s = field "parallel_wall_s" get_float in
  let* speedup = field "speedup" get_float in
  (* Both shard-era fields are optional so pre-shard ledger files (same
     mewc-ledger/1 schema) keep parsing. *)
  let* shards =
    match Jsonx.member "shards" j with
    | None -> Ok []
    | Some (Jsonx.Arr cells) ->
      List.fold_left
        (fun acc cell ->
          let* acc = acc in
          match
            ( Option.bind (Jsonx.member "shards" cell) Jsonx.get_int,
              Option.bind (Jsonx.member "wall_s" cell) get_float )
          with
          | Some s, Some w -> Ok ((s, w) :: acc)
          | _ -> Error "Ledger.entry_of_json: bad shards cell")
        (Ok []) cells
      |> Result.map List.rev
    | Some _ -> Error "Ledger.entry_of_json: shards is not an array"
  in
  let parallelism =
    Option.value
      (Option.bind (Jsonx.member "parallelism" j) Jsonx.get_str)
      ~default:"unknown"
  in
  (* Optional like the other late-era fields: pre-scheduler ledger files
     (all written by the legacy engine) keep parsing. *)
  let scheduler =
    Option.value
      (Option.bind (Jsonx.member "scheduler" j) Jsonx.get_str)
      ~default:"legacy"
  in
  let* rollup =
    match Jsonx.member "rollup" j with
    | Some (Jsonx.Obj fields) ->
      List.fold_left
        (fun acc (c, v) ->
          let* acc = acc in
          match get_float v with
          | Some s -> Ok ((c, s) :: acc)
          | None -> Error (Printf.sprintf "Ledger.entry_of_json: bad rollup %S" c))
        (Ok []) fields
      |> Result.map List.rev
    | Some _ -> Error "Ledger.entry_of_json: rollup is not an object"
    | None -> Ok []
  in
  let* rows =
    match Option.bind (Jsonx.member "rows" j) Jsonx.get_list with
    | None -> Error "Ledger.entry_of_json: bad or missing \"rows\""
    | Some rs ->
      List.fold_left
        (fun acc r ->
          let* acc = acc in
          let* row = Sweep.row_of_json r in
          Ok (row :: acc))
        (Ok []) rs
      |> Result.map List.rev
  in
  Ok
    {
      rev;
      date;
      grid;
      scheduler;
      jobs;
      cores;
      sequential_s;
      parallel_s;
      speedup;
      shards;
      parallelism;
      rollup;
      rows;
    }

let to_json entries =
  Jsonx.Schema.tag schema [ ("entries", Jsonx.Arr (List.map entry_to_json entries)) ]

let of_json j =
  let* () = Jsonx.Schema.check schema j in
  match Option.bind (Jsonx.member "entries" j) Jsonx.get_list with
  | None -> Error "Ledger.of_json: bad or missing \"entries\""
  | Some es ->
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        let* entry = entry_of_json e in
        Ok (entry :: acc))
      (Ok []) es
    |> Result.map List.rev

let load path =
  if not (Sys.file_exists path) then Ok []
  else begin
    let contents =
      In_channel.with_open_bin path In_channel.input_all
    in
    let* j =
      Result.map_error (fun e -> Printf.sprintf "%s: %s" path e) (Jsonx.parse contents)
    in
    Result.map_error (fun e -> Printf.sprintf "%s: %s" path e) (of_json j)
  end

let save path entries =
  (* Write-then-rename so a crash mid-write never truncates the history. *)
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc (Jsonx.to_string (to_json entries));
      Out_channel.output_char oc '\n');
  Sys.rename tmp path

let append path entry =
  let* entries = load path in
  save path (entries @ [ entry ]);
  Ok (List.length entries + 1)

(* Entry selection for the CLI: an integer index (negative counts from the
   end, Python-style) or a unique git-rev prefix. *)
let find entries selector =
  let n = List.length entries in
  match int_of_string_opt selector with
  | Some i ->
    let i = if i < 0 then n + i else i in
    if i >= 0 && i < n then Ok (List.nth entries i)
    else Error (Printf.sprintf "ledger index %s out of range (%d entries)" selector n)
  | None -> (
    let matches =
      List.filter
        (fun e -> String.starts_with ~prefix:selector e.rev)
        entries
    in
    match matches with
    | [ e ] -> Ok e
    | [] -> Error (Printf.sprintf "no ledger entry with rev prefix %S" selector)
    | _ :: _ ->
      Error
        (Printf.sprintf "rev prefix %S is ambiguous (%d matches)" selector
           (List.length matches)))

(* ---- diffing ----------------------------------------------------------- *)

type delta = {
  point : Sweep.point;
  words_a : int;
  words_b : int;
  words_ratio : float;
  signatures_a : int;
  signatures_b : int;
  regressed : bool;
}

type diff = {
  threshold : float;
  matched : delta list;
  only_a : Sweep.point list;
  only_b : Sweep.point list;
  wall_a : float;
  wall_b : float;
  wall_ratio : float;
  wall_regressed : bool;
  regressions : int;  (** word regressions + wall regression, if any *)
}

let default_threshold = 0.25

let point_equal (a : Sweep.point) (b : Sweep.point) =
  String.equal a.Sweep.protocol b.Sweep.protocol
  && a.Sweep.n = b.Sweep.n
  && String.equal a.Sweep.f_spec b.Sweep.f_spec

let ratio ~a ~b =
  if a = 0 then if b = 0 then 1.0 else infinity
  else float_of_int b /. float_of_int a

let diff ?(threshold = default_threshold) a b =
  let find_in rows p =
    List.find_opt (fun (r : Sweep.row) -> point_equal r.Sweep.point p) rows
  in
  let matched =
    List.filter_map
      (fun (ra : Sweep.row) ->
        Option.map
          (fun (rb : Sweep.row) ->
            let words_ratio = ratio ~a:ra.Sweep.words ~b:rb.Sweep.words in
            {
              point = ra.Sweep.point;
              words_a = ra.Sweep.words;
              words_b = rb.Sweep.words;
              words_ratio;
              signatures_a = ra.Sweep.signatures;
              signatures_b = rb.Sweep.signatures;
              (* Word counts are deterministic, so the threshold is not
                 noise headroom: it separates intended protocol changes
                 from the accidental blow-ups the ledger exists to catch. *)
              regressed = words_ratio > 1.0 +. threshold;
            })
          (find_in b.rows ra.Sweep.point))
      a.rows
  in
  let only side other =
    List.filter_map
      (fun (r : Sweep.row) ->
        if find_in other r.Sweep.point = None then Some r.Sweep.point else None)
      side
  in
  let wall_ratio =
    if a.sequential_s > 0.0 then b.sequential_s /. a.sequential_s else 1.0
  in
  let wall_regressed = wall_ratio > 1.0 +. threshold in
  {
    threshold;
    matched;
    only_a = only a.rows b.rows;
    only_b = only b.rows a.rows;
    wall_a = a.sequential_s;
    wall_b = b.sequential_s;
    wall_ratio;
    wall_regressed;
    regressions =
      List.length (List.filter (fun d -> d.regressed) matched)
      + (if wall_regressed then 1 else 0);
  }

let render ~label_a ~label_b d =
  let table =
    Ascii_table.create
      ~title:
        (Printf.sprintf "perf diff: %s -> %s (threshold %+.0f%%)" label_a
           label_b (100.0 *. d.threshold))
      ~headers:[ "point"; "words A"; "words B"; "ratio"; "sigs A"; "sigs B"; "verdict" ]
  in
  List.iter
    (fun dl ->
      Ascii_table.add_row table
        [
          Format.asprintf "%a" Sweep.pp_point dl.point;
          string_of_int dl.words_a;
          string_of_int dl.words_b;
          Printf.sprintf "%.3f" dl.words_ratio;
          string_of_int dl.signatures_a;
          string_of_int dl.signatures_b;
          (if dl.regressed then "REGRESSED"
           else if dl.words_b < dl.words_a then "improved"
           else if dl.words_b = dl.words_a then "="
           else "ok");
        ])
    d.matched;
  let b = Buffer.create 1024 in
  Buffer.add_string b (Ascii_table.render table);
  List.iter
    (fun p ->
      Buffer.add_string b
        (Format.asprintf "only in %s: %a\n" label_a Sweep.pp_point p))
    d.only_a;
  List.iter
    (fun p ->
      Buffer.add_string b
        (Format.asprintf "only in %s: %a\n" label_b Sweep.pp_point p))
    d.only_b;
  Buffer.add_string b
    (Printf.sprintf "sequential wall: %.3fs -> %.3fs (x%.2f%s)\n" d.wall_a
       d.wall_b d.wall_ratio
       (if d.wall_regressed then ", REGRESSED" else ""));
  Buffer.add_string b
    (if d.regressions = 0 then "no regressions\n"
     else Printf.sprintf "%d regression(s)\n" d.regressions);
  Buffer.contents b

let diff_to_json d =
  Jsonx.Obj
    [
      ("threshold", Jsonx.Float d.threshold);
      ( "matched",
        Jsonx.Arr
          (List.map
             (fun dl ->
               Jsonx.Obj
                 [
                   ("protocol", Jsonx.Str dl.point.Sweep.protocol);
                   ("n", Jsonx.Int dl.point.Sweep.n);
                   ("f_spec", Jsonx.Str dl.point.Sweep.f_spec);
                   ("words_a", Jsonx.Int dl.words_a);
                   ("words_b", Jsonx.Int dl.words_b);
                   ("words_ratio", Jsonx.Float dl.words_ratio);
                   ("regressed", Jsonx.Bool dl.regressed);
                 ])
             d.matched) );
      ("wall_ratio", Jsonx.Float d.wall_ratio);
      ("wall_regressed", Jsonx.Bool d.wall_regressed);
      ("regressions", Jsonx.Int d.regressions);
    ]
