(** The perf-regression ledger: an append-only JSON history of benchmark
    runs, diffable pairwise so a performance regression is a comparison
    against recorded history instead of a shrug.

    One {!entry} is one {!Sweep.run_perf} invocation: provenance (git rev
    and date, both supplied by the caller — this library never shells out),
    the machine facts, both wall clocks, the profiler's per-category
    rollup, and every deterministic {!Sweep.row}. The file
    ([BENCH_ledger.json] by convention) carries schema ["mewc-ledger/1"]
    and is rewritten atomically on {!append} (write-then-rename).

    Word counts in rows are deterministic, so {!diff}'s threshold is not
    statistical headroom: any word increase beyond it is reported as a
    regression, which [mewc perf diff] turns into exit code 3 — the same
    "finding" code the fuzzer uses. Wall-clock is compared on the
    sequential pass with the same threshold. *)

val schema : string
(** ["mewc-ledger/1"]. *)

type entry = {
  rev : string;  (** git revision the run was built from; ["unknown"] ok *)
  date : string;  (** ISO date supplied by the caller *)
  grid : string;  (** grid name, e.g. ["standard"], ["smoke"] or ["ratio"] *)
  scheduler : string;
      (** which engine scheduler ran the grid ("legacy" / "event-driven");
          ["legacy"] when parsed from pre-scheduler entries, all of which
          that engine wrote *)
  jobs : int;
  cores : int;
  sequential_s : float;
  parallel_s : float;
  speedup : float;
  shards : (int * float) list;
      (** per-shard-count wall clocks of the intra-run sharding passes
          ({!Sweep.report.shard_wall_s}); [[]] in pre-shard entries, which
          keep parsing unchanged *)
  parallelism : string;
      (** the report's parallelism note — ["degraded (1 core)"] flags
          speedup quotients recorded on single-core hardware as noise;
          ["unknown"] in pre-shard entries *)
  rollup : (string * float) list;
      (** profiler category -> self seconds; [[]] when the run was not
          profiled *)
  rows : Sweep.row list;
}

val of_report :
  rev:string ->
  date:string ->
  grid:string ->
  ?profile:Mewc_sim.Profile.t ->
  Sweep.report ->
  entry
(** Package a {!Sweep.run_perf} report (and the profiler that instrumented
    its sequential pass, if any) as a ledger entry. *)

val of_baseline :
  rev:string ->
  date:string ->
  scheduler:Mewc_sim.Engine.scheduler ->
  wall_s:float ->
  Sweep.row list ->
  entry
(** Package one {!Sweep.run_baseline} pass as a [grid = "ratio"] entry:
    jobs 1, no shard curve, parallel fields collapsed onto the sequential
    wall clock. [mewc report] pairs the latest such entry per scheduler
    and derives the event-vs-legacy wall-clock ratio curve from per-row
    {!Sweep.row.wall_s}. *)

val entry_to_json : entry -> Mewc_prelude.Jsonx.t
val entry_of_json : Mewc_prelude.Jsonx.t -> (entry, string) result

val to_json : entry list -> Mewc_prelude.Jsonx.t
val of_json : Mewc_prelude.Jsonx.t -> (entry list, string) result
(** Whole-file (de)serialization, schema-gated. *)

val load : string -> (entry list, string) result
(** Parse a ledger file. A {e missing} file is an empty ledger ([Ok []]);
    an unparsable or wrong-schema file is an [Error]. *)

val save : string -> entry list -> unit
(** Atomic rewrite (write-then-rename). *)

val append : string -> entry -> (int, string) result
(** [append path entry] loads, appends and saves; returns the new entry
    count. [Error] if the existing file does not parse. *)

val find : entry list -> string -> (entry, string) result
(** Select an entry by integer index (negative counts from the end, so
    ["-1"] is the latest) or by unique git-rev prefix. *)

(** {1 Diffing} *)

type delta = {
  point : Sweep.point;
  words_a : int;
  words_b : int;
  words_ratio : float;  (** B / A; 1.0 when both zero, [infinity] if A = 0 < B *)
  signatures_a : int;
  signatures_b : int;
  regressed : bool;  (** words_ratio > 1 + threshold *)
}

type diff = {
  threshold : float;
  matched : delta list;  (** points present in both entries, in A's order *)
  only_a : Sweep.point list;
  only_b : Sweep.point list;
  wall_a : float;
  wall_b : float;
  wall_ratio : float;  (** sequential-pass wall clock, B / A *)
  wall_regressed : bool;
  regressions : int;  (** regressed word deltas + the wall regression, if any *)
}

val default_threshold : float
(** 0.25 — a quarter more words (or wall time) than the baseline trips the
    gate. *)

val diff : ?threshold:float -> entry -> entry -> diff
(** [diff a b] compares baseline [a] against candidate [b], matching rows
    by (protocol, n, f_spec). *)

val render : label_a:string -> label_b:string -> diff -> string
(** Human-readable table (per-point words/signatures with verdicts, then
    unmatched points and the wall-clock line). *)

val diff_to_json : diff -> Mewc_prelude.Jsonx.t
