(** The protocol-instance interface behind the generic runner.

    Every agreement protocol in the zoo — the standalone fallback, weak BA,
    BB, binary BB, strong BA — is packaged as a first-class module of type
    {!S}: its value domain, wire format and word costs, static horizon,
    per-process machine, decided-projections, and standard monitor suite.
    {!Instances.run} consumes any such module, so runners, sweeps and fuzzing
    campaigns are written once instead of five times.

    Protocol-specific run knobs (inputs, sender, round length, the unsafe
    [quorum_override] ablation, …) live in the instance's [params] type;
    [default_params] gives a canonical configuration and [mutate_params] a
    deterministically perturbed one, which is how the fuzzer's generic
    equivocation behavior obtains a second, conflicting run of the same
    machine without knowing the protocol's value domain. *)

open Mewc_prelude
open Mewc_crypto
open Mewc_sim

type counters = {
  fallback_runs : int;
  nonsilent_phases : int;
  help_requests : int;
}
(** The protocol-specific tallies surfaced in [agreement_outcome], computed
    from the final states of never-corrupted processes. Instances without a
    notion of, say, help requests report 0. *)

module type S = sig
  type value
  (** The agreement domain (multi-valued or binary). *)

  type params
  (** Per-run knobs: inputs plus whatever the instance's [init] takes. *)

  type state
  type msg
  type decision

  val name : string
  (** Stable identifier, also the CLI spelling (e.g. ["weak-ba"]). *)

  val words : msg -> int
  (** The paper's word measure for one message. *)

  val encode_msg : msg -> string
  (** Render a message for traces and corpora (wire format, human-legible). *)

  val default_params : Config.t -> params

  val mutate_params : params -> salt:int -> params
  (** A deterministic perturbation of the inputs — same knobs, conflicting
      values. [salt] selects among perturbations. *)

  val validate_params : cfg:Config.t -> params:params -> unit
  (** Raises [Invalid_argument] on ill-formed params (wrong input arity). *)

  val horizon : cfg:Config.t -> params:params -> int

  val machine :
    cfg:Config.t ->
    pki:Pki.t ->
    secret:Pki.Secret.t ->
    params:params ->
    pid:Pid.t ->
    (state, msg) Process.t
  (** One process's state machine, built after trusted setup. *)

  val decision : state -> decision option
  val decided_at : state -> int option

  val decided_str : state -> string option
  (** The engine/monitor projection: the printed decision, if any. Two
      states agree iff their projections are equal strings. *)

  val monitors : cfg:Config.t -> params:params -> msg Monitor.t list
  (** The standard online suite for these params. Instances whose params
      select a deliberately unsafe ablation return the reduced suite that
      ablation is specified against. *)

  val counters : state list -> counters
  (** Tallies over the final states of never-corrupted processes. *)

  val spray :
    (cfg:Config.t ->
    params:params ->
    pki:Pki.t ->
    rng:Rng.t ->
    (pid:Pid.t ->
    slot:int ->
    inbox:msg Envelope.t list ->
    active:(Pid.t * Pki.Secret.t) list ->
    (msg * Pid.t) list))
    option
  (** Attack-legal share spray: a stateful forger that harvests shares and
      certificates from its inbox and crafts protocol-shaped forgeries —
      equivocating proposals, certificates completed by topping harvested
      shares up with corrupted ones — within the crypto limits. [active]
      is the corrupted processes (and their secrets) {e as of this slot},
      so a forger can never sign for a process not yet corrupted. [None]
      if the instance has no bespoke forger; the fuzzer then degrades the
      spray behavior to a rushing echo. *)
end

type ('p, 's, 'm, 'd) t =
  (module S
     with type params = 'p
      and type state = 's
      and type msg = 'm
      and type decision = 'd)
(** A protocol instance packed with its type identities, as taken by
    {!Instances.run}. *)
