open Mewc_prelude
open Mewc_sim

let ( let* ) = Result.bind

let schema = "mewc-throughput/1"

(* ---- the grid ----------------------------------------------------------- *)

let depths =
  [
    ("seq", Repeated_bb.stride);
    ("half", fun cfg -> max 1 (Repeated_bb.stride cfg / 2));
    ("deep", fun cfg -> max 1 (Repeated_bb.stride cfg / 4));
  ]

let depth_names = List.map fst depths

let offset_of cfg depth =
  match List.assoc_opt depth depths with
  | Some f -> f cfg
  | None -> invalid_arg (Printf.sprintf "Throughput: unknown depth %S" depth)

let grid =
  List.concat_map
    (fun n ->
      List.concat_map
        (fun workload ->
          List.map (fun depth -> (n, workload, depth)) depth_names)
        Workload.preset_names)
    [ 9; 13 ]

let traffic_slots = 32

(* Depth deliberately excluded: the pipeline offset is a scheduling
   policy, so cells differing only in depth must run the exact same
   traffic and trusted setup — that is what makes the deep-vs-seq
   oracle comparison in [smoke] meaningful. *)
let seed_of ~n ~workload =
  let h = Hashtbl.hash ("throughput", n, workload) in
  Int64.logor (Int64.of_int h) (Int64.shift_left (Int64.of_int n) 32)

type cell = {
  n : int;
  workload : string;
  depth : string;
  seed : int64;
  report : Service.report;
}

let honest = Adversary.const (Adversary.honest ~name:"honest")

let run_cell ?options ~n ~workload ~depth () =
  let profile =
    match Workload.find_preset workload with
    | Some p -> p
    | None ->
      invalid_arg (Printf.sprintf "Throughput: unknown workload %S" workload)
  in
  let cfg = Config.optimal ~n in
  let offset = offset_of cfg depth in
  let seed = seed_of ~n ~workload in
  let svc = Service.create ~cfg ~offset () in
  Service.submit_workload svc
    (Workload.generate ~seed ~profile ~slots:traffic_slots);
  let report = Service.finalize svc ~seed ?options ~adversary:honest () in
  { n; workload; depth; seed; report }

let run_grid ?options ?progress cells =
  List.map
    (fun (n, workload, depth) ->
      let c = run_cell ?options ~n ~workload ~depth () in
      (match progress with None -> () | Some tick -> tick ());
      c)
    cells

(* ---- the SLO sweep ------------------------------------------------------ *)

type slo_point = {
  fault_profile : string;
  level : int;
  decisions_per_1k_slots : float;
  committed : int;
  undecided : int;
  p99_latency : int;
  retention : float;
}

let slo_grid =
  List.concat_map
    (fun profile ->
      List.init Degrade.levels (fun level -> (profile, level)))
    [ "crash"; "drop" ]

let slo_n = 9
let slo_workload = "steady"
let slo_depth = "half"

let slo_sweep ?(options = Engine.default_options) ?progress () =
  let profile = Option.get (Workload.find_preset slo_workload) in
  let cfg = Config.optimal ~n:slo_n in
  let offset = offset_of cfg slo_depth in
  let run fault_profile level =
    let seed = seed_of ~n:slo_n ~workload:(slo_workload ^ "/slo") in
    let svc = Service.create ~cfg ~offset () in
    Service.submit_workload svc
      (Workload.generate ~seed ~profile ~slots:traffic_slots);
    Service.finalize svc ~seed
      ~options:
        { options with Engine.faults = Degrade.plan_of ~profile:fault_profile ~level }
      ~adversary:honest ()
  in
  List.map
    (fun (fault_profile, level) ->
      let r = run fault_profile level in
      let base = run fault_profile 0 in
      (match progress with None -> () | Some tick -> tick ());
      let retention =
        if base.Service.decisions_per_1k_slots <= 0.0 then 1.0
        else r.Service.decisions_per_1k_slots /. base.Service.decisions_per_1k_slots
      in
      {
        fault_profile;
        level;
        decisions_per_1k_slots = r.Service.decisions_per_1k_slots;
        committed = r.Service.committed;
        undecided = r.Service.undecided;
        p99_latency = r.Service.p99_latency;
        retention;
      })
    slo_grid

(* ---- serialization and the ledger --------------------------------------- *)

let cell_to_json c =
  Jsonx.Obj
    [
      ("n", Jsonx.Int c.n);
      ("workload", Jsonx.Str c.workload);
      ("depth", Jsonx.Str c.depth);
      ("seed", Jsonx.Str (Int64.to_string c.seed));
      ("report", Service.report_to_json c.report);
    ]

let slo_point_to_json p =
  Jsonx.Obj
    [
      ("fault_profile", Jsonx.Str p.fault_profile);
      ("level", Jsonx.Int p.level);
      ("decisions_per_1k_slots", Jsonx.Float p.decisions_per_1k_slots);
      ("committed", Jsonx.Int p.committed);
      ("undecided", Jsonx.Int p.undecided);
      ("p99_latency", Jsonx.Int p.p99_latency);
      ("retention", Jsonx.Float p.retention);
    ]

type entry = {
  rev : string;
  date : string;
  cells : cell list;
  slo : slo_point list;
}

let entry_to_json e =
  Jsonx.Obj
    [
      ("rev", Jsonx.Str e.rev);
      ("date", Jsonx.Str e.date);
      ("cells", Jsonx.Arr (List.map cell_to_json e.cells));
      ("slo", Jsonx.Arr (List.map slo_point_to_json e.slo));
    ]

let to_json entries =
  Jsonx.Schema.tag schema [ ("entries", Jsonx.Arr entries) ]

let load path =
  if not (Sys.file_exists path) then Ok []
  else begin
    let contents = In_channel.with_open_bin path In_channel.input_all in
    let* j =
      Result.map_error
        (fun e -> Printf.sprintf "%s: %s" path e)
        (Jsonx.parse contents)
    in
    let* () =
      Result.map_error
        (fun e -> Printf.sprintf "%s: %s" path e)
        (Jsonx.Schema.check schema j)
    in
    match Option.bind (Jsonx.member "entries" j) Jsonx.get_list with
    | Some es -> Ok es
    | None -> Error (Printf.sprintf "%s: no entries array" path)
  end

let save path entries =
  (* write-then-rename, as the perf ledger does. *)
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc (Jsonx.to_string (to_json entries));
      Out_channel.output_char oc '\n');
  Sys.rename tmp path

let append path entry =
  let* entries = load path in
  let entries = entries @ [ entry_to_json entry ] in
  save path entries;
  Ok (List.length entries)

let render e =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "[THROUGHPUT] grid (decisions/1k-slots, words/decision, batch fill, \
     p50/p99 latency):\n";
  Buffer.add_string b
    "  n   workload    depth  dec/1k   w/dec   fill  p50  p99\n";
  List.iter
    (fun c ->
      let r = c.report in
      Buffer.add_string b
        (Printf.sprintf "  %-3d %-11s %-5s %7.1f %7.1f  %5.2f %4d %4d\n" c.n
           c.workload c.depth r.Service.decisions_per_1k_slots
           r.Service.words_per_decision r.Service.batch_fill
           r.Service.p50_latency r.Service.p99_latency))
    e.cells;
  Buffer.add_string b "[THROUGHPUT] SLO sweep (throughput retention vs level 0):\n";
  Buffer.add_string b "  profile  level  dec/1k  retention  committed  undecided  p99\n";
  List.iter
    (fun p ->
      Buffer.add_string b
        (Printf.sprintf "  %-8s %5d %7.1f %10.2f %10d %10d %4d\n"
           p.fault_profile p.level p.decisions_per_1k_slots p.retention
           p.committed p.undecided p.p99_latency))
    e.slo;
  Buffer.contents b

(* ---- the smoke gate ------------------------------------------------------ *)

let smoke ?options () =
  let sub = List.filter (fun (n, _, _) -> n = 9) grid in
  let make () =
    {
      rev = "smoke";
      date = "smoke";
      cells = run_grid ?options sub;
      slo = slo_sweep ?options ();
    }
  in
  let a = make () in
  let b = make () in
  let doc e = Jsonx.to_string (to_json [ entry_to_json e ]) in
  if not (String.equal (doc a) (doc b)) then
    Error "throughput grid is not deterministic: two identical runs diverged"
  else begin
    let find workload depth =
      List.find (fun c -> String.equal c.workload workload && String.equal c.depth depth) a.cells
    in
    let oracle_violation =
      List.find_map
        (fun workload ->
          let seq = find workload "seq" in
          let deep = find workload "deep" in
          if deep.report.Service.log <> seq.report.Service.log then
            Some
              (Printf.sprintf
                 "%s: deep pipeline committed a different log than the \
                  sequential oracle"
                 workload)
          else if deep.report.Service.slots >= seq.report.Service.slots then
            Some
              (Printf.sprintf
                 "%s: deep pipeline (%d slots) not faster than sequential (%d)"
                 workload deep.report.Service.slots seq.report.Service.slots)
          else None)
        Workload.preset_names
    in
    match oracle_violation with
    | Some e -> Error e
    | None -> (
      match
        List.find_opt
          (fun p -> p.level = 0 && p.retention <> 1.0)
          a.slo
      with
      | Some p ->
        Error
          (Printf.sprintf "SLO control broken: %s level 0 retention %.3f"
             p.fault_profile p.retention)
      | None -> Ok a)
  end
