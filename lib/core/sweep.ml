open Mewc_prelude
open Mewc_sim

type point = { protocol : string; n : int; f_spec : string }

type row = {
  point : point;
  t : int;
  f : int;
  words : int;
  messages : int;
  signatures : int;
  latency : int;
  slots : int;
  fallback_runs : int;
  crypto : Mewc_crypto.Pki.cache_stats;
  wall_s : float;
}

let pp_point fmt p =
  Format.fprintf fmt "%s n=%d f=%s" p.protocol p.n p.f_spec

let protocols = [ "bb"; "weak-ba"; "strong-ba"; "fallback" ]
let f_specs = [ "0"; "1"; "t/2"; "t" ]

let f_of_spec ~t = function
  | "0" -> 0
  | "1" -> min 1 t
  | "t/2" -> t / 2
  | "t" -> t
  | s -> invalid_arg ("Sweep: unknown f spec " ^ s)

(* The standalone A_fallback is Θ(n²) words over Θ(t) rounds — ~n³ work —
   so its largest points would dwarf the rest of the grid. Under the legacy
   lock-step engine the wall is n = 201; the event-driven scheduler steps
   only woken processes, which buys one more doubling before the n³ message
   volume itself dominates. *)
let fallback_cap = function `Legacy -> 201 | `Event_driven -> 401

(* Returns (points, capped): the grid plus the points the fallback cap
   dropped, so reports can say what was not measured instead of silently
   truncating. *)
let grid ~cap ~ns ~full_f_at =
  let cells =
    List.concat_map
      (fun n ->
        List.concat_map
          (fun protocol ->
            let specs =
              (* Beyond [full_f_at], only weak BA keeps its faulty points:
                 they drive the quadratic fallback — the crypto-cache hot
                 spot — while the other protocols' failure-free points
                 already show the O(n) scaling. This keeps a sequential
                 standard-grid pass in the tens of seconds. *)
              if n <= full_f_at || String.equal protocol "weak-ba" then f_specs
              else [ "0" ]
            in
            let dropped = String.equal protocol "fallback" && n > cap in
            List.map (fun f_spec -> ({ protocol; n; f_spec }, dropped)) specs)
          protocols)
      ns
  in
  ( List.filter_map (fun (p, dropped) -> if dropped then None else Some p) cells,
    List.filter_map (fun (p, dropped) -> if dropped then Some p else None) cells
  )

let standard_grid = fst (grid ~cap:201 ~ns:[ 21; 101; 201; 401 ] ~full_f_at:21)
let smoke_grid = fst (grid ~cap:201 ~ns:[ 9; 13 ] ~full_f_at:13)
let frontier_ns = [ 21; 101; 201; 401; 1001; 2001 ]

let frontier_grid scheduler =
  grid ~cap:(fallback_cap scheduler) ~ns:frontier_ns ~full_f_at:21

(* Every point runs from its own seed, derived from nothing but the point:
   reruns — sequential, parallel, or out of order — replay bit for bit. *)
let seed_of { protocol; n; f_spec } =
  let h = Hashtbl.hash (protocol, n, f_spec) in
  Int64.logor (Int64.of_int h) (Int64.shift_left (Int64.of_int n) 32)

let crash_first f ~pki:_ ~secrets:_ =
  Adversary.crash ~victims:(List.init f (fun i -> i + 1)) ()

let run_point ?(options = Instances.default_options) point =
  let cfg = Config.optimal ~n:point.n in
  let t = cfg.Config.t in
  let f = f_of_spec ~t point.f_spec in
  let seed = seed_of point in
  (* The point owns its seed (reruns replay bit for bit whatever the caller
     passed); the monitors override is dropped by [retarget] — each branch
     installs its protocol's standard suite. *)
  let opts () = { (Instances.retarget options) with Instances.seed } in
  let t0 = Unix.gettimeofday () in
  let of_outcome (o : _ Instances.agreement_outcome) =
    {
      point;
      t;
      f = o.Instances.f;
      words = o.Instances.words;
      messages = o.Instances.messages;
      signatures = o.Instances.signatures;
      latency = o.Instances.latency;
      slots = o.Instances.slots;
      fallback_runs = o.Instances.fallback_runs;
      crypto = o.Instances.crypto;
      (* The one advisory field: the point's own wall clock, so per-point
         scheduler ratios can be derived from stored rows. Excluded from
         every identity line — timing never gates byte-equality. *)
      wall_s = Unix.gettimeofday () -. t0;
    }
  in
  match point.protocol with
  | "bb" ->
    of_outcome
      (Instances.run
         (module Instances.Bb_protocol)
         ~cfg ~options:(opts ())
         ~params:{ Instances.Bb_protocol.sender = 0; input = "payload" }
         ~adversary:(crash_first f) ())
  | "weak-ba" ->
    of_outcome
      (Instances.run
         (module Instances.Weak_ba_protocol)
         ~cfg ~options:(opts ())
         ~params:
           {
             Instances.Weak_ba_protocol.inputs = Array.make point.n "v";
             validate = (fun _ -> true);
             quorum_override = None;
           }
         ~adversary:(crash_first f) ())
  | "strong-ba" ->
    of_outcome
      (Instances.run
         (module Instances.Strong_ba_protocol)
         ~cfg ~options:(opts ())
         ~params:
           {
             Instances.Strong_ba_protocol.leader = 0;
             inputs = Array.make point.n true;
           }
         ~adversary:(crash_first f) ())
  | "fallback" ->
    of_outcome
      (Instances.run
         (module Instances.Fallback_protocol)
         ~cfg ~options:(opts ())
         ~params:
           {
             Instances.Fallback_protocol.inputs =
               Array.init point.n (fun i -> Printf.sprintf "x%d" (i mod 3));
             round_len = 1;
             start_slot = (fun _ -> 0);
           }
         ~adversary:(crash_first f) ())
  | p -> invalid_arg ("Sweep.run_point: unknown protocol " ^ p)

let run_all ?(jobs = 1) ?(options = Instances.default_options) ?progress points
    =
  (* A Profile.t is a plain mutable record — not domain-safe — so profiled
     passes must stay in the calling domain. *)
  if jobs > 1 && Option.is_some options.Instances.profile then
    invalid_arg "Sweep.run_all: profiling requires jobs = 1";
  if jobs <= 1 then
    List.map
      (fun p ->
        let r = run_point ~options p in
        (match progress with None -> () | Some tick -> tick ());
        r)
      points
  else
    (* Heartbeats stay on the calling domain: a parallel pass reports
       nothing per point rather than interleaving writes across domains. *)
    Pool.map_list ~jobs (fun p -> run_point ~options p) points

(* The scheduler-ratio baseline: the failure-free column only — the ratio
   isolates scheduler overhead, and f > 0 points confound it with fault
   handling — with the standalone fallback capped at 201 under {e both}
   schedulers, so a legacy and an event-driven baseline cover the same
   point set and the ratio curve never divides by a missing row. *)
let ratio_ns = [ 21; 101; 201; 401; 1001 ]

let ratio_grid =
  List.concat_map
    (fun n ->
      List.filter_map
        (fun protocol ->
          if String.equal protocol "fallback" && n > 201 then None
          else Some { protocol; n; f_spec = "0" })
        protocols)
    ratio_ns

let run_baseline ?progress ~scheduler () =
  let options = { Instances.default_options with Instances.scheduler } in
  let t0 = Unix.gettimeofday () in
  let rows = run_all ~jobs:1 ~options ?progress ratio_grid in
  (rows, Unix.gettimeofday () -. t0)

let row_to_line r =
  Printf.sprintf
    "%s n=%d t=%d f_spec=%s f=%d words=%d messages=%d signatures=%d latency=%d \
     slots=%d fallback_runs=%d verify=%d/%d agg=%d/%d"
    r.point.protocol r.point.n r.t r.point.f_spec r.f r.words r.messages
    r.signatures r.latency r.slots r.fallback_runs r.crypto.Mewc_crypto.Pki.verify_hits
    r.crypto.Mewc_crypto.Pki.verify_misses r.crypto.Mewc_crypto.Pki.agg_hits
    r.crypto.Mewc_crypto.Pki.agg_misses

(* [row_to_line] minus the crypto-cache counters. Sharded runs keep one
   memo table per domain, so the hit/miss *split* legitimately varies with
   the shard count while every protocol-observable field — signature counts
   included — must not; shard-identity gates compare this line. *)
let row_core_line r =
  Printf.sprintf
    "%s n=%d t=%d f_spec=%s f=%d words=%d messages=%d signatures=%d latency=%d \
     slots=%d fallback_runs=%d"
    r.point.protocol r.point.n r.t r.point.f_spec r.f r.words r.messages
    r.signatures r.latency r.slots r.fallback_runs

let row_to_json r =
  Jsonx.Obj
    [
      ("protocol", Jsonx.Str r.point.protocol);
      ("n", Jsonx.Int r.point.n);
      ("t", Jsonx.Int r.t);
      ("f_spec", Jsonx.Str r.point.f_spec);
      ("f", Jsonx.Int r.f);
      ("words", Jsonx.Int r.words);
      ("messages", Jsonx.Int r.messages);
      ("signatures", Jsonx.Int r.signatures);
      ("latency", Jsonx.Int r.latency);
      ("slots", Jsonx.Int r.slots);
      ("fallback_runs", Jsonx.Int r.fallback_runs);
      ("crypto_cache", Mewc_crypto.Pki.cache_stats_to_json r.crypto);
      ("wall_s", Jsonx.Float r.wall_s);
    ]

let row_of_json j =
  let ( let* ) = Result.bind in
  let field name get =
    match Option.bind (Jsonx.member name j) get with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "Sweep.row_of_json: bad or missing %S" name)
  in
  let int name = field name Jsonx.get_int in
  let str name = field name Jsonx.get_str in
  let* protocol = str "protocol" in
  let* n = int "n" in
  let* f_spec = str "f_spec" in
  let* t = int "t" in
  let* f = int "f" in
  let* words = int "words" in
  let* messages = int "messages" in
  let* signatures = int "signatures" in
  let* latency = int "latency" in
  let* slots = int "slots" in
  let* fallback_runs = int "fallback_runs" in
  let* crypto =
    match Jsonx.member "crypto_cache" j with
    | None -> Error "Sweep.row_of_json: bad or missing \"crypto_cache\""
    | Some c -> Mewc_crypto.Pki.cache_stats_of_json c
  in
  (* Optional so pre-wall_s ledger files (same schemas) keep parsing. *)
  let wall_s =
    match Jsonx.member "wall_s" j with
    | Some (Jsonx.Float f) -> f
    | Some (Jsonx.Int i) -> float_of_int i
    | _ -> 0.0
  in
  Ok
    {
      point = { protocol; n; f_spec };
      t;
      f;
      words;
      messages;
      signatures;
      latency;
      slots;
      fallback_runs;
      crypto;
      wall_s;
    }

type report = {
  rows : row list;
  sequential_s : float;
  parallel_s : float;
  jobs : int;
  cores : int;
  speedup : float;
  identical : bool;
  scheduler : Mewc_sim.Engine.scheduler;
  capped : point list;
  shard_wall_s : (int * float) list;
  shards_identical : bool;
  parallelism : string;
}

let parallelism_note ~cores =
  if cores = 1 then "degraded (1 core)"
  else Printf.sprintf "ok (%d cores)" cores

let run_perf ?jobs ?profile ?(scheduler = `Legacy) ?(capped = [])
    ?(shard_counts = [ 1; 2; 4; 8 ]) ?progress points =
  let jobs = match jobs with Some j -> max 1 j | None -> Pool.default_jobs () in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let base = { Instances.default_options with Instances.scheduler } in
  (* Only the sequential pass is profiled: spans would race across domains,
     and the parallel pass exists to time raw throughput anyway. *)
  let seq_rows, sequential_s =
    timed (fun () ->
        run_all ~jobs:1 ~options:{ base with Instances.profile } ?progress points)
  in
  let par_rows, parallel_s =
    timed (fun () -> run_all ~jobs ~options:base points)
  in
  let identical =
    List.equal String.equal (List.map row_to_line seq_rows)
      (List.map row_to_line par_rows)
  in
  (* The intra-run shard passes: one sequential-across-points pass per
     shard count, each timed, each checked byte-identical to the
     sequential baseline on the core row line (crypto-cache splits are
     per-domain and excluded by design). *)
  let seq_core = List.map row_core_line seq_rows in
  let shard_results =
    List.map
      (fun shards ->
        let rows, wall =
          timed (fun () ->
              run_all ~jobs:1 ~options:{ base with Instances.shards } points)
        in
        let same = List.equal String.equal seq_core (List.map row_core_line rows) in
        ((shards, wall), same))
      shard_counts
  in
  let cores = Pool.default_jobs () in
  {
    rows = seq_rows;
    sequential_s;
    parallel_s;
    jobs;
    cores;
    speedup = (if parallel_s > 0.0 then sequential_s /. parallel_s else 1.0);
    identical;
    scheduler;
    capped;
    shard_wall_s = List.map fst shard_results;
    shards_identical = List.for_all snd shard_results;
    parallelism = parallelism_note ~cores;
  }

(* Aggregate cache traffic per protocol: the per-protocol hit rate is the
   headline number ("how much re-hashing the caches removed for weak BA"). *)
let per_protocol_crypto rows =
  List.filter_map
    (fun proto ->
      let of_proto = List.filter (fun r -> String.equal r.point.protocol proto) rows in
      if of_proto = [] then None
      else begin
        let sum f = List.fold_left (fun acc r -> acc + f r.crypto) 0 of_proto in
        let open Mewc_crypto.Pki in
        let stats =
          {
            verify_hits = sum (fun c -> c.verify_hits);
            verify_misses = sum (fun c -> c.verify_misses);
            agg_hits = sum (fun c -> c.agg_hits);
            agg_misses = sum (fun c -> c.agg_misses);
          }
        in
        Some (proto, cache_stats_to_json stats)
      end)
    protocols

let report_to_json r =
  Jsonx.Schema.tag "mewc-perf/2"
    [
      ( "experiment",
        Jsonx.Str
          "sweep wall-clock: sequential vs domain-parallel across points and \
           across intra-run shard counts, with crypto-cache hit rates" );
      ("cores", Jsonx.Int r.cores);
      ("jobs", Jsonx.Int r.jobs);
      (* The honest story up front: a 1-core host cannot speed anything up,
         whatever the speedup quotient's noise says. *)
      ("parallelism", Jsonx.Str r.parallelism);
      ("sequential_wall_s", Jsonx.Float r.sequential_s);
      ("parallel_wall_s", Jsonx.Float r.parallel_s);
      ("speedup", Jsonx.Float r.speedup);
      ("parallel_identical_to_sequential", Jsonx.Bool r.identical);
      ( "shards",
        Jsonx.Arr
          (List.map
             (fun (shards, wall) ->
               Jsonx.Obj
                 [ ("shards", Jsonx.Int shards); ("wall_s", Jsonx.Float wall) ])
             r.shard_wall_s) );
      ("shards_identical_to_sequential", Jsonx.Bool r.shards_identical);
      ("scheduler", Jsonx.Str (Mewc_sim.Engine.scheduler_to_string r.scheduler));
      ( "capped_points",
        (* What the fallback cap dropped — reported, never silently
           truncated. *)
        Jsonx.Arr
          (List.map
             (fun p ->
               Jsonx.Obj
                 [
                   ("protocol", Jsonx.Str p.protocol);
                   ("n", Jsonx.Int p.n);
                   ("f_spec", Jsonx.Str p.f_spec);
                 ])
             r.capped) );
      ("crypto_cache_by_protocol", Jsonx.Obj (per_protocol_crypto r.rows));
      ("rows", Jsonx.Arr (List.map row_to_json r.rows));
    ]
