open Mewc_prelude
open Mewc_sim

let cfg = Config.optimal ~n:9
let protocols = [ "fallback"; "weak-ba"; "bb"; "binary-bb"; "strong-ba" ]
let profiles = [ "crash"; "omission"; "dup"; "delay"; "drop"; "partition" ]
let levels = 5

(* Far past any protocol's horizon at n = 9: "for the rest of the run". *)
let forever = 1_000_000

(* One plan per (profile, level), independent of the protocol under test.
   The plan's own seed drives its probabilistic coins; deriving it from the
   cell identity keeps every draw replayable from the plan alone. *)
let plan_seed ~profile ~level =
  Int64.of_int (Hashtbl.hash ("degrade-plan", profile, level))

let check_level level =
  if level < 0 || level >= levels then
    invalid_arg (Printf.sprintf "Degrade: level %d outside 0..%d" level (levels - 1))

let plan_of ~profile ~level =
  check_level level;
  let seed = plan_seed ~profile ~level in
  if level = 0 then Faults.none
  else
    match profile with
    | "crash" ->
      {
        Faults.none with
        Faults.seed;
        processes =
          List.init level (fun i -> (i + 1, Faults.Crash { at = 0 }));
      }
    | "omission" ->
      {
        Faults.none with
        Faults.seed;
        processes =
          List.init level (fun i ->
              let pid = i + 1 in
              ( pid,
                Faults.Send_omission
                  { from_ = 0; drop_mod = 2; drop_rem = pid mod 2 } ));
      }
    | "dup" ->
      { Faults.none with Faults.seed; dup = 0.15 *. float_of_int level }
    | "delay" ->
      { Faults.none with Faults.seed; delay = level; delay_prob = 0.5 }
    | "drop" ->
      let p = [| 0.0; 0.05; 0.15; 0.3; 0.5 |].(level) in
      { Faults.none with Faults.seed; drop = p }
    | "partition" ->
      {
        Faults.none with
        Faults.seed;
        partitions =
          [
            {
              Faults.from_slot = 0;
              until_slot = forever;
              island = List.init level Fun.id;
            };
          ];
      }
    | "split" ->
      (* The planted cell's plan (not part of the grid): a partition timed
         across weak BA's first two phases. Island {0,2,3,4} — phase-1
         leader p0 plus three — runs phase 1 to a finalize certificate on
         its own; the partition heals at slot 7, exactly late enough that
         the complement {1,5,6,7,8} has voted for leader p1's phase-2
         proposal without ever seeing a commit-answer from the island. With
         a sound quorum (or the fuzzer's t+1 ablation) one side stalls one
         share short; at quorum t both sides certify. *)
      {
        Faults.none with
        Faults.seed;
        partitions =
          [ { Faults.from_slot = 0; until_slot = 7; island = [ 0; 2; 3; 4 ] } ];
      }
    | p -> invalid_arg ("Degrade: unknown fault profile " ^ p)

(* Safety only, online: the adversary is honest, so the budget and metering
   monitors are tripwires for engine-level nonsense and agreement is the
   protocol's actual safety obligation. Word/latency envelopes are excluded
   by design (see the interface). *)
let safety_monitors () =
  [ Monitor.corruption_budget ~cfg; Monitor.agreement (); Monitor.metering () ]

let honest () = Adversary.const (Adversary.honest ~name:"honest")

let seed_of ~protocol ~profile ~level =
  let h = Hashtbl.hash ("degrade", protocol, profile, level) in
  Int64.logor (Int64.of_int h) (Int64.shift_left (Int64.of_int level) 32)

type cell = {
  protocol : string;
  profile : string;
  level : int;
  seed : int64;
  plan : Faults.plan;
  verdict : Monitor.classification;
  f : int;
  faulty : int;
  undecided : int;
  words : int;
  slots : int;
}

(* Liveness, offline: decode the recorded trace (payloads as strings — the
   liveness monitors never look inside a message) and replay the
   termination monitor over it. This exercises the mewc-trace/4 round-trip,
   fault events included, on every cell. *)
let liveness (o : _ Instances.agreement_outcome) =
  match o.Instances.trace_json with
  | None -> ()
  | Some j -> (
    match Trace.of_json ~decode:Fun.id j with
    | Error e -> failwith ("Degrade: trace round-trip failed: " ^ e)
    | Ok tr ->
      Monitor.replay [ Monitor.termination ~cfg ] ~slots:o.Instances.slots tr)

let classified run =
  let outcome, verdict = Monitor.classify ~run ~liveness in
  let f, faulty, undecided, words, slots =
    match outcome with
    | None -> (0, 0, 0, 0, 0)  (* the run died mid-flight on a safety violation *)
    | Some (o : _ Instances.agreement_outcome) ->
      let undecided =
        match o.Instances.status with
        | Instances.Decided -> 0
        | Instances.Undecided ps -> List.length ps
      in
      ( o.Instances.f,
        List.length o.Instances.faulty,
        undecided,
        o.Instances.words,
        o.Instances.slots )
  in
  (verdict, f, faulty, undecided, words, slots)

let run_cell ~options ~protocol ~profile ~level =
  let plan = plan_of ~profile ~level in
  let seed = seed_of ~protocol ~profile ~level in
  (* The cell's identity fixes the run: seed, recorded trace (the liveness
     replay needs it), safety monitors and fault plan all override whatever
     [options] says about them. What survives of [options] are the engine
     knobs — scheduler, shards, profile — which the cell is invariant
     under. *)
  let run (type p s m d) ((module P) : (p, s, m, d) Protocol.t) (params : p) =
    classified (fun () ->
        Instances.run
          (module P)
          ~cfg
          ~options:
            {
              (Instances.retarget options) with
              Instances.seed;
              record_trace = true;
              monitors = Some (safety_monitors ());
              faults = plan;
            }
          ~params ~adversary:(honest ()) ())
  in
  let n = cfg.Config.n in
  let verdict, f, faulty, undecided, words, slots =
    match protocol with
    | "fallback" ->
      run
        (module Instances.Fallback_protocol)
        {
          Instances.Fallback_protocol.inputs =
            Array.init n (fun i -> Printf.sprintf "x%d" (i mod 3));
          round_len = 1;
          start_slot = (fun _ -> 0);
        }
    | "weak-ba" ->
      run
        (module Instances.Weak_ba_protocol)
        {
          Instances.Weak_ba_protocol.inputs = Array.make n "v";
          validate = (fun _ -> true);
          quorum_override = None;
        }
    | "bb" ->
      run
        (module Instances.Bb_protocol)
        { Instances.Bb_protocol.sender = 0; input = "payload" }
    | "binary-bb" ->
      run
        (module Instances.Binary_bb_protocol)
        { Instances.Binary_bb_protocol.sender = 0; input = true }
    | "strong-ba" ->
      run
        (module Instances.Strong_ba_protocol)
        {
          Instances.Strong_ba_protocol.leader = 0;
          inputs = Array.init n (fun i -> i mod 2 = 0);
        }
    | "weak-ba-ablated" ->
      (* The planted reliability violation, weaker than the fuzzer's
         ablation: quorum t, not t+1. Loss forges nothing, so certificates
         keep even the t+1 ablation split-safe (2(t+1) > n: two benign
         quorums must share a process, and a voter that committed never
         votes for a rival value). At quorum t two disjoint quorums fit in
         n = 2t+1, and the timed "split" partition produces exactly that:
         conflicting finalize certificates on the two sides. Deliberately
         not in {!protocols} — the matrix's headline is that the sound
         instances never go unsafe. *)
      run
        (module Instances.Weak_ba_protocol)
        {
          Instances.Weak_ba_protocol.inputs =
            Array.init n (fun i -> Printf.sprintf "x%d" (i mod 3));
          validate = (fun _ -> true);
          quorum_override = Some cfg.Config.t;
        }
    | p -> invalid_arg ("Degrade.run_cell: unknown protocol " ^ p)
  in
  { protocol; profile; level; seed; plan; verdict; f; faulty; undecided; words; slots }

let grid =
  List.concat_map
    (fun protocol ->
      List.concat_map
        (fun profile -> List.init levels (fun level -> (protocol, profile, level)))
        profiles)
    protocols

let run_all ?(jobs = 1) ?progress () =
  let cell (protocol, profile, level) =
    run_cell ~options:Instances.default_options ~protocol ~profile ~level
  in
  if jobs <= 1 then
    List.map
      (fun g ->
        let c = cell g in
        (match progress with None -> () | Some tick -> tick ());
        c)
      grid
  else
    (* Heartbeats only from the calling domain — a parallel pass reports
       nothing per cell. *)
    Pool.map_list ~jobs cell grid

(* ---- reporting ---------------------------------------------------------- *)

let verdict_tag = function
  | Monitor.Safe_live -> "safe-live"
  | Monitor.Safe_stalled _ -> "safe-stalled"
  | Monitor.Unsafe _ -> "unsafe"

let violation_json = function
  | Monitor.Safe_live -> Jsonx.Null
  | Monitor.Safe_stalled v | Monitor.Unsafe v ->
    Jsonx.Obj
      [
        ("monitor", Jsonx.Str v.Monitor.monitor);
        ("slot", Jsonx.Int v.Monitor.slot);
        ("reason", Jsonx.Str v.Monitor.reason);
      ]

let cell_to_json c =
  Jsonx.Obj
    [
      ("protocol", Jsonx.Str c.protocol);
      ("fault", Jsonx.Str c.profile);
      ("level", Jsonx.Int c.level);
      ("seed", Jsonx.Str (Int64.to_string c.seed));
      ("plan", Faults.to_json c.plan);
      ("verdict", Jsonx.Str (verdict_tag c.verdict));
      ("violation", violation_json c.verdict);
      ("f", Jsonx.Int c.f);
      ("faulty", Jsonx.Int c.faulty);
      ("undecided", Jsonx.Int c.undecided);
      ("words", Jsonx.Int c.words);
      ("slots", Jsonx.Int c.slots);
    ]

let matrix_to_json cells =
  Jsonx.Schema.tag "mewc-degrade/1"
    [
      ( "experiment",
        Jsonx.Str
          "graceful degradation: (protocol x fault-intensity) verdicts under \
           injected network/process faults" );
      ("n", Jsonx.Int cfg.Config.n);
      ("t", Jsonx.Int cfg.Config.t);
      ("protocols", Jsonx.Arr (List.map (fun p -> Jsonx.Str p) protocols));
      ("faults", Jsonx.Arr (List.map (fun p -> Jsonx.Str p) profiles));
      ("levels", Jsonx.Int levels);
      ("cells", Jsonx.Arr (List.map cell_to_json cells));
    ]

let render cells =
  let table =
    Ascii_table.create
      ~title:
        (Printf.sprintf "degradation matrix (n=%d, t=%d): ok | stall | UNSAFE"
           cfg.Config.n cfg.Config.t)
      ~headers:
        ("protocol" :: "fault"
        :: List.init levels (fun l -> Printf.sprintf "L%d" l))
  in
  let short = function
    | Monitor.Safe_live -> "ok"
    | Monitor.Safe_stalled _ -> "stall"
    | Monitor.Unsafe _ -> "UNSAFE"
  in
  (* Grid rows in canonical order, then any extra (protocol, fault) rows —
     e.g. the planted cell appended by [smoke] — in first-appearance
     order. *)
  let rows =
    let canonical =
      List.concat_map
        (fun p -> List.map (fun prof -> (p, prof)) profiles)
        protocols
    in
    let seen = Hashtbl.create 64 in
    List.iter (fun r -> Hashtbl.replace seen r ()) canonical;
    let extras =
      List.filter_map
        (fun c ->
          let r = (c.protocol, c.profile) in
          if Hashtbl.mem seen r then None
          else (
            Hashtbl.replace seen r ();
            Some r))
        cells
    in
    List.filter
      (fun (p, prof) ->
        List.exists
          (fun c -> String.equal c.protocol p && String.equal c.profile prof)
          cells)
      canonical
    @ extras
  in
  List.iter
    (fun (protocol, profile) ->
      let row =
        List.init levels (fun level ->
            match
              List.find_opt
                (fun c ->
                  String.equal c.protocol protocol
                  && String.equal c.profile profile
                  && c.level = level)
                cells
            with
            | Some c -> short c.verdict
            | None -> "-")
      in
      Ascii_table.add_row table (protocol :: profile :: row))
    rows;
  (* Per-level word-cost spread across the whole matrix: how spending grows
     as fault intensity rises. Nearest-rank, like every other quantile in
     the repo ({!Mewc_obs.Metrics}). *)
  let summary =
    let b = Buffer.create 256 in
    for level = 0 to levels - 1 do
      let words =
        List.filter_map
          (fun c -> if c.level = level then Some c.words else None)
          cells
      in
      if words <> [] then begin
        let q p = Mewc_obs.Metrics.percentile_of_list p words in
        Buffer.add_string b
          (Printf.sprintf "L%d words: p50 %d, p90 %d, p99 %d\n" level (q 50.0)
             (q 90.0) (q 99.0))
      end
    done;
    Buffer.contents b
  in
  Ascii_table.render table ^ summary

let unsafe_cells cells =
  List.filter
    (fun c -> match c.verdict with Monitor.Unsafe _ -> true | _ -> false)
    cells

(* ---- the self-validating smoke gate ------------------------------------- *)

let planted_unsafe = ("weak-ba-ablated", "split", 1)

let smoke ?jobs () =
  let cells = run_all ?jobs () in
  let ( let* ) = Result.bind in
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check pred msg cs =
    match List.find_opt (fun c -> not (pred c)) cs with
    | None -> Ok ()
    | Some c ->
      fail "%s: %s/%s/L%d is %s" msg c.protocol c.profile c.level
        (verdict_tag c.verdict)
  in
  let of_profile p = List.filter (fun c -> String.equal c.profile p) cells in
  let live c = c.verdict = Monitor.Safe_live in
  let not_unsafe c =
    match c.verdict with Monitor.Unsafe _ -> false | _ -> true
  in
  (* 1. The controls: level 0 of every profile is the reliable model. *)
  let* () =
    check live "control (level 0) must be safe-live"
      (List.filter (fun c -> c.level = 0) cells)
  in
  (* 2. Crash-only faults, <= t of them, are within the Byzantine budget the
     protocols already tolerate: all five must stay fully live. *)
  let* () = check live "crash-only cells must be safe-live" (of_profile "crash") in
  (* 3. Duplication never breaks safety (signatures make replays no-ops). *)
  let* () =
    check not_unsafe "duplication-only cells must stay safe" (of_profile "dup")
  in
  (* 4. Some partition cell stalls: the degradation is detectable, not
     silent. *)
  let* () =
    if
      List.exists
        (fun c -> match c.verdict with Monitor.Safe_stalled _ -> true | _ -> false)
        (of_profile "partition")
    then Ok ()
    else fail "no partition cell ever stalled"
  in
  (* 5. The planted reliability violation still breaks safety — the gate
     validates that the harness can distinguish unsafe from stalled. The
     planted cell lives outside the grid (ablated protocol, bespoke fault
     profile), so it is run here and appended to the returned matrix. *)
  let p, pr, l = planted_unsafe in
  let planted_cell =
    run_cell ~options:Instances.default_options ~protocol:p ~profile:pr ~level:l
  in
  let* () =
    match planted_cell.verdict with
    | Monitor.Unsafe _ -> Ok ()
    | v ->
      fail "planted cell %s/%s/L%d came back %s, expected unsafe" p pr l
        (verdict_tag v)
  in
  Ok (cells @ [ planted_cell ])
