open Mewc_prelude
open Mewc_crypto
open Mewc_sim

type value = string

type bb_value =
  | Sender_signed of { value : value; sg : Pki.Sig.t }
  | Idk_cert of Certificate.t

let sender_purpose = "bb-val"
let idk_purpose = "bb-idk"
let helpreq_purpose = "bb-helpreq"

module Bb_value = struct
  type t = bb_value

  (* Two sender-signed wrappers of the same value are the same agreement
     value, as are two idk certificates from the same phase: equality (and
     the encoding that signatures bind) ignores which particular shares
     authenticate the claim. *)
  let encode = function
    | Sender_signed { value; _ } -> "snd|" ^ value
    | Idk_cert qc -> "idk|" ^ Certificate.payload qc

  let equal a b = String.equal (encode a) (encode b)
  let compare a b = String.compare (encode a) (encode b)
  let words = function Sender_signed _ -> 2 | Idk_cert _ -> 1

  let pp fmt = function
    | Sender_signed { value; _ } -> Format.fprintf fmt "<%s>sender" value
    | Idk_cert qc -> Format.fprintf fmt "QCidk(j=%s)" (Certificate.payload qc)
end

module Fallback_bb = struct
  include Mewc_fallback.Echo_phase_king.Make (Bb_value)

  type nonrec value = bb_value
end

module W = Weak_ba.Make (Bb_value) (Fallback_bb)

type msg =
  | Send of { value : value; sg : Pki.Sig.t }
  | Vet_help_req of { phase : int; sg : Pki.Sig.t }
  | Vet_value of { phase : int; value : bb_value }
  | Vet_idk of { phase : int; share : Pki.Sig.t }
  | Vet_bcast of { phase : int; value : bb_value }
  | Wba of W.msg

type decision = Decided of value | No_decision

let equal_decision a b =
  match (a, b) with
  | Decided x, Decided y -> String.equal x y
  | No_decision, No_decision -> true
  | Decided _, No_decision | No_decision, Decided _ -> false

let pp_decision fmt = function
  | Decided v -> Format.fprintf fmt "decide(%s)" v
  | No_decision -> Format.pp_print_string fmt "decide(⊥)"

let words = function
  | Send _ -> 2
  | Vet_help_req _ -> 2
  | Vet_value { value; _ } -> 1 + Bb_value.words value
  | Vet_idk _ -> 2
  | Vet_bcast { value; _ } -> 1 + Bb_value.words value
  | Wba m -> W.words m

let pp_msg fmt = function
  | Send { value; _ } -> Format.fprintf fmt "send(%s)" value
  | Vet_help_req { phase; _ } -> Format.fprintf fmt "vet-help-req(j=%d)" phase
  | Vet_value { phase; value } ->
    Format.fprintf fmt "vet-value(j=%d, %a)" phase Bb_value.pp value
  | Vet_idk { phase; _ } -> Format.fprintf fmt "vet-idk(j=%d)" phase
  | Vet_bcast { phase; value } ->
    Format.fprintf fmt "vet-bcast(j=%d, %a)" phase Bb_value.pp value
  | Wba m -> Format.fprintf fmt "wba:%a" W.pp_msg m

let bb_valid ~pki ~cfg ~sender v =
  match v with
  | Sender_signed { value; sg } ->
    Pid.equal (Pki.Sig.signer sg) sender
    && Pki.verify pki sg
         ~msg:
           (Certificate.signed_message ~purpose:sender_purpose ~payload:value)
  | Idk_cert qc ->
    Certificate.verify_as pki qc ~k:(Config.small_quorum cfg) ~purpose:idk_purpose

type vet_scratch = {
  mutable sender_signed_answer : bb_value option;  (* leader: best answer *)
  idk_shares : Certificate.Tally.t;  (* leader *)
  mutable help_req_seen : bool;
  mutable bcast_recv : bb_value option;
}

let fresh_scratch ~pki ~cfg j =
  {
    sender_signed_answer = None;
    idk_shares =
      Certificate.Tally.create pki ~k:(Config.small_quorum cfg)
        ~purpose:idk_purpose ~payload:(string_of_int j);
    help_req_seen = false;
    bcast_recv = None;
  }

type state = {
  cfg : Config.t;
  pki : Pki.t;
  secret : Pki.Secret.t;
  pid : Pid.t;
  sender : Pid.t;
  input : value option;
  start_slot : int;
  scratch : (int, vet_scratch) Hashtbl.t;
  mutable vi : bb_value option;
  mutable initiated : bool;
  mutable wba : W.state option;
  mutable pending_wba : W.msg Envelope.t list;  (* reversed *)
}

(* Slot layout: slot 0 = sender dissemination; vetting phase j in 1..n spans
   slots 1+3(j-1) .. 3+3(j-1) (help-req, answers, leader broadcast); the
   leader broadcast of phase j is processed at the first slot of phase j+1;
   the weak BA starts right after the last vetting phase. *)
let vet_base j = 1 + (3 * (j - 1))
let wba_start cfg = 1 + (3 * cfg.Config.n)
let horizon cfg = wba_start cfg + W.horizon cfg

let leader j cfg = Pid.rotating_leader ~n:cfg.Config.n ~phase:j

let init ~cfg ~pki ~secret ~pid ~sender ~input ~start_slot =
  Composition.note ~user:"Byzantine Broadcast" ~uses:"weak BA";
  Composition.note ~user:"Byzantine Broadcast" ~uses:"unique validity (BB_valid)";
  {
    cfg;
    pki;
    secret;
    pid;
    sender;
    input;
    start_slot;
    scratch = Hashtbl.create 16;
    vi = None;
    initiated = false;
    wba = None;
    pending_wba = [];
  }

let scratch_of st j =
  match Hashtbl.find_opt st.scratch j with
  | Some s -> s
  | None ->
    let s = fresh_scratch ~pki:st.pki ~cfg:st.cfg j in
    Hashtbl.add st.scratch j s;
    s

let decision st =
  match st.wba with
  | None -> None
  | Some w -> (
    match W.decision w with
    | None -> None
    | Some (W.Value (Sender_signed { value; _ })) -> Some (Decided value)
    | Some (W.Value (Idk_cert _)) | Some W.Bot -> Some No_decision)

let decided_at st =
  match st.wba with None -> None | Some w -> W.decided_at w

let vetting_phase_initiated st = st.initiated
let adopted_value st = st.vi

let fallback_entered st =
  match st.wba with None -> false | Some w -> W.fallback_entered w

let ingest st ~rel env =
  let cfg = st.cfg in
  let n = cfg.Config.n in
  let src = env.Envelope.src in
  match env.Envelope.msg with
  | Send { value; sg } ->
    (* Line 3–4: adopt the sender's signed value received in round 1. *)
    if
      rel = 1
      && Pid.equal src st.sender
      && bb_valid ~pki:st.pki ~cfg ~sender:st.sender (Sender_signed { value; sg })
      && st.vi = None
    then st.vi <- Some (Sender_signed { value; sg })
  | Vet_help_req { phase = j; sg } ->
    if j >= 1 && j <= n && rel = vet_base j + 1 then begin
      let msg =
        Certificate.signed_message ~purpose:helpreq_purpose
          ~payload:(string_of_int j)
      in
      if Pid.equal (Pki.Sig.signer sg) (leader j cfg) && Pki.verify st.pki sg ~msg
      then (scratch_of st j).help_req_seen <- true
    end
  | Vet_value { phase = j; value } ->
    if
      j >= 1 && j <= n
      && rel = vet_base j + 2
      && Pid.equal st.pid (leader j cfg)
    then begin
      match value with
      | Sender_signed _ when bb_valid ~pki:st.pki ~cfg ~sender:st.sender value ->
        let sc = scratch_of st j in
        if sc.sender_signed_answer = None then sc.sender_signed_answer <- Some value
      | Sender_signed _ | Idk_cert _ -> ()
    end
  | Vet_idk { phase = j; share } ->
    if
      j >= 1 && j <= n
      && rel = vet_base j + 2
      && Pid.equal st.pid (leader j cfg)
    then begin
      ignore
        (Certificate.Tally.add (scratch_of st j).idk_shares share
          : Pki.Tally.verdict)
    end
  | Vet_bcast { phase = j; value } ->
    (* Line 28: return the leader's value iff BB_valid holds. *)
    if
      j >= 1 && j <= n
      && rel = vet_base j + 3
      && Pid.equal src (leader j cfg)
      && bb_valid ~pki:st.pki ~cfg ~sender:st.sender value
    then (scratch_of st j).bcast_recv <- Some value
  | Wba inner ->
    if rel >= wba_start cfg then
      st.pending_wba <- { env with Envelope.msg = inner } :: st.pending_wba

let emit st ~slot ~rel =
  let cfg = st.cfg in
  let n = cfg.Config.n in
  if rel = 0 then begin
    if Pid.equal st.pid st.sender then begin
      match st.input with
      | Some v ->
        let sg =
          Certificate.share st.pki st.secret ~purpose:sender_purpose ~payload:v
        in
        (* The sender adopts its own signed value directly. *)
        st.vi <- Some (Sender_signed { value = v; sg });
        Process.broadcast ~n (Send { value = v; sg })
      | None -> invalid_arg "Adaptive_bb: the sender needs an input"
    end
    else []
  end
  else if rel < wba_start cfg then begin
    let j = ((rel - 1) / 3) + 1 in
    let off = (rel - 1) mod 3 in
    let lead = leader j cfg in
    let am_leader = Pid.equal st.pid lead in
    (* Line 7–8: adopt the previous phase's vetted value first. *)
    (if off = 0 && j > 1 then
       match (scratch_of st (j - 1)).bcast_recv with
       | Some v -> st.vi <- Some v
       | None -> ());
    match off with
    | 0 ->
      if am_leader && st.vi = None then begin
        st.initiated <- true;
        let sg =
          Certificate.share st.pki st.secret ~purpose:helpreq_purpose
            ~payload:(string_of_int j)
        in
        Process.broadcast ~n (Vet_help_req { phase = j; sg })
      end
      else []
    | 1 ->
      if (scratch_of st j).help_req_seen then begin
        match st.vi with
        | Some (Sender_signed _ as v) -> [ (Vet_value { phase = j; value = v }, lead) ]
        | Some (Idk_cert _) | None ->
          (* A held idk certificate cannot help the leader form anything;
             contribute a fresh idk signature instead, which is what the
             paper's Lemma 9 needs from every process lacking a
             sender-signed value. *)
          let share =
            Certificate.share st.pki st.secret ~purpose:idk_purpose
              ~payload:(string_of_int j)
          in
          [ (Vet_idk { phase = j; share }, lead) ]
      end
      else []
    | 2 ->
      if am_leader && st.initiated && rel = vet_base j + 2 then begin
        let sc = scratch_of st j in
        match sc.sender_signed_answer with
        | Some v -> Process.broadcast ~n (Vet_bcast { phase = j; value = v })
        | None -> (
          match Certificate.Tally.certificate sc.idk_shares with
          | Some qc ->
            Process.broadcast ~n (Vet_bcast { phase = j; value = Idk_cert qc })
          | None -> [])
      end
      else []
    | _ -> assert false
  end
  else begin
    (* Weak BA section. *)
    if rel = wba_start cfg && st.wba = None then begin
      (* Catch the very last vetting broadcast (phase n). *)
      (match (scratch_of st n).bcast_recv with
      | Some v -> st.vi <- Some v
      | None -> ());
      let input =
        match st.vi with
        | Some v -> v
        | None ->
          (* Lemma 11 rules this out on the reliable network, but injected
             message loss can leave a correct process with nothing vetted.
             Degrade instead of crashing the run: propose a placeholder
             whose signature does not cover its claimed value, so
             [bb_valid] rejects it everywhere (this process included) and
             weak BA drifts toward ⊥ — a stall the harness can classify,
             not a bogus decision. *)
          let sg =
            Certificate.share st.pki st.secret ~purpose:sender_purpose
              ~payload:"?"
          in
          Sender_signed { value = "⊥"; sg }
      in
      st.wba <-
        Some
          (W.init ~cfg ~pki:st.pki ~secret:st.secret ~pid:st.pid ~input
             ~validate:(bb_valid ~pki:st.pki ~cfg ~sender:st.sender)
             ~start_slot:(st.start_slot + wba_start cfg) ())
    end;
    match st.wba with
    | None -> []
    | Some w ->
      let inbox = List.rev st.pending_wba in
      st.pending_wba <- [];
      let w', sends = W.step ~slot ~inbox w in
      st.wba <- Some w';
      List.map (fun (m, dst) -> (Wba m, dst)) sends
  end

(* Inbox-free actions: the sender's dissemination at slot 0, a phase
   leader's help request when it still lacks a vetted value (vetting offset
   0), the unconditional weak-BA init at [wba_start], then the embedded
   weak BA's own timer. Everything else in the vetting phases — including
   the off-0 adoption of the previous phase's broadcast — reads scratch
   state that is populated strictly by same-slot ingestion ([Vet_bcast] of
   phase j-1 lands exactly at phase j's offset-0 slot), so a delivery
   already wakes it. *)
let wake ~slot st =
  let cfg = st.cfg in
  let rel = slot - st.start_slot in
  if rel < 0 then false
  else if rel = 0 then Pid.equal st.pid st.sender
  else if rel < wba_start cfg then
    (rel - 1) mod 3 = 0
    && Pid.equal st.pid (leader (((rel - 1) / 3) + 1) cfg)
    && st.vi = None
  else if rel = wba_start cfg then true
  else match st.wba with Some w -> W.wake ~slot w | None -> false

let step ~slot ~inbox st =
  let rel = slot - st.start_slot in
  if rel < 0 then (st, [])
  else begin
    List.iter (fun env -> ingest st ~rel env) inbox;
    (st, emit st ~slot ~rel)
  end
