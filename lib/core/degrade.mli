(** The graceful-degradation harness: how each protocol fails when the
    paper's network model is stressed.

    The paper proves its adaptive word bounds under a perfectly
    synchronous, reliable network (§2). This harness sweeps every
    {!Protocol.S} instance over a (protocol × fault-profile × intensity)
    grid of {!Mewc_sim.Faults} plans — crashes, send omissions,
    duplication, δ-violating delays, per-link drops, and partitions — and
    classifies each run with {!Mewc_sim.Monitor.classify}:

    - {!Mewc_sim.Monitor.Safe_live} — safety and liveness both held;
    - {!Mewc_sim.Monitor.Safe_stalled} — safety held but some correct
      non-faulted process never decided (a detectable stall);
    - {!Mewc_sim.Monitor.Unsafe} — a safety monitor fired (disagreement,
      budget or metering nonsense): the silent failure mode.

    Safety is checked online (budget, agreement, metering); liveness is
    the termination monitor replayed over the recorded [mewc-trace/4]
    trace, so the trace round-trip — fault events included — is exercised
    on every cell. The word/latency envelope monitors are deliberately
    left out: they are calibrated against corruption counts, and a fault
    plan leaves [f = 0] while legitimately changing spending.

    Every cell runs from a seed derived from the cell's identity alone, so
    the matrix is reproducible cell by cell and independent of [jobs]. *)

open Mewc_sim

val cfg : Config.t
(** The grid's system size: [Config.optimal ~n:9] (t = 4), the fuzz
    suite's size. *)

val protocols : string list
(** The five instances, in grid order:
    [fallback; weak-ba; bb; binary-bb; strong-ba]. *)

val profiles : string list
(** Fault profiles, in grid order:
    [crash; omission; dup; delay; drop; partition]. *)

val levels : int
(** Intensity levels per profile (0..[levels - 1]; level 0 is always the
    fault-free control). *)

val plan_of : profile:string -> level:int -> Faults.plan
(** The fault plan of a grid cell. Level 0 is {!Faults.none} for every
    profile; higher levels escalate: more crashed/omitting processes, a
    higher dup/drop probability, a longer delay, a bigger partition
    island. Also accepts the off-grid ["split"] profile — the planted
    cell's plan, a partition of island [{0,2,3,4}] over slots [[0,7)]
    timed across weak BA's first two phases. Raises [Invalid_argument]
    on an unknown profile or level. *)

type cell = {
  protocol : string;
  profile : string;
  level : int;
  seed : int64;  (** the run's trusted-setup seed, from the cell identity *)
  plan : Faults.plan;
  verdict : Monitor.classification;
  f : int;  (** realized corruptions — 0, the adversary is honest *)
  faulty : int;  (** processes hit by an injected process fault *)
  undecided : int;  (** correct non-faulted processes left undecided *)
  words : int;
  slots : int;
}

val seed_of : protocol:string -> profile:string -> level:int -> int64

val run_cell :
  options:'m Instances.options ->
  protocol:string ->
  profile:string ->
  level:int ->
  cell
(** One grid cell, reproducible from the cell coordinates alone: the cell
    identity fixes the seed, the recorded trace, the safety monitor suite
    and the fault plan, overriding those fields of [options]. What
    [options] contributes are the engine knobs — [scheduler], [shards],
    [profile] — and the cell is invariant under all of them (pass
    {!Instances.default_options} when in doubt). Raises [Invalid_argument]
    on an unknown protocol/profile/level. *)

val grid : (string * string * int) list
(** All (protocol, profile, level) cells, row-major in the orders above. *)

val run_all : ?jobs:int -> ?progress:(unit -> unit) -> unit -> cell list
(** The whole matrix, optionally domain-parallel ({!Mewc_prelude.Pool});
    the result is independent of [jobs]. [progress] is called once per
    completed cell — sequential passes only. *)

val matrix_to_json : cell list -> Mewc_prelude.Jsonx.t
(** Schema [mewc-degrade/1]: the grid dimensions plus one record per cell
    (verdict, violated monitor if any, fault plan, seed, counters). *)

val render : cell list -> string
(** An ASCII degradation matrix: one row per (protocol, profile), one
    column per level, [ok] / [st] / [UN] verdicts — followed by a
    per-level p50/p90/p99 word-cost summary (nearest-rank,
    {!Mewc_obs.Metrics.percentile_of_list}). *)

val unsafe_cells : cell list -> cell list

(** {2 The self-validating smoke gate} *)

val planted_unsafe : string * string * int
(** The pinned off-grid cell — [("weak-ba-ablated", "split", 1)] — whose
    reliability violation is known to break safety: weak BA ablated to
    quorum [t] (two disjoint quorums fit in [n = 2t+1]) under a partition
    timed across its first two phases, so each side finalizes its own
    leader's value. The degradation analogue of the fuzzer's planted
    ablation; note the fuzzer's own [t+1] ablation is still loss-safe
    ([2(t+1) > n]), which is why the planted quorum is one weaker.
    {!smoke} fails if the cell stops reproducing. *)

val smoke : ?jobs:int -> unit -> (cell list, string) result
(** Run the full matrix and check the degradation envelope the paper's
    assumptions predict: every level-0 control and every crash-only cell
    (≤ t crashes) is [Safe_live]; duplication-only cells are never
    [Unsafe]; at least one partition cell is [Safe_stalled]; and the
    {!planted_unsafe} cell — run off-grid and appended to the returned
    matrix — is [Unsafe]. Returns grid plus planted cell on success. *)
