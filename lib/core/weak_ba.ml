open Mewc_prelude
open Mewc_crypto
open Mewc_sim

module Make (V : Value.S) (F : Fallback_intf.FALLBACK with type value = V.t) =
struct
  let propose_purpose = "wba-propose"
  let commit_purpose = "wba-commit"
  let finalize_purpose = "wba-fin"
  let helpreq_purpose = "wba-helpreq"
  let phased_payload phase v = Printf.sprintf "%d|%s" phase (V.encode v)

  type msg =
    | Propose of { phase : int; value : V.t; sg : Pki.Sig.t }
    | Vote of { phase : int; value : V.t; share : Pki.Sig.t }
    | Commit_answer of { phase : int; value : V.t; level : int; qc : Certificate.t }
    | Commit_bcast of { phase : int; value : V.t; level : int; qc : Certificate.t }
    | Decide_share of { phase : int; value : V.t; share : Pki.Sig.t }
    | Finalized of { phase : int; value : V.t; qc : Certificate.t }
    | Help_req of { sg : Pki.Sig.t }
    | Help of { phase : int; value : V.t; qc : Certificate.t }
    | Fallback_cert of {
        qc : Certificate.t;
        decision : (int * V.t * Certificate.t) option;
      }
    | Fb of F.msg

  type outcome = Value of V.t | Bot

  let equal_outcome a b =
    match (a, b) with
    | Value x, Value y -> V.equal x y
    | Bot, Bot -> true
    | Value _, Bot | Bot, Value _ -> false

  let pp_outcome fmt = function
    | Value v -> V.pp fmt v
    | Bot -> Format.pp_print_string fmt "⊥"

  let words = function
    | Propose _ -> 3
    | Vote _ -> 3
    | Commit_answer _ | Commit_bcast _ -> 4
    | Decide_share _ -> 3
    | Finalized _ -> 3
    | Help_req _ -> 1
    | Help _ -> 3
    | Fallback_cert { decision; _ } -> 1 + (match decision with Some _ -> 3 | None -> 0)
    | Fb m -> F.words m

  let pp_msg fmt = function
    | Propose { phase; value; _ } ->
      Format.fprintf fmt "propose(j=%d, %a)" phase V.pp value
    | Vote { phase; value; _ } -> Format.fprintf fmt "vote(j=%d, %a)" phase V.pp value
    | Commit_answer { phase; value; level; _ } ->
      Format.fprintf fmt "commit-answer(j=%d, %a, lvl=%d)" phase V.pp value level
    | Commit_bcast { phase; value; level; _ } ->
      Format.fprintf fmt "commit(j=%d, %a, lvl=%d)" phase V.pp value level
    | Decide_share { phase; value; _ } ->
      Format.fprintf fmt "decide(j=%d, %a)" phase V.pp value
    | Finalized { phase; value; _ } ->
      Format.fprintf fmt "finalized(j=%d, %a)" phase V.pp value
    | Help_req _ -> Format.pp_print_string fmt "help_req"
    | Help { value; _ } -> Format.fprintf fmt "help(%a)" V.pp value
    | Fallback_cert _ -> Format.pp_print_string fmt "fallback-cert"
    | Fb m -> Format.fprintf fmt "fb:%a" F.pp_msg m

  type phase_scratch = {
    mutable proposal : (V.t * bool) option;
        (* first leader-signed proposal this phase; bool = validate(v) *)
    mutable commit_answers : (int * V.t * Certificate.t) list;  (* leader *)
    mutable votes : (V.t * Certificate.Tally.t) list;  (* leader *)
    mutable decide_shares : (V.t * Certificate.Tally.t) list;  (* leader *)
    mutable commit_recv : (V.t * int * Certificate.t) option;
        (* commit broadcast accepted this phase *)
  }

  let fresh_scratch () =
    {
      proposal = None;
      commit_answers = [];
      votes = [];
      decide_shares = [];
      commit_recv = None;
    }

  type state = {
    cfg : Config.t;
    pki : Pki.t;
    secret : Pki.Secret.t;
    pid : Pid.t;
    input : V.t;
    validate : V.t -> bool;
    start_slot : int;
    quorum_override : int option;
    scratch : (int, phase_scratch) Hashtbl.t;
    mutable decision : outcome option;
    mutable decide_proof : (int * V.t * Certificate.t) option;
    mutable commit : V.t option;
    mutable commit_proof : Certificate.t option;
    mutable commit_level : int;
    mutable initiated : bool;
    mutable sent_help : bool;
    help_sigs : Certificate.Tally.t;
    mutable help_answers : (msg * Pid.t) list;  (* queued during ingestion *)
    mutable bu_decision : V.t;
    mutable bu_proof : (int * V.t * Certificate.t) option;
    mutable fb_sched : int option;  (* absolute slot *)
    mutable fb_rebroadcast : Certificate.t option;  (* to send this slot *)
    mutable fb_state : F.state option;
    mutable pending_fb : F.msg Envelope.t list;  (* reversed *)
    mutable decided_in_phase : int option;
    mutable decided_at : int option;
  }

  let phases cfg = cfg.Config.t + 1
  let base j = 5 * (j - 1)
  let help_base cfg = 5 * phases cfg

  (* Fallback certificates are honoured when they arrive within this window
     after the help round; see the .mli for why later ones are moot. *)
  let fb_window_end cfg = help_base cfg + 4
  let latest_fb_start cfg = fb_window_end cfg + 2

  let horizon cfg = latest_fb_start cfg + F.horizon cfg ~round_len:2 + 1

  let leader j cfg = Pid.rotating_leader ~n:cfg.Config.n ~phase:j

  let init ?quorum_override ~cfg ~pki ~secret ~pid ~input ~validate
      ~start_slot () =
    Composition.note ~user:"weak BA" ~uses:"threshold signatures";
    {
      cfg;
      pki;
      secret;
      pid;
      input;
      validate;
      start_slot;
      quorum_override;
      scratch = Hashtbl.create 16;
      decision = None;
      decide_proof = None;
      commit = None;
      commit_proof = None;
      commit_level = 0;
      initiated = false;
      sent_help = false;
      help_sigs =
        Certificate.Tally.create pki ~k:(Config.small_quorum cfg)
          ~purpose:helpreq_purpose ~payload:"";
      help_answers = [];
      bu_decision = input;
      bu_proof = None;
      fb_sched = None;
      fb_rebroadcast = None;
      fb_state = None;
      pending_fb = [];
      decided_in_phase = None;
      decided_at = None;
    }

  let decision st = st.decision
  let decided_at st = st.decided_at
  let initiated_phase st = st.initiated
  let sent_help_request st = st.sent_help
  let fallback_entered st = st.fb_state <> None
  let commit_level st = st.commit_level
  let decided_in_phase st = st.decided_in_phase

  let scratch_of st j =
    match Hashtbl.find_opt st.scratch j with
    | Some s -> s
    | None ->
      let s = fresh_scratch () in
      Hashtbl.add st.scratch j s;
      s

  let quorum st =
    match st.quorum_override with
    | Some q -> q
    | None -> Config.big_quorum st.cfg

  let verify_commit_qc st ~level ~value qc =
    Certificate.verify_as st.pki qc ~k:(quorum st) ~purpose:commit_purpose
    && String.equal (Certificate.payload qc) (phased_payload level value)

  let verify_finalize_qc st ~phase ~value qc =
    Certificate.verify_as st.pki qc ~k:(quorum st) ~purpose:finalize_purpose
    && String.equal (Certificate.payload qc) (phased_payload phase value)

  let decide_from_finalize st ~phase ~value ~qc =
    if st.decision = None then begin
      st.decision <- Some (Value value);
      st.decide_proof <- Some (phase, value, qc);
      st.decided_in_phase <- Some phase
    end

  (* ---- message ingestion -------------------------------------------- *)

  let ingest st ~rel env =
    let cfg = st.cfg in
    let src = env.Envelope.src in
    match env.Envelope.msg with
    | Propose { phase = j; value; sg } ->
      if j >= 1 && j <= phases cfg && rel = base j + 1 then begin
        let msg =
          Certificate.signed_message ~purpose:propose_purpose
            ~payload:(phased_payload j value)
        in
        if
          Pid.equal (Pki.Sig.signer sg) (leader j cfg)
          && Pki.verify st.pki sg ~msg
        then begin
          let sc = scratch_of st j in
          if sc.proposal = None then
            sc.proposal <- Some (value, st.validate value)
        end
      end
    | Vote { phase = j; value; share } ->
      if
        j >= 1 && j <= phases cfg
        && rel = base j + 2
        && Pid.equal st.pid (leader j cfg)
      then begin
        let sc = scratch_of st j in
        let tl =
          match List.find_opt (fun (v, _) -> V.equal v value) sc.votes with
          | Some (_, tl) -> tl
          | None ->
            let tl =
              Certificate.Tally.create st.pki ~k:(quorum st)
                ~purpose:commit_purpose ~payload:(phased_payload j value)
            in
            sc.votes <- (value, tl) :: sc.votes;
            tl
        in
        ignore (Certificate.Tally.add tl share : Pki.Tally.verdict)
      end
    | Commit_answer { phase = j; value; level; qc } ->
      if
        j >= 1 && j <= phases cfg
        && rel = base j + 2
        && Pid.equal st.pid (leader j cfg)
        && level >= 1 && level < j
        && verify_commit_qc st ~level ~value qc
        && List.length (scratch_of st j).commit_answers <= cfg.Config.n
      then begin
        let sc = scratch_of st j in
        sc.commit_answers <- (level, value, qc) :: sc.commit_answers
      end
    | Commit_bcast { phase = j; value; level; qc } ->
      (* Algorithm 4 line 43: accept in round 4 of phase j, from the phase's
         leader, when the level dominates ours and the certificate checks. *)
      if
        j >= 1 && j <= phases cfg
        && rel = base j + 3
        && Pid.equal src (leader j cfg)
        && level >= 1 && level <= j
        && level >= st.commit_level
        && verify_commit_qc st ~level ~value qc
      then begin
        let sc = scratch_of st j in
        if sc.commit_recv = None then sc.commit_recv <- Some (value, level, qc)
      end
    | Decide_share { phase = j; value; share } ->
      if
        j >= 1 && j <= phases cfg
        && rel = base j + 4
        && Pid.equal st.pid (leader j cfg)
      then begin
        let sc = scratch_of st j in
        let tl =
          match List.find_opt (fun (v, _) -> V.equal v value) sc.decide_shares with
          | Some (_, tl) -> tl
          | None ->
            let tl =
              Certificate.Tally.create st.pki ~k:(quorum st)
                ~purpose:finalize_purpose ~payload:(phased_payload j value)
            in
            sc.decide_shares <- (value, tl) :: sc.decide_shares;
            tl
        in
        ignore (Certificate.Tally.add tl share : Pki.Tally.verdict)
      end
    | Finalized { phase = j; value; qc } ->
      (* A valid finalize certificate is unique system-wide (Lemma 15), so
         honouring it whenever it surfaces is safe and only helps
         termination. *)
      if j >= 1 && j <= phases cfg && verify_finalize_qc st ~phase:j ~value qc
      then decide_from_finalize st ~phase:j ~value ~qc
    | Help_req { sg } ->
      if rel = help_base cfg + 1 then begin
        match Certificate.Tally.add st.help_sigs sg with
        | Pki.Tally.Invalid -> ()
        | Pki.Tally.Added | Pki.Tally.Duplicate -> (
          (* Every valid request gets an answer, repeats included — only
             the tally's signer count deduplicates. *)
          match (st.decision, st.decide_proof) with
          | Some (Value _), Some (j, v, qc) ->
            st.help_answers <-
              (Help { phase = j; value = v; qc }, src) :: st.help_answers
          | _ -> ())
      end
    | Help { phase = j; value; qc } ->
      if
        rel = help_base cfg + 2
        && j >= 1 && j <= phases cfg
        && st.validate value
        && verify_finalize_qc st ~phase:j ~value qc
      then decide_from_finalize st ~phase:j ~value ~qc
    | Fallback_cert { qc; decision } ->
      if
        rel >= help_base cfg + 1
        && rel <= fb_window_end cfg
        && Certificate.verify_as st.pki qc ~k:(Config.small_quorum cfg)
             ~purpose:helpreq_purpose
      then begin
        (match decision with
        | Some (j, v, fqc)
          when st.decision = None
               && j >= 1 && j <= phases cfg
               && st.validate v
               && verify_finalize_qc st ~phase:j ~value:v fqc ->
          (* Line 17–20: during the safety window, adopt any decision value
             already reached in the system as our fallback input. *)
          st.bu_decision <- v;
          st.bu_proof <- Some (j, v, fqc)
        | _ -> ());
        if st.fb_sched = None then begin
          st.fb_sched <- Some (st.start_slot + rel + 2);
          st.fb_rebroadcast <- Some qc
        end
      end
    | Fb inner ->
      st.pending_fb <- { env with Envelope.msg = inner } :: st.pending_fb

  (* ---- emission ------------------------------------------------------ *)

  let emit_phase_slot st ~rel =
    let cfg = st.cfg in
    let n = cfg.Config.n in
    let j = (rel / 5) + 1 in
    let off = rel mod 5 in
    let lead = leader j cfg in
    let am_leader = Pid.equal st.pid lead in
    let sc = scratch_of st j in
    match off with
    | 0 ->
      if am_leader && st.decision = None then begin
        st.initiated <- true;
        let sg =
          Certificate.share st.pki st.secret ~purpose:propose_purpose
            ~payload:(phased_payload j st.input)
        in
        Process.broadcast ~n (Propose { phase = j; value = st.input; sg })
      end
      else []
    | 1 -> (
      match sc.proposal with
      | Some (v, valid) -> (
        match st.commit with
        | None ->
          if valid then
            let share =
              Certificate.share st.pki st.secret ~purpose:commit_purpose
                ~payload:(phased_payload j v)
            in
            [ (Vote { phase = j; value = v; share }, lead) ]
          else []
        | Some cv -> (
          match st.commit_proof with
          | Some qc ->
            [ (Commit_answer { phase = j; value = cv; level = st.commit_level; qc },
               lead) ]
          | None -> []))
      | None -> [])
    | 2 ->
      if am_leader then begin
        match
          List.sort (fun (a, _, _) (b, _, _) -> Int.compare b a) sc.commit_answers
        with
        | (level, v, qc) :: _ ->
          Process.broadcast ~n (Commit_bcast { phase = j; value = v; level; qc })
        | [] -> (
          let ready =
            List.filter (fun (_, tl) -> Certificate.Tally.complete tl) sc.votes
            |> List.sort (fun (a, _) (b, _) -> V.compare a b)
          in
          match ready with
          | (v, tl) :: _ -> (
            match Certificate.Tally.certificate tl with
            | Some qc ->
              Process.broadcast ~n
                (Commit_bcast { phase = j; value = v; level = j; qc })
            | None -> [])
          | [] -> [])
      end
      else []
    | 3 -> (
      match sc.commit_recv with
      | Some (v, level, qc) ->
        st.commit <- Some v;
        st.commit_proof <- Some qc;
        st.commit_level <- level;
        let share =
          Certificate.share st.pki st.secret ~purpose:finalize_purpose
            ~payload:(phased_payload j v)
        in
        [ (Decide_share { phase = j; value = v; share }, lead) ]
      | None -> [])
    | 4 ->
      if am_leader then begin
        let ready =
          List.filter
            (fun (_, tl) -> Certificate.Tally.complete tl)
            sc.decide_shares
          |> List.sort (fun (a, _) (b, _) -> V.compare a b)
        in
        match ready with
        | (v, tl) :: _ -> (
          match Certificate.Tally.certificate tl with
          | Some qc ->
            Process.broadcast ~n (Finalized { phase = j; value = v; qc })
          | None -> [])
        | [] -> []
      end
      else []
    | _ -> assert false

  let step_fallback st ~slot =
    match st.fb_state with
    | None -> []
    | Some fb ->
      let inbox = List.rev st.pending_fb in
      st.pending_fb <- [];
      let fb', sends = F.step ~slot ~inbox fb in
      st.fb_state <- Some fb';
      (match F.decision fb' with
      | Some fv when st.decision = None ->
        (* Lines 25–29: adopt a valid fallback output, else ⊥. *)
        st.decision <- Some (if st.validate fv then Value fv else Bot)
      | _ -> ());
      List.map (fun (m, dst) -> (Fb m, dst)) sends

  (* The event-driven wake timer. Below [help_base] the only inbox-free
     action is the phase leader's proposal at offset 0 (offsets 1–4 emit
     from scratch state populated strictly by same-slot ingestion, so a
     delivery already wakes them). At and past [help_base]: the help
     request (offset 0, undecided only), the backup-decision latch
     (offset 2), the scheduled fallback start, and the live fallback's own
     round boundaries. [fb_rebroadcast] and the help-answer queue are
     set-and-consumed within a single step (their ingestion guards pin them
     to the very slot that flushes them), so they never need a timer. *)
  let wake ~slot st =
    let cfg = st.cfg in
    let rel = slot - st.start_slot in
    if rel < 0 then false
    else begin
      let hb = help_base cfg in
      if rel < hb then
        rel mod 5 = 0
        && Pid.equal st.pid (leader ((rel / 5) + 1) cfg)
        && st.decision = None
      else
        (rel = hb && st.decision = None)
        || rel = hb + 2
        || st.fb_sched = Some slot
        || (match st.fb_state with Some fb -> F.wake ~slot fb | None -> false)
    end

  let step ~slot ~inbox st =
    let cfg = st.cfg in
    let rel = slot - st.start_slot in
    if rel < 0 then (st, [])
    else begin
      List.iter (fun env -> ingest st ~rel env) inbox;
      let hb = help_base cfg in
      let sends =
        if rel < hb then emit_phase_slot st ~rel
        else begin
          let out = ref [] in
          if rel = hb && st.decision = None then begin
            st.sent_help <- true;
            let sg =
              Certificate.share st.pki st.secret ~purpose:helpreq_purpose
                ~payload:""
            in
            out := Process.broadcast ~n:cfg.Config.n (Help_req { sg })
          end;
          if rel = hb + 1 then begin
            out := st.help_answers @ !out;
            st.help_answers <- [];
            if Certificate.Tally.complete st.help_sigs && st.fb_sched = None
            then begin
              match Certificate.Tally.certificate st.help_sigs with
              | Some qc ->
                st.fb_sched <- Some (slot + 2);
                out :=
                  Process.broadcast ~n:cfg.Config.n
                    (Fallback_cert { qc; decision = st.decide_proof })
                  @ !out
              | None -> ()
            end
          end;
          if rel = hb + 2 then begin
            (* Line 15: the backup decision defaults to our own state. *)
            match st.decision with
            | Some (Value v) ->
              st.bu_decision <- v;
              st.bu_proof <- st.decide_proof
            | Some Bot | None -> ()
          end;
          (match st.fb_rebroadcast with
          | Some qc ->
            st.fb_rebroadcast <- None;
            let decision =
              match st.decide_proof with Some p -> Some p | None -> st.bu_proof
            in
            out :=
              Process.broadcast ~n:cfg.Config.n (Fallback_cert { qc; decision })
              @ !out
          | None -> ());
          (match st.fb_sched with
          | Some start when slot = start && st.fb_state = None ->
            Composition.note ~user:"weak BA" ~uses:"A-fallback (echo-phase-king)";
            st.fb_state <-
              Some
                (F.init ~cfg ~pki:st.pki ~secret:st.secret ~pid:st.pid
                   ~input:st.bu_decision ~start_slot:start ~round_len:2)
          | _ -> ());
          out := step_fallback st ~slot @ !out;
          !out
        end
      in
      if st.decision <> None && st.decided_at = None then
        st.decided_at <- Some slot;
      (st, sends)
    end
end
