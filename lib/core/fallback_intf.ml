(** The [A_fallback] black box (paper §6).

    The weak BA (and §7's strong BA) embed a quadratic synchronous strong BA
    as a sub-protocol. This is its required interface: a slot-driven state
    machine with per-process start slots and a configurable round duration
    [round_len] = δ'/δ, providing agreement, termination within a static
    horizon, and strong unanimity as long as correct processes start within
    one slot of each other and [round_len >= 2].

    [Mewc_fallback.Echo_phase_king.Make] implements this signature (see
    DESIGN.md for the substitution note vs the paper's Momose–Ren
    instantiation); any other strong BA can be plugged in. *)

module type FALLBACK = sig
  type value
  type msg
  type state

  val words : msg -> int

  val init :
    cfg:Mewc_sim.Config.t ->
    pki:Mewc_crypto.Pki.t ->
    secret:Mewc_crypto.Pki.Secret.t ->
    pid:Mewc_prelude.Pid.t ->
    input:value ->
    start_slot:int ->
    round_len:int ->
    state

  val step :
    slot:int ->
    inbox:msg Mewc_sim.Envelope.t list ->
    state ->
    state * (msg * Mewc_prelude.Pid.t) list

  val decision : state -> value option

  val wake : slot:int -> state -> bool
  (** The {!Mewc_sim.Process.t} wake-timer contract, lifted to the fallback:
      when [wake ~slot st] is [false], [step ~slot ~inbox:[] st] must be a
      no-op (state structurally unchanged, no sends). Host protocols
      delegate to this while a fallback instance is live, so the
      event-driven scheduler can skip its quiet slots. *)

  val horizon : Mewc_sim.Config.t -> round_len:int -> int
  (** Slots from the earliest correct start until every correct process has
      decided (accounting for one slot of start skew). *)

  val pp_msg : Format.formatter -> msg -> unit
end
