(** The mewc-throughput/1 experiment: what the replicated log delivers.

    The paper's headline is words {e per agreement}; a log-replication
    service cares about words {e per committed batch} and how fast batches
    land. This module sweeps the {!Service} layer over a deterministic
    grid — system size × workload preset × pipeline depth — and records
    four service-level metrics per cell: decided batches per 1000 slots,
    protocol words per decision, batch fill, and p50/p99 request commit
    latency in slots.

    Every cell's seed derives from the cell's identity alone, so the grid
    reproduces cell by cell; the whole document is byte-deterministic and
    the CI smoke gate re-proves it on every build, together with the
    pipelined-vs-sequential oracle equality and the fault-free SLO
    retention.

    The SLO sweep is the chaos harness turned traffic-facing: the same
    {!Degrade.plan_of} crash/drop escalation, but scored by {e throughput
    retention} — the fraction of fault-free decisions-per-1k-slots the
    service still delivers at each intensity level. *)

open Mewc_sim

val schema : string
(** ["mewc-throughput/1"]. *)

(** {2 The grid} *)

val depths : (string * (Config.t -> int)) list
(** Pipeline depths as named offset policies: ["seq"] (offset = stride,
    no overlap), ["half"] (stride/2) and ["deep"] (stride/4, floor 1). *)

val offset_of : Config.t -> string -> int
(** Resolve a depth name; raises [Invalid_argument] on unknown names. *)

val grid : (int * string * string) list
(** All (n, workload preset, depth) cells: n ∈ \{9, 13\} ×
    {!Workload.preset_names} × depth names, row-major. *)

val traffic_slots : int
(** Slots of open-loop traffic generated per cell (32). *)

val seed_of : n:int -> workload:string -> int64
(** The cell's trusted-setup and traffic seed, from its identity alone.
    Depth is deliberately {e not} part of the identity: the pipeline
    offset is a scheduling policy, so cells differing only in depth run
    the exact same traffic and setup — which is what makes the
    deep-vs-sequential oracle comparison in {!smoke} meaningful. *)

type cell = {
  n : int;
  workload : string;
  depth : string;
  seed : int64;
  report : Service.report;
}

val run_cell :
  ?options:(Repeated_bb.state, Repeated_bb.msg) Engine.options ->
  n:int ->
  workload:string ->
  depth:string ->
  unit ->
  cell
(** One cell: generate {!traffic_slots} of the preset's traffic from the
    cell seed, pack and run it through {!Service.finalize} under a
    crash-free adversary. [options] contributes the engine knobs
    (scheduler, shards) — the cell is invariant under them. Raises
    [Invalid_argument] on unknown presets or depths. *)

val run_grid :
  ?options:(Repeated_bb.state, Repeated_bb.msg) Engine.options ->
  ?progress:(unit -> unit) ->
  (int * string * string) list ->
  cell list
(** [progress] is called once per completed cell. *)

(** {2 The SLO sweep} *)

type slo_point = {
  fault_profile : string;  (** ["crash"] or ["drop"] *)
  level : int;  (** {!Degrade.plan_of} intensity; 0 = fault-free control *)
  decisions_per_1k_slots : float;
  committed : int;  (** requests committed *)
  undecided : int;  (** requests stalled by the faults *)
  p99_latency : int;
  retention : float;
      (** decisions-per-1k-slots at this level / at level 0; 1.0 at the
          control by construction *)
}

val slo_grid : (string * int) list
(** (fault profile, level) pairs: crash and drop at every
    {!Degrade.levels} intensity. *)

val slo_sweep :
  ?options:(Repeated_bb.state, Repeated_bb.msg) Engine.options ->
  ?progress:(unit -> unit) ->
  unit ->
  slo_point list
(** The pinned SLO configuration — n = 9, ["steady"] traffic, ["half"]
    pipeline — swept over {!slo_grid}. The sweep owns [options.faults]
    (each point installs its own plan); scheduler/shards pass through.
    [progress] is called once per completed point. *)

(** {2 The ledger} *)

type entry = {
  rev : string;  (** git revision, supplied by the caller; ["unknown"] ok *)
  date : string;
  cells : cell list;
  slo : slo_point list;
}

val entry_to_json : entry -> Mewc_prelude.Jsonx.t
val to_json : Mewc_prelude.Jsonx.t list -> Mewc_prelude.Jsonx.t
(** Wrap raw entry documents in the schema-tagged ledger document. *)

val load : string -> (Mewc_prelude.Jsonx.t list, string) result
(** The ledger's entries, raw. A missing file is an empty ledger; a
    wrong-schema or unparsable file is an [Error]. Entries are kept as
    JSON — the ledger is append-only provenance, not a diff input. *)

val append : string -> entry -> (int, string) result
(** Load, append, atomic rewrite (write-then-rename); the new count. *)

val render : entry -> string
(** Human-readable tables: the grid's four metrics per cell, then the
    SLO retention matrix. *)

(** {2 The smoke gate} *)

val smoke :
  ?options:(Repeated_bb.state, Repeated_bb.msg) Engine.options ->
  unit ->
  (entry, string) result
(** The CI gate, on a tiny sub-grid (n = 9 only):

    - determinism — the sub-grid plus SLO sweep, run twice, renders
      byte-identical [mewc-throughput/1] JSON;
    - the oracle invariant — the ["deep"] pipeline commits the exact same
      log as ["seq"] on every workload while finishing in strictly fewer
      slots (the throughput win is real, not a metric artifact);
    - the SLO control — every fault profile retains exactly 1.0 at
      level 0.

    Returns the entry (rev/date ["smoke"]) for rendering on success. *)
