open Mewc_prelude
open Mewc_crypto
open Mewc_sim

(* --- Byzantine Broadcast ------------------------------------------------ *)

let bb_equivocating_sender ~cfg ~sender ~v1 ~v2 ~pki ~secrets =
  let n = cfg.Config.n in
  Strategies.scripted
    ~name:(Printf.sprintf "bb-equivocating-sender(p%d)" sender)
    ~victims:[ sender ]
    ~script:(fun ~slot ~pid ~inbox:_ ->
      if slot = 0 && Pid.equal pid sender then begin
        let signed v =
          Certificate.share pki secrets.(sender)
            ~purpose:Adaptive_bb.sender_purpose ~payload:v
        in
        let sg1 = signed v1 and sg2 = signed v2 in
        List.filter_map
          (fun p ->
            if Pid.equal p sender then None
            else if p mod 2 = 0 then
              Some (Adaptive_bb.Send { value = v1; sg = sg1 }, p)
            else Some (Adaptive_bb.Send { value = v2; sg = sg2 }, p))
          (Pid.all ~n)
      end
      else [])

let bb_selective_sender ~cfg ~sender ~value ~recipients ~pki ~secrets =
  ignore cfg;
  Strategies.scripted
    ~name:(Printf.sprintf "bb-selective-sender(p%d)" sender)
    ~victims:[ sender ]
    ~script:(fun ~slot ~pid ~inbox:_ ->
      if slot = 0 && Pid.equal pid sender then begin
        let sg =
          Certificate.share pki secrets.(sender)
            ~purpose:Adaptive_bb.sender_purpose ~payload:value
        in
        List.map (fun p -> (Adaptive_bb.Send { value; sg }, p)) recipients
      end
      else [])

let bb_fake_idk_leader ~cfg ~byz ~pki ~secrets =
  match byz with
  | [] -> invalid_arg "bb_fake_idk_leader: need Byzantine pids"
  | leader :: _ ->
    let n = cfg.Config.n in
    let vet_phase = leader (* pid j leads vetting phase j *) in
    let bcast_slot = Adaptive_bb.vet_base vet_phase + 2 in
    Strategies.scripted
      ~name:(Printf.sprintf "bb-fake-idk-leader(p%d)" leader)
      ~victims:byz
      ~script:(fun ~slot ~pid ~inbox:_ ->
        if Pid.equal pid leader && slot = bcast_slot then begin
          (* All Byzantine idk shares for this phase: f <= t of them, which
             is at most t — one short of the quorum BB_valid demands. *)
          let shares =
            List.map
              (fun p ->
                Certificate.share pki secrets.(p)
                  ~purpose:Adaptive_bb.idk_purpose
                  ~payload:(string_of_int vet_phase))
              byz
          in
          match
            Certificate.make pki ~k:(List.length byz)
              ~purpose:Adaptive_bb.idk_purpose
              ~payload:(string_of_int vet_phase) shares
          with
          | Some under_sized ->
            Process.broadcast_others ~n ~self:pid
              (Adaptive_bb.Vet_bcast
                 { phase = vet_phase; value = Adaptive_bb.Idk_cert under_sized })
          | None -> []
        end
        else [])

(* --- Weak BA ------------------------------------------------------------ *)

module W = Instances.Weak_str
module E = Instances.Epk_str

let weak_machine ~cfg ~pki ~secrets ~input pid =
  {
    Process.init =
      W.init ~cfg ~pki ~secret:secrets.(pid) ~pid ~input
        ~validate:(fun _ -> true) ~start_slot:0 ();
    step = (fun ~slot ~inbox st -> W.step ~slot ~inbox st);
    wake = None;
  }

let wba_exclusive_finalizer ~cfg ~leader ~lucky ~pki ~secrets =
  Strategies.deviant
    ~name:(Printf.sprintf "wba-exclusive-finalizer(p%d->p%d)" leader lucky)
    ~victims:[ leader ]
    ~machine:(weak_machine ~cfg ~pki ~secrets ~input:"byz")
    ~mangle:(fun ~slot:_ ~pid:_ ~inbox:_ sends ->
      List.filter
        (fun (m, dst) ->
          match m with W.Finalized _ -> Pid.equal dst lucky | _ -> true)
        sends)

let wba_busy_byz_leaders ~cfg ~leaders ~pki ~secrets =
  Strategies.deviant
    ~name:(Printf.sprintf "wba-busy-byz-leaders(%d)" (List.length leaders))
    ~victims:leaders
    ~machine:(weak_machine ~cfg ~pki ~secrets ~input:"byz")
    ~mangle:(fun ~slot:_ ~pid:_ ~inbox:_ sends ->
      List.filter
        (fun (m, _) -> match m with W.Finalized _ -> false | _ -> true)
        sends)

let wba_help_req_spammers ~cfg ~spammers ~pki ~secrets =
  (* Spammers follow the protocol (so the phases succeed and everyone
     decides) and additionally inject signed help requests at the help
     round even though they need no help. *)
  let hb = W.help_base cfg in
  Strategies.deviant
    ~name:(Printf.sprintf "wba-help-req-spammers(%d)" (List.length spammers))
    ~victims:spammers
    ~machine:(weak_machine ~cfg ~pki ~secrets ~input:"byz")
    ~mangle:(fun ~slot ~pid ~inbox:_ sends ->
      if slot = hb then begin
        let sg =
          Certificate.share pki secrets.(pid) ~purpose:W.helpreq_purpose
            ~payload:""
        in
        Process.broadcast_others ~n:cfg.Config.n ~self:pid (W.Help_req { sg })
        @ sends
      end
      else sends)

(* Shared behaviour of the "lonely decider" family: Byzantine processes
   p1..pt run the honest protocol, except that (a) none of them ever sends a
   help request, (b) only p1 initiates its phase, and (c) p1 reveals the
   finalize certificate to [lucky] alone. With lucky = p_(t+1) — the last
   rotating leader — exactly one correct process decides during the phases
   and every other correct one must go through the help round: the paper's
   §6 scenario ("a Byzantine leader causes the single correct leader to
   decide and not initiate its phase"). *)
let lonely_mangle ~lucky ~extra ~slot ~pid ~inbox sends =
  let censored =
    List.filter
      (fun (m, dst) ->
        match m with
        | W.Help_req _ -> false
        | W.Propose _ -> pid = 1
        | W.Finalized _ -> pid = 1 && Mewc_prelude.Pid.equal dst lucky
        | _ -> true)
      sends
  in
  extra ~slot ~pid ~inbox @ censored

let wba_lonely_decider ~cfg ~lucky ~pki ~secrets =
  let victims = List.init cfg.Config.t (fun i -> i + 1) in
  Strategies.deviant
    ~name:(Printf.sprintf "wba-lonely-decider(lucky=p%d)" lucky)
    ~victims
    ~machine:(weak_machine ~cfg ~pki ~secrets ~input:"byz")
    ~mangle:(lonely_mangle ~lucky ~extra:(fun ~slot:_ ~pid:_ ~inbox:_ -> []))

let wba_late_fallback_cert ~cfg ~victim ~pki ~secrets =
  (* On top of the lonely-decider scenario (which leaves t correct processes
     asking for help while fewer than t+1 correct help requests exist), one
     Byzantine process harvests the correct help-request signatures, tops
     them up with Byzantine ones, and delivers the resulting fallback
     certificate to [victim] alone at the very edge of the acceptance
     window. *)
  let t = cfg.Config.t in
  let victims = List.init t (fun i -> i + 1) in
  let lucky = t + 1 in
  let hb = W.help_base cfg in
  let window_end = W.fb_window_end cfg in
  let harvested : Pki.Sig.t Pid.Map.t ref = ref Pid.Map.empty in
  List.iter
    (fun p ->
      harvested :=
        Pid.Map.add p
          (Certificate.share pki secrets.(p) ~purpose:W.helpreq_purpose
             ~payload:"")
          !harvested)
    victims;
  let extra ~slot ~pid ~inbox =
    if pid <> 2 then []
    else if slot = hb + 1 then begin
      List.iter
        (fun env ->
          match env.Envelope.msg with
          | W.Help_req { sg } ->
            harvested := Pid.Map.add (Pki.Sig.signer sg) sg !harvested
          | _ -> ())
        inbox;
      []
    end
    else if slot = window_end - 1 then begin
      (* Sent now, the certificate arrives exactly at the last slot of the
         victim's acceptance window. *)
      let shares = List.map snd (Pid.Map.bindings !harvested) in
      match
        Certificate.make pki ~k:(Config.small_quorum cfg)
          ~purpose:W.helpreq_purpose ~payload:"" shares
      with
      | Some qc -> [ (W.Fallback_cert { qc; decision = None }, victim) ]
      | None -> []
    end
    else []
  in
  Strategies.deviant ~name:"wba-late-fallback-cert" ~victims
    ~machine:(weak_machine ~cfg ~pki ~secrets ~input:"byz")
    ~mangle:(lonely_mangle ~lucky ~extra)

let wba_invalid_fallback_king ~cfg ~byz ~evil ~pki ~secrets =
  match byz with
  | [] -> invalid_arg "wba_invalid_fallback_king: need Byzantine pids"
  | king :: _ ->
    (* The Byzantine processes stay silent through the phases so no correct
       process can decide (the big quorum is out of reach); all correct
       processes then form the fallback certificate themselves and start
       A_fallback at a deterministic slot S. The first Byzantine pid must be
       the king of the fallback's first phase: it proposes an unjustified
       invalid value, collects votes, certifies and finalizes it — driving
       the weak BA to its ⊥ outcome (possible here because the correct
       inputs diverge, so more than one valid value exists). *)
    let fb_start = W.help_base cfg + 3 in
    let slot_of_round r = fb_start + (2 * r) in
    let epk_phase = king (* p_k is king of phase k *) in
    let propose_slot = slot_of_round (E.base epk_phase + 1) in
    let commit_slot = slot_of_round (E.base epk_phase + 4) in
    let votes : Pki.Sig.t Pid.Map.t ref = ref Pid.Map.empty in
    Strategies.scripted
      ~name:(Printf.sprintf "wba-invalid-fallback-king(p%d)" king)
      ~victims:byz
      ~script:(fun ~slot ~pid ~inbox ->
        if not (Pid.equal pid king) then []
        else begin
          (* Harvest votes for the evil value as they come in. *)
          List.iter
            (fun env ->
              match env.Envelope.msg with
              | W.Fb { E.body = E.Vote { phase; value; share }; _ }
                when phase = epk_phase && String.equal value evil ->
                votes := Pid.Map.add (Pki.Sig.signer share) share !votes
              | _ -> ())
            inbox;
          if slot = propose_slot then begin
            let p =
              {
                E.p_phase = epk_phase;
                p_value = evil;
                p_just = E.Unjustified;
                p_king_sig =
                  Certificate.share pki secrets.(king)
                    ~purpose:E.propose_purpose
                    ~payload:(E.phased_payload epk_phase evil);
                p_just_valid = true;
              }
            in
            Process.broadcast_others ~n:cfg.Config.n ~self:pid
              (W.Fb { E.round = E.base epk_phase + 1; body = E.Propose p })
          end
          else if slot = commit_slot then begin
            let shares = List.map snd (Pid.Map.bindings !votes) in
            match
              Certificate.make pki ~k:(Config.small_quorum cfg)
                ~purpose:E.commit_purpose
                ~payload:(E.phased_payload epk_phase evil)
                shares
            with
            | Some qc ->
              Process.broadcast_others ~n:cfg.Config.n ~self:pid
                (W.Fb
                   {
                     E.round = E.base epk_phase + 4;
                     body = E.Commit { phase = epk_phase; value = evil; qc };
                   })
            | None -> []
          end
          else []
        end)

let wba_small_quorum_split ~cfg ~quorum ~v1 ~v2 ~pki ~secrets =
  (* Split-brain attack against an (ablated) weak BA running with commit /
     finalize quorums of size [quorum] (intended: t+1). The Byzantine phase-1
     leader equivocates its proposal between the even-pid and odd-pid correct
     processes, tops up each side's votes and decide shares with Byzantine
     signatures, and hands each side its own finalize certificate. With
     quorum t+1 both certificates assemble - two quorums of t+1 need not
     intersect in a correct process - and agreement is gone; with the
     paper's big quorum the same attack cannot finish a certificate for
     either side. *)
  let t = cfg.Config.t in
  let byz = List.init t (fun i -> i + 1) in
  let n = cfg.Config.n in
  let correct p = not (List.mem p byz) in
  let side_of p = if p mod 2 = 0 then `A else `B in
  let value_of_side = function `A -> v1 | `B -> v2 in
  let byz_shares ~purpose ~payload =
    List.map (fun p -> Certificate.share pki secrets.(p) ~purpose ~payload) byz
  in
  let collected_votes : (Pid.t, Pki.Sig.t) Hashtbl.t = Hashtbl.create 8 in
  let collected_decides : (Pid.t, Pki.Sig.t) Hashtbl.t = Hashtbl.create 8 in
  let targets side =
    List.filter (fun p -> correct p && side_of p = side) (Pid.all ~n)
  in
  let per_side make =
    List.concat_map
      (fun side -> List.filter_map (make (value_of_side side)) (targets side))
      [ `A; `B ]
  in
  Strategies.scripted
    ~name:(Printf.sprintf "wba-small-quorum-split(q=%d)" quorum)
    ~victims:byz
    ~script:(fun ~slot ~pid ~inbox ->
      if not (Pid.equal pid 1) then []
      else begin
        List.iter
          (fun env ->
            match env.Envelope.msg with
            | W.Vote { phase = 1; share; _ } ->
              Hashtbl.replace collected_votes (Pki.Sig.signer share) share
            | W.Decide_share { phase = 1; share; _ } ->
              Hashtbl.replace collected_decides (Pki.Sig.signer share) share
            | _ -> ())
          inbox;
        let side_shares table p =
          Hashtbl.fold
            (fun signer sg acc ->
              if correct signer && side_of signer = side_of p then sg :: acc
              else acc)
            table []
        in
        match slot with
        | 0 ->
          per_side (fun v p ->
              let sg =
                Certificate.share pki secrets.(1) ~purpose:W.propose_purpose
                  ~payload:(W.phased_payload 1 v)
              in
              Some (W.Propose { phase = 1; value = v; sg }, p))
        | 2 ->
          per_side (fun v p ->
              let payload = W.phased_payload 1 v in
              let shares =
                byz_shares ~purpose:W.commit_purpose ~payload
                @ side_shares collected_votes p
              in
              Certificate.make pki ~k:quorum ~purpose:W.commit_purpose ~payload
                shares
              |> Option.map (fun qc ->
                     (W.Commit_bcast { phase = 1; value = v; level = 1; qc }, p)))
        | 4 ->
          per_side (fun v p ->
              let payload = W.phased_payload 1 v in
              let shares =
                byz_shares ~purpose:W.finalize_purpose ~payload
                @ side_shares collected_decides p
              in
              Certificate.make pki ~k:quorum ~purpose:W.finalize_purpose ~payload
                shares
              |> Option.map (fun qc -> (W.Finalized { phase = 1; value = v; qc }, p)))
        | _ -> []
      end)


let wba_fuzzer ~cfg ~victims ~seed ~pki ~secrets =
  let n = cfg.Config.n in
  let phases = cfg.Config.t + 1 in
  let rng = Rng.create seed in
  (* Pool of values to lie about, plus every certificate observed on the
     wire (to replay out of context). *)
  let values = [| "v"; "w"; "fuzz"; "x0"; "x1"; "" |] in
  let certs : Certificate.t list ref = ref [] in
  let remember qc = if List.length !certs < 64 then certs := qc :: !certs in
  let harvest env =
    match env.Envelope.msg with
    | W.Commit_answer { qc; _ } | W.Commit_bcast { qc; _ }
    | W.Finalized { qc; _ } | W.Help { qc; _ } ->
      remember qc
    | W.Fallback_cert { qc; decision } ->
      remember qc;
      (match decision with Some (_, _, fqc) -> remember fqc | None -> ())
    | W.Propose _ | W.Vote _ | W.Decide_share _ | W.Help_req _ | W.Fb _ -> ()
  in
  let random_value () = values.(Rng.int rng (Array.length values)) in
  let random_phase () = 1 + Rng.int rng phases in
  let random_dst () = Rng.int rng n in
  let random_msg pid =
    let value = random_value () in
    let phase = random_phase () in
    let share purpose payload = Certificate.share pki secrets.(pid) ~purpose ~payload in
    match Rng.int rng 8 with
    | 0 ->
      W.Propose
        { phase; value; sg = share W.propose_purpose (W.phased_payload phase value) }
    | 1 ->
      W.Vote
        { phase; value; share = share W.commit_purpose (W.phased_payload phase value) }
    | 2 ->
      W.Decide_share
        { phase; value; share = share W.finalize_purpose (W.phased_payload phase value) }
    | 3 -> W.Help_req { sg = share W.helpreq_purpose "" }
    | 4 | 5 -> (
      match !certs with
      | [] -> W.Help_req { sg = share W.helpreq_purpose "" }
      | cs -> (
        let qc = List.nth cs (Rng.int rng (List.length cs)) in
        match Rng.int rng 4 with
        | 0 -> W.Commit_bcast { phase; value; level = random_phase (); qc }
        | 1 -> W.Commit_answer { phase; value; level = random_phase (); qc }
        | 2 -> W.Finalized { phase; value; qc }
        | _ -> W.Fallback_cert { qc; decision = None }))
    | 6 ->
      W.Help { phase; value; qc = (match !certs with [] -> Certificate.make pki ~k:1 ~purpose:"junk" ~payload:"j" [ share "junk" "j" ] |> Option.get | c :: _ -> c) }
    | _ ->
      let round = Rng.int rng 40 in
      W.Fb
        {
          E.round;
          body =
            (if Rng.bool rng then
               E.Input { value; share = share E.input_purpose value }
             else
               E.Vote
                 {
                   phase = random_phase ();
                   value;
                   share = share E.commit_purpose (E.phased_payload phase value);
                 });
        }
  in
  Strategies.scripted
    ~name:(Printf.sprintf "wba-fuzzer(%d victims, seed %Ld)" (List.length victims) seed)
    ~victims
    ~script:(fun ~slot:_ ~pid ~inbox ->
      List.iter harvest inbox;
      List.init (Rng.int rng 4) (fun _ -> (random_msg pid, random_dst ())))

(* --- Strong BA (Algorithm 5) -------------------------------------------- *)

module S = Instances.Strong_bool

let sba_withholding_leader ~cfg ~leader ~lucky ~pki ~secrets =
  Strategies.deviant
    ~name:(Printf.sprintf "sba-withholding-leader(p%d->p%d)" leader lucky)
    ~victims:[ leader ]
    ~machine:(fun pid ->
      {
        Process.init =
          S.init ~cfg ~pki ~secret:secrets.(pid) ~pid ~leader ~input:true
            ~start_slot:0;
        step = (fun ~slot ~inbox st -> S.step ~slot ~inbox st);
        wake = None;
      })
    ~mangle:(fun ~slot:_ ~pid:_ ~inbox:_ sends ->
      List.filter
        (fun (m, dst) ->
          match m with S.Decide _ -> Pid.equal dst lucky | _ -> true)
        sends)

(* --- Echo phase king ----------------------------------------------------- *)

let epk_lock_carryover_king ~cfg ~target ~pki ~secrets =
  let king = 1 in
  Strategies.deviant
    ~name:(Printf.sprintf "epk-lock-carryover-king(->p%d)" target)
    ~victims:[ king ]
    ~machine:(fun pid ->
      {
        Process.init =
          E.init ~cfg ~pki ~secret:secrets.(pid) ~pid ~input:"king-value"
            ~start_slot:0 ~round_len:1;
        step = (fun ~slot ~inbox st -> E.step ~slot ~inbox st);
        wake = None;
      })
    ~mangle:(fun ~slot:_ ~pid:_ ~inbox:_ sends ->
      List.filter
        (fun ((m : E.msg), dst) ->
          match m.E.body with
          | E.Commit _ -> Pid.equal dst target
          | E.Ack _ | E.Decided _ -> false
          | E.Input _ | E.Status _ | E.Propose _ | E.Echo _ | E.Vote _ -> true)
        sends)

let epk_equivocating_king ~cfg ~king ~v1 ~v2 ~pki ~secrets =
  let n = cfg.Config.n in
  let propose_round = E.base king + 1 in
  Strategies.scripted
    ~name:(Printf.sprintf "epk-equivocating-king(p%d)" king)
    ~victims:[ king ]
    ~script:(fun ~slot ~pid ~inbox:_ ->
      if slot = 0 then begin
        (* Participate in the input exchange so the run looks normal. *)
        let share =
          Certificate.share pki secrets.(pid) ~purpose:E.input_purpose
            ~payload:v1
        in
        Process.broadcast_others ~n ~self:pid
          { E.round = 0; body = E.Input { value = v1; share } }
      end
      else if slot = propose_round then begin
        let proposal v =
          {
            E.p_phase = king;
            p_value = v;
            p_just = E.Unjustified;
            p_king_sig =
              Certificate.share pki secrets.(king) ~purpose:E.propose_purpose
                ~payload:(E.phased_payload king v);
            p_just_valid = true;
          }
        in
        let p1 = proposal v1 and p2 = proposal v2 in
        List.filter_map
          (fun p ->
            if Pid.equal p king then None
            else if p mod 2 = 0 then
              Some ({ E.round = propose_round; body = E.Propose p1 }, p)
            else Some ({ E.round = propose_round; body = E.Propose p2 }, p))
          (Pid.all ~n)
      end
      else [])
