(** Ready-made protocol instantiations over the two value domains the paper
    considers (multi-valued and binary), with the fallback black box plugged
    in — each packaged as a first-class {!Protocol.S} module — plus the one
    generic runner {!run} used by tests, examples, benchmarks and the fuzzer.

    Every run installs the instance's standard online monitor suite
    ({!Mewc_sim.Monitor}): corruption-budget sanity, agreement-once-decided
    (with termination), the protocol's adaptive word bound at the realized
    [f], the causal-cone word bound per decision (same envelope, measured
    over the decision's happens-before cone), its early-termination latency
    envelope, and meter/engine consistency. A violated invariant raises {!Mewc_sim.Monitor.Violation}
    with the run's [seed]/[shuffle_seed] appended, so every failure is a
    replayable counterexample. The one exception: weak BA with
    [quorum_override] (the deliberately unsafe ablation) keeps only the
    budget and metering monitors, since breaking agreement is the point. *)

module Epk_str : module type of Mewc_fallback.Echo_phase_king.Make (Mewc_sim.Value.Str)
(** The echo-phase-king instance over multi-valued inputs, with its full
    interface (wire format included, for attacks). *)

module Fallback_str :
  Fallback_intf.FALLBACK
    with type value = string
     and type msg = Epk_str.msg
     and type state = Epk_str.state
(** The same instance, viewed as the [A_fallback] black box. *)

module Weak_str : module type of Weak_ba.Make (Mewc_sim.Value.Str) (Fallback_str)
(** Multi-valued adaptive weak BA. *)

module Epk_bool : module type of Mewc_fallback.Echo_phase_king.Make (Mewc_sim.Value.Bool)

module Fallback_bool :
  Fallback_intf.FALLBACK
    with type value = bool
     and type msg = Epk_bool.msg
     and type state = Epk_bool.state
(** The [A_fallback] instance over binary inputs, for §7's strong BA. *)

module Strong_bool : module type of Ff_strong_ba.Make (Fallback_bool)
(** Binary strong BA, linear when failure-free. *)

module Binary_bb_bool : module type of Binary_bb.Make (Fallback_bool)
(** Binary BB via the §5 reduction over Algorithm 5: O(n) when the sender is
    correct and f = 0. *)

type status =
  | Decided  (** every correct, non-faulted process decided *)
  | Undecided of Mewc_prelude.Pid.t list
      (** the run exhausted its horizon with these correct non-faulted
          processes undecided — a stall, first-class rather than inferred
          from [-1] latency. Expected under injected faults; a protocol bug
          on a reliable run (and then caught by the termination monitor). *)

val pp_status : Format.formatter -> status -> unit

type 'o agreement_outcome = {
  decisions : 'o option array;
      (** per process; [None] for processes that were corrupted or (bug)
          never decided *)
  decided_slots : int option array;
      (** per process, the protocol's [decided_at] — the async runtime's
          differential gate compares these against its own *)
  decided_strs : string option array;
      (** per process, the protocol's printed decision (the monitors'
          agreement projection) *)
  corrupted : Mewc_prelude.Pid.t list;
  f : int;
  faulty : Mewc_prelude.Pid.t list;
      (** processes hit by an injected process fault, in first-event order *)
  status : status;
  words : int;  (** words sent by correct processes — the paper's measure *)
  messages : int;
  byz_words : int;
  signatures : int;
  slots : int;
  fallback_runs : int;  (** correct processes that entered [A_fallback] *)
  nonsilent_phases : int;  (** non-silent phases led by correct processes *)
  help_requests : int;  (** help requests sent by correct processes *)
  latency : int;
      (** slots (= δ units) until the {e last} correct non-faulted process
          decided; -1 if one of them never decided (see [status]) *)
  meter : Mewc_sim.Meter.snapshot;
      (** per-slot and per-process word/message series for this run *)
  crypto : Mewc_crypto.Pki.cache_stats;
      (** hit/miss counters of this run's PKI memo tables (share-tag and
          aggregate-tag caches) *)
  trace_json : Mewc_prelude.Jsonx.t option;
      (** the run's structured trace (schema ["mewc-trace/4"], message
          payloads rendered via the protocol's printer); [Some] iff
          [record_trace] was set *)
}

(** {2 The protocol zoo as first-class modules} *)

module Fallback_protocol : sig
  type params = {
    inputs : string array;
    round_len : int;
    start_slot : Mewc_prelude.Pid.t -> int;
        (** lets tests skew process start times by up to [round_len - 1]
            slots, as happens on the weak-BA fallback path *)
  }

  include
    Protocol.S
      with type params := params
       and type value = string
       and type state = Epk_str.state
       and type msg = Epk_str.msg
       and type decision = string
end
(** The echo-phase-king strong BA standalone (the Table-1 multi-valued
    strong-BA row). The fallback/phase/help counters are not meaningful
    here and read 0. *)

module Weak_ba_protocol : sig
  type params = {
    inputs : string array;
    validate : string -> bool;
        (** defaults to accepting every value (weak-unanimity
            instantiation) *)
    quorum_override : int option;
        (** the ablation knob of {!Weak_ba.Make.init} — unsafe by design;
            selecting it swaps in the reduced monitor suite *)
  }

  include
    Protocol.S
      with type params := params
       and type value = string
       and type state = Weak_str.state
       and type msg = Weak_str.msg
       and type decision = Weak_str.outcome
end
(** Adaptive weak BA to its static horizon. Its [spray] forger harvests
    commit/finalize shares addressed to corrupted leaders, equivocates
    proposals across even/odd destinations, and completes per-side
    certificates by topping harvested shares up with corrupted ones —
    impossible against the sound quorum, decisive against the ablation. *)

module Bb_protocol : sig
  type params = { sender : Mewc_prelude.Pid.t; input : string }

  include
    Protocol.S
      with type params := params
       and type value = string
       and type state = Adaptive_bb.state
       and type msg = Adaptive_bb.msg
       and type decision = Adaptive_bb.decision
end
(** Adaptive BB; [nonsilent_phases] counts non-silent {e vetting} phases
    led by correct processes. *)

module Binary_bb_protocol : sig
  type params = { sender : Mewc_prelude.Pid.t; input : bool }

  include
    Protocol.S
      with type params := params
       and type value = bool
       and type state = Binary_bb_bool.state
       and type msg = Binary_bb_bool.msg
       and type decision = bool
end
(** Binary BB; [nonsilent_phases] counts correct fast deciders. *)

module Strong_ba_protocol : sig
  type params = { leader : Mewc_prelude.Pid.t; inputs : bool array }

  include
    Protocol.S
      with type params := params
       and type value = bool
       and type state = Strong_bool.state
       and type msg = Strong_bool.msg
       and type decision = bool
end
(** §7 strong BA; [nonsilent_phases] counts correct fast deciders. *)

(** {2 Run options}

    Every run knob that is not part of the protocol's own parameters,
    gathered in one record (mirroring {!Mewc_sim.Engine.options}) so that
    adding a knob does not grow eight runner signatures in lock step.
    Start from {!default_options} and override the fields you need:

    {[
      Instances.run (module P) ~cfg
        ~options:{ Instances.default_options with seed = 7L; shards = 2 }
        ~params ~adversary ()
    ]} *)

type 'm options = {
  seed : int64;  (** trusted-setup / RNG seed (default [1L]) *)
  shuffle_seed : int64 option;
      (** permute every inbox deterministically before delivery
          ({!Mewc_sim.Engine.options.shuffle_seed}) *)
  record_trace : bool;  (** materialize the run's [mewc-trace/4] JSON *)
  monitors : 'm Mewc_sim.Monitor.t list option;
      (** [None] (default) installs the instance's standard suite — or,
          under injected faults, its model-independent safety core;
          [Some ms] installs [ms] verbatim (the fuzzer does this) *)
  profile : Mewc_sim.Profile.t option;
      (** charge engine phases, crypto hot paths and serialization to spans *)
  faults : Mewc_sim.Faults.plan;  (** default {!Mewc_sim.Faults.none} *)
  scheduler : Mewc_sim.Engine.scheduler;  (** default [`Legacy] *)
  shards : int;  (** intra-run domains (default 1) *)
  metrics : Mewc_obs.Metrics.t option;
      (** live-telemetry registry (default [None]). Threaded into
          {!Mewc_sim.Engine.options.metrics} and installed on the run's PKI
          via {!Mewc_crypto.Pki.set_metrics}, so engine and crypto counters
          accumulate while the run is in flight. *)
}

val default_options : 'm options
(** Seed [1L], in-order delivery, no trace, standard monitors, no profile,
    no faults, legacy scheduler, one shard. *)

val retarget : 'a options -> 'b options
(** The same options for a protocol with a different message type. The
    [monitors] override — the only ['m]-typed field — is dropped back to
    [None]; everything else is preserved. Generic drivers ({!Sweep},
    {!Degrade}, the fuzzer) use this to re-type one caller-supplied record
    per protocol branch. *)

(** {2 The generic runner} *)

val run :
  ('p, 's, 'm, 'd) Protocol.t ->
  cfg:Mewc_sim.Config.t ->
  ?options:'m options ->
  params:'p ->
  adversary:('s, 'm) Mewc_sim.Adversary.factory ->
  unit ->
  'd agreement_outcome
(** [run (module P) ~cfg ~params ~adversary ()] executes one run of [P] to
    its static horizon: trusted setup from [options.seed], machines from
    [P.machine], the instance's standard monitor suite — or
    [options.monitors] verbatim when given (the fuzzer installs its own
    safety suite) — and the outcome assembled from the final states, meter
    and PKI counters. With [options.profile], engine phases, the PKI's hash
    hot paths and trace serialization are charged to the given
    {!Mewc_sim.Profile.t} spans. With [options.faults], the plan is
    threaded to the engine's deliver boundary; when [options.monitors] is
    [None], the default suite is then narrowed to the model-independent
    safety core (corruption budget, agreement, metering), since neither the
    liveness envelopes nor the word bounds — calibrated against the
    realized f on a reliable network — are promised off the reliable model.
    Read stalls off [status] instead.

    [options.shards] is threaded to {!Mewc_sim.Engine.options.shards}: the
    run's step phase is sharded across that many domains, with
    byte-identical observable results — only [crypto] (the cache hit/miss
    split) may legitimately differ across shard counts, which is why it is
    excluded from equivalence fingerprints. *)

(** {2 Legacy entry points}

    Deprecated thin wrappers over {!run}: each builds the instance's
    [params] from the historical protocol-specific optional arguments and
    delegates, forwarding [?options] untouched. Behavior is identical to
    the pre-{!Protocol.S} runners; new code should call {!run} directly. *)

val run_fallback :
  cfg:Mewc_sim.Config.t ->
  ?options:Epk_str.msg options ->
  ?round_len:int ->
  ?start_slot:(Mewc_prelude.Pid.t -> int) ->
  inputs:string array ->
  adversary:(Epk_str.state, Epk_str.msg) Mewc_sim.Adversary.factory ->
  unit ->
  string agreement_outcome
(** [run (module Fallback_protocol)] with params from the arguments. *)

val run_weak_ba :
  cfg:Mewc_sim.Config.t ->
  ?options:Weak_str.msg options ->
  ?validate:(string -> bool) ->
  ?quorum_override:int ->
  inputs:string array ->
  adversary:(Weak_str.state, Weak_str.msg) Mewc_sim.Adversary.factory ->
  unit ->
  Weak_str.outcome agreement_outcome
(** [run (module Weak_ba_protocol)] with params from the arguments. *)

val run_bb :
  cfg:Mewc_sim.Config.t ->
  ?options:Adaptive_bb.msg options ->
  ?sender:Mewc_prelude.Pid.t ->
  input:string ->
  adversary:(Adaptive_bb.state, Adaptive_bb.msg) Mewc_sim.Adversary.factory ->
  unit ->
  Adaptive_bb.decision agreement_outcome
(** [run (module Bb_protocol)] with params from the arguments. *)

val run_binary_bb :
  cfg:Mewc_sim.Config.t ->
  ?options:Binary_bb_bool.msg options ->
  ?sender:Mewc_prelude.Pid.t ->
  input:bool ->
  adversary:(Binary_bb_bool.state, Binary_bb_bool.msg) Mewc_sim.Adversary.factory ->
  unit ->
  bool agreement_outcome
(** [run (module Binary_bb_protocol)] with params from the arguments. *)

val run_strong_ba :
  cfg:Mewc_sim.Config.t ->
  ?options:Strong_bool.msg options ->
  ?leader:Mewc_prelude.Pid.t ->
  inputs:bool array ->
  adversary:(Strong_bool.state, Strong_bool.msg) Mewc_sim.Adversary.factory ->
  unit ->
  bool agreement_outcome
(** [run (module Strong_ba_protocol)] with params from the arguments. *)
