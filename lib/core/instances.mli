(** Ready-made protocol instantiations over the two value domains the paper
    considers (multi-valued and binary), with the fallback black box plugged
    in, plus turnkey runners used by tests, examples and benchmarks.

    Every runner installs the standard online monitor suite
    ({!Mewc_sim.Monitor}): corruption-budget sanity, agreement-once-decided
    (with termination), the protocol's adaptive word bound at the realized
    [f], its early-termination latency envelope, and meter/engine
    consistency. A violated invariant raises {!Mewc_sim.Monitor.Violation}
    with the run's [seed]/[shuffle_seed] appended, so every failure is a
    replayable counterexample. The one exception: [run_weak_ba] with
    [quorum_override] (the deliberately unsafe ablation) keeps only the
    budget and metering monitors, since breaking agreement is the point. *)

module Epk_str : module type of Mewc_fallback.Echo_phase_king.Make (Mewc_sim.Value.Str)
(** The echo-phase-king instance over multi-valued inputs, with its full
    interface (wire format included, for attacks). *)

module Fallback_str :
  Fallback_intf.FALLBACK
    with type value = string
     and type msg = Epk_str.msg
     and type state = Epk_str.state
(** The same instance, viewed as the [A_fallback] black box. *)

module Weak_str : module type of Weak_ba.Make (Mewc_sim.Value.Str) (Fallback_str)
(** Multi-valued adaptive weak BA. *)

type 'o agreement_outcome = {
  decisions : 'o option array;
      (** per process; [None] for processes that were corrupted or (bug)
          never decided *)
  corrupted : Mewc_prelude.Pid.t list;
  f : int;
  words : int;  (** words sent by correct processes — the paper's measure *)
  messages : int;
  byz_words : int;
  signatures : int;
  slots : int;
  fallback_runs : int;  (** correct processes that entered [A_fallback] *)
  nonsilent_phases : int;  (** non-silent phases led by correct processes *)
  help_requests : int;  (** help requests sent by correct processes *)
  latency : int;
      (** slots (= δ units) until the {e last} correct process decided;
          -1 if some correct process never decided (a bug caught by tests) *)
  meter : Mewc_sim.Meter.snapshot;
      (** per-slot and per-process word/message series for this run *)
  crypto : Mewc_crypto.Pki.cache_stats;
      (** hit/miss counters of this run's PKI memo tables (share-tag and
          aggregate-tag caches) *)
  trace_json : Mewc_prelude.Jsonx.t option;
      (** the run's structured trace (schema ["mewc-trace/1"], message
          payloads rendered via the protocol's printer); [Some] iff
          [record_trace] was set *)
}

val run_fallback :
  cfg:Mewc_sim.Config.t ->
  ?seed:int64 ->
  ?shuffle_seed:int64 ->
  ?record_trace:bool ->
  ?round_len:int ->
  ?start_slot:(Mewc_prelude.Pid.t -> int) ->
  inputs:string array ->
  adversary:(Epk_str.state, Epk_str.msg) Mewc_sim.Adversary.factory ->
  unit ->
  string agreement_outcome
(** Runs the echo-phase-king strong BA standalone (the Table-1 multi-valued
    strong-BA row). [start_slot] lets tests skew process start times by up
    to [round_len - 1] slots, as happens on the weak-BA fallback path. The
    fallback/phase/help counters are not meaningful here and read 0. *)

val run_weak_ba :
  cfg:Mewc_sim.Config.t ->
  ?seed:int64 ->
  ?shuffle_seed:int64 ->
  ?record_trace:bool ->
  ?validate:(string -> bool) ->
  ?quorum_override:int ->
  inputs:string array ->
  adversary:(Weak_str.state, Weak_str.msg) Mewc_sim.Adversary.factory ->
  unit ->
  Weak_str.outcome agreement_outcome
(** Runs one weak BA execution to its static horizon. [validate] defaults to
    accepting every value (weak-unanimity instantiation). [quorum_override]
    is the ablation knob of {!Weak_ba.Make.init} — unsafe by design. *)

module Epk_bool : module type of Mewc_fallback.Echo_phase_king.Make (Mewc_sim.Value.Bool)

module Fallback_bool :
  Fallback_intf.FALLBACK
    with type value = bool
     and type msg = Epk_bool.msg
     and type state = Epk_bool.state
(** The [A_fallback] instance over binary inputs, for §7's strong BA. *)

module Strong_bool : module type of Ff_strong_ba.Make (Fallback_bool)
(** Binary strong BA, linear when failure-free. *)

val run_bb :
  cfg:Mewc_sim.Config.t ->
  ?seed:int64 ->
  ?shuffle_seed:int64 ->
  ?record_trace:bool ->
  ?sender:Mewc_prelude.Pid.t ->
  input:string ->
  adversary:(Adaptive_bb.state, Adaptive_bb.msg) Mewc_sim.Adversary.factory ->
  unit ->
  Adaptive_bb.decision agreement_outcome
(** One adaptive-BB execution; [sender] defaults to process 0. The
    [nonsilent_phases] field counts non-silent {e vetting} phases led by
    correct processes. *)

module Binary_bb_bool : module type of Binary_bb.Make (Fallback_bool)
(** Binary BB via the §5 reduction over Algorithm 5: O(n) when the sender is
    correct and f = 0. *)

val run_binary_bb :
  cfg:Mewc_sim.Config.t ->
  ?seed:int64 ->
  ?shuffle_seed:int64 ->
  ?record_trace:bool ->
  ?sender:Mewc_prelude.Pid.t ->
  input:bool ->
  adversary:(Binary_bb_bool.state, Binary_bb_bool.msg) Mewc_sim.Adversary.factory ->
  unit ->
  bool agreement_outcome
(** The [nonsilent_phases] field counts correct fast deciders. *)

val run_strong_ba :
  cfg:Mewc_sim.Config.t ->
  ?seed:int64 ->
  ?shuffle_seed:int64 ->
  ?record_trace:bool ->
  ?leader:Mewc_prelude.Pid.t ->
  inputs:bool array ->
  adversary:(Strong_bool.state, Strong_bool.msg) Mewc_sim.Adversary.factory ->
  unit ->
  bool agreement_outcome
(** One §7 strong-BA execution; [leader] defaults to process 0. The
    [nonsilent_phases] field counts correct processes that decided fast. *)
