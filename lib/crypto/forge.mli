(** Attack-legal certificate forging for adversary strategies.

    The model allows a Byzantine coalition exactly two ways to a quorum
    certificate: reuse shares it {e observed} (correct processes routed them
    through a corrupted leader), and contribute shares signed with the
    secrets of processes it has {e already corrupted}. This share bank
    packages both: [observe] harvests inbox shares (discarding any that do
    not verify against their claimed purpose/payload — the bank never holds
    junk), and [certify] tops the harvest up with corrupted shares and
    combines at threshold [k].

    It deliberately offers nothing else: there is no way to conjure a share
    for an uncorrupted process, so strategies built on it stay within the
    crypto limits by construction. Scripted attacks ({!Mewc_core.Attacks})
    and the fuzzer's share-spray behavior both build on it. *)

type t

val create : Pki.t -> t
(** An empty bank; shares verify against (and certificates form under) the
    given PKI. *)

val observe : t -> purpose:string -> payload:string -> Pki.Sig.t -> unit
(** Bank a share for the claimed purpose/payload; silently dropped unless it
    verifies. Banking the same signer twice keeps one share. *)

val harvested : t -> purpose:string -> payload:string -> int
(** Distinct signers banked for this purpose/payload. *)

val certify :
  t ->
  k:int ->
  purpose:string ->
  payload:string ->
  secrets:(Mewc_prelude.Pid.t * Pki.Secret.t) list ->
  Certificate.t option
(** Combine the banked shares, topped up with fresh shares signed by
    [secrets] (the coalition's corrupted keys), into a [k]-certificate;
    [None] if even the topped-up set has fewer than [k] distinct signers. *)
