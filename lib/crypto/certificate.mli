(** Typed quorum certificates.

    The protocols form several kinds of certificates — [QC_idk],
    [QC_commit(v)], [QC_finalized(v)], [QC_fallback], [QC_propose(v)],
    [QC_decide(v)] — all of which are threshold signatures over a tagged
    payload. This module fixes the wire encoding (purpose and payload are
    bound into the signed message) so that a certificate formed for one
    purpose can never be replayed for another. *)

type t

val purpose : t -> string
val payload : t -> string
val cardinality : t -> int

val signed_message : purpose:string -> payload:string -> string
(** The exact string that shares sign. Exposed so tests can cross-check. *)

val share : Pki.t -> Pki.Secret.t -> purpose:string -> payload:string -> Pki.Sig.t
(** One process's contribution towards a certificate. *)

val make :
  Pki.t -> k:int -> purpose:string -> payload:string -> Pki.Sig.t list -> t option
(** Batch [k] distinct valid shares into a certificate; [None] if the shares
    do not reach the threshold. *)

(** A certificate-in-progress: {!Pki.Tally} specialized to a purpose/payload
    pair. Shares are verified once, on delivery, and only signers are
    retained — the incremental replacement for collecting shares and
    re-verifying them all inside {!make}. *)
module Tally : sig
  type cert := t
  type t

  val create : Pki.t -> k:int -> purpose:string -> payload:string -> t
  val add : t -> Pki.Sig.t -> Pki.Tally.verdict
  val count : t -> int
  val mem : t -> Mewc_prelude.Pid.t -> bool
  val complete : t -> bool

  val certificate : t -> cert option
  (** [Some] iff {!complete}; byte-identical to the {!make} of the same
      valid shares. *)
end

(** The codec's window into the abstract certificate, mirroring
    {!Pki.Wire}: a decoded certificate is only a claim until {!verify}
    passes on its own purpose/payload. *)
module Wire : sig
  val view : t -> string * string * Pki.Tsig.t
  (** [(purpose, payload, tsig)]. *)

  val of_view : purpose:string -> payload:string -> tsig:Pki.Tsig.t -> t
end

val verify : Pki.t -> t -> k:int -> bool
(** [verify pki c ~k] checks the certificate carries at least [k] valid
    shares on its own purpose/payload. *)

val verify_as : Pki.t -> t -> k:int -> purpose:string -> bool
(** Additionally pins the expected purpose tag. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val words : t -> int
(** Always 1: a certificate is a threshold signature plus a constant number
    of domain values (paper §2: a word contains a constant number of
    signatures and values). The payload it authenticates is carried
    separately by the enclosing message and accounted there. *)
