type t = { purpose : string; payload : string; tsig : Pki.Tsig.t }

let purpose c = c.purpose
let payload c = c.payload
let cardinality c = Pki.Tsig.cardinality c.tsig

let signed_message ~purpose ~payload =
  (* Length-prefixed fields: no payload/purpose pair can collide with
     another. *)
  Printf.sprintf "cert|%d|%s|%d|%s" (String.length purpose) purpose
    (String.length payload) payload

let share pki secret ~purpose ~payload =
  Pki.sign pki secret (signed_message ~purpose ~payload)

let make pki ~k ~purpose ~payload shares =
  match Pki.combine pki ~k ~msg:(signed_message ~purpose ~payload) shares with
  | None -> None
  | Some tsig -> Some { purpose; payload; tsig }

module Tally = struct
  type cert = t

  type t = {
    purpose : string;
    payload : string;
    tally : Pki.Tally.t;
  }

  let create pki ~k ~purpose ~payload =
    { purpose; payload; tally = Pki.tally pki ~k ~msg:(signed_message ~purpose ~payload) }

  let add tl share = Pki.Tally.add tl.tally share
  let count tl = Pki.Tally.count tl.tally
  let mem tl p = Pki.Tally.mem tl.tally p
  let complete tl = Pki.Tally.complete tl.tally

  let certificate tl : cert option =
    Pki.Tally.certificate tl.tally
    |> Option.map (fun tsig -> { purpose = tl.purpose; payload = tl.payload; tsig })
end

module Wire = struct
  let view c = (c.purpose, c.payload, c.tsig)
  let of_view ~purpose ~payload ~tsig = { purpose; payload; tsig }
end

let verify pki c ~k =
  Pki.verify_tsig pki c.tsig ~k
    ~msg:(signed_message ~purpose:c.purpose ~payload:c.payload)

let verify_as pki c ~k ~purpose = String.equal c.purpose purpose && verify pki c ~k

let equal a b =
  String.equal a.purpose b.purpose
  && String.equal a.payload b.payload
  && Pki.Tsig.equal a.tsig b.tsig

let pp fmt c =
  Format.fprintf fmt "<%s-cert(%d) %S>" c.purpose (cardinality c) c.payload

let words _ = 1
