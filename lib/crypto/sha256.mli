(** SHA-256 (FIPS 180-4), pure OCaml.

    Used as the digest underlying signatures and threshold-signature shares,
    so that certificate payloads are bound to real message digests rather
    than to OCaml structural equality. Verified in the test suite against
    the official FIPS / NIST test vectors. *)

type t
(** A 32-byte digest. *)

val digest : string -> t
(** [digest msg] hashes the whole string. *)

val to_hex : t -> string
(** Lowercase hexadecimal rendering (64 characters). *)

val to_raw : t -> string
(** The 32 raw digest bytes. *)

val of_raw : string -> t option
(** The inverse of {!to_raw}: adopt 32 raw bytes as a digest value; [None]
    on any other length. Exists for the wire codec only — adopting bytes
    does not make them a valid tag, verification still decides that. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val hmac : key:string -> string -> t
(** HMAC-SHA256 (RFC 2104). The simulated signature scheme uses this as its
    unforgeable tag: [hmac ~key:secret msg]. Equivalent to
    [hmac_with (hmac_key key) msg]; use the keyed form when the same key
    tags many messages. *)

(** {1 Precomputed keys}

    HMAC hashes the (normalized, xor-padded) key as the first block of both
    its inner and outer digest. For a fixed key those two compressions —
    and the key normalization feeding them — never change, so {!hmac_key}
    runs them once and {!hmac_with} starts each digest from the saved
    midstates. On the simulator's one-block messages this halves the
    compression count per tag. *)

type key
(** A key with its inner/outer HMAC midstates precomputed. Immutable and
    safe to share across domains. *)

val hmac_key : string -> key
val hmac_with : key -> string -> t
(** [hmac_with (hmac_key k) msg] = [hmac ~key:k msg], bit for bit. *)
