(** Trusted public-key infrastructure with individual and threshold
    signatures (paper §2, "Cryptographic tools").

    The paper assumes an ideal signature scheme and an ideal
    [(k, n)]-threshold signature scheme in which [k] unique signatures on the
    same message batch into a single one-word certificate. We realize both
    with HMAC-SHA256 tags over a trusted setup:

    - a signature can only be produced through {!Sig.sign}, which requires
      the signer's {!Secret.t}; the adversary holds exactly the secrets of
      the processes it has corrupted, so unforgeability holds by
      construction;
    - a threshold signature can only be produced through {!Tsig.combine},
      which checks [k] valid shares from [k] distinct signers on the same
      message.

    A [Pki.t] value is the public side of the setup: it can verify anything
    but sign nothing. It also keeps counters of cryptographic operations so
    experiments can report signature complexity (Dolev–Reischuk's Omega(nt)
    lower bound counts signatures, not words). *)

type t

module Secret : sig
  type t
  (** Signing capability of one process. Handed to that process (or to the
      adversary once the process is corrupted) and to nobody else. *)

  val owner : t -> Mewc_prelude.Pid.t
end

val setup : ?seed:int64 -> ?cache_capacity:int -> n:int -> unit -> t * Secret.t array
(** [setup ~n ()] runs the trusted dealer: returns the public verifier and
    the [n] secrets, where secret [i] belongs to process [i].

    Setup also precomputes every key's HMAC midstates (see
    {!Sha256.hmac_key}) and allocates two bounded memo tables: one for
    genuine share tags keyed by [(signer, message)] — the work behind
    {!verify} — and one for aggregate tags keyed by [(signer set, message)]
    — the work {!combine} and {!verify_tsig} would otherwise redo per
    receiver. MAC keys never rotate, so cached tags cannot go stale; when a
    table reaches [cache_capacity] (default 16384 entries) it is cleared
    wholesale and refills — an epoch-clear costs recomputation, never
    correctness. {!cache_stats} reports hits and misses. *)

val n : t -> int

(** {1 Individual signatures} *)

module Sig : sig
  type t
  (** [<m>_p] — process [p]'s signature on a message. One word. *)

  val signer : t -> Mewc_prelude.Pid.t
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

val sign : t -> Secret.t -> string -> Sig.t
val verify : t -> Sig.t -> msg:string -> bool

(** {1 Threshold signatures} *)

module Tsig : sig
  type t
  (** A [(k, n)]-threshold signature: [k] unique shares batched into a
      certificate "with the same length as an individual signature"
      (paper §2) — one word. *)

  val cardinality : t -> int
  (** Number of distinct shares batched in (the [k] it was combined at). *)

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

val combine : t -> k:int -> msg:string -> Sig.t list -> Tsig.t option
(** [combine pki ~k ~msg shares] batches [k] unique valid signatures on
    [msg] into a threshold signature. Returns [None] when fewer than [k]
    distinct valid shares are supplied. Extra shares are ignored
    (deterministically: the [k] lowest signer ids are kept). *)

val verify_tsig : t -> Tsig.t -> k:int -> msg:string -> bool
(** Checks that the threshold signature is a valid batch of at least [k]
    shares on [msg]. A passing verdict is cached on the value itself (keys
    never rotate, so it cannot go stale), so verifying a broadcast
    certificate costs the hash work once per run rather than once per
    receiver; the cardinality-vs-[k] check always runs. *)

(** {1 Incremental quorum accounting}

    A tally tracks one certificate-in-progress: each share is verified once,
    when it is delivered, and only its signer is retained. This replaces the
    stockpile-then-{!combine} pattern, whose cost per certificate was
    re-verifying the whole share set — the dominant term at large [n]. *)

module Tally : sig
  type verdict =
    | Added  (** valid share from a new signer — the count advanced *)
    | Duplicate  (** valid share from an already-counted signer *)
    | Invalid  (** verification failed; the tally is unchanged *)

  type t

  val add : t -> Sig.t -> verdict
  (** Verify the share against the tally's message, then deduplicate by
      signer. Verification comes first so callers can tell a valid repeat
      from garbage. *)

  val count : t -> int
  (** Distinct valid signers accumulated so far. *)

  val mem : t -> Mewc_prelude.Pid.t -> bool
  val complete : t -> bool
  (** [count tl >= k]. *)

  val certificate : t -> Tsig.t option
  (** [Some] iff {!complete}; the result is byte-identical to what
      {!combine} would return for the same valid shares (the [k] lowest
      signer ids are kept). Counted as a combine. *)
end

val tally : t -> k:int -> msg:string -> Tally.t
(** A fresh empty tally for a [k]-of-[n] certificate on [msg]. *)

(** {1 Wire view}

    The one sanctioned window into the abstract signature types, for the
    binary codec ([Mewc_wire.Codec]) and nothing else. Reconstruction does
    not confer validity: a [Sig.t]/[Tsig.t] rebuilt from attacker-chosen
    bytes is just a claim, and {!verify}/{!verify_tsig} still decide it —
    unforgeability stays by-construction because only genuine tags pass. *)

module Wire : sig
  val sig_view : Sig.t -> Mewc_prelude.Pid.t * Sha256.t
  (** [(signer, tag)]. *)

  val sig_of_view : signer:Mewc_prelude.Pid.t -> tag:Sha256.t -> Sig.t

  val tsig_view : Tsig.t -> Mewc_prelude.Pid.t list * Sha256.t
  (** [(signers, tag)], signers in strictly ascending order. *)

  val tsig_of_view : signers:Mewc_prelude.Pid.t list -> tag:Sha256.t -> Tsig.t
  (** The rebuilt value starts with a cold verification cache. *)
end

(** {1 Operation counters} *)

val signatures_created : t -> int
val verifications_performed : t -> int
val combines_performed : t -> int

val reset_counters : t -> unit
(** Zeroes the operation counters and empties both memo tables (so
    back-to-back experiments on one PKI don't inherit warm caches). *)

(** {1 Profiling hook} *)

type timer = { time : 'a. string -> (unit -> 'a) -> 'a }
(** A polymorphic timing hook. The profiler lives above this library, so
    callers inject one (typically wrapping [Profile.span ~category:Crypto])
    rather than this module depending on it. *)

val set_timer : t -> timer option -> unit
(** Install ([Some]) or remove ([None], the default) the hook. When
    installed, the HMAC hot paths are timed under ["crypto.sign"],
    ["crypto.share_tag"] and ["crypto.aggregate_tag"] — memo-table {e miss}
    paths only, so cache hits stay a bare hashtable probe. *)

val set_metrics : t -> Mewc_obs.Metrics.t option -> unit
(** Install ([Some]) or remove ([None], the default) a live-telemetry
    registry. When installed, every sign/verify/combine also bumps the
    ["pki.signs"]/["pki.verifies"]/["pki.combines"] counters — the same
    quantities as the atomic operation counters, but visible in heartbeat
    snapshots while a run is still in flight. *)

(** {1 Cache statistics} *)

type cache_stats = {
  verify_hits : int;  (** share-tag memo hits: {!verify} skipped an HMAC *)
  verify_misses : int;
  agg_hits : int;  (** aggregate-tag memo hits: {!verify_tsig}/{!combine} skipped re-hashing k shares *)
  agg_misses : int;
}

val cache_stats : t -> cache_stats

val no_cache_stats : cache_stats
(** All-zero stats, for runners without a PKI. *)

val cache_stats_to_json : cache_stats -> Mewc_prelude.Jsonx.t
(** Counts plus derived [verify_hit_rate]/[agg_hit_rate] fields. *)

val cache_stats_of_json : Mewc_prelude.Jsonx.t -> (cache_stats, string) result
(** Inverse of {!cache_stats_to_json}; the derived rate fields are
    recomputable and therefore ignored. *)
