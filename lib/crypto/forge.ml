open Mewc_prelude

type t = {
  pki : Pki.t;
  bank : (string * string, (Pid.t, Pki.Sig.t) Hashtbl.t) Hashtbl.t;
}

let create pki = { pki; bank = Hashtbl.create 16 }

let observe t ~purpose ~payload share =
  if
    Pki.verify t.pki share ~msg:(Certificate.signed_message ~purpose ~payload)
  then begin
    let tbl =
      match Hashtbl.find_opt t.bank (purpose, payload) with
      | Some tbl -> tbl
      | None ->
        let tbl = Hashtbl.create 8 in
        Hashtbl.add t.bank (purpose, payload) tbl;
        tbl
    in
    Hashtbl.replace tbl (Pki.Sig.signer share) share
  end

let harvested t ~purpose ~payload =
  match Hashtbl.find_opt t.bank (purpose, payload) with
  | Some tbl -> Hashtbl.length tbl
  | None -> 0

let certify t ~k ~purpose ~payload ~secrets =
  let harvested =
    match Hashtbl.find_opt t.bank (purpose, payload) with
    | Some tbl -> Hashtbl.fold (fun p s acc -> (p, s) :: acc) tbl []
    | None -> []
  in
  (* One share per signer; signing is deterministic, so a harvested share
     and a freshly signed one for the same signer are interchangeable. *)
  let topped =
    List.map
      (fun (p, secret) -> (p, Certificate.share t.pki secret ~purpose ~payload))
      secrets
    @ harvested
    |> List.sort_uniq (fun (a, _) (b, _) -> Pid.compare a b)
  in
  if List.length topped < k then None
  else
    Certificate.make t.pki ~k ~purpose ~payload
      (List.filteri (fun i _ -> i < k) (List.map snd topped))
