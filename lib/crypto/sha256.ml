type t = string (* 32 raw bytes *)

let k =
  [| 0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl;
     0x59f111f1l; 0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l;
     0x243185bel; 0x550c7dc3l; 0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l;
     0xc19bf174l; 0xe49b69c1l; 0xefbe4786l; 0x0fc19dc6l; 0x240ca1ccl;
     0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal; 0x983e5152l;
     0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
     0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl;
     0x53380d13l; 0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l;
     0xa2bfe8a1l; 0xa81a664bl; 0xc24b8b70l; 0xc76c51a3l; 0xd192e819l;
     0xd6990624l; 0xf40e3585l; 0x106aa070l; 0x19a4c116l; 0x1e376c08l;
     0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al; 0x5b9cca4fl;
     0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
     0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l |]

let rotr x n = Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))
let ( +% ) = Int32.add
let ( ^% ) = Int32.logxor
let ( &% ) = Int32.logand
let lnot32 = Int32.lognot

let fresh_state () =
  [| 0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al;
     0x510e527fl; 0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l |]

(* One FIPS 180-4 compression round: fold the 64-byte block at [buf.(off)]
   into [h]. [w] is caller-provided scratch so tight loops allocate nothing. *)
let compress h w buf off =
  let word o =
    let b i = Int32.of_int (Char.code (Bytes.unsafe_get buf (o + i))) in
    Int32.logor
      (Int32.shift_left (b 0) 24)
      (Int32.logor (Int32.shift_left (b 1) 16)
         (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))
  in
  for i = 0 to 15 do
    w.(i) <- word (off + (i * 4))
  done;
  for i = 16 to 63 do
    let s0 = rotr w.(i - 15) 7 ^% rotr w.(i - 15) 18 ^% Int32.shift_right_logical w.(i - 15) 3 in
    let s1 = rotr w.(i - 2) 17 ^% rotr w.(i - 2) 19 ^% Int32.shift_right_logical w.(i - 2) 10 in
    w.(i) <- w.(i - 16) +% s0 +% w.(i - 7) +% s1
  done;
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for i = 0 to 63 do
    let s1 = rotr !e 6 ^% rotr !e 11 ^% rotr !e 25 in
    let ch = (!e &% !f) ^% (lnot32 !e &% !g) in
    let temp1 = !hh +% s1 +% ch +% k.(i) +% w.(i) in
    let s0 = rotr !a 2 ^% rotr !a 13 ^% rotr !a 22 in
    let maj = (!a &% !b) ^% (!a &% !c) ^% (!b &% !c) in
    let temp2 = s0 +% maj in
    hh := !g;
    g := !f;
    f := !e;
    e := !d +% temp1;
    d := !c;
    c := !b;
    b := !a;
    a := temp1 +% temp2
  done;
  h.(0) <- h.(0) +% !a;
  h.(1) <- h.(1) +% !b;
  h.(2) <- h.(2) +% !c;
  h.(3) <- h.(3) +% !d;
  h.(4) <- h.(4) +% !e;
  h.(5) <- h.(5) +% !f;
  h.(6) <- h.(6) +% !g;
  h.(7) <- h.(7) +% !hh

let state_to_raw h =
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let v = h.(i) in
    for j = 0 to 3 do
      Bytes.set out
        ((i * 4) + j)
        (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v (8 * (3 - j))) 0xFFl)))
    done
  done;
  Bytes.unsafe_to_string out

(* Hash [msg] starting from [state], which has already absorbed [prefix]
   bytes (a multiple of 64; the length padding covers prefix + msg). Full
   blocks are compressed in place — no copy of the message is taken. *)
let digest_from state ~prefix msg =
  let h = Array.copy state in
  let w = Array.make 64 0l in
  let len = String.length msg in
  let body = Bytes.unsafe_of_string msg in
  let full = len / 64 in
  for blk = 0 to full - 1 do
    compress h w body (blk * 64)
  done;
  let rem = len - (full * 64) in
  (* Tail: remainder ++ 0x80 ++ zeros ++ 64-bit big-endian bit length. *)
  let tail_len = if rem + 9 <= 64 then 64 else 128 in
  let tail = Bytes.make tail_len '\x00' in
  Bytes.blit_string msg (full * 64) tail 0 rem;
  Bytes.set tail rem '\x80';
  let bitlen = Int64.of_int ((prefix + len) * 8) in
  for i = 0 to 7 do
    Bytes.set tail
      (tail_len - 1 - i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bitlen (8 * i)) 0xFFL)))
  done;
  compress h w tail 0;
  if tail_len = 128 then compress h w tail 64;
  state_to_raw h

let digest msg = digest_from (fresh_state ()) ~prefix:0 msg

let to_raw d = d
let of_raw s = if String.length s = 32 then Some s else None

let to_hex d =
  let buf = Buffer.create 64 in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) d;
  Buffer.contents buf

let equal = String.equal
let compare = String.compare
let pp fmt d = Format.pp_print_string fmt (to_hex d)

(* Precomputed HMAC key: the compression states after absorbing the ipad
   and opad blocks. Deriving these once at key creation saves the two
   key-schedule compressions (plus the key normalization and xors) that a
   from-scratch HMAC would redo on every tag. *)
type key = { inner : int32 array; outer : int32 array }

let hmac_key key_str =
  let block = 64 in
  let key_str = if String.length key_str > block then digest key_str else key_str in
  let key_str = key_str ^ String.make (block - String.length key_str) '\x00' in
  let absorb byte =
    let h = fresh_state () in
    let w = Array.make 64 0l in
    let padded =
      Bytes.unsafe_of_string
        (String.map (fun c -> Char.chr (Char.code c lxor byte)) key_str)
    in
    compress h w padded 0;
    h
  in
  { inner = absorb 0x36; outer = absorb 0x5c }

let hmac_with key msg =
  let inner = digest_from key.inner ~prefix:64 msg in
  digest_from key.outer ~prefix:64 inner

let hmac ~key msg = hmac_with (hmac_key key) msg
