open Mewc_prelude

(* Bounded memo table. MAC keys are fixed at setup and never rotate, so a
   cached tag can never go stale — the only invalidation is the capacity
   epoch-clear, which is a pure perf event, never a correctness one.

   Domain safety: the sharded engine calls [share_tag]/[aggregate_tag] from
   several domains at once, so each domain gets its own private hash table
   per memo (no locks on the hot path, no torn reads). A value computed in
   one domain is simply recomputed in another — correct by the same
   argument as the epoch-clear. Hit/miss counters are atomics: their totals
   are exact, but their *split* legitimately varies with the shard count
   (per-domain cache locality), which is why shard-identity comparisons
   exclude cache stats. *)
module Memo = struct
  type tables = (string, Sha256.t) Hashtbl.t

  let ids = Atomic.make 0

  (* One DLS slot for the whole library: a per-domain map from memo
     identity to that domain's private table. DLS keys are never reclaimed
     by the runtime, so per-memo keys would leak one slot per simulation
     run; a single shared slot with a swept map is bounded instead. *)
  let domain_tables : (int, tables) Hashtbl.t Domain.DLS.key =
    Domain.DLS.new_key (fun () -> Hashtbl.create 16)

  (* Tables of long-dead memos are swept wholesale once a domain has seen
     this many distinct memos — a rare, correctness-neutral event. *)
  let max_live_tables = 64

  type t = {
    id : int;
    capacity : int;
    hits : int Atomic.t;
    misses : int Atomic.t;
  }

  let create ~capacity =
    {
      id = Atomic.fetch_and_add ids 1;
      capacity;
      hits = Atomic.make 0;
      misses = Atomic.make 0;
    }

  let table m =
    let per_domain = Domain.DLS.get domain_tables in
    match Hashtbl.find_opt per_domain m.id with
    | Some tbl -> tbl
    | None ->
      if Hashtbl.length per_domain >= max_live_tables then
        Hashtbl.reset per_domain;
      let tbl = Hashtbl.create 256 in
      Hashtbl.add per_domain m.id tbl;
      tbl

  let find_or_add m key compute =
    let tbl = table m in
    match Hashtbl.find_opt tbl key with
    | Some v ->
      Atomic.incr m.hits;
      v
    | None ->
      Atomic.incr m.misses;
      let v = compute () in
      if Hashtbl.length tbl >= m.capacity then Hashtbl.reset tbl;
      Hashtbl.add tbl key v;
      v

  let reset m =
    (* Clears only the calling domain's table. Other domains' tables cannot
       go stale (keys never rotate), so leaving them is a perf artifact,
       not a correctness one. *)
    (match Hashtbl.find_opt (Domain.DLS.get domain_tables) m.id with
    | Some tbl -> Hashtbl.reset tbl
    | None -> ());
    Atomic.set m.hits 0;
    Atomic.set m.misses 0
end

let default_cache_capacity = 1 lsl 14

(* Timing hook for the hash hot paths. The profiler lives above this
   library (lib/sim), so the dependency is inverted through a polymorphic
   record the caller installs; [None] (the default) costs one match per
   hash computation. *)
type timer = { time : 'a. string -> (unit -> 'a) -> 'a }

(* Live-telemetry mirrors of the sign/verify/combine counters. Handles are
   resolved once at install time; the per-op cost when metering is off is
   one match, and when on each counter lands in the calling domain's
   private cell — safe from sharded workers, and the totals are
   shard-invariant because every shard performs exactly the calls the
   sequential engine would. *)
type meters = {
  signs_m : Mewc_obs.Metrics.counter;
  verifies_m : Mewc_obs.Metrics.counter;
  combines_m : Mewc_obs.Metrics.counter;
}

type t = {
  n : int;
  mac_keys : string array;  (* trusted setup; used for verification only *)
  hmac_keys : Sha256.key array;  (* same keys, HMAC midstates precomputed *)
  tag_memo : Memo.t;  (* (signer, msg) -> expected share tag *)
  agg_memo : Memo.t;  (* (signer set, msg) -> aggregate tag *)
  (* Atomic so concurrent shards count exactly. The totals are a pure
     function of which operations ran — identical across shard counts —
     because every shard performs the same calls the sequential engine
     would have. *)
  signs : int Atomic.t;
  verifies : int Atomic.t;
  combines : int Atomic.t;
  mutable timer : timer option;
  mutable meters : meters option;
}

module Secret = struct
  type nonrec t = { owner : Pid.t; hmac_key : Sha256.key }

  let owner s = s.owner
end

let setup ?(seed = 0x5EEDL) ?(cache_capacity = default_cache_capacity) ~n () =
  let rng = Rng.create seed in
  let mac_keys =
    Array.init n (fun i ->
        Printf.sprintf "mewc-key-%d-%Lx-%Lx" i (Rng.int64 rng) (Rng.int64 rng))
  in
  let hmac_keys = Array.map Sha256.hmac_key mac_keys in
  let pki =
    {
      n;
      mac_keys;
      hmac_keys;
      tag_memo = Memo.create ~capacity:cache_capacity;
      agg_memo = Memo.create ~capacity:cache_capacity;
      signs = Atomic.make 0;
      verifies = Atomic.make 0;
      combines = Atomic.make 0;
      timer = None;
      meters = None;
    }
  in
  let secrets =
    Array.init n (fun i -> { Secret.owner = i; hmac_key = hmac_keys.(i) })
  in
  (pki, secrets)

let n t = t.n
let set_timer t timer = t.timer <- timer

let set_metrics t registry =
  t.meters <-
    Option.map
      (fun reg ->
        {
          signs_m = Mewc_obs.Metrics.counter reg "pki.signs";
          verifies_m = Mewc_obs.Metrics.counter reg "pki.verifies";
          combines_m = Mewc_obs.Metrics.counter reg "pki.combines";
        })
      registry

let timed t name f =
  match t.timer with None -> f () | Some { time } -> time name f

let meter t get =
  match t.meters with
  | None -> ()
  | Some m -> Mewc_obs.Metrics.incr (get m)

module Sig = struct
  type t = { signer : Pid.t; tag : Sha256.t }

  let signer s = s.signer
  let equal a b = Pid.equal a.signer b.signer && Sha256.equal a.tag b.tag

  let compare a b =
    match Pid.compare a.signer b.signer with
    | 0 -> Sha256.compare a.tag b.tag
    | c -> c

  let pp fmt s = Format.fprintf fmt "<sig:%a>" Pid.pp s.signer
end

let sign t (secret : Secret.t) msg =
  Atomic.incr t.signs;
  meter t (fun m -> m.signs_m);
  {
    Sig.signer = secret.Secret.owner;
    tag = timed t "crypto.sign" (fun () -> Sha256.hmac_with secret.Secret.hmac_key msg);
  }

(* The genuine share tag of signer [p] on [msg], memoized. The key has no
   ambiguity: the signer id contains no ':' and everything after the first
   ':' is the message verbatim. *)
let share_tag t p msg =
  Memo.find_or_add t.tag_memo
    (string_of_int p ^ ":" ^ msg)
    (fun () ->
      (* Timed on the miss path only: a cache hit is a hashtable probe, and
         timing it would drown the signal in clock reads. *)
      timed t "crypto.share_tag" (fun () -> Sha256.hmac_with t.hmac_keys.(p) msg))

let verify t (s : Sig.t) ~msg =
  Atomic.incr t.verifies;
  meter t (fun m -> m.verifies_m);
  Pid.is_valid ~n:t.n s.Sig.signer
  && Sha256.equal s.Sig.tag (share_tag t s.Sig.signer msg)

module Tsig = struct
  (* [ok_for] caches a (pki, msg) pair this tag has already been fully
     checked against. MAC keys never rotate, so a verdict cannot go stale;
     the pki witness (compared physically) keeps the shortcut from leaking
     across distinct trusted setups. The cell rides the value itself, so a
     broadcast certificate is re-verified once per run, not once per
     receiver — and unlike the bounded memo tables it survives epoch
     clears for free. Under the sharded engine concurrent writes to the
     cell race benignly: a pointer store cannot tear, every written value
     is a valid verdict for the same immutable tag, and a lost update only
     costs a re-verification. *)
  type nonrec t = {
    signers : Pid.Set.t;
    tag : Sha256.t;
    mutable ok_for : (t * string) option;
  }

  let cardinality ts = Pid.Set.cardinal ts.signers
  let equal a b = Pid.Set.equal a.signers b.signers && Sha256.equal a.tag b.tag

  let pp fmt ts =
    Format.fprintf fmt "<tsig:%d shares>" (Pid.Set.cardinal ts.signers)
end

(* The aggregate tag binds the signer set and the message: it is the digest
   of the individual HMAC tags in signer order, which only someone holding
   (or having verified) k genuine shares can compute. Memoized per
   (signer set, msg): combine computes it and verify_tsig re-derives it for
   the same set on the receiving side, usually n times per certificate. *)
let aggregate_tag t signers ~msg =
  let key =
    let b = Buffer.create 64 in
    Pid.Set.iter
      (fun p ->
        Buffer.add_string b (string_of_int p);
        Buffer.add_char b ',')
      signers;
    Buffer.add_char b ':';
    Buffer.add_string b msg;
    Buffer.contents b
  in
  Memo.find_or_add t.agg_memo key (fun () ->
      timed t "crypto.aggregate_tag" (fun () ->
          let buf = Buffer.create 256 in
          Pid.Set.iter
            (fun p -> Buffer.add_string buf (Sha256.to_raw (share_tag t p msg)))
            signers;
          Sha256.digest (Buffer.contents buf)))

let combine t ~k ~msg shares =
  Atomic.incr t.combines;
  meter t (fun m -> m.combines_m);
  let valid =
    List.filter (fun s -> verify t s ~msg) shares
    |> List.map Sig.signer |> Pid.Set.of_list
  in
  if Pid.Set.cardinal valid < k then None
  else begin
    (* Keep exactly the k lowest signer ids, for determinism. *)
    let signers =
      Pid.Set.elements valid |> List.filteri (fun i _ -> i < k) |> Pid.Set.of_list
    in
    Some { Tsig.signers; tag = aggregate_tag t signers ~msg; ok_for = None }
  end

let verify_tsig t (ts : Tsig.t) ~k ~msg =
  Atomic.incr t.verifies;
  meter t (fun m -> m.verifies_m);
  Pid.Set.cardinal ts.Tsig.signers >= k
  && (* The cardinality check stays outside the shortcut: the same tag can
        legitimately pass at one [k] and fail at a larger one. *)
  match ts.Tsig.ok_for with
  | Some (pki, m) when pki == t && String.equal m msg -> true
  | _ ->
    Pid.Set.for_all (Pid.is_valid ~n:t.n) ts.Tsig.signers
    && Sha256.equal ts.Tsig.tag (aggregate_tag t ts.Tsig.signers ~msg)
    && begin
         ts.Tsig.ok_for <- Some (t, msg);
         true
       end

(* Incremental quorum accounting: verify each share once, on delivery, and
   keep a running signer set — instead of stockpiling shares and re-verifying
   the whole batch inside {!combine} when the quorum finally lands. *)
module Tally = struct
  type verdict = Added | Duplicate | Invalid

  type nonrec t = {
    pki : t;
    msg : string;
    k : int;
    mutable signers : Pid.Set.t;
  }

  let add tl (s : Sig.t) =
    (* Verify before deduplicating: callers distinguish a valid repeat (a
       correct process re-sending) from garbage, e.g. weak BA answers every
       valid help request, duplicates included. *)
    if not (verify tl.pki s ~msg:tl.msg) then Invalid
    else begin
      let p = Sig.signer s in
      if Pid.Set.mem p tl.signers then Duplicate
      else begin
        tl.signers <- Pid.Set.add p tl.signers;
        Added
      end
    end

  let count tl = Pid.Set.cardinal tl.signers
  let mem tl p = Pid.Set.mem p tl.signers
  let complete tl = count tl >= tl.k

  let certificate tl =
    if not (complete tl) then None
    else begin
      let t = tl.pki in
      Atomic.incr t.combines;
      meter t (fun m -> m.combines_m);
      (* Keep exactly the k lowest signer ids — byte-identical to what
         {!combine} would return for the same valid-signer set. *)
      let signers =
        Pid.Set.elements tl.signers
        |> List.filteri (fun i _ -> i < tl.k)
        |> Pid.Set.of_list
      in
      Some { Tsig.signers; tag = aggregate_tag t signers ~msg:tl.msg; ok_for = None }
    end
end

let tally t ~k ~msg = { Tally.pki = t; msg; k; signers = Pid.Set.empty }

module Wire = struct
  let sig_view (s : Sig.t) = (s.Sig.signer, s.Sig.tag)
  let sig_of_view ~signer ~tag = { Sig.signer; tag }
  let tsig_view (ts : Tsig.t) = (Pid.Set.elements ts.Tsig.signers, ts.Tsig.tag)

  let tsig_of_view ~signers ~tag =
    { Tsig.signers = Pid.Set.of_list signers; tag; ok_for = None }
end

let signatures_created t = Atomic.get t.signs
let verifications_performed t = Atomic.get t.verifies
let combines_performed t = Atomic.get t.combines

type cache_stats = {
  verify_hits : int;
  verify_misses : int;
  agg_hits : int;
  agg_misses : int;
}

let cache_stats t =
  {
    verify_hits = Atomic.get t.tag_memo.Memo.hits;
    verify_misses = Atomic.get t.tag_memo.Memo.misses;
    agg_hits = Atomic.get t.agg_memo.Memo.hits;
    agg_misses = Atomic.get t.agg_memo.Memo.misses;
  }

let no_cache_stats = { verify_hits = 0; verify_misses = 0; agg_hits = 0; agg_misses = 0 }

let hit_rate ~hits ~misses =
  if hits + misses = 0 then 0.0
  else float_of_int hits /. float_of_int (hits + misses)

let cache_stats_of_json j =
  let ( let* ) = Result.bind in
  let field name =
    match Option.bind (Jsonx.member name j) Jsonx.get_int with
    | Some v -> Ok v
    | None ->
      Error (Printf.sprintf "Pki.cache_stats_of_json: bad or missing %S" name)
  in
  let* verify_hits = field "verify_hits" in
  let* verify_misses = field "verify_misses" in
  let* agg_hits = field "agg_hits" in
  let* agg_misses = field "agg_misses" in
  Ok { verify_hits; verify_misses; agg_hits; agg_misses }

let cache_stats_to_json (s : cache_stats) =
  Jsonx.Obj
    [
      ("verify_hits", Jsonx.Int s.verify_hits);
      ("verify_misses", Jsonx.Int s.verify_misses);
      ("verify_hit_rate", Jsonx.Float (hit_rate ~hits:s.verify_hits ~misses:s.verify_misses));
      ("agg_hits", Jsonx.Int s.agg_hits);
      ("agg_misses", Jsonx.Int s.agg_misses);
      ("agg_hit_rate", Jsonx.Float (hit_rate ~hits:s.agg_hits ~misses:s.agg_misses));
    ]

let reset_counters t =
  Atomic.set t.signs 0;
  Atomic.set t.verifies 0;
  Atomic.set t.combines 0;
  Memo.reset t.tag_memo;
  Memo.reset t.agg_memo
