(* The wire layer in isolation: the codec's typed-error totality and
   canonicity laws (unit cases, the zoo fuzz battery, and QCheck round-trip
   / adversarial-bytes / mutation properties), the encoded-size-vs-meter
   reconciliation, the pipe transport's framing and resync, and the stall
   watchdog on a fake clock. The cross-runtime differential gate lives in
   test_wire_diff. *)

open Mewc_prelude
open Mewc_core
module Codec = Mewc_wire.Codec
module Clock = Mewc_wire.Clock
module Transport = Mewc_wire.Transport
module Runtime = Mewc_wire.Runtime
module Zoo = Mewc_wire.Zoo

let pp_res ppf = function
  | Ok _ -> Format.pp_print_string ppf "Ok _"
  | Error e -> Codec.pp_error ppf e

let check_err what expected got =
  match got with
  | Error e when e = expected -> ()
  | r -> Alcotest.failf "%s: expected %s, got %a" what (Codec.error_to_string expected) pp_res r

(* ---- typed decode errors ------------------------------------------------ *)

let typed_errors () =
  check_err "empty vint" Codec.Truncated (Codec.decode Codec.vint_c "");
  check_err "cut vint" Codec.Truncated (Codec.decode Codec.vint_c "\x80");
  check_err "non-minimal vint" Codec.Overlong (Codec.decode Codec.vint_c "\x80\x00");
  check_err "bool tag 2"
    (Codec.Bad_tag { what = "bool"; tag = 2 })
    (Codec.decode Codec.bool_c "\x02");
  check_err "trailing byte"
    (Codec.Trailing { left = 1 })
    (Codec.decode Codec.vint_c "\x05\x00");
  (match Codec.decode (Codec.str_c ~max:4) "\x05hello" with
  | Error (Codec.Bad_length _) -> ()
  | r -> Alcotest.failf "oversized string: got %a" pp_res r);
  (* canonical values survive *)
  (match Codec.decode Codec.vint_c (Codec.encode Codec.vint_c 300) with
  | Ok 300 -> ()
  | r -> Alcotest.failf "vint round-trip: got %a" pp_res r)

let frame_errors () =
  let f =
    { Codec.kind = Codec.Msg; src = 1; dst = 2; slot = 7; seq = 3; payload = "hello" }
  in
  let e = Codec.encode_frame f in
  (match Codec.decode_frame e with
  | Ok f' when f' = f -> ()
  | r -> Alcotest.failf "frame round-trip: got %a" pp_res r);
  (* corrupting the digest is detected *)
  let corrupt = Bytes.of_string e in
  let last = Bytes.length corrupt - 1 in
  Bytes.set corrupt last (Char.chr (Char.code (Bytes.get corrupt last) lxor 1));
  check_err "bad digest" Codec.Bad_digest (Codec.decode_frame (Bytes.to_string corrupt));
  (* corrupting the payload is detected *)
  let corrupt = Bytes.of_string e in
  Bytes.set corrupt 8 (Char.chr (Char.code (Bytes.get corrupt 8) lxor 0x40));
  (match Codec.decode_frame (Bytes.to_string corrupt) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "payload corruption went undetected");
  (* every proper prefix is Truncated, never a raise *)
  for k = 0 to String.length e - 1 do
    match Codec.decode_frame (String.sub e 0 k) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "prefix of length %d decoded" k
  done

let scan_resync () =
  let frame i payload =
    { Codec.kind = Codec.Msg; src = i; dst = 0; slot = i; seq = i; payload }
  in
  let f1 = frame 1 "aaa" and f2 = frame 2 "bbb" and f3 = frame 3 "ccc" in
  let e2 = Bytes.of_string (Codec.encode_frame f2) in
  (* corrupt f2's digest: parse fails at its magic, scan must skip past it
     and still deliver f3 *)
  let last = Bytes.length e2 - 1 in
  Bytes.set e2 last (Char.chr (Char.code (Bytes.get e2 last) lxor 1));
  let stream =
    Codec.encode_frame f1 ^ Bytes.to_string e2 ^ Codec.encode_frame f3
  in
  let rec drive start frames rejects =
    match Codec.scan stream ~start with
    | `Frame (f, next) -> drive next (f :: frames) rejects
    | `Skip (next, _) -> drive next frames (rejects + 1)
    | `Need_more _ -> (List.rev frames, rejects)
  in
  let frames, rejects = drive 0 [] 0 in
  Alcotest.(check int) "one rejection" 1 rejects;
  match frames with
  | [ a; b ] when a = f1 && b = f3 -> ()
  | fs -> Alcotest.failf "recovered %d frames, wanted f1 and f3" (List.length fs)

let fuzz_battery () =
  match Zoo.fuzz_codec ~count:150 ~seed:20260807L with
  | Ok cases -> if cases < 1000 then Alcotest.failf "suspiciously few cases: %d" cases
  | Error e -> Alcotest.fail e

(* ---- QCheck properties -------------------------------------------------- *)

type rt = Rt : string * 'a Codec.t * (Rng.t -> 'a) -> rt

let round_trips =
  [
    Rt ("sig", Codec.sig_c, Zoo.Gen.sig_);
    Rt ("tsig", Codec.tsig_c, Zoo.Gen.tsig);
    Rt ("cert", Codec.cert_c, Zoo.Gen.cert);
    Rt ("epk-str", Zoo.epk_str_msg, Zoo.Gen.epk_str);
    Rt ("epk-bool", Zoo.epk_bool_msg, Zoo.Gen.epk_bool);
    Rt ("weak-ba", Zoo.weak_str_msg, Zoo.Gen.weak_str);
    Rt ("adaptive-bb", Zoo.adaptive_bb_msg, Zoo.Gen.adaptive);
    Rt ("binary-bb", Zoo.binary_bb_msg, Zoo.Gen.binary);
    Rt ("strong-ba", Zoo.strong_bool_msg, Zoo.Gen.strong);
  ]

let prop_round_trip =
  Test_util.qcheck_case ~count:300
    ~name:"codec: decode ∘ encode = id, re-encoding byte-identical"
    QCheck2.Gen.int
    (fun s ->
      let g = Rng.create (Int64.of_int s) in
      List.for_all
        (fun (Rt (name, c, gen)) ->
          let m = gen g in
          let e = Codec.encode c m in
          match Codec.decode c e with
          | Error err ->
            QCheck2.Test.fail_reportf "%s rejects its own encoding: %s" name
              (Codec.error_to_string err)
          | Ok m' ->
            String.equal (Codec.encode c m') e
            || QCheck2.Test.fail_reportf "%s re-encodes differently" name)
        round_trips)

let prop_adversarial_bytes =
  Test_util.qcheck_case ~count:300
    ~name:"codec: random bytes never raise; any decode is canonical"
    QCheck2.Gen.(pair int (int_bound 4096))
    (fun (s, len) ->
      let g = Rng.create (Int64.of_int s) in
      let input = String.init len (fun _ -> Char.chr (Rng.int g 256)) in
      List.for_all
        (fun (Rt (name, c, _)) ->
          match Codec.decode c input with
          | exception e ->
            QCheck2.Test.fail_reportf "%s raised %s" name (Printexc.to_string e)
          | Error _ -> true
          | Ok v ->
            String.equal (Codec.encode c v) input
            || QCheck2.Test.fail_reportf "%s accepted a non-canonical spelling"
                 name)
        round_trips
      &&
      match Codec.decode_frame input with
      | exception e ->
        QCheck2.Test.fail_reportf "frame raised %s" (Printexc.to_string e)
      | Ok _ | Error _ -> true)

let prop_mutations =
  Test_util.qcheck_case ~count:300
    ~name:"codec: single-byte mutations of valid encodings stay total"
    QCheck2.Gen.int
    (fun s ->
      let g = Rng.create (Int64.of_int s) in
      List.for_all
        (fun (Rt (name, c, gen)) ->
          let e = Bytes.of_string (Codec.encode c (gen g)) in
          if Bytes.length e = 0 then true
          else begin
            let i = Rng.int g (Bytes.length e) in
            Bytes.set e i
              (Char.chr (Char.code (Bytes.get e i) lxor (1 lsl Rng.int g 8)));
            let mutated = Bytes.to_string e in
            match Codec.decode c mutated with
            | exception ex ->
              QCheck2.Test.fail_reportf "%s raised on mutation: %s" name
                (Printexc.to_string ex)
            | Error _ -> true
            | Ok v ->
              (* a mutation may land on another valid message, but then the
                 mutated bytes are its one canonical spelling *)
              String.equal (Codec.encode c v) mutated
              || QCheck2.Test.fail_reportf
                   "%s decoded a mutation non-canonically" name
          end)
        round_trips)

type sized = Sized : string * 'a Codec.t * (Rng.t -> 'a) * ('a -> int) -> sized

let sized_msgs =
  [
    Sized ("epk-str", Zoo.epk_str_msg, Zoo.Gen.epk_str, Instances.Epk_str.words);
    Sized
      ("epk-bool", Zoo.epk_bool_msg, Zoo.Gen.epk_bool, Instances.Epk_bool.words);
    Sized
      ("weak-ba", Zoo.weak_str_msg, Zoo.Gen.weak_str, Instances.Weak_str.words);
    Sized ("adaptive-bb", Zoo.adaptive_bb_msg, Zoo.Gen.adaptive, Adaptive_bb.words);
    Sized
      ( "binary-bb",
        Zoo.binary_bb_msg,
        Zoo.Gen.binary,
        Instances.Binary_bb_bool.words );
    Sized
      ("strong-ba", Zoo.strong_bool_msg, Zoo.Gen.strong, Instances.Strong_bool.words)
  ]

let prop_size_vs_words =
  Test_util.qcheck_case ~count:300
    ~name:"codec: encoded size reconciles with the meter's word charge"
    QCheck2.Gen.int
    (fun s ->
      let g = Rng.create (Int64.of_int s) in
      List.for_all
        (fun (Sized (name, c, gen, words)) ->
          let m = gen g in
          let w = words m in
          let enc = Codec.words_of_bytes (Codec.encoded_size c m) in
          (* the wire spends real bytes on what the model idealizes away
             (explicit signer sets, tags, lengths): a constant factor plus
             framing slack, never more *)
          (enc >= 1 && enc <= (3 * w) + 2)
          || QCheck2.Test.fail_reportf "%s: %d metered words, %d encoded words"
               name w enc)
        sized_msgs)

(* ---- transport ---------------------------------------------------------- *)

let transport_basic () =
  let hub = Transport.create ~n:2 in
  let ep0 = Transport.endpoint hub ~pid:0 in
  let ep1 = Transport.endpoint hub ~pid:1 in
  let clock = Clock.real in
  let deadline () = clock.Clock.now () +. 2.0 in
  let f = { Codec.kind = Codec.Msg; src = 0; dst = 1; slot = 0; seq = 0; payload = "hi" } in
  (match Transport.send ep0 ~clock ~deadline:(deadline ()) ~dst:1 (Codec.encode_frame f) with
  | `Sent _ -> ()
  | `Timeout -> Alcotest.fail "send timed out on an empty pipe");
  (match Transport.recv ep1 ~clock ~deadline:(deadline ()) with
  | `Frame f' when f' = f -> ()
  | `Frame _ -> Alcotest.fail "frame mangled in transit"
  | `Rejected e -> Alcotest.failf "rejected: %s" (Codec.error_to_string e)
  | `Timeout -> Alcotest.fail "recv timed out");
  (* an empty inbox times out rather than blocking forever *)
  (match Transport.recv ep1 ~clock ~deadline:(clock.Clock.now () +. 0.05) with
  | `Timeout -> ()
  | _ -> Alcotest.fail "expected a timeout on an empty inbox");
  Transport.close hub

let transport_resync () =
  let hub = Transport.create ~n:2 in
  let ep0 = Transport.endpoint hub ~pid:0 in
  let ep1 = Transport.endpoint hub ~pid:1 in
  let clock = Clock.real in
  let deadline () = clock.Clock.now () +. 2.0 in
  let f = { Codec.kind = Codec.Msg; src = 0; dst = 1; slot = 1; seq = 0; payload = "ok" } in
  let good = Codec.encode_frame f in
  let corrupt = Bytes.of_string good in
  Bytes.set corrupt (Bytes.length corrupt - 1)
    (Char.chr (Char.code (Bytes.get corrupt (Bytes.length corrupt - 1)) lxor 1));
  ignore (Transport.send ep0 ~clock ~deadline:(deadline ()) ~dst:1 (Bytes.to_string corrupt));
  ignore (Transport.send ep0 ~clock ~deadline:(deadline ()) ~dst:1 good);
  (match Transport.recv ep1 ~clock ~deadline:(deadline ()) with
  | `Rejected _ -> ()
  | _ -> Alcotest.fail "corrupted frame was not rejected");
  (match Transport.recv ep1 ~clock ~deadline:(deadline ()) with
  | `Frame f' when f' = f -> ()
  | _ -> Alcotest.fail "failed to resync onto the valid frame");
  Transport.close hub

(* ---- the stall watchdog on a fake clock --------------------------------- *)

let stall_fake_clock () =
  let clock, advance = Clock.fake () in
  let s = Runtime.Stall.create ~clock ~budget:1.0 in
  Alcotest.(check bool) "fresh" false (Runtime.Stall.expired s);
  advance 0.6;
  Alcotest.(check bool) "within budget" false (Runtime.Stall.expired s);
  Runtime.Stall.beat s;
  advance 0.9;
  Alcotest.(check bool) "re-armed" false (Runtime.Stall.expired s);
  advance 0.2;
  Alcotest.(check bool) "expired" true (Runtime.Stall.expired s);
  Alcotest.(check (float 0.0001)) "since beat" 1.1 (Runtime.Stall.since_beat s);
  Runtime.Stall.beat s;
  Alcotest.(check bool) "beat re-arms" false (Runtime.Stall.expired s)

let fake_clock_sleep_advances () =
  let clock, _ = Clock.fake ~start:10.0 () in
  Alcotest.(check (float 0.0001)) "start" 10.0 (clock.Clock.now ());
  clock.Clock.sleep 2.5;
  Alcotest.(check (float 0.0001)) "slept" 12.5 (clock.Clock.now ())

let () =
  Alcotest.run "wire"
    [
      ( "codec",
        [
          Alcotest.test_case "typed errors" `Quick typed_errors;
          Alcotest.test_case "frame digest and prefixes" `Quick frame_errors;
          Alcotest.test_case "scan resync" `Quick scan_resync;
          Alcotest.test_case "fuzz battery" `Quick fuzz_battery;
        ] );
      ( "laws",
        [
          prop_round_trip;
          prop_adversarial_bytes;
          prop_mutations;
          prop_size_vs_words;
        ] );
      ( "transport",
        [
          Alcotest.test_case "send/recv round-trip" `Quick transport_basic;
          Alcotest.test_case "reject and resync" `Quick transport_resync;
        ] );
      ( "clock",
        [
          Alcotest.test_case "stall watchdog (fake timer)" `Quick stall_fake_clock;
          Alcotest.test_case "fake clock sleep" `Quick fake_clock_sleep_advances;
        ] );
    ]
