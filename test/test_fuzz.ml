(* The fuzzer fuzzed: generator sanity, shrink metric monotonicity, corpus
   round-trips, determinism of scenario execution, and the end-to-end smoke
   gate (sound targets clean; the planted weak-BA quorum ablation found,
   shrunk to a fixpoint, and replayed byte-identically). *)

open Mewc_prelude
open Mewc_sim
open Mewc_fuzz

let cfg = Config.create ~n:9 ~t:4

let scenarios k =
  let rng = Rng.create 42L in
  List.init k (fun _ -> Scenario.generate ~cfg ~rng)

let test_generator_budget () =
  List.iter
    (fun (sc : Scenario.t) ->
      let cs = sc.Scenario.corruptions in
      Alcotest.(check bool) "within budget" true (List.length cs <= 4);
      let pids = List.map (fun c -> c.Scenario.pid) cs in
      Alcotest.(check bool)
        "distinct pids" true
        (List.length (List.sort_uniq compare pids) = List.length pids);
      List.iter
        (fun (c : Scenario.corruption) ->
          Alcotest.(check bool) "pid in range" true (c.pid >= 0 && c.pid < 9);
          Alcotest.(check bool) "slot sane" true (c.at >= 0 && c.at < 8))
        cs;
      let sorted =
        List.sort (fun a b -> compare (a.Scenario.at, a.pid) (b.Scenario.at, b.pid)) cs
      in
      Alcotest.(check bool) "canonical order" true (cs = sorted))
    (scenarios 100)

let test_generator_fault_budget () =
  let saw_fault = ref false in
  List.iter
    (fun (sc : Scenario.t) ->
      let fs = sc.Scenario.faults in
      if fs <> [] then saw_fault := true;
      Alcotest.(check bool)
        "combined corruption + fault budget" true
        (List.length sc.Scenario.corruptions + List.length fs <= 4);
      let victims = List.map (fun (f : Scenario.fault) -> f.victim) fs in
      Alcotest.(check bool)
        "distinct victims" true
        (List.length (List.sort_uniq compare victims) = List.length victims);
      let corrupted =
        List.map (fun (c : Scenario.corruption) -> c.pid) sc.Scenario.corruptions
      in
      Alcotest.(check bool)
        "victims disjoint from corrupted" true
        (List.for_all (fun v -> not (List.mem v corrupted)) victims);
      List.iter
        (fun (f : Scenario.fault) ->
          Alcotest.(check bool) "victim in range" true (f.victim >= 0 && f.victim < 9);
          Alcotest.(check bool) "fault slot sane" true (f.fault_at >= 0);
          match f.kind with
          | Scenario.Crash_fault -> ()
          | Scenario.Omission_fault { drop_mod; drop_rem } ->
            Alcotest.(check bool)
              "omission params sane" true
              (drop_mod >= 1 && drop_rem >= 0 && drop_rem < drop_mod))
        fs;
      let sorted =
        List.sort
          (fun (a : Scenario.fault) (b : Scenario.fault) ->
            compare (a.fault_at, a.victim) (b.fault_at, b.victim))
          fs
      in
      Alcotest.(check bool) "faults canonically sorted" true (fs = sorted);
      (* the scenario's faults compile to a plan the engine accepts *)
      match Faults.validate ~n:9 (Compile.plan_of_scenario sc) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "compiled plan invalid: %s" e)
    (scenarios 200);
  Alcotest.(check bool) "generator actually draws faults" true !saw_fault

let test_shrink_simplifies_faults () =
  (* Every omission fault must offer its crash simplification among the
     one-step shrink candidates, and candidates keep victims disjoint from
     corrupted pids. *)
  let with_omission =
    List.filter
      (fun (sc : Scenario.t) ->
        List.exists
          (fun (f : Scenario.fault) ->
            match f.kind with Scenario.Omission_fault _ -> true | _ -> false)
          sc.Scenario.faults)
      (scenarios 200)
  in
  Alcotest.(check bool)
    "generator draws omission faults" true
    (with_omission <> []);
  List.iter
    (fun (sc : Scenario.t) ->
      let cands = Scenario.candidates sc in
      List.iter
        (fun (f : Scenario.fault) ->
          match f.kind with
          | Scenario.Crash_fault -> ()
          | Scenario.Omission_fault _ ->
            Alcotest.(check bool)
              "omission has a crash simplification" true
              (List.exists
                 (fun (c : Scenario.t) ->
                   List.exists
                     (fun (f' : Scenario.fault) ->
                       f'.victim = f.victim && f'.kind = Scenario.Crash_fault)
                     c.Scenario.faults)
                 cands))
        sc.Scenario.faults;
      List.iter
        (fun (c : Scenario.t) ->
          let corrupted =
            List.map (fun (x : Scenario.corruption) -> x.pid) c.Scenario.corruptions
          in
          Alcotest.(check bool)
            "candidate keeps victims disjoint" true
            (List.for_all
               (fun (f : Scenario.fault) -> not (List.mem f.victim corrupted))
               c.Scenario.faults))
        cands)
    with_omission

let test_json_roundtrip () =
  List.iter
    (fun sc ->
      match Scenario.of_json (Scenario.to_json sc) with
      | Ok sc' ->
        Alcotest.(check bool)
          (Format.asprintf "roundtrip %a" Scenario.pp sc)
          true (Scenario.equal sc sc')
      | Error e -> Alcotest.failf "of_json failed: %s" e)
    (scenarios 50)

let test_shrink_metric () =
  List.iter
    (fun sc ->
      let s = Scenario.size sc in
      List.iter
        (fun c ->
          Alcotest.(check bool)
            (Format.asprintf "candidate smaller: %a -> %a" Scenario.pp sc
               Scenario.pp c)
            true
            (Scenario.size c < s))
        (Scenario.candidates sc))
    (scenarios 50)

let test_run_deterministic () =
  let target = Option.get (Campaign.find_target "weak-ba") in
  List.iter
    (fun sc ->
      let a = Campaign.violation_of target ~cfg sc in
      let b = Campaign.violation_of target ~cfg sc in
      Alcotest.(check bool) "same outcome" true (a = b))
    (scenarios 10)

let test_verdict_shard_invariant () =
  (* The fuzzer's verdicts must not depend on how many domains a run's
     step phase is sharded across — same scenarios, same violations (or
     same clean passes) at every shard count. *)
  List.iter
    (fun name ->
      let target = Option.get (Campaign.find_target name) in
      List.iter
        (fun sc ->
          let base =
            Campaign.violation_of
              ~options:
                {
                  Mewc_core.Instances.default_options with
                  Mewc_core.Instances.shards = 1;
                }
              target ~cfg sc
          in
          List.iter
            (fun shards ->
              Alcotest.(check bool)
                (Printf.sprintf "%s shards=%d" name shards)
                true
                (base
                = Campaign.violation_of
                    ~options:
                      {
                        Mewc_core.Instances.default_options with
                        Mewc_core.Instances.shards = shards;
                      }
                    target ~cfg sc))
            [ 2; 4 ])
        (scenarios 4))
    [ "weak-ba"; Campaign.planted_target ]

let test_campaign_jobs_invariant () =
  (* The batched scan's outcome must not depend on parallelism. *)
  let target = Option.get (Campaign.find_target Campaign.planted_target) in
  let run jobs =
    Campaign.campaign ~jobs target ~cfg ~seed:Campaign.smoke_seed
      ~count:Campaign.smoke_count ()
  in
  match (run 1, run 4) with
  | Some a, Some b ->
    Alcotest.(check int) "same index" a.Campaign.index b.Campaign.index;
    Alcotest.(check bool)
      "same scenario" true
      (Scenario.equal a.Campaign.scenario b.Campaign.scenario)
  | _ -> Alcotest.fail "planted campaign came up empty"

let test_smoke () =
  match Campaign.smoke ~jobs:2 () with
  | Error e -> Alcotest.failf "smoke failed: %s" e
  | Ok entry ->
    Alcotest.(check string) "target" Campaign.planted_target entry.Campaign.target;
    Alcotest.(check string)
      "agreement is what breaks" "agreement"
      entry.Campaign.violation.Monitor.monitor;
    (* the minimized schedule needs at least two coalition members: one to
       suppress the honest phase-1 decision, one (even-pid) to spray *)
    Alcotest.(check bool)
      "minimal but nonempty" true
      (List.length entry.Campaign.scenario.Scenario.corruptions = 2);
    (* corpus round-trip through disk *)
    let path = Filename.temp_file "mewc-fuzz" ".json" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Campaign.save path entry;
        match Campaign.load path with
        | Error e -> Alcotest.failf "corpus load failed: %s" e
        | Ok entry' ->
          Alcotest.(check bool)
            "entry roundtrip" true
            (Jsonx.equal (Campaign.entry_to_json entry)
               (Campaign.entry_to_json entry'));
          (match Campaign.replay entry' with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "replay of loaded entry failed: %s" e))

let test_replay_rejects_drift () =
  match Campaign.smoke ~jobs:2 () with
  | Error e -> Alcotest.failf "smoke failed: %s" e
  | Ok entry -> (
    let tampered =
      {
        entry with
        Campaign.violation =
          { entry.Campaign.violation with Monitor.slot = 999 };
      }
    in
    match Campaign.replay tampered with
    | Ok _ -> Alcotest.fail "replay accepted a drifted violation"
    | Error _ -> ())

let test_corpus_schema_gate () =
  let j = Jsonx.Obj [ (Jsonx.Schema.key, Jsonx.Str "mewc-trace/2") ] in
  match Campaign.entry_of_json j with
  | Ok _ -> Alcotest.fail "accepted a foreign schema"
  | Error e ->
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "names the schema" true (contains e "mewc-trace/2")

let () =
  Alcotest.run "fuzz"
    [
      ( "scenario",
        [
          Alcotest.test_case "generator budget" `Quick test_generator_budget;
          Alcotest.test_case "fault budget" `Quick test_generator_fault_budget;
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "shrink metric" `Quick test_shrink_metric;
          Alcotest.test_case "shrink simplifies faults" `Quick
            test_shrink_simplifies_faults;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "deterministic" `Quick test_run_deterministic;
          Alcotest.test_case "jobs invariant" `Quick test_campaign_jobs_invariant;
          Alcotest.test_case "verdicts shard-invariant" `Quick
            test_verdict_shard_invariant;
          Alcotest.test_case "smoke" `Quick test_smoke;
          Alcotest.test_case "replay rejects drift" `Quick
            test_replay_rejects_drift;
          Alcotest.test_case "schema gate" `Quick test_corpus_schema_gate;
        ] );
    ]
