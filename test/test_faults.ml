(* The fault-injection layer: plan validation and serialization, the
   runtime's per-link fate and per-slot transitions, and the determinism
   contract — same seed + same plan means byte-identical traces, from a
   single run up through the degradation matrix at any [jobs], planted
   unsafe cell included. *)

open Mewc_prelude
open Mewc_sim
open Mewc_core

let cfg n = Config.optimal ~n

(* A plan exercising every knob at once. *)
let kitchen_sink =
  {
    Faults.seed = 42L;
    drop = 0.2;
    delay = 2;
    delay_prob = 0.4;
    dup = 0.1;
    partitions = [ { Faults.from_slot = 3; until_slot = 7; island = [ 0; 4 ] } ];
    processes =
      [
        (1, Faults.Crash { at = 5 });
        (2, Faults.Send_omission { from_ = 2; drop_mod = 2; drop_rem = 1 });
        (3, Faults.Crash_recovery { down_at = 2; up_at = 4 });
      ];
  }

(* ---- validation ---------------------------------------------------------- *)

let validation () =
  let ok p =
    match Faults.validate ~n:9 p with
    | Ok () -> ()
    | Error e -> Alcotest.failf "rejected a sane plan: %s" e
  in
  let bad name p =
    match Faults.validate ~n:9 p with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "%s: accepted" name
  in
  ok Faults.none;
  ok kitchen_sink;
  bad "drop > 1" { Faults.none with Faults.drop = 1.5 };
  bad "negative dup" { Faults.none with Faults.dup = -0.1 };
  bad "delay_prob without delay"
    { Faults.none with Faults.delay = 0; delay_prob = 0.5 };
  let part island from_slot until_slot =
    { Faults.none with
      Faults.partitions = [ { Faults.from_slot; until_slot; island } ]
    }
  in
  bad "empty island" (part [] 0 5);
  bad "island = everyone" (part (List.init 9 Fun.id) 0 5);
  bad "island pid out of range" (part [ 0; 9 ] 0 5);
  bad "inverted partition window" (part [ 0 ] 7 3);
  let procs ps = { Faults.none with Faults.processes = ps } in
  bad "duplicate fault pids"
    (procs [ (1, Faults.Crash { at = 0 }); (1, Faults.Crash { at = 1 }) ]);
  bad "fault pid out of range" (procs [ (9, Faults.Crash { at = 0 }) ]);
  bad "drop_mod = 0"
    (procs [ (1, Faults.Send_omission { from_ = 0; drop_mod = 0; drop_rem = 0 }) ]);
  bad "drop_rem >= drop_mod"
    (procs [ (1, Faults.Send_omission { from_ = 0; drop_mod = 2; drop_rem = 2 }) ]);
  bad "down_at >= up_at"
    (procs [ (1, Faults.Crash_recovery { down_at = 4; up_at = 4 }) ])

(* ---- serialization ------------------------------------------------------- *)

let json_roundtrip () =
  let rt name p =
    match Faults.of_json (Faults.to_json p) with
    | Ok p' ->
      Alcotest.(check bool) (name ^ " round-trips") true (Faults.equal p p')
    | Error e -> Alcotest.failf "%s: does not reparse: %s" name e
  in
  rt "none" Faults.none;
  rt "kitchen sink" kitchen_sink;
  Alcotest.(check bool) "none is none" true (Faults.is_none Faults.none);
  Alcotest.(check bool)
    "seed alone is still none" true
    (Faults.is_none { Faults.none with Faults.seed = 99L });
  Alcotest.(check bool)
    "kitchen sink is not none" false
    (Faults.is_none kitchen_sink);
  (match Faults.of_json (Jsonx.Obj [ (Jsonx.Schema.key, Jsonx.Str "mewc-trace/3") ]) with
  | Ok _ -> Alcotest.fail "accepted a foreign schema"
  | Error _ -> ());
  List.iter
    (fun lf ->
      match Faults.(link_fault_of_string (link_fault_to_string lf)) with
      | Ok lf' -> Alcotest.(check bool) "link fault round-trips" true (lf = lf')
      | Error e -> Alcotest.failf "link fault does not reparse: %s" e)
    Faults.[ Omitted; Partitioned; Dropped; Delayed 3; Duplicated ];
  List.iter
    (fun ev ->
      match Faults.(process_event_of_string (process_event_to_string ev)) with
      | Ok ev' -> Alcotest.(check bool) "process event round-trips" true (ev = ev')
      | Error e -> Alcotest.failf "process event does not reparse: %s" e)
    Faults.[ Crashed; Went_down; Recovered; Omitting ]

(* ---- runtime: determinism ------------------------------------------------ *)

(* Two runtimes from the same plan agree on every (slot, src, dst) fate and
   every transition — the property the whole replay story rests on. *)
let runtime_deterministic () =
  let sweep () =
    let rt = Faults.start ~n:9 kitchen_sink in
    List.concat_map
      (fun slot ->
        let ts =
          List.map
            (fun (pid, ev) -> Printf.sprintf "t%d:%d:%s" slot pid
                                (Faults.process_event_to_string ev))
            (Faults.transitions rt ~slot)
        in
        let fates =
          List.concat_map
            (fun src ->
              List.map
                (fun dst ->
                  match Faults.fate rt ~slot ~src ~dst with
                  | None -> "-"
                  | Some lf -> Faults.link_fault_to_string lf)
                (List.init 9 Fun.id))
            (List.init 9 Fun.id)
        in
        ts @ fates)
      (List.init 20 Fun.id)
  in
  Alcotest.(check (list string)) "same plan, same fates" (sweep ()) (sweep ())

let self_sends_immune () =
  let rt = Faults.start ~n:9 { kitchen_sink with Faults.drop = 1.0; dup = 1.0 } in
  List.iter
    (fun slot ->
      ignore (Faults.transitions rt ~slot);
      List.iter
        (fun pid ->
          match Faults.fate rt ~slot ~src:pid ~dst:pid with
          | None -> ()
          | Some lf ->
            Alcotest.failf "self-send faulted at slot %d pid %d: %s" slot pid
              (Faults.link_fault_to_string lf))
        (List.init 9 Fun.id))
    (List.init 10 Fun.id)

(* ---- runtime: per-fault semantics ---------------------------------------- *)

let fate_of plan ~slot ~src ~dst =
  let rt = Faults.start ~n:9 plan in
  for s = 0 to slot do
    ignore (Faults.transitions rt ~slot:s)
  done;
  Faults.fate rt ~slot ~src ~dst

let certain_faults () =
  let check name plan ~slot expect =
    Alcotest.(check string) name
      (match expect with None -> "-" | Some lf -> Faults.link_fault_to_string lf)
      (match fate_of plan ~slot ~src:0 ~dst:5 with
      | None -> "-"
      | Some lf -> Faults.link_fault_to_string lf)
  in
  check "drop = 1 always drops"
    { Faults.none with Faults.drop = 1.0 }
    ~slot:0 (Some Faults.Dropped);
  check "dup = 1 always duplicates"
    { Faults.none with Faults.dup = 1.0 }
    ~slot:0 (Some Faults.Duplicated);
  check "delay_prob = 1 always delays by k"
    { Faults.none with Faults.delay = 3; delay_prob = 1.0 }
    ~slot:0
    (Some (Faults.Delayed 3))

let partition_semantics () =
  let plan =
    { Faults.none with
      Faults.partitions =
        [ { Faults.from_slot = 2; until_slot = 5; island = [ 0; 1 ] } ]
    }
  in
  let fate ~slot ~src ~dst = fate_of plan ~slot ~src ~dst in
  Alcotest.(check bool) "before the window" true (fate ~slot:1 ~src:0 ~dst:5 = None);
  Alcotest.(check bool) "cut island -> complement" true
    (fate ~slot:2 ~src:0 ~dst:5 = Some Faults.Partitioned);
  Alcotest.(check bool) "cut complement -> island" true
    (fate ~slot:4 ~src:5 ~dst:0 = Some Faults.Partitioned);
  Alcotest.(check bool) "island-internal link fine" true
    (fate ~slot:3 ~src:0 ~dst:1 = None);
  Alcotest.(check bool) "complement-internal link fine" true
    (fate ~slot:3 ~src:5 ~dst:6 = None);
  Alcotest.(check bool) "healed at until_slot" true (fate ~slot:5 ~src:0 ~dst:5 = None)

let omission_semantics () =
  let plan =
    { Faults.none with
      Faults.processes =
        [ (2, Faults.Send_omission { from_ = 2; drop_mod = 2; drop_rem = 1 }) ]
    }
  in
  let fate ~slot ~dst = fate_of plan ~slot ~src:2 ~dst in
  Alcotest.(check bool) "before from_" true (fate ~slot:1 ~dst:1 = None);
  Alcotest.(check bool) "matching dst omitted" true
    (fate ~slot:2 ~dst:1 = Some Faults.Omitted);
  Alcotest.(check bool) "non-matching dst delivered" true (fate ~slot:2 ~dst:4 = None);
  Alcotest.(check bool) "still omitting later" true
    (fate ~slot:9 ~dst:7 = Some Faults.Omitted)

let crash_semantics () =
  let rt =
    Faults.start ~n:9
      { Faults.none with
        Faults.processes =
          [
            (1, Faults.Crash { at = 3 });
            (2, Faults.Crash_recovery { down_at = 2; up_at = 4 });
          ]
      }
  in
  let step slot = Faults.transitions rt ~slot in
  Alcotest.(check bool) "slot 0: quiet" true (step 0 = []);
  Alcotest.(check bool) "nobody down yet" false (Faults.is_down rt 1 || Faults.is_down rt 2);
  Alcotest.(check bool) "slot 2: p2 goes down" true
    (step 2 = [ (2, Faults.Went_down) ] && Faults.is_down rt 2);
  Alcotest.(check bool) "slot 3: p1 crashes" true
    (step 3 = [ (1, Faults.Crashed) ] && Faults.is_down rt 1 && Faults.is_down rt 2);
  Alcotest.(check bool) "slot 4: p2 recovers, p1 stays down" true
    (step 4 = [ (2, Faults.Recovered) ]
    && Faults.is_down rt 1
    && not (Faults.is_down rt 2));
  Alcotest.(check bool) "crash is forever" true (step 9 = [] && Faults.is_down rt 1)

(* ---- determinism end to end ---------------------------------------------- *)

let trace_string o =
  match o.Instances.trace_json with
  | Some j -> Jsonx.to_string j
  | None -> Alcotest.fail "no trace recorded"

let run_traced ~fault_seed () =
  let c = cfg 9 in
  Instances.run_weak_ba ~cfg:c
    ~options:
      {
        Instances.default_options with
        Instances.seed = 7L;
        record_trace = true;
        faults =
          { Faults.none with Faults.seed = fault_seed; drop = 0.3; dup = 0.1 };
      }
    ~inputs:(Array.init 9 (fun i -> Printf.sprintf "v%d" (i mod 2)))
    ~adversary:(Adversary.const (Adversary.honest ~name:"honest"))
    ()

let traces_byte_identical () =
  Alcotest.(check string)
    "same seed + same plan -> byte-identical traces"
    (trace_string (run_traced ~fault_seed:11L ()))
    (trace_string (run_traced ~fault_seed:11L ()));
  Alcotest.(check bool)
    "a different fault seed actually changes the run" false
    (String.equal
       (trace_string (run_traced ~fault_seed:11L ()))
       (trace_string (run_traced ~fault_seed:12L ())))

(* The whole degradation matrix is reproducible and jobs-independent:
   cells run in worker domains must equal the sequential sweep byte for
   byte (seeds derive from cell identity alone, never from schedule). *)
let matrix_jobs_independent () =
  let json cells = Jsonx.to_string (Degrade.matrix_to_json cells) in
  let sequential = json (Degrade.run_all ()) in
  Alcotest.(check string)
    "jobs=3 matrix == sequential matrix" sequential
    (json (Degrade.run_all ~jobs:3 ()));
  let protocol, profile, level = Degrade.planted_unsafe in
  let cell () =
    json
      [
        Degrade.run_cell ~options:Instances.default_options ~protocol ~profile
          ~level;
      ]
  in
  Alcotest.(check string) "planted cell reproducible" (cell ()) (cell ())

(* Chaos verdicts are shard-invariant: the same cell run with its engine
   sharded across domains renders the same JSON — verdict, realized f,
   words, slots, everything. Includes the planted-unsafe cell, so even a
   violation raised mid-run is raised at the same place. *)
let cells_shard_invariant () =
  let planted_p, planted_prof, planted_l = Degrade.planted_unsafe in
  let cells =
    [
      ("weak-ba", "partition", 3);
      ("bb", "drop", 2);
      ("strong-ba", "delay", 1);
      (planted_p, planted_prof, planted_l);
    ]
  in
  List.iter
    (fun (protocol, profile, level) ->
      let render shards =
        Jsonx.to_string
          (Degrade.matrix_to_json
             [
               Degrade.run_cell
                 ~options:{ Instances.default_options with Instances.shards }
                 ~protocol ~profile ~level;
             ])
      in
      let base = render 1 in
      List.iter
        (fun shards ->
          Alcotest.(check string)
            (Printf.sprintf "%s/%s/L%d shards=%d" protocol profile level shards)
            base (render shards))
        [ 2; 4 ])
    cells

(* ---- the planted reliability violation ----------------------------------- *)

let planted_cell_unsafe () =
  let protocol, profile, level = Degrade.planted_unsafe in
  let c =
    Degrade.run_cell ~options:Instances.default_options ~protocol ~profile
      ~level
  in
  (match c.Degrade.verdict with
  | Monitor.Unsafe v ->
    Alcotest.(check string) "disagreement, specifically" "agreement"
      v.Monitor.monitor
  | v ->
    Alcotest.failf "planted cell is %s"
      (Format.asprintf "%a" Monitor.pp_classification v));
  (* The same timed partition is harmless against every sound instance:
     quorum intersection (2(t+1) > n) is exactly what the ablation gave
     up. *)
  List.iter
    (fun protocol ->
      match
        (Degrade.run_cell ~options:Instances.default_options ~protocol ~profile
           ~level)
          .Degrade.verdict
      with
      | Monitor.Unsafe v ->
        Alcotest.failf "sound %s went unsafe under the split: %s" protocol
          (Format.asprintf "%a" Monitor.pp_violation v)
      | _ -> ())
    Degrade.protocols

let () =
  Alcotest.run "faults"
    [
      ( "plan",
        [
          Alcotest.test_case "validation" `Quick validation;
          Alcotest.test_case "json round-trip" `Quick json_roundtrip;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "deterministic fates" `Quick runtime_deterministic;
          Alcotest.test_case "self-sends immune" `Quick self_sends_immune;
          Alcotest.test_case "certain faults" `Quick certain_faults;
          Alcotest.test_case "partition cut" `Quick partition_semantics;
          Alcotest.test_case "send omission" `Quick omission_semantics;
          Alcotest.test_case "crash and recovery" `Quick crash_semantics;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "byte-identical traces" `Quick traces_byte_identical;
          Alcotest.test_case "chaos cells shard-invariant" `Quick
            cells_shard_invariant;
          Alcotest.test_case "matrix jobs-independent" `Quick
            matrix_jobs_independent;
        ] );
      ( "planted",
        [ Alcotest.test_case "split cell unsafe" `Quick planted_cell_unsafe ] );
    ]
