(* The throughput service: workload generation, batching, the
   submit/claim/finalize lifecycle, and the mewc-throughput/1 gate. *)

open Mewc_sim
open Mewc_core

let cfg n = Config.optimal ~n
let honest = Adversary.const (Adversary.honest ~name:"h")

(* ---- workload ----------------------------------------------------------- *)

let workload_deterministic () =
  let profile = Option.get (Workload.find_preset "bursty") in
  let gen () = Workload.generate ~seed:42L ~profile ~slots:50 in
  Alcotest.(check bool) "same seed, same traffic" true (gen () = gen ());
  let other = Workload.generate ~seed:43L ~profile ~slots:50 in
  Alcotest.(check bool) "different seed, different traffic" false
    (gen () = other)

let workload_shape () =
  let profile = Option.get (Workload.find_preset "steady") in
  let reqs = Workload.generate ~seed:7L ~profile ~slots:100 in
  Alcotest.(check bool)
    (Printf.sprintf "~1 req/slot (%d in 100 slots)" (List.length reqs))
    true
    (List.length reqs > 50 && List.length reqs < 200);
  List.iteri
    (fun i r ->
      Alcotest.(check int) "dense ids in arrival order" i r.Workload.id;
      Alcotest.(check bool) "arrival in range" true
        (r.Workload.arrival >= 0 && r.Workload.arrival < 100))
    reqs;
  let bursty = Option.get (Workload.find_preset "bursty") in
  let at_bursts =
    List.filter
      (fun r -> r.Workload.arrival mod 8 = 0)
      (Workload.generate ~seed:7L ~profile:bursty ~slots:64)
  in
  Alcotest.(check bool) "bursts actually land" true (List.length at_bursts >= 48)

let workload_validation () =
  let bad p =
    match Workload.validate p with
    | () -> Alcotest.fail "invalid profile accepted"
    | exception Invalid_argument _ -> ()
  in
  bad { Workload.arrival = Workload.Steady 0.0; sizes = Workload.Fixed 1 };
  bad { Workload.arrival = Workload.Steady 1.0; sizes = Workload.Fixed 0 };
  bad
    {
      Workload.arrival = Workload.Bursty { rate = 0.1; burst_every = 0; burst_size = 1 };
      sizes = Workload.Fixed 1;
    };
  bad
    {
      Workload.arrival = Workload.Steady 1.0;
      sizes = Workload.Skewed { base = 1; heavy = 4; heavy_weight = 1.5 };
    }

(* ---- the lifecycle ------------------------------------------------------ *)

let lifecycle_commits () =
  let svc = Service.create ~cfg:(cfg 9) () in
  let t0 = Service.submit svc ~arrival:0 ~size:4 in
  let t1 = Service.submit svc ~arrival:1 ~size:4 in
  let t2 = Service.submit svc ~arrival:9 ~size:4 in
  let r = Service.finalize svc ~seed:1L ~adversary:honest () in
  Alcotest.(check int) "all committed" 3 r.Service.committed;
  (match (Service.claim r t0, Service.claim r t1) with
  | ( Service.Committed { index = i0; decided_slot = d0; _ },
      Service.Committed { index = i1; decided_slot = d1; _ } ) ->
    Alcotest.(check int) "same batch" i0 i1;
    Alcotest.(check int) "same landing slot" d0 d1
  | _ -> Alcotest.fail "first two requests not committed");
  (match Service.claim r t2 with
  | Service.Committed { index; latency; _ } ->
    Alcotest.(check bool) "age cap split the batch" true (index > 0);
    Alcotest.(check bool) "latency non-negative" true (latency >= 0)
  | _ -> Alcotest.fail "third request not committed");
  (* misuse *)
  (match Service.claim r 99 with
  | _ -> Alcotest.fail "unknown ticket accepted"
  | exception Invalid_argument _ -> ());
  match Service.submit svc ~arrival:10 ~size:1 with
  | _ -> Alcotest.fail "submit after finalize accepted"
  | exception Failure _ -> ()

let batch_caps_respected () =
  let svc =
    Service.create ~cfg:(cfg 9)
      ~policy:{ Service.max_requests = 2; max_words = 100; max_age = 50 }
      ()
  in
  let tickets = List.init 5 (fun i -> Service.submit svc ~arrival:i ~size:1) in
  let r = Service.finalize svc ~seed:1L ~adversary:honest () in
  Alcotest.(check int) "ceil(5/2) batches" 3 r.Service.length;
  List.iteri
    (fun k t ->
      match Service.claim r t with
      | Service.Committed { index; _ } ->
        Alcotest.(check int) (Printf.sprintf "req %d batch" k) (k / 2) index
      | _ -> Alcotest.fail "request not committed")
    tickets

let byzantine_proposer_skips_batch () =
  (* Crash the proposer of batch 1 (pid 1) from slot 0: its batch's
     requests come back Skipped, everything else commits. *)
  let n = 9 in
  let svc =
    Service.create ~cfg:(cfg n)
      ~policy:{ Service.max_requests = 1; max_words = 100; max_age = 100 }
      ()
  in
  let tickets = List.init 3 (fun i -> Service.submit svc ~arrival:i ~size:1) in
  let r =
    Service.finalize svc ~seed:2L
      ~adversary:(Adversary.const (Adversary.crash ~victims:[ 1 ] ()))
      ()
  in
  Alcotest.(check int) "one request skipped" 1 r.Service.skipped;
  List.iteri
    (fun k t ->
      match (k, Service.claim r t) with
      | 1, Service.Skipped { index } -> Alcotest.(check int) "batch 1" 1 index
      | 1, _ -> Alcotest.fail "batch 1 not skipped"
      | _, Service.Committed _ -> ()
      | _, d ->
        Alcotest.failf "req %d: %s" k
          (Format.asprintf "%a" Service.pp_disposition d))
    tickets

let instance_cap_leaves_unassigned () =
  let svc =
    Service.create ~cfg:(cfg 9)
      ~policy:{ Service.max_requests = 1; max_words = 100; max_age = 100 }
      ()
  in
  let tickets = List.init 4 (fun i -> Service.submit svc ~arrival:i ~size:1) in
  let r = Service.finalize svc ~seed:1L ~max_instances:2 ~adversary:honest () in
  Alcotest.(check int) "2 instances" 2 r.Service.length;
  Alcotest.(check int) "2 unassigned" 2 r.Service.unassigned;
  List.iteri
    (fun k t ->
      match (Service.claim r t, k < 2) with
      | Service.Committed _, true | Service.Unassigned, false -> ()
      | d, _ ->
        Alcotest.failf "req %d: %s" k
          (Format.asprintf "%a" Service.pp_disposition d))
    tickets

let pipelined_service_matches_oracle () =
  (* End-to-end restatement of the Repeated_bb invariant at the service
     layer: same traffic, same committed log at every depth — but strictly
     fewer wall slots and no-worse p99 under the pipeline. *)
  let c = cfg 9 in
  let profile = Option.get (Workload.find_preset "steady") in
  let run offset =
    let svc = Service.create ~cfg:c ?offset () in
    Service.submit_workload svc
      (Workload.generate ~seed:11L ~profile ~slots:24);
    Service.finalize svc ~seed:11L ~adversary:honest ()
  in
  let seq = run None in
  let deep = run (Some 1) in
  Alcotest.(check bool) "same log" true (deep.Service.log = seq.Service.log);
  Alcotest.(check int) "same commits" seq.Service.committed deep.Service.committed;
  Alcotest.(check bool)
    (Printf.sprintf "fewer slots (%d < %d)" deep.Service.slots seq.Service.slots)
    true
    (deep.Service.slots < seq.Service.slots);
  Alcotest.(check bool)
    (Printf.sprintf "p99 no worse (%d <= %d)" deep.Service.p99_latency
       seq.Service.p99_latency)
    true
    (deep.Service.p99_latency <= seq.Service.p99_latency)

(* ---- the experiment ------------------------------------------------------ *)

let smoke_gate_passes () =
  match Throughput.smoke () with
  | Ok e ->
    Alcotest.(check bool) "render non-empty" true
      (String.length (Throughput.render e) > 0)
  | Error e -> Alcotest.failf "throughput smoke: %s" e

let ledger_append_roundtrip () =
  let path = Filename.temp_file "mewc-throughput" ".json" in
  Sys.remove path;
  let entry =
    {
      Throughput.rev = "r1";
      date = "d1";
      cells = [ Throughput.run_cell ~n:9 ~workload:"steady" ~depth:"half" () ];
      slo = [];
    }
  in
  (match Throughput.append path entry with
  | Ok 1 -> ()
  | Ok k -> Alcotest.failf "first append counted %d" k
  | Error e -> Alcotest.fail e);
  (match Throughput.append path { entry with Throughput.rev = "r2" } with
  | Ok 2 -> ()
  | Ok k -> Alcotest.failf "second append counted %d" k
  | Error e -> Alcotest.fail e);
  (match Throughput.load path with
  | Ok [ _; _ ] -> ()
  | Ok es -> Alcotest.failf "loaded %d entries" (List.length es)
  | Error e -> Alcotest.fail e);
  (* wrong-schema files are rejected, not silently reset *)
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "{\"schema\":\"mewc-perf/2\"}");
  (match Throughput.load path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong schema accepted");
  Sys.remove path

let cells_invariant_under_engine_knobs () =
  let render options =
    Mewc_prelude.Jsonx.to_string
      (Throughput.entry_to_json
         {
           Throughput.rev = "x";
           date = "x";
           cells = Throughput.run_grid ~options [ (9, "bursty", "deep") ];
           slo = [];
         })
  in
  let base = render Engine.default_options in
  List.iter
    (fun (scheduler, shards) ->
      Alcotest.(check string)
        (Printf.sprintf "%s shards=%d"
           (Engine.scheduler_to_string scheduler)
           shards)
        base
        (render { Engine.default_options with Engine.scheduler; shards }))
    [ (`Legacy, 2); (`Event_driven, 1); (`Event_driven, 2) ]

let () =
  Alcotest.run "throughput service"
    [
      ( "workload",
        [
          Alcotest.test_case "deterministic" `Quick workload_deterministic;
          Alcotest.test_case "shape" `Quick workload_shape;
          Alcotest.test_case "validation" `Quick workload_validation;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "submit/claim/finalize" `Quick lifecycle_commits;
          Alcotest.test_case "batch caps" `Quick batch_caps_respected;
          Alcotest.test_case "byzantine proposer skips batch" `Quick
            byzantine_proposer_skips_batch;
          Alcotest.test_case "instance cap" `Quick instance_cap_leaves_unassigned;
          Alcotest.test_case "pipelined == oracle" `Quick
            pipelined_service_matches_oracle;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "smoke gate" `Slow smoke_gate_passes;
          Alcotest.test_case "ledger round-trip" `Quick ledger_append_roundtrip;
          Alcotest.test_case "invariant under scheduler x shards" `Quick
            cells_invariant_under_engine_knobs;
        ] );
    ]
