(* The observability layer: metrics registry laws (merge commutativity /
   associativity, shard-count and scheduler invariance of snapshots),
   the unified nearest-rank quantile, the injectable-clock heartbeat, the
   report loaders against the committed artifacts, and the report
   generator's determinism plus its tamper-detection exit code.

   The committed BENCH_*.json artifacts and docs/report/ files are declared
   dune deps, so they sit at ../ relative to the test's working directory
   — the same layout `mewc report` sees at the repo root. *)

module Metrics = Mewc_obs.Metrics
module Heartbeat = Mewc_obs.Heartbeat
module Loader = Mewc_report.Loader
module Consistency = Mewc_report.Consistency
module Figure = Mewc_report.Figure
module Report = Mewc_report.Report
module Sweep = Mewc_core.Sweep
module Instances = Mewc_core.Instances
module Jsonx = Mewc_prelude.Jsonx

let artifact_dir = ".."

(* ---- nearest-rank quantile ----------------------------------------------- *)

(* The formula Service used before the unification, verbatim — the
   throughput artifact's p50/p99 columns must never move. *)
let old_service_percentile p sorted =
  match Array.length sorted with
  | 0 -> 0
  | len ->
    let rank = int_of_float (ceil (p *. float_of_int len /. 100.0)) - 1 in
    sorted.(max 0 (min (len - 1) rank))

let test_nearest_rank_matches_service () =
  let samples =
    [
      [||];
      [| 5 |];
      [| 1; 2 |];
      [| 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 |];
      Array.init 97 (fun i -> (i * i) mod 301);
      Array.init 100 (fun i -> i);
    ]
  in
  List.iter
    (fun a ->
      let sorted = Array.copy a in
      Array.sort compare sorted;
      List.iter
        (fun p ->
          Alcotest.(check int)
            (Printf.sprintf "p%.0f over %d samples" p (Array.length a))
            (old_service_percentile p sorted)
            (Metrics.nearest_rank p sorted))
        [ 0.0; 1.0; 25.0; 50.0; 90.0; 99.0; 100.0 ])
    samples

let test_percentile_of_list () =
  Alcotest.(check int) "median of 1..9" 5
    (Metrics.percentile_of_list 50.0 [ 9; 1; 8; 2; 7; 3; 6; 4; 5 ]);
  Alcotest.(check int) "empty" 0 (Metrics.percentile_of_list 50.0 [])

(* ---- snapshot merge laws -------------------------------------------------- *)

let snap counters gauges hists =
  {
    Metrics.counter_values = counters;
    gauge_values = gauges;
    histogram_values = hists;
  }

let snap_str s = Jsonx.to_string (Metrics.snapshot_to_json s)

let s1 = snap [ ("a", 1); ("b", 10) ] [ ("g", 5) ] [ ("h", [| 1; 0; 2 |]) ]
let s2 = snap [ ("b", 3); ("c", 7) ] [ ("g", 2); ("g2", 9) ] [ ("h", [| 0; 4 |]) ]
let s3 = snap [ ("a", 2) ] [] [ ("h2", [| 1 |]) ]

let test_merge_commutative () =
  Alcotest.(check string)
    "s1+s2 = s2+s1"
    (snap_str (Metrics.merge s1 s2))
    (snap_str (Metrics.merge s2 s1))

let test_merge_associative () =
  Alcotest.(check string)
    "(s1+s2)+s3 = s1+(s2+s3)"
    (snap_str (Metrics.merge (Metrics.merge s1 s2) s3))
    (snap_str (Metrics.merge s1 (Metrics.merge s2 s3)))

let test_merge_semantics () =
  let m = Metrics.merge s1 s2 in
  Alcotest.(check (list (pair string int)))
    "counters sum" [ ("a", 1); ("b", 13); ("c", 7) ] m.Metrics.counter_values;
  Alcotest.(check (list (pair string int)))
    "gauges max" [ ("g", 5); ("g2", 9) ] m.Metrics.gauge_values;
  match m.Metrics.histogram_values with
  | [ ("h", buckets) ] ->
    Alcotest.(check (array int)) "histograms pointwise" [| 1; 4; 2 |] buckets
  | other ->
    Alcotest.failf "unexpected histograms: %d entries" (List.length other)

let test_registered_but_untouched () =
  let reg = Metrics.create () in
  let _c = Metrics.counter reg "never.incremented" in
  let s = Metrics.snapshot reg in
  Alcotest.(check (list (pair string int)))
    "appears as zero" [ ("never.incremented", 0) ] s.Metrics.counter_values

(* ---- shard-count and scheduler invariance -------------------------------- *)

(* One real weak-BA point (f = t, so the fallback path runs too) under
   every (scheduler, shards) combination: the engine/pki counter snapshot
   must be byte-identical across all six runs — the registry's whole
   design contract. *)
let test_snapshot_invariance () =
  let point = { Sweep.protocol = "weak-ba"; n = 9; f_spec = "t" } in
  let snapshot_under ~scheduler ~shards =
    let reg = Metrics.create () in
    let options =
      {
        Instances.default_options with
        Instances.scheduler;
        shards;
        metrics = Some reg;
      }
    in
    let (_ : Sweep.row) = Sweep.run_point ~options point in
    snap_str (Metrics.snapshot reg)
  in
  let baseline = snapshot_under ~scheduler:`Legacy ~shards:1 in
  Alcotest.(check bool) "baseline is non-empty" true (String.length baseline > 2);
  Alcotest.(check bool)
    "engine counters present" true
    (let s = baseline in
     let has sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     has "engine.slots" && has "engine.words" && has "pki.signs");
  List.iter
    (fun (scheduler, shards, label) ->
      Alcotest.(check string) label baseline (snapshot_under ~scheduler ~shards))
    [
      (`Legacy, 2, "legacy shards=2");
      (`Legacy, 4, "legacy shards=4");
      (`Event_driven, 1, "event shards=1");
      (`Event_driven, 2, "event shards=2");
      (`Event_driven, 4, "event shards=4");
    ]

(* ---- heartbeat ------------------------------------------------------------ *)

let test_heartbeat_lines () =
  let now = ref 100.0 in
  let lines = ref [] in
  let hb =
    Heartbeat.create ~every:2 ~total:4 ~label:"sweep"
      ~out:(fun l -> lines := l :: !lines)
      ~clock:(fun () -> !now)
      ()
  in
  now := 101.5;
  Heartbeat.tick hb;
  (* count 1: below every=2, silent *)
  Alcotest.(check (list string)) "no line yet" [] !lines;
  Heartbeat.tick hb;
  now := 103.0;
  Heartbeat.tick hb;
  Heartbeat.tick hb;
  Heartbeat.finish hb;
  (* finish after a multiple-of-every tick adds nothing *)
  Alcotest.(check (list string))
    "two lines, oldest last"
    [ "[mewc] sweep 4/4 (100%) 3.0s"; "[mewc] sweep 2/4 (50%) 1.5s" ]
    !lines

let test_heartbeat_finish_flushes () =
  let lines = ref [] in
  let hb =
    Heartbeat.create ~every:10 ~label:"odd"
      ~out:(fun l -> lines := l :: !lines)
      ~clock:(fun () -> 0.0)
      ()
  in
  Heartbeat.tick hb;
  Heartbeat.tick hb;
  Heartbeat.tick hb;
  Alcotest.(check int) "silent below every" 0 (List.length !lines);
  Heartbeat.finish hb;
  Alcotest.(check (list string)) "final line" [ "[mewc] odd 3 0.0s" ] !lines

(* ---- loaders over the committed artifacts --------------------------------- *)

let ok_exn = function
  | Ok v -> v
  | Error e -> Alcotest.failf "loader failed: %s" e

let test_load_all_committed () =
  let a = ok_exn (Loader.load_all ~dir:artifact_dir) in
  Alcotest.(check bool) "perf has rows" true (a.Loader.perf.Loader.rows <> []);
  Alcotest.(check bool)
    "ledger has the ratio baselines" true
    (List.length a.Loader.ledger >= 5);
  Alcotest.(check bool)
    "throughput entry present" true
    (a.Loader.throughput <> []);
  Alcotest.(check bool)
    "degrade cells present" true
    (List.length a.Loader.degrade.Loader.dg_cells > 100);
  Alcotest.(check int) "observability runs" 12 (List.length a.Loader.observability)

let test_committed_artifacts_consistent () =
  let a = ok_exn (Loader.load_all ~dir:artifact_dir) in
  match Consistency.run a with
  | [] -> ()
  | findings -> Alcotest.failf "findings:\n%s" (Consistency.render findings)

let test_loader_missing_dir () =
  match Loader.load_all ~dir:"/nonexistent-mewc-artifacts" with
  | Ok _ -> Alcotest.fail "loading from a missing directory succeeded"
  | Error e -> Alcotest.(check bool) "names the file" true (String.length e > 0)

(* ---- report generation ----------------------------------------------------- *)

let test_generate_deterministic () =
  let a = ok_exn (Loader.load_all ~dir:artifact_dir) in
  let once = Report.generate a and twice = Report.generate a in
  Alcotest.(check int) "file count" (List.length once) (List.length twice);
  List.iter2
    (fun (n1, c1) (n2, c2) ->
      Alcotest.(check string) "name" n1 n2;
      Alcotest.(check string) (n1 ^ " bytes") c1 c2)
    once twice

let test_generate_matches_committed () =
  let a = ok_exn (Loader.load_all ~dir:artifact_dir) in
  let files = Report.generate a in
  Alcotest.(check (list string))
    "no drift against docs/report" []
    (Report.check ~dir:(Filename.concat artifact_dir "docs/report") files)

let test_frontier_csv_shape () =
  let a = ok_exn (Loader.load_all ~dir:artifact_dir) in
  let csv = Figure.frontier_csv a.Loader.perf.Loader.rows in
  let lines = String.split_on_char '\n' csv in
  Alcotest.(check string)
    "header"
    "protocol,n,t,f_spec,f,words,messages,signatures,paper_bound_n_f1,civit_adaptive_n_tf,king_saia_nsqrtn_log2n"
    (List.hd lines);
  (* one line per row plus the header and the trailing newline *)
  Alcotest.(check int)
    "row count"
    (List.length a.Loader.perf.Loader.rows + 2)
    (List.length lines)

(* ---- the CLI: alias identity and tamper detection -------------------------- *)

let mewc = Filename.concat (Filename.concat ".." "bin") "mewc.exe"

let run_out args =
  let tmp = Filename.temp_file "mewc-obs" ".out" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let code =
        Sys.command
          (Printf.sprintf "%s %s >%s 2>/dev/null" (Filename.quote mewc) args
             (Filename.quote tmp))
      in
      (code, In_channel.with_open_text tmp In_channel.input_all))

let read_file path = In_channel.with_open_text path In_channel.input_all

(* `perf frontier-csv` must produce the exact bytes of the committed
   frontier.csv when pointed at the same ledger entry — the alias and the
   report can never disagree. Entry 1 is the frontier-grid entry the
   committed report is built from. *)
let test_frontier_csv_alias_identity () =
  let code, out =
    run_out
      (Printf.sprintf "perf frontier-csv --ledger %s 1"
         (Filename.concat artifact_dir "BENCH_ledger.json"))
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check string)
    "byte-identical to docs/report/frontier.csv"
    (read_file (Filename.concat artifact_dir "docs/report/frontier.csv"))
    out

let with_scratch_artifacts f =
  let dir = Filename.temp_file "mewc-report" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Unix.mkdir (Filename.concat dir "docs") 0o755;
  Unix.mkdir (Filename.concat dir "docs/report") 0o755;
  let copy src dst =
    let contents = read_file src in
    Out_channel.with_open_text dst (fun oc ->
        Out_channel.output_string oc contents)
  in
  List.iter
    (fun name ->
      copy (Filename.concat artifact_dir name) (Filename.concat dir name))
    [
      "BENCH_perf.json";
      "BENCH_ledger.json";
      "BENCH_throughput.json";
      "BENCH_degrade.json";
      "BENCH_observability.json";
    ];
  let report_src = Filename.concat artifact_dir "docs/report" in
  Array.iter
    (fun name ->
      copy
        (Filename.concat report_src name)
        (Filename.concat dir (Filename.concat "docs/report" name)))
    (Sys.readdir report_src);
  Fun.protect
    ~finally:(fun () ->
      let rec rm path =
        if Sys.is_directory path then begin
          Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
          Unix.rmdir path
        end
        else Sys.remove path
      in
      rm dir)
    (fun () -> f dir)

let test_check_clean_copy () =
  with_scratch_artifacts (fun dir ->
      let code, _ = run_out (Printf.sprintf "report --check --dir %s" dir) in
      Alcotest.(check int) "exit 0 on a faithful copy" 0 code)

let test_check_catches_tampered_ledger () =
  with_scratch_artifacts (fun dir ->
      (* inflate one word count in the ledger: the smoke-replay invariant
         (and the regenerated figures) must both notice *)
      let path = Filename.concat dir "BENCH_ledger.json" in
      let contents = read_file path in
      let needle = "\"words\":144" in
      let idx =
        let n = String.length contents and m = String.length needle in
        let rec go i =
          if i + m > n then
            Alcotest.fail "ledger fixture lost its bb n=9 row (words=144)"
          else if String.sub contents i m = needle then i
          else go (i + 1)
        in
        go 0
      in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc (String.sub contents 0 idx);
          Out_channel.output_string oc "\"words\":9144";
          Out_channel.output_string oc
            (String.sub contents
               (idx + String.length needle)
               (String.length contents - idx - String.length needle)));
      let code, _ = run_out (Printf.sprintf "report --check --dir %s" dir) in
      Alcotest.(check int) "exit 3 on a tampered row" 3 code)

let () =
  Alcotest.run "obs"
    [
      ( "quantiles",
        [
          Alcotest.test_case "nearest-rank = old Service formula" `Quick
            test_nearest_rank_matches_service;
          Alcotest.test_case "percentile_of_list" `Quick test_percentile_of_list;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "merge commutative" `Quick test_merge_commutative;
          Alcotest.test_case "merge associative" `Quick test_merge_associative;
          Alcotest.test_case "merge semantics" `Quick test_merge_semantics;
          Alcotest.test_case "registered-but-untouched is zero" `Quick
            test_registered_but_untouched;
          Alcotest.test_case "snapshot invariant over shards x scheduler" `Quick
            test_snapshot_invariance;
        ] );
      ( "heartbeat",
        [
          Alcotest.test_case "every/total lines" `Quick test_heartbeat_lines;
          Alcotest.test_case "finish flushes a partial count" `Quick
            test_heartbeat_finish_flushes;
        ] );
      ( "loaders",
        [
          Alcotest.test_case "all five committed artifacts load" `Quick
            test_load_all_committed;
          Alcotest.test_case "committed artifacts are consistent" `Quick
            test_committed_artifacts_consistent;
          Alcotest.test_case "missing directory is an error" `Quick
            test_loader_missing_dir;
        ] );
      ( "report",
        [
          Alcotest.test_case "generation is deterministic" `Quick
            test_generate_deterministic;
          Alcotest.test_case "regeneration matches docs/report" `Quick
            test_generate_matches_committed;
          Alcotest.test_case "frontier csv shape" `Quick test_frontier_csv_shape;
          Alcotest.test_case "frontier-csv alias is byte-identical" `Quick
            test_frontier_csv_alias_identity;
          Alcotest.test_case "--check ok on a faithful copy" `Quick
            test_check_clean_copy;
          Alcotest.test_case "--check exits 3 on a tampered ledger row" `Quick
            test_check_catches_tampered_ledger;
        ] );
    ]
