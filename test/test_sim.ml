open Mewc_sim

let config_validation () =
  Alcotest.check_raises "even n"
    (Invalid_argument "Config.optimal: need odd n >= 3") (fun () ->
      ignore (Config.optimal ~n:4));
  Alcotest.check_raises "resilience"
    (Invalid_argument "Config.create: need n >= 2t + 1") (fun () ->
      ignore (Config.create ~n:4 ~t:2));
  let cfg = Config.create ~n:7 ~t:2 in
  Alcotest.(check int) "n" 7 cfg.Config.n;
  Alcotest.(check int) "t" 2 cfg.Config.t

let big_quorum_formula () =
  (* ceil((n+t+1)/2), cross-checked against float arithmetic. *)
  List.iter
    (fun n ->
      let cfg = Config.optimal ~n in
      let expected =
        int_of_float (ceil (float_of_int (n + cfg.Config.t + 1) /. 2.))
      in
      Alcotest.(check int) (Printf.sprintf "n=%d" n) expected (Config.big_quorum cfg))
    [ 3; 5; 7; 9; 11; 21; 33; 65 ]

let quorum_intersection () =
  (* The paper's §6 key fact: two big quorums intersect in >= t+1 processes,
     hence in a correct one, for every n = 2t+1. *)
  List.iter
    (fun n ->
      let cfg = Config.optimal ~n in
      let q = Config.big_quorum cfg in
      let min_intersection = (2 * q) - n in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d" n)
        true
        (min_intersection >= cfg.Config.t + 1))
    [ 3; 5; 7; 9; 11; 21; 33; 65; 129 ]

(* A ping protocol: process 0 sends one message to 1 at slot 0; 1 replies. *)
type ping_state = { got : int list }

let ping_protocol pid =
  {
    Process.init = { got = [] };
    wake = None;
    step =
      (fun ~slot ~inbox st ->
        let st =
          { got = st.got @ List.map (fun e -> e.Envelope.sent_at) inbox }
        in
        if slot = 0 && pid = 0 then (st, [ ("ping", 1) ])
        else if pid = 1 && inbox <> [] then (st, [ ("pong", 0) ])
        else (st, []));
  }

let delivery_next_slot () =
  let cfg = Config.create ~n:3 ~t:1 in
  let res =
    Engine.run ~cfg ~words:(fun _ -> 1) ~horizon:4 ~protocol:ping_protocol
      ~adversary:(Adversary.honest ~name:"h") ()
  in
  (* p1 received the slot-0 ping (delivered at slot 1), p0 the slot-1 pong. *)
  Alcotest.(check (list int)) "p1 got ping sent at 0" [ 0 ] res.Engine.states.(1).got;
  Alcotest.(check (list int)) "p0 got pong sent at 1" [ 1 ] res.Engine.states.(0).got;
  Alcotest.(check int) "words" 2 (Meter.correct_words res.Engine.meter)

let self_sends_free () =
  let cfg = Config.create ~n:3 ~t:1 in
  let protocol pid =
    {
      Process.init = 0;
      wake = None;
      step =
        (fun ~slot ~inbox st ->
          let st = st + List.length inbox in
          if slot = 0 then (st, [ ("self", pid) ]) else (st, []));
    }
  in
  let res =
    Engine.run ~cfg ~words:(fun _ -> 1) ~horizon:3 ~protocol
      ~adversary:(Adversary.honest ~name:"h") ()
  in
  Alcotest.(check int) "no words charged" 0 (Meter.correct_words res.Engine.meter);
  Alcotest.(check int) "but delivered" 1 res.Engine.states.(0)

let corruption_budget_enforced () =
  let cfg = Config.create ~n:3 ~t:1 in
  let adversary =
    {
      Adversary.name = "greedy";
      corrupt = (fun view -> if view.Adversary.slot = 0 then [ 0; 1 ] else []);
      byz_step = (fun ~pid:_ _ -> []);
    }
  in
  let run () =
    ignore
      (Engine.run ~cfg ~words:(fun _ -> 1) ~horizon:2
         ~protocol:(fun _ -> Process.silent ()) ~adversary ())
  in
  Alcotest.check_raises "budget"
    (Invalid_argument "Engine.run: adversary greedy exceeded the corruption budget t=1")
    run

let rushing_adversary_sees_current_slot () =
  (* The Byzantine step must observe messages correct processes send in the
     same slot. *)
  let cfg = Config.create ~n:3 ~t:1 in
  let saw = ref false in
  let protocol pid =
    {
      Process.init = ();
      wake = None;
      step =
        (fun ~slot ~inbox:_ st ->
          if slot = 1 && pid = 0 then (st, [ ("secret", 2) ]) else (st, []));
    }
  in
  let adversary =
    {
      Adversary.name = "rusher";
      corrupt = (fun view -> if view.Adversary.slot = 0 then [ 1 ] else []);
      byz_step =
        (fun ~pid:_ view ->
          if
            List.exists
              (fun e -> e.Envelope.msg = "secret")
              view.Adversary.correct_outgoing
          then saw := true;
          []);
    }
  in
  ignore
    (Engine.run ~cfg ~words:(fun _ -> 1) ~horizon:3 ~protocol ~adversary ());
  Alcotest.(check bool) "saw in-flight message" true !saw

let corrupted_stop_stepping () =
  let cfg = Config.create ~n:3 ~t:1 in
  let steps = Array.make 3 0 in
  let protocol pid =
    {
      Process.init = ();
      wake = None;
      step =
        (fun ~slot:_ ~inbox:_ st ->
          steps.(pid) <- steps.(pid) + 1;
          (st, []));
    }
  in
  let res =
    Engine.run ~cfg ~words:(fun _ -> 1) ~horizon:5 ~protocol
      ~adversary:(Adversary.crash ~at:2 ~victims:[ 1 ] ()) ()
  in
  Alcotest.(check int) "p0 stepped every slot" 5 steps.(0);
  Alcotest.(check int) "p1 stopped at corruption" 2 steps.(1);
  Alcotest.(check (list int)) "corrupted" [ 1 ] res.Engine.corrupted;
  Alcotest.(check int) "f" 1 res.Engine.f

let byzantine_words_separate () =
  let cfg = Config.create ~n:3 ~t:1 in
  let protocol _ =
    {
      Process.init = ();
      step = (fun ~slot ~inbox:_ st -> if slot = 0 then (st, [ ("m", 1) ]) else (st, []));
      wake = None;
    }
  in
  let adversary =
    {
      Adversary.name = "chatter";
      corrupt = (fun view -> if view.Adversary.slot = 0 then [ 2 ] else []);
      byz_step =
        (fun ~pid:_ view ->
          if view.Adversary.slot = 0 then [ ("byz", 0); ("byz", 1) ] else []);
    }
  in
  let res = Engine.run ~cfg ~words:(fun _ -> 1) ~horizon:2 ~protocol ~adversary () in
  (* Correct senders: p0 -> p1 charged; p1 -> p1 self free. *)
  Alcotest.(check int) "correct words" 1 (Meter.correct_words res.Engine.meter);
  Alcotest.(check int) "byz words" 2 (Meter.byzantine_words res.Engine.meter)

let trace_records () =
  let cfg = Config.create ~n:3 ~t:1 in
  let protocol _ =
    {
      Process.init = ();
      step = (fun ~slot ~inbox:_ st -> if slot = 0 then (st, [ ("m", 1) ]) else (st, []));
      wake = None;
    }
  in
  let res =
    Engine.run ~cfg
      ~options:{ Engine.default_options with record_trace = true }
      ~words:(fun _ -> 1) ~horizon:2 ~protocol
      ~adversary:(Adversary.honest ~name:"h") ()
  in
  (* 2 slot boundaries + 3 sends (one per process, all addressed to p1). *)
  Alcotest.(check int) "events" 5 (Trace.length res.Engine.trace);
  let sends = Trace.sends res.Engine.trace in
  Alcotest.(check int) "sends" 3 (List.length sends);
  Alcotest.(check int) "exactly p1's self-send uncharged" 1
    (List.length (List.filter (fun s -> not s.Trace.charged) sends));
  let disabled =
    Engine.run ~cfg ~words:(fun _ -> 1) ~horizon:2 ~protocol
      ~adversary:(Adversary.honest ~name:"h") ()
  in
  Alcotest.(check int) "disabled" 0 (Trace.length disabled.Engine.trace)

let invalid_destination () =
  let cfg = Config.create ~n:3 ~t:1 in
  let protocol _ =
    {
      Process.init = ();
      step = (fun ~slot ~inbox:_ st -> if slot = 0 then (st, [ ("m", 99) ]) else (st, []));
      wake = None;
    }
  in
  Alcotest.check_raises "invalid dst"
    (Invalid_argument "Engine.run: p0 sent a message to unknown process 99")
    (fun () ->
      ignore
        (Engine.run ~cfg ~words:(fun _ -> 1) ~horizon:1 ~protocol
           ~adversary:(Adversary.honest ~name:"h") ()))

let staggered_crash_schedule () =
  let cfg = Config.create ~n:7 ~t:3 in
  let res =
    Engine.run ~cfg ~words:(fun _ -> 1) ~horizon:10
      ~protocol:(fun _ -> Process.silent ())
      ~adversary:(Adversary.staggered_crash ~victims:[ 1; 2; 3 ] ~every:3) ()
  in
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] res.Engine.corrupted

let meter_validation () =
  let m = Meter.create () in
  Alcotest.check_raises "zero words"
    (Invalid_argument "Meter.charge: each message is at least 1 word") (fun () ->
      ignore (Meter.charge m ~byzantine:false ~src:0 ~dst:1 ~words:0));
  Alcotest.check_raises "zero-word self-send still a wire-format bug"
    (Invalid_argument "Meter.charge: each message is at least 1 word") (fun () ->
      ignore (Meter.charge m ~byzantine:false ~src:2 ~dst:2 ~words:0));
  Alcotest.(check bool) "self-send free" false
    (Meter.charge m ~byzantine:false ~src:2 ~dst:2 ~words:5);
  Alcotest.(check int) "self-send accounted nothing" 0 (Meter.correct_words m);
  Alcotest.(check bool) "cross-send charged" true
    (Meter.charge m ~byzantine:false ~src:0 ~dst:1 ~words:3);
  Alcotest.(check int) "words" 3 (Meter.correct_words m);
  Alcotest.(check int) "messages" 1 (Meter.correct_messages m)

let meter_snapshot_isolation () =
  let m = Meter.create () in
  Meter.begin_slot m ~slot:0;
  ignore (Meter.charge m ~byzantine:false ~src:0 ~dst:1 ~words:2);
  Meter.begin_slot m ~slot:1;
  (* slot 1 stays silent, but must still appear as a zero row *)
  Meter.begin_slot m ~slot:2;
  ignore (Meter.charge m ~byzantine:true ~src:4 ~dst:1 ~words:7);
  let s = Meter.snapshot m in
  Alcotest.(check (list int)) "dense per-slot words" [ 2; 0; 0 ]
    (List.map (fun (r : Meter.row) -> r.Meter.words) s.Meter.per_slot);
  Alcotest.(check (list int)) "dense per-slot byz words" [ 0; 0; 7 ]
    (List.map (fun (r : Meter.row) -> r.Meter.byz_words) s.Meter.per_slot);
  Alcotest.(check (list int)) "senders" [ 0; 4 ]
    (List.map (fun (r : Meter.row) -> r.Meter.ix) s.Meter.per_process);
  (* Snapshot isolation: later charges never leak into an older snapshot. *)
  ignore (Meter.charge m ~byzantine:false ~src:0 ~dst:2 ~words:100);
  Alcotest.(check int) "snapshot frozen" 2 s.Meter.correct_words;
  Alcotest.(check int) "meter moved on" 102 (Meter.correct_words m);
  Meter.reset m;
  Alcotest.(check int) "reset zeroes totals" 0 (Meter.correct_words m);
  Alcotest.(check int) "reset zeroes series" 0
    (List.length (Meter.snapshot m).Meter.per_slot);
  Alcotest.(check int) "old snapshot survives reset" 2 s.Meter.correct_words

let zero_horizon () =
  let cfg = Config.create ~n:3 ~t:1 in
  let res =
    Engine.run ~cfg
      ~options:{ Engine.default_options with record_trace = true }
      ~words:(fun _ -> 1) ~horizon:0 ~protocol:ping_protocol
      ~adversary:(Adversary.honest ~name:"h") ()
  in
  Alcotest.(check int) "no slots" 0 res.Engine.slots;
  Alcotest.(check int) "no events" 0 (Trace.length res.Engine.trace);
  Alcotest.(check int) "no words" 0 (Meter.correct_words res.Engine.meter);
  Alcotest.(check int) "no per-slot rows" 0
    (List.length (Meter.snapshot res.Engine.meter).Meter.per_slot);
  Alcotest.(check int) "f" 0 res.Engine.f

let double_corruption_single_charge () =
  (* Naming an already-corrupted victim again must not consume budget (here
     t = 1, so a double charge would raise) nor emit a second event. *)
  let cfg = Config.create ~n:3 ~t:1 in
  let adversary =
    {
      Adversary.name = "stutter";
      corrupt =
        (fun view ->
          match view.Adversary.slot with 0 -> [ 1; 1 ] | 1 -> [ 1 ] | _ -> []);
      byz_step = (fun ~pid:_ _ -> []);
    }
  in
  let res =
    Engine.run ~cfg
      ~options:{ Engine.default_options with record_trace = true }
      ~words:(fun _ -> 1) ~horizon:3
      ~protocol:(fun _ -> Process.silent ()) ~adversary ()
  in
  Alcotest.(check int) "f" 1 res.Engine.f;
  Alcotest.(check (list int)) "corrupted once" [ 1 ] res.Engine.corrupted;
  let corruptions =
    Trace.events res.Engine.trace
    |> List.filter (function Trace.Corruption _ -> true | _ -> false)
  in
  Alcotest.(check int) "one corruption event" 1 (List.length corruptions)

let per_slot_series () =
  let cfg = Config.create ~n:3 ~t:1 in
  let res =
    Engine.run ~cfg ~words:(fun _ -> 1) ~horizon:4 ~protocol:ping_protocol
      ~adversary:(Adversary.honest ~name:"h") ()
  in
  let s = Meter.snapshot res.Engine.meter in
  (* ping in slot 0, pong in slot 1, then silence — but all 4 slots show. *)
  Alcotest.(check (list int)) "per-slot words" [ 1; 1; 0; 0 ]
    (List.map (fun (r : Meter.row) -> r.Meter.words) s.Meter.per_slot);
  Alcotest.(check (list int)) "per-process senders" [ 0; 1 ]
    (List.map (fun (r : Meter.row) -> r.Meter.ix) s.Meter.per_process)

let shuffle_deterministic () =
  let cfg = Config.create ~n:5 ~t:2 in
  let protocol pid =
    {
      Process.init = [];
      wake = None;
      step =
        (fun ~slot ~inbox st ->
          let st = st @ List.map (fun e -> e.Envelope.src) inbox in
          if slot = 0 then (st, List.map (fun p -> (pid, p)) (Mewc_prelude.Pid.all ~n:5))
          else (st, []));
    }
  in
  let run seed =
    let res =
      Engine.run ~cfg
        ~options:{ Engine.default_options with shuffle_seed = seed }
        ~words:(fun _ -> 1) ~horizon:3 ~protocol
        ~adversary:(Adversary.honest ~name:"h") ()
    in
    Array.to_list res.Engine.states
  in
  Alcotest.(check bool) "same seed, same order" true
    (run (Some 5L) = run (Some 5L));
  Alcotest.(check bool) "different seeds differ somewhere" true
    (run (Some 1L) <> run (Some 2L) || run (Some 1L) <> run (Some 3L));
  (* Shuffling permutes but never loses or duplicates messages. *)
  List.iter
    (fun inbox ->
      Alcotest.(check (list int)) "same multiset" [ 0; 1; 2; 3; 4 ]
        (List.sort Int.compare inbox))
    (run (Some 9L))

let composition_registry () =
  Composition.reset ();
  Composition.note ~user:"a" ~uses:"b";
  Composition.note ~user:"a" ~uses:"b";
  Composition.note ~user:"b" ~uses:"c";
  Alcotest.(check (list (triple string string int)))
    "edges"
    [ ("a", "b", 2); ("b", "c", 1) ]
    (Composition.edges ());
  Composition.reset ();
  Alcotest.(check int) "reset" 0 (List.length (Composition.edges ()))

let () =
  Alcotest.run "sim"
    [
      ( "config",
        [
          Alcotest.test_case "validation" `Quick config_validation;
          Alcotest.test_case "big quorum formula" `Quick big_quorum_formula;
          Alcotest.test_case "quorum intersection" `Quick quorum_intersection;
        ] );
      ( "engine",
        [
          Alcotest.test_case "delivery next slot" `Quick delivery_next_slot;
          Alcotest.test_case "self sends free" `Quick self_sends_free;
          Alcotest.test_case "corruption budget" `Quick corruption_budget_enforced;
          Alcotest.test_case "rushing adversary" `Quick rushing_adversary_sees_current_slot;
          Alcotest.test_case "corrupted stop stepping" `Quick corrupted_stop_stepping;
          Alcotest.test_case "byzantine words separate" `Quick byzantine_words_separate;
          Alcotest.test_case "trace recording" `Quick trace_records;
          Alcotest.test_case "invalid destination" `Quick invalid_destination;
          Alcotest.test_case "staggered crash" `Quick staggered_crash_schedule;
          Alcotest.test_case "meter validation" `Quick meter_validation;
          Alcotest.test_case "meter snapshot isolation" `Quick meter_snapshot_isolation;
          Alcotest.test_case "zero horizon" `Quick zero_horizon;
          Alcotest.test_case "double corruption" `Quick double_corruption_single_charge;
          Alcotest.test_case "per-slot series" `Quick per_slot_series;
        ] );
      ( "composition",
        [ Alcotest.test_case "registry" `Quick composition_registry ] );
      ( "shuffling",
        [ Alcotest.test_case "deterministic permutation" `Quick shuffle_deterministic ] );
    ]
