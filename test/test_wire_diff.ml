(* The differential gate: the async domains runtime must be observationally
   equal to the lock-step oracle — decision values, decided slots, and
   per-process word counts — for every sound protocol, across seeds and
   system sizes. Then chaos: with the byte-fault stage corrupting frames
   below the codec, runs may stall but must never disagree and never kill a
   domain. *)

open Mewc_sim
module Runtime = Mewc_wire.Runtime
module Zoo = Mewc_wire.Zoo

let cfg n = Config.optimal ~n

(* Fault-free barriers complete without ever consulting the timer, so a
   generous δ costs nothing and absorbs scheduler hiccups on loaded CI
   machines; only a genuinely wedged barrier would pay it. *)
let delta = 2.0

let seeds = [ 1L; 7L; 20260807L ]
let sizes = [ 5; 9 ]

let gate entry () =
  List.iter
    (fun n ->
      List.iteri
        (fun salt seed ->
          match
            Zoo.diff entry ~cfg:(cfg n) ~seed ~salt ~delta ()
          with
          | Ok r ->
            (match r.Zoo.verdict with
            | Monitor.Safe_live -> ()
            | Monitor.Safe_stalled v | Monitor.Unsafe v ->
              Alcotest.failf "n=%d seed=%Ld: fault-free async not live: %s" n
                seed v.Monitor.reason);
            if r.Zoo.failures <> [] then
              Alcotest.failf "n=%d seed=%Ld: domain failures" n seed;
            if r.Zoo.stats.Runtime.frame_faults <> 0 then
              Alcotest.failf "n=%d seed=%Ld: phantom frame faults" n seed;
            if r.Zoo.stats.Runtime.decode_rejects <> 0 then
              Alcotest.failf "n=%d seed=%Ld: phantom decode rejects" n seed
          | Error mismatches ->
            Alcotest.failf "n=%d seed=%Ld: async diverges from oracle:\n%s" n
              seed
              (String.concat "\n" mismatches))
        seeds)
    sizes

(* ---- chaos: byte faults below the codec --------------------------------- *)

let plans =
  [
    ("flip", { Faults.byte_none with Faults.byte_seed = 5L; flip = 0.08 });
    ("truncate", { Faults.byte_none with Faults.byte_seed = 6L; trunc = 0.08 });
    ("reorder", { Faults.byte_none with Faults.byte_seed = 7L; reorder = 0.15 });
    ( "kitchen sink",
      { Faults.byte_seed = 8L; flip = 0.05; trunc = 0.05; reorder = 0.1 } );
  ]

let chaos entry () =
  List.iter
    (fun (plan_name, plan) ->
      let r =
        Zoo.async entry ~cfg:(cfg 5) ~seed:11L ~salt:0 ~delta:0.2 ~deadman:30.0
          ~byte_faults:plan ()
      in
      (match r.Zoo.verdict with
      | Monitor.Unsafe v ->
        Alcotest.failf "%s: byte faults broke agreement: %s" plan_name
          v.Monitor.reason
      | Monitor.Safe_live | Monitor.Safe_stalled _ -> ());
      if r.Zoo.failures <> [] then
        Alcotest.failf "%s: byte faults killed a domain: p%d (%s)" plan_name
          (fst (List.hd r.Zoo.failures))
          (snd (List.hd r.Zoo.failures)))
    plans

(* With aggressive corruption every frame category takes hits; the trace
   events and counters must reflect that the stage actually fired. *)
let chaos_observable () =
  let entry = Option.get (Zoo.find "fallback") in
  let plan = { Faults.byte_seed = 9L; flip = 0.3; trunc = 0.2; reorder = 0.1 } in
  let r =
    Zoo.async entry ~cfg:(cfg 5) ~seed:3L ~salt:0 ~delta:0.2 ~deadman:30.0
      ~byte_faults:plan ()
  in
  if r.Zoo.stats.Runtime.frame_faults = 0 then
    Alcotest.fail "corruption plan produced no frame faults";
  let has_fault_event =
    List.exists
      (function Trace.Frame_fault _ -> true | _ -> false)
      r.Zoo.wire_events
  in
  if not has_fault_event then Alcotest.fail "no Frame_fault event stamped";
  (* flips and truncations must surface as decode rejections, not forgeries *)
  if r.Zoo.stats.Runtime.decode_rejects = 0 then
    Alcotest.fail "corrupted frames were never rejected";
  match r.Zoo.verdict with
  | Monitor.Unsafe v -> Alcotest.failf "unsafe under chaos: %s" v.Monitor.reason
  | Monitor.Safe_live | Monitor.Safe_stalled _ -> ()

let () =
  let gates =
    List.map
      (fun e ->
        Alcotest.test_case
          (Printf.sprintf "%s: async ≡ oracle (3 seeds × n ∈ {5,9})"
             (Zoo.entry_name e))
          `Slow (gate e))
      Zoo.entries
  in
  let chaos_cells =
    List.map
      (fun e ->
        Alcotest.test_case
          (Printf.sprintf "%s: byte faults never unsafe" (Zoo.entry_name e))
          `Slow (chaos e))
      Zoo.entries
  in
  Alcotest.run "wire-diff"
    [
      ("differential", gates);
      ("chaos", chaos_cells);
      ( "chaos observability",
        [ Alcotest.test_case "faults stamped and rejected" `Quick chaos_observable ]
      );
    ]
