(* The differential gate behind the event-driven and sharded engines: for
   the same seed, options and fault plan, every (scheduler, shards) pair
   must be observationally equivalent to the `Legacy sequential loop —
   byte-identical mewc-trace/3 traces, identical decisions, word/message
   counts and monitor verdicts. Three batteries: the protocol zoo over a
   sweep-style grid, the fuzzer's adversary scenarios, and the chaos
   fault-plan profiles; each case runs under both schedulers at
   shards in {1, 2, 4}. *)

open Mewc_prelude
open Mewc_sim
open Mewc_core
open Mewc_fuzz

let cfg9 = Config.optimal ~n:9
let cfg13 = Config.optimal ~n:13

(* One run, reduced to a byte string. The trace carries every send/delivery/
   decision (payloads rendered), so byte equality of fingerprints is the
   paper-trail version of observational equivalence. *)
let outcome_fingerprint (o : _ Instances.agreement_outcome) =
  let b = Buffer.create 4096 in
  let ids ps = String.concat "," (List.map string_of_int ps) in
  Printf.ksprintf (Buffer.add_string b)
    "f=%d words=%d messages=%d byz_words=%d signatures=%d slots=%d latency=%d \
     fallback_runs=%d nonsilent=%d help=%d\n"
    o.Instances.f o.Instances.words o.Instances.messages o.Instances.byz_words
    o.Instances.signatures o.Instances.slots o.Instances.latency
    o.Instances.fallback_runs o.Instances.nonsilent_phases
    o.Instances.help_requests;
  Printf.ksprintf (Buffer.add_string b) "corrupted=%s faulty=%s status=%s\n"
    (ids o.Instances.corrupted) (ids o.Instances.faulty)
    (match o.Instances.status with
    | Instances.Decided -> "decided"
    | Instances.Undecided ps -> "undecided:" ^ ids ps);
  Array.iter
    (fun d -> Buffer.add_char b (match d with Some _ -> '1' | None -> '0'))
    o.Instances.decisions;
  Buffer.add_char b '\n';
  (match o.Instances.trace_json with
  | Some j -> Buffer.add_string b (Jsonx.to_string j)
  | None -> Buffer.add_string b "<no trace>");
  Buffer.contents b

(* A run either completes or a monitor fires; both outcomes must agree
   across schedulers. *)
let observe f =
  match f () with
  | o -> outcome_fingerprint o
  | exception Monitor.Violation { monitor; slot; reason } ->
    Printf.sprintf "violation monitor=%s slot=%d reason=%s" monitor slot reason

(* The fingerprint deliberately excludes [crypto] (cache hit/miss splits):
   per-domain memo tables legitimately move hits between domains as the
   shard count changes. Everything else — signature *counts* included —
   must be invariant. *)
let check_equiv name run =
  let base = observe (fun () -> run `Legacy 1) in
  List.iter
    (fun (scheduler, shards) ->
      let label =
        Printf.sprintf "%s [%s shards=%d]" name
          (Engine.scheduler_to_string scheduler)
          shards
      in
      Alcotest.(check string) label base (observe (fun () -> run scheduler shards)))
    [
      (`Event_driven, 1);
      (`Legacy, 2);
      (`Event_driven, 2);
      (`Legacy, 4);
      (`Event_driven, 4);
    ]

(* ---- battery 1: the protocol zoo over a sweep-style grid --------------- *)

let diff_grid_target (Campaign.Target { name; protocol; params; ablated = _ }) =
  List.iter
    (fun cfg ->
      List.iter
        (fun f ->
          List.iter
            (fun shuffle_seed ->
              let adversary =
                Adversary.const
                  (Adversary.crash ~victims:(List.init f (fun i -> i + 1)) ())
              in
              let label =
                Printf.sprintf "%s n=%d f=%d shuffle=%s" name cfg.Config.n f
                  (match shuffle_seed with
                  | Some s -> Int64.to_string s
                  | None -> "-")
              in
              check_equiv label (fun scheduler shards ->
                  Instances.run protocol ~cfg
                    ~options:
                      {
                        Instances.default_options with
                        Instances.seed = 1L;
                        shuffle_seed;
                        record_trace = true;
                        scheduler;
                        shards;
                      }
                    ~params:(params cfg) ~adversary ()))
            [ None; Some 42L ])
        [ 0; 1; cfg.Config.t ])
    [ cfg9; cfg13 ]

let grid_cases () =
  List.iter
    (fun target ->
      if not (Campaign.target_ablated target) then diff_grid_target target)
    Campaign.zoo

(* ---- battery 2: the fuzzer's adversary zoo ----------------------------- *)

let diff_scenarios (Campaign.Target { name; protocol; params; ablated }) =
  let cfg = cfg9 in
  let rng = Rng.create 0xD1FFL in
  for i = 0 to 5 do
    let scenario = Scenario.generate ~cfg ~rng in
    let label = Format.asprintf "%s scenario %d (%a)" name i Scenario.pp scenario in
    check_equiv label (fun scheduler shards ->
        let params = params cfg in
        Instances.run protocol ~cfg
          ~options:
            {
              Instances.default_options with
              Instances.seed = scenario.Scenario.seed;
              shuffle_seed = scenario.Scenario.shuffle;
              record_trace = true;
              scheduler;
              shards;
              monitors = Some (Campaign.safety_monitors ~cfg ~ablated);
              faults = Compile.plan_of_scenario scenario;
            }
          ~params
          ~adversary:(Compile.adversary protocol ~cfg ~params scenario)
          ())
  done

let fuzz_cases () = List.iter diff_scenarios Campaign.zoo

(* ---- battery 3: chaos-profile fault plans ------------------------------ *)

let chaos_cases () =
  List.iter
    (fun target ->
      if not (Campaign.target_ablated target) then begin
        let (Campaign.Target { name; protocol; params; ablated = _ }) = target in
        List.iter
          (fun profile ->
            List.iter
              (fun level ->
                let cfg = Degrade.cfg in
                let plan = Degrade.plan_of ~profile ~level in
                let label = Printf.sprintf "%s chaos %s@%d" name profile level in
                check_equiv label (fun scheduler shards ->
                    Instances.run protocol ~cfg
                      ~options:
                        {
                          Instances.default_options with
                          Instances.seed =
                            Degrade.seed_of ~protocol:name ~profile ~level;
                          record_trace = true;
                          scheduler;
                          shards;
                          faults = plan;
                        }
                      ~params:(params cfg)
                      ~adversary:
                        (Adversary.const (Adversary.crash ~victims:[] ()))
                      ()))
              [ 1; Degrade.levels - 1 ])
          Degrade.profiles
      end)
    Campaign.zoo

let () =
  Alcotest.run "engine-diff"
    [
      ( "scheduler equivalence",
        [
          Alcotest.test_case "protocol zoo x sweep grid" `Quick grid_cases;
          Alcotest.test_case "fuzzer adversary scenarios" `Quick fuzz_cases;
          Alcotest.test_case "chaos fault plans" `Quick chaos_cases;
        ] );
    ]
