(* Shared assertions for the protocol test suites. *)


let cfg n = Mewc_sim.Config.optimal ~n

(* All correct processes decided, and on the same value. *)
let check_agreement ~pp ~equal ~corrupted (decisions : 'o option array) =
  let correct =
    Array.to_list decisions
    |> List.mapi (fun p d -> (p, d))
    |> List.filter (fun (p, _) -> not (List.mem p corrupted))
  in
  let decided =
    List.map
      (fun (p, d) ->
        match d with
        | Some v -> (p, v)
        | None ->
          Alcotest.failf "termination violated: correct p%d did not decide" p)
      correct
  in
  match decided with
  | [] -> Alcotest.fail "no correct processes in the run"
  | (_, first) :: rest ->
    List.iter
      (fun (p, v) ->
        if not (equal v first) then
          Alcotest.failf "agreement violated: p%d decided %s, expected %s" p
            (Format.asprintf "%a" pp v)
            (Format.asprintf "%a" pp first))
      rest;
    first

let check_all_decide ~pp ~equal ~expected ~corrupted decisions =
  let got = check_agreement ~pp ~equal ~corrupted decisions in
  if not (equal got expected) then
    Alcotest.failf "decided %s, expected %s"
      (Format.asprintf "%a" pp got)
      (Format.asprintf "%a" pp expected)

let pp_str fmt s = Format.fprintf fmt "%S" s

let first_k_excluding ~excluding k =
  (* The k smallest pids not in [excluding] and not 0. *)
  let rec go acc p =
    if List.length acc = k then List.rev acc
    else if p = 0 || List.mem p excluding then go acc (p + 1)
    else go (p :: acc) (p + 1)
  in
  go [] 1

let qcheck_case ?(count = 50) ~name gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen law)

let pids_upto k = List.init k (fun i -> i + 1)

(* ---- the adversary zoo --------------------------------------------------

   A generator of adversaries for the weak-BA runner, shared by the
   randomized property suite and the monitor suite: honest runs, (staggered)
   crashes, and the §6 attack library. *)

type adversary_pick =
  | Honest
  | Crash of int list
  | Staggered of int list * int
  | Busy_leaders of int list
  | Exclusive_finalizer of int * int
  | Help_spam of int list

let pp_pick = function
  | Honest -> "honest"
  | Crash vs -> Printf.sprintf "crash[%s]" (String.concat "," (List.map string_of_int vs))
  | Staggered (vs, e) ->
    Printf.sprintf "staggered[%s]/%d" (String.concat "," (List.map string_of_int vs)) e
  | Busy_leaders vs ->
    Printf.sprintf "busy[%s]" (String.concat "," (List.map string_of_int vs))
  | Exclusive_finalizer (l, x) -> Printf.sprintf "finalizer(%d->%d)" l x
  | Help_spam vs ->
    Printf.sprintf "spam[%s]" (String.concat "," (List.map string_of_int vs))

let clamp_victims ~n ~t victims =
  List.sort_uniq Int.compare (List.filter (fun v -> v >= 1 && v < n) victims)
  |> List.filteri (fun i _ -> i < t)

let gen_pick n t =
  QCheck2.Gen.(
    let victims = list_size (int_range 0 t) (int_range 1 (n - 1)) in
    oneof
      [
        return Honest;
        map (fun vs -> Crash (clamp_victims ~n ~t vs)) victims;
        map2
          (fun vs e -> Staggered (clamp_victims ~n ~t vs, 1 + e))
          victims (int_range 0 6);
        map (fun vs -> Busy_leaders (clamp_victims ~n ~t vs)) victims;
        map2
          (fun l x -> Exclusive_finalizer (1 + (l mod t), x mod n))
          (int_range 0 100) (int_range 0 100);
        map (fun vs -> Help_spam (clamp_victims ~n ~t vs)) victims;
      ])

let to_weak_adversary c =
  let open Mewc_sim in
  let open Mewc_core in
  function
  | Honest -> Adversary.const (Adversary.honest ~name:"h")
  | Crash vs -> Adversary.const (Adversary.crash ~victims:vs ())
  | Staggered (vs, e) -> Adversary.const (Adversary.staggered_crash ~victims:vs ~every:e)
  | Busy_leaders vs -> Attacks.wba_busy_byz_leaders ~cfg:c ~leaders:vs
  | Exclusive_finalizer (l, x) ->
    if l = x then Adversary.const (Adversary.crash ~victims:[ l ] ())
    else Attacks.wba_exclusive_finalizer ~cfg:c ~leader:l ~lucky:x
  | Help_spam vs -> Attacks.wba_help_req_spammers ~cfg:c ~spammers:vs
