(* The observability layer: hand-built violating traces that each standard
   monitor must reject, zoo executions every monitor must accept (online and
   replayed offline from the serialized trace), and trace round-trips. *)

open Mewc_sim
open Mewc_core
module Jsonx = Mewc_prelude.Jsonx

let cfg = Test_util.cfg

(* ---- building blocks ---------------------------------------------------- *)

let trace_of events =
  let tr = Trace.create ~enabled:true in
  List.iter (Trace.record tr) events;
  tr

let send ?(id = 0) ?(parents = []) ?(byz = false) ?(words = 1) ?charged ~slot
    ~src ~dst msg =
  let charged = match charged with Some c -> c | None -> src <> dst in
  Trace.Send
    {
      id;
      envelope = { Envelope.src; dst; sent_at = slot; msg };
      byzantine_sender = byz;
      words;
      charged;
      parents;
    }

let violation_of monitor ~slots events =
  match Monitor.replay [ monitor ] ~slots (trace_of events) with
  | () -> None
  | exception Monitor.Violation v -> Some v

let check_rejects name monitor ~slots events =
  match violation_of monitor ~slots events with
  | Some _ -> ()
  | None -> Alcotest.failf "%s: violating trace was accepted" name

let check_accepts name monitor ~slots events =
  match violation_of monitor ~slots events with
  | None -> ()
  | Some v ->
    Alcotest.failf "%s: spuriously rejected: %s" name
      (Format.asprintf "%a" Monitor.pp_violation v)

(* ---- corruption budget -------------------------------------------------- *)

let budget_rejections () =
  let c = cfg 5 in
  (* t = 2 *)
  let corrupt ~slot ~pid ~f = Trace.Corruption { slot; pid; f } in
  check_accepts "budget: t corruptions fine"
    (Monitor.corruption_budget ~cfg:c)
    ~slots:2
    [
      Trace.Slot_start 0;
      corrupt ~slot:0 ~pid:1 ~f:1;
      Trace.Slot_start 1;
      corrupt ~slot:1 ~pid:2 ~f:2;
    ];
  check_rejects "budget: t+1 corruptions"
    (Monitor.corruption_budget ~cfg:c)
    ~slots:1
    [
      Trace.Slot_start 0;
      corrupt ~slot:0 ~pid:1 ~f:1;
      corrupt ~slot:0 ~pid:2 ~f:2;
      corrupt ~slot:0 ~pid:3 ~f:3;
    ];
  check_rejects "budget: double corruption"
    (Monitor.corruption_budget ~cfg:c)
    ~slots:1
    [ Trace.Slot_start 0; corrupt ~slot:0 ~pid:1 ~f:1; corrupt ~slot:0 ~pid:1 ~f:2 ];
  check_rejects "budget: stale slot stamp"
    (Monitor.corruption_budget ~cfg:c)
    ~slots:2
    [ Trace.Slot_start 0; Trace.Slot_start 1; corrupt ~slot:0 ~pid:1 ~f:1 ];
  check_rejects "budget: wrong f stamp"
    (Monitor.corruption_budget ~cfg:c)
    ~slots:1
    [ Trace.Slot_start 0; corrupt ~slot:0 ~pid:1 ~f:2 ];
  check_rejects "budget: unknown pid"
    (Monitor.corruption_budget ~cfg:c)
    ~slots:1
    [ Trace.Slot_start 0; corrupt ~slot:0 ~pid:77 ~f:1 ]

(* ---- agreement ----------------------------------------------------------- *)

let agreement_rejections () =
  let c = cfg 3 in
  let decide ~slot ~pid value = Trace.Decision { slot; pid; value; parents = [] } in
  let everyone v = List.map (fun pid -> decide ~slot:1 ~pid v) [ 0; 1; 2 ] in
  check_accepts "agreement: unanimous"
    (Monitor.agreement ())
    ~slots:2
    (Trace.Slot_start 0 :: everyone "v");
  check_rejects "agreement: split decision"
    (Monitor.agreement ())
    ~slots:2
    [ Trace.Slot_start 0; decide ~slot:0 ~pid:0 "a"; decide ~slot:1 ~pid:1 "b" ];
  check_rejects "agreement: re-decision flips"
    (Monitor.agreement ())
    ~slots:2
    [ Trace.Slot_start 0; decide ~slot:0 ~pid:0 "a"; decide ~slot:1 ~pid:0 "b" ];
  (* Agreement is pure safety: a partial decision set is fine by itself
     (who must decide is {!Monitor.termination}'s business). *)
  check_accepts "agreement: partial decisions are not its concern"
    (Monitor.agreement ())
    ~slots:2
    [ Trace.Slot_start 0; decide ~slot:0 ~pid:0 "a" ];
  check_rejects "termination: correct process never decides"
    (Monitor.termination ~cfg:c)
    ~slots:2
    [ Trace.Slot_start 0; decide ~slot:0 ~pid:0 "a"; decide ~slot:0 ~pid:1 "a" ];
  (* ... unless it was corrupted ... *)
  check_accepts "termination: corrupted processes need not decide"
    (Monitor.termination ~cfg:c)
    ~slots:2
    [
      Trace.Slot_start 0;
      Trace.Corruption { slot = 0; pid = 2; f = 1 };
      decide ~slot:0 ~pid:0 "a";
      decide ~slot:0 ~pid:1 "a";
    ];
  (* ... or hit by an injected process fault. *)
  check_accepts "termination: process-faulted pids are exempt"
    (Monitor.termination ~cfg:c)
    ~slots:2
    [
      Trace.Slot_start 0;
      Trace.Process_fault { slot = 0; pid = 2; event = Faults.Crashed };
      decide ~slot:0 ~pid:0 "a";
      decide ~slot:0 ~pid:1 "a";
    ]

(* ---- word bound ---------------------------------------------------------- *)

let word_bound_rejections () =
  let bound ~f = 10 * (f + 1) in
  let m () = Monitor.word_bound ~name:"test-words" ~bound in
  check_accepts "words: under the bound" (m ()) ~slots:1
    [ Trace.Slot_start 0; send ~slot:0 ~src:0 ~dst:1 ~words:10 "m" ];
  check_rejects "words: over the bound at f=0" (m ()) ~slots:1
    [
      Trace.Slot_start 0;
      send ~slot:0 ~src:0 ~dst:1 ~words:6 "m";
      send ~slot:0 ~src:1 ~dst:2 ~words:6 "m";
    ];
  (* The same spending is inside the bound once a corruption raised f. *)
  check_accepts "words: f=1 raises the bound" (m ()) ~slots:1
    [
      Trace.Slot_start 0;
      Trace.Corruption { slot = 0; pid = 2; f = 1 };
      send ~slot:0 ~src:0 ~dst:1 ~words:6 "m";
      send ~slot:0 ~src:1 ~dst:2 ~words:6 "m";
    ];
  (* Byzantine and uncharged (self-addressed) words don't count: the paper
     measures words sent by correct processes. *)
  check_accepts "words: byzantine sends free" (m ()) ~slots:1
    [ Trace.Slot_start 0; send ~byz:true ~slot:0 ~src:0 ~dst:1 ~words:999 "m" ];
  check_accepts "words: self-sends free" (m ()) ~slots:1
    [ Trace.Slot_start 0; send ~slot:0 ~src:1 ~dst:1 ~words:999 "m" ]

(* ---- early termination --------------------------------------------------- *)

let early_termination_rejections () =
  let bound ~f = 5 * (f + 1) in
  let m () = Monitor.early_termination ~name:"test-latency" ~bound in
  let decide ~slot ~pid = Trace.Decision { slot; pid; value = "v"; parents = [] } in
  check_accepts "latency: in time" (m ()) ~slots:20
    [ Trace.Slot_start 0; decide ~slot:5 ~pid:0 ];
  check_rejects "latency: too late at f=0" (m ()) ~slots:20
    [ Trace.Slot_start 0; decide ~slot:6 ~pid:0 ];
  check_accepts "latency: f=1 extends the deadline" (m ()) ~slots:20
    [
      Trace.Slot_start 0;
      Trace.Corruption { slot = 0; pid = 1; f = 1 };
      decide ~slot:6 ~pid:0;
    ];
  check_accepts "latency: no decisions, nothing to check" (m ()) ~slots:20
    [ Trace.Slot_start 0 ]

(* ---- metering ------------------------------------------------------------ *)

let metering_rejections () =
  let m () = Monitor.metering () in
  check_accepts "metering: consistent" (m ()) ~slots:1
    [
      Trace.Slot_start 0;
      send ~slot:0 ~src:0 ~dst:1 "m";
      send ~slot:0 ~src:1 ~dst:1 "m";
    ];
  check_rejects "metering: zero-word message" (m ()) ~slots:1
    [ Trace.Slot_start 0; send ~slot:0 ~src:0 ~dst:1 ~words:0 "m" ];
  check_rejects "metering: charged self-send" (m ()) ~slots:1
    [ Trace.Slot_start 0; send ~slot:0 ~src:1 ~dst:1 ~charged:true "m" ];
  check_rejects "metering: uncharged cross-send" (m ()) ~slots:1
    [ Trace.Slot_start 0; send ~slot:0 ~src:0 ~dst:1 ~charged:false "m" ];
  check_rejects "metering: byzantine flag out of sync" (m ()) ~slots:1
    [
      Trace.Slot_start 0;
      Trace.Corruption { slot = 0; pid = 0; f = 1 };
      send ~slot:0 ~src:0 ~dst:1 ~byz:false "m";
    ]

(* ---- acceptance over real executions ------------------------------------ *)

(* Every run_* already enforces the standard suite online; rerunning the zoo
   here asserts acceptance explicitly and then replays the monitors offline
   over the serialized trace — a violation found only in one of the two
   modes would expose an online/offline divergence. *)
let qcheck_zoo_accepted =
  Test_util.qcheck_case ~count:40
    ~name:"standard monitors accept the adversary zoo, online and replayed"
    QCheck2.Gen.(
      oneofl [ 5; 7; 9 ] >>= fun n ->
      let t = (n - 1) / 2 in
      triple (return n) (Test_util.gen_pick n t) (int_range 0 500))
    (fun (n, pick, seed) ->
      let c = cfg n in
      let o =
        try
          Instances.run_weak_ba ~cfg:c
            ~options:
              {
                Instances.default_options with
                Instances.seed = Int64.of_int seed;
                record_trace = true;
              }
            ~inputs:(Array.init n (fun i -> Printf.sprintf "v%d" (i mod 2)))
            ~adversary:(Test_util.to_weak_adversary c pick) ()
        with Monitor.Violation v ->
          QCheck2.Test.fail_reportf "online rejection: adversary=%s: %s"
            (Test_util.pp_pick pick)
            (Format.asprintf "%a" Monitor.pp_violation v)
      in
      let trace =
        match o.Instances.trace_json with
        | None -> QCheck2.Test.fail_report "no trace recorded"
        | Some j -> (
          match Trace.of_json ~decode:Fun.id j with
          | Ok tr -> tr
          | Error e -> QCheck2.Test.fail_reportf "trace does not parse: %s" e)
      in
      let monitors =
        [
          Monitor.corruption_budget ~cfg:c;
          Monitor.agreement ();
          Monitor.metering ();
        ]
      in
      match Monitor.replay monitors ~slots:o.Instances.slots trace with
      | () -> true
      | exception Monitor.Violation v ->
        QCheck2.Test.fail_reportf "offline rejection: adversary=%s: %s"
          (Test_util.pp_pick pick)
          (Format.asprintf "%a" Monitor.pp_violation v))

(* ---- serialization ------------------------------------------------------- *)

let sample_events =
  [
    Trace.Slot_start 0;
    Trace.Corruption { slot = 0; pid = 2; f = 1 };
    send ~slot:0 ~src:0 ~dst:1 ~words:3 "hello, \"quoted\" msg";
    send ~byz:true ~slot:0 ~src:2 ~dst:0 "payload\nwith newline";
    send ~slot:0 ~src:1 ~dst:1 "self";
    Trace.Slot_start 1;
    Trace.Decision { slot = 1; pid = 0; value = "v,comma"; parents = [ 2 ] };
  ]

let json_round_trip () =
  let tr = trace_of sample_events in
  let json = Trace.to_json ~encode:Fun.id tr in
  (* Through the printer and parser, not just the constructors. *)
  let reparsed =
    match Jsonx.parse (Jsonx.to_string json) with
    | Ok j -> j
    | Error e -> Alcotest.failf "serialized trace does not reparse: %s" e
  in
  Alcotest.(check bool) "json equal after print+parse" true
    (Jsonx.equal json reparsed);
  match Trace.of_json ~decode:Fun.id reparsed with
  | Error e -> Alcotest.failf "of_json failed: %s" e
  | Ok tr' ->
    Alcotest.(check bool) "trace equal after round-trip" true
      (Trace.equal String.equal tr tr');
    Alcotest.(check int) "length preserved" (Trace.length tr) (Trace.length tr')

let json_rejects_garbage () =
  let check name s =
    match Jsonx.parse s with
    | Error _ -> ()
    | Ok j -> (
      match Trace.of_json ~decode:Fun.id j with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s: accepted" name)
  in
  check "not json" "{nope";
  check "wrong schema" {|{"schema":"mewc-trace/99","events":[]}|};
  check "missing events" {|{"schema":"mewc-trace/3"}|};
  check "bad event tag" {|{"schema":"mewc-trace/3","events":[{"type":"warp"}]}|}

let csv_export () =
  (* Newline-free payloads so lines can be counted by splitting; payloads
     with embedded newlines stay legal CSV (quoted) but are covered by the
     JSON round-trip instead. *)
  let tr =
    trace_of
      [
        Trace.Slot_start 0;
        Trace.Corruption { slot = 0; pid = 2; f = 1 };
        send ~slot:0 ~src:0 ~dst:1 ~words:3 "plain";
        Trace.Decision { slot = 0; pid = 0; value = "v,comma"; parents = [] };
      ]
  in
  let csv = Trace.to_csv ~encode:Fun.id tr in
  let lines = String.split_on_char '\n' (String.trim csv) in
  (* Header plus one line per event. *)
  Alcotest.(check int) "line count" (1 + Trace.length tr) (List.length lines);
  Alcotest.(check string) "header"
    "type,slot,src,dst,pid,id,words,byzantine,charged,parents,detail"
    (List.hd lines);
  (* The comma inside the decision value must be quoted, not splitting. *)
  let last = List.nth lines (List.length lines - 1) in
  Alcotest.(check bool) "decision row" true
    (String.length last >= 7 && String.sub last 0 7 = "decide,");
  Alcotest.(check bool) "decision value quoted" true
    (let quoted = "\"v,comma\"" in
     let ql = String.length quoted and ll = String.length last in
     ll >= ql && String.sub last (ll - ql) ql = quoted)

let length_o1_and_memo () =
  let tr = Trace.create ~enabled:true in
  for i = 0 to 9_999 do
    Trace.record tr (Trace.Slot_start i)
  done;
  Alcotest.(check int) "length" 10_000 (Trace.length tr);
  (* Memoized: the second call must not re-reverse (same physical list). *)
  Alcotest.(check bool) "events memoized" true
    (Trace.events tr == Trace.events tr);
  Trace.record tr (Trace.Slot_start 10_000);
  Alcotest.(check int) "memo invalidated on record" 10_001
    (List.length (Trace.events tr));
  let disabled = Trace.create ~enabled:false in
  Trace.record disabled (Trace.Slot_start 0);
  Alcotest.(check int) "disabled records nothing" 0 (Trace.length disabled)

let () =
  Alcotest.run "monitor"
    [
      ( "rejections",
        [
          Alcotest.test_case "corruption budget" `Quick budget_rejections;
          Alcotest.test_case "agreement" `Quick agreement_rejections;
          Alcotest.test_case "word bound" `Quick word_bound_rejections;
          Alcotest.test_case "early termination" `Quick early_termination_rejections;
          Alcotest.test_case "metering" `Quick metering_rejections;
        ] );
      ("acceptance", [ qcheck_zoo_accepted ]);
      ( "trace serialization",
        [
          Alcotest.test_case "json round-trip" `Quick json_round_trip;
          Alcotest.test_case "json rejects garbage" `Quick json_rejects_garbage;
          Alcotest.test_case "csv export" `Quick csv_export;
          Alcotest.test_case "O(1) length, memoized events" `Quick length_o1_and_memo;
        ] );
    ]
