(* The A_fallback black box, instantiated differently: weak BA over the
   Dolev-Strong-based strong BA instead of the echo phase king. The paper's
   construction must not care which fallback it runs on — only the contract
   (agreement, termination, strong unanimity) matters. *)

open Mewc_crypto
open Mewc_sim
open Mewc_core

module Ds_fallback = struct
  include Mewc_baselines.Ds_strong_ba.Make (Value.Str)

  type value = string

  let pp_msg = pp_msg
end

module W = Weak_ba.Make (Value.Str) (Ds_fallback)

let cfg = Test_util.cfg

let run ~n ~victims inputs =
  let c = cfg n in
  let pki, secrets = Pki.setup ~seed:11L ~n () in
  let protocol pid =
    {
      Process.init =
        W.init ~cfg:c ~pki ~secret:secrets.(pid) ~pid ~input:(List.nth inputs pid)
          ~validate:(fun _ -> true) ~start_slot:0 ();
      step = (fun ~slot ~inbox st -> W.step ~slot ~inbox st);
      wake = None;
    }
  in
  let res =
    Engine.run ~cfg:c ~words:W.words ~horizon:(W.horizon c) ~protocol
      ~adversary:(Adversary.crash ~victims ()) ()
  in
  ( Array.map W.decision res.Engine.states,
    res.Engine.corrupted,
    Meter.correct_words res.Engine.meter,
    Array.to_list res.Engine.states
    |> List.filteri (fun p _ -> not (List.mem p res.Engine.corrupted))
    |> List.filter W.fallback_entered |> List.length )

let agree ?expect ~corrupted decisions =
  let got =
    Test_util.check_agreement ~pp:W.pp_outcome ~equal:W.equal_outcome ~corrupted
      decisions
  in
  match expect with
  | Some e ->
    if not (W.equal_outcome got e) then
      Alcotest.failf "decided %s" (Format.asprintf "%a" W.pp_outcome got)
  | None -> ()

let fast_path_unchanged () =
  (* With f = 0 the fallback implementation is irrelevant: same decision and
     same adaptive cost class as with the echo phase king. *)
  let n = 9 in
  let decisions, corrupted, words, fallbacks =
    run ~n ~victims:[] (List.init n (fun _ -> "v"))
  in
  agree ~expect:(W.Value "v") ~corrupted decisions;
  Alcotest.(check int) "no fallback" 0 fallbacks;
  Alcotest.(check bool) (Printf.sprintf "adaptive cost (%d)" words) true (words < 200)

let fallback_path_works () =
  (* f = t forces the fallback: the Dolev-Strong-based black box must carry
     the run to the same unanimous decision. *)
  let n = 9 in
  let decisions, corrupted, _, fallbacks =
    run ~n ~victims:[ 1; 2; 3; 4 ] (List.init n (fun _ -> "v"))
  in
  agree ~expect:(W.Value "v") ~corrupted decisions;
  Alcotest.(check bool) "fallback ran" true (fallbacks > 0)

let fallback_divergent_inputs () =
  let n = 9 in
  let decisions, corrupted, _, _ =
    run ~n ~victims:[ 1; 2; 3; 4 ]
      (List.init n (fun i -> Printf.sprintf "x%d" (i mod 2)))
  in
  agree ~corrupted decisions

let costlier_than_epk () =
  (* The point of the comparison: signature chains make this black box an
     order of magnitude more expensive than the echo phase king. *)
  let n = 9 in
  let _, _, ds_words, _ = run ~n ~victims:[ 1; 2; 3; 4 ] (List.init n (fun _ -> "v")) in
  let epk =
    Instances.run_weak_ba ~cfg:(cfg n) ~inputs:(Array.make n "v")
      ~adversary:(Adversary.const (Adversary.crash ~victims:[ 1; 2; 3; 4 ] ()))
      ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "DS fallback %d > EPK fallback %d" ds_words epk.Instances.words)
    true
    (ds_words > epk.Instances.words)

let standalone_unanimity () =
  (* The DS-based BA standalone, including under skewed starts. *)
  let module D = Mewc_baselines.Ds_strong_ba.Make (Value.Str) in
  let n = 7 in
  let c = cfg n in
  let pki, secrets = Pki.setup ~seed:3L ~n () in
  let protocol pid =
    {
      Process.init =
        D.init ~cfg:c ~pki ~secret:secrets.(pid) ~pid ~input:"u"
          ~start_slot:(pid mod 2) ~round_len:2;
      step = (fun ~slot ~inbox st -> D.step ~slot ~inbox st);
      wake = None;
    }
  in
  let res =
    Engine.run ~cfg:c ~words:D.words ~horizon:(D.horizon c ~round_len:2 + 1)
      ~protocol
      ~adversary:(Adversary.crash ~victims:[ 2 ] ()) ()
  in
  Array.iteri
    (fun p st ->
      if not (List.mem p res.Engine.corrupted) then
        match D.decision st with
        | Some v -> Alcotest.(check string) (Printf.sprintf "p%d" p) "u" v
        | None -> Alcotest.failf "p%d undecided" p)
    res.Engine.states

let () =
  Alcotest.run "DS-based A_fallback (black-box swap)"
    [
      ( "weak BA over Dolev-Strong BA",
        [
          Alcotest.test_case "fast path unchanged" `Quick fast_path_unchanged;
          Alcotest.test_case "fallback path works" `Quick fallback_path_works;
          Alcotest.test_case "divergent inputs" `Quick fallback_divergent_inputs;
          Alcotest.test_case "costlier than echo phase king" `Quick costlier_than_epk;
        ] );
      ( "standalone",
        [ Alcotest.test_case "unanimity, skewed starts" `Quick standalone_unanimity ] );
    ]
