(* Cross-cutting randomized properties: agreement/termination/validity over
   randomly drawn adversaries, plus whole-run determinism. *)

open Mewc_sim
open Mewc_core
module W = Instances.Weak_str

let cfg = Test_util.cfg
let pp_pick = Test_util.pp_pick
let clamp_victims = Test_util.clamp_victims
let gen_pick = Test_util.gen_pick
let to_weak_adversary = Test_util.to_weak_adversary

let correct_decisions (o : _ Instances.agreement_outcome) =
  Array.to_list o.decisions
  |> List.mapi (fun p d -> (p, d))
  |> List.filter (fun (p, _) -> not (List.mem p o.corrupted))
  |> List.map snd

let weak_ba_safety =
  Test_util.qcheck_case ~count:60
    ~name:"weak BA: agreement+termination under the adversary zoo"
    QCheck2.Gen.(
      oneofl [ 5; 7; 9 ] >>= fun n ->
      let t = (n - 1) / 2 in
      pair (return n) (pair (gen_pick n t) (int_range 0 2)))
    (fun (n, (pick, palette)) ->
      let c = cfg n in
      let inputs =
        Array.init n (fun i -> Printf.sprintf "v%d" (i mod (palette + 1)))
      in
      let o =
        Instances.run_weak_ba ~cfg:c ~inputs
          ~adversary:(to_weak_adversary c pick) ()
      in
      let ds = correct_decisions o in
      let ok =
        List.for_all (fun d -> d <> None) ds
        && List.length (List.sort_uniq compare ds) = 1
      in
      if not ok then
        QCheck2.Test.fail_reportf "adversary=%s decisions=%s" (pp_pick pick)
          (String.concat ";"
             (List.map
                (function
                  | Some o -> Format.asprintf "%a" W.pp_outcome o
                  | None -> "?")
                ds))
      else true)

let weak_ba_unanimity =
  Test_util.qcheck_case ~count:40
    ~name:"weak BA: unanimous valid input is decided (crash adversaries)"
    QCheck2.Gen.(
      oneofl [ 5; 7; 9; 11 ] >>= fun n ->
      let t = (n - 1) / 2 in
      pair (return n) (list_size (int_range 0 t) (int_range 1 (n - 1))))
    (fun (n, victims) ->
      let c = cfg n in
      let victims = clamp_victims ~n ~t:c.Config.t victims in
      let o =
        Instances.run_weak_ba ~cfg:c
          ~inputs:(Array.make n "u")
          ~adversary:(Adversary.const (Adversary.crash ~victims ()))
          ()
      in
      List.for_all (fun d -> d = Some (W.Value "u")) (correct_decisions o))

let bb_validity_random =
  Test_util.qcheck_case ~count:40
    ~name:"BB: correct sender's value decided under crash+staggered"
    QCheck2.Gen.(
      oneofl [ 5; 7; 9 ] >>= fun n ->
      let t = (n - 1) / 2 in
      triple (return n)
        (list_size (int_range 0 t) (int_range 1 (n - 1)))
        (int_range 1 8))
    (fun (n, victims, every) ->
      let c = cfg n in
      let victims = clamp_victims ~n ~t:c.Config.t victims in
      let o =
        Instances.run_bb ~cfg:c ~input:"msg"
          ~adversary:
            (Adversary.const (Adversary.staggered_crash ~victims ~every))
          ()
      in
      List.for_all
        (fun d -> d = Some (Adaptive_bb.Decided "msg"))
        (correct_decisions o))

let epk_unanimity_random_kings =
  Test_util.qcheck_case ~count:40
    ~name:"A_fallback: unanimity survives a random equivocating king"
    QCheck2.Gen.(
      oneofl [ 5; 7; 9 ] >>= fun n ->
      let t = (n - 1) / 2 in
      pair (return n) (int_range 1 t))
    (fun (n, king) ->
      let c = cfg n in
      let o =
        Instances.run_fallback ~cfg:c
          ~inputs:(Array.make n "good")
          ~adversary:(Attacks.epk_equivocating_king ~cfg:c ~king ~v1:"e1" ~v2:"e2")
          ()
      in
      List.for_all (fun d -> d = Some "good") (correct_decisions o))

let determinism =
  Test_util.qcheck_case ~count:20 ~name:"whole runs are deterministic"
    QCheck2.Gen.(pair (oneofl [ 5; 7 ]) (int_range 0 1000))
    (fun (n, seed) ->
      let c = cfg n in
      let go () =
        let o =
          Instances.run_weak_ba ~cfg:c
            ~options:
              {
                Instances.default_options with
                Instances.seed = Int64.of_int seed;
              }
            ~inputs:(Array.init n (fun i -> Printf.sprintf "v%d" (i mod 2)))
            ~adversary:
              (Adversary.const (Adversary.crash ~victims:[ 1 ] ()))
            ()
        in
        (o.Instances.words, o.Instances.messages, correct_decisions o)
      in
      go () = go ())

let trace_replay_byte_identical =
  Test_util.qcheck_case ~count:25
    ~name:"same seed+shuffle_seed reproduce byte-identical traces"
    QCheck2.Gen.(
      oneofl [ 5; 7 ] >>= fun n ->
      let t = (n - 1) / 2 in
      triple (return n) (gen_pick n t)
        (pair (int_range 0 1000) (int_range 0 1000)))
    (fun (n, pick, (seed, shuffle)) ->
      let c = cfg n in
      let go () =
        let o =
          Instances.run_weak_ba ~cfg:c
            ~options:
              {
                Instances.default_options with
                Instances.seed = Int64.of_int seed;
                shuffle_seed = Some (Int64.of_int shuffle);
                record_trace = true;
              }
            ~inputs:(Array.init n (fun i -> Printf.sprintf "v%d" (i mod 2)))
            ~adversary:(to_weak_adversary c pick) ()
        in
        match o.Instances.trace_json with
        | Some j -> Mewc_prelude.Jsonx.to_string j
        | None -> QCheck2.Test.fail_report "record_trace produced no trace"
      in
      let a = go () and b = go () in
      if not (String.equal a b) then
        QCheck2.Test.fail_reportf "adversary=%s traces diverge" (pp_pick pick)
      else true)

let signature_complexity_tracks_words =
  Test_util.qcheck_case ~count:10
    ~name:"failure-free weak BA: O(n) signatures too"
    QCheck2.Gen.(oneofl [ 9; 13; 17; 21 ])
    (fun n ->
      let c = cfg n in
      let o =
        Instances.run_weak_ba ~cfg:c ~inputs:(Array.make n "v")
          ~adversary:(Adversary.const (Adversary.honest ~name:"h"))
          ()
      in
      (* Every process signs O(1) times in a failure-free run. *)
      o.Instances.signatures <= 6 * n)

let fuzzer_safety =
  Test_util.qcheck_case ~count:50
    ~name:"weak BA: safety survives the Byzantine message fuzzer"
    QCheck2.Gen.(
      oneofl [ 5; 7; 9 ] >>= fun n ->
      let t = (n - 1) / 2 in
      triple (return n)
        (pair (int_range 1 t) (int_range 0 100_000))
        (int_range 0 2))
    (fun (n, (nb_victims, seed), palette) ->
      let c = cfg n in
      let victims = List.init nb_victims (fun i -> i + 1) in
      let validate v = v <> "fuzz" && v <> "" in
      let inputs =
        Array.init n (fun i -> Printf.sprintf "x%d" (i mod (palette + 1)))
      in
      let o =
        Instances.run_weak_ba ~cfg:c ~validate ~inputs
          ~adversary:
            (Attacks.wba_fuzzer ~cfg:c ~victims ~seed:(Int64.of_int seed))
          ()
      in
      let ds = correct_decisions o in
      let ok =
        List.for_all (fun d -> d <> None) ds
        && List.length (List.sort_uniq compare ds) = 1
        && List.for_all
             (function
               | Some (W.Value v) -> validate v
               | Some W.Bot | None -> true)
             ds
      in
      if not ok then
        QCheck2.Test.fail_reportf "seed=%d victims=%d decisions=%s" seed
          nb_victims
          (String.concat ";"
             (List.map
                (function
                  | Some o -> Format.asprintf "%a" W.pp_outcome o
                  | None -> "?")
                ds))
      else true)

let () =
  Alcotest.run "properties"
    [
      ( "randomized",
        [
          weak_ba_safety;
          weak_ba_unanimity;
          bb_validity_random;
          epk_unanimity_random_kings;
          determinism;
          trace_replay_byte_identical;
          signature_complexity_tracks_words;
          fuzzer_safety;
        ] );
    ]
