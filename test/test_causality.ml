(* Causal provenance, end to end: the engine's envelope ids and parents
   survive JSON, validate into a happens-before DAG (dense ids, topological
   parents, delivery coherence), cones never outspend the global word
   count, the online cone monitor agrees exactly with the offline
   reconstruction, and a planted over-talkative machine trips the cone
   bound that its honest twin passes. *)

open Mewc_prelude
open Mewc_sim
open Mewc_core
module Fuzz = Mewc_fuzz

let cfg = Config.create ~n:9 ~t:4

let scenarios k =
  let rng = Rng.create 7L in
  List.init k (fun _ -> Fuzz.Scenario.generate ~cfg ~rng)

let sound_targets =
  List.filter
    (fun t -> not (Fuzz.Campaign.target_ablated t))
    Fuzz.Campaign.zoo

(* Run one scenario under the fuzzer's safety monitors with the trace on;
   return the reparsed trace (so the mewc-trace/3 parse side is exercised
   on every run) and the run's global correct-word count. *)
let traced_run (Fuzz.Campaign.Target { protocol; params; ablated; _ })
    (sc : Fuzz.Scenario.t) =
  let params = params cfg in
  let o =
    Instances.run protocol ~cfg
      ~options:
        {
          Instances.default_options with
          Instances.seed = sc.Fuzz.Scenario.seed;
          shuffle_seed = sc.Fuzz.Scenario.shuffle;
          record_trace = true;
          monitors = Some (Fuzz.Campaign.safety_monitors ~cfg ~ablated);
        }
      ~params
      ~adversary:(Fuzz.Compile.adversary protocol ~cfg ~params sc)
      ()
  in
  let json = Option.get o.Instances.trace_json in
  match Trace.of_json ~decode:Fun.id json with
  | Error e -> Alcotest.failf "trace does not reparse: %s" e
  | Ok tr -> (tr, o.Instances.words)

let causal tr =
  match Causality.of_trace tr with
  | Ok c -> c
  | Error e -> Alcotest.failf "of_trace rejected an engine trace: %s" e

let for_all_runs k f =
  List.iter
    (fun target ->
      List.iteri
        (fun i sc ->
          let label =
            Printf.sprintf "%s #%d" (Fuzz.Campaign.target_name target) i
          in
          let tr, words = traced_run target sc in
          f ~label (causal tr) ~words)
        (scenarios k))
    sound_targets

(* Ids are dense and assigned in send order, and every edge points strictly
   backwards — together: the recorded relation is a DAG and trace order is
   a topological order of it. *)
let test_dag_topological () =
  for_all_runs 5 (fun ~label c ~words:_ ->
      let sends = Causality.sends c in
      Array.iteri
        (fun i (s : _ Trace.send) ->
          if s.Trace.id <> i then
            Alcotest.failf "%s: send %d has id %d" label i s.Trace.id;
          List.iter
            (fun p ->
              if p < 0 || p >= i then
                Alcotest.failf "%s: send #%d has non-topological parent %d"
                  label i p)
            s.Trace.parents)
        sends;
      List.iter
        (fun (d : _ Causality.decision) ->
          List.iter
            (fun p ->
              if p < 0 || p >= Array.length sends then
                Alcotest.failf "%s: decision parent %d out of range" label p)
            d.Causality.parents)
        (Causality.decisions c))

(* A decision's cone can spend at most what all correct processes spent. *)
let test_cone_within_global () =
  for_all_runs 5 (fun ~label c ~words ->
      List.iter
        (fun (s : Causality.summary) ->
          if s.Causality.cone_words > words then
            Alcotest.failf "%s: p%d cone %d words > global %d" label
              s.Causality.pid s.Causality.cone_words words;
          if s.Causality.cone_messages > Array.length (Causality.sends c) then
            Alcotest.failf "%s: cone larger than the trace" label;
          if s.Causality.critical_path_length > s.Causality.cone_messages then
            Alcotest.failf "%s: critical path longer than the cone" label)
        (Causality.summaries c))

(* The critical path is a real read chain: consecutive hops are parent
   links, delivery-coherent hop by hop. *)
let test_critical_path_is_chain () =
  for_all_runs 3 (fun ~label c ~words:_ ->
      List.iter
        (fun (s : Causality.summary) ->
          let path = Causality.critical_path c s.Causality.pid in
          let rec check = function
            | (a : _ Trace.send) :: (b : _ Trace.send) :: rest ->
              if not (List.mem a.Trace.id b.Trace.parents) then
                Alcotest.failf "%s: #%d -> #%d is not a recorded read" label
                  a.Trace.id b.Trace.id;
              if a.Trace.envelope.Envelope.dst <> b.Trace.envelope.Envelope.src
              then Alcotest.failf "%s: critical path breaks at #%d" label b.Trace.id;
              check (b :: rest)
            | _ -> ()
          in
          check path)
        (Causality.summaries c))

(* The DOT export is at least structurally sound for every cone. *)
let test_dot_well_formed () =
  let target = List.hd sound_targets in
  let sc = List.hd (scenarios 1) in
  let tr, _ = traced_run target sc in
  let c = causal tr in
  List.iter
    (fun (s : Causality.summary) ->
      let dot = Causality.to_dot ~cone_of:s.Causality.pid c in
      Alcotest.(check bool) "digraph" true
        (String.starts_with ~prefix:"digraph causality {" dot);
      Alcotest.(check bool) "closed" true
        (String.length dot > 2 && String.sub dot (String.length dot - 2) 2 = "}\n"))
    (Causality.summaries c)

(* ---- online monitor vs offline reconstruction --------------------------- *)

(* Re-run a scenario with a single cone monitor at the given bound,
   discarding the outcome (its decision type is existential in the
   target). *)
let run_with_cone_bound (Fuzz.Campaign.Target { protocol; params; _ })
    (sc : Fuzz.Scenario.t) ~bound =
  let params = params cfg in
  ignore
    (Instances.run protocol ~cfg
       ~options:
         {
           Instances.default_options with
           Instances.seed = sc.Fuzz.Scenario.seed;
           shuffle_seed = sc.Fuzz.Scenario.shuffle;
           monitors =
             Some
               [
                 Monitor.cone_words_bound ~cfg ~name:"cone-exact"
                   ~bound:(fun ~f:_ -> bound)
                   ();
               ];
         }
       ~params
       ~adversary:(Fuzz.Compile.adversary protocol ~cfg ~params sc)
       ())

(* The online monitor must accept the offline maximum cone exactly and
   reject one word less — the two implementations agree to the word. *)
let test_monitor_matches_offline () =
  let target =
    List.find
      (fun t -> String.equal (Fuzz.Campaign.target_name t) "weak-ba")
      sound_targets
  in
  List.iteri
    (fun i sc ->
      let tr, _ = traced_run target sc in
      let c = causal tr in
      let max_cone =
        List.fold_left
          (fun acc (s : Causality.summary) -> max acc s.Causality.cone_words)
          0 (Causality.summaries c)
      in
      if Causality.summaries c <> [] then begin
        (match run_with_cone_bound target sc ~bound:max_cone with
        | _ -> ()
        | exception Monitor.Violation v ->
          Alcotest.failf "#%d: exact bound violated: %s" i v.Monitor.reason);
        if max_cone > 0 then
          match run_with_cone_bound target sc ~bound:(max_cone - 1) with
          | _ -> Alcotest.failf "#%d: bound %d should have tripped" i (max_cone - 1)
          | exception Monitor.Violation v ->
            Alcotest.(check string) "monitor name" "cone-exact" v.Monitor.monitor
      end)
    (scenarios 5)

(* ---- the planted over-talkative ablation -------------------------------- *)

(* A flood machine: broadcast one word at slot 0 ([dup] copies per
   destination), decide at slot 2. Honestly every decision's cone is
   exactly n - 1 charged words (the decider's self-send is free); the
   dup = 2 ablation doubles that without changing decisions — exactly the
   per-decision blow-up the cone monitor exists to catch. *)
type flood = { heard : int; done_ : bool }

let flood_protocol ~n ~dup pid =
  ignore pid;
  {
    Process.init = { heard = 0; done_ = false };
    wake = None;
    step =
      (fun ~slot ~inbox st ->
        let st =
          { heard = st.heard + List.length inbox; done_ = st.done_ || slot >= 2 }
        in
        if slot = 0 then
          (st, List.concat (List.init dup (fun _ -> Process.broadcast ~n "x")))
        else (st, []));
  }

let run_flood ~dup ~bound =
  let n = cfg.Config.n in
  Engine.run ~cfg
    ~options:
      {
        Engine.default_options with
        Engine.monitors =
          [
            Monitor.cone_words_bound ~cfg ~name:"flood-cone"
              ~bound:(fun ~f:_ -> bound)
              ();
          ];
        decided = Some (fun st -> if st.done_ then Some (string_of_int st.heard) else None);
      }
    ~words:(fun _ -> 1)
    ~horizon:3
    ~protocol:(flood_protocol ~n ~dup)
    ~adversary:(Adversary.honest ~name:"honest")
    ()

let test_overtalkative_trips_cone_bound () =
  let bound = cfg.Config.n - 1 in
  (* honest: every cone is exactly the n - 1 charged slot-0 words addressed
     to the decider, so the bound is tight and passes *)
  (match run_flood ~dup:1 ~bound with
  | _ -> ()
  | exception Monitor.Violation v ->
    Alcotest.failf "honest flood violated: %s" v.Monitor.reason);
  (* duplicated sends: same decisions, double the causal spend *)
  match run_flood ~dup:2 ~bound with
  | _ -> Alcotest.fail "over-talkative flood passed the cone bound"
  | exception Monitor.Violation v ->
    Alcotest.(check string) "monitor" "flood-cone" v.Monitor.monitor;
    Alcotest.(check int) "caught at decision time" 2 v.Monitor.slot

let () =
  Alcotest.run "causality"
    [
      ( "dag",
        [
          Alcotest.test_case "ids dense, parents topological" `Quick
            test_dag_topological;
          Alcotest.test_case "cone within global words" `Quick
            test_cone_within_global;
          Alcotest.test_case "critical path is a read chain" `Quick
            test_critical_path_is_chain;
          Alcotest.test_case "dot export well-formed" `Quick test_dot_well_formed;
        ] );
      ( "online monitor",
        [
          Alcotest.test_case "agrees with offline to the word" `Quick
            test_monitor_matches_offline;
          Alcotest.test_case "over-talkative ablation caught" `Quick
            test_overtalkative_trips_cone_bound;
        ] );
    ]
