(* The perf-regression ledger and the profiler under it: JSON round-trips
   and schema gates, entry selection, diff threshold semantics (including
   the zero-word edge cases and the wall-clock gate), the profiler's
   self-time partition under an injected clock, and the domain-safety guard
   on profiled sweeps. *)

open Mewc_sim
open Mewc_core

let stats = Mewc_crypto.Pki.no_cache_stats

let mk_row ?(words = 100) ?(signatures = 10) protocol =
  {
    Sweep.point = { Sweep.protocol; n = 9; f_spec = "0" };
    t = 4;
    f = 0;
    words;
    messages = 20;
    signatures;
    latency = 3;
    slots = 6;
    fallback_runs = 0;
    crypto = stats;
    wall_s = 0.0;
  }

let mk_entry ?(rev = "deadbeef") ?(rows = [ mk_row "bb" ]) ?(sequential_s = 1.0)
    () =
  {
    Ledger.rev;
    date = "2026-08-06";
    grid = "test";
    scheduler = "legacy";
    jobs = 2;
    cores = 4;
    sequential_s;
    parallel_s = 0.5;
    speedup = 2.0;
    shards = [ (1, 1.0); (2, 0.6) ];
    parallelism = "ok (4 cores)";
    rollup = [ ("crypto", 0.25); ("engine", 0.5) ];
    rows;
  }

(* ---- serialization ------------------------------------------------------- *)

(* Rendered JSON is the canonical form, so round-trip equality is checked
   on renderings — immune to float-printing particulars. *)
let json_fixpoint to_json of_json v =
  let j = Mewc_prelude.Jsonx.to_string (to_json v) in
  match of_json (to_json v) with
  | Error e -> Alcotest.failf "does not parse back: %s" e
  | Ok v' ->
    Alcotest.(check string) "json fixpoint" j
      (Mewc_prelude.Jsonx.to_string (to_json v'))

let test_entry_roundtrip () =
  json_fixpoint Ledger.entry_to_json Ledger.entry_of_json (mk_entry ());
  json_fixpoint Ledger.entry_to_json Ledger.entry_of_json
    (mk_entry ~rows:[] ());
  json_fixpoint Ledger.to_json Ledger.of_json
    [ mk_entry (); mk_entry ~rev:"cafe" () ]

(* Ledger files written before the shard era carry no "shards" or
   "parallelism" members; they must keep parsing (same mewc-ledger/1
   schema) with the documented defaults. *)
let test_pre_shard_entry_parses () =
  let stripped =
    match Ledger.entry_to_json (mk_entry ()) with
    | Mewc_prelude.Jsonx.Obj fields ->
      Mewc_prelude.Jsonx.Obj
        (List.filter
           (fun (k, _) -> k <> "shards" && k <> "parallelism")
           fields)
    | _ -> Alcotest.fail "entry json not an object"
  in
  match Ledger.entry_of_json stripped with
  | Error e -> Alcotest.failf "pre-shard entry rejected: %s" e
  | Ok e ->
    Alcotest.(check (list (pair int (float 0.0)))) "shards default" [] e.Ledger.shards;
    Alcotest.(check string) "parallelism default" "unknown" e.Ledger.parallelism

let test_row_roundtrip () =
  let r = mk_row ~words:7 ~signatures:3 "weak-ba" in
  match Sweep.row_of_json (Sweep.row_to_json r) with
  | Error e -> Alcotest.failf "row does not parse back: %s" e
  | Ok r' ->
    Alcotest.(check string) "row round-trip" (Sweep.row_to_line r)
      (Sweep.row_to_line r');
    Alcotest.(check bool) "structurally equal" true (r = r')

let test_schema_gates () =
  let reject name json =
    match Ledger.of_json json with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s accepted" name
  in
  reject "foreign schema"
    (Mewc_prelude.Jsonx.Obj
       [
         ("schema", Mewc_prelude.Jsonx.Str "mewc-perf/1");
         ("entries", Mewc_prelude.Jsonx.Arr []);
       ]);
  reject "no schema" (Mewc_prelude.Jsonx.Obj [ ("entries", Mewc_prelude.Jsonx.Arr []) ]);
  reject "not an object" (Mewc_prelude.Jsonx.Arr []);
  match Ledger.entry_of_json (Mewc_prelude.Jsonx.Obj [ ("rev", Mewc_prelude.Jsonx.Str "x") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated entry accepted"

let test_load_save_append () =
  let tmp = Filename.temp_file "mewc-ledger" ".json" in
  Sys.remove tmp;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
    (fun () ->
      (match Ledger.load tmp with
      | Ok [] -> ()
      | Ok _ -> Alcotest.fail "missing file not empty"
      | Error e -> Alcotest.failf "missing file is an error: %s" e);
      (match Ledger.append tmp (mk_entry ~rev:"aaa" ()) with
      | Ok 1 -> ()
      | Ok k -> Alcotest.failf "first append counted %d" k
      | Error e -> Alcotest.fail e);
      (match Ledger.append tmp (mk_entry ~rev:"bbb" ()) with
      | Ok 2 -> ()
      | Ok k -> Alcotest.failf "second append counted %d" k
      | Error e -> Alcotest.fail e);
      match Ledger.load tmp with
      | Ok [ a; b ] ->
        Alcotest.(check string) "order preserved" "aaa" a.Ledger.rev;
        Alcotest.(check string) "appended last" "bbb" b.Ledger.rev
      | Ok es -> Alcotest.failf "expected 2 entries, got %d" (List.length es)
      | Error e -> Alcotest.fail e)

(* ---- selection ----------------------------------------------------------- *)

let test_find () =
  let entries =
    [ mk_entry ~rev:"aaa111" (); mk_entry ~rev:"aab222" (); mk_entry ~rev:"bcd333" () ]
  in
  let ok sel rev =
    match Ledger.find entries sel with
    | Ok e -> Alcotest.(check string) (Printf.sprintf "find %S" sel) rev e.Ledger.rev
    | Error e -> Alcotest.failf "find %S: %s" sel e
  in
  let err sel =
    match Ledger.find entries sel with
    | Error _ -> ()
    | Ok e -> Alcotest.failf "find %S resolved to %s" sel e.Ledger.rev
  in
  ok "0" "aaa111";
  ok "2" "bcd333";
  ok "-1" "bcd333";
  ok "-3" "aaa111";
  ok "bcd" "bcd333";
  ok "aab" "aab222";
  err "3";
  err "-4";
  err "aa" (* ambiguous prefix *);
  err "zzz";
  err ""

(* ---- diff semantics ------------------------------------------------------ *)

let test_diff_thresholds () =
  let a = mk_entry ~rows:[ mk_row ~words:100 "bb"; mk_row ~words:100 "weak-ba" ] () in
  let bump w = mk_entry ~rows:[ mk_row ~words:w "bb"; mk_row ~words:100 "weak-ba" ] () in
  (* exactly at 1 + threshold: not a regression (strict >) *)
  let at = Ledger.diff ~threshold:0.25 a (bump 125) in
  Alcotest.(check int) "at threshold" 0 at.Ledger.regressions;
  (* one word past it: one regression, on the right point *)
  let past = Ledger.diff ~threshold:0.25 a (bump 126) in
  Alcotest.(check int) "past threshold" 1 past.Ledger.regressions;
  (match past.Ledger.matched with
  | [ d_bb; d_weak ] ->
    Alcotest.(check bool) "bb regressed" true d_bb.Ledger.regressed;
    Alcotest.(check bool) "weak-ba untouched" false d_weak.Ledger.regressed;
    Alcotest.(check (float 1e-9)) "ratio" 1.26 d_bb.Ledger.words_ratio
  | ds -> Alcotest.failf "expected 2 deltas, got %d" (List.length ds));
  (* improvements never regress, whatever the magnitude *)
  let better = Ledger.diff ~threshold:0.0 (bump 200) a in
  Alcotest.(check int) "improvement" 0 better.Ledger.regressions

let test_diff_zero_word_edges () =
  let zero = mk_entry ~rows:[ mk_row ~words:0 "bb" ] () in
  let some = mk_entry ~rows:[ mk_row ~words:5 "bb" ] () in
  let self = Ledger.diff zero zero in
  (match self.Ledger.matched with
  | [ d ] ->
    Alcotest.(check (float 0.0)) "0/0 ratio" 1.0 d.Ledger.words_ratio;
    Alcotest.(check bool) "0/0 not regressed" false d.Ledger.regressed
  | _ -> Alcotest.fail "expected one delta");
  let blowup = Ledger.diff zero some in
  match blowup.Ledger.matched with
  | [ d ] ->
    Alcotest.(check bool) "0 -> 5 is infinite" true (d.Ledger.words_ratio = infinity);
    Alcotest.(check bool) "0 -> 5 regressed" true d.Ledger.regressed
  | _ -> Alcotest.fail "expected one delta"

let test_diff_unmatched_and_wall () =
  let a =
    mk_entry ~sequential_s:1.0 ~rows:[ mk_row "bb"; mk_row "fallback" ] ()
  in
  let b =
    mk_entry ~sequential_s:2.0 ~rows:[ mk_row "bb"; mk_row "strong-ba" ] ()
  in
  let d = Ledger.diff ~threshold:0.25 a b in
  Alcotest.(check int) "matched" 1 (List.length d.Ledger.matched);
  Alcotest.(check (list string)) "only in baseline" [ "fallback" ]
    (List.map (fun (p : Sweep.point) -> p.Sweep.protocol) d.Ledger.only_a);
  Alcotest.(check (list string)) "only in candidate" [ "strong-ba" ]
    (List.map (fun (p : Sweep.point) -> p.Sweep.protocol) d.Ledger.only_b);
  Alcotest.(check bool) "wall regressed" true d.Ledger.wall_regressed;
  Alcotest.(check (float 1e-9)) "wall ratio" 2.0 d.Ledger.wall_ratio;
  (* the wall regression counts as a finding on its own *)
  Alcotest.(check int) "regressions" 1 d.Ledger.regressions;
  (* diff_to_json parses as JSON and carries the verdict *)
  let rendered = Mewc_prelude.Jsonx.to_string (Ledger.diff_to_json d) in
  match Mewc_prelude.Jsonx.parse rendered with
  | Error e -> Alcotest.failf "diff json: %s" e
  | Ok _ -> ()

let test_render_mentions_verdicts () =
  let a = mk_entry ~rows:[ mk_row ~words:100 "bb" ] () in
  let b = mk_entry ~rows:[ mk_row ~words:300 "bb" ] () in
  let s = Ledger.render ~label_a:"base" ~label_b:"cand" (Ledger.diff a b) in
  let contains sub =
    let n = String.length s and k = String.length sub in
    let rec at i = i + k <= n && (String.sub s i k = sub || at (i + 1)) in
    at 0
  in
  List.iter
    (fun sub -> Alcotest.(check bool) sub true (contains sub))
    [ "base"; "cand"; "REGRESSED" ]

(* ---- of_report + the real sweep ----------------------------------------- *)

let tiny_grid =
  [
    { Sweep.protocol = "bb"; n = 9; f_spec = "0" };
    { Sweep.protocol = "weak-ba"; n = 9; f_spec = "1" };
  ]

let test_of_report_and_self_diff () =
  let profile = Profile.create () in
  let report = Sweep.run_perf ~jobs:2 ~profile tiny_grid in
  let e = Ledger.of_report ~rev:"r1" ~date:"2026-08-06" ~grid:"tiny" ~profile report in
  Alcotest.(check int) "rows carried over" (List.length report.Sweep.rows)
    (List.length e.Ledger.rows);
  Alcotest.(check int) "rollup has all categories"
    (List.length Profile.categories)
    (List.length e.Ledger.rollup);
  json_fixpoint Ledger.entry_to_json Ledger.entry_of_json e;
  let d = Ledger.diff e e in
  Alcotest.(check int) "self-diff clean" 0 d.Ledger.regressions;
  List.iter
    (fun (delta : Ledger.delta) ->
      Alcotest.(check (float 0.0)) "self ratio" 1.0 delta.Ledger.words_ratio)
    d.Ledger.matched

(* ---- the profiler -------------------------------------------------------- *)

(* An injected clock makes span accounting exact: self time partitions the
   run (outer self = inclusive - child), aggregates count crossings, and
   the rollup's total never exceeds elapsed. *)
let test_profile_self_time_partition () =
  let now = ref 0.0 in
  let p = Profile.create ~clock:(fun () -> !now) () in
  Profile.span p ~category:Profile.Engine "outer" (fun () ->
      now := !now +. 3.0;
      Profile.span p ~category:Profile.Crypto "inner" (fun () -> now := !now +. 2.0);
      now := !now +. 1.0);
  Profile.span p ~category:Profile.Crypto "inner" (fun () -> now := !now +. 4.0);
  now := !now +. 0.5;
  let find name =
    match List.find_opt (fun (r : Profile.row) -> r.Profile.name = name) (Profile.rows p) with
    | Some r -> r
    | None -> Alcotest.failf "no row %s" name
  in
  let outer = find "outer" and inner = find "inner" in
  Alcotest.(check int) "outer crossed once" 1 outer.Profile.count;
  Alcotest.(check int) "inner crossed twice" 2 inner.Profile.count;
  Alcotest.(check (float 1e-9)) "outer inclusive" 6.0 outer.Profile.total_s;
  Alcotest.(check (float 1e-9)) "outer self excludes child" 4.0 outer.Profile.self_s;
  Alcotest.(check (float 1e-9)) "inner self" 6.0 inner.Profile.self_s;
  let rollup = Profile.rollup p in
  Alcotest.(check int) "rollup covers all categories"
    (List.length Profile.categories)
    (List.length rollup);
  Alcotest.(check (float 1e-9)) "engine self" 4.0
    (List.assoc Profile.Engine rollup);
  Alcotest.(check (float 1e-9)) "crypto self" 6.0
    (List.assoc Profile.Crypto rollup);
  let self_sum = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 rollup in
  Alcotest.(check bool) "self-sum <= elapsed" true
    (self_sum <= Profile.elapsed p +. 1e-9);
  Alcotest.(check (float 1e-9)) "elapsed" 10.5 (Profile.elapsed p)

let test_profile_exception_safe () =
  let now = ref 0.0 in
  let p = Profile.create ~clock:(fun () -> !now) () in
  (try
     Profile.span p ~category:Profile.Machine "boom" (fun () ->
         now := !now +. 1.0;
         failwith "boom")
   with Failure _ -> ());
  (* the span closed: a later sibling is charged to itself, not to boom *)
  Profile.span p ~category:Profile.Machine "after" (fun () -> now := !now +. 2.0);
  let row name =
    List.find (fun (r : Profile.row) -> r.Profile.name = name) (Profile.rows p)
  in
  Alcotest.(check (float 1e-9)) "boom charged" 1.0 (row "boom").Profile.self_s;
  Alcotest.(check (float 1e-9)) "after charged to itself" 2.0
    (row "after").Profile.self_s

let test_profile_json_schema () =
  let p = Profile.create () in
  Profile.span p ~category:Profile.Serialize "s" (fun () -> ());
  match Profile.to_json p with
  | Mewc_prelude.Jsonx.Obj fields ->
    (match List.assoc_opt "schema" fields with
    | Some (Mewc_prelude.Jsonx.Str s) ->
      Alcotest.(check string) "schema tag" Profile.schema s
    | _ -> Alcotest.fail "no schema tag")
  | _ -> Alcotest.fail "profile json not an object"

let test_profiled_parallel_sweep_rejected () =
  let p = Profile.create () in
  match
    Sweep.run_all ~jobs:2
      ~options:{ Instances.default_options with Instances.profile = Some p }
      tiny_grid
  with
  | _ -> Alcotest.fail "profiled parallel sweep accepted"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "ledger"
    [
      ( "serialization",
        [
          Alcotest.test_case "entry/ledger json fixpoint" `Quick
            test_entry_roundtrip;
          Alcotest.test_case "pre-shard entries still parse" `Quick
            test_pre_shard_entry_parses;
          Alcotest.test_case "sweep row round-trip" `Quick test_row_roundtrip;
          Alcotest.test_case "schema gates" `Quick test_schema_gates;
          Alcotest.test_case "load/save/append" `Quick test_load_save_append;
        ] );
      ("selection", [ Alcotest.test_case "find" `Quick test_find ]);
      ( "diff",
        [
          Alcotest.test_case "threshold is strict" `Quick test_diff_thresholds;
          Alcotest.test_case "zero-word edges" `Quick test_diff_zero_word_edges;
          Alcotest.test_case "unmatched points and wall clock" `Quick
            test_diff_unmatched_and_wall;
          Alcotest.test_case "render carries verdicts" `Quick
            test_render_mentions_verdicts;
          Alcotest.test_case "of_report and self-diff" `Quick
            test_of_report_and_self_diff;
        ] );
      ( "profiler",
        [
          Alcotest.test_case "self time partitions the run" `Quick
            test_profile_self_time_partition;
          Alcotest.test_case "exception safe" `Quick test_profile_exception_safe;
          Alcotest.test_case "json schema tag" `Quick test_profile_json_schema;
          Alcotest.test_case "profiled parallel sweep rejected" `Quick
            test_profiled_parallel_sweep_rejected;
        ] );
    ]
