(* Ablations and extensions:
   - the quorum ablation: the paper's central ⌈(n+t+1)/2⌉ insight made
     falsifiable — the same attack breaks agreement at quorum t+1 and is
     harmless at the sound quorum;
   - generalized resilience n > 2t+1 (paper §8's future direction);
   - decision latency (early-stopping behaviour);
   - delivery-order robustness (protocols may not depend on within-slot
     message order). *)

open Mewc_sim
open Mewc_core
module W = Instances.Weak_str

let cfg = Test_util.cfg

let correct_decisions (o : _ Instances.agreement_outcome) =
  Array.to_list o.decisions
  |> List.mapi (fun p d -> (p, d))
  |> List.filter (fun (p, _) -> not (List.mem p o.corrupted))
  |> List.map snd

(* --- quorum ablation ------------------------------------------------- *)

let quorum_ablation_breaks_agreement () =
  (* Running with the naive t+1 quorum, the split-brain attack must
     produce two different decisions among correct processes: this is the
     disagreement the paper's quorum choice exists to prevent. *)
  let n = 9 in
  let c = cfg n in
  let small = Config.small_quorum c in
  let o =
    Instances.run_weak_ba ~cfg:c ~quorum_override:small
      ~inputs:(Array.make n "input")
      ~adversary:(Attacks.wba_small_quorum_split ~cfg:c ~quorum:small ~v1:"A" ~v2:"B")
      ()
  in
  let decided =
    correct_decisions o |> List.filter_map Fun.id |> List.sort_uniq compare
  in
  Alcotest.(check bool)
    (Printf.sprintf "agreement violated (%d distinct decisions)"
       (List.length decided))
    true
    (List.length decided >= 2);
  Alcotest.(check bool) "A and B both decided" true
    (List.mem (W.Value "A") decided && List.mem (W.Value "B") decided)

let sound_quorum_resists_the_same_attack () =
  (* Identical attack, sound quorum: at most one side's certificate can
     complete (two big quorums intersect in a correct process), so
     agreement holds. *)
  let n = 9 in
  let c = cfg n in
  let big = Config.big_quorum c in
  let o =
    Instances.run_weak_ba ~cfg:c
      ~inputs:(Array.make n "input")
      ~adversary:(Attacks.wba_small_quorum_split ~cfg:c ~quorum:big ~v1:"A" ~v2:"B")
      ()
  in
  ignore
    (Test_util.check_agreement ~pp:W.pp_outcome ~equal:W.equal_outcome
       ~corrupted:o.corrupted o.decisions)

let ablation_attack_certificates_rejected () =
  (* Forged small-quorum certificates must be rejected by sound-quorum
     verifiers even when delivered. *)
  let n = 9 in
  let c = cfg n in
  let small = Config.small_quorum c in
  let o =
    Instances.run_weak_ba ~cfg:c
      ~inputs:(Array.make n "input")
      ~adversary:
        (Attacks.wba_small_quorum_split ~cfg:c ~quorum:small ~v1:"A" ~v2:"B")
      ()
  in
  (* The attack's t+1-sized finalize certificates fail verification at
     k = big quorum, so nobody decides in phase 1 from them; the run still
     terminates in agreement (later the fallback machinery covers it). *)
  ignore
    (Test_util.check_agreement ~pp:W.pp_outcome ~equal:W.equal_outcome
       ~corrupted:o.corrupted o.decisions)

(* --- generalized resilience (paper §8) -------------------------------- *)

let resilience_beyond_optimal () =
  (* n = 11, t = 3 (n > 2t+1): all protocols keep their guarantees; the
     weak BA fallback threshold (n - big_quorum) grows accordingly. *)
  let c = Config.create ~n:11 ~t:3 in
  List.iter
    (fun f ->
      let victims = List.init f (fun i -> i + 1) in
      let o =
        Instances.run_weak_ba ~cfg:c ~inputs:(Array.make 11 "v")
          ~adversary:(Adversary.const (Adversary.crash ~victims ()))
          ()
      in
      let got =
        Test_util.check_agreement ~pp:W.pp_outcome ~equal:W.equal_outcome
          ~corrupted:o.corrupted o.decisions
      in
      Alcotest.(check bool) (Printf.sprintf "f=%d decides v" f) true
        (W.equal_outcome got (W.Value "v")))
    [ 0; 1; 2; 3 ]

let resilience_fallback_threshold_shifts () =
  (* With n = 4t+1-ish slack, even f = t keeps n - f above the big quorum,
     so the fallback is never needed at all. *)
  let c = Config.create ~n:13 ~t:3 in
  let o =
    Instances.run_weak_ba ~cfg:c ~inputs:(Array.make 13 "v")
      ~adversary:(Adversary.const (Adversary.crash ~victims:[ 1; 2; 3 ] ()))
      ()
  in
  Alcotest.(check int) "no fallback even at f=t" 0 o.fallback_runs;
  Alcotest.(check bool) "quorum still reachable" true
    (Config.big_quorum c <= 13 - 3)

(* --- smallest system: n = 3, t = 1 ------------------------------------- *)

let smallest_system () =
  let c = cfg 3 in
  let honest ~pki ~secrets =
    Adversary.const (Adversary.honest ~name:"h") ~pki ~secrets
  in
  let one_crash ~pki ~secrets =
    Adversary.const (Adversary.crash ~victims:[ 1 ] ()) ~pki ~secrets
  in
  let check_weak adversary expect =
    let o =
      Instances.run_weak_ba ~cfg:c ~inputs:(Array.make 3 "v") ~adversary ()
    in
    let got =
      Test_util.check_agreement ~pp:W.pp_outcome ~equal:W.equal_outcome
        ~corrupted:o.corrupted o.decisions
    in
    Alcotest.(check bool) "weak decides v" true (W.equal_outcome got expect)
  in
  check_weak honest (W.Value "v");
  check_weak one_crash (W.Value "v");
  let o = Instances.run_bb ~cfg:c ~input:"m" ~adversary:honest () in
  let got =
    Test_util.check_agreement ~pp:Adaptive_bb.pp_decision
      ~equal:Adaptive_bb.equal_decision ~corrupted:o.corrupted o.decisions
  in
  Alcotest.(check bool) "bb decides m" true
    (Adaptive_bb.equal_decision got (Adaptive_bb.Decided "m"));
  let o =
    Instances.run_strong_ba ~cfg:c ~inputs:[| true; false; true |]
      ~adversary:honest ()
  in
  ignore
    (Test_util.check_agreement ~pp:Format.pp_print_bool ~equal:Bool.equal
       ~corrupted:o.corrupted o.decisions);
  let o =
    Instances.run_fallback ~cfg:c ~inputs:[| "a"; "b"; "c" |] ~adversary:one_crash ()
  in
  ignore
    (Test_util.check_agreement ~pp:Test_util.pp_str ~equal:String.equal
       ~corrupted:o.corrupted o.decisions)

(* --- latency ----------------------------------------------------------- *)

let latency_failure_free () =
  let n = 9 in
  let honest ~pki ~secrets =
    Adversary.const (Adversary.honest ~name:"h") ~pki ~secrets
  in
  let weak =
    Instances.run_weak_ba ~cfg:(cfg n) ~inputs:(Array.make n "v")
      ~adversary:honest ()
  in
  (* Weak BA: phase 1 spans slots 0-4; the finalize certificate lands at
     slot 5. *)
  Alcotest.(check int) "weak BA latency" 5 weak.latency;
  let strong =
    Instances.run_strong_ba ~cfg:(cfg n) ~inputs:(Array.make n true)
      ~adversary:honest ()
  in
  (* Algorithm 5 decides in round 5 = slot 4 ("4 all-to-leader and
     leader-to-all rounds", §7.1). *)
  Alcotest.(check int) "strong BA latency" 4 strong.latency;
  let bb = Instances.run_bb ~cfg:(cfg n) ~input:"v" ~adversary:honest () in
  (* BB: 1 dissemination slot + 3n vetting slots + the weak BA's 5. *)
  Alcotest.(check int) "BB latency" (1 + (3 * n) + 5) bb.latency

let latency_grows_with_byzantine_leaders () =
  let n = 9 in
  let lat k =
    let leaders = List.init k (fun i -> i + 1) in
    let o =
      Instances.run_weak_ba ~cfg:(cfg n) ~inputs:(Array.make n "v")
        ~adversary:
          (if k = 0 then Adversary.const (Adversary.honest ~name:"h")
           else Attacks.wba_busy_byz_leaders ~cfg:(cfg n) ~leaders)
        ()
    in
    o.Instances.latency
  in
  (* Each Byzantine leader burns one 5-slot phase before the first correct
     leader finalizes. *)
  Alcotest.(check (list int)) "latency ladder" [ 5; 10; 15; 20 ]
    [ lat 0; lat 1; lat 2; lat 3 ]

let latency_reported_under_fallback () =
  let n = 9 in
  let o =
    Instances.run_weak_ba ~cfg:(cfg n) ~inputs:(Array.make n "v")
      ~adversary:(Adversary.const (Adversary.crash ~victims:[ 1; 2; 3; 4 ] ()))
      ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "fallback latency %d sane" o.latency)
    true
    (o.latency > W.help_base (cfg n) && o.latency < W.horizon (cfg n))

(* --- delivery-order robustness ---------------------------------------- *)

let order_insensitive protocol_run =
  let base = protocol_run None in
  List.iter
    (fun seed ->
      let shuffled = protocol_run (Some seed) in
      Alcotest.(check bool)
        (Printf.sprintf "same decisions under shuffle %Ld" seed)
        true
        (base = shuffled))
    [ 3L; 77L; 123456789L ]

let shuffle_weak_ba () =
  order_insensitive (fun shuffle_seed ->
      let o =
        Instances.run_weak_ba ~cfg:(cfg 9) 
          ~options:{ Instances.default_options with Instances.shuffle_seed }
          ~inputs:(Array.init 9 (fun i -> Printf.sprintf "x%d" (i mod 3)))
          ~adversary:(Adversary.const (Adversary.crash ~victims:[ 1; 2 ] ()))
          ()
      in
      (correct_decisions o, o.Instances.words))

let shuffle_weak_ba_fallback_path () =
  order_insensitive (fun shuffle_seed ->
      let o =
        Instances.run_weak_ba ~cfg:(cfg 9) 
          ~options:{ Instances.default_options with Instances.shuffle_seed }
          ~inputs:(Array.make 9 "v")
          ~adversary:(Adversary.const (Adversary.crash ~victims:[ 1; 2; 3; 4 ] ()))
          ()
      in
      (correct_decisions o, o.Instances.words))

let shuffle_bb () =
  order_insensitive (fun shuffle_seed ->
      let o =
        Instances.run_bb ~cfg:(cfg 9)
          ~options:{ Instances.default_options with Instances.shuffle_seed }
          ~input:"v"
          ~adversary:(Adversary.const (Adversary.crash ~victims:[ 0 ] ()))
          ()
      in
      (correct_decisions o, o.Instances.words))

let shuffle_equivocating_sender_agreement () =
  (* Under an equivocating sender, the within-slot delivery order may
     legitimately change *which* value wins, but agreement must hold under
     every order. *)
  List.iter
    (fun seed ->
      let o =
        Instances.run_bb ~cfg:(cfg 9)
          ~options:
            { Instances.default_options with Instances.shuffle_seed = Some seed }
          ~input:"ignored"
          ~adversary:
            (Attacks.bb_equivocating_sender ~cfg:(cfg 9) ~sender:0 ~v1:"a" ~v2:"b")
          ()
      in
      ignore
        (Test_util.check_agreement ~pp:Adaptive_bb.pp_decision
           ~equal:Adaptive_bb.equal_decision ~corrupted:o.corrupted o.decisions))
    [ 1L; 2L; 3L; 42L; 1000L ]

let shuffle_strong_ba () =
  order_insensitive (fun shuffle_seed ->
      let o =
        Instances.run_strong_ba ~cfg:(cfg 9)
          ~options:{ Instances.default_options with Instances.shuffle_seed }
          ~inputs:(Array.init 9 (fun i -> i mod 2 = 0))
          ~adversary:(Adversary.const (Adversary.crash ~victims:[ 0; 5 ] ()))
          ()
      in
      (correct_decisions o, o.Instances.words))

let () =
  Alcotest.run "ablations & extensions"
    [
      ( "quorum ablation",
        [
          Alcotest.test_case "t+1 quorum: agreement broken" `Quick
            quorum_ablation_breaks_agreement;
          Alcotest.test_case "sound quorum resists same attack" `Quick
            sound_quorum_resists_the_same_attack;
          Alcotest.test_case "small certs rejected at sound quorum" `Quick
            ablation_attack_certificates_rejected;
        ] );
      ( "generalized resilience (§8)",
        [
          Alcotest.test_case "n=11, t=3" `Quick resilience_beyond_optimal;
          Alcotest.test_case "fallback threshold shifts" `Quick
            resilience_fallback_threshold_shifts;
        ] );
      ( "smallest system",
        [ Alcotest.test_case "n = 3, t = 1" `Quick smallest_system ] );
      ( "latency",
        [
          Alcotest.test_case "failure-free latencies" `Quick latency_failure_free;
          Alcotest.test_case "byzantine-leader ladder" `Quick
            latency_grows_with_byzantine_leaders;
          Alcotest.test_case "fallback latency sane" `Quick
            latency_reported_under_fallback;
        ] );
      ( "delivery order",
        [
          Alcotest.test_case "weak BA (phases path)" `Quick shuffle_weak_ba;
          Alcotest.test_case "weak BA (fallback path)" `Quick
            shuffle_weak_ba_fallback_path;
          Alcotest.test_case "BB" `Quick shuffle_bb;
          Alcotest.test_case "strong BA" `Quick shuffle_strong_ba;
          Alcotest.test_case "equivocating sender: agreement per order" `Quick
            shuffle_equivocating_sender_agreement;
        ] );
    ]
